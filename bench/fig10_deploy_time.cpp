// Figure 10 — prototype (Emulab-substitute): average query deployment time
// vs query size for Bottom-Up / Top-Down at cluster sizes 4 and 8.
//
// Deployment time is modeled as control messages along the coordinator
// hierarchy (1-60 ms link delays, exactly the prototype's) plus plan
// evaluation at 100 us/plan. Paper headlines: Bottom-Up deploys ~70% faster
// than Top-Down; Top-Down slows down as max_cs shrinks (more levels to
// traverse).
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace iflow;
  using namespace iflow::bench;
  const std::uint64_t seed = seed_from_args(argc, argv);
  const int kQueriesPerSize = 8;
  const std::vector<int> query_sizes = {2, 3, 4};  // streams per query
  const std::vector<int> cluster_sizes = {4, 8};

  Prng net_prng(seed);
  Rig rig(emulab_network(net_prng));
  std::vector<cluster::Hierarchy> hierarchies;
  for (int cs : cluster_sizes) {
    hierarchies.push_back(
        build_hierarchy(rig, cs, seed + static_cast<std::uint64_t>(cs)));
  }

  std::cout << "Figure 10: average deployment time (s) vs query size\n"
            << "(" << rig.net.node_count()
            << "-node Emulab-style topology, 8 streams, control delays "
               "1-60 ms, 100 us/plan, seed "
            << seed << ")\n"
            << "bu-fast = the paper's quick-deployment Bottom-Up "
               "(coordinator-pinned placement);\nbu = our quality-refined "
               "variant (see bench/ablation_refinement)\n\n";
  TextTable t({"streams", "bu-fast(cs=4)", "bu-fast(cs=8)", "bu(cs=4)",
               "bu(cs=8)", "td(cs=4)", "td(cs=8)"});

  std::vector<std::vector<double>> mean_secs(6);
  for (int k : query_sizes) {
    const workload::Workload wl = make_seeded_workload(
        rig, paper_workload_params(k - 1, k - 1, /*num_streams=*/8),
        kQueriesPerSize, seed + static_cast<std::uint64_t>(k));

    std::vector<double> secs;
    for (const Alg alg : {Alg::kBottomUpFast, Alg::kBottomUp, Alg::kTopDown}) {
      for (std::size_t ci = 0; ci < cluster_sizes.size(); ++ci) {
        const RunStats r =
            run_incremental(alg, rig, &hierarchies[ci], wl, true, seed);
        secs.push_back(r.deploy_time_ms / 1000.0 / kQueriesPerSize);
      }
    }
    for (std::size_t i = 0; i < secs.size(); ++i) mean_secs[i].push_back(secs[i]);
    auto& row = t.row().cell(k);
    for (double s : secs) row.cell(s, 3);
  }
  t.print(std::cout);

  auto mean = [](const std::vector<double>& v) {
    double s = 0.0;
    for (double x : v) s += x;
    return s / static_cast<double>(v.size());
  };
  const double bu_fast_avg = (mean(mean_secs[0]) + mean(mean_secs[1])) / 2.0;
  const double bu_avg = (mean(mean_secs[2]) + mean(mean_secs[3])) / 2.0;
  const double td_avg = (mean(mean_secs[4]) + mean(mean_secs[5])) / 2.0;
  std::cout << "\nbottom-up(fast) vs top-down deployment time: "
            << 100.0 * (1.0 - bu_fast_avg / td_avg)
            << "% faster (paper: ~70%)\n";
  std::cout << "bottom-up(refined) vs top-down deployment time: "
            << 100.0 * (1.0 - bu_avg / td_avg) << "% faster\n";
  std::cout << "top-down cs=4 vs cs=8: "
            << 100.0 * (mean(mean_secs[4]) / mean(mean_secs[5]) - 1.0)
            << "% slower with smaller clusters (paper: more levels => "
               "higher deployment time)\n";
  return 0;
}
