// Adaptation-latency microbenchmark: how long does the middleware take to
// absorb a fault or a load change once a workload is deployed?
//
// For each Fig-9-class network size the harness deploys a fixed workload,
// then repeatedly runs complete fault cycles — fail_node + restore_node,
// crash_node + restore_node, rate-spike + adapt — timing every call, and a
// single post-churn reoptimize() pass. Medians land in BENCH_adapt.json
// (machine-readable, uploaded by the CI perf-smoke job alongside
// BENCH_planner.json). The workspace is pinned to one planner thread so the
// numbers track the algorithms, not the machine's core count.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "engine/middleware.h"
#include "net/gtitm.h"
#include "workload/generator.h"

namespace {

using namespace iflow;

constexpr int kSamples = 9;
constexpr int kQueries = 8;
constexpr int kStreams = 12;
constexpr int kMaxCs = 32;

template <typename F>
double time_ms(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

double median(std::vector<double> v) {
  IFLOW_CHECK(!v.empty());
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct SizeRow {
  std::size_t nodes = 0;
  double fail_node_ms = 0.0;
  double restore_failed_ms = 0.0;
  double crash_node_ms = 0.0;
  double restore_crashed_ms = 0.0;
  double adapt_ms = 0.0;
  double reoptimize_ms = 0.0;
};

SizeRow measure(int size) {
  Prng net_prng(11 + static_cast<std::uint64_t>(size));
  net::Network net = net::make_transit_stub(net::scale_to(size), net_prng);

  workload::WorkloadParams wp;
  wp.num_streams = kStreams;
  wp.min_joins = 3;  // 4-source queries, as in the Fig 9 series
  wp.max_joins = 3;
  Prng wl_prng(12);
  workload::Workload wl = workload::make_workload(net, wp, kQueries, wl_prng);

  engine::Middleware mw(net, wl.catalog, kMaxCs,
                        engine::Algorithm::kTopDown, /*seed=*/13);
  mw.workspace().set_threads(1);
  for (const query::Query& q : wl.queries) mw.deploy(q);

  SizeRow row;
  row.nodes = net.node_count();
  Prng pick(17);

  std::vector<double> fail_ms, restore_f_ms, crash_ms, restore_c_ms, adapt_ms;
  for (int s = 0; s < kSamples; ++s) {
    const net::NodeId victim =
        static_cast<net::NodeId>(pick.index(net.node_count()));
    fail_ms.push_back(time_ms([&] { mw.fail_node(victim); }));
    restore_f_ms.push_back(time_ms([&] { mw.restore_node(victim); }));
  }
  for (int s = 0; s < kSamples; ++s) {
    const net::NodeId victim =
        static_cast<net::NodeId>(pick.index(net.node_count()));
    crash_ms.push_back(time_ms([&] { mw.crash_node(victim); }));
    restore_c_ms.push_back(time_ms([&] { mw.restore_node(victim); }));
  }
  for (int s = 0; s < kSamples; ++s) {
    const query::StreamId stream =
        static_cast<query::StreamId>(pick.index(mw.catalog().stream_count()));
    const double base = mw.catalog().stream(stream).tuple_rate;
    mw.set_stream_rate(stream, base * 3.0);
    adapt_ms.push_back(time_ms([&] { mw.adapt(); }));
    mw.set_stream_rate(stream, base);
    mw.adapt();  // settle back (untimed)
  }
  row.fail_node_ms = median(fail_ms);
  row.restore_failed_ms = median(restore_f_ms);
  row.crash_node_ms = median(crash_ms);
  row.restore_crashed_ms = median(restore_c_ms);
  row.adapt_ms = median(adapt_ms);
  row.reoptimize_ms = time_ms([&] { mw.reoptimize(); });
  return row;
}

void write_json(const std::string& path, const std::vector<SizeRow>& rows) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"workload\": {\"queries\": " << kQueries
      << ", \"streams\": " << kStreams << ", \"sources_per_query\": 4"
      << ", \"max_cs\": " << kMaxCs << ", \"samples\": " << kSamples
      << ", \"threads\": 1},\n";
  out << "  \"sizes\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SizeRow& r = rows[i];
    out << "    {\"nodes\": " << r.nodes
        << ", \"fail_node_ms\": " << r.fail_node_ms
        << ", \"restore_failed_ms\": " << r.restore_failed_ms
        << ", \"crash_node_ms\": " << r.crash_node_ms
        << ", \"restore_crashed_ms\": " << r.restore_crashed_ms
        << ", \"adapt_ms\": " << r.adapt_ms
        << ", \"reoptimize_ms\": " << r.reoptimize_ms << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
}

}  // namespace

int main() {
  const std::vector<int> sizes = {128, 256, 512};
  std::vector<SizeRow> rows;
  for (int size : sizes) {
    rows.push_back(measure(size));
    const SizeRow& r = rows.back();
    std::cout << r.nodes << " nodes: fail_node " << r.fail_node_ms
              << " ms, crash_node " << r.crash_node_ms << " ms, adapt "
              << r.adapt_ms << " ms, reoptimize " << r.reoptimize_ms
              << " ms (medians of " << kSamples << ")\n";
  }
  write_json("BENCH_adapt.json", rows);
  std::cout << "wrote BENCH_adapt.json\n";
  return 0;
}
