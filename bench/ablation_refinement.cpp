// Ablation: Bottom-Up view refinement — deployment quality vs deployment
// speed (DESIGN.md's called-out design choice).
//
// Our Bottom-Up refines the views it assigns to member clusters down to
// physical nodes (needed to reproduce the paper's quality results, Figs
// 7/8/11). The original system's Bottom-Up appears to pin operators at the
// per-level coordinators, which is much faster to deploy — the source of
// the paper's "Bottom-Up deploys ~70% faster" headline (Fig 10) — but far
// less cost-efficient under strongly differentiated link costs. This bench
// quantifies both sides of the trade on the paper's main topology.
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace iflow;
  using namespace iflow::bench;
  const std::uint64_t seed = seed_from_args(argc, argv);
  const int kWorkloads = 5;
  const int kQueries = 20;

  Prng net_prng(seed);
  Rig rig(paper_network(net_prng));

  std::cout << "Ablation: Bottom-Up view refinement (seed " << seed << ")\n\n";
  TextTable t({"max_cs", "variant", "total cost", "plans/query",
               "deploy ms/query", "vs exhaustive"});

  for (int cs : {8, 32}) {
    const cluster::Hierarchy hierarchy =
        build_hierarchy(rig, cs, seed + static_cast<std::uint64_t>(cs));

    double exhaustive_total = 0.0;
    struct Variant {
      const char* name;
      bool refine;
      double cost = 0.0;
      double plans = 0.0;
      double deploy_ms = 0.0;
    };
    std::vector<Variant> variants = {{"refined", true}, {"fast", false}};

    for (int w = 0; w < kWorkloads; ++w) {
      const workload::Workload wl =
          make_seeded_workload(rig, paper_workload_params(), kQueries,
                               seed + 100 + static_cast<std::uint64_t>(w));

      exhaustive_total +=
          run_incremental(Alg::kExhaustive, rig, nullptr, wl, false, seed)
              .cumulative_cost.back();

      for (Variant& v : variants) {
        advert::Registry registry;
        opt::OptimizerEnv env;
        env.catalog = &wl.catalog;
        env.network = &rig.net;
        env.routing = &rig.rt;
        env.hierarchy = &hierarchy;
        env.registry = &registry;
        env.reuse = false;
        opt::BottomUpOptimizer bu(env, v.refine);
        for (const query::Query& q : wl.queries) {
          const opt::OptimizeResult r = bu.optimize(q);
          v.cost += r.actual_cost;
          v.plans += r.plans_considered;
          v.deploy_ms += r.deploy_time_ms;
        }
      }
    }
    const double n_queries = kWorkloads * kQueries;
    for (const Variant& v : variants) {
      t.row()
          .cell(cs)
          .cell(std::string(v.name))
          .cell(v.cost / 1000.0, 0)
          .cell(v.plans / n_queries, 0)
          .cell(v.deploy_ms / n_queries, 1)
          .cell(100.0 * (v.cost / exhaustive_total - 1.0), 1);
    }
    std::cout.flush();
  }
  t.print(std::cout);
  std::cout << "\n(total cost in thousands; 'vs exhaustive' = % above the "
               "optimal joint search)\n"
            << "The fast variant deploys with far fewer plan evaluations — "
               "the paper's Fig 10 speed gap —\nwhile the refined variant "
               "delivers the paper's Fig 7 quality.\n";
  return 0;
}
