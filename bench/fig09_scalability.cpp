// Figure 9 — scalability with network size: plans/deployments considered
// for a single 4-stream query, as the network grows from 128 to 1024 nodes
// (max_cs = 32).
//
// Series: measured Top-Down, measured Bottom-Up, the exhaustive search
// space (same tree-enumeration semantics: (2K-3)!! * N^(K-1)), the paper's
// Lemma 1 figure, and the analytical worst-case bound beta * O_exhaustive
// (Theorems 2 and 4). Paper headlines: both algorithms cut the search space
// by >= 99%; Bottom-Up examines ~45% fewer plans than Top-Down.
#include <cmath>

#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace iflow;
  using namespace iflow::bench;
  const std::uint64_t seed = seed_from_args(argc, argv);
  const int kQueries = 10;
  const int kStreams = 100;
  const int kSourcesPerQuery = 4;
  const std::vector<int> sizes = {128, 256, 512, 1024};

  std::cout << "Figure 9: plans considered vs network size (4-stream "
               "queries, max_cs=32, seed "
            << seed << ")\n\n";
  TextTable t({"nodes", "top-down", "bottom-up", "exhaustive", "lemma1",
               "bound(beta*exh)", "td-reduction", "bu/td"});

  double td_total = 0.0;
  double bu_total = 0.0;
  double exh_total = 0.0;
  double ratio_sum = 0.0;
  for (int size : sizes) {
    Prng net_prng(seed + static_cast<std::uint64_t>(size));
    Rig rig(net::make_transit_stub(net::scale_to(size), net_prng));
    const cluster::Hierarchy hierarchy = build_hierarchy(rig, 32, seed + 7);

    const workload::Workload wl = make_seeded_workload(
        rig,
        paper_workload_params(kSourcesPerQuery - 1, kSourcesPerQuery - 1,
                              kStreams),
        kQueries, seed + 11);

    // Measured per-query averages (no reuse: the paper measures a single
    // query's planning).
    const RunStats td =
        run_incremental(Alg::kTopDown, rig, &hierarchy, wl, false, seed);
    const RunStats bu =
        run_incremental(Alg::kBottomUp, rig, &hierarchy, wl, false, seed);
    const double td_plans = td.plans / kQueries;
    const double bu_plans = bu.plans / kQueries;

    const double n = static_cast<double>(rig.net.node_count());
    const double exhaustive =
        cluster::bushy_tree_count(kSourcesPerQuery) *
        std::pow(n, kSourcesPerQuery - 1);
    const double lemma1 =
        cluster::lemma1_search_space(kSourcesPerQuery, rig.net.node_count());
    const double bound = cluster::beta(kSourcesPerQuery, rig.net.node_count(),
                                       32, hierarchy.height()) *
                         exhaustive;

    td_total += td_plans;
    bu_total += bu_plans;
    exh_total += exhaustive;
    ratio_sum += bu_plans / td_plans;
    t.row()
        .cell(static_cast<std::uint64_t>(rig.net.node_count()))
        .cell_sci(td_plans)
        .cell_sci(bu_plans)
        .cell_sci(exhaustive)
        .cell_sci(lemma1)
        .cell_sci(bound)
        .cell(100.0 * (1.0 - td_plans / exhaustive), 3)
        .cell(bu_plans / td_plans);
  }
  t.print(std::cout);
  std::cout << "\n(td-reduction: % of exhaustive space eliminated; paper: "
               ">= 99% for both algorithms)\n";
  std::cout << "bottom-up vs top-down plans, mean per-size reduction: "
            << 100.0 * (1.0 - ratio_sum / static_cast<double>(sizes.size()))
            << "% fewer (paper: ~45%; the gap is widest on the paper's "
               "primary 128-node size and closes once a two-level hierarchy "
               "covers the whole network)\n";
  std::cout << "overall reduction vs exhaustive: top-down "
            << 100.0 * (1.0 - td_total / exh_total) << "%, bottom-up "
            << 100.0 * (1.0 - bu_total / exh_total) << "%\n";
  return 0;
}
