// Figure 8 — comparison with existing approaches, all with operator reuse.
//
// Series: Top-Down, Bottom-Up (max_cs=32), exhaustive, Relaxation
// (3-D cost space), In-Network (5 zones, matching max_cs=32 on this
// topology). Paper headlines: Top-Down ~40% cheaper than In-Network and
// ~59% cheaper than Relaxation; Bottom-Up ~27% and ~49% respectively.
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace iflow;
  using namespace iflow::bench;
  const std::uint64_t seed = seed_from_args(argc, argv);
  const int kWorkloads = 10;
  const int kQueries = 20;

  Prng net_prng(seed);
  Rig rig(paper_network(net_prng));
  const cluster::Hierarchy hierarchy = build_hierarchy(rig, 32, seed + 32);

  struct Series {
    std::string name;
    Alg alg;
    std::vector<std::vector<double>> curves;
  };
  std::vector<Series> series = {
      {"top-down", Alg::kTopDown, {}},
      {"bottom-up", Alg::kBottomUp, {}},
      {"exhaustive", Alg::kExhaustive, {}},
      {"relaxation", Alg::kRelaxation, {}},
      {"in-network", Alg::kInNetwork, {}},
  };

  for (int w = 0; w < kWorkloads; ++w) {
    const workload::Workload wl =
        make_seeded_workload(rig, paper_workload_params(), kQueries,
                             seed + 1000 + static_cast<std::uint64_t>(w));
    for (Series& s : series) {
      s.curves.push_back(
          run_incremental(s.alg, rig, &hierarchy, wl, true, seed, /*zones=*/5)
              .cumulative_cost);
    }
  }

  std::cout << "Figure 8: comparison with existing approaches (reuse on)\n"
            << "(" << rig.net.node_count()
            << "-node network, max_cs=32 / 5 zones, " << kWorkloads
            << " workloads x " << kQueries << " queries, seed " << seed
            << ")\n\n";
  std::vector<std::string> header = {"queries"};
  std::vector<std::vector<double>> means;
  for (Series& s : series) {
    header.push_back(s.name);
    means.push_back(mean_curves(s.curves));
  }
  TextTable t(header);
  for (int qi = 0; qi < kQueries; ++qi) {
    auto& row = t.row().cell(qi + 1);
    for (const auto& m : means) row.cell(m[static_cast<std::size_t>(qi)] / 1000.0);
  }
  t.print(std::cout);
  std::cout << "(cost per unit time, in thousands)\n\n";

  const double td = means[0].back();
  const double bu = means[1].back();
  const double relax = means[3].back();
  const double innet = means[4].back();
  std::cout << "top-down vs in-network : " << 100.0 * (1.0 - td / innet)
            << "% cheaper (paper: ~40%)\n";
  std::cout << "bottom-up vs in-network: " << 100.0 * (1.0 - bu / innet)
            << "% cheaper (paper: ~27%)\n";
  std::cout << "top-down vs relaxation : " << 100.0 * (1.0 - td / relax)
            << "% cheaper (paper: ~59%)\n";
  std::cout << "bottom-up vs relaxation: " << 100.0 * (1.0 - bu / relax)
            << "% cheaper (paper: ~49%)\n";
  return 0;
}
