// Scale sweep — hierarchy-native sparse planning at 1k/10k/100k nodes.
//
// For each network size the bench builds a GT-ITM transit-stub topology,
// a sparse (lazy, LRU-bounded) routing tier, a partitioned hierarchy whose
// leaf clusters are the stub domains, and a tiered SparseOracle, then plans
// a fixed workload through the Top-Down optimizer. Reported per cell:
//   * hierarchy build and total plan time;
//   * peak oracle memory (routing rows + leaf sketches) against the dense
//     all-pairs equivalent (target: < 5% at 10k nodes);
//   * plan-quality ratio vs dense exact planning (1k cell only, where the
//     dense baseline is still buildable);
//   * incremental repair time after a single link failure vs recomputing
//     the same working set from scratch (target: >= 10x at 10k nodes);
//   * an FNV-1a digest over the hexfloat plan costs — rerun with a
//     different --threads value and diff the digest lines to check the
//     parallel site sweep is bitwise-identical to the serial one.
//
// Results are also written as JSON (default BENCH_scale.json). The 100k
// cell runs only with --full; the default 1k/10k sweep keeps CI-friendly
// runtimes.
//
// Usage: fig09_scale [--seed S] [--threads N] [--quick] [--full]
//        [--json PATH]
// --quick runs the 1k cell only (the CI smoke shape); --full adds 100k.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/hierarchy.h"
#include "common/prng.h"
#include "common/table.h"
#include "net/gtitm.h"
#include "net/routing.h"
#include "opt/search/sparse_oracle.h"
#include "opt/search/workspace.h"
#include "opt/top_down.h"
#include "workload/generator.h"

namespace iflow {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::vector<std::vector<net::NodeId>> domain_partitions(
    const net::TransitStubParams& p) {
  std::vector<std::vector<net::NodeId>> parts;
  std::vector<net::NodeId> transit;
  for (int t = 0; t < p.transit_count; ++t) {
    transit.push_back(static_cast<net::NodeId>(t));
  }
  parts.push_back(std::move(transit));
  for (int d = 0; d < net::stub_domain_count(p); ++d) {
    parts.push_back(net::stub_domain_members(p, d));
  }
  return parts;
}

struct Cell {
  std::size_t nodes = 0;
  double hierarchy_ms = 0.0;
  double plan_ms = 0.0;
  std::size_t peak_oracle_bytes = 0;
  std::size_t dense_equiv_bytes = 0;
  double quality_ratio = 0.0;  // 0 = dense baseline not run
  double inc_repair_ms = 0.0;
  double full_rebuild_ms = 0.0;
  std::uint64_t digest = 0;
};

/// Plans the workload through one env; returns total actual cost and
/// appends one hexfloat digest line per query.
double plan_workload(const opt::OptimizerEnv& env,
                     const workload::Workload& wl, std::ostringstream* tape) {
  opt::TopDownOptimizer td(env);
  double total = 0.0;
  for (const query::Query& q : wl.queries) {
    const opt::OptimizeResult r = td.optimize(q);
    IFLOW_CHECK_MSG(r.feasible, "bench query infeasible: " << q.name);
    total += r.actual_cost;
    if (tape != nullptr) {
      *tape << q.name << ' ' << std::hexfloat << r.actual_cost
            << std::defaultfloat << '\n';
    }
  }
  return total;
}

Cell run_cell(int target_nodes, std::uint64_t seed, int threads,
              bool dense_baseline) {
  Cell cell;
  const net::TransitStubParams p = net::scale_to(target_nodes);
  Prng net_prng(seed + static_cast<std::uint64_t>(target_nodes));
  net::Network net = net::make_transit_stub(p, net_prng);
  cell.nodes = net.node_count();
  cell.dense_equiv_bytes =
      net::RoutingTables::dense_equivalent_bytes(net.node_count());

  net::RoutingOptions ropts;
  ropts.mode = net::RoutingMode::kSparse;
  ropts.max_cached_rows = 256;
  net::RoutingTables rt = net::RoutingTables::build(net, ropts);

  const auto t_h = Clock::now();
  Prng hp(seed + 7);
  const cluster::Hierarchy hierarchy = cluster::Hierarchy::build_partitioned(
      net, rt, domain_partitions(p), 32, hp);
  cell.hierarchy_ms = ms_since(t_h);

  const opt::SparseOracle oracle(net, rt, hierarchy, {});

  workload::WorkloadParams wp;
  wp.num_streams = 24;
  wp.min_joins = 3;
  wp.max_joins = 3;  // 4-source queries, the paper's scalability shape
  Prng wl_prng(seed + 11);
  const workload::Workload wl = workload::make_workload(net, wp, 6, wl_prng);

  opt::PlanWorkspace ws(threads);
  opt::OptimizerEnv env;
  env.catalog = &wl.catalog;
  env.network = &net;
  env.routing = &rt;
  env.hierarchy = &hierarchy;
  env.workspace = &ws;
  env.sparse = &oracle;

  std::ostringstream tape;
  const auto t_plan = Clock::now();
  const double sparse_cost = plan_workload(env, wl, &tape);
  cell.plan_ms = ms_since(t_plan);
  cell.digest = fnv1a(tape.str());
  cell.peak_oracle_bytes = rt.peak_memory_bytes() + oracle.memory_bytes();

  if (dense_baseline) {
    // Exact all-pairs tier + the same hierarchy, no oracle: the planner
    // prices level-1 refinement on exact routing rows.
    const net::RoutingTables dense_rt = net::RoutingTables::build(net);
    cluster::Hierarchy dense_h = hierarchy;
    dense_h.refresh(dense_rt);
    opt::OptimizerEnv dense_env = env;
    dense_env.routing = &dense_rt;
    dense_env.hierarchy = &dense_h;
    dense_env.sparse = nullptr;
    const double dense_cost = plan_workload(dense_env, wl, nullptr);
    cell.quality_ratio = sparse_cost / dense_cost;
  }

  // Incremental repair vs from-scratch recompute of the same working set:
  // warm a set of rows, fail one stub-internal link, and time sync() plus
  // re-reading the set against rebuilding the tier and reading the set.
  const std::size_t warm =
      std::min<std::size_t>(128, net.node_count());
  for (net::NodeId a = 0; a < warm; ++a) rt.cost(a, 0);
  std::uint32_t victim = net::kInvalidLink;
  for (std::uint32_t i = static_cast<std::uint32_t>(net.link_count()); i-- > 0;) {
    const net::Link& l = net.links()[i];
    if (net.kind(l.a) == net::NodeKind::kStub &&
        net.kind(l.b) == net::NodeKind::kStub) {
      victim = i;
      break;
    }
  }
  IFLOW_CHECK(victim != net::kInvalidLink);
  const net::NodeId va = net.links()[victim].a;
  const net::NodeId vb = net.links()[victim].b;

  net.fail_link(va, vb);
  const auto t_inc = Clock::now();
  rt.sync(net);
  for (net::NodeId a = 0; a < warm; ++a) rt.cost(a, 0);
  cell.inc_repair_ms = ms_since(t_inc);

  const auto t_full = Clock::now();
  net::RoutingTables fresh = net::RoutingTables::build(net, ropts);
  for (net::NodeId a = 0; a < warm; ++a) fresh.cost(a, 0);
  cell.full_rebuild_ms = ms_since(t_full);
  return cell;
}

void write_json(const std::string& path, const std::vector<Cell>& cells,
                std::uint64_t seed, int threads) {
  std::ofstream out(path);
  IFLOW_CHECK_MSG(out.good(), "cannot write " << path);
  out << "{\n  \"bench\": \"fig09_scale\",\n  \"seed\": " << seed
      << ",\n  \"threads\": " << threads << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << "    {\"nodes\": " << c.nodes
        << ", \"hierarchy_ms\": " << c.hierarchy_ms
        << ", \"plan_ms\": " << c.plan_ms
        << ", \"peak_oracle_bytes\": " << c.peak_oracle_bytes
        << ", \"dense_equiv_bytes\": " << c.dense_equiv_bytes
        << ", \"memory_ratio\": "
        << static_cast<double>(c.peak_oracle_bytes) /
               static_cast<double>(c.dense_equiv_bytes)
        << ", \"quality_ratio\": " << c.quality_ratio
        << ", \"incremental_repair_ms\": " << c.inc_repair_ms
        << ", \"full_rebuild_ms\": " << c.full_rebuild_ms
        << ", \"repair_speedup\": " << c.full_rebuild_ms / c.inc_repair_ms
        << ", \"digest\": \"" << std::hex << c.digest << std::dec << "\"}"
        << (i + 1 < cells.size() ? "," : "") << '\n';
  }
  out << "  ]\n}\n";
}

}  // namespace
}  // namespace iflow

int main(int argc, char** argv) {
  using namespace iflow;
  std::uint64_t seed = 20070326;
  int threads = 1;
  bool full = false;
  bool quick = false;
  std::string json_path = "BENCH_scale.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      IFLOW_CHECK_MSG(i + 1 < argc, arg << " needs a value");
      return argv[++i];
    };
    if (arg == "--seed") {
      seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--threads") {
      threads = static_cast<int>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--full") {
      full = true;
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--json") {
      json_path = value();
    } else {
      std::cerr << "usage: fig09_scale [--seed S] [--threads N] [--quick] "
                   "[--full] [--json PATH]\n";
      return 2;
    }
  }

  std::vector<int> sizes = quick ? std::vector<int>{1000}
                                 : std::vector<int>{1000, 10000};
  if (full) sizes.push_back(100000);

  std::cout << "Scale sweep: sparse-oracle planning (seed " << seed
            << ", threads " << threads << ")\n\n";
  TextTable t({"nodes", "hier ms", "plan ms", "oracle MB", "dense MB",
               "mem %", "quality", "inc ms", "full ms", "speedup",
               "digest-fnv"});
  std::vector<Cell> cells;
  for (const int size : sizes) {
    const Cell c = run_cell(size, seed, threads, /*dense_baseline=*/size <= 1000);
    const double mb = 1.0 / (1024.0 * 1024.0);
    std::ostringstream dg;
    dg << std::hex << c.digest;
    t.row()
        .cell(static_cast<std::uint64_t>(c.nodes))
        .cell(c.hierarchy_ms, 1)
        .cell(c.plan_ms, 1)
        .cell(static_cast<double>(c.peak_oracle_bytes) * mb, 2)
        .cell(static_cast<double>(c.dense_equiv_bytes) * mb, 2)
        .cell(100.0 * static_cast<double>(c.peak_oracle_bytes) /
                  static_cast<double>(c.dense_equiv_bytes),
              2)
        .cell(c.quality_ratio, 4)
        .cell(c.inc_repair_ms, 2)
        .cell(c.full_rebuild_ms, 2)
        .cell(c.full_rebuild_ms / c.inc_repair_ms, 1)
        .cell(dg.str());
    cells.push_back(c);
    std::cout << "digest-fnv " << c.nodes << ' ' << dg.str() << '\n';
  }
  std::cout << '\n';
  t.print(std::cout);
  write_json(json_path, cells, seed, threads);
  std::cout << "\nwrote " << json_path
            << " (quality 0 = dense baseline skipped at that size; targets: "
               "mem % < 5 at 10k, speedup >= 10 at 10k)\n";
  return 0;
}
