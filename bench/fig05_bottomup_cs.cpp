// Figure 5 — Bottom-Up: cumulative deployed cost vs number of queries for
// cluster sizes max_cs in {2,4,8,16,32,64}.
//
// Paper setup: 128-node-class GT-ITM topology, 10 source streams, workloads
// of 20 queries with 2-5 joins each, averaged over several workloads.
// Paper headline: max_cs = 64 costs ~21% less than max_cs = 8 (fewer
// hierarchy levels => less approximation).
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace iflow;
  using namespace iflow::bench;
  const std::uint64_t seed = seed_from_args(argc, argv);
  const int kWorkloads = 10;
  const int kQueries = 20;
  const std::vector<int> cluster_sizes = {2, 4, 8, 16, 32, 64};

  Prng net_prng(seed);
  Rig rig(paper_network(net_prng));

  std::vector<int> heights(cluster_sizes.size(), 0);
  std::vector<std::vector<double>> mean_per_cs;
  for (std::size_t ci = 0; ci < cluster_sizes.size(); ++ci) {
    const int cs = cluster_sizes[ci];
    std::vector<std::vector<double>> curves;
    for (int w = 0; w < kWorkloads; ++w) {
      // A fresh clustering per workload averages out k-medoids seeding.
      const cluster::Hierarchy hierarchy = build_hierarchy(
          rig, cs, seed + static_cast<std::uint64_t>(cs * 100 + w));
      heights[ci] = hierarchy.height();
      const workload::Workload wl =
          make_seeded_workload(rig, paper_workload_params(), kQueries,
                               seed + 1000 + static_cast<std::uint64_t>(w));
      curves.push_back(
          run_incremental(Alg::kBottomUp, rig, &hierarchy, wl, true, seed)
              .cumulative_cost);
    }
    mean_per_cs.push_back(mean_curves(curves));
  }

  std::cout << "Figure 5: Bottom-Up cumulative cost vs queries, by max_cs\n"
            << "(" << rig.net.node_count() << "-node network, 10 streams, "
            << kWorkloads << " workloads x " << kQueries
            << " queries of 2-5 joins, seed " << seed << ")\n\n";
  std::vector<std::string> header = {"queries"};
  for (int cs : cluster_sizes) header.push_back("cs=" + std::to_string(cs));
  TextTable t(header);
  for (int qi = 0; qi < kQueries; ++qi) {
    auto& row = t.row().cell(qi + 1);
    for (const auto& curve : mean_per_cs) {
      row.cell(curve[static_cast<std::size_t>(qi)] / 1000.0);
    }
  }
  t.print(std::cout);
  std::cout << "(cost per unit time, in thousands)\n\n";

  const double cs8 = mean_per_cs[2].back();
  const double cs64 = mean_per_cs[5].back();
  std::cout << "cs=64 vs cs=8: " << 100.0 * (1.0 - cs64 / cs8)
            << "% cheaper (paper: ~21%)\n";
  for (std::size_t ci = 0; ci < cluster_sizes.size(); ++ci) {
    std::cout << "  heights: max_cs=" << cluster_sizes[ci] << " -> "
              << heights[ci] << " levels\n";
  }
  return 0;
}
