// Shared rig for the figure-reproduction benches.
//
// Each bench binary builds the paper's experimental setup (GT-ITM
// transit-stub topologies, uniformly random workloads), runs the algorithms
// under test, and prints the figure's series as an aligned table plus the
// headline ratios the paper quotes. Seeds are fixed so output is
// reproducible; pass a different seed as argv[1] to resample.
#pragma once

#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cluster/hierarchy.h"
#include "cluster/theory.h"
#include "common/prng.h"
#include "common/table.h"
#include "net/gtitm.h"
#include "net/routing.h"
#include "opt/bottom_up.h"
#include "opt/exhaustive.h"
#include "opt/in_network.h"
#include "opt/plan_then_deploy.h"
#include "opt/relaxation.h"
#include "opt/top_down.h"
#include "workload/generator.h"

namespace iflow::bench {

inline std::uint64_t seed_from_args(int argc, char** argv,
                                    std::uint64_t fallback = 20070326) {
  return argc > 1 ? std::strtoull(argv[1], nullptr, 10) : fallback;
}

/// The paper's main simulation network: 1 transit domain of 4 nodes, 4 stub
/// domains of 8 nodes per transit node ("128 node network").
inline net::Network paper_network(Prng& prng) {
  return net::make_transit_stub(net::TransitStubParams{}, prng);
}

/// The Emulab prototype testbed shape: 32-node-class transit-stub topology
/// with 1-60 ms delays and 1 Mbps links.
inline net::Network emulab_network(Prng& prng) {
  net::TransitStubParams p = net::scale_to(32);
  return net::make_transit_stub(p, prng);
}

struct Rig {
  net::Network net;
  net::RoutingTables rt;

  explicit Rig(net::Network n) : net(std::move(n)), rt(net::RoutingTables::build(net)) {}
};

/// Hierarchy over a rig's network. Callers pass the fully derived seed they
/// previously used inline (e.g. `seed + 32`), so bench output stays
/// byte-identical to the pre-helper versions.
inline cluster::Hierarchy build_hierarchy(const Rig& rig, int max_cs,
                                          std::uint64_t hier_seed) {
  Prng hp(hier_seed);
  return cluster::Hierarchy::build(rig.net, rig.rt, max_cs, hp);
}

/// The paper's workload shape (10 streams, 2–5 joins per query by default).
inline workload::WorkloadParams paper_workload_params(int min_joins = 2,
                                                      int max_joins = 5,
                                                      int num_streams = 10) {
  workload::WorkloadParams wp;
  wp.num_streams = num_streams;
  wp.min_joins = min_joins;
  wp.max_joins = max_joins;
  return wp;
}

/// Workload over the rig's network from a fully derived seed.
inline workload::Workload make_seeded_workload(const Rig& rig,
                                               const workload::WorkloadParams& wp,
                                               int num_queries,
                                               std::uint64_t wl_seed) {
  Prng prng(wl_seed);
  return workload::make_workload(rig.net, wp, num_queries, prng);
}

enum class Alg {
  kExhaustive,
  kTopDown,
  kBottomUp,
  kBottomUpFast,  // coordinator-pinned placement (no view refinement)
  kPlanThenDeploy,
  kRelaxation,
  kInNetwork,
};

inline std::unique_ptr<opt::Optimizer> make_optimizer(Alg alg,
                                                      const opt::OptimizerEnv& env,
                                                      std::uint64_t seed,
                                                      int zones = 5) {
  switch (alg) {
    case Alg::kExhaustive:
      return std::make_unique<opt::ExhaustiveOptimizer>(env);
    case Alg::kTopDown:
      return std::make_unique<opt::TopDownOptimizer>(env);
    case Alg::kBottomUp:
      return std::make_unique<opt::BottomUpOptimizer>(env);
    case Alg::kBottomUpFast:
      return std::make_unique<opt::BottomUpOptimizer>(env,
                                                      /*refine_views=*/false);
    case Alg::kPlanThenDeploy:
      return std::make_unique<opt::PlanThenDeployOptimizer>(env);
    case Alg::kRelaxation:
      // The paper's experiment built the 3-D cost space with 4 iterations
      // and ran as many relaxation iterations (§3.3).
      return std::make_unique<opt::RelaxationOptimizer>(
          env, seed, /*relax_iterations=*/4, /*embed_iterations=*/4);
    case Alg::kInNetwork:
      return std::make_unique<opt::InNetworkOptimizer>(env, seed, zones);
  }
  IFLOW_CHECK_MSG(false, "unknown algorithm");
}

struct RunStats {
  std::vector<double> cumulative_cost;  // after each query
  double plans = 0.0;
  double deploy_time_ms = 0.0;
};

/// Deploys a workload incrementally through one optimizer (fresh
/// advertisement registry) and returns the cumulative deployed cost curve.
inline RunStats run_incremental(Alg alg, const Rig& rig,
                                const cluster::Hierarchy* hierarchy,
                                const workload::Workload& wl, bool reuse,
                                std::uint64_t seed, int zones = 5) {
  advert::Registry registry;
  opt::OptimizerEnv env;
  env.catalog = &wl.catalog;
  env.network = &rig.net;
  env.routing = &rig.rt;
  env.hierarchy = hierarchy;
  env.registry = &registry;
  env.reuse = reuse;

  opt::Session session(env, make_optimizer(alg, env, seed, zones));
  RunStats stats;
  for (const query::Query& q : wl.queries) {
    const opt::OptimizeResult r = session.submit(q);
    IFLOW_CHECK(r.feasible);
    stats.cumulative_cost.push_back(session.cumulative_cost());
    stats.plans += r.plans_considered;
    stats.deploy_time_ms += r.deploy_time_ms;
  }
  return stats;
}

/// Element-wise mean of several cumulative-cost curves.
inline std::vector<double> mean_curves(
    const std::vector<std::vector<double>>& curves) {
  IFLOW_CHECK(!curves.empty());
  std::vector<double> mean(curves.front().size(), 0.0);
  for (const auto& c : curves) {
    IFLOW_CHECK(c.size() == mean.size());
    for (std::size_t i = 0; i < c.size(); ++i) mean[i] += c[i];
  }
  for (double& v : mean) v /= static_cast<double>(curves.size());
  return mean;
}

}  // namespace iflow::bench
