// Figure 7 — sub-optimality and the effect of operator reuse at max_cs=32.
//
// Series: optimal (exhaustive joint search), Top-Down and Bottom-Up each
// with and without reuse. Paper headlines: reuse saves ~27% (Top-Down) and
// ~30% (Bottom-Up); with reuse Top-Down is ~10% above optimal and ~19%
// below Bottom-Up, which sits ~34% above optimal.
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace iflow;
  using namespace iflow::bench;
  const std::uint64_t seed = seed_from_args(argc, argv);
  const int kWorkloads = 10;
  const int kQueries = 20;

  Prng net_prng(seed);
  Rig rig(paper_network(net_prng));
  const cluster::Hierarchy hierarchy = build_hierarchy(rig, 32, seed + 32);

  struct Series {
    std::string name;
    Alg alg;
    bool reuse;
    std::vector<std::vector<double>> curves;
  };
  std::vector<Series> series = {
      {"td-noreuse", Alg::kTopDown, false, {}},
      {"td+reuse", Alg::kTopDown, true, {}},
      {"bu-noreuse", Alg::kBottomUp, false, {}},
      {"bu+reuse", Alg::kBottomUp, true, {}},
      {"optimal", Alg::kExhaustive, true, {}},
  };

  for (int w = 0; w < kWorkloads; ++w) {
    const workload::Workload wl =
        make_seeded_workload(rig, paper_workload_params(), kQueries,
                             seed + 1000 + static_cast<std::uint64_t>(w));
    for (Series& s : series) {
      s.curves.push_back(
          run_incremental(s.alg, rig, &hierarchy, wl, s.reuse, seed)
              .cumulative_cost);
    }
  }

  std::cout << "Figure 7: sub-optimality and effect of reuse (max_cs=32)\n"
            << "(" << rig.net.node_count() << "-node network, " << kWorkloads
            << " workloads x " << kQueries << " queries, seed " << seed
            << ")\n\n";
  std::vector<std::string> header = {"queries"};
  std::vector<std::vector<double>> means;
  for (Series& s : series) {
    header.push_back(s.name);
    means.push_back(mean_curves(s.curves));
  }
  TextTable t(header);
  for (int qi = 0; qi < kQueries; ++qi) {
    auto& row = t.row().cell(qi + 1);
    for (const auto& m : means) row.cell(m[static_cast<std::size_t>(qi)] / 1000.0);
  }
  t.print(std::cout);
  std::cout << "(cost per unit time, in thousands)\n\n";

  const double td_no = means[0].back();
  const double td = means[1].back();
  const double bu_no = means[2].back();
  const double bu = means[3].back();
  const double opt = means[4].back();
  std::cout << "reuse saving, top-down : " << 100.0 * (1.0 - td / td_no)
            << "% (paper: ~27%)\n";
  std::cout << "reuse saving, bottom-up: " << 100.0 * (1.0 - bu / bu_no)
            << "% (paper: ~30%)\n";
  std::cout << "top-down+reuse vs optimal : " << 100.0 * (td / opt - 1.0)
            << "% above (paper: ~10%)\n";
  std::cout << "bottom-up+reuse vs optimal: " << 100.0 * (bu / opt - 1.0)
            << "% above (paper: ~34%)\n";
  std::cout << "top-down vs bottom-up (with reuse): "
            << 100.0 * (1.0 - td / bu) << "% cheaper (paper: ~19%)\n";
  return 0;
}
