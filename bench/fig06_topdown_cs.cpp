// Figure 6 — Top-Down: cumulative deployed cost vs number of queries for
// cluster sizes max_cs in {2,4,8,16,32,64}.
//
// Paper headline: all max_cs > 4 land close together (Top-Down always
// considers every operator ordering at the top level); very small clusters
// add levels and therefore approximation error.
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace iflow;
  using namespace iflow::bench;
  const std::uint64_t seed = seed_from_args(argc, argv);
  const int kWorkloads = 10;
  const int kQueries = 20;
  const std::vector<int> cluster_sizes = {2, 4, 8, 16, 32, 64};

  Prng net_prng(seed);
  Rig rig(paper_network(net_prng));

  std::vector<std::vector<double>> mean_per_cs;
  for (std::size_t ci = 0; ci < cluster_sizes.size(); ++ci) {
    const int cs = cluster_sizes[ci];
    std::vector<std::vector<double>> curves;
    for (int w = 0; w < kWorkloads; ++w) {
      // A fresh clustering per workload averages out k-medoids seeding.
      const cluster::Hierarchy hierarchy = build_hierarchy(
          rig, cs, seed + static_cast<std::uint64_t>(cs * 100 + w));
      const workload::Workload wl =
          make_seeded_workload(rig, paper_workload_params(), kQueries,
                               seed + 1000 + static_cast<std::uint64_t>(w));
      curves.push_back(
          run_incremental(Alg::kTopDown, rig, &hierarchy, wl, true, seed)
              .cumulative_cost);
    }
    mean_per_cs.push_back(mean_curves(curves));
  }

  std::cout << "Figure 6: Top-Down cumulative cost vs queries, by max_cs\n"
            << "(" << rig.net.node_count() << "-node network, 10 streams, "
            << kWorkloads << " workloads x " << kQueries
            << " queries of 2-5 joins, seed " << seed << ")\n\n";
  std::vector<std::string> header = {"queries"};
  for (int cs : cluster_sizes) header.push_back("cs=" + std::to_string(cs));
  TextTable t(header);
  for (int qi = 0; qi < kQueries; ++qi) {
    auto& row = t.row().cell(qi + 1);
    for (const auto& curve : mean_per_cs) {
      row.cell(curve[static_cast<std::size_t>(qi)] / 1000.0);
    }
  }
  t.print(std::cout);
  std::cout << "(cost per unit time, in thousands)\n\n";

  // Spread of the final costs among cs >= 8 relative to their mean: the
  // paper observes these curves nearly coincide.
  double lo = 1e300;
  double hi = 0.0;
  double sum = 0.0;
  for (std::size_t ci = 2; ci < cluster_sizes.size(); ++ci) {
    const double v = mean_per_cs[ci].back();
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    sum += v;
  }
  const double mean = sum / 4.0;
  std::cout << "spread of final cost across cs in {8,16,32,64}: "
            << 100.0 * (hi - lo) / mean
            << "% of mean (paper: curves nearly coincide for cs > 4)\n";
  std::cout << "cs=2 vs cs=32: "
            << 100.0 * (mean_per_cs[0].back() / mean_per_cs[4].back() - 1.0)
            << "% more expensive (paper: small clusters are worse)\n";
  return 0;
}
