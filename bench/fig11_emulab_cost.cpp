// Figure 11 — prototype (Emulab-substitute): cumulative deployed cost of 25
// queries over 8 stream sources for Bottom-Up / Top-Down at cluster sizes
// 4 and 8.
//
// Paper headline: Top-Down yields lower deployed cost than Bottom-Up (it
// considers all operator orderings at the top level), consistent with the
// simulation results.
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace iflow;
  using namespace iflow::bench;
  const std::uint64_t seed = seed_from_args(argc, argv);
  const int kQueries = 25;
  const std::vector<int> cluster_sizes = {4, 8};

  Prng net_prng(seed);
  Rig rig(emulab_network(net_prng));
  std::vector<cluster::Hierarchy> hierarchies;
  for (int cs : cluster_sizes) {
    hierarchies.push_back(
        build_hierarchy(rig, cs, seed + static_cast<std::uint64_t>(cs)));
  }

  const workload::Workload wl = make_seeded_workload(
      rig, paper_workload_params(/*min_joins=*/1, /*max_joins=*/4,
                                 /*num_streams=*/8),
      kQueries, seed + 1);

  const RunStats bu4 =
      run_incremental(Alg::kBottomUp, rig, &hierarchies[0], wl, true, seed);
  const RunStats bu8 =
      run_incremental(Alg::kBottomUp, rig, &hierarchies[1], wl, true, seed);
  const RunStats td4 =
      run_incremental(Alg::kTopDown, rig, &hierarchies[0], wl, true, seed);
  const RunStats td8 =
      run_incremental(Alg::kTopDown, rig, &hierarchies[1], wl, true, seed);

  std::cout << "Figure 11: cumulative deployed cost, prototype topology\n"
            << "(" << rig.net.node_count() << "-node Emulab-style topology, "
            << kQueries << " queries over 8 streams, 1-4 joins, seed " << seed
            << ")\n\n";
  TextTable t({"queries", "bu(cs=4)", "bu(cs=8)", "td(cs=4)", "td(cs=8)"});
  for (int qi = 0; qi < kQueries; ++qi) {
    const auto i = static_cast<std::size_t>(qi);
    t.row()
        .cell(qi + 1)
        .cell(bu4.cumulative_cost[i] / 1000.0)
        .cell(bu8.cumulative_cost[i] / 1000.0)
        .cell(td4.cumulative_cost[i] / 1000.0)
        .cell(td8.cumulative_cost[i] / 1000.0);
  }
  t.print(std::cout);
  std::cout << "(cost per unit time, in thousands)\n\n";

  const double bu_best = std::min(bu4.cumulative_cost.back(),
                                  bu8.cumulative_cost.back());
  const double td_best = std::min(td4.cumulative_cost.back(),
                                  td8.cumulative_cost.back());
  std::cout << "top-down vs bottom-up (best cs each): "
            << 100.0 * (1.0 - td_best / bu_best)
            << "% cheaper (paper: top-down offers the lower deployed cost)\n";
  return 0;
}
