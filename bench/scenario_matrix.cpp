// Scenario × optimizer conformance matrix.
//
// Runs every optimizer against every named scenario of the catalogue
// (src/workload/scenario.h) through the chaos harness: injector churn for
// plain scenarios, the scenario's fixed failure script otherwise, always
// followed by the post-churn lossy/loss-free delivery contract. Per-cell
// results — deployed cost, convergence, mean availability, goodput, modeled
// plan latency, validator violations — land in BENCH_scenarios.json
// (machine-readable; the CI scenario-matrix job uploads it).
//
// The process exits non-zero when any cell violates a hard contract
// (validator violations, unresumed queries, failed convergence, failed
// delivery equality), so the matrix doubles as a conformance suite.
//
// Flags:
//   --subset      CI budget: a 4-scenario representative slice
//   --threads N   planner threads (digests are thread-count invariant)
//   --digest      print each cell's digest hash line (for thread diffing)
//   --out PATH    JSON output path (default BENCH_scenarios.json)
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "engine/chaos.h"
#include "workload/scenario.h"

namespace {

using namespace iflow;

constexpr int kMaxCs = 8;

struct Cell {
  std::string scenario;
  std::string optimizer;
  bool scripted = false;
  std::size_t violations = 0;
  bool all_resumed = false;
  bool converged = false;
  bool delivery_ok = false;
  double final_cost = 0.0;
  double fresh_cost = 0.0;
  double deploy_time_ms = 0.0;
  double availability = 0.0;
  double goodput_tps = 0.0;
  std::uint64_t delivered = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t duplicates = 0;
  std::string digest;

  bool ok() const {
    return violations == 0 && all_resumed && converged && delivery_ok;
  }
};

/// FNV-1a over the digest: a compact stand-in for the full transcript when
/// diffing thread counts.
std::uint64_t digest_hash(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

Cell run_cell(const workload::Scenario& sc, engine::Algorithm alg,
              int threads) {
  engine::ChaosConfig cfg;
  cfg.events = 24;
  cfg.threads = threads;
  cfg.delivery_check = true;
  cfg.rate_modulation = sc.rate_modulation();

  const engine::ChaosReport report =
      sc.script.empty()
          ? engine::run_churn(sc.net, sc.workload.catalog, sc.workload.queries,
                              kMaxCs, alg, sc.spec.seed, cfg)
          : engine::run_scripted(sc.net, sc.workload.catalog,
                                 sc.workload.queries, kMaxCs, alg,
                                 sc.spec.seed, sc.script, cfg);

  Cell c;
  c.scenario = sc.spec.name;
  c.optimizer = engine::to_string(alg);
  c.scripted = !sc.script.empty();
  c.violations = report.violations;
  c.all_resumed = report.all_resumed;
  c.converged = report.converged;
  c.delivery_ok = report.delivery_checked && report.delivery_ok;
  c.final_cost = report.final_cost;
  c.fresh_cost = report.fresh_cost;
  c.deploy_time_ms = report.deploy_time_ms;
  c.availability = report.mean_availability;
  c.goodput_tps = report.goodput_tps;
  c.delivered = report.delivered_total;
  c.retransmits = report.retransmits_total;
  c.duplicates = report.duplicates_total;
  c.digest = report.digest;
  if (!c.ok() && !report.violation_detail.empty()) {
    std::cerr << "  first violation: " << report.violation_detail << "\n";
  }
  return c;
}

void write_json(const std::string& path, const std::vector<Cell>& cells,
                int threads) {
  std::ofstream out(path);
  out << "{\n  \"max_cs\": " << kMaxCs << ", \"threads\": " << threads
      << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << "    {\"scenario\": \"" << c.scenario << "\", \"optimizer\": \""
        << c.optimizer << "\", \"scripted\": " << (c.scripted ? 1 : 0)
        << ", \"violations\": " << c.violations
        << ", \"all_resumed\": " << (c.all_resumed ? 1 : 0)
        << ", \"converged\": " << (c.converged ? 1 : 0)
        << ", \"delivery_ok\": " << (c.delivery_ok ? 1 : 0)
        << ", \"final_cost\": " << c.final_cost
        << ", \"fresh_cost\": " << c.fresh_cost
        << ", \"plan_latency_ms\": " << c.deploy_time_ms
        << ", \"availability\": " << c.availability
        << ", \"goodput_tps\": " << c.goodput_tps
        << ", \"delivered\": " << c.delivered
        << ", \"retransmits\": " << c.retransmits
        << ", \"duplicates\": " << c.duplicates << ", \"digest_fnv\": \""
        << std::hex << digest_hash(c.digest) << std::dec << "\"}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool subset = false;
  bool print_digest = false;
  int threads = 1;
  std::string out_path = "BENCH_scenarios.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--subset") == 0) {
      subset = true;
    } else if (std::strcmp(argv[i], "--digest") == 0) {
      print_digest = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: scenario_matrix [--subset] [--digest] "
                   "[--threads N] [--out PATH]\n";
      return 2;
    }
  }

  // The CI slice covers every scenario *family*: churn, rates, placement,
  // scripted failures, loss.
  const std::vector<std::string> names =
      subset ? std::vector<std::string>{"baseline-uniform", "diurnal-rates",
                                        "geo-clustered", "cluster-outage",
                                        "loss-storm"}
             : workload::scenario_names();
  const std::vector<engine::Algorithm> algorithms = {
      engine::Algorithm::kExhaustive,     engine::Algorithm::kTopDown,
      engine::Algorithm::kBottomUp,       engine::Algorithm::kPlanThenDeploy,
      engine::Algorithm::kRelaxation,     engine::Algorithm::kInNetwork,
  };

  std::vector<Cell> cells;
  int failures = 0;
  for (const std::string& name : names) {
    const workload::Scenario sc =
        workload::build_scenario(workload::scenario_spec(name));
    std::cout << name << " (queries " << sc.workload.queries.size()
              << ", nodes " << sc.net.node_count() << ", script "
              << sc.script.size() << " events):\n";
    for (const engine::Algorithm alg : algorithms) {
      cells.push_back(run_cell(sc, alg, threads));
      const Cell& c = cells.back();
      std::cout << "  " << c.optimizer << ": cost " << c.final_cost
                << " (fresh " << c.fresh_cost << "), avail " << c.availability
                << ", goodput " << c.goodput_tps << " t/s, plan "
                << c.deploy_time_ms << " ms, "
                << (c.ok() ? "ok" : "CONTRACT FAILED") << "\n";
      if (print_digest) {
        std::cout << "    digest-fnv " << std::hex << digest_hash(c.digest)
                  << std::dec << "\n";
      }
      if (!c.ok()) ++failures;
    }
  }

  write_json(out_path, cells, threads);
  std::cout << "wrote " << out_path << " (" << cells.size() << " cells, "
            << failures << " contract failures)\n";
  return failures == 0 ? 0 : 1;
}
