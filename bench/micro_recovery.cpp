// Checkpoint/recovery microbenchmark: snapshot overhead and recovery
// latency as a function of the checkpoint interval.
//
// The harness builds the dual-relay star world (three sources, a 3-way
// join on the cheap primary relay, a dedicated sink) and sweeps the
// checkpoint interval through engine::run_recovery. Each sweep point
// reports the committed-epoch count, total and peak snapshot bytes, mean
// and peak barrier-alignment latency, the rollback recovery latency, the
// retained-buffer high-water mark and the three sub-run delivery counts
// (fault-free twin, checkpointed faulted run, volatile no-snapshot run).
// Results land in BENCH_recovery.json (machine-readable, uploaded by the
// CI perf-smoke job alongside BENCH_health.json and friends).
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/check.h"
#include "engine/chaos.h"

namespace {

using namespace iflow;

constexpr std::uint64_t kSeed = 20070806;
constexpr int kMaxCs = 8;
constexpr double kRate = 30.0;
constexpr double kSelectivity = 0.05;

struct World {
  net::Network net;
  query::Catalog catalog;
  std::vector<query::Query> queries;
};

/// Dual-relay star: three sources and the sink each reach both relays, the
/// primary strictly cheaper. The 3-way join lands on the primary for every
/// optimizer, so the recovery harness has a stateful non-endpoint host to
/// crash and a clean detour for the forced mid-window migration.
World make_world() {
  World w;
  const net::NodeId primary = w.net.add_node();
  const net::NodeId backup = w.net.add_node();
  std::vector<net::NodeId> srcs;
  for (int i = 0; i < 3; ++i) srcs.push_back(w.net.add_node());
  const net::NodeId sink = w.net.add_node();
  for (const net::NodeId n : srcs) {
    w.net.add_link(primary, n, 1.0, 1.0, 1e6);
    w.net.add_link(backup, n, 1.3, 1.0, 1e6);
  }
  w.net.add_link(primary, sink, 1.0, 1.0, 1e6);
  w.net.add_link(backup, sink, 1.3, 1.0, 1e6);
  std::vector<query::StreamId> streams;
  for (int i = 0; i < 3; ++i) {
    streams.push_back(w.catalog.add_stream(
        "S" + std::to_string(i), srcs[static_cast<std::size_t>(i)], kRate,
        100.0));
  }
  for (std::size_t i = 0; i < streams.size(); ++i) {
    for (std::size_t j = i + 1; j < streams.size(); ++j) {
      w.catalog.set_selectivity(streams[i], streams[j], kSelectivity);
    }
  }
  query::Query q;
  q.id = 1;
  q.sources = streams;
  q.sink = sink;
  w.queries.push_back(q);
  return w;
}

struct IntervalRow {
  double interval_s = 0.0;
  std::int64_t epochs_committed = 0;
  double snapshot_bytes_total = 0.0;
  double snapshot_bytes_max = 0.0;
  double barrier_latency_mean_s = 0.0;
  double barrier_latency_max_s = 0.0;
  double recovery_latency_s = 0.0;
  std::size_t retained_high_water = 0;
  std::size_t seen_high_water = 0;
  std::uint64_t twin_delivered = 0;
  std::uint64_t faulted_delivered = 0;
  std::uint64_t volatile_delivered = 0;
  std::uint64_t faulted_lost = 0;
  bool counts_match = false;
  bool contract_ok = false;
};

void write_json(const std::string& path, const std::vector<IntervalRow>& rows,
                const engine::RecoveryConfig& cfg) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"world\": {\"shape\": \"dual-relay-star\", \"sources\": 3"
      << ", \"rate_tps\": " << kRate << ", \"selectivity\": " << kSelectivity
      << ", \"max_cs\": " << kMaxCs << ", \"duration_s\": " << cfg.duration_s
      << ", \"drain_s\": " << cfg.drain_s << ", \"crash_at_s\": "
      << cfg.crash_at_s << ", \"crash_len_s\": " << cfg.crash_len_s
      << ", \"replicas\": " << cfg.replicas << "},\n";
  out << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const IntervalRow& r = rows[i];
    out << "    {\"interval_s\": " << r.interval_s
        << ", \"epochs_committed\": " << r.epochs_committed
        << ", \"snapshot_bytes_total\": " << r.snapshot_bytes_total
        << ", \"snapshot_bytes_max\": " << r.snapshot_bytes_max
        << ", \"barrier_latency_mean_s\": " << r.barrier_latency_mean_s
        << ", \"barrier_latency_max_s\": " << r.barrier_latency_max_s
        << ", \"recovery_latency_s\": " << r.recovery_latency_s
        << ", \"retained_high_water\": " << r.retained_high_water
        << ", \"seen_high_water\": " << r.seen_high_water
        << ", \"twin_delivered\": " << r.twin_delivered
        << ", \"faulted_delivered\": " << r.faulted_delivered
        << ", \"volatile_delivered\": " << r.volatile_delivered
        << ", \"faulted_lost\": " << r.faulted_lost
        << ", \"counts_match\": " << (r.counts_match ? "true" : "false")
        << ", \"contract_ok\": " << (r.contract_ok ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
}

}  // namespace

int main() {
  const World w = make_world();
  const std::vector<double> intervals = {2.0, 4.0, 8.0, 16.0};
  engine::RecoveryConfig cfg;  // default crash/migration schedule
  std::vector<IntervalRow> rows;
  for (const double iv : intervals) {
    engine::RecoveryConfig c = cfg;
    c.checkpoint_interval_s = iv;
    const engine::RecoveryReport rep =
        engine::run_recovery(w.net, w.catalog, w.queries, kMaxCs,
                             engine::Algorithm::kTopDown, kSeed, c);
    IntervalRow r;
    r.interval_s = iv;
    r.epochs_committed = rep.epochs_committed;
    r.snapshot_bytes_total = rep.snapshot_bytes_total;
    r.snapshot_bytes_max = rep.snapshot_bytes_max;
    r.barrier_latency_mean_s = rep.barrier_latency_mean_s;
    r.barrier_latency_max_s = rep.barrier_latency_max_s;
    r.recovery_latency_s = rep.recovery_latency_s;
    r.retained_high_water = rep.retained_high_water;
    r.seen_high_water = rep.seen_high_water;
    r.twin_delivered = rep.twin_delivered;
    r.faulted_delivered = rep.faulted_delivered;
    r.volatile_delivered = rep.volatile_delivered;
    r.faulted_lost = rep.faulted_lost;
    r.counts_match = rep.counts_match;
    r.contract_ok = rep.contract_ok;
    rows.push_back(r);
    std::cout << "interval " << iv << "s: epochs " << r.epochs_committed
              << ", snapshot bytes total/max " << r.snapshot_bytes_total << "/"
              << r.snapshot_bytes_max << ", barrier latency mean/max "
              << r.barrier_latency_mean_s << "/" << r.barrier_latency_max_s
              << "s, recovery latency " << r.recovery_latency_s
              << "s, twin/faulted/volatile " << r.twin_delivered << "/"
              << r.faulted_delivered << "/" << r.volatile_delivered
              << (r.contract_ok ? " [contract ok]" : "") << "\n";
  }
  write_json("BENCH_recovery.json", rows, cfg);
  std::cout << "wrote BENCH_recovery.json\n";
  return 0;
}
