// Reliable-delivery microbenchmark: goodput and retransmission overhead as
// a function of per-link loss rate.
//
// For each Fig-9-class network size the harness deploys a fixed workload
// through the middleware (so reuse chains and derived units are realistic),
// then runs the reliable-mode simulation over copies of the network with a
// uniform per-link loss rate swept from 0 to 5%. Every sweep point reports
// aggregate delivered tuples, goodput, lost-after-retries, and the byte
// overhead retransmissions add on top of first transmissions. Results land
// in BENCH_reliability.json (machine-readable, uploaded by the CI
// perf-smoke job alongside BENCH_planner.json and BENCH_adapt.json).
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/check.h"
#include "engine/middleware.h"
#include "engine/simulation.h"
#include "net/gtitm.h"
#include "workload/generator.h"

namespace {

using namespace iflow;

constexpr int kQueries = 8;
constexpr int kStreams = 12;
constexpr int kMaxCs = 32;
constexpr double kDurationS = 20.0;

struct LossRow {
  double loss = 0.0;
  std::uint64_t delivered = 0;
  std::uint64_t lost = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t duplicates = 0;
  double goodput_tps = 0.0;
  double data_bytes = 0.0;
  double retransmit_bytes = 0.0;
  double overhead = 0.0;  // retransmit_bytes / data_bytes
};

struct SizeRow {
  std::size_t nodes = 0;
  std::vector<LossRow> rows;
};

// Dependency-ordered deploy: derived leaf units bind to operators of
// already-deployed queries, so sweep to a fixpoint (same idiom as the
// chaos harness's post-churn delivery check).
void deploy_all(engine::Simulation& sim, const engine::Middleware& mw,
                const std::vector<engine::Middleware::ActiveView>& views) {
  std::vector<bool> done(views.size(), false);
  std::size_t remaining = views.size();
  bool progress = true;
  while (remaining > 0 && progress) {
    progress = false;
    for (std::size_t i = 0; i < views.size(); ++i) {
      if (done[i]) continue;
      try {
        sim.deploy(*views[i].deployment,
                   query::RateModel(mw.catalog(), *views[i].query));
        done[i] = true;
        --remaining;
        progress = true;
      } catch (const CheckError&) {
        // Provider not deployed yet; retry next sweep.
      }
    }
  }
  IFLOW_CHECK_MSG(remaining == 0, "reuse chain failed to deploy");
}

SizeRow measure(int size, const std::vector<double>& loss_rates) {
  Prng net_prng(11 + static_cast<std::uint64_t>(size));
  net::Network base = net::make_transit_stub(net::scale_to(size), net_prng);

  workload::WorkloadParams wp;
  wp.num_streams = kStreams;
  // Goodput needs results actually reaching sinks: the Fig-9 4-source/
  // 1%-selectivity shape joins to ~zero output in a 20 s window, so this
  // harness uses 2–3-source queries over chattier streams instead. The
  // network sizes stay the Fig-9 series.
  wp.min_joins = 1;
  wp.max_joins = 2;
  wp.selectivity_min = 0.1;
  wp.selectivity_max = 0.3;
  wp.tuple_rate_min = 10.0;
  wp.tuple_rate_max = 30.0;
  Prng wl_prng(12);
  workload::Workload wl = workload::make_workload(base, wp, kQueries, wl_prng);

  engine::Middleware mw(base, wl.catalog, kMaxCs,
                        engine::Algorithm::kTopDown, /*seed=*/13);
  mw.workspace().set_threads(1);
  for (const query::Query& q : wl.queries) mw.deploy(q);
  const std::vector<engine::Middleware::ActiveView> views = mw.active_views();

  engine::EngineConfig ec;
  ec.duration_s = kDurationS;
  ec.reliability.enabled = true;
  // GT-ITM transit-stub links carry up to 60 ms propagation delay and acks
  // ride the full return path, so multi-hop round trips run to hundreds of
  // ms — far past the default 50 ms timeout, which would retransmit every
  // tuple spuriously. Size the timeout to the topology instead.
  ec.reliability.ack_timeout_s = 1.0;
  ec.reliability.max_backoff_s = 4.0;

  SizeRow row;
  row.nodes = base.node_count();
  for (double loss : loss_rates) {
    net::Network net = base;
    for (const net::Link& l : base.links()) net.set_link_loss(l.a, l.b, loss);
    const net::RoutingTables rt = net::RoutingTables::build(net);
    engine::Simulation sim(net, rt, mw.catalog(), ec, /*seed=*/19);
    deploy_all(sim, mw, views);
    sim.run();

    LossRow r;
    r.loss = loss;
    for (const engine::Middleware::ActiveView& v : views) {
      const engine::DeliveryStats ds = sim.delivery_stats(v.query->id);
      r.delivered += ds.delivered;
      r.lost += ds.lost;
      r.retransmits += ds.retransmits;
      r.duplicates += ds.duplicates;
      r.goodput_tps += ds.goodput_tps;
      r.data_bytes += ds.data_bytes;
      r.retransmit_bytes += ds.retransmit_bytes;
    }
    r.overhead = r.data_bytes > 0.0 ? r.retransmit_bytes / r.data_bytes : 0.0;
    row.rows.push_back(r);
  }
  return row;
}

void write_json(const std::string& path, const std::vector<SizeRow>& sizes) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"workload\": {\"queries\": " << kQueries
      << ", \"streams\": " << kStreams << ", \"sources_per_query\": \"2-3\""
      << ", \"max_cs\": " << kMaxCs << ", \"duration_s\": " << kDurationS
      << "},\n";
  out << "  \"sizes\": [\n";
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const SizeRow& s = sizes[i];
    out << "    {\"nodes\": " << s.nodes << ", \"sweep\": [\n";
    for (std::size_t j = 0; j < s.rows.size(); ++j) {
      const LossRow& r = s.rows[j];
      out << "      {\"loss\": " << r.loss << ", \"delivered\": " << r.delivered
          << ", \"lost\": " << r.lost << ", \"retransmits\": " << r.retransmits
          << ", \"duplicates\": " << r.duplicates
          << ", \"goodput_tps\": " << r.goodput_tps
          << ", \"data_bytes\": " << r.data_bytes
          << ", \"retransmit_bytes\": " << r.retransmit_bytes
          << ", \"overhead\": " << r.overhead << "}"
          << (j + 1 < s.rows.size() ? "," : "") << "\n";
    }
    out << "    ]}" << (i + 1 < sizes.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
}

}  // namespace

int main() {
  const std::vector<int> sizes = {128, 256, 512};
  const std::vector<double> loss_rates = {0.0, 0.01, 0.02, 0.05};
  std::vector<SizeRow> rows;
  for (int size : sizes) {
    rows.push_back(measure(size, loss_rates));
    const SizeRow& s = rows.back();
    std::cout << s.nodes << " nodes:\n";
    for (const LossRow& r : s.rows) {
      std::cout << "  loss " << r.loss << ": delivered " << r.delivered
                << " (goodput " << r.goodput_tps << " t/s), lost " << r.lost
                << ", retransmits " << r.retransmits << ", overhead "
                << r.overhead << "\n";
    }
  }
  write_json("BENCH_reliability.json", rows);
  std::cout << "wrote BENCH_reliability.json\n";
  return 0;
}
