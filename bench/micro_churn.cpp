// Registration-churn microbenchmark: what does the multi-tenant churn
// plane sustain, and what does admission control cost?
//
// Phase A sweeps three offered-load levels (node capacity at 1.0 / 0.7 /
// 0.45 of the workload's uncapacitated peak) and drives a seeded
// register/unregister loop against a live Middleware, timing every deploy.
// Per level it reports sustained registration throughput, p99 plan latency,
// the reuse hit-rate across churn and the admission rejection rate — the
// rejection-vs-offered-load curve is the overload-safety story.
//
// Phase B sweeps seeds through engine::run_registration_churn and reports
// the dirty-region settle criteria: the fraction of runs where a terminal
// reoptimize() improves the settled cost by at most 5%, and the fraction
// of actives each settle pass replanned. Results land in BENCH_churn.json
// (uploaded by the CI perf-smoke job).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "engine/chaos.h"
#include "net/gtitm.h"
#include "workload/generator.h"

namespace {

using namespace iflow;

constexpr int kNetSize = 128;
constexpr int kQueries = 12;
constexpr int kStreams = 16;
constexpr int kMaxCs = 32;
constexpr int kChurnEvents = 240;
constexpr int kSettleEvery = 8;
constexpr int kParitySeeds = 8;

template <typename F>
double time_ms(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

double percentile(std::vector<double> v, double p) {
  IFLOW_CHECK(!v.empty());
  std::sort(v.begin(), v.end());
  const double rank = p * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

struct World {
  net::Network net;
  workload::Workload wl;
};

World make_world() {
  World w;
  Prng net_prng(31);
  w.net = net::make_transit_stub(net::scale_to(kNetSize), net_prng);
  workload::WorkloadParams wp;
  wp.num_streams = kStreams;
  wp.min_joins = 2;
  wp.max_joins = 3;
  Prng wl_prng(32);
  w.wl = workload::make_workload(w.net, wp, kQueries, wl_prng);
  for (std::size_t i = 0; i < w.wl.queries.size(); ++i) {
    w.wl.queries[i].tenant = static_cast<std::uint32_t>(i % 3);
  }
  return w;
}

double uncapacitated_peak(const World& w) {
  net::Network net = w.net;
  query::Catalog catalog = w.wl.catalog;
  engine::Middleware mw(net, catalog, kMaxCs, engine::Algorithm::kTopDown,
                        13);
  mw.workspace().set_threads(1);
  for (const query::Query& q : w.wl.queries) mw.deploy(q);
  double peak = 0.0;
  for (const double l : mw.node_loads()) peak = std::max(peak, l);
  return peak;
}

struct LevelRow {
  double load_factor = 0.0;    // offered load relative to capacity
  double node_capacity = 0.0;  // bytes/s budget per node
  double registers_per_s = 0.0;
  double p99_plan_ms = 0.0;
  double median_plan_ms = 0.0;
  double reuse_hit_rate = 0.0;
  double rejection_rate = 0.0;
  std::size_t register_attempts = 0;
  std::size_t admitted = 0;
  std::size_t degraded = 0;
  std::size_t rejected = 0;
};

LevelRow measure_level(const World& w, double capacity_fraction,
                       double peak) {
  net::Network net = w.net;
  query::Catalog catalog = w.wl.catalog;
  engine::Middleware mw(net, catalog, kMaxCs, engine::Algorithm::kTopDown,
                        13);
  mw.workspace().set_threads(1);
  engine::AdmissionConfig ac;
  ac.node_capacity = peak * capacity_fraction;
  mw.set_admission_config(ac);

  LevelRow row;
  // Offered load is the full pool; capacity_fraction scales what fits.
  row.load_factor = 1.0 / capacity_fraction;
  row.node_capacity = ac.node_capacity;

  Prng prng(41);
  std::vector<char> in_system(w.wl.queries.size(), 0);
  std::vector<double> plan_ms;
  const auto loop_t0 = std::chrono::steady_clock::now();
  for (int event = 0; event < kChurnEvents; ++event) {
    std::vector<std::size_t> in, out;
    for (std::size_t i = 0; i < in_system.size(); ++i) {
      (in_system[i] != 0 ? in : out).push_back(i);
    }
    const bool unregister =
        !in.empty() && (out.empty() || prng.chance(0.45));
    if (unregister) {
      const std::size_t pick = in[prng.index(in.size())];
      mw.undeploy(w.wl.queries[pick].id);
      in_system[pick] = 0;
    } else {
      const std::size_t pick = out[prng.index(out.size())];
      const query::Query& q = w.wl.queries[pick];
      ++row.register_attempts;
      opt::OptimizeResult res;
      plan_ms.push_back(time_ms([&] { res = mw.deploy(q); }));
      if (res.feasible) {
        in_system[pick] = 1;
        if (mw.last_admission().decision ==
            engine::AdmissionDecision::kAdmitDegraded) {
          ++row.degraded;
        }
        ++row.admitted;
        for (const query::LeafUnit& u : res.deployment.units) {
          if (u.derived) {
            row.reuse_hit_rate += 1.0;
            break;
          }
        }
      } else if (mw.last_admission().decision ==
                 engine::AdmissionDecision::kReject) {
        ++row.rejected;
      } else {
        in_system[pick] = 1;  // parked suspended
      }
    }
    if ((event + 1) % kSettleEvery == 0) mw.settle();
  }
  const double loop_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    loop_t0)
          .count();
  row.registers_per_s =
      static_cast<double>(row.register_attempts) / std::max(loop_s, 1e-9);
  row.p99_plan_ms = percentile(plan_ms, 0.99);
  row.median_plan_ms = percentile(plan_ms, 0.5);
  row.reuse_hit_rate /= std::max<double>(1.0, row.admitted);
  row.rejection_rate = static_cast<double>(row.rejected) /
                       std::max<double>(1.0, row.register_attempts);
  return row;
}

struct SettleRow {
  std::size_t seeds = 0;
  std::size_t parity_ok = 0;
  double parity_fraction = 0.0;
  double replan_fraction = 0.0;  // settle replans over actives present
  double reuse_hit_rate = 0.0;   // across the churn runs
};

SettleRow measure_settle(const World& w) {
  SettleRow row;
  std::size_t replans = 0, actives = 0, reuse = 0, registered = 0;
  for (int s = 0; s < kParitySeeds; ++s) {
    engine::RegistrationChurnConfig cfg;
    cfg.events = 48;
    cfg.settle_every = kSettleEvery;
    const engine::RegistrationChurnReport r =
        engine::run_registration_churn(w.net, w.wl.catalog, w.wl.queries,
                                       kMaxCs, engine::Algorithm::kTopDown,
                                       100 + static_cast<std::uint64_t>(s),
                                       cfg);
    ++row.seeds;
    if (r.parity_ok) ++row.parity_ok;
    replans += r.settle_replans;
    actives += r.settle_actives;
    reuse += r.reuse_deployments;
    registered += r.registrations;
  }
  row.parity_fraction = static_cast<double>(row.parity_ok) /
                        std::max<double>(1.0, row.seeds);
  row.replan_fraction =
      static_cast<double>(replans) / std::max<double>(1.0, actives);
  row.reuse_hit_rate =
      static_cast<double>(reuse) / std::max<double>(1.0, registered);
  return row;
}

void write_json(const std::string& path, const std::vector<LevelRow>& levels,
                const SettleRow& settle) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"workload\": {\"nodes\": " << kNetSize
      << ", \"queries\": " << kQueries << ", \"streams\": " << kStreams
      << ", \"max_cs\": " << kMaxCs << ", \"events\": " << kChurnEvents
      << ", \"settle_every\": " << kSettleEvery << ", \"threads\": 1},\n";
  out << "  \"levels\": [\n";
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const LevelRow& r = levels[i];
    out << "    {\"offered_load_factor\": " << r.load_factor
        << ", \"node_capacity\": " << r.node_capacity
        << ", \"registers_per_s\": " << r.registers_per_s
        << ", \"p99_plan_ms\": " << r.p99_plan_ms
        << ", \"median_plan_ms\": " << r.median_plan_ms
        << ", \"reuse_hit_rate\": " << r.reuse_hit_rate
        << ", \"rejection_rate\": " << r.rejection_rate
        << ", \"register_attempts\": " << r.register_attempts
        << ", \"admitted\": " << r.admitted
        << ", \"degraded\": " << r.degraded
        << ", \"rejected\": " << r.rejected << "}"
        << (i + 1 < levels.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"settle\": {\"seeds\": " << settle.seeds
      << ", \"parity_fraction\": " << settle.parity_fraction
      << ", \"replan_fraction\": " << settle.replan_fraction
      << ", \"reuse_hit_rate\": " << settle.reuse_hit_rate << "}\n";
  out << "}\n";
}

}  // namespace

int main() {
  const World w = make_world();
  const double peak = uncapacitated_peak(w);
  IFLOW_CHECK(peak > 0.0);

  std::vector<LevelRow> levels;
  for (const double fraction : {1.0, 0.5, 0.3}) {
    levels.push_back(measure_level(w, fraction, peak));
    const LevelRow& r = levels.back();
    std::cout << "load x" << r.load_factor << ": " << r.registers_per_s
              << " registers/s, p99 plan " << r.p99_plan_ms
              << " ms, reuse " << r.reuse_hit_rate << ", rejected "
              << r.rejection_rate * 100.0 << "% of " << r.register_attempts
              << " attempts\n";
  }
  const SettleRow settle = measure_settle(w);
  std::cout << "settle parity " << settle.parity_ok << "/" << settle.seeds
            << ", replan fraction " << settle.replan_fraction
            << ", churn reuse " << settle.reuse_hit_rate << "\n";
  write_json("BENCH_churn.json", levels, settle);
  std::cout << "wrote BENCH_churn.json\n";
  return 0;
}
