// Microbenchmarks (google-benchmark) for the building blocks: routing table
// construction, hierarchy clustering, join-tree enumeration, the planner DP,
// and full Top-Down / Bottom-Up optimizations on the paper's 128-node-class
// topology.
//
// Besides the google-benchmark console output, the binary writes
// BENCH_planner.json (machine-readable, consumed by the CI perf-smoke job):
// ns/op and plans/sec for every optimizer on a Fig-9-sized instance
// (128-node-class transit–stub, 4-source query, max_cs=32), plus a planner
// speedup section comparing the legacy std::function/nested-vector search
// (kept verbatim below as a reference) against the arena-backed search core,
// serial and parallel.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "cluster/hierarchy.h"
#include "net/gtitm.h"
#include "opt/bottom_up.h"
#include "opt/exhaustive.h"
#include "opt/in_network.h"
#include "opt/plan_then_deploy.h"
#include "opt/relaxation.h"
#include "opt/top_down.h"
#include "opt/view.h"
#include "query/join_tree.h"
#include "workload/generator.h"

namespace {

using namespace iflow;

struct Rig {
  net::Network net;
  net::RoutingTables rt;
  workload::Workload wl;

  Rig()
      : net([] {
          Prng prng(1);
          return net::make_transit_stub(net::TransitStubParams{}, prng);
        }()),
        rt(net::RoutingTables::build(net)),
        wl([this] {
          Prng prng(2);
          workload::WorkloadParams wp;
          wp.num_streams = 10;
          wp.min_joins = 3;
          wp.max_joins = 3;
          return workload::make_workload(net, wp, 4, prng);
        }()) {}
};

Rig& rig() {
  static Rig r;
  return r;
}

/// Fig-9-sized instance: 128-node-class transit–stub, 4-source queries.
struct Fig09Rig {
  net::Network net;
  net::RoutingTables rt;
  workload::Workload wl;

  Fig09Rig()
      : net([] {
          Prng prng(11);
          return net::make_transit_stub(net::scale_to(128), prng);
        }()),
        rt(net::RoutingTables::build(net)),
        wl([this] {
          Prng prng(12);
          workload::WorkloadParams wp;
          wp.num_streams = 12;
          wp.min_joins = 3;  // 4-source queries, as in the Fig 9 series
          wp.max_joins = 3;
          return workload::make_workload(net, wp, 4, prng);
        }()) {}
};

Fig09Rig& fig09() {
  static Fig09Rig r;
  return r;
}

opt::PlannerInput fig09_planner_input(const query::RateModel& rates) {
  Fig09Rig& r = fig09();
  const query::Query& q = r.wl.queries.front();
  opt::PlannerInput in;
  in.rates = &rates;
  in.units = opt::collect_units(rates, nullptr, nullptr);
  in.target = rates.full();
  in.delivery = q.sink;
  for (net::NodeId n = 0; n < r.net.node_count(); ++n) in.sites.push_back(n);
  in.dist = opt::DistanceOracle::routing(r.rt);
  return in;
}

void BM_RoutingBuild(benchmark::State& state) {
  Prng prng(3);
  const net::Network net = net::make_transit_stub(
      net::scale_to(static_cast<int>(state.range(0))), prng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::RoutingTables::build(net));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RoutingBuild)->Arg(64)->Arg(128)->Arg(256)->Complexity();

void BM_HierarchyBuild(benchmark::State& state) {
  Rig& r = rig();
  for (auto _ : state) {
    Prng prng(4);
    benchmark::DoNotOptimize(cluster::Hierarchy::build(
        r.net, r.rt, static_cast<int>(state.range(0)), prng));
  }
}
BENCHMARK(BM_HierarchyBuild)->Arg(4)->Arg(8)->Arg(32);

void BM_TreeEnumeration(benchmark::State& state) {
  std::vector<query::Mask> masks;
  for (int i = 0; i < state.range(0); ++i) masks.push_back(query::Mask{1} << i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(query::enumerate_join_trees(masks));
  }
}
BENCHMARK(BM_TreeEnumeration)->Arg(3)->Arg(4)->Arg(5)->Arg(6);

void BM_PlanOptimalFullNetwork(benchmark::State& state) {
  Rig& r = rig();
  const query::Query& q = r.wl.queries.front();
  query::RateModel rates(r.wl.catalog, q);
  opt::PlannerInput in;
  in.rates = &rates;
  in.units = opt::collect_units(rates, nullptr, nullptr);
  in.target = rates.full();
  in.delivery = q.sink;
  for (net::NodeId n = 0; n < r.net.node_count(); ++n) in.sites.push_back(n);
  in.dist = opt::DistanceOracle::routing(r.rt);
  opt::PlanWorkspace ws(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::plan_optimal(in, ws));
  }
}
BENCHMARK(BM_PlanOptimalFullNetwork);

void BM_PlanOptimalFig09(benchmark::State& state) {
  query::RateModel rates(fig09().wl.catalog, fig09().wl.queries.front());
  const opt::PlannerInput in = fig09_planner_input(rates);
  opt::PlanWorkspace ws(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::plan_optimal(in, ws));
  }
  state.counters["threads"] = static_cast<double>(ws.threads());
}
BENCHMARK(BM_PlanOptimalFig09)->Arg(1)->Arg(-1)->ArgName("threads");

void BM_TopDownOptimize(benchmark::State& state) {
  Rig& r = rig();
  Prng prng(5);
  const cluster::Hierarchy hierarchy = cluster::Hierarchy::build(
      r.net, r.rt, static_cast<int>(state.range(0)), prng);
  opt::OptimizerEnv env;
  env.catalog = &r.wl.catalog;
  env.network = &r.net;
  env.routing = &r.rt;
  env.hierarchy = &hierarchy;
  env.reuse = false;
  opt::TopDownOptimizer td(env);
  for (auto _ : state) {
    benchmark::DoNotOptimize(td.optimize(r.wl.queries.front()));
  }
}
BENCHMARK(BM_TopDownOptimize)->Arg(8)->Arg(32);

void BM_BottomUpOptimize(benchmark::State& state) {
  Rig& r = rig();
  Prng prng(6);
  const cluster::Hierarchy hierarchy = cluster::Hierarchy::build(
      r.net, r.rt, static_cast<int>(state.range(0)), prng);
  opt::OptimizerEnv env;
  env.catalog = &r.wl.catalog;
  env.network = &r.net;
  env.routing = &r.rt;
  env.hierarchy = &hierarchy;
  env.reuse = false;
  opt::BottomUpOptimizer bu(env);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bu.optimize(r.wl.queries.front()));
  }
}
BENCHMARK(BM_BottomUpOptimize)->Arg(8)->Arg(32);

void BM_ExhaustiveOptimize(benchmark::State& state) {
  Rig& r = rig();
  opt::OptimizerEnv env;
  env.catalog = &r.wl.catalog;
  env.network = &r.net;
  env.routing = &r.rt;
  env.reuse = false;
  opt::ExhaustiveOptimizer ex(env);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.optimize(r.wl.queries.front()));
  }
}
BENCHMARK(BM_ExhaustiveOptimize);

// --------------------------------------------------------------------------
// Legacy reference planner: the pre-search-core implementation, verbatim —
// std::function distance oracle called in the hot loops, nested-vector DP
// tables allocated per invocation. Kept ONLY here, as the baseline the
// BENCH_planner.json speedup figures are measured against.
namespace legacy {

using DistFn = std::function<double(net::NodeId, net::NodeId)>;
constexpr double kInf = std::numeric_limits<double>::infinity();

struct GChoice {
  int unit = -1;
  int op_site = -1;
};

double count_plans(const std::vector<query::LeafUnit>& units,
                   query::Mask target, std::size_t site_count) {
  const int k = std::popcount(target);
  std::vector<std::vector<double>> ways(target + 1);
  ways[0].assign(1, 1.0);
  for (query::Mask m = 1; m <= target; ++m) {
    if ((m & ~target) != 0) continue;
    ways[m].assign(static_cast<std::size_t>(k) + 1, 0.0);
    const query::Mask low = m & (~m + 1);
    for (std::size_t u = 0; u < units.size(); ++u) {
      const query::Mask um = units[u].mask;
      if ((um & low) == 0 || (um & ~m) != 0) continue;
      const auto& sub = ways[m ^ um];
      for (std::size_t c = 0; c + 1 < ways[m].size() && c < sub.size(); ++c) {
        ways[m][c + 1] += sub[c];
      }
    }
  }
  double total = 0.0;
  for (std::size_t c = 1; c < ways[target].size(); ++c) {
    if (ways[target][c] == 0.0) continue;
    double trees = 1.0;
    for (int f = 2 * static_cast<int>(c) - 3; f >= 3; f -= 2) trees *= f;
    total += ways[target][c] * trees *
             std::pow(static_cast<double>(site_count),
                      static_cast<double>(c) - 1.0);
  }
  return total;
}

/// Optimal cost only (reconstruction omitted: it is identical in both
/// implementations and negligible next to the DP).
double plan_optimal_cost(const opt::PlannerInput& in, const DistFn& dist) {
  const std::size_t S = in.sites.size();
  const query::Mask target = in.target;

  std::vector<std::vector<double>> g(target + 1);
  std::vector<std::vector<double>> best_op(target + 1);
  std::vector<std::vector<GChoice>> g_choice(target + 1);
  std::vector<std::vector<query::Mask>> split_choice(target + 1);

  for (query::Mask m = 1; m <= target; ++m) {
    if ((m & ~target) != 0) continue;
    g[m].assign(S, kInf);
    g_choice[m].assign(S, GChoice{});
    const bool joinable = std::popcount(m) >= 2;
    const double rate_m = in.rates->bytes_rate(m);

    if (joinable) {
      best_op[m].assign(S, kInf);
      split_choice[m].assign(S, 0);
      const query::Mask rest = m ^ (m & (~m + 1));
      for (query::Mask b = rest; b != 0; b = (b - 1) & rest) {
        const query::Mask a = m ^ b;
        for (std::size_t p = 0; p < S; ++p) {
          const double c = g[a][p] + g[b][p];
          if (c < best_op[m][p]) {
            best_op[m][p] = c;
            split_choice[m][p] = a;
          }
        }
      }
    }

    for (std::size_t u = 0; u < in.units.size(); ++u) {
      if (in.units[u].mask != m) continue;
      for (std::size_t p = 0; p < S; ++p) {
        const double c =
            in.units[u].bytes_rate * dist(in.units[u].location, in.sites[p]);
        if (c < g[m][p]) {
          g[m][p] = c;
          g_choice[m][p] = GChoice{static_cast<int>(u), -1};
        }
      }
    }
    if (joinable) {
      for (std::size_t p = 0; p < S; ++p) {
        double best = g[m][p];
        GChoice choice = g_choice[m][p];
        for (std::size_t q = 0; q < S; ++q) {
          if (best_op[m][q] == kInf) continue;
          const double c =
              best_op[m][q] + rate_m * dist(in.sites[q], in.sites[p]);
          if (c < best) {
            best = c;
            choice = GChoice{-1, static_cast<int>(q)};
          }
        }
        g[m][p] = best;
        g_choice[m][p] = choice;
      }
    }
  }

  benchmark::DoNotOptimize(count_plans(in.units, target, S));
  double best_total = kInf;
  const double deliver_rate = in.delivery_bytes_rate >= 0.0
                                  ? in.delivery_bytes_rate
                                  : in.rates->bytes_rate(target);
  for (std::size_t u = 0; u < in.units.size(); ++u) {
    if (in.units[u].mask != target) continue;
    const double c = (in.delivery == net::kInvalidNode)
                         ? 0.0
                         : in.units[u].bytes_rate *
                               dist(in.units[u].location, in.delivery);
    best_total = std::min(best_total, c);
  }
  if (!best_op.empty() && !best_op[target].empty()) {
    for (std::size_t q = 0; q < S; ++q) {
      if (best_op[target][q] == kInf) continue;
      const double edge = (in.delivery == net::kInvalidNode)
                              ? 0.0
                              : deliver_rate * dist(in.sites[q], in.delivery);
      best_total = std::min(best_total, best_op[target][q] + edge);
    }
  }
  return best_total;
}

}  // namespace legacy

void BM_PlanOptimalFig09Legacy(benchmark::State& state) {
  Fig09Rig& r = fig09();
  query::RateModel rates(r.wl.catalog, r.wl.queries.front());
  const opt::PlannerInput in = fig09_planner_input(rates);
  const legacy::DistFn dist = [&r](net::NodeId a, net::NodeId b) {
    return r.rt.cost(a, b);
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(legacy::plan_optimal_cost(in, dist));
  }
}
BENCHMARK(BM_PlanOptimalFig09Legacy);

// --------------------------------------------------------------------------
// BENCH_planner.json: machine-readable Fig-9-size planner/optimizer numbers.

template <typename F>
double measure_ns_per_op(const F& f, double min_seconds = 0.25) {
  using clock = std::chrono::steady_clock;
  f();  // warm-up (also sizes arenas / starts pools)
  long iters = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (long i = 0; i < iters; ++i) f();
    const double secs = std::chrono::duration<double>(clock::now() - t0).count();
    if (secs >= min_seconds) {
      return secs * 1e9 / static_cast<double>(iters);
    }
    const double target = std::max(secs, 1e-6);
    iters = std::max(iters * 2,
                     static_cast<long>(static_cast<double>(iters) *
                                       min_seconds / target * 1.2));
  }
}

void write_planner_json(const std::string& path) {
  Fig09Rig& r = fig09();
  const query::Query& q = r.wl.queries.front();
  query::RateModel rates(r.wl.catalog, q);
  Prng hp(13);
  const cluster::Hierarchy hierarchy =
      cluster::Hierarchy::build(r.net, r.rt, 32, hp);

  opt::PlanWorkspace serial_ws(1);
  opt::PlanWorkspace parallel_ws(-1);

  opt::OptimizerEnv env;
  env.catalog = &r.wl.catalog;
  env.network = &r.net;
  env.routing = &r.rt;
  env.hierarchy = &hierarchy;
  env.reuse = false;
  env.workspace = &serial_ws;

  std::ofstream out(path);
  out << "{\n";
  out << "  \"instance\": {\"nodes\": " << r.net.node_count()
      << ", \"sources\": " << q.k() << ", \"max_cs\": 32},\n";

  // Per-optimizer ns/op and plans/sec (single-threaded workspace, so the
  // numbers track the algorithms, not the machine's core count).
  opt::ExhaustiveOptimizer ex(env);
  opt::TopDownOptimizer td(env);
  opt::BottomUpOptimizer bu(env);
  opt::PlanThenDeployOptimizer ptd(env);
  opt::RelaxationOptimizer relax(env, /*seed=*/7);
  opt::InNetworkOptimizer innet(env, /*seed=*/13);
  const std::vector<opt::Optimizer*> algs = {&ex, &td, &bu, &ptd, &relax,
                                             &innet};
  out << "  \"optimizers\": [\n";
  for (std::size_t i = 0; i < algs.size(); ++i) {
    opt::Optimizer* alg = algs[i];
    const opt::OptimizeResult res = alg->optimize(q);
    const double ns = measure_ns_per_op([&] {
      benchmark::DoNotOptimize(alg->optimize(q));
    });
    out << "    {\"name\": \"" << alg->name() << "\", \"ns_per_op\": " << ns
        << ", \"plans_per_sec\": " << res.plans_considered * 1e9 / ns
        << ", \"actual_cost\": " << res.actual_cost << "}"
        << (i + 1 < algs.size() ? "," : "") << "\n";
  }
  out << "  ],\n";

  // Planner speedups: legacy (std::function + nested vectors) vs the
  // search core, serial and parallel, on the same input.
  const opt::PlannerInput in = fig09_planner_input(rates);
  const legacy::DistFn legacy_dist = [&r](net::NodeId a, net::NodeId b) {
    return r.rt.cost(a, b);
  };
  const double legacy_ns = measure_ns_per_op([&] {
    benchmark::DoNotOptimize(legacy::plan_optimal_cost(in, legacy_dist));
  });
  const double serial_ns = measure_ns_per_op([&] {
    benchmark::DoNotOptimize(opt::plan_optimal(in, serial_ws));
  });
  const double parallel_ns = measure_ns_per_op([&] {
    benchmark::DoNotOptimize(opt::plan_optimal(in, parallel_ws));
  });
  out << "  \"planner\": {\n";
  out << "    \"legacy_ns_per_op\": " << legacy_ns << ",\n";
  out << "    \"serial_ns_per_op\": " << serial_ns << ",\n";
  out << "    \"parallel_ns_per_op\": " << parallel_ns << ",\n";
  out << "    \"parallel_threads\": " << parallel_ws.threads() << ",\n";
  out << "    \"serial_speedup_vs_legacy\": " << legacy_ns / serial_ns << ",\n";
  out << "    \"parallel_speedup_vs_serial\": " << serial_ns / parallel_ns
      << "\n";
  out << "  }\n";
  out << "}\n";
  std::cout << "wrote " << path << ": serial speedup vs legacy "
            << legacy_ns / serial_ns << "x, parallel speedup vs serial "
            << serial_ns / parallel_ns << "x (" << parallel_ws.threads()
            << " threads)\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_planner_json("BENCH_planner.json");
  return 0;
}
