// Microbenchmarks (google-benchmark) for the building blocks: routing table
// construction, hierarchy clustering, join-tree enumeration, the planner DP,
// and full Top-Down / Bottom-Up optimizations on the paper's 128-node-class
// topology.
#include <benchmark/benchmark.h>

#include "cluster/hierarchy.h"
#include "net/gtitm.h"
#include "opt/bottom_up.h"
#include "opt/exhaustive.h"
#include "opt/top_down.h"
#include "opt/view.h"
#include "query/join_tree.h"
#include "workload/generator.h"

namespace {

using namespace iflow;

struct Rig {
  net::Network net;
  net::RoutingTables rt;
  workload::Workload wl;

  Rig()
      : net([] {
          Prng prng(1);
          return net::make_transit_stub(net::TransitStubParams{}, prng);
        }()),
        rt(net::RoutingTables::build(net)),
        wl([this] {
          Prng prng(2);
          workload::WorkloadParams wp;
          wp.num_streams = 10;
          wp.min_joins = 3;
          wp.max_joins = 3;
          return workload::make_workload(net, wp, 4, prng);
        }()) {}
};

Rig& rig() {
  static Rig r;
  return r;
}

void BM_RoutingBuild(benchmark::State& state) {
  Prng prng(3);
  const net::Network net = net::make_transit_stub(
      net::scale_to(static_cast<int>(state.range(0))), prng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::RoutingTables::build(net));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RoutingBuild)->Arg(64)->Arg(128)->Arg(256)->Complexity();

void BM_HierarchyBuild(benchmark::State& state) {
  Rig& r = rig();
  for (auto _ : state) {
    Prng prng(4);
    benchmark::DoNotOptimize(cluster::Hierarchy::build(
        r.net, r.rt, static_cast<int>(state.range(0)), prng));
  }
}
BENCHMARK(BM_HierarchyBuild)->Arg(4)->Arg(8)->Arg(32);

void BM_TreeEnumeration(benchmark::State& state) {
  std::vector<query::Mask> masks;
  for (int i = 0; i < state.range(0); ++i) masks.push_back(query::Mask{1} << i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(query::enumerate_join_trees(masks));
  }
}
BENCHMARK(BM_TreeEnumeration)->Arg(3)->Arg(4)->Arg(5)->Arg(6);

void BM_PlanOptimalFullNetwork(benchmark::State& state) {
  Rig& r = rig();
  const query::Query& q = r.wl.queries.front();
  query::RateModel rates(r.wl.catalog, q);
  opt::PlannerInput in;
  in.rates = &rates;
  in.units = opt::collect_units(rates, nullptr, nullptr);
  in.target = rates.full();
  in.delivery = q.sink;
  for (net::NodeId n = 0; n < r.net.node_count(); ++n) in.sites.push_back(n);
  in.dist = [&r](net::NodeId a, net::NodeId b) { return r.rt.cost(a, b); };
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::plan_optimal(in));
  }
}
BENCHMARK(BM_PlanOptimalFullNetwork);

void BM_TopDownOptimize(benchmark::State& state) {
  Rig& r = rig();
  Prng prng(5);
  const cluster::Hierarchy hierarchy = cluster::Hierarchy::build(
      r.net, r.rt, static_cast<int>(state.range(0)), prng);
  opt::OptimizerEnv env;
  env.catalog = &r.wl.catalog;
  env.network = &r.net;
  env.routing = &r.rt;
  env.hierarchy = &hierarchy;
  env.reuse = false;
  opt::TopDownOptimizer td(env);
  for (auto _ : state) {
    benchmark::DoNotOptimize(td.optimize(r.wl.queries.front()));
  }
}
BENCHMARK(BM_TopDownOptimize)->Arg(8)->Arg(32);

void BM_BottomUpOptimize(benchmark::State& state) {
  Rig& r = rig();
  Prng prng(6);
  const cluster::Hierarchy hierarchy = cluster::Hierarchy::build(
      r.net, r.rt, static_cast<int>(state.range(0)), prng);
  opt::OptimizerEnv env;
  env.catalog = &r.wl.catalog;
  env.network = &r.net;
  env.routing = &r.rt;
  env.hierarchy = &hierarchy;
  env.reuse = false;
  opt::BottomUpOptimizer bu(env);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bu.optimize(r.wl.queries.front()));
  }
}
BENCHMARK(BM_BottomUpOptimize)->Arg(8)->Arg(32);

void BM_ExhaustiveOptimize(benchmark::State& state) {
  Rig& r = rig();
  opt::OptimizerEnv env;
  env.catalog = &r.wl.catalog;
  env.network = &r.net;
  env.routing = &r.rt;
  env.reuse = false;
  opt::ExhaustiveOptimizer ex(env);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.optimize(r.wl.queries.front()));
  }
}
BENCHMARK(BM_ExhaustiveOptimize);

}  // namespace

BENCHMARK_MAIN();
