// Gray-failure detection microbenchmark: detection latency, goodput
// recovery and false-positive rate as a function of gray-failure intensity.
//
// The harness builds a dual-relay star world (every endpoint reaches a
// cheap primary relay and a slightly dearer backup, so the join lands on
// the primary and quarantine can take every data path off it), then sweeps
// the degradation intensity through engine::run_gray. Each sweep point
// reports the three sub-run goodputs (detector on, detector off, healthy
// twin), the first detection epoch, the recovery ratio and the
// healthy-twin quarantine count. Results land in BENCH_health.json
// (machine-readable, uploaded by the CI perf-smoke job alongside
// BENCH_reliability.json and friends).
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/check.h"
#include "engine/health.h"

namespace {

using namespace iflow;

constexpr std::uint64_t kSeed = 20070806;
constexpr int kMaxCs = 8;
constexpr double kRate = 30.0;
constexpr double kSelectivity = 0.05;

struct World {
  net::Network net;
  query::Catalog catalog;
  std::vector<query::Query> queries;
};

/// Dual-relay star: three sources and the sink each reach both relays, the
/// primary strictly cheaper. The 3-way join lands on the primary for every
/// optimizer, so the gray harness has a non-endpoint host to degrade and
/// the planner a clean detour once it is quarantined.
World make_world() {
  World w;
  const net::NodeId primary = w.net.add_node();
  const net::NodeId backup = w.net.add_node();
  std::vector<net::NodeId> srcs;
  for (int i = 0; i < 3; ++i) srcs.push_back(w.net.add_node());
  const net::NodeId sink = w.net.add_node();
  for (const net::NodeId n : srcs) {
    w.net.add_link(primary, n, 1.0, 1.0, 1e6);
    w.net.add_link(backup, n, 1.3, 1.0, 1e6);
  }
  w.net.add_link(primary, sink, 1.0, 1.0, 1e6);
  w.net.add_link(backup, sink, 1.3, 1.0, 1e6);
  std::vector<query::StreamId> streams;
  for (int i = 0; i < 3; ++i) {
    streams.push_back(w.catalog.add_stream(
        "S" + std::to_string(i), srcs[static_cast<std::size_t>(i)], kRate,
        100.0));
  }
  for (std::size_t i = 0; i < streams.size(); ++i) {
    for (std::size_t j = i + 1; j < streams.size(); ++j) {
      w.catalog.set_selectivity(streams[i], streams[j], kSelectivity);
    }
  }
  query::Query q;
  q.id = 1;
  q.sources = streams;
  q.sink = sink;
  w.queries.push_back(q);
  return w;
}

struct IntensityRow {
  double loss = 0.0;
  double slowdown = 0.0;
  int detection_epoch = -1;
  double goodput_on = 0.0;
  double goodput_off = 0.0;
  double goodput_healthy = 0.0;
  double recovery_ratio = 0.0;
  std::size_t false_positives = 0;
  std::size_t quarantined = 0;
  std::size_t violations = 0;
  bool contract_ok = false;
};

void write_json(const std::string& path, const std::vector<IntensityRow>& rows,
                const engine::GrayConfig& cfg) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"world\": {\"shape\": \"dual-relay-star\", \"sources\": 3"
      << ", \"rate_tps\": " << kRate << ", \"selectivity\": " << kSelectivity
      << ", \"max_cs\": " << kMaxCs << ", \"epochs\": " << cfg.epochs
      << ", \"epoch_s\": " << cfg.epoch_s << "},\n";
  out << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const IntensityRow& r = rows[i];
    out << "    {\"loss\": " << r.loss << ", \"slowdown\": " << r.slowdown
        << ", \"detection_epoch\": " << r.detection_epoch
        << ", \"goodput_on\": " << r.goodput_on
        << ", \"goodput_off\": " << r.goodput_off
        << ", \"goodput_healthy\": " << r.goodput_healthy
        << ", \"recovery_ratio\": " << r.recovery_ratio
        << ", \"false_positives\": " << r.false_positives
        << ", \"quarantined\": " << r.quarantined
        << ", \"violations\": " << r.violations
        << ", \"contract_ok\": " << (r.contract_ok ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
}

}  // namespace

int main() {
  const World w = make_world();
  const std::vector<double> intensities = {0.2, 0.4, 0.6, 0.8};
  engine::GrayConfig cfg;  // default epochs/epoch_s/health knobs
  std::vector<IntensityRow> rows;
  for (const double loss : intensities) {
    engine::GrayConfig c = cfg;
    c.degradation.loss = loss;
    c.degradation.slowdown = 3.0;
    const engine::GrayReport rep =
        engine::run_gray(w.net, w.catalog, w.queries, kMaxCs,
                         engine::Algorithm::kTopDown, kSeed, c);
    IntensityRow r;
    r.loss = loss;
    r.slowdown = c.degradation.slowdown;
    r.detection_epoch = rep.detection_epoch;
    r.goodput_on = rep.goodput_on;
    r.goodput_off = rep.goodput_off;
    r.goodput_healthy = rep.goodput_healthy;
    r.recovery_ratio = rep.recovery_ratio;
    r.false_positives = rep.false_positives;
    r.quarantined = rep.quarantined;
    r.violations = rep.violations;
    r.contract_ok = rep.contract_ok;
    rows.push_back(r);
    std::cout << "loss " << loss << ": detection_epoch " << r.detection_epoch
              << ", goodput on/off/healthy " << r.goodput_on << "/"
              << r.goodput_off << "/" << r.goodput_healthy << ", recovery "
              << r.recovery_ratio << ", false_positives " << r.false_positives
              << (r.contract_ok ? " [contract ok]" : "") << "\n";
  }
  write_json("BENCH_health.json", rows, cfg);
  std::cout << "wrote BENCH_health.json\n";
  return 0;
}
