// Multi-query consolidation (paper §2.2/§2.3 extension): joint batch
// optimization vs incremental arrival-order deployment, for the Top-Down
// algorithm on the paper's main topology.
#include "fig_common.h"
#include "opt/consolidated.h"

int main(int argc, char** argv) {
  using namespace iflow;
  using namespace iflow::bench;
  const std::uint64_t seed = seed_from_args(argc, argv);
  const int kWorkloads = 8;
  const int kQueries = 16;

  Prng net_prng(seed);
  Rig rig(paper_network(net_prng));
  const cluster::Hierarchy hierarchy = build_hierarchy(rig, 32, seed + 32);

  std::cout << "Multi-query consolidation vs incremental deployment "
               "(top-down, max_cs=32, seed "
            << seed << ")\n\n";
  TextTable t({"workload", "incremental", "consolidated", "gain %", "sweeps"});

  double inc_total = 0.0;
  double con_total = 0.0;
  for (int w = 0; w < kWorkloads; ++w) {
    // 8 streams: denser sharing than the figure workloads.
    const workload::Workload wl = make_seeded_workload(
        rig, paper_workload_params(/*min_joins=*/2, /*max_joins=*/4,
                                   /*num_streams=*/8),
        kQueries, seed + 100 + static_cast<std::uint64_t>(w));

    const double incremental =
        run_incremental(Alg::kTopDown, rig, &hierarchy, wl, true, seed)
            .cumulative_cost.back();

    advert::Registry registry;
    opt::OptimizerEnv env;
    env.catalog = &wl.catalog;
    env.network = &rig.net;
    env.routing = &rig.rt;
    env.hierarchy = &hierarchy;
    env.registry = &registry;
    env.reuse = true;
    const opt::ConsolidatedResult c = opt::optimize_consolidated(
        env,
        [](const opt::OptimizerEnv& e) {
          return std::make_unique<opt::TopDownOptimizer>(e);
        },
        wl.queries);

    inc_total += incremental;
    con_total += c.total_cost;
    t.row()
        .cell(w)
        .cell(incremental / 1000.0)
        .cell(c.total_cost / 1000.0)
        .cell(100.0 * (1.0 - c.total_cost / incremental), 2)
        .cell(c.sweeps);
  }
  t.print(std::cout);
  std::cout << "\noverall consolidation gain: "
            << 100.0 * (1.0 - con_total / inc_total)
            << "% (never negative by construction)\n";
  return 0;
}
