// Figure 2 — motivation: joint plan+deployment vs "plan, then deploy".
//
// Paper setup: 10 queries over 5 stream sources each on a 64-node GT-ITM
// network; operator reuse enabled for all approaches. Series: Relaxation,
// plan-then-deploy (optimal placement of a statistics-chosen plan), and the
// joint approach. Paper headline: the joint approach cuts total cost by
// more than 50%.
#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace iflow;
  using namespace iflow::bench;
  const std::uint64_t seed = seed_from_args(argc, argv);

  Prng net_prng(seed);
  Rig rig(net::make_transit_stub(net::scale_to(64), net_prng));
  const cluster::Hierarchy hierarchy = build_hierarchy(rig, 32, seed + 1);

  // Exactly 5 sources per query.
  const workload::Workload wl = make_seeded_workload(
      rig, paper_workload_params(/*min_joins=*/4, /*max_joins=*/4), 10,
      seed + 2);

  const RunStats relaxation =
      run_incremental(Alg::kRelaxation, rig, nullptr, wl, true, seed);
  const RunStats phased =
      run_incremental(Alg::kPlanThenDeploy, rig, nullptr, wl, true, seed);
  const RunStats joint =
      run_incremental(Alg::kExhaustive, rig, nullptr, wl, true, seed);
  const RunStats top_down =
      run_incremental(Alg::kTopDown, rig, &hierarchy, wl, true, seed);

  std::cout << "Figure 2: total cost of 10 queries x 5 sources, "
            << rig.net.node_count() << "-node network (seed " << seed
            << ")\n\n";
  TextTable t({"queries", "relaxation", "plan-then-deploy", "ours(joint)",
               "ours(top-down)"});
  for (std::size_t i = 0; i < wl.queries.size(); ++i) {
    t.row()
        .cell(i + 1)
        .cell(relaxation.cumulative_cost[i] / 1000.0)
        .cell(phased.cumulative_cost[i] / 1000.0)
        .cell(joint.cumulative_cost[i] / 1000.0)
        .cell(top_down.cumulative_cost[i] / 1000.0);
  }
  t.print(std::cout);
  std::cout << "(cost per unit time, in thousands)\n\n";

  const double vs_phased =
      100.0 * (1.0 - joint.cumulative_cost.back() /
                         phased.cumulative_cost.back());
  const double vs_relax =
      100.0 * (1.0 - joint.cumulative_cost.back() /
                         relaxation.cumulative_cost.back());
  std::cout << "joint vs plan-then-deploy: " << vs_phased
            << "% cheaper (paper: > 50%)\n";
  std::cout << "joint vs relaxation:       " << vs_relax
            << "% cheaper (paper: > 50%)\n";
  return 0;
}
