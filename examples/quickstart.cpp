// Quickstart: build a network, declare streams and a query, and let the
// Top-Down optimizer plan + place it jointly.
//
//   ./quickstart
//
// Walks through the minimal API surface: Network / RoutingTables,
// Hierarchy, Catalog, Query, TopDownOptimizer.
#include <iostream>

#include "cluster/hierarchy.h"
#include "common/prng.h"
#include "net/gtitm.h"
#include "opt/exhaustive.h"
#include "opt/top_down.h"

using namespace iflow;

int main() {
  // 1. A physical network: GT-ITM-style transit-stub topology (the default
  //    parameters reproduce the paper's 128-node-class network).
  Prng prng(42);
  net::TransitStubParams params;
  params.transit_count = 2;
  params.stub_domains_per_transit = 2;
  params.stub_domain_size = 6;
  const net::Network net = net::make_transit_stub(params, prng);
  const net::RoutingTables routing = net::RoutingTables::build(net);
  std::cout << "network: " << net.node_count() << " nodes, "
            << net.link_count() << " links\n";

  // 2. The virtual clustering hierarchy that makes planning scalable.
  const cluster::Hierarchy hierarchy =
      cluster::Hierarchy::build(net, routing, /*max_cs=*/6, prng);
  std::cout << "hierarchy: " << hierarchy.height() << " levels (max_cs=6)\n";

  // 3. Streams: rates, tuple widths, source placements, join selectivities.
  query::Catalog catalog;
  const auto orders = catalog.add_stream("ORDERS", /*source=*/3,
                                         /*tuple_rate=*/80.0,
                                         /*tuple_width=*/120.0);
  const auto shipments = catalog.add_stream("SHIPMENTS", 11, 40.0, 90.0);
  const auto alerts = catalog.add_stream("ALERTS", 19, 15.0, 60.0);
  catalog.set_selectivity(orders, shipments, 0.01);
  catalog.set_selectivity(orders, alerts, 0.02);
  catalog.set_selectivity(shipments, alerts, 0.05);

  // 4. A continuous join query delivered to a sink node.
  query::Query q;
  q.id = 1;
  q.name = "orders-join";
  q.sources = {orders, shipments, alerts};
  q.sink = static_cast<net::NodeId>(net.node_count() - 1);

  // 5. Optimize: join order and operator placement are chosen together.
  opt::OptimizerEnv env;
  env.catalog = &catalog;
  env.network = &net;
  env.routing = &routing;
  env.hierarchy = &hierarchy;
  env.reuse = false;  // single query, nothing to reuse yet

  opt::TopDownOptimizer top_down(env);
  const opt::OptimizeResult result = top_down.optimize(q);

  std::cout << "\nchosen deployment (cost " << result.actual_cost
            << " per unit time, " << result.plans_considered
            << " plans examined):\n";
  for (const query::DeployedOp& op : result.deployment.ops) {
    std::cout << "  join over mask 0x" << std::hex << op.mask << std::dec
              << " at node " << op.node << " (output "
              << op.out_bytes_rate << " B/s)\n";
  }
  std::cout << "  result -> sink node " << result.deployment.sink << "\n";

  // 6. Sanity check against the global optimum (feasible at this scale).
  opt::ExhaustiveOptimizer exhaustive(env);
  const opt::OptimizeResult best = exhaustive.optimize(q);
  std::cout << "\nexhaustive optimum: " << best.actual_cost << " ("
            << best.plans_considered << " plans)\n"
            << "top-down overhead: "
            << 100.0 * (result.actual_cost / best.actual_cost - 1.0)
            << "% while examining "
            << 100.0 * result.plans_considered / best.plans_considered
            << "% of the plans\n";
  return 0;
}
