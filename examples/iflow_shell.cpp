// iflow_shell — scriptable driver for the whole system.
//
// Reads commands from stdin (or a file passed as argv[1]) and lets you
// build a network, register streams, pick an optimizer and submit SQL
// queries, then execute everything in the discrete-event engine:
//
//   network transit-stub 2 2 6 42     # transit, domains/transit, size, seed
//   stream ORDERS 3 80 120            # name, source node, tuples/s, bytes
//   stream SHIPMENTS 11 40 90
//   selectivity ORDERS SHIPMENTS 0.01
//   hierarchy 6                       # build max_cs=6 clustering
//   algorithm top-down                # or bottom-up / exhaustive / ...
//   reuse on
//   submit 25 SELECT ORDERS.id FROM ORDERS, SHIPMENTS
//          WHERE ORDERS.id = SHIPMENTS.order_id;
//   show deployments
//   run 20                            # execute 20 simulated seconds
//
// Lines starting with '#' are comments. SQL statements end with ';'.
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "cluster/hierarchy.h"
#include "common/table.h"
#include "engine/simulation.h"
#include "net/gtitm.h"
#include "opt/bottom_up.h"
#include "opt/exhaustive.h"
#include "opt/in_network.h"
#include "opt/plan_then_deploy.h"
#include "opt/relaxation.h"
#include "opt/top_down.h"
#include "sql/binder.h"

using namespace iflow;

namespace {

class Shell {
 public:
  int run(std::istream& in) {
    std::string line;
    while (std::getline(in, line)) {
      // SQL statements may span lines; accumulate until ';'.
      if (pending_.empty() && (line.empty() || line[0] == '#')) continue;
      pending_ += (pending_.empty() ? "" : " ") + line;
      if (needs_semicolon() && pending_.find(';') == std::string::npos) {
        continue;
      }
      const std::string command = std::move(pending_);
      pending_.clear();
      try {
        execute(command);
      } catch (const std::exception& e) {
        std::cout << "error: " << e.what() << "\n";
        had_error_ = true;
      }
    }
    return had_error_ ? 1 : 0;
  }

 private:
  bool needs_semicolon() const {
    std::istringstream probe(pending_);
    std::string word;
    probe >> word;
    return word == "submit";
  }

  void execute(const std::string& command) {
    std::istringstream args(command);
    std::string verb;
    args >> verb;
    if (verb == "network") {
      cmd_network(args);
    } else if (verb == "stream") {
      cmd_stream(args);
    } else if (verb == "selectivity") {
      cmd_selectivity(args);
    } else if (verb == "hierarchy") {
      cmd_hierarchy(args);
    } else if (verb == "algorithm") {
      args >> algorithm_;
      std::cout << "algorithm: " << algorithm_ << "\n";
    } else if (verb == "reuse") {
      std::string flag;
      args >> flag;
      reuse_ = (flag == "on");
      std::cout << "reuse: " << (reuse_ ? "on" : "off") << "\n";
    } else if (verb == "submit") {
      cmd_submit(args);
    } else if (verb == "show") {
      cmd_show(args);
    } else if (verb == "run") {
      cmd_run(args);
    } else {
      throw std::runtime_error("unknown command '" + verb + "'");
    }
  }

  void cmd_network(std::istringstream& args) {
    std::string kind;
    int transit = 2, domains = 2, size = 6;
    std::uint64_t seed = 1;
    args >> kind >> transit >> domains >> size >> seed;
    IFLOW_CHECK_MSG(kind == "transit-stub", "only transit-stub is supported");
    net::TransitStubParams p;
    p.transit_count = transit;
    p.stub_domains_per_transit = domains;
    p.stub_domain_size = size;
    Prng prng(seed);
    net_ = std::make_unique<net::Network>(net::make_transit_stub(p, prng));
    routing_ = std::make_unique<net::RoutingTables>(
        net::RoutingTables::build(*net_));
    hierarchy_.reset();
    std::cout << "network: " << net_->node_count() << " nodes, "
              << net_->link_count() << " links\n";
  }

  void cmd_stream(std::istringstream& args) {
    require_network();
    std::string name;
    net::NodeId node;
    double rate, width;
    args >> name >> node >> rate >> width;
    IFLOW_CHECK_MSG(node < net_->node_count(), "source node out of range");
    const auto id = catalog_.add_stream(name, node, rate, width);
    std::cout << "stream " << name << " (id " << id << ") at node " << node
              << "\n";
  }

  void cmd_selectivity(std::istringstream& args) {
    std::string a, b;
    double sel;
    args >> a >> b >> sel;
    catalog_.set_selectivity(resolve(a), resolve(b), sel);
  }

  void cmd_hierarchy(std::istringstream& args) {
    require_network();
    int max_cs = 8;
    std::uint64_t seed = 7;
    args >> max_cs;
    args >> seed;
    Prng prng(seed);
    hierarchy_ = std::make_unique<cluster::Hierarchy>(
        cluster::Hierarchy::build(*net_, *routing_, max_cs, prng));
    std::cout << "hierarchy: " << hierarchy_->height() << " levels (max_cs="
              << max_cs << ")\n";
  }

  void cmd_submit(std::istringstream& args) {
    require_network();
    net::NodeId sink;
    args >> sink;
    IFLOW_CHECK_MSG(sink < net_->node_count(), "sink node out of range");
    std::string sql_text;
    std::getline(args, sql_text);
    // UNION ALL chains compile into one branch query per block, all
    // delivering to the same sink.
    const std::vector<sql::BoundQuery> branches = sql::compile_union(
        sql_text, catalog_, static_cast<query::QueryId>(queries_.size()),
        sink);
    for (const sql::BoundQuery& bound : branches) {
      if (bound.has_cross_product) {
        std::cout << "note: query contains a cross product\n";
      }
      auto optimizer = make_optimizer();
      const opt::OptimizeResult res = optimizer->optimize(bound.query);
      IFLOW_CHECK(res.feasible);
      query::RateModel rates(catalog_, bound.query);
      if (reuse_) {
        advert::advertise_deployment(registry_, res.deployment, rates);
      }
      std::cout << "Q" << bound.query.id << " deployed by "
                << optimizer->name() << ": cost " << res.actual_cost
                << "/unit time, " << res.deployment.ops.size()
                << " operators, " << res.plans_considered
                << " plans examined\n";
      queries_.push_back(bound.query);
      deployments_.push_back(res.deployment);
      total_cost_ += res.actual_cost;
    }
  }

  void cmd_show(std::istringstream& args) {
    std::string what;
    args >> what;
    if (what == "deployments") {
      for (std::size_t i = 0; i < deployments_.size(); ++i) {
        std::cout << "Q" << queries_[i].id << " -> sink "
                  << deployments_[i].sink << ":\n";
        for (const query::DeployedOp& op : deployments_[i].ops) {
          std::cout << "  op mask 0x" << std::hex << op.mask << std::dec
                    << " at node " << op.node << " (" << op.out_bytes_rate
                    << " B/s out)\n";
        }
      }
    } else if (what == "costs") {
      std::cout << "total planned cost: " << total_cost_ << "/unit time over "
                << deployments_.size() << " queries\n";
    } else {
      throw std::runtime_error("show expects 'deployments' or 'costs'");
    }
  }

  void cmd_run(std::istringstream& args) {
    require_network();
    double seconds = 20.0;
    args >> seconds;
    engine::EngineConfig cfg;
    cfg.duration_s = seconds;
    engine::Simulation sim(*net_, *routing_, catalog_, cfg, 99);
    for (std::size_t i = 0; i < deployments_.size(); ++i) {
      query::RateModel rates(catalog_, queries_[i]);
      sim.deploy(deployments_[i], rates);
    }
    sim.run();
    TextTable t({"query", "delivered", "rate/s"});
    for (const query::Query& q : queries_) {
      t.row()
          .cell(static_cast<int>(q.id))
          .cell(sim.tuples_delivered(q.id))
          .cell(sim.delivered_rate(q.id));
    }
    t.print(std::cout);
    std::cout << "measured cost " << sim.measured_cost_per_second()
              << "/s vs planned " << total_cost_ << "/s\n";
  }

  void require_network() const {
    IFLOW_CHECK_MSG(net_ != nullptr, "run 'network ...' first");
  }

  query::StreamId resolve(const std::string& name) const {
    const query::StreamId id = catalog_.find(name);
    IFLOW_CHECK_MSG(id != query::kInvalidStream, "unknown stream " << name);
    return id;
  }

  std::unique_ptr<opt::Optimizer> make_optimizer() {
    opt::OptimizerEnv env;
    env.catalog = &catalog_;
    env.network = net_.get();
    env.routing = routing_.get();
    env.hierarchy = hierarchy_.get();
    env.registry = &registry_;
    env.reuse = reuse_;
    if (algorithm_ == "top-down" || algorithm_ == "bottom-up") {
      IFLOW_CHECK_MSG(hierarchy_ != nullptr,
                      "run 'hierarchy <max_cs>' before hierarchical planning");
    }
    if (algorithm_ == "top-down") {
      return std::make_unique<opt::TopDownOptimizer>(env);
    }
    if (algorithm_ == "bottom-up") {
      return std::make_unique<opt::BottomUpOptimizer>(env);
    }
    if (algorithm_ == "exhaustive") {
      return std::make_unique<opt::ExhaustiveOptimizer>(env);
    }
    if (algorithm_ == "plan-then-deploy") {
      return std::make_unique<opt::PlanThenDeployOptimizer>(env);
    }
    if (algorithm_ == "relaxation") {
      return std::make_unique<opt::RelaxationOptimizer>(env, 1);
    }
    if (algorithm_ == "in-network") {
      return std::make_unique<opt::InNetworkOptimizer>(env, 1);
    }
    throw std::runtime_error("unknown algorithm '" + algorithm_ + "'");
  }

  std::unique_ptr<net::Network> net_;
  std::unique_ptr<net::RoutingTables> routing_;
  std::unique_ptr<cluster::Hierarchy> hierarchy_;
  query::Catalog catalog_;
  advert::Registry registry_;
  std::string algorithm_ = "exhaustive";
  bool reuse_ = true;
  std::vector<query::Query> queries_;
  std::vector<query::Deployment> deployments_;
  double total_cost_ = 0.0;
  std::string pending_;
  bool had_error_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    return shell.run(file);
  }
  return shell.run(std::cin);
}
