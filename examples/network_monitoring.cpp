// Distributed network monitoring at scale: many standing queries over
// shared telemetry streams on a 128-node-class topology.
//
// Demonstrates multi-query optimization with operator reuse: 40 monitoring
// queries over 12 telemetry streams are deployed incrementally with the
// Top-Down and Bottom-Up algorithms, with and without stream
// advertisements, and the cumulative communication cost is compared.
#include <iomanip>
#include <iostream>

#include "cluster/hierarchy.h"
#include "common/table.h"
#include "net/gtitm.h"
#include "opt/bottom_up.h"
#include "opt/top_down.h"
#include "workload/generator.h"

using namespace iflow;

namespace {

double deploy_all(opt::Optimizer& optimizer, opt::OptimizerEnv env,
                  const workload::Workload& wl, double* plans,
                  double* deploy_ms) {
  advert::Registry* registry = env.registry;
  double total = 0.0;
  for (const query::Query& q : wl.queries) {
    const opt::OptimizeResult r = optimizer.optimize(q);
    IFLOW_CHECK(r.feasible);
    total += r.actual_cost;
    *plans += r.plans_considered;
    *deploy_ms += r.deploy_time_ms;
    if (env.reuse && registry != nullptr) {
      query::RateModel rates(*env.catalog, q);
      advert::advertise_deployment(*registry, r.deployment, rates);
    }
  }
  return total;
}

}  // namespace

int main() {
  Prng prng(2024);
  const net::Network net =
      net::make_transit_stub(net::TransitStubParams{}, prng);
  const net::RoutingTables routing = net::RoutingTables::build(net);
  Prng hier_prng(7);
  const cluster::Hierarchy hierarchy =
      cluster::Hierarchy::build(net, routing, 32, hier_prng);

  // Telemetry streams: per-region flow summaries, alerts, latency probes...
  workload::WorkloadParams wp;
  wp.num_streams = 12;
  wp.min_joins = 2;
  wp.max_joins = 4;
  Prng wl_prng(99);
  const workload::Workload wl = workload::make_workload(net, wp, 40, wl_prng);

  std::cout << "network monitoring: " << wl.queries.size()
            << " standing queries over " << wp.num_streams
            << " telemetry streams, " << net.node_count() << " nodes\n\n";

  TextTable t({"algorithm", "reuse", "total cost", "plans", "deploy(s)"});
  struct Row {
    const char* name;
    bool top_down;
    bool reuse;
  };
  double baseline = 0.0;
  for (const Row row : {Row{"top-down", true, false}, Row{"top-down", true, true},
                        Row{"bottom-up", false, false},
                        Row{"bottom-up", false, true}}) {
    advert::Registry registry;
    opt::OptimizerEnv env;
    env.catalog = &wl.catalog;
    env.network = &net;
    env.routing = &routing;
    env.hierarchy = &hierarchy;
    env.registry = &registry;
    env.reuse = row.reuse;
    double plans = 0.0;
    double deploy_ms = 0.0;
    double total;
    if (row.top_down) {
      opt::TopDownOptimizer alg(env);
      total = deploy_all(alg, env, wl, &plans, &deploy_ms);
    } else {
      opt::BottomUpOptimizer alg(env);
      total = deploy_all(alg, env, wl, &plans, &deploy_ms);
    }
    if (!row.reuse && row.top_down) baseline = total;
    t.row()
        .cell(std::string(row.name))
        .cell(std::string(row.reuse ? "yes" : "no"))
        .cell(total, 0)
        .cell(plans, 0)
        .cell(deploy_ms / 1000.0, 2);
  }
  t.print(std::cout);
  std::cout << "\nShared sub-joins across monitoring queries are deployed "
               "once and advertised;\nlater queries consume the derived "
               "streams instead of re-shipping base data.\n";
  (void)baseline;
  return 0;
}
