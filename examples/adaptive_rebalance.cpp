// Runtime adaptivity through the middleware layer (paper §2: the IFLOW
// middleware re-triggers optimization when network conditions change).
//
// Deploys a set of queries, then simulates a network event — the backbone
// links become 20x more expensive (congestion repricing) — and lets the
// middleware detect the drift and migrate the affected deployments.
#include <iostream>

#include "common/table.h"
#include "engine/middleware.h"
#include "net/gtitm.h"
#include "workload/generator.h"

using namespace iflow;

int main() {
  Prng prng(77);
  net::TransitStubParams params;
  params.transit_count = 2;
  params.stub_domains_per_transit = 3;
  params.stub_domain_size = 6;
  net::Network net = net::make_transit_stub(params, prng);

  workload::WorkloadParams wp;
  wp.num_streams = 8;
  wp.min_joins = 2;
  wp.max_joins = 3;
  Prng wl_prng(5);
  workload::Workload wl = workload::make_workload(net, wp, 6, wl_prng);

  engine::Middleware middleware(net, wl.catalog, /*max_cs=*/8,
                                engine::Algorithm::kTopDown, /*seed=*/123,
                                /*drift_threshold=*/1.15);

  std::cout << "deploying " << wl.queries.size() << " queries on a "
            << net.node_count() << "-node network...\n";
  for (const query::Query& q : wl.queries) {
    const opt::OptimizeResult r = middleware.deploy(q);
    std::cout << "  " << q.name << ": cost " << r.actual_cost << "\n";
  }
  const double before = middleware.total_current_cost();
  std::cout << "total cost: " << before << "\n\n";

  // Data condition change: one stream's observed rate jumps 15x (a flash
  // event at that source). Plans chosen for the old statistics now drag the
  // heavy stream deep into their join trees; re-planning joins it where it
  // is cheap and reorders around it.
  query::StreamId hot = 0;
  std::size_t uses = 0;
  for (query::StreamId s = 0; s < wl.catalog.stream_count(); ++s) {
    std::size_t count = 0;
    for (const query::Query& q : wl.queries) {
      count += std::count(q.sources.begin(), q.sources.end(), s);
    }
    if (count > uses) {
      uses = count;
      hot = s;
    }
  }
  const double old_rate = wl.catalog.stream(hot).tuple_rate;
  std::cout << "EVENT: stream " << wl.catalog.stream(hot).name
            << " (used by " << uses << " queries) spikes from " << old_rate
            << " to " << old_rate * 15.0 << " tuples/s\n";
  middleware.set_stream_rate(hot, old_rate * 15.0);
  const double drifted = middleware.total_current_cost();
  std::cout << "cost under new conditions, old placements: " << drifted
            << " (" << 100.0 * (drifted / before - 1.0) << "% worse)\n\n";

  const std::vector<engine::Redeployment> moves = middleware.adapt();
  std::cout << "middleware re-optimized " << moves.size() << " quer"
            << (moves.size() == 1 ? "y" : "ies") << ":\n";
  TextTable t({"query", "planned", "drifted", "adapted", "recovered"});
  for (const engine::Redeployment& m : moves) {
    t.row()
        .cell(static_cast<int>(m.query))
        .cell(m.planned_cost)
        .cell(m.drifted_cost)
        .cell(m.adapted_cost)
        .cell(100.0 * (1.0 - m.adapted_cost / m.drifted_cost), 1);
  }
  t.print(std::cout);
  std::cout << "\ntotal cost after adaptation: "
            << middleware.total_current_cost() << " (was " << drifted
            << " drifted, " << before << " before the event)\n";
  return 0;
}
