// The paper's motivating scenario (§1.1): Delta Air Lines' Operational
// Information System.
//
// Recreates the example network of Figure 3 — WEATHER, FLIGHTS and
// CHECK-INS sources, processing nodes N1..N5 and terminal sinks — then
// walks through the paper's two optimizations:
//
//   1. Network-aware join ordering: the selectivity-optimal order
//      (FLIGHTS x WEATHER first) can lose to an alternative order once
//      link costs are taken into account.
//   2. Operator reuse: once Q2 (FLIGHTS x CHECK-INS to Sink3) is deployed,
//      Q1 prefers the plan that reuses that operator even though its
//      selectivity-only ordering differs.
#include <iostream>

#include "advert/registry.h"
#include "engine/simulation.h"
#include "net/network.h"
#include "opt/exhaustive.h"
#include "query/rates.h"
#include "sql/binder.h"

using namespace iflow;

namespace {

struct Ois {
  net::Network net;
  // Node ids, mirroring Figure 3.
  net::NodeId weather_src, flights_src, checkins_src;
  net::NodeId n1, n2, n3, n4, n5;
  net::NodeId sink3, sink4;

  Ois() {
    weather_src = net.add_node();
    flights_src = net.add_node();
    checkins_src = net.add_node();
    n1 = net.add_node();
    n2 = net.add_node();
    n3 = net.add_node();
    n4 = net.add_node();
    n5 = net.add_node();
    sink3 = net.add_node();
    sink4 = net.add_node();
    auto link = [this](net::NodeId a, net::NodeId b, double cost) {
      net.add_link(a, b, cost, /*delay=*/5.0, /*bw=*/1e7);
    };
    // Sources feed the processing mesh; FLIGHTS -> N2 is congested
    // (expensive), which is exactly the situation of optimization 1.
    link(weather_src, n2, 2.0);
    link(flights_src, n1, 1.0);
    link(flights_src, n2, 8.0);  // congested link
    link(checkins_src, n1, 1.0);
    link(n1, n2, 2.0);
    link(n1, n3, 2.0);
    link(n2, n3, 2.0);
    link(n3, n4, 2.0);
    link(n4, n5, 2.0);
    link(n3, sink3, 1.0);
    link(n4, sink4, 1.0);
  }
};

const char* name_of(const Ois& ois, net::NodeId n) {
  if (n == ois.weather_src) return "WEATHER";
  if (n == ois.flights_src) return "FLIGHTS";
  if (n == ois.checkins_src) return "CHECK-INS";
  if (n == ois.n1) return "N1";
  if (n == ois.n2) return "N2";
  if (n == ois.n3) return "N3";
  if (n == ois.n4) return "N4";
  if (n == ois.n5) return "N5";
  if (n == ois.sink3) return "Sink3";
  if (n == ois.sink4) return "Sink4";
  return "?";
}

void describe(const Ois& ois, const query::Deployment& d,
              const query::RateModel& rates) {
  for (const query::DeployedOp& op : d.ops) {
    std::string inputs;
    for (int child : {op.left, op.right}) {
      if (!inputs.empty()) inputs += " JOIN ";
      if (query::child_is_unit(child)) {
        const query::LeafUnit& u =
            d.units[static_cast<std::size_t>(query::child_unit_index(child))];
        std::string leaf;
        for (int i = 0; i < rates.k(); ++i) {
          if (u.mask >> i & 1) {
            if (!leaf.empty()) leaf += "x";
            leaf += rates.catalog().stream(rates.stream(i)).name;
          }
        }
        if (u.derived) leaf += "[reused@" + std::string(name_of(ois, u.location)) + "]";
        inputs += leaf;
      } else {
        inputs += "(op@" + std::string(name_of(
                               ois, d.ops[static_cast<std::size_t>(child)].node)) +
                  ")";
      }
    }
    std::cout << "    " << inputs << "  at " << name_of(ois, op.node) << "\n";
  }
  std::cout << "    -> delivered to " << name_of(ois, d.sink) << "\n";
}

}  // namespace

int main() {
  Ois ois;
  const net::RoutingTables routing = net::RoutingTables::build(ois.net);

  // Stream statistics (historical observations, §1.1). FLIGHTS x WEATHER is
  // the most selective pair, so a statistics-only planner would join it
  // first.
  query::Catalog catalog;
  const auto weather = catalog.add_stream("WEATHER", ois.weather_src, 30.0, 100.0);
  const auto flights = catalog.add_stream("FLIGHTS", ois.flights_src, 60.0, 150.0);
  const auto checkins = catalog.add_stream("CHECK-INS", ois.checkins_src, 90.0, 80.0);
  catalog.set_columns(weather, {"CITY", "FORECAST"});
  catalog.set_columns(flights,
                      {"STATUS", "DEPARTING", "DESTN", "NUM", "DP-TIME"});
  catalog.set_columns(checkins, {"STATUS", "FLNUM"});
  catalog.set_selectivity(flights, weather, 0.004);   // most selective
  catalog.set_selectivity(flights, checkins, 0.008);
  catalog.set_selectivity(weather, checkins, 0.05);

  // Selectivity estimates for the paper's selection predicates (from
  // historical statistics): Atlanta departures are ~40% of FLIGHTS,
  // the 12-hour window keeps ~60%.
  const sql::FilterEstimator estimator =
      [&](query::StreamId, const sql::FilterPredicate& p) {
        if (p.value == "ATLANTA") return 0.4;
        if (p.column.column == "DP-TIME") return 0.6;
        return sql::default_filter_estimate(0, p);
      };

  advert::Registry registry;
  opt::OptimizerEnv env;
  env.catalog = &catalog;
  env.network = &ois.net;
  env.routing = &routing;
  env.registry = &registry;
  env.reuse = true;
  // Figure 3 marks only N1..N5 as "available for processing".
  env.processing_nodes = {ois.n1, ois.n2, ois.n3, ois.n4, ois.n5};
  opt::ExhaustiveOptimizer optimizer(env);

  // ---------------------------------------------------------------- Q1 ---
  // Q1, exactly as the paper writes it: flight + weather + check-in status
  // for Atlanta departures in the next 12 hours, to overhead display Sink4.
  const char* q1_sql =
      "SELECT FLIGHTS.STATUS, WEATHER.FORECAST, CHECK-INS.STATUS "
      "FROM FLIGHTS, WEATHER, CHECK-INS "
      "WHERE FLIGHTS.DEPARTING = 'ATLANTA' "
      "AND FLIGHTS.DESTN = WEATHER.CITY "
      "AND FLIGHTS.NUM = CHECK-INS.FLNUM "
      "AND FLIGHTS.DP-TIME - CURRENT_TIME < '12:00:00'";
  const sql::BoundQuery q1_bound =
      sql::compile(q1_sql, catalog, 1, ois.sink4, estimator);
  query::Query q1 = q1_bound.query;
  q1.name = "Q1";
  query::RateModel rates1(catalog, q1);
  std::cout << "Q1 compiled from SQL: " << q1.k() << " streams, FLIGHTS "
               "filtered to "
            << 100.0 * q1.filter_on(flights) << "% by its predicates\n\n";

  std::cout << "=== Optimization 1: network-aware join ordering ===\n";
  std::cout << "Q1 alone (FLIGHTS->N2 link congested at cost 8/byte):\n";
  const opt::OptimizeResult q1_alone = optimizer.optimize(q1);
  describe(ois, q1_alone.deployment, rates1);
  std::cout << "  cost " << q1_alone.actual_cost
            << "/unit time — the planner avoids shipping FLIGHTS over the "
               "congested link even though FLIGHTSxWEATHER is the most "
               "selective pair\n\n";

  // ---------------------------------------------------------------- Q2 ---
  std::cout << "=== Optimization 2: operator reuse ===\n";
  const char* q2_sql =
      "SELECT FLIGHTS.STATUS, CHECK-INS.STATUS "
      "FROM FLIGHTS, CHECK-INS "
      "WHERE FLIGHTS.DEPARTING = 'ATLANTA' "
      "AND FLIGHTS.NUM = CHECK-INS.FLNUM "
      "AND FLIGHTS.DP-TIME - CURRENT_TIME < '12:00:00'";
  const sql::BoundQuery q2_bound =
      sql::compile(q2_sql, catalog, 2, ois.sink3, estimator);
  query::Query q2 = q2_bound.query;
  q2.name = "Q2";
  query::RateModel rates2(catalog, q2);
  const opt::OptimizeResult q2_res = optimizer.optimize(q2);
  std::cout << "Q2 (FLIGHTS x CHECK-INS to Sink3) deployed first:\n";
  describe(ois, q2_res.deployment, rates2);
  advert::advertise_deployment(registry, q2_res.deployment, rates2);

  std::cout << "\nQ1 planned again, now aware of Q2's operators:\n";
  const opt::OptimizeResult q1_reuse = optimizer.optimize(q1);
  describe(ois, q1_reuse.deployment, rates1);
  bool reused = false;
  for (const query::LeafUnit& u : q1_reuse.deployment.units) {
    reused |= u.derived;
  }
  std::cout << "  cost " << q1_reuse.actual_cost << " vs " << q1_alone.actual_cost
            << " standalone — " << (reused ? "reuses" : "does not reuse")
            << " the deployed FLIGHTSxCHECK-INS operator, switching to the "
               "(FLIGHTS x CHECK-INS) x WEATHER ordering\n\n";

  // ------------------------------------------------------------ execute ---
  std::cout << "=== Executing both queries in the engine ===\n";
  engine::EngineConfig cfg;
  cfg.duration_s = 30.0;
  engine::Simulation sim(ois.net, routing, catalog, cfg, 7);
  sim.deploy(q2_res.deployment, rates2);
  sim.deploy(q1_reuse.deployment, rates1);
  sim.run();
  std::cout << "  Q2 delivered " << sim.tuples_delivered(q2.id)
            << " result tuples, Q1 delivered " << sim.tuples_delivered(q1.id)
            << " in " << cfg.duration_s << " s\n";
  std::cout << "  measured network cost " << sim.measured_cost_per_second()
            << "/s vs planned "
            << q2_res.actual_cost + q1_reuse.actual_cost << "/s\n";
  return 0;
}
