#include "workload/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "net/gtitm.h"

namespace iflow::workload {
namespace {

net::Network small_net(std::uint64_t seed) {
  Prng prng(seed);
  net::TransitStubParams p;
  p.transit_count = 2;
  p.stub_domains_per_transit = 2;
  p.stub_domain_size = 4;
  return net::make_transit_stub(p, prng);
}

TEST(WorkloadTest, GeneratesRequestedShapes) {
  const net::Network net = small_net(1);
  WorkloadParams p;
  p.num_streams = 10;
  p.min_joins = 2;
  p.max_joins = 5;
  Prng prng(2);
  const Workload w = make_workload(net, p, 25, prng);
  EXPECT_EQ(w.catalog.stream_count(), 10u);
  ASSERT_EQ(w.queries.size(), 25u);
  for (const query::Query& q : w.queries) {
    EXPECT_GE(q.k(), 3);  // min_joins + 1
    EXPECT_LE(q.k(), 6);  // max_joins + 1
    EXPECT_LT(q.sink, net.node_count());
    std::set<query::StreamId> distinct(q.sources.begin(), q.sources.end());
    EXPECT_EQ(distinct.size(), q.sources.size());
    for (auto s : q.sources) EXPECT_LT(s, w.catalog.stream_count());
  }
}

TEST(WorkloadTest, RatesAndSelectivitiesWithinBounds) {
  const net::Network net = small_net(3);
  WorkloadParams p;
  Prng prng(4);
  const Workload w = make_workload(net, p, 5, prng);
  for (query::StreamId s = 0; s < w.catalog.stream_count(); ++s) {
    EXPECT_GE(w.catalog.stream(s).tuple_rate, p.tuple_rate_min);
    EXPECT_LE(w.catalog.stream(s).tuple_rate, p.tuple_rate_max);
    EXPECT_GE(w.catalog.stream(s).tuple_width, p.tuple_width_min);
    EXPECT_LE(w.catalog.stream(s).tuple_width, p.tuple_width_max);
    EXPECT_LT(w.catalog.stream(s).source, net.node_count());
    for (query::StreamId t = 0; t < w.catalog.stream_count(); ++t) {
      if (s == t) continue;
      EXPECT_GE(w.catalog.selectivity(s, t), p.selectivity_min);
      EXPECT_LE(w.catalog.selectivity(s, t), p.selectivity_max);
    }
  }
}

TEST(WorkloadTest, DeterministicGivenSeed) {
  const net::Network net = small_net(5);
  WorkloadParams p;
  Prng a(7);
  Prng b(7);
  const Workload wa = make_workload(net, p, 10, a);
  const Workload wb = make_workload(net, p, 10, b);
  for (std::size_t i = 0; i < wa.queries.size(); ++i) {
    EXPECT_EQ(wa.queries[i].sources, wb.queries[i].sources);
    EXPECT_EQ(wa.queries[i].sink, wb.queries[i].sink);
  }
  for (query::StreamId s = 0; s < wa.catalog.stream_count(); ++s) {
    EXPECT_DOUBLE_EQ(wa.catalog.stream(s).tuple_rate,
                     wb.catalog.stream(s).tuple_rate);
  }
}

TEST(WorkloadTest, RejectsImpossibleParameters) {
  const net::Network net = small_net(6);
  WorkloadParams p;
  p.num_streams = 3;
  p.max_joins = 5;  // needs 6 streams
  Prng prng(8);
  EXPECT_THROW(make_workload(net, p, 1, prng), CheckError);
}

TEST(WorkloadTest, DegenerateJoinRangePinsEveryQuerySize) {
  const net::Network net = small_net(9);
  WorkloadParams p;
  p.num_streams = 8;
  p.min_joins = 4;
  p.max_joins = 4;  // min == max: every query spans exactly 5 sources
  Prng prng(10);
  const Workload w = make_workload(net, p, 20, prng);
  for (const query::Query& q : w.queries) EXPECT_EQ(q.k(), 5);
}

TEST(WorkloadTest, CertainFilterProbabilityFiltersEverySource) {
  const net::Network net = small_net(11);
  WorkloadParams p;
  p.filter_probability = 1.0;
  Prng prng(12);
  const Workload w = make_workload(net, p, 10, prng);
  for (const query::Query& q : w.queries) {
    ASSERT_EQ(q.filter_selectivity.size(), q.sources.size());
    for (int i = 0; i < q.k(); ++i) {
      EXPECT_GE(q.filter(i), p.filter_selectivity_min);
      EXPECT_LE(q.filter(i), p.filter_selectivity_max);
      EXPECT_LT(q.filter(i), 1.0);  // every source actually filtered
    }
  }
}

TEST(WorkloadTest, StreamsBarelyCoveringWidestQuerySpan) {
  // num_streams == max_joins + 1: the widest query must use every stream.
  const net::Network net = small_net(13);
  WorkloadParams p;
  p.num_streams = 6;
  p.min_joins = 5;
  p.max_joins = 5;
  Prng prng(14);
  const Workload w = make_workload(net, p, 8, prng);
  for (const query::Query& q : w.queries) {
    ASSERT_EQ(q.k(), 6);
    std::set<query::StreamId> distinct(q.sources.begin(), q.sources.end());
    EXPECT_EQ(distinct.size(), 6u);  // all streams, no repeats
    EXPECT_TRUE(std::is_sorted(q.sources.begin(), q.sources.end()));
  }
}

TEST(WorkloadTest, SameSeedIsBitwiseIdenticalIncludingFiltersAndSelectivities) {
  const net::Network net = small_net(15);
  WorkloadParams p;
  p.filter_probability = 0.5;
  Prng a(16);
  Prng b(16);
  const Workload wa = make_workload(net, p, 12, a);
  const Workload wb = make_workload(net, p, 12, b);
  ASSERT_EQ(wa.queries.size(), wb.queries.size());
  for (std::size_t i = 0; i < wa.queries.size(); ++i) {
    EXPECT_EQ(wa.queries[i].sources, wb.queries[i].sources);
    EXPECT_EQ(wa.queries[i].sink, wb.queries[i].sink);
    ASSERT_EQ(wa.queries[i].filter_selectivity.size(),
              wb.queries[i].filter_selectivity.size());
    for (std::size_t f = 0; f < wa.queries[i].filter_selectivity.size(); ++f) {
      // Bitwise, not approximate: determinism is a digest-level contract.
      EXPECT_EQ(wa.queries[i].filter_selectivity[f],
                wb.queries[i].filter_selectivity[f]);
    }
  }
  for (query::StreamId s = 0; s < wa.catalog.stream_count(); ++s) {
    EXPECT_EQ(wa.catalog.stream(s).tuple_rate,
              wb.catalog.stream(s).tuple_rate);
    EXPECT_EQ(wa.catalog.stream(s).tuple_width,
              wb.catalog.stream(s).tuple_width);
    EXPECT_EQ(wa.catalog.stream(s).source, wb.catalog.stream(s).source);
    for (query::StreamId t = 0; t < wa.catalog.stream_count(); ++t) {
      EXPECT_EQ(wa.catalog.selectivity(s, t), wb.catalog.selectivity(s, t));
    }
  }
}

}  // namespace
}  // namespace iflow::workload
