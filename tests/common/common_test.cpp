#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <sstream>

#include "common/check.h"
#include "common/prng.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace iflow {
namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  EXPECT_NO_THROW(IFLOW_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(IFLOW_CHECK_MSG(true, "never shown"));
}

TEST(CheckTest, FailureCarriesExpressionAndMessage) {
  try {
    IFLOW_CHECK_MSG(2 < 1, "custom detail " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("custom detail 42"), std::string::npos);
    EXPECT_NE(what.find("common_test.cpp"), std::string::npos);
  }
}

TEST(PrngTest, DeterministicAndInRange) {
  Prng a(123);
  Prng b(123);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.uniform_int(-5, 17);
    EXPECT_EQ(va, b.uniform_int(-5, 17));
    EXPECT_GE(va, -5);
    EXPECT_LE(va, 17);
  }
}

TEST(PrngTest, UniformCoversRange) {
  Prng p(7);
  double lo = 1e9;
  double hi = -1e9;
  for (int i = 0; i < 1000; ++i) {
    const double v = p.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(lo, 2.1);
  EXPECT_GT(hi, 2.9);
}

TEST(PrngTest, ChanceRespectsProbability) {
  Prng p(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += p.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(PrngTest, ExponentialHasRightMean) {
  Prng p(13);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += p.exponential(4.0);
  EXPECT_NEAR(sum / 20000.0, 0.25, 0.01);
}

TEST(PrngTest, ShuffleIsAPermutation) {
  Prng p(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  p.shuffle(v);
  auto shuffled_sorted = v;
  std::sort(shuffled_sorted.begin(), shuffled_sorted.end());
  EXPECT_EQ(shuffled_sorted, sorted);
}

TEST(PrngTest, ForkGivesIndependentStreams) {
  Prng parent(19);
  Prng c1 = parent.fork(1);
  Prng c2 = parent.fork(2);
  bool differ = false;
  for (int i = 0; i < 10; ++i) {
    differ |= c1.uniform_int(0, 1 << 30) != c2.uniform_int(0, 1 << 30);
  }
  EXPECT_TRUE(differ);
}

TEST(PrngTest, GuardsDegenerateInputs) {
  Prng p(23);
  EXPECT_THROW(p.uniform_int(3, 2), CheckError);
  EXPECT_THROW(p.index(0), CheckError);
  EXPECT_THROW(p.exponential(0.0), CheckError);
  std::vector<int> empty;
  EXPECT_THROW(p.pick(empty), CheckError);
}

TEST(TextTableTest, AlignsColumnsAndFormats) {
  TextTable t({"name", "value"});
  t.row().cell(std::string("alpha")).cell(3.14159, 2);
  t.row().cell(std::string("b")).cell(std::uint64_t{42});
  t.row().cell(std::string("sci")).cell_sci(12345.0, 1);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("1.2e+04"), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTableTest, RejectsCellWithoutRow) {
  TextTable t({"a"});
  EXPECT_THROW(t.cell(std::string("x")), CheckError);
}

TEST(ThreadPoolTest, BlocksCoverRangeExactlyOnce) {
  for (const int threads : {1, 2, 3, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.thread_count(), threads);
    for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                                std::size_t{64}, std::size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      pool.parallel_blocks(n, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
      });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, ReducesSameSumAsSerial) {
  const std::size_t n = 4096;
  std::vector<double> data(n);
  Prng p(29);
  for (double& d : data) d = p.uniform(0.0, 1.0);
  const double serial = std::accumulate(data.begin(), data.end(), 0.0);

  ThreadPool pool(4);
  std::vector<double> out(n, 0.0);
  pool.parallel_blocks(n, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) out[i] = data[i];
  });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0.0), serial);
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int job = 0; job < 200; ++job) {
    pool.parallel_blocks(17, [&](std::size_t b, std::size_t e) {
      total.fetch_add(static_cast<long>(e - b));
    });
  }
  EXPECT_EQ(total.load(), 200L * 17L);
}

}  // namespace
}  // namespace iflow
