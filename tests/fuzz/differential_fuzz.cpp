// Differential fuzz harness over the six optimizers.
//
// Each iteration derives a random transit–stub instance (topology,
// hierarchy, catalog, one K<=5-source query, sometimes filters, aggregation
// or a processing-node restriction) from `base_seed + iteration`, runs all
// six optimizers and cross-checks them:
//   * every deployment passes verify::validate with zero violations,
//     including the planned-cost and marginal-accounting checks;
//   * no heuristic undercuts the exhaustive optimum (unrestricted
//     instances only: the processing fallback can legitimately hand a
//     hierarchical scope nodes the restricted exhaustive search lacks);
//   * Top-Down respects the Theorem 3 sub-optimality bound;
//   * Bottom-Up never beats the optimal placement of its own join tree
//     (paper §2.3.2's anchor);
//   * reuse never hurts the exhaustive optimizer, and reused deployments
//     still validate (marginal accounting of derived units);
//   * rebuilding the instance from its seed reproduces every cost
//     bit-for-bit (determinism).
//
// Runs as a ctest with a small budget; soak with
//   ./tests/differential_fuzz --iterations 20000 --seed 1
// Exit status is the number of failing iterations (0 = clean).
//
// --threads N sizes the shared PlanWorkspace's pool; --digest prints one
// hexfloat cost line per (seed, optimizer), so CI can diff a --threads 1
// run against a --threads N run and assert the parallel site sweep is
// bitwise-identical to the serial one.
//
// --churn switches to the failure/churn harness: each iteration derives a
// random network + workload, replays a seeded fault schedule (crashes,
// processing failures, link flaps, restores, rate spikes) through
// engine::run_churn, and fails the iteration on any validator violation,
// unresumed query after full restoration, or missed convergence. With
// --digest it prints the per-step transcript (hexfloat costs), which must
// be identical across --threads values for the same seed.
//
// --loss is a seeded loss-rate sweep through the same harness with the
// delivery contract armed: per-link loss ceilings in [0.5%, 5%] (always
// within the default retry budget's tolerance), loss/jitter/queue-pressure
// events mixed into the churn, and a post-churn reliable-delivery check
// that must match the loss-free baseline exactly with zero tuples lost
// after retries.
//
// --scenario fuzzes the scenario generator: each iteration re-seeds a
// random catalogue entry (jittering its query count and failure-script
// intensity), replays it through run_churn / run_scripted under a random
// optimizer, and holds the full contract set — zero violations, full
// resumption, convergence, exact delivery. With --digest the per-scenario
// transcript must be identical across --threads values.
//
// --oracle differentially fuzzes the sparse distance oracle: each iteration
// builds a partitioned hierarchy over a random transit–stub world, sweeps
// validate_pair (|estimate - exact| <= slack on every sampled pair), and
// plans every query twice — once against exact routing rows, once through
// the tiered SparseOracle. Feasibility must be identical, sparse-planned
// deployments must validate, and the sparse exhaustive optimum must stay
// within the Theorem-1 slack budget of the dense optimum.
//
// --gray fuzzes the gray-failure health plane: each iteration builds a
// seeded relay-shaped world (a cheap star hub is the strictly optimal
// meeting point, so it hosts operators without being any query's
// endpoint), draws a gray intensity, and replays engine::run_gray's three
// sub-runs (detector on, detector off, healthy twin). Fails on any
// validator violation, on a quarantine in the healthy twin (false
// positive), and on the detector-on run undercutting the detector-off
// goodput. With --digest the per-epoch transcript must be identical
// across --threads values.
//
// --recovery fuzzes the checkpoint/recovery plane over the same relay
// geometry with drawn checkpoint intervals and fault timing: a faulted
// checkpointed run (mid-stream crash + rollback recovery + forced warm
// migrations) must deliver the fault-free twin's per-query counts exactly,
// with zero tuples lost after retries and at least one committed epoch.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cluster/hierarchy.h"
#include "cluster/theory.h"
#include "engine/chaos.h"
#include "engine/health.h"
#include "net/gtitm.h"
#include "opt/bottom_up.h"
#include "opt/exhaustive.h"
#include "opt/in_network.h"
#include "opt/plan_then_deploy.h"
#include "opt/relaxation.h"
#include "opt/search/planner.h"
#include "opt/search/sparse_oracle.h"
#include "opt/top_down.h"
#include "query/rates.h"
#include "verify/validator.h"
#include "workload/generator.h"
#include "workload/scenario.h"

namespace iflow {
namespace {

struct Options {
  std::uint64_t seed = 20070806;
  int iterations = 500;
  int threads = 1;
  bool verbose = false;
  bool digest = false;
  bool churn = false;
  bool register_churn = false;
  bool loss = false;
  bool scenario = false;
  bool oracle = false;
  bool gray = false;
  bool recovery = false;
};

/// One self-contained random instance. Everything is derived from the seed,
/// so an instance can be rebuilt bit-for-bit for the determinism check.
struct Instance {
  net::Network net;
  net::RoutingTables rt;
  query::Catalog catalog;
  query::Query query;
  bool restricted = false;
  std::vector<net::NodeId> processing_nodes;
  // Declared last: its initializer (`make`) fills in every member above.
  cluster::Hierarchy hierarchy;

  explicit Instance(std::uint64_t seed) : hierarchy(make(seed)) {}

 private:
  // Builds everything else in dependency order, then returns the hierarchy
  // so Instance needs no default-constructible Hierarchy.
  cluster::Hierarchy make(std::uint64_t seed) {
    Prng prng(seed);
    // Sizes straddle the planner's parallel-sweep threshold (32 sites) so
    // the --threads digest comparison exercises both code paths.
    net::TransitStubParams p;
    p.transit_count = 1 + static_cast<int>(prng.index(3));
    p.stub_domains_per_transit = 1 + static_cast<int>(prng.index(3));
    p.stub_domain_size = 2 + static_cast<int>(prng.index(5));
    net = net::make_transit_stub(p, prng);
    rt = net::RoutingTables::build(net);

    const int k = 2 + static_cast<int>(prng.index(4));  // K in [2, 5]
    for (int i = 0; i < k; ++i) {
      query.sources.push_back(catalog.add_stream(
          "S" + std::to_string(i),
          static_cast<net::NodeId>(prng.index(net.node_count())),
          prng.uniform(5.0, 50.0), prng.uniform(10.0, 100.0)));
    }
    for (int a = 0; a < k; ++a) {
      for (int b = a + 1; b < k; ++b) {
        catalog.set_selectivity(query.sources[static_cast<std::size_t>(a)],
                                query.sources[static_cast<std::size_t>(b)],
                                prng.uniform(0.005, 0.05));
      }
    }
    query.id = static_cast<query::QueryId>(seed & 0xffff);
    query.name = "fuzz-" + std::to_string(seed);
    query.sink = static_cast<net::NodeId>(prng.index(net.node_count()));
    if (prng.chance(0.3)) {
      for (int i = 0; i < k; ++i) {
        query.filter_selectivity.push_back(prng.uniform(0.1, 1.0));
      }
    }
    if (prng.chance(0.25)) {
      query.aggregate.fn = query::AggregateFn::kCount;
      query.aggregate.groups = 1.0 + static_cast<double>(prng.index(8));
      query.aggregate.window_s = prng.uniform(0.5, 5.0);
    }
    // Every fourth instance restricts processing to a random node subset
    // (at least one node), exercising restrict_sites and the fallback.
    restricted = prng.chance(0.25);
    if (restricted) {
      for (net::NodeId n = 0; n < net.node_count(); ++n) {
        if (prng.chance(0.4)) processing_nodes.push_back(n);
      }
      if (processing_nodes.empty()) {
        processing_nodes.push_back(
            static_cast<net::NodeId>(prng.index(net.node_count())));
      }
    }
    const int max_cs = 3 + static_cast<int>(prng.index(3));  // [3, 5]
    Prng hp(seed ^ 0x9E3779B97F4A7C15ULL);
    return cluster::Hierarchy::build(net, rt, max_cs, hp);
  }
};

/// Reconstructs the join tree a deployment realised (units as leaves), for
/// re-placing Bottom-Up's own tree optimally.
query::JoinTree tree_of(const query::Deployment& d) {
  query::JoinTree t;
  std::vector<int> unit_node(d.units.size());
  for (std::size_t u = 0; u < d.units.size(); ++u) {
    query::TreeNode leaf;
    leaf.unit = static_cast<int>(u);
    leaf.mask = d.units[u].mask;
    t.nodes.push_back(leaf);
    unit_node[u] = static_cast<int>(t.nodes.size()) - 1;
  }
  std::vector<int> op_node(d.ops.size());
  for (std::size_t i = 0; i < d.ops.size(); ++i) {
    auto resolve = [&](int child) {
      return query::child_is_unit(child)
                 ? unit_node[static_cast<std::size_t>(
                       query::child_unit_index(child))]
                 : op_node[static_cast<std::size_t>(child)];
    };
    query::TreeNode n;
    n.left = resolve(d.ops[i].left);
    n.right = resolve(d.ops[i].right);
    n.mask = d.ops[i].mask;
    t.nodes.push_back(n);
    op_node[i] = static_cast<int>(t.nodes.size()) - 1;
  }
  t.root = static_cast<int>(t.nodes.size()) - 1;
  return t;
}

/// Byte rates of every edge of a deployment's tree — the s_k of Theorem 3.
std::vector<double> edge_rates(const query::Deployment& d) {
  std::vector<double> rates;
  for (const query::DeployedOp& op : d.ops) {
    for (int child : {op.left, op.right}) {
      rates.push_back(query::child_bytes_rate(d, child));
    }
  }
  rates.push_back(d.root_bytes_rate());
  return rates;
}

struct AlgRun {
  std::string name;
  opt::OptimizeResult result;
};

std::vector<AlgRun> run_all(const opt::OptimizerEnv& env,
                            const query::Query& q) {
  opt::ExhaustiveOptimizer ex(env);
  opt::TopDownOptimizer td(env);
  opt::BottomUpOptimizer bu(env);
  opt::PlanThenDeployOptimizer ptd(env);
  opt::RelaxationOptimizer relax(env, /*seed=*/7);
  opt::InNetworkOptimizer innet(env, /*seed=*/13);
  std::vector<opt::Optimizer*> algs = {&ex, &td, &bu, &ptd, &relax, &innet};
  std::vector<AlgRun> runs;
  runs.reserve(algs.size());
  for (opt::Optimizer* alg : algs) {
    runs.push_back(AlgRun{alg->name(), alg->optimize(q)});
  }
  return runs;
}

/// Accumulates failures for one iteration; prints context lazily so clean
/// iterations stay silent.
struct IterationLog {
  std::uint64_t seed;
  int failures = 0;

  void fail(const std::string& what) {
    std::cerr << "[seed " << seed << "] " << what << '\n';
    ++failures;
  }
};

void check_instance(std::uint64_t seed, const Options& opt,
                    opt::PlanWorkspace& ws, IterationLog& log) {
  Instance inst(seed);
  opt::OptimizerEnv env;
  env.catalog = &inst.catalog;
  env.network = &inst.net;
  env.routing = &inst.rt;
  env.hierarchy = &inst.hierarchy;
  env.reuse = false;
  env.processing_nodes = inst.processing_nodes;
  env.workspace = &ws;

  const std::vector<AlgRun> runs = run_all(env, inst.query);
  if (opt.digest) {
    for (const AlgRun& run : runs) {
      std::cout << "digest " << seed << ' ' << run.name << ' ' << std::hexfloat
                << run.result.actual_cost << std::defaultfloat << '\n';
    }
  }
  for (const AlgRun& run : runs) {
    if (!run.result.feasible) {
      log.fail(run.name + ": infeasible");
      continue;
    }
    verify::ValidateOptions vopts;
    vopts.query = &inst.query;
    vopts.planned_cost = run.result.planned_cost;
    if (!run.result.op_scopes.empty()) vopts.op_scopes = &run.result.op_scopes;
    const auto violations =
        verify::validate(run.result.deployment, env, vopts);
    if (!violations.empty()) {
      log.fail(run.name + ": validator violations:\n" +
               verify::describe(violations));
    }
  }

  const double tol = 1e-6;
  if (!inst.restricted) {
    // The exhaustive optimum lower-bounds every heuristic. (Restricted
    // instances are excluded: the documented fallback can hand a
    // processing-free hierarchical scope nodes the restricted exhaustive
    // search may not use.)
    const double optimum = runs.front().result.actual_cost;
    for (const AlgRun& run : runs) {
      if (!run.result.feasible) continue;
      if (run.result.actual_cost < optimum - tol * (1.0 + optimum)) {
        std::ostringstream os;
        os << run.name << " beats exhaustive: " << run.result.actual_cost
           << " < " << optimum;
        log.fail(os.str());
      }
    }
    // Theorem 3: Top-Down within sum_k s_k * sum_i 2 d_i of optimal. The
    // bound argues over raw tree-edge rates, so skip aggregated queries
    // (their delivery edge carries the shrunken aggregate stream).
    const opt::OptimizeResult& td = runs[1].result;
    if (td.feasible && !inst.query.aggregate.enabled()) {
      const double bound = cluster::theorem3_bound(
          inst.hierarchy, edge_rates(td.deployment));
      if (td.actual_cost > optimum + bound + tol * (1.0 + optimum + bound)) {
        std::ostringstream os;
        os << "top-down breaks Theorem 3: " << td.actual_cost << " > "
           << optimum << " + " << bound;
        log.fail(os.str());
      }
    }
    // Bottom-Up is anchored by the optimal placement of its own join tree.
    const opt::OptimizeResult& bu = runs[2].result;
    if (bu.feasible) {
      query::RateModel rates(inst.catalog, inst.query);
      std::vector<net::NodeId> sites;
      for (net::NodeId n = 0; n < inst.net.node_count(); ++n) {
        sites.push_back(n);
      }
      const opt::TreePlacement tp = opt::place_tree_optimal(
          tree_of(bu.deployment), bu.deployment.units, rates, inst.query.sink,
          sites, opt::DistanceOracle::routing(inst.rt),
          opt::delivery_rate_for(inst.query, rates), ws);
      if (!tp.feasible) {
        log.fail("bottom-up anchor placement infeasible");
      } else if (bu.actual_cost < tp.cost - tol * (1.0 + tp.cost)) {
        std::ostringstream os;
        os << "bottom-up beats the optimal placement of its own tree: "
           << bu.actual_cost << " < " << tp.cost;
        log.fail(os.str());
      }
    }
  }

  // Reuse pass (every other iteration): resubmitting through a session
  // advertises the first deployment's operators; the re-planned exhaustive
  // deployment must still validate (marginal accounting of derived units)
  // and must cost no more than planning without reuse.
  if (seed % 2 == 0) {
    advert::Registry registry;
    opt::OptimizerEnv reuse_env = env;  // inherits the shared workspace
    reuse_env.reuse = true;
    reuse_env.registry = &registry;
    opt::Session session(reuse_env,
                         std::make_unique<opt::ExhaustiveOptimizer>(reuse_env));
    const opt::OptimizeResult first = session.submit(inst.query);
    query::Query again = inst.query;
    again.id += 10000;
    const opt::OptimizeResult second = session.submit(again);
    if (!first.feasible || !second.feasible) {
      log.fail("reuse session produced an infeasible result");
    } else {
      verify::ValidateOptions vopts;
      vopts.query = &again;
      vopts.planned_cost = second.planned_cost;
      const auto violations =
          verify::validate(second.deployment, reuse_env, vopts);
      if (!violations.empty()) {
        log.fail("reused deployment violations:\n" +
                 verify::describe(violations));
      }
      if (second.actual_cost > first.actual_cost + tol * (1.0 + first.actual_cost)) {
        std::ostringstream os;
        os << "reuse hurt the exhaustive optimizer: " << second.actual_cost
           << " > " << first.actual_cost;
        log.fail(os.str());
      }
    }
  }

  // Determinism: every tenth iteration, rebuild the instance from its seed
  // and compare every optimizer's outcome bit-for-bit.
  if (seed % 10 == 0) {
    Instance replay(seed);
    opt::OptimizerEnv replay_env;
    replay_env.catalog = &replay.catalog;
    replay_env.network = &replay.net;
    replay_env.routing = &replay.rt;
    replay_env.hierarchy = &replay.hierarchy;
    replay_env.reuse = false;
    replay_env.processing_nodes = replay.processing_nodes;
    replay_env.workspace = &ws;
    const std::vector<AlgRun> reruns = run_all(replay_env, replay.query);
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const bool same =
          runs[i].result.feasible == reruns[i].result.feasible &&
          runs[i].result.actual_cost == reruns[i].result.actual_cost &&
          runs[i].result.deployment.ops.size() ==
              reruns[i].result.deployment.ops.size();
      if (!same) {
        log.fail(runs[i].name + ": non-deterministic result for this seed");
      }
    }
  }

  if (opt.verbose) {
    std::cout << "seed " << seed << ": " << inst.net.node_count() << " nodes, K="
              << inst.query.k() << (inst.restricted ? ", restricted" : "")
              << (log.failures ? " FAIL" : " ok") << '\n';
  }
}

/// One churn-fuzz iteration: random world, seeded fault schedule, full
/// invariant sweep via engine::run_churn.
void check_churn_instance(std::uint64_t seed, const Options& opt,
                          IterationLog& log) {
  Prng prng(seed);
  net::TransitStubParams p;
  p.transit_count = 1 + static_cast<int>(prng.index(2));
  p.stub_domains_per_transit = 2;
  p.stub_domain_size = 3 + static_cast<int>(prng.index(3));
  net::Network net = net::make_transit_stub(p, prng);
  workload::WorkloadParams wp;
  wp.num_streams = 5 + static_cast<int>(prng.index(3));
  wp.min_joins = 2;
  wp.max_joins = 3;
  Prng wprng(seed + 1);
  const int queries = 3 + static_cast<int>(prng.index(3));
  workload::Workload wl = workload::make_workload(net, wp, queries, wprng);

  engine::ChaosConfig cfg;
  cfg.events = 30 + static_cast<int>(prng.index(11));
  cfg.threads = opt.threads;
  const engine::ChaosReport report =
      engine::run_churn(net, wl.catalog, wl.queries, 4,
                        engine::Algorithm::kTopDown, seed, cfg);
  if (opt.digest) {
    std::istringstream lines(report.digest);
    std::string line;
    while (std::getline(lines, line)) {
      std::cout << "churn " << seed << ' ' << line << '\n';
    }
  }
  if (report.violations != 0) {
    log.fail("churn: validator violations: " + report.violation_detail);
  }
  if (!report.all_resumed) {
    log.fail("churn: queries left suspended after full restoration");
  }
  if (!report.converged) {
    std::ostringstream os;
    os << "churn: no convergence: final " << report.final_cost << " vs fresh "
       << report.fresh_cost;
    log.fail(os.str());
  }
}

/// One registration-churn iteration: random world and query pool spread
/// over three tenants, a seeded register/unregister schedule through
/// admission control (roughly half the iterations run capacity-bound, and
/// some replay a scenario churn script instead of injector draws), with the
/// validator sweeping every event inside run_registration_churn. Fails on
/// any validator violation, on an admitted plan raising the over-capacity
/// count, and on the resume-backoff bound.
void check_register_churn_instance(std::uint64_t seed, const Options& opt,
                                   IterationLog& log) {
  Prng prng(seed);
  net::TransitStubParams p;
  p.transit_count = 1 + static_cast<int>(prng.index(2));
  p.stub_domains_per_transit = 2;
  p.stub_domain_size = 3 + static_cast<int>(prng.index(3));
  net::Network net = net::make_transit_stub(p, prng);
  workload::WorkloadParams wp;
  wp.num_streams = 5 + static_cast<int>(prng.index(4));
  wp.min_joins = 2;
  wp.max_joins = 3;
  Prng wprng(seed + 1);
  const int queries = 4 + static_cast<int>(prng.index(4));
  workload::Workload wl = workload::make_workload(net, wp, queries, wprng);
  for (std::size_t i = 0; i < wl.queries.size(); ++i) {
    wl.queries[i].tenant = static_cast<std::uint32_t>(i % 3);
  }

  engine::RegistrationChurnConfig cfg;
  cfg.events = 32 + static_cast<int>(prng.index(17));
  cfg.settle_every = 4 + static_cast<int>(prng.index(5));
  cfg.quota_probability = 0.05;
  cfg.threads = opt.threads;
  if (prng.chance(0.5)) {
    // Capacity-bound iteration: learn the uncapacitated peak, then churn
    // with a budget below it so admission must price, degrade and reject.
    engine::Middleware probe(net, wl.catalog, 4, engine::Algorithm::kTopDown,
                             seed);
    bool all = true;
    for (const query::Query& q : wl.queries) {
      all = probe.deploy(q).feasible && all;
    }
    double peak = 0.0;
    for (const double l : probe.node_loads()) peak = std::max(peak, l);
    if (all && peak > 0.0) {
      cfg.node_capacity = peak * prng.uniform(0.5, 0.9);
    }
  }

  const bool scripted = prng.chance(0.3);
  const engine::RegistrationChurnReport report =
      scripted ? engine::run_registration_script(
                     net, wl.catalog, wl.queries, 4,
                     engine::Algorithm::kTopDown, seed,
                     workload::make_churn_script(net, wl.catalog,
                                                 wl.queries.size(), seed ^ 0x5C,
                                                 cfg.events),
                     cfg)
               : engine::run_registration_churn(net, wl.catalog, wl.queries, 4,
                                                engine::Algorithm::kTopDown,
                                                seed, cfg);
  if (opt.digest) {
    std::istringstream lines(report.digest);
    std::string line;
    while (std::getline(lines, line)) {
      std::cout << "register-churn " << seed << ' ' << line << '\n';
    }
  }
  if (report.violations != 0) {
    log.fail("register-churn: validator violations: " +
             report.violation_detail);
  }
  if (report.capacity_violations != 0) {
    std::ostringstream os;
    os << "register-churn: " << report.capacity_violations
       << " admitted plans raised the over-capacity count";
    log.fail(os.str());
  }
  if (!report.backoff_bounded) {
    std::ostringstream os;
    os << "register-churn: " << report.resume_failures
       << " resume failures exceed the backoff bound";
    log.fail(os.str());
  }
  if (opt.verbose) {
    std::cout << "seed " << seed << ": reg " << report.registrations
              << " rej " << report.rejections << " unreg "
              << report.unregistrations << (scripted ? " scripted" : "")
              << " parity " << (report.parity_ok ? 1 : 0)
              << (log.failures ? " FAIL" : " ok") << '\n';
  }
}

/// One loss-fuzz iteration: a seeded loss-rate sweep through the chaos
/// harness with the delivery contract armed. Each iteration draws its own
/// per-link loss ceiling in [0.5%, 5%] — always within what the default
/// retry budget tolerates — mixes loss/jitter/queue-pressure events into
/// the usual crash/flap churn, and requires the post-churn lossy run to
/// deliver exactly the loss-free baseline counts with zero tuples lost
/// after retries. With --digest the transcript (which includes the
/// delivered/retransmit counts) must be identical across --threads values.
void check_loss_instance(std::uint64_t seed, const Options& opt,
                         IterationLog& log) {
  Prng prng(seed);
  net::TransitStubParams p;
  p.transit_count = 1 + static_cast<int>(prng.index(2));
  p.stub_domains_per_transit = 2;
  p.stub_domain_size = 3 + static_cast<int>(prng.index(2));
  net::Network net = net::make_transit_stub(p, prng);
  workload::WorkloadParams wp;
  wp.num_streams = 5;
  wp.min_joins = 2;
  wp.max_joins = 3;
  Prng wprng(seed + 1);
  const int queries = 3 + static_cast<int>(prng.index(2));
  workload::Workload wl = workload::make_workload(net, wp, queries, wprng);

  engine::ChaosConfig cfg;
  cfg.events = 24;
  cfg.threads = opt.threads;
  cfg.loss_probability = 0.35;
  cfg.jitter_probability = 0.2;
  cfg.queue_probability = 0.15;
  cfg.max_link_loss = prng.uniform(0.005, 0.05);  // the loss-rate sweep
  cfg.delivery_check = true;
  cfg.delivery_duration_s = 15.0;
  const engine::ChaosReport report =
      engine::run_churn(net, wl.catalog, wl.queries, 4,
                        engine::Algorithm::kTopDown, seed, cfg);
  if (opt.digest) {
    std::istringstream lines(report.digest);
    std::string line;
    while (std::getline(lines, line)) {
      std::cout << "loss " << seed << ' ' << line << '\n';
    }
  }
  if (report.violations != 0) {
    log.fail("loss: validator violations: " + report.violation_detail);
  }
  if (!report.all_resumed) {
    log.fail("loss: queries left suspended after full restoration");
  }
  if (!report.delivery_checked) {
    log.fail("loss: delivery check could not deploy the surviving actives");
  } else if (!report.delivery_ok) {
    std::ostringstream os;
    os << "loss: delivery contract broken at max_link_loss "
       << cfg.max_link_loss << " (delivered " << report.delivered_total
       << ", retransmits " << report.retransmits_total << ")";
    log.fail(os.str());
  }
}

/// One scenario-fuzz iteration: a catalogue entry re-seeded and jittered,
/// replayed through the chaos harness under a random optimizer.
void check_scenario_instance(std::uint64_t seed, const Options& opt,
                             IterationLog& log) {
  Prng prng(seed);
  const auto& names = workload::scenario_names();
  workload::ScenarioSpec spec =
      workload::scenario_spec(names[prng.index(names.size())]);
  spec.seed = seed;
  spec.num_queries = 3 + static_cast<int>(prng.index(3));
  spec.failure_rounds = 1 + static_cast<int>(prng.index(3));
  const workload::Scenario sc = workload::build_scenario(spec);

  const engine::Algorithm algs[] = {engine::Algorithm::kTopDown,
                                    engine::Algorithm::kBottomUp,
                                    engine::Algorithm::kExhaustive};
  const engine::Algorithm alg = algs[prng.index(3)];

  engine::ChaosConfig cfg;
  cfg.events = 16;
  cfg.threads = opt.threads;
  cfg.delivery_check = true;
  cfg.rate_modulation = sc.rate_modulation();
  const engine::ChaosReport report =
      sc.script.empty()
          ? engine::run_churn(sc.net, sc.workload.catalog, sc.workload.queries,
                              4, alg, seed, cfg)
          : engine::run_scripted(sc.net, sc.workload.catalog,
                                 sc.workload.queries, 4, alg, seed, sc.script,
                                 cfg);
  if (opt.digest) {
    std::istringstream lines(report.digest);
    std::string line;
    while (std::getline(lines, line)) {
      std::cout << "scenario " << seed << ' ' << spec.name << ' ' << line
                << '\n';
    }
  }
  if (report.violations != 0) {
    log.fail("scenario " + spec.name +
             ": validator violations: " + report.violation_detail);
  }
  if (!report.all_resumed) {
    log.fail("scenario " + spec.name + ": queries left suspended");
  }
  if (!report.converged) {
    std::ostringstream os;
    os << "scenario " << spec.name << ": no convergence: final "
       << report.final_cost << " vs fresh " << report.fresh_cost;
    log.fail(os.str());
  }
  if (!report.delivery_checked) {
    log.fail("scenario " + spec.name + ": delivery check did not run");
  } else if (!report.delivery_ok) {
    log.fail("scenario " + spec.name + ": delivery contract broken");
  }
}

/// One gray-failure iteration: a seeded relay-shaped star world, a drawn
/// gray intensity, and engine::run_gray's three sub-runs. The soft goodput
/// floor here (on >= 0.95 * off) keeps the fuzz flake-free across drawn
/// intensities; the strict 1.5x detection contract is asserted under the
/// controlled defaults in health_test.cpp and measured by micro_health.
void check_gray_instance(std::uint64_t seed, const Options& opt,
                         IterationLog& log) {
  Prng prng(seed);
  // Dual-relay star: every endpoint reaches both relays directly, with the
  // primary strictly cheaper. Joining at the primary is optimal, so it
  // hosts operators without being any query's endpoint — and once the gray
  // harness degrades it, replanning onto the backup relay takes every data
  // path off the sick element entirely (a single-hub star could only move
  // the operators; the traffic would still cross the degraded hub).
  net::Network net;
  const net::NodeId primary = net.add_node();
  const net::NodeId backup = net.add_node();
  // Exactly three sources: the 3-way join at the relay is optimal for all
  // three exercised optimizers (wider worlds tip the heuristics toward
  // endpoint placements, leaving nothing degradable off the endpoints).
  const int sources = 3;
  std::vector<net::NodeId> src_nodes;
  for (int i = 0; i < sources; ++i) src_nodes.push_back(net.add_node());
  const net::NodeId sink = net.add_node();
  for (net::NodeId n : src_nodes) {
    net.add_link(primary, n, 1.0, 1.0, 1e6);
    net.add_link(backup, n, 1.3, 1.0, 1e6);
  }
  net.add_link(primary, sink, 1.0, 1.0, 1e6);
  net.add_link(backup, sink, 1.3, 1.0, 1e6);

  query::Catalog catalog;
  std::vector<query::StreamId> streams;
  // Equal rates keep the hub an optimal join site: an unequal pair makes
  // shipping the lighter stream to the heavier source strictly cheaper
  // (2*min < min+max), which would strand every operator on endpoints and
  // leave the gray harness nothing to degrade.
  const double rate = 15.0 + prng.uniform(0.0, 10.0);
  const double sel = 0.005 + prng.uniform(0.0, 0.045);
  for (int i = 0; i < sources; ++i) {
    streams.push_back(catalog.add_stream(
        "S" + std::to_string(i), src_nodes[static_cast<std::size_t>(i)], rate,
        100.0));
  }
  for (std::size_t i = 0; i < streams.size(); ++i) {
    for (std::size_t j = i + 1; j < streams.size(); ++j) {
      catalog.set_selectivity(streams[i], streams[j], sel);
    }
  }
  std::vector<query::Query> queries;
  query::Query q;
  q.id = 1;
  q.sources = {streams[0], streams[1], streams[2]};
  q.sink = sink;
  queries.push_back(q);

  const engine::Algorithm algs[] = {engine::Algorithm::kTopDown,
                                    engine::Algorithm::kBottomUp,
                                    engine::Algorithm::kExhaustive};
  const engine::Algorithm alg = algs[prng.index(3)];

  engine::GrayConfig cfg;
  cfg.epochs = 4;
  cfg.epoch_s = 8.0;
  cfg.threads = opt.threads;
  cfg.degradation.slowdown = 1.0 + prng.uniform(1.0, 3.0);
  cfg.degradation.loss = prng.uniform(0.4, 0.7);
  // max_cs covers the whole world: a single-cluster hierarchy keeps the
  // heuristics' relay placement independent of the clustering seed.
  const engine::GrayReport report =
      engine::run_gray(net, catalog, queries, 8, alg, seed, cfg);
  if (opt.digest) {
    std::istringstream lines(report.digest);
    std::string line;
    while (std::getline(lines, line)) {
      std::cout << "gray " << seed << ' ' << line << '\n';
    }
  }
  if (report.violations != 0) {
    log.fail("gray: validator violations: " + report.violation_detail);
  }
  if (report.false_positives != 0) {
    std::ostringstream os;
    os << "gray: " << report.false_positives
       << " quarantines in the healthy twin";
    log.fail(os.str());
  }
  if (report.goodput_on < 0.95 * report.goodput_off) {
    std::ostringstream os;
    os << "gray: detector-on goodput " << report.goodput_on
       << " undercuts detector-off " << report.goodput_off;
    log.fail(os.str());
  }
}

/// One recovery iteration: a seeded relay-shaped star world (same geometry
/// as --gray, so the join lands on a crashable non-endpoint relay), drawn
/// stream rates, checkpoint interval and fault timing, and
/// engine::run_recovery's three arms. The result-transparency contract is
/// asserted strictly — a faulted checkpointed run must deliver the
/// fault-free twin's per-query counts bit for bit with zero loss — while
/// the volatile teeth stay a one-sided sanity bound (a drawn crash window
/// can land where little state was at stake).
void check_recovery_instance(std::uint64_t seed, const Options& opt,
                             IterationLog& log) {
  Prng prng(seed);
  net::Network net;
  const net::NodeId primary = net.add_node();
  const net::NodeId backup = net.add_node();
  const int sources = 3;
  std::vector<net::NodeId> src_nodes;
  for (int i = 0; i < sources; ++i) src_nodes.push_back(net.add_node());
  const net::NodeId sink = net.add_node();
  for (net::NodeId n : src_nodes) {
    net.add_link(primary, n, 1.0, 1.0, 1e6);
    net.add_link(backup, n, 1.3, 1.0, 1e6);
  }
  net.add_link(primary, sink, 1.0, 1.0, 1e6);
  net.add_link(backup, sink, 1.3, 1.0, 1e6);

  query::Catalog catalog;
  std::vector<query::StreamId> streams;
  const double rate = 15.0 + prng.uniform(0.0, 10.0);
  const double sel = 0.01 + prng.uniform(0.0, 0.04);
  for (int i = 0; i < sources; ++i) {
    streams.push_back(catalog.add_stream(
        "S" + std::to_string(i), src_nodes[static_cast<std::size_t>(i)], rate,
        100.0));
  }
  for (std::size_t i = 0; i < streams.size(); ++i) {
    for (std::size_t j = i + 1; j < streams.size(); ++j) {
      catalog.set_selectivity(streams[i], streams[j], sel);
    }
  }
  std::vector<query::Query> queries;
  query::Query q;
  q.id = 1;
  q.sources = {streams[0], streams[1], streams[2]};
  q.sink = sink;
  queries.push_back(q);

  const engine::Algorithm algs[] = {engine::Algorithm::kTopDown,
                                    engine::Algorithm::kBottomUp,
                                    engine::Algorithm::kExhaustive};
  const engine::Algorithm alg = algs[prng.index(3)];

  engine::RecoveryConfig cfg;
  cfg.threads = opt.threads;
  cfg.events = 4 + static_cast<int>(prng.index(5));
  cfg.checkpoint_interval_s = 2.0 + prng.uniform(0.0, 6.0);
  cfg.crash_at_s = 12.0 + prng.uniform(0.0, 8.0);
  // Crash windows stay well inside the retry chain's reach so in-flight
  // tuples survive on the retry budget (lost-after-retries would be a
  // harness artefact, not a checkpoint bug).
  cfg.crash_len_s = 2.0 + prng.uniform(0.0, 3.0);
  cfg.migrate_at_s = 28.0 + prng.uniform(0.0, 8.0);
  const engine::RecoveryReport report =
      engine::run_recovery(net, catalog, queries, 8, alg, seed, cfg);
  if (opt.digest) {
    std::istringstream lines(report.digest);
    std::string line;
    while (std::getline(lines, line)) {
      std::cout << "recovery " << seed << ' ' << line << '\n';
    }
  }
  if (report.violations != 0) {
    log.fail("recovery: validator violations: " + report.violation_detail);
  }
  if (!report.counts_match) {
    std::ostringstream os;
    os << "recovery: faulted run delivered " << report.faulted_delivered
       << ", twin " << report.twin_delivered;
    log.fail(os.str());
  }
  if (report.faulted_lost != 0) {
    std::ostringstream os;
    os << "recovery: " << report.faulted_lost << " tuples lost after retries";
    log.fail(os.str());
  }
  if (report.epochs_committed < 1) {
    log.fail("recovery: no epoch ever committed");
  }
  if (report.volatile_delivered > report.twin_delivered) {
    std::ostringstream os;
    os << "recovery: volatile arm over-delivered (" << report.volatile_delivered
       << " > " << report.twin_delivered << ")";
    log.fail(os.str());
  }
}

/// One oracle-fuzz iteration: estimate-vs-exact sweep plus dense-vs-sparse
/// differential planning over a partitioned hierarchy.
void check_oracle_instance(std::uint64_t seed, const Options& opt,
                           opt::PlanWorkspace& ws, IterationLog& log) {
  Prng prng(seed);
  net::TransitStubParams p;
  p.transit_count = 1 + static_cast<int>(prng.index(3));
  p.stub_domains_per_transit = 1 + static_cast<int>(prng.index(3));
  p.stub_domain_size = 2 + static_cast<int>(prng.index(5));
  net::Network net = net::make_transit_stub(p, prng);
  const net::RoutingTables rt = net::RoutingTables::build(net);

  std::vector<std::vector<net::NodeId>> partitions;
  std::vector<net::NodeId> transit;
  for (int t = 0; t < p.transit_count; ++t) {
    transit.push_back(static_cast<net::NodeId>(t));
  }
  partitions.push_back(std::move(transit));
  for (int d = 0; d < net::stub_domain_count(p); ++d) {
    partitions.push_back(net::stub_domain_members(p, d));
  }
  const int max_cs = 3 + static_cast<int>(prng.index(3));  // [3, 5]
  Prng hp(seed ^ 0x9E3779B97F4A7C15ULL);
  const cluster::Hierarchy hierarchy =
      cluster::Hierarchy::build_partitioned(net, rt, partitions, max_cs, hp);

  opt::SparseOracleOptions oopts;
  oopts.pivots_per_cluster = prng.chance(0.5) ? 2 : 4;  // hit both sketch paths
  const opt::SparseOracle oracle(net, rt, hierarchy, oopts);

  // Estimate-vs-exact sweep: validate_pair CHECKs the slack contract, so a
  // violation surfaces as an exception failing the iteration.
  const auto n = static_cast<net::NodeId>(net.node_count());
  for (net::NodeId a = 0; a < n; a += 2) {
    for (net::NodeId b = 0; b < n; b += 3) oracle.validate_pair(a, b);
  }

  workload::WorkloadParams wp;
  wp.num_streams = 5 + static_cast<int>(prng.index(3));
  wp.min_joins = 2;
  wp.max_joins = 4;
  Prng wprng(seed + 1);
  const workload::Workload wl =
      workload::make_workload(net, wp, 3, wprng);

  opt::OptimizerEnv dense_env;
  dense_env.catalog = &wl.catalog;
  dense_env.network = &net;
  dense_env.routing = &rt;
  dense_env.hierarchy = &hierarchy;
  dense_env.workspace = &ws;
  opt::OptimizerEnv sparse_env = dense_env;
  sparse_env.sparse = &oracle;

  // Worst pairwise slack the oracle can inject into any priced edge.
  const double max_slack =
      cluster::theorem1_slack(hierarchy, hierarchy.height());
  const double tol = 1e-6;

  opt::ExhaustiveOptimizer dense_ex(dense_env), sparse_ex(sparse_env);
  opt::TopDownOptimizer dense_td(dense_env), sparse_td(sparse_env);
  opt::BottomUpOptimizer dense_bu(dense_env), sparse_bu(sparse_env);
  const std::vector<std::pair<opt::Optimizer*, opt::Optimizer*>> pairs = {
      {&dense_ex, &sparse_ex}, {&dense_td, &sparse_td}, {&dense_bu, &sparse_bu}};
  for (const query::Query& q : wl.queries) {
    for (const auto& [dense_alg, sparse_alg] : pairs) {
      const opt::OptimizeResult dense_r = dense_alg->optimize(q);
      const opt::OptimizeResult sparse_r = sparse_alg->optimize(q);
      if (opt.digest) {
        std::cout << "oracle " << seed << ' ' << sparse_alg->name() << ' '
                  << q.name << ' ' << std::hexfloat << sparse_r.actual_cost
                  << std::defaultfloat << '\n';
      }
      if (dense_r.feasible != sparse_r.feasible) {
        log.fail(std::string(sparse_alg->name()) +
                 ": feasibility diverges dense=" +
                 std::to_string(dense_r.feasible) +
                 " sparse=" + std::to_string(sparse_r.feasible));
        continue;
      }
      if (!sparse_r.feasible) continue;
      verify::ValidateOptions vopts;
      vopts.query = &q;
      vopts.planned_cost = sparse_r.planned_cost;
      const auto violations =
          verify::validate(sparse_r.deployment, sparse_env, vopts);
      if (!violations.empty()) {
        log.fail(std::string(sparse_alg->name()) +
                 " (sparse): validator violations:\n" +
                 verify::describe(violations));
      }
      // The sparse exhaustive search minimizes a pricing that differs from
      // the truth by at most max_slack per edge, so its actual cost stays
      // within one slack budget of each deployment's edge-rate mass of the
      // dense optimum. Heuristics recurse on estimates in a way that
      // compounds, so the cost bound is asserted for exhaustive only.
      if (dense_alg == &dense_ex) {
        double rate_mass = 0.0;
        for (double r : edge_rates(dense_r.deployment)) rate_mass += r;
        for (double r : edge_rates(sparse_r.deployment)) rate_mass += r;
        const double budget = rate_mass * max_slack;
        if (sparse_r.actual_cost >
            dense_r.actual_cost + budget +
                tol * (1.0 + dense_r.actual_cost + budget)) {
          std::ostringstream os;
          os << "sparse exhaustive exceeds the slack budget: "
             << sparse_r.actual_cost << " > " << dense_r.actual_cost << " + "
             << budget;
          log.fail(os.str());
        }
      }
    }
  }
}

int run(const Options& opt) {
  opt::PlanWorkspace ws(opt.threads);
  int failed_iterations = 0;
  for (int i = 0; i < opt.iterations; ++i) {
    const std::uint64_t seed = opt.seed + static_cast<std::uint64_t>(i);
    IterationLog log{seed};
    try {
      if (opt.recovery) {
        check_recovery_instance(seed, opt, log);
      } else if (opt.gray) {
        check_gray_instance(seed, opt, log);
      } else if (opt.oracle) {
        check_oracle_instance(seed, opt, ws, log);
      } else if (opt.scenario) {
        check_scenario_instance(seed, opt, log);
      } else if (opt.loss) {
        check_loss_instance(seed, opt, log);
      } else if (opt.register_churn) {
        check_register_churn_instance(seed, opt, log);
      } else if (opt.churn) {
        check_churn_instance(seed, opt, log);
      } else {
        check_instance(seed, opt, ws, log);
      }
    } catch (const std::exception& e) {
      log.fail(std::string("exception: ") + e.what());
    }
    if (log.failures > 0) ++failed_iterations;
    if ((i + 1) % 100 == 0 && !opt.verbose) {
      std::cout << (i + 1) << "/" << opt.iterations << " instances, "
                << failed_iterations << " failing\n";
    }
  }
  std::cout << "differential fuzz: " << opt.iterations << " instances from seed "
            << opt.seed << ", " << failed_iterations << " failing\n";
  return failed_iterations;
}

}  // namespace
}  // namespace iflow

int main(int argc, char** argv) {
  iflow::Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    auto numeric = [&](const char* text) -> std::uint64_t {
      char* end = nullptr;
      const std::uint64_t v = std::strtoull(text, &end, 10);
      if (end == text || *end != '\0') {
        std::cerr << arg << " needs a non-negative integer, got '" << text
                  << "'\n";
        std::exit(2);
      }
      return v;
    };
    if (arg == "--iterations") {
      opt.iterations = static_cast<int>(numeric(value()));
    } else if (arg == "--seed") {
      opt.seed = numeric(value());
    } else if (arg == "--threads") {
      opt.threads = static_cast<int>(numeric(value()));
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else if (arg == "--digest") {
      opt.digest = true;
    } else if (arg == "--churn") {
      opt.churn = true;
    } else if (arg == "--register-churn") {
      opt.register_churn = true;
    } else if (arg == "--loss") {
      opt.loss = true;
    } else if (arg == "--scenario") {
      opt.scenario = true;
    } else if (arg == "--oracle") {
      opt.oracle = true;
    } else if (arg == "--gray") {
      opt.gray = true;
    } else if (arg == "--recovery") {
      opt.recovery = true;
    } else {
      std::cerr << "usage: differential_fuzz [--iterations N] [--seed S] "
                   "[--threads T] [--digest] [--churn] [--register-churn] "
                   "[--loss] [--scenario] "
                   "[--oracle] [--gray] [--recovery] [--verbose]\n";
      return 2;
    }
  }
  return iflow::run(opt);
}
