#include "cluster/kmedoids.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace iflow::cluster {
namespace {

/// Two well-separated groups on a line.
DistanceFn line_distance(const std::vector<double>& pos) {
  return [pos](std::uint32_t a, std::uint32_t b) {
    return std::abs(pos[a] - pos[b]);
  };
}

TEST(KMedoidsTest, SeparatesObviousClusters) {
  const std::vector<double> pos = {0.0, 1.0, 2.0, 100.0, 101.0, 102.0};
  std::vector<std::uint32_t> items(pos.size());
  std::iota(items.begin(), items.end(), 0u);
  Prng prng(1);
  const KMedoidsResult r =
      k_medoids(items, 2, 3, line_distance(pos), prng);
  ASSERT_EQ(r.clusters.size(), 2u);
  for (const auto& c : r.clusters) {
    ASSERT_EQ(c.size(), 3u);
    const bool low = pos[c.front()] < 50.0;
    for (auto m : c) EXPECT_EQ(pos[m] < 50.0, low);
  }
}

TEST(KMedoidsTest, RespectsCapacity) {
  std::vector<std::uint32_t> items(17);
  std::iota(items.begin(), items.end(), 0u);
  const std::vector<double> pos = [] {
    std::vector<double> p(17);
    std::iota(p.begin(), p.end(), 0.0);
    return p;
  }();
  Prng prng(2);
  const KMedoidsResult r = k_medoids(items, 5, 4, line_distance(pos), prng);
  std::size_t total = 0;
  for (const auto& c : r.clusters) {
    EXPECT_LE(c.size(), 4u);
    total += c.size();
  }
  EXPECT_EQ(total, items.size());
}

TEST(KMedoidsTest, MedoidIsAMember) {
  std::vector<std::uint32_t> items(12);
  std::iota(items.begin(), items.end(), 0u);
  std::vector<double> pos(12);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    pos[i] = static_cast<double>((i * 37) % 13);
  }
  Prng prng(3);
  const KMedoidsResult r = k_medoids(items, 3, 6, line_distance(pos), prng);
  ASSERT_EQ(r.clusters.size(), r.medoids.size());
  for (std::size_t c = 0; c < r.clusters.size(); ++c) {
    EXPECT_NE(std::find(r.clusters[c].begin(), r.clusters[c].end(),
                        r.medoids[c]),
              r.clusters[c].end());
  }
}

TEST(KMedoidsTest, EveryItemAssignedExactlyOnce) {
  std::vector<std::uint32_t> items(30);
  std::iota(items.begin(), items.end(), 0u);
  std::vector<double> pos(30);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    pos[i] = static_cast<double>((i * 17) % 11);
  }
  Prng prng(4);
  const KMedoidsResult r = k_medoids(items, 4, 10, line_distance(pos), prng);
  std::vector<int> seen(30, 0);
  for (const auto& c : r.clusters) {
    for (auto m : c) seen[m]++;
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(KMedoidsTest, SingleClusterHoldsEverything) {
  std::vector<std::uint32_t> items = {5, 9, 11};
  Prng prng(5);
  const KMedoidsResult r = k_medoids(
      items, 1, 3,
      [](std::uint32_t a, std::uint32_t b) {
        return std::abs(static_cast<double>(a) - b);
      },
      prng);
  ASSERT_EQ(r.clusters.size(), 1u);
  EXPECT_EQ(r.clusters[0].size(), 3u);
  EXPECT_EQ(r.medoids[0], 9u);  // middle point minimises total distance
}

TEST(KMedoidsTest, RejectsInsufficientCapacity) {
  std::vector<std::uint32_t> items = {0, 1, 2, 3};
  Prng prng(6);
  EXPECT_THROW(k_medoids(items, 1, 3,
                         [](std::uint32_t, std::uint32_t) { return 1.0; },
                         prng),
               CheckError);
}

}  // namespace
}  // namespace iflow::cluster
