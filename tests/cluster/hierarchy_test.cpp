#include "cluster/hierarchy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "cluster/theory.h"
#include "net/gtitm.h"

namespace iflow::cluster {
namespace {

struct Fixture {
  net::Network net;
  net::RoutingTables rt;
  explicit Fixture(std::uint64_t seed, net::TransitStubParams p = {})
      : net([&] {
          Prng prng(seed);
          return net::make_transit_stub(p, prng);
        }()),
        rt(net::RoutingTables::build(net)) {}
};

TEST(HierarchyTest, BuildsValidPartitionAtEveryMaxCs) {
  Fixture f(11);
  for (int max_cs : {2, 4, 8, 16, 32, 64}) {
    Prng prng(1);
    const Hierarchy h = Hierarchy::build(f.net, f.rt, max_cs, prng);
    h.validate(f.net);
    EXPECT_GE(h.height(), 1) << "max_cs " << max_cs;
  }
}

TEST(HierarchyTest, HeightShrinksWithLargerClusters) {
  Fixture f(12);
  Prng p1(1), p2(1);
  const Hierarchy small = Hierarchy::build(f.net, f.rt, 4, p1);
  const Hierarchy large = Hierarchy::build(f.net, f.rt, 64, p2);
  EXPECT_GT(small.height(), large.height());
}

TEST(HierarchyTest, RepresentativeChainsAreCoordinators) {
  Fixture f(13);
  Prng prng(2);
  const Hierarchy h = Hierarchy::build(f.net, f.rt, 8, prng);
  for (net::NodeId n = 0; n < f.net.node_count(); n += 7) {
    EXPECT_EQ(h.representative(n, 1), n);
    for (int l = 2; l <= h.height(); ++l) {
      const net::NodeId rep = h.representative(n, l);
      // The representative participates at level l.
      const auto nodes = h.nodes_at(l);
      EXPECT_NE(std::find(nodes.begin(), nodes.end(), rep), nodes.end());
    }
  }
}

TEST(HierarchyTest, UnderlyingPartitionsPhysicalNodes) {
  Fixture f(14);
  Prng prng(3);
  const Hierarchy h = Hierarchy::build(f.net, f.rt, 8, prng);
  for (int l = 1; l <= h.height(); ++l) {
    std::set<net::NodeId> seen;
    for (net::NodeId member : h.nodes_at(l)) {
      for (net::NodeId p : h.underlying(member, l)) {
        EXPECT_TRUE(seen.insert(p).second)
            << "node " << p << " under two level-" << l << " members";
      }
    }
    EXPECT_EQ(seen.size(), f.net.node_count());
  }
}

TEST(HierarchyTest, TopLevelIsSingleClusterCoveringEverything) {
  Fixture f(15);
  Prng prng(4);
  const Hierarchy h = Hierarchy::build(f.net, f.rt, 16, prng);
  ASSERT_EQ(h.level(h.height()).size(), 1u);
  const auto& top = h.level(h.height())[0];
  std::size_t covered = 0;
  for (net::NodeId m : top.members) {
    covered += h.underlying(m, h.height()).size();
  }
  EXPECT_EQ(covered, f.net.node_count());
}

// Theorem 1: actual cost <= level-l estimate + sum_{i<l} 2 d_i.
TEST(HierarchyTest, Theorem1BoundHolds) {
  Fixture f(16);
  for (int max_cs : {4, 8, 32}) {
    Prng prng(5);
    const Hierarchy h = Hierarchy::build(f.net, f.rt, max_cs, prng);
    for (int l = 1; l <= h.height(); ++l) {
      const double slack = theorem1_slack(h, l);
      for (net::NodeId a = 0; a < f.net.node_count(); a += 13) {
        for (net::NodeId b = 0; b < f.net.node_count(); b += 17) {
          EXPECT_LE(f.rt.cost(a, b), h.est_cost(a, b, l) + slack + 1e-9)
              << "max_cs " << max_cs << " level " << l << " pair " << a
              << "," << b;
        }
      }
    }
  }
}

TEST(HierarchyTest, EstimateAtLevelOneIsExact) {
  Fixture f(17);
  Prng prng(6);
  const Hierarchy h = Hierarchy::build(f.net, f.rt, 8, prng);
  for (net::NodeId a = 0; a < f.net.node_count(); a += 11) {
    for (net::NodeId b = 0; b < f.net.node_count(); b += 19) {
      EXPECT_DOUBLE_EQ(h.est_cost(a, b, 1), f.rt.cost(a, b));
    }
  }
}

TEST(HierarchyTest, IntraClusterCostBoundedByD) {
  Fixture f(18);
  Prng prng(7);
  const Hierarchy h = Hierarchy::build(f.net, f.rt, 8, prng);
  for (int l = 1; l <= h.height(); ++l) {
    for (const Cluster& cl : h.level(l)) {
      for (net::NodeId a : cl.members) {
        for (net::NodeId b : cl.members) {
          EXPECT_LE(f.rt.cost(a, b), h.d(l) + 1e-12);
        }
      }
    }
  }
}

TEST(HierarchyTest, SmallNetworkCollapsesToOneLevel) {
  net::Network net;
  for (int i = 0; i < 4; ++i) net.add_node();
  net.add_link(0, 1, 1.0, 1.0, 1e6);
  net.add_link(1, 2, 1.0, 1.0, 1e6);
  net.add_link(2, 3, 1.0, 1.0, 1e6);
  const auto rt = net::RoutingTables::build(net);
  Prng prng(8);
  const Hierarchy h = Hierarchy::build(net, rt, 8, prng);
  EXPECT_EQ(h.height(), 1);
  h.validate(net);
}

class HierarchyMaintenanceTest : public ::testing::TestWithParam<int> {};

TEST_P(HierarchyMaintenanceTest, RemoveNodeKeepsInvariants) {
  Fixture f(20);
  Prng prng(9);
  Hierarchy h = Hierarchy::build(f.net, f.rt, GetParam(), prng);
  Prng pick(10);
  // Remove a batch of random non-everything nodes one by one.
  std::set<net::NodeId> removed;
  for (int i = 0; i < 12; ++i) {
    net::NodeId victim;
    do {
      victim = static_cast<net::NodeId>(pick.index(f.net.node_count()));
    } while (removed.count(victim) != 0);
    removed.insert(victim);
    h.remove_node(victim, f.rt);
    h.validate(f.net);
  }
  // Removed nodes are gone from level 1.
  std::set<net::NodeId> present;
  for (const Cluster& cl : h.level(1)) {
    present.insert(cl.members.begin(), cl.members.end());
  }
  for (net::NodeId v : removed) EXPECT_EQ(present.count(v), 0u);
  EXPECT_EQ(present.size(), f.net.node_count() - removed.size());
}

TEST_P(HierarchyMaintenanceTest, AddNodeKeepsInvariants) {
  // Build the hierarchy over a prefix of the nodes, then join the rest at
  // runtime via the paper's join protocol.
  Fixture f(21);
  Prng prng(11);
  Hierarchy h = Hierarchy::build(f.net, f.rt, GetParam(), prng);
  // Remove 10 nodes, then re-join them.
  std::vector<net::NodeId> victims;
  Prng pick(12);
  while (victims.size() < 10) {
    const auto v = static_cast<net::NodeId>(pick.index(f.net.node_count()));
    if (std::find(victims.begin(), victims.end(), v) == victims.end()) {
      victims.push_back(v);
    }
  }
  for (net::NodeId v : victims) h.remove_node(v, f.rt);
  for (net::NodeId v : victims) {
    h.add_node(v, f.rt, prng);
    h.validate(f.net);
  }
  std::set<net::NodeId> present;
  for (const Cluster& cl : h.level(1)) {
    present.insert(cl.members.begin(), cl.members.end());
  }
  EXPECT_EQ(present.size(), f.net.node_count());
}

INSTANTIATE_TEST_SUITE_P(MaxCsSweep, HierarchyMaintenanceTest,
                         ::testing::Values(4, 8, 16, 32));

TEST(HierarchyEdgeTest, RemovingTheLastMemberOfALeafClusterDropsIt) {
  // max_cs = 2 over a small net makes singleton or pair leaf clusters
  // likely; removing members until some cluster empties must delete the
  // cluster, not leave an empty shell, at every step.
  Fixture f(31);
  Prng prng(3);
  Hierarchy h = Hierarchy::build(f.net, f.rt, 2, prng);
  // Remove the entire membership of the first leaf cluster, one by one.
  const std::vector<net::NodeId> members = h.level(1).front().members;
  ASSERT_FALSE(members.empty());
  for (net::NodeId m : members) {
    h.remove_node(m, f.rt);
    h.validate(f.net);
    EXPECT_FALSE(h.contains(m));
  }
  for (const Cluster& cl : h.level(1)) {
    EXPECT_FALSE(cl.members.empty());
    for (net::NodeId m : members) {
      EXPECT_EQ(std::count(cl.members.begin(), cl.members.end(), m), 0);
    }
  }
}

TEST(HierarchyEdgeTest, RemovingAMedoidRepairsThePromotionChain) {
  Fixture f(32);
  Prng prng(5);
  Hierarchy h = Hierarchy::build(f.net, f.rt, 4, prng);
  // The top coordinator sits on every level's promotion chain — removing
  // it exercises re-election at each level.
  const net::NodeId top = h.level(h.height()).front().coordinator;
  h.remove_node(top, f.rt);
  h.validate(f.net);
  EXPECT_FALSE(h.contains(top));
  for (int l = 1; l <= h.height(); ++l) {
    for (const Cluster& cl : h.level(l)) {
      EXPECT_NE(cl.coordinator, top) << "level " << l;
    }
  }
  // Estimates involving the removed node price it out, not crash.
  EXPECT_TRUE(std::isinf(h.est_cost(top, (top + 1) % f.net.node_count(), 1)));
}

TEST(HierarchyEdgeTest, RemoveThenReAddRoundTripPreservesInvariants) {
  Fixture f(33);
  for (int max_cs : {2, 4, 8}) {
    Prng prng(7);
    Hierarchy h = Hierarchy::build(f.net, f.rt, max_cs, prng);
    Prng pick(8);
    std::vector<net::NodeId> victims;
    while (victims.size() < 5) {
      const auto v = static_cast<net::NodeId>(pick.index(f.net.node_count()));
      if (std::find(victims.begin(), victims.end(), v) == victims.end()) {
        victims.push_back(v);
      }
    }
    for (net::NodeId v : victims) h.remove_node(v, f.rt);
    for (net::NodeId v : victims) {
      EXPECT_FALSE(h.contains(v)) << "max_cs " << max_cs;
      h.add_node(v, f.rt, prng);
      EXPECT_TRUE(h.contains(v)) << "max_cs " << max_cs;
      h.validate(f.net);
    }
    EXPECT_EQ(h.max_cs(), max_cs);
    // Every node is back and the join protocol respected the size cap
    // (validate() checks it; assert membership totals here).
    std::size_t total = 0;
    for (const Cluster& cl : h.level(1)) total += cl.members.size();
    EXPECT_EQ(total, f.net.node_count()) << "max_cs " << max_cs;
    // Estimates over re-admitted nodes are finite again.
    EXPECT_TRUE(std::isfinite(
        h.est_cost(victims.front(), victims.back(), 1)));
  }
}

std::vector<std::vector<net::NodeId>> domain_partitions(
    const net::TransitStubParams& p) {
  std::vector<std::vector<net::NodeId>> parts;
  std::vector<net::NodeId> transit;
  for (int t = 0; t < p.transit_count; ++t) {
    transit.push_back(static_cast<net::NodeId>(t));
  }
  parts.push_back(std::move(transit));
  for (int d = 0; d < net::stub_domain_count(p); ++d) {
    parts.push_back(net::stub_domain_members(p, d));
  }
  return parts;
}

TEST(PartitionedHierarchyTest, BuildValidatesAndSetsLocalLeafMetrics) {
  Fixture f(41);
  const net::TransitStubParams p;
  Prng prng(1);
  const Hierarchy h =
      Hierarchy::build_partitioned(f.net, f.rt, domain_partitions(p), 10, prng);
  h.validate(f.net);
  EXPECT_TRUE(h.local_leaf_metrics());
  EXPECT_GE(h.height(), 2);
  // No partition exceeds max_cs = 10, so leaves map 1:1 onto partitions.
  EXPECT_EQ(h.level(1).size(), domain_partitions(p).size());
  // Stub-domain members stay co-clustered.
  const std::vector<net::NodeId> dom = net::stub_domain_members(p, 0);
  for (net::NodeId m : dom) {
    EXPECT_EQ(h.cluster_of(m, 1), h.cluster_of(dom[0], 1));
  }
}

TEST(PartitionedHierarchyTest, OversizedPartitionsAreSplit) {
  Fixture f(42);
  const net::TransitStubParams p;
  Prng prng(2);
  const Hierarchy h =
      Hierarchy::build_partitioned(f.net, f.rt, domain_partitions(p), 4, prng);
  h.validate(f.net);
  for (const Cluster& cl : h.level(1)) {
    EXPECT_LE(cl.members.size(), 4u);
  }
}

TEST(PartitionedHierarchyTest, Theorem1HoldsWithInducedLeafMetrics) {
  // The soundness property the sparse oracle leans on: even though d(1) is
  // computed on induced subgraphs, actual <= est + sum 2 d(i) must hold.
  Fixture f(43);
  const net::TransitStubParams p;
  for (int max_cs : {4, 10}) {
    Prng prng(3);
    const Hierarchy h = Hierarchy::build_partitioned(
        f.net, f.rt, domain_partitions(p), max_cs, prng);
    for (int l = 1; l <= h.height(); ++l) {
      const double slack = theorem1_slack(h, l);
      for (net::NodeId a = 0; a < f.net.node_count(); a += 5) {
        for (net::NodeId b = 0; b < f.net.node_count(); b += 7) {
          EXPECT_LE(f.rt.cost(a, b), h.est_cost(a, b, l) + slack + 1e-9)
              << "max_cs " << max_cs << " level " << l;
        }
      }
    }
  }
}

TEST(PartitionedHierarchyTest, RejectsOverlappingOrNonCoveringPartitions) {
  Fixture f(44);
  Prng prng(4);
  // Overlap: node 0 in two partitions.
  std::vector<std::vector<net::NodeId>> overlap{{0, 1}, {0, 2}};
  EXPECT_THROW(Hierarchy::build_partitioned(f.net, f.rt, overlap, 8, prng),
               CheckError);
  // Non-covering: misses most node ids.
  std::vector<std::vector<net::NodeId>> partial{{0, 1, 2}};
  EXPECT_THROW(Hierarchy::build_partitioned(f.net, f.rt, partial, 8, prng),
               CheckError);
}

TEST(PartitionedHierarchyTest, RefreshBumpsVersion) {
  Fixture f(45);
  const net::TransitStubParams p;
  Prng prng(5);
  Hierarchy h =
      Hierarchy::build_partitioned(f.net, f.rt, domain_partitions(p), 10, prng);
  const std::uint64_t before = h.version();
  h.refresh(f.rt);
  EXPECT_GT(h.version(), before);
}

TEST(InducedDistancesTest, EntriesUpperBoundGlobalDistances) {
  Fixture f(46);
  const net::TransitStubParams p;
  const std::vector<net::NodeId> dom = net::stub_domain_members(p, 1);
  const std::vector<double> m = induced_distances(f.net, dom);
  const std::size_t k = dom.size();
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_EQ(m[i * k + i], 0.0);
    for (std::size_t j = 0; j < k; ++j) {
      // Paths confined to the subgraph can only be as good as the network.
      EXPECT_GE(m[i * k + j] + 1e-12, f.rt.cost(dom[i], dom[j]));
      EXPECT_DOUBLE_EQ(m[i * k + j], m[j * k + i]);  // undirected
    }
  }
}

TEST(HierarchyEdgeTest, ContainsReflectsMembership) {
  Fixture f(34);
  Prng prng(9);
  Hierarchy h = Hierarchy::build(f.net, f.rt, 4, prng);
  for (net::NodeId n = 0; n < f.net.node_count(); ++n) {
    EXPECT_TRUE(h.contains(n));
  }
  EXPECT_FALSE(h.contains(static_cast<net::NodeId>(f.net.node_count())));
  h.remove_node(0, f.rt);
  EXPECT_FALSE(h.contains(0));
  h.add_node(0, f.rt, prng);
  EXPECT_TRUE(h.contains(0));
}

}  // namespace
}  // namespace iflow::cluster
