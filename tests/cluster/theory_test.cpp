#include "cluster/theory.h"

#include <gtest/gtest.h>

#include <cmath>

#include "net/gtitm.h"

namespace iflow::cluster {
namespace {

TEST(TheoryTest, Lemma1MatchesClosedForm) {
  // K(K-1)(K+1)/6 * N^(K-1)
  EXPECT_DOUBLE_EQ(lemma1_search_space(2, 10), 1.0 * 10.0);
  EXPECT_DOUBLE_EQ(lemma1_search_space(3, 10), 4.0 * 100.0);
  EXPECT_DOUBLE_EQ(lemma1_search_space(4, 10), 10.0 * 1000.0);
  EXPECT_DOUBLE_EQ(lemma1_search_space(5, 64), 20.0 * std::pow(64.0, 4));
}

TEST(TheoryTest, BushyTreeCountIsDoubleFactorial) {
  EXPECT_DOUBLE_EQ(bushy_tree_count(1), 1.0);
  EXPECT_DOUBLE_EQ(bushy_tree_count(2), 1.0);
  EXPECT_DOUBLE_EQ(bushy_tree_count(3), 3.0);
  EXPECT_DOUBLE_EQ(bushy_tree_count(4), 15.0);
  EXPECT_DOUBLE_EQ(bushy_tree_count(5), 105.0);
  EXPECT_DOUBLE_EQ(bushy_tree_count(6), 945.0);
}

TEST(TheoryTest, BetaMatchesPaperExample) {
  // Paper §2.2.1: K=4 streams, N=1000 nodes, max_cs=10 -> beta ~ 0.000015
  // per level; with the paper's stated ~0.0000015 scale for h levels the
  // formula is h*(max_cs/N)^(K-1).
  const double b = beta(4, 1000, 10, 1);
  EXPECT_NEAR(b, std::pow(0.01, 3), 1e-12);
}

TEST(TheoryTest, BetaShrinksExponentiallyInK) {
  const double b2 = beta(2, 1024, 32, 3);
  const double b4 = beta(4, 1024, 32, 3);
  const double b6 = beta(6, 1024, 32, 3);
  EXPECT_GT(b2, b4);
  EXPECT_GT(b4, b6);
  EXPECT_NEAR(b4 / b2, std::pow(32.0 / 1024.0, 2), 1e-15);
}

TEST(TheoryTest, HierarchicalBoundIsBetaTimesExhaustive) {
  const double bound = hierarchical_search_space_bound(5, 512, 32, 3);
  EXPECT_DOUBLE_EQ(bound,
                   beta(5, 512, 32, 3) * lemma1_search_space(5, 512));
}

TEST(TheoryTest, Theorem1SlackAccumulatesTwoDPerLevel) {
  Prng prng(1);
  const net::Network net =
      net::make_transit_stub(net::TransitStubParams{}, prng);
  const auto rt = net::RoutingTables::build(net);
  Prng cp(2);
  const Hierarchy h = Hierarchy::build(net, rt, 8, cp);
  EXPECT_DOUBLE_EQ(theorem1_slack(h, 1), 0.0);
  double expect = 0.0;
  for (int l = 2; l <= h.height(); ++l) {
    expect += 2.0 * h.d(l - 1);
    EXPECT_DOUBLE_EQ(theorem1_slack(h, l), expect);
  }
}

TEST(TheoryTest, Theorem3BoundScalesWithRates) {
  Prng prng(3);
  const net::Network net =
      net::make_transit_stub(net::TransitStubParams{}, prng);
  const auto rt = net::RoutingTables::build(net);
  Prng cp(4);
  const Hierarchy h = Hierarchy::build(net, rt, 8, cp);
  const double one = theorem3_bound(h, {1.0});
  const double doubled = theorem3_bound(h, {2.0});
  const double sum = theorem3_bound(h, {1.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(doubled, 2.0 * one);
  EXPECT_DOUBLE_EQ(sum, 5.0 * one);
  EXPECT_THROW(theorem3_bound(h, {-1.0}), CheckError);
}

}  // namespace
}  // namespace iflow::cluster
