// Deployment stitching (import_deployment) and unit collection.
#include "opt/view.h"

#include "opt/view_planner.h"

#include <gtest/gtest.h>

#include "net/gtitm.h"
#include "query/rates.h"

namespace iflow::opt {
namespace {

struct Rig {
  net::Network net;
  net::RoutingTables rt;
  query::Catalog catalog;
  query::Query q;

  Rig() {
    Prng prng(1);
    net::TransitStubParams p;
    p.transit_count = 1;
    p.stub_domains_per_transit = 2;
    p.stub_domain_size = 3;
    net = net::make_transit_stub(p, prng);
    rt = net::RoutingTables::build(net);
    const auto a = catalog.add_stream("A", 0, 10.0, 10.0);
    const auto b = catalog.add_stream("B", 2, 10.0, 10.0);
    const auto c = catalog.add_stream("C", 4, 10.0, 10.0);
    catalog.set_selectivity(a, b, 0.05);
    catalog.set_selectivity(a, c, 0.05);
    catalog.set_selectivity(b, c, 0.05);
    q.sources = {a, b, c};
    q.sink = 5;
  }

  PlannerResult plan(query::Mask target, const std::vector<ViewInput>& inputs,
                     net::NodeId delivery, const query::RateModel& rates) {
    PlannerInput in;
    in.rates = &rates;
    for (const ViewInput& vi : inputs) in.units.push_back(vi.unit);
    in.target = target;
    in.delivery = delivery;
    for (net::NodeId n = 0; n < net.node_count(); ++n) in.sites.push_back(n);
    in.dist = DistanceOracle::routing(rt);
    return plan_optimal(in);
  }
};

ViewInput base_input(const query::RateModel& rates, int i) {
  ViewInput vi;
  vi.unit.mask = query::Mask{1} << i;
  vi.unit.location = rates.source_node(i);
  vi.unit.tuple_rate = rates.tuple_rate(vi.unit.mask);
  vi.unit.bytes_rate = rates.bytes_rate(vi.unit.mask);
  return vi;
}

TEST(ViewImportTest, StitchesTwoPiecesIntoOneValidDeployment) {
  Rig s;
  query::RateModel rates(s.catalog, s.q);
  query::Deployment final_deployment;
  final_deployment.query = 1;
  final_deployment.sink = s.q.sink;

  // Piece 1: join {A,B}, result stays at its producer.
  std::vector<ViewInput> inputs1 = {base_input(rates, 0), base_input(rates, 1)};
  const PlannerResult piece1 =
      s.plan(0b011, inputs1, net::kInvalidNode, rates);
  ASSERT_TRUE(piece1.feasible);
  const int code1 = import_deployment(final_deployment, piece1, inputs1);
  EXPECT_FALSE(query::child_is_unit(code1));

  // Piece 2: join the partial with C, delivering to the sink.
  ViewInput partial;
  partial.unit.mask = 0b011;
  partial.unit.location = node_of_code(final_deployment, code1);
  partial.unit.tuple_rate = rates.tuple_rate(0b011);
  partial.unit.bytes_rate = rates.bytes_rate(0b011);
  partial.final_code = code1;
  std::vector<ViewInput> inputs2 = {partial, base_input(rates, 2)};
  const PlannerResult piece2 = s.plan(0b111, inputs2, s.q.sink, rates);
  ASSERT_TRUE(piece2.feasible);
  import_deployment(final_deployment, piece2, inputs2);

  // The stitched deployment is a single valid tree over all three sources:
  // the partial was wired to piece 1's operator, not duplicated as a unit.
  EXPECT_NO_THROW(query::validate_deployment(final_deployment));
  EXPECT_EQ(final_deployment.ops.size(), 2u);
  EXPECT_EQ(final_deployment.units.size(), 3u);
  EXPECT_EQ(final_deployment.ops.back().mask, query::Mask{0b111});
  EXPECT_GT(query::deployment_cost(final_deployment, s.rt), 0.0);
}

TEST(ViewImportTest, SingleUnitPieceReturnsItsCode) {
  Rig s;
  query::RateModel rates(s.catalog, s.q);
  query::Deployment final_deployment;
  final_deployment.query = 2;
  final_deployment.sink = s.q.sink;

  std::vector<ViewInput> inputs = {base_input(rates, 0)};
  const PlannerResult piece = s.plan(0b001, inputs, net::kInvalidNode, rates);
  ASSERT_TRUE(piece.feasible);
  EXPECT_TRUE(piece.deployment.ops.empty());
  const int code = import_deployment(final_deployment, piece, inputs);
  EXPECT_TRUE(query::child_is_unit(code));
  EXPECT_EQ(node_of_code(final_deployment, code), rates.source_node(0));
}

TEST(CollectUnitsTest, BasesAlwaysScopedDerivedsFiltered) {
  Rig s;
  query::RateModel rates(s.catalog, s.q);
  advert::Registry registry;
  advert::DerivedStream ds;
  ds.streams = {s.q.sources[0], s.q.sources[1]};
  ds.filters = {1.0, 1.0};
  ds.location = 3;
  ds.bytes_rate = rates.bytes_rate(0b011);
  ds.tuple_rate = rates.tuple_rate(0b011);
  registry.advertise(ds);

  // No scope: 3 bases + 1 derived.
  EXPECT_EQ(collect_units(rates, &registry, nullptr).size(), 4u);
  // Scope excluding node 3: derived disappears; bases outside scope too.
  const auto scoped = collect_units(
      rates, &registry, [](net::NodeId n) { return n != 3 && n != 0; });
  for (const query::LeafUnit& u : scoped) {
    EXPECT_NE(u.location, 3u);
    EXPECT_NE(u.location, 0u);
  }
}

}  // namespace
}  // namespace iflow::opt
