#include "opt/cost_space.h"

#include <gtest/gtest.h>

#include "net/gtitm.h"

namespace iflow::opt {
namespace {

net::RoutingTables paper_routing(std::uint64_t seed, net::Network* out = nullptr) {
  Prng prng(seed);
  net::TransitStubParams p;
  p.transit_count = 2;
  p.stub_domains_per_transit = 2;
  p.stub_domain_size = 4;
  static thread_local net::Network net;
  net = net::make_transit_stub(p, prng);
  if (out != nullptr) *out = net;
  return net::RoutingTables::build(net);
}

TEST(CostSpaceTest, MoreIterationsLowerStress) {
  const auto rt = paper_routing(1);
  Prng p1(5), p2(5);
  const CostSpace rough = CostSpace::build(rt, p1, 4);
  const CostSpace refined = CostSpace::build(rt, p2, 200);
  EXPECT_LT(refined.stress(rt), rough.stress(rt));
  // A converged 3-D embedding of a transit-stub metric should be decent.
  EXPECT_LT(refined.stress(rt), 0.35);
}

TEST(CostSpaceTest, EmbeddedDistancesCorrelateWithCosts) {
  const auto rt = paper_routing(2);
  Prng prng(6);
  const CostSpace cs = CostSpace::build(rt, prng, 150);
  // Sample pairs: larger routing cost should mostly mean larger embedded
  // distance (rank correlation, loose threshold).
  int concordant = 0;
  int total = 0;
  for (net::NodeId a = 0; a < 10; ++a) {
    for (net::NodeId b = a + 1; b < 10; ++b) {
      for (net::NodeId c = 0; c < 10; ++c) {
        for (net::NodeId d = c + 1; d < 10; ++d) {
          const double dr = rt.cost(a, b) - rt.cost(c, d);
          const double de = CostSpace::distance(cs.position(a), cs.position(b)) -
                            CostSpace::distance(cs.position(c), cs.position(d));
          if (std::abs(dr) < 1e-9) continue;
          ++total;
          if ((dr > 0) == (de > 0)) ++concordant;
        }
      }
    }
  }
  EXPECT_GT(static_cast<double>(concordant) / total, 0.75);
}

TEST(CostSpaceTest, NearestNodeRoundTrips) {
  const auto rt = paper_routing(3);
  Prng prng(7);
  const CostSpace cs = CostSpace::build(rt, prng, 100);
  for (net::NodeId n = 0; n < rt.node_count(); n += 3) {
    EXPECT_EQ(cs.nearest_node(cs.position(n)), n);
  }
}

TEST(CostSpaceTest, DeterministicGivenSeed) {
  const auto rt = paper_routing(4);
  Prng p1(9), p2(9);
  const CostSpace a = CostSpace::build(rt, p1, 50);
  const CostSpace b = CostSpace::build(rt, p2, 50);
  for (net::NodeId n = 0; n < rt.node_count(); ++n) {
    EXPECT_EQ(a.position(n), b.position(n));
  }
}

TEST(CostSpaceTest, SingleNodeNetwork) {
  net::Network net;
  net.add_node();
  net.add_node();
  net.add_link(0, 1, 2.0, 1.0, 1e6);
  const auto rt = net::RoutingTables::build(net);
  Prng prng(10);
  const CostSpace cs = CostSpace::build(rt, prng, 30);
  EXPECT_NEAR(CostSpace::distance(cs.position(0), cs.position(1)), 2.0, 1.0);
}

}  // namespace
}  // namespace iflow::opt
