#include "opt/consolidated.h"

#include <gtest/gtest.h>

#include "net/gtitm.h"
#include "opt/exhaustive.h"
#include "opt/top_down.h"
#include "workload/generator.h"

namespace iflow::opt {
namespace {

struct World {
  net::Network net;
  net::RoutingTables rt;
  cluster::Hierarchy hierarchy;
  workload::Workload wl;
  advert::Registry registry;

  explicit World(std::uint64_t seed, int queries = 12)
      : net([&] {
          Prng prng(seed);
          net::TransitStubParams p;
          p.transit_count = 2;
          p.stub_domains_per_transit = 2;
          p.stub_domain_size = 4;
          return net::make_transit_stub(p, prng);
        }()),
        rt(net::RoutingTables::build(net)),
        hierarchy([&] {
          Prng prng(seed + 1);
          return cluster::Hierarchy::build(net, rt, 4, prng);
        }()),
        wl([&] {
          Prng prng(seed + 2);
          workload::WorkloadParams wp;
          wp.num_streams = 6;
          wp.min_joins = 2;
          wp.max_joins = 4;
          return workload::make_workload(net, wp, queries, prng);
        }()) {}

  OptimizerEnv env() {
    OptimizerEnv e;
    e.catalog = &wl.catalog;
    e.network = &net;
    e.routing = &rt;
    e.hierarchy = &hierarchy;
    e.registry = &registry;
    e.reuse = true;
    return e;
  }
};

OptimizerFactory top_down_factory() {
  return [](const OptimizerEnv& e) {
    return std::make_unique<TopDownOptimizer>(e);
  };
}

double incremental_cost(World& w, const OptimizerFactory& factory) {
  w.registry.clear();
  auto env = w.env();
  double total = 0.0;
  for (const query::Query& q : w.wl.queries) {
    auto optimizer = factory(env);
    const OptimizeResult r = optimizer->optimize(q);
    query::RateModel rates(*env.catalog, q);
    advert::advertise_deployment(*env.registry, r.deployment, rates);
    total += r.actual_cost;
  }
  return total;
}

TEST(ConsolidatedTest, NeverLosesToIncrementalDeployment) {
  for (std::uint64_t seed : {10u, 20u, 30u}) {
    World w(seed);
    const double incremental = incremental_cost(w, top_down_factory());
    const ConsolidatedResult c =
        optimize_consolidated(w.env(), top_down_factory(), w.wl.queries);
    EXPECT_LE(c.total_cost, incremental * (1.0 + 1e-9)) << "seed " << seed;
  }
}

TEST(ConsolidatedTest, SweepsOnlyEverImprove) {
  World w(40);
  const ConsolidatedResult c =
      optimize_consolidated(w.env(), top_down_factory(), w.wl.queries);
  EXPECT_LE(c.total_cost, c.seed_cost * (1.0 + 1e-9));
  EXPECT_GE(c.sweeps, 1);
  double recomputed = 0.0;
  for (const OptimizeResult& r : c.per_query) {
    ASSERT_TRUE(r.feasible);
    EXPECT_NO_THROW(query::validate_deployment(r.deployment));
    recomputed += r.actual_cost;
  }
  EXPECT_NEAR(recomputed, c.total_cost, 1e-6 * (1.0 + recomputed));
}

TEST(ConsolidatedTest, ResultsAlignWithBatchOrder) {
  World w(50, 5);
  const ConsolidatedResult c =
      optimize_consolidated(w.env(), top_down_factory(), w.wl.queries);
  ASSERT_EQ(c.per_query.size(), w.wl.queries.size());
  for (std::size_t i = 0; i < c.per_query.size(); ++i) {
    EXPECT_EQ(c.per_query[i].deployment.query, w.wl.queries[i].id);
    EXPECT_EQ(c.per_query[i].deployment.sink, w.wl.queries[i].sink);
  }
}

TEST(ConsolidatedTest, IdenticalQueriesCollapse) {
  // Five copies of one query with different sinks: after consolidation only
  // the first pays the join, the rest tap the derived result.
  World w(60, 1);
  std::vector<query::Query> batch;
  for (int i = 0; i < 5; ++i) {
    query::Query q = w.wl.queries.front();
    q.id = static_cast<query::QueryId>(100 + i);
    q.sink = static_cast<net::NodeId>((7 * i + 3) % w.net.node_count());
    batch.push_back(q);
  }
  const ConsolidatedResult c =
      optimize_consolidated(w.env(), top_down_factory(), batch);
  int with_join_ops = 0;
  for (const OptimizeResult& r : c.per_query) {
    if (!r.deployment.ops.empty()) ++with_join_ops;
  }
  EXPECT_EQ(with_join_ops, 1)
      << "only one copy should materialise the join operators";
}

TEST(ConsolidatedTest, RequiresReuse) {
  World w(70, 2);
  auto env = w.env();
  env.reuse = false;
  EXPECT_THROW(
      optimize_consolidated(env, top_down_factory(), w.wl.queries),
      CheckError);
}

TEST(ConsolidatedTest, EmptyBatch) {
  World w(80, 1);
  const ConsolidatedResult c =
      optimize_consolidated(w.env(), top_down_factory(), {});
  EXPECT_EQ(c.per_query.size(), 0u);
  EXPECT_DOUBLE_EQ(c.total_cost, 0.0);
}

}  // namespace
}  // namespace iflow::opt
