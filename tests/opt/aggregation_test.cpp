// Windowed aggregation (the paper's §2/§5 future-work item) across the
// stack: cost model, every optimizer, the engine, and the SQL front-end.
#include <gtest/gtest.h>

#include "engine/simulation.h"
#include "net/gtitm.h"
#include "opt/bottom_up.h"
#include "opt/exhaustive.h"
#include "opt/plan_then_deploy.h"
#include "opt/top_down.h"
#include "query/rates.h"
#include "sql/binder.h"

namespace iflow::opt {
namespace {

struct World {
  net::Network net;
  net::RoutingTables rt;
  cluster::Hierarchy hierarchy;
  query::Catalog catalog;
  query::Query q;  // 2-way join, unaggregated

  explicit World(std::uint64_t seed)
      : net([&] {
          Prng prng(seed);
          net::TransitStubParams p;
          p.transit_count = 2;
          p.stub_domains_per_transit = 2;
          p.stub_domain_size = 4;
          return net::make_transit_stub(p, prng);
        }()),
        rt(net::RoutingTables::build(net)),
        hierarchy([&] {
          Prng prng(seed + 1);
          return cluster::Hierarchy::build(net, rt, 4, prng);
        }()) {
    const auto a = catalog.add_stream("A", 0, 60.0, 100.0);
    const auto b = catalog.add_stream("B", 5, 60.0, 100.0);
    catalog.set_selectivity(a, b, 0.02);
    q.id = 1;
    q.sources = {a, b};
    q.sink = static_cast<net::NodeId>(net.node_count() - 1);
  }

  OptimizerEnv env() {
    OptimizerEnv e;
    e.catalog = &catalog;
    e.network = &net;
    e.routing = &rt;
    e.hierarchy = &hierarchy;
    e.reuse = false;
    return e;
  }
};

query::Aggregation count_agg(double groups, double window = 1.0) {
  query::Aggregation a;
  a.fn = query::AggregateFn::kCount;
  a.groups = groups;
  a.window_s = window;
  return a;
}

TEST(AggregationTest, DeliveryEdgeUsesAggregatedRate) {
  World w(1);
  query::Query agg_q = w.q;
  agg_q.aggregate = count_agg(4.0);

  auto env = w.env();
  ExhaustiveOptimizer ex(env);
  const OptimizeResult raw = ex.optimize(w.q);
  const OptimizeResult agg = ex.optimize(agg_q);
  ASSERT_TRUE(agg.feasible);
  // The aggregated stream (4 tuples/s x 24 B) is far lighter than the raw
  // result, so total cost must drop.
  EXPECT_LT(agg.actual_cost, raw.actual_cost);
  // And deployment_cost agrees with the optimizer's accounting.
  EXPECT_NEAR(query::deployment_cost(agg.deployment, w.rt), agg.actual_cost,
              1e-9 * (1.0 + agg.actual_cost));
}

TEST(AggregationTest, MoreGroupsNeverCheaper) {
  World w(2);
  auto env = w.env();
  ExhaustiveOptimizer ex(env);
  double prev = 0.0;
  for (double groups : {1.0, 4.0, 16.0, 64.0, 1e9}) {
    query::Query agg_q = w.q;
    agg_q.aggregate = count_agg(groups);
    const double cost = ex.optimize(agg_q).actual_cost;
    EXPECT_GE(cost, prev - 1e-9) << "groups " << groups;
    prev = cost;
  }
}

TEST(AggregationTest, OutputRateCappedByInputRate) {
  World w(3);
  query::Query agg_q = w.q;
  agg_q.aggregate = count_agg(1e12);  // absurd group count
  query::RateModel rates(w.catalog, agg_q);
  auto env = w.env();
  ExhaustiveOptimizer ex(env);
  const OptimizeResult res = ex.optimize(agg_q);
  // Delivered rate is min(raw tuple rate, groups/window) * out_width.
  const double expect =
      rates.tuple_rate(rates.full()) * agg_q.aggregate.out_width;
  EXPECT_NEAR(res.deployment.delivered_bytes_rate(), expect, 1e-9 * expect);
}

TEST(AggregationTest, AllOptimizersAgreeOnValidity) {
  World w(4);
  query::Query agg_q = w.q;
  agg_q.aggregate = count_agg(8.0, 2.0);
  auto env = w.env();
  ExhaustiveOptimizer ex(env);
  TopDownOptimizer td(env);
  BottomUpOptimizer bu(env);
  PlanThenDeployOptimizer ptd(env);
  const double optimal = ex.optimize(agg_q).actual_cost;
  for (Optimizer* alg : std::vector<Optimizer*>{&td, &bu, &ptd}) {
    const OptimizeResult r = alg->optimize(agg_q);
    ASSERT_TRUE(r.feasible) << alg->name();
    EXPECT_TRUE(r.deployment.aggregate.enabled()) << alg->name();
    EXPECT_GE(r.actual_cost, optimal - 1e-9) << alg->name();
    EXPECT_NEAR(query::deployment_cost(r.deployment, w.rt), r.actual_cost,
                1e-9 * (1.0 + r.actual_cost))
        << alg->name();
  }
}

TEST(AggregationTest, EngineEmitsOneTuplePerGroupPerWindow) {
  World w(5);
  // Single-source aggregation: input 60 t/s, 5 groups, 1 s windows =>
  // virtually every window emits all 5 groups.
  query::Query agg_q;
  agg_q.id = 9;
  agg_q.sources = {0};
  agg_q.sink = w.q.sink;
  agg_q.aggregate = count_agg(5.0, 1.0);
  query::RateModel rates(w.catalog, agg_q);

  auto env = w.env();
  ExhaustiveOptimizer ex(env);
  const OptimizeResult res = ex.optimize(agg_q);

  engine::EngineConfig cfg;
  cfg.duration_s = 40.0;
  cfg.poisson = false;
  engine::Simulation sim(w.net, w.rt, w.catalog, cfg, 31);
  sim.deploy(res.deployment, rates);
  sim.run();
  EXPECT_NEAR(sim.delivered_rate(agg_q.id), 5.0, 1.5);
  EXPECT_NEAR(sim.measured_cost_per_second(), res.actual_cost,
              0.15 * res.actual_cost);
}

TEST(AggregationTest, SqlGroupByBindsToAggregation) {
  query::Catalog catalog;
  const auto flights = catalog.add_stream("FLIGHTS", 0, 50.0, 100.0);
  catalog.set_columns(flights, {"DESTN", "DELAY"});
  const sql::BoundQuery b = sql::compile(
      "SELECT FLIGHTS.DESTN, AVG(FLIGHTS.DELAY) FROM FLIGHTS "
      "GROUP BY FLIGHTS.DESTN",
      catalog, 1, 0, sql::default_filter_estimate,
      [](query::StreamId, const std::string&) { return 25.0; });
  EXPECT_EQ(b.query.aggregate.fn, query::AggregateFn::kAvg);
  EXPECT_DOUBLE_EQ(b.query.aggregate.groups, 25.0);
}

TEST(AggregationTest, SqlCountStarAndValidation) {
  query::Catalog catalog;
  catalog.add_stream("A", 0, 10.0, 10.0);
  const sql::BoundQuery b =
      sql::compile("SELECT COUNT(*) FROM A", catalog, 1, 0);
  EXPECT_EQ(b.query.aggregate.fn, query::AggregateFn::kCount);
  EXPECT_DOUBLE_EQ(b.query.aggregate.groups, 1.0);

  EXPECT_THROW(
      sql::compile("SELECT A.x FROM A GROUP BY A.x", catalog, 2, 0),
      sql::SqlError);
  EXPECT_THROW(
      sql::compile("SELECT COUNT(*), SUM(A.x) FROM A", catalog, 3, 0),
      sql::SqlError);
}

TEST(AggregationTest, SqlMultiColumnGroupByMultipliesGroups) {
  query::Catalog catalog;
  const auto a = catalog.add_stream("A", 0, 10.0, 10.0);
  const auto b = catalog.add_stream("B", 1, 10.0, 10.0);
  catalog.set_selectivity(a, b, 0.1);
  const sql::BoundQuery bq = sql::compile(
      "SELECT COUNT(*) FROM A, B WHERE A.k = B.k GROUP BY A.x, B.y",
      catalog, 1, 0);
  EXPECT_DOUBLE_EQ(bq.query.aggregate.groups, 100.0);  // 10 x 10 default
}

}  // namespace
}  // namespace iflow::opt
