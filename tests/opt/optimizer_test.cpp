#include "opt/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/theory.h"
#include "net/gtitm.h"
#include "opt/bottom_up.h"
#include "opt/exhaustive.h"
#include "opt/in_network.h"
#include "opt/plan_then_deploy.h"
#include "opt/relaxation.h"
#include "opt/top_down.h"
#include "query/rates.h"
#include "workload/generator.h"

namespace iflow::opt {
namespace {

/// Shared small transit-stub world: 18 nodes, 6 streams, hierarchy with
/// max_cs=4 (3+ levels), so every algorithm path is exercised while the
/// exhaustive reference stays instant.
struct World {
  net::Network net;
  net::RoutingTables rt;
  cluster::Hierarchy hierarchy;
  workload::Workload wl;
  advert::Registry registry;

  explicit World(std::uint64_t seed, int max_cs = 4, int queries = 8)
      : net([&] {
          Prng prng(seed);
          net::TransitStubParams p;
          p.transit_count = 2;
          p.stub_domains_per_transit = 2;
          p.stub_domain_size = 4;
          return net::make_transit_stub(p, prng);
        }()),
        rt(net::RoutingTables::build(net)),
        hierarchy([&] {
          Prng prng(seed + 1);
          return cluster::Hierarchy::build(net, rt, max_cs, prng);
        }()),
        wl([&] {
          Prng prng(seed + 2);
          workload::WorkloadParams wp;
          wp.num_streams = 6;
          wp.min_joins = 2;
          wp.max_joins = 4;
          return workload::make_workload(net, wp, queries, prng);
        }()) {}

  OptimizerEnv env(bool reuse) {
    OptimizerEnv e;
    e.catalog = &wl.catalog;
    e.network = &net;
    e.routing = &rt;
    e.hierarchy = &hierarchy;
    e.registry = &registry;
    e.reuse = reuse;
    return e;
  }
};

/// Byte rates of every edge of a deployment's tree (inputs of each op plus
/// the delivery edge) — the s_k of Theorem 3.
std::vector<double> edge_rates(const query::Deployment& d) {
  std::vector<double> rates;
  for (const query::DeployedOp& op : d.ops) {
    for (int child : {op.left, op.right}) {
      rates.push_back(
          query::child_is_unit(child)
              ? d.units[static_cast<std::size_t>(query::child_unit_index(child))]
                    .bytes_rate
              : d.ops[static_cast<std::size_t>(child)].out_bytes_rate);
    }
  }
  rates.push_back(d.root_bytes_rate());
  return rates;
}

TEST(OptimizerTest, AllAlgorithmsProduceValidDeployments) {
  World w(100);
  auto env = w.env(false);
  ExhaustiveOptimizer ex(env);
  TopDownOptimizer td(env);
  BottomUpOptimizer bu(env);
  PlanThenDeployOptimizer ptd(env);
  RelaxationOptimizer relax(env, 1);
  InNetworkOptimizer innet(env, 2);
  std::vector<Optimizer*> algs = {&ex, &td, &bu, &ptd, &relax, &innet};
  for (const query::Query& q : w.wl.queries) {
    for (Optimizer* alg : algs) {
      const OptimizeResult r = alg->optimize(q);
      ASSERT_TRUE(r.feasible) << alg->name() << " on " << q.name;
      EXPECT_NO_THROW(query::validate_deployment(r.deployment))
          << alg->name() << " on " << q.name;
      EXPECT_NEAR(query::deployment_cost(r.deployment, w.rt), r.actual_cost,
                  1e-6 * (1.0 + r.actual_cost))
          << alg->name() << " on " << q.name;
      EXPECT_GT(r.plans_considered, 0.0) << alg->name();
    }
  }
}

TEST(OptimizerTest, ExhaustiveIsALowerBoundForEveryHeuristic) {
  World w(101);
  auto env = w.env(false);
  ExhaustiveOptimizer ex(env);
  TopDownOptimizer td(env);
  BottomUpOptimizer bu(env);
  PlanThenDeployOptimizer ptd(env);
  RelaxationOptimizer relax(env, 3);
  InNetworkOptimizer innet(env, 4);
  for (const query::Query& q : w.wl.queries) {
    const double opt = ex.optimize(q).actual_cost;
    const double tol = 1e-6 * (1.0 + opt);
    EXPECT_GE(td.optimize(q).actual_cost, opt - tol) << q.name;
    EXPECT_GE(bu.optimize(q).actual_cost, opt - tol) << q.name;
    EXPECT_GE(ptd.optimize(q).actual_cost, opt - tol) << q.name;
    EXPECT_GE(relax.optimize(q).actual_cost, opt - tol) << q.name;
    EXPECT_GE(innet.optimize(q).actual_cost, opt - tol) << q.name;
  }
}

TEST(OptimizerTest, OptimalPlacementOfFixedTreeBeatsHeuristicPlacements) {
  // plan-then-deploy, relaxation and in-network share the same static tree;
  // plan-then-deploy places it optimally, so it must never lose.
  World w(102);
  auto env = w.env(false);
  PlanThenDeployOptimizer ptd(env);
  RelaxationOptimizer relax(env, 5);
  InNetworkOptimizer innet(env, 6);
  for (const query::Query& q : w.wl.queries) {
    const double fixed_opt = ptd.optimize(q).actual_cost;
    const double tol = 1e-6 * (1.0 + fixed_opt);
    EXPECT_GE(relax.optimize(q).actual_cost, fixed_opt - tol) << q.name;
    EXPECT_GE(innet.optimize(q).actual_cost, fixed_opt - tol) << q.name;
  }
}

// Theorem 3: Top-Down is at most sum_k s_k * sum_i 2 d_i worse than optimal.
TEST(OptimizerTest, TopDownSuboptimalityWithinTheorem3Bound) {
  for (std::uint64_t seed : {103u, 104u, 105u}) {
    World w(seed);
    auto env = w.env(false);
    ExhaustiveOptimizer ex(env);
    TopDownOptimizer td(env);
    for (const query::Query& q : w.wl.queries) {
      const OptimizeResult opt = ex.optimize(q);
      const OptimizeResult heur = td.optimize(q);
      const double bound =
          cluster::theorem3_bound(w.hierarchy, edge_rates(heur.deployment));
      EXPECT_LE(heur.actual_cost, opt.actual_cost + bound + 1e-6)
          << "seed " << seed << " query " << q.name;
    }
  }
}

// Theorems 2 and 4: the hierarchical algorithms examine at most
// beta = h (max_cs/N)^(K-1) of the exhaustive search space (counted with
// the same tree-enumeration semantics).
TEST(OptimizerTest, SearchSpaceWithinBetaBound) {
  World w(106);
  auto env = w.env(false);
  ExhaustiveOptimizer ex(env);
  TopDownOptimizer td(env);
  BottomUpOptimizer bu(env);
  for (const query::Query& q : w.wl.queries) {
    const int k = q.k();
    const double exhaustive_plans = ex.optimize(q).plans_considered;
    const double b = cluster::beta(k, w.net.node_count(),
                                   w.hierarchy.max_cs(), w.hierarchy.height());
    const double bound = b * exhaustive_plans;
    EXPECT_LE(td.optimize(q).plans_considered, bound * (1.0 + 1e-9))
        << q.name;
    EXPECT_LE(bu.optimize(q).plans_considered, bound * (1.0 + 1e-9))
        << q.name;
  }
}

TEST(OptimizerTest, RedeployingAnIdenticalQueryIsFreeWithReuse) {
  World w(107);
  auto env = w.env(true);
  for (auto make :
       {+[](const OptimizerEnv& e) -> std::unique_ptr<Optimizer> {
          return std::make_unique<TopDownOptimizer>(e);
        },
        +[](const OptimizerEnv& e) -> std::unique_ptr<Optimizer> {
          return std::make_unique<BottomUpOptimizer>(e);
        },
        +[](const OptimizerEnv& e) -> std::unique_ptr<Optimizer> {
          return std::make_unique<ExhaustiveOptimizer>(e);
        }}) {
    w.registry.clear();
    Session session(env, make(env));
    const query::Query& q = w.wl.queries.front();
    const OptimizeResult first = session.submit(q);
    query::Query again = q;
    again.id = 999;
    const OptimizeResult second = session.submit(again);
    ASSERT_TRUE(second.feasible);
    // The full query result is advertised at the sink itself: re-delivery
    // costs nothing.
    EXPECT_NEAR(second.actual_cost, 0.0, 1e-9)
        << session.optimizer().name();
  }
}

TEST(OptimizerTest, ReuseNeverHurtsTheExhaustiveOptimizer) {
  World with(108);
  World without(108);
  Session s_with(with.env(true),
                 std::make_unique<ExhaustiveOptimizer>(with.env(true)));
  Session s_without(without.env(false),
                    std::make_unique<ExhaustiveOptimizer>(without.env(false)));
  for (const query::Query& q : with.wl.queries) {
    s_with.submit(q);
    s_without.submit(q);
    EXPECT_LE(s_with.cumulative_cost(),
              s_without.cumulative_cost() * (1.0 + 1e-9));
  }
}

TEST(OptimizerTest, ReuseLowersCumulativeCostForHierarchicalAlgorithms) {
  // Aggregate claim over a workload (Fig 7's effect); individual queries
  // may occasionally not benefit.
  for (auto make : {+[](const OptimizerEnv& e) -> std::unique_ptr<Optimizer> {
                      return std::make_unique<TopDownOptimizer>(e);
                    },
                    +[](const OptimizerEnv& e) -> std::unique_ptr<Optimizer> {
                      return std::make_unique<BottomUpOptimizer>(e);
                    }}) {
    World with(109, 4, 16);
    World without(109, 4, 16);
    Session s_with(with.env(true), make(with.env(true)));
    Session s_without(without.env(false), make(without.env(false)));
    for (const query::Query& q : with.wl.queries) {
      s_with.submit(q);
      s_without.submit(q);
    }
    EXPECT_LT(s_with.cumulative_cost(), s_without.cumulative_cost())
        << s_with.optimizer().name();
  }
}

TEST(OptimizerTest, BottomUpStopsClimbingOnceSourcesAreLocal) {
  World w(110);
  auto env = w.env(false);
  BottomUpOptimizer bu(env);
  for (const query::Query& q : w.wl.queries) {
    const OptimizeResult r = bu.optimize(q);
    EXPECT_LE(r.levels_used, w.hierarchy.height());
    EXPECT_GE(r.levels_used, 1);
  }
}

TEST(OptimizerTest, DeterministicAcrossRuns) {
  World w1(111);
  World w2(111);
  TopDownOptimizer td1(w1.env(false));
  TopDownOptimizer td2(w2.env(false));
  for (std::size_t i = 0; i < w1.wl.queries.size(); ++i) {
    const OptimizeResult a = td1.optimize(w1.wl.queries[i]);
    const OptimizeResult b = td2.optimize(w2.wl.queries[i]);
    EXPECT_DOUBLE_EQ(a.actual_cost, b.actual_cost);
    EXPECT_DOUBLE_EQ(a.plans_considered, b.plans_considered);
  }
}

TEST(OptimizerTest, SingleSourceQueriesWorkEverywhere) {
  World w(112);
  query::Query q;
  q.id = 50;
  q.name = "single";
  q.sources = {0};
  q.sink = 7;
  auto env = w.env(false);
  ExhaustiveOptimizer ex(env);
  TopDownOptimizer td(env);
  BottomUpOptimizer bu(env);
  const double direct =
      w.wl.catalog.stream(0).tuple_rate * w.wl.catalog.stream(0).tuple_width *
      w.rt.cost(w.wl.catalog.stream(0).source, q.sink);
  for (Optimizer* alg : std::vector<Optimizer*>{&ex, &td, &bu}) {
    const OptimizeResult r = alg->optimize(q);
    ASSERT_TRUE(r.feasible) << alg->name();
    EXPECT_TRUE(r.deployment.ops.empty()) << alg->name();
    EXPECT_NEAR(r.actual_cost, direct, 1e-9 * (1.0 + direct)) << alg->name();
  }
}

TEST(OptimizerTest, HierarchicalCostsConvergeToOptimalWithHugeClusters) {
  // With max_cs >= N the hierarchy has one level and Top-Down degenerates
  // to the exhaustive search.
  World w(113, /*max_cs=*/32);
  ASSERT_EQ(w.hierarchy.height(), 1);
  auto env = w.env(false);
  ExhaustiveOptimizer ex(env);
  TopDownOptimizer td(env);
  for (const query::Query& q : w.wl.queries) {
    const double opt = ex.optimize(q).actual_cost;
    EXPECT_NEAR(td.optimize(q).actual_cost, opt, 1e-6 * (1.0 + opt))
        << q.name;
  }
}

}  // namespace
}  // namespace iflow::opt
