// OptimizerEnv helpers: processing-node restriction and aggregated
// delivery rates.
#include <gtest/gtest.h>

#include <algorithm>

#include "net/gtitm.h"
#include "opt/bottom_up.h"
#include "opt/exhaustive.h"
#include "opt/top_down.h"
#include "query/rates.h"
#include "verify/validator.h"
#include "workload/generator.h"

namespace iflow::opt {
namespace {

TEST(RestrictSitesTest, EmptyRestrictionPassesThrough) {
  OptimizerEnv env;
  const std::vector<net::NodeId> sites = {1, 2, 3};
  EXPECT_EQ(restrict_sites(env, sites), sites);
}

TEST(RestrictSitesTest, KeepsOnlyProcessingNodes) {
  OptimizerEnv env;
  env.processing_nodes = {2, 4};
  const std::vector<net::NodeId> got = restrict_sites(env, {1, 2, 3, 4});
  EXPECT_EQ(got, (std::vector<net::NodeId>{2, 4}));
}

TEST(RestrictSitesTest, FallsBackWhenNothingRemains) {
  // A scope with no processing node must not become unplannable.
  OptimizerEnv env;
  env.processing_nodes = {9};
  const std::vector<net::NodeId> sites = {1, 2};
  EXPECT_EQ(restrict_sites(env, sites), sites);
}

TEST(RestrictSitesTest, SingletonRestrictionLeavesOneSite) {
  OptimizerEnv env;
  env.processing_nodes = {3};
  EXPECT_EQ(restrict_sites(env, {0, 1, 2, 3, 4}),
            (std::vector<net::NodeId>{3}));
  // ... and the fallback still applies when that one node is out of scope.
  const std::vector<net::NodeId> elsewhere = {0, 1};
  EXPECT_EQ(restrict_sites(env, elsewhere), elsewhere);
}

TEST(RestrictSitesTest, EmptyScopeStaysEmpty) {
  OptimizerEnv env;
  env.processing_nodes = {3};
  EXPECT_TRUE(restrict_sites(env, {}).empty());
}

TEST(DeliveryRateTest, NoAggregationSignalsRaw) {
  query::Catalog catalog;
  catalog.add_stream("A", 0, 10.0, 10.0);
  query::Query q;
  q.sources = {0};
  q.sink = 0;
  query::RateModel rates(catalog, q);
  EXPECT_LT(delivery_rate_for(q, rates), 0.0);
}

TEST(DeliveryRateTest, AggregationUsesGroupBound) {
  query::Catalog catalog;
  catalog.add_stream("A", 0, 100.0, 10.0);
  query::Query q;
  q.sources = {0};
  q.sink = 0;
  q.aggregate.fn = query::AggregateFn::kCount;
  q.aggregate.groups = 4.0;
  q.aggregate.window_s = 2.0;
  q.aggregate.out_width = 24.0;
  query::RateModel rates(catalog, q);
  // min(100 t/s, 4/2 t/s) * 24 B = 48 B/s.
  EXPECT_DOUBLE_EQ(delivery_rate_for(q, rates), 48.0);
}

class ProcessingRestrictionTest : public ::testing::TestWithParam<int> {};

TEST_P(ProcessingRestrictionTest, AllAlgorithmsHonourTheRestriction) {
  Prng prng(77);
  net::TransitStubParams p;
  p.transit_count = 2;
  p.stub_domains_per_transit = 2;
  p.stub_domain_size = 4;
  const net::Network net = net::make_transit_stub(p, prng);
  const auto rt = net::RoutingTables::build(net);
  Prng hp(78);
  const cluster::Hierarchy h =
      cluster::Hierarchy::build(net, rt, GetParam(), hp);

  workload::WorkloadParams wp;
  wp.num_streams = 6;
  wp.min_joins = 2;
  wp.max_joins = 3;
  Prng wprng(79);
  const workload::Workload wl = workload::make_workload(net, wp, 6, wprng);

  // Processing allowed only on even nodes.
  OptimizerEnv env;
  env.catalog = &wl.catalog;
  env.network = &net;
  env.routing = &rt;
  env.hierarchy = &h;
  env.reuse = false;
  for (net::NodeId n = 0; n < net.node_count(); n += 2) {
    env.processing_nodes.push_back(n);
  }

  ExhaustiveOptimizer ex(env);
  TopDownOptimizer td(env);
  BottomUpOptimizer bu(env);
  for (const query::Query& q : wl.queries) {
    for (Optimizer* alg : std::vector<Optimizer*>{&ex, &td, &bu}) {
      const OptimizeResult r = alg->optimize(q);
      ASSERT_TRUE(r.feasible) << alg->name();
      for (const query::DeployedOp& op : r.deployment.ops) {
        // Hierarchical scopes may fall back to unrestricted members when a
        // cluster holds no processing node; the exhaustive search never
        // needs the fallback on this topology.
        if (alg == &ex) {
          EXPECT_EQ(op.node % 2, 0u) << alg->name();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(MaxCs, ProcessingRestrictionTest,
                         ::testing::Values(4, 8));

TEST(ProcessingRestrictionTest, SingletonRestrictionPinsEveryOperator) {
  Prng prng(82);
  net::TransitStubParams p;
  p.transit_count = 1;
  p.stub_domains_per_transit = 2;
  p.stub_domain_size = 3;
  const net::Network net = net::make_transit_stub(p, prng);
  const auto rt = net::RoutingTables::build(net);
  workload::WorkloadParams wp;
  wp.num_streams = 5;
  wp.min_joins = 2;
  wp.max_joins = 3;
  Prng wprng(83);
  const workload::Workload wl = workload::make_workload(net, wp, 4, wprng);

  OptimizerEnv env;
  env.catalog = &wl.catalog;
  env.network = &net;
  env.routing = &rt;
  env.reuse = false;
  const net::NodeId only = 2;
  env.processing_nodes = {only};

  ExhaustiveOptimizer ex(env);
  for (const query::Query& q : wl.queries) {
    const OptimizeResult r = ex.optimize(q);
    ASSERT_TRUE(r.feasible);
    for (const query::DeployedOp& op : r.deployment.ops) {
      EXPECT_EQ(op.node, only);
    }
    verify::ValidateOptions vo;
    vo.query = &q;
    vo.planned_cost = r.planned_cost;
    const auto violations = verify::validate(r.deployment, env, vo);
    EXPECT_TRUE(violations.empty()) << verify::describe(violations);
  }
}

TEST(ProcessingRestrictionTest, ExcludedClusterFallsBackToItsMembers) {
  Prng prng(84);
  net::TransitStubParams p;
  p.transit_count = 2;
  p.stub_domains_per_transit = 2;
  p.stub_domain_size = 4;
  const net::Network net = net::make_transit_stub(p, prng);
  const auto rt = net::RoutingTables::build(net);
  Prng hp(85);
  const cluster::Hierarchy h = cluster::Hierarchy::build(net, rt, 4, hp);
  workload::WorkloadParams wp;
  wp.num_streams = 6;
  wp.min_joins = 2;
  wp.max_joins = 3;
  Prng wprng(86);
  const workload::Workload wl = workload::make_workload(net, wp, 6, wprng);

  // Processing everywhere EXCEPT one whole level-1 cluster: any scope inside
  // that cluster is processing-free, so its placements rely entirely on the
  // documented fallback — which the validator models and accepts.
  OptimizerEnv env;
  env.catalog = &wl.catalog;
  env.network = &net;
  env.routing = &rt;
  env.hierarchy = &h;
  env.reuse = false;
  const cluster::Cluster& excluded = h.level(1).front();
  for (net::NodeId n = 0; n < net.node_count(); ++n) {
    if (std::find(excluded.members.begin(), excluded.members.end(), n) ==
        excluded.members.end()) {
      env.processing_nodes.push_back(n);
    }
  }
  ASSERT_FALSE(env.processing_nodes.empty());

  TopDownOptimizer td(env);
  BottomUpOptimizer bu(env);
  for (const query::Query& q : wl.queries) {
    for (Optimizer* alg : std::vector<Optimizer*>{&td, &bu}) {
      const OptimizeResult r = alg->optimize(q);
      ASSERT_TRUE(r.feasible) << alg->name();
      verify::ValidateOptions vo;
      vo.query = &q;
      vo.planned_cost = r.planned_cost;
      const auto violations = verify::validate(r.deployment, env, vo);
      EXPECT_TRUE(violations.empty())
          << alg->name() << ":\n" << verify::describe(violations);
    }
  }
}

TEST(ProcessingRestrictionTest, RestrictionCannotBeatUnrestricted) {
  Prng prng(80);
  net::TransitStubParams p;
  p.transit_count = 2;
  p.stub_domains_per_transit = 2;
  p.stub_domain_size = 3;
  const net::Network net = net::make_transit_stub(p, prng);
  const auto rt = net::RoutingTables::build(net);
  workload::WorkloadParams wp;
  wp.num_streams = 5;
  wp.min_joins = 2;
  wp.max_joins = 2;
  Prng wprng(81);
  const workload::Workload wl = workload::make_workload(net, wp, 5, wprng);

  OptimizerEnv free_env;
  free_env.catalog = &wl.catalog;
  free_env.network = &net;
  free_env.routing = &rt;
  free_env.reuse = false;
  OptimizerEnv tight_env = free_env;
  tight_env.processing_nodes = {0, 1};

  ExhaustiveOptimizer free_opt(free_env);
  ExhaustiveOptimizer tight_opt(tight_env);
  for (const query::Query& q : wl.queries) {
    EXPECT_GE(tight_opt.optimize(q).actual_cost,
              free_opt.optimize(q).actual_cost - 1e-9);
  }
}

}  // namespace
}  // namespace iflow::opt
