#include "opt/static_plan.h"

#include <gtest/gtest.h>

#include "net/gtitm.h"
#include "opt/view.h"

namespace iflow::opt {
namespace {

struct Fixture {
  query::Catalog catalog;
  query::Query q;
  Fixture() {
    // Rates chosen so the best statistics-only order is unambiguous:
    // sel(A,B) tiny, so A x B first minimises intermediates.
    const auto a = catalog.add_stream("A", 0, 100.0, 10.0);
    const auto b = catalog.add_stream("B", 1, 100.0, 10.0);
    const auto c = catalog.add_stream("C", 2, 100.0, 10.0);
    catalog.set_selectivity(a, b, 0.0001);
    catalog.set_selectivity(a, c, 0.01);
    catalog.set_selectivity(b, c, 0.01);
    q.sources = {a, b, c};
    q.sink = 0;
  }
};

TEST(StaticPlanTest, PicksMinimalIntermediateOrder) {
  Fixture f;
  query::RateModel rates(f.catalog, f.q);
  const auto units = collect_units(rates, nullptr, nullptr);
  const StaticPlan plan = choose_static_plan(rates, units);
  ASSERT_TRUE(plan.feasible);
  // Expect (A x B) joined first: find the internal node with 2 leaves.
  bool found_ab = false;
  for (const query::TreeNode& n : plan.tree.nodes) {
    if (n.unit < 0 && n.mask == 0b011) found_ab = true;
  }
  EXPECT_TRUE(found_ab);
  // Objective = rate(AxB) + rate(AxBxC).
  const double expected = rates.tuple_rate(0b011) + rates.tuple_rate(0b111);
  EXPECT_DOUBLE_EQ(plan.intermediate_tuple_rate, expected);
  // All 15-or-3 trees for 3 sources: exactly 3 enumerated for one cover.
  EXPECT_DOUBLE_EQ(plan.plans_examined, 3.0);
}

TEST(StaticPlanTest, SubtreeReuseReplacesExactMatch) {
  Fixture f;
  // Network for routing distances in provider selection.
  Prng prng(1);
  net::TransitStubParams p;
  p.transit_count = 1;
  p.stub_domains_per_transit = 1;
  p.stub_domain_size = 4;
  const net::Network net = net::make_transit_stub(p, prng);
  const auto rt = net::RoutingTables::build(net);

  query::RateModel rates(f.catalog, f.q);
  const auto units = collect_units(rates, nullptr, nullptr);
  StaticPlan plan = choose_static_plan(rates, units);

  query::LeafUnit derived;
  derived.mask = 0b011;  // matches the A x B subtree exactly
  derived.location = 3;
  derived.bytes_rate = rates.bytes_rate(0b011);
  derived.tuple_rate = rates.tuple_rate(0b011);
  derived.derived = true;
  plan = apply_subtree_reuse(std::move(plan), rates, {derived}, f.q.sink, rt);

  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.tree.internal_count(), 1);  // only the final join remains
  bool has_derived_leaf = false;
  for (const query::TreeNode& n : plan.tree.nodes) {
    if (n.unit >= 0 && n.mask == 0b011) {
      has_derived_leaf = true;
      EXPECT_TRUE(plan.units[static_cast<std::size_t>(n.unit)].derived);
    }
  }
  EXPECT_TRUE(has_derived_leaf);
}

TEST(StaticPlanTest, SubtreeReuseIgnoresNonMatchingMasks) {
  Fixture f;
  Prng prng(2);
  net::TransitStubParams p;
  p.transit_count = 1;
  p.stub_domains_per_transit = 1;
  p.stub_domain_size = 4;
  const net::Network net = net::make_transit_stub(p, prng);
  const auto rt = net::RoutingTables::build(net);

  query::RateModel rates(f.catalog, f.q);
  const auto units = collect_units(rates, nullptr, nullptr);
  StaticPlan plan = choose_static_plan(rates, units);
  const int ops_before = plan.tree.internal_count();

  query::LeafUnit derived;
  derived.mask = 0b110;  // B x C — not a subtree of the chosen (AxB)xC plan
  derived.location = 3;
  derived.bytes_rate = rates.bytes_rate(0b110);
  derived.tuple_rate = rates.tuple_rate(0b110);
  derived.derived = true;
  plan = apply_subtree_reuse(std::move(plan), rates, {derived}, f.q.sink, rt);
  EXPECT_EQ(plan.tree.internal_count(), ops_before)
      << "the fixed join order prevents reusing a mismatched sub-join "
         "(exactly the paper's motivating limitation)";
}

TEST(StaticPlanTest, FullQueryMatchCollapsesToSingleLeaf) {
  Fixture f;
  Prng prng(3);
  net::TransitStubParams p;
  p.transit_count = 1;
  p.stub_domains_per_transit = 1;
  p.stub_domain_size = 4;
  const net::Network net = net::make_transit_stub(p, prng);
  const auto rt = net::RoutingTables::build(net);

  query::RateModel rates(f.catalog, f.q);
  const auto units = collect_units(rates, nullptr, nullptr);
  StaticPlan plan = choose_static_plan(rates, units);

  query::LeafUnit full;
  full.mask = 0b111;
  full.location = 2;
  full.bytes_rate = rates.bytes_rate(0b111);
  full.tuple_rate = rates.tuple_rate(0b111);
  full.derived = true;
  plan = apply_subtree_reuse(std::move(plan), rates, {full}, f.q.sink, rt);
  EXPECT_EQ(plan.tree.internal_count(), 0);
  EXPECT_EQ(plan.units.size(), 1u);
}

TEST(StaticPlanTest, ClosestProviderWins) {
  Fixture f;
  // Line network: distances are obvious.
  net::Network net;
  for (int i = 0; i < 5; ++i) net.add_node();
  for (int i = 0; i + 1 < 5; ++i) {
    net.add_link(static_cast<net::NodeId>(i), static_cast<net::NodeId>(i + 1),
                 1.0, 1.0, 1e6);
  }
  const auto rt = net::RoutingTables::build(net);
  f.q.sink = 4;

  query::RateModel rates(f.catalog, f.q);
  const auto units = collect_units(rates, nullptr, nullptr);
  StaticPlan plan = choose_static_plan(rates, units);

  query::LeafUnit far;
  far.mask = 0b011;
  far.location = 0;
  far.bytes_rate = rates.bytes_rate(0b011);
  far.derived = true;
  query::LeafUnit near = far;
  near.location = 3;
  plan = apply_subtree_reuse(std::move(plan), rates, {far, near}, f.q.sink, rt);
  for (const query::LeafUnit& u : plan.units) {
    if (u.derived) {
      EXPECT_EQ(u.location, 3u);
    }
  }
}

}  // namespace
}  // namespace iflow::opt
