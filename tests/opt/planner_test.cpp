#include "opt/search/planner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/prng.h"
#include "net/gtitm.h"

namespace iflow::opt {
namespace {

using query::LeafUnit;
using query::Mask;

struct Fixture {
  net::Network net;
  net::RoutingTables rt;
  explicit Fixture(int nodes, std::uint64_t seed) {
    Prng prng(seed);
    for (int i = 0; i < nodes; ++i) net.add_node();
    // Random connected graph: spanning tree + extra edges.
    for (int i = 1; i < nodes; ++i) {
      net.add_link(static_cast<net::NodeId>(i),
                   static_cast<net::NodeId>(prng.index(static_cast<std::size_t>(i))),
                   prng.uniform(1.0, 10.0), prng.uniform(1.0, 20.0), 1e6);
    }
    for (int i = 0; i < nodes; ++i) {
      for (int j = i + 2; j < nodes; ++j) {
        if (prng.chance(0.3)) {
          net.add_link(static_cast<net::NodeId>(i),
                       static_cast<net::NodeId>(j), prng.uniform(1.0, 10.0),
                       prng.uniform(1.0, 20.0), 1e6);
        }
      }
    }
    rt = net::RoutingTables::build(net);
  }
};

struct QuerySetup {
  query::Catalog catalog;
  query::Query q;
  QuerySetup(int k, const net::Network& net, Prng& prng) {
    for (int i = 0; i < k; ++i) {
      q.sources.push_back(catalog.add_stream(
          "S" + std::to_string(i),
          static_cast<net::NodeId>(prng.index(net.node_count())),
          prng.uniform(5.0, 50.0), prng.uniform(10.0, 100.0)));
    }
    for (int a = 0; a < k; ++a) {
      for (int b = a + 1; b < k; ++b) {
        catalog.set_selectivity(q.sources[static_cast<std::size_t>(a)],
                                q.sources[static_cast<std::size_t>(b)],
                                prng.uniform(0.005, 0.05));
      }
    }
    q.sink = static_cast<net::NodeId>(prng.index(net.node_count()));
  }
};

std::vector<LeafUnit> base_units(const query::RateModel& rates) {
  std::vector<LeafUnit> units;
  for (int i = 0; i < rates.k(); ++i) {
    LeafUnit u;
    u.mask = Mask{1} << i;
    u.location = rates.source_node(i);
    u.tuple_rate = rates.tuple_rate(u.mask);
    u.bytes_rate = rates.bytes_rate(u.mask);
    units.push_back(u);
  }
  return units;
}

/// Literal exhaustive reference: all covers × all trees × all placements.
double brute_force_best(const std::vector<LeafUnit>& units,
                        const query::RateModel& rates, Mask target,
                        net::NodeId delivery,
                        const std::vector<net::NodeId>& sites,
                        const DistanceOracle& dist,
                        double* examined = nullptr) {
  double best = std::numeric_limits<double>::infinity();
  double count = 0.0;
  // Enumerate exact covers recursively.
  std::vector<int> cover;
  auto covers = [&](auto&& self, Mask remaining) -> void {
    if (remaining == 0) {
      std::vector<Mask> masks;
      for (int u : cover) masks.push_back(units[static_cast<std::size_t>(u)].mask);
      for (const query::JoinTree& tree : query::enumerate_join_trees(masks)) {
        const int ops = tree.internal_count();
        const double assignments =
            std::pow(static_cast<double>(sites.size()), ops);
        count += assignments;
        // Enumerate placements as a base-|sites| counter over ops.
        std::vector<std::size_t> slot(static_cast<std::size_t>(ops), 0);
        std::vector<int> internal_ids;
        for (std::size_t v = 0; v < tree.nodes.size(); ++v) {
          if (tree.nodes[v].unit < 0) internal_ids.push_back(static_cast<int>(v));
        }
        while (true) {
          // Cost of this placement.
          std::vector<net::NodeId> at(tree.nodes.size(), net::kInvalidNode);
          for (std::size_t i = 0; i < internal_ids.size(); ++i) {
            at[static_cast<std::size_t>(internal_ids[i])] = sites[slot[i]];
          }
          double cost = 0.0;
          for (std::size_t v = 0; v < tree.nodes.size(); ++v) {
            const query::TreeNode& n = tree.nodes[v];
            if (n.unit >= 0) continue;
            for (int child : {n.left, n.right}) {
              const query::TreeNode& cn =
                  tree.nodes[static_cast<std::size_t>(child)];
              const net::NodeId from =
                  (cn.unit >= 0)
                      ? units[static_cast<std::size_t>(cover[static_cast<std::size_t>(cn.unit)])]
                            .location
                      : at[static_cast<std::size_t>(child)];
              const double rate =
                  (cn.unit >= 0)
                      ? units[static_cast<std::size_t>(cover[static_cast<std::size_t>(cn.unit)])]
                            .bytes_rate
                      : rates.bytes_rate(cn.mask);
              cost += rate * dist(from, at[v]);
            }
          }
          const query::TreeNode& root =
              tree.nodes[static_cast<std::size_t>(tree.root)];
          if (delivery != net::kInvalidNode) {
            const net::NodeId root_loc =
                (root.unit >= 0)
                    ? units[static_cast<std::size_t>(cover[static_cast<std::size_t>(root.unit)])]
                          .location
                    : at[static_cast<std::size_t>(tree.root)];
            const double root_rate =
                (root.unit >= 0)
                    ? units[static_cast<std::size_t>(cover[static_cast<std::size_t>(root.unit)])]
                          .bytes_rate
                    : rates.bytes_rate(root.mask);
            cost += root_rate * dist(root_loc, delivery);
          }
          best = std::min(best, cost);
          // Advance the placement counter.
          std::size_t d = 0;
          while (d < slot.size()) {
            if (++slot[d] < sites.size()) break;
            slot[d] = 0;
            ++d;
          }
          if (slot.empty() || d == slot.size()) break;
        }
      }
      return;
    }
    const Mask low = remaining & (~remaining + 1);
    for (std::size_t u = 0; u < units.size(); ++u) {
      const Mask m = units[u].mask;
      if ((m & low) == 0 || (m & ~remaining) != 0) continue;
      cover.push_back(static_cast<int>(u));
      self(self, remaining & ~m);
      cover.pop_back();
    }
  };
  covers(covers, target);
  if (examined != nullptr) *examined = count;
  return best;
}

class PlannerVsBruteForceTest
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(PlannerVsBruteForceTest, DpEqualsLiteralEnumeration) {
  const auto [nodes, k, seed] = GetParam();
  Fixture f(nodes, seed);
  Prng prng(seed * 7 + 1);
  QuerySetup qs(k, f.net, prng);
  query::RateModel rates(qs.catalog, qs.q);

  PlannerInput in;
  in.rates = &rates;
  in.units = base_units(rates);
  in.target = rates.full();
  in.delivery = qs.q.sink;
  for (net::NodeId n = 0; n < f.net.node_count(); ++n) in.sites.push_back(n);
  in.dist = DistanceOracle::routing(f.rt);

  const PlannerResult res = plan_optimal(in);
  ASSERT_TRUE(res.feasible);

  double examined = 0.0;
  const double reference = brute_force_best(in.units, rates, in.target,
                                            in.delivery, in.sites, in.dist,
                                            &examined);
  EXPECT_NEAR(res.cost, reference, 1e-6 * (1.0 + reference));
  EXPECT_DOUBLE_EQ(res.plans_considered, examined);
  // The reconstructed deployment must actually realise the claimed cost.
  EXPECT_NEAR(query::deployment_cost(res.deployment, f.rt), res.cost,
              1e-6 * (1.0 + res.cost));
}

INSTANTIATE_TEST_SUITE_P(
    SmallInstances, PlannerVsBruteForceTest,
    ::testing::Values(std::tuple{5, 2, 1}, std::tuple{5, 3, 2},
                      std::tuple{6, 3, 3}, std::tuple{4, 4, 4},
                      std::tuple{5, 4, 5}, std::tuple{6, 4, 6},
                      std::tuple{7, 3, 7}, std::tuple{3, 4, 8}));

TEST(PlannerTest, ReusableDerivedUnitBeatsRecomputation) {
  Fixture f(6, 42);
  Prng prng(9);
  QuerySetup qs(3, f.net, prng);
  query::RateModel rates(qs.catalog, qs.q);

  PlannerInput in;
  in.rates = &rates;
  in.units = base_units(rates);
  // A derived stream for {0,1} colocated with source 2: joining it is nearly
  // free compared to shipping both bases.
  LeafUnit derived;
  derived.mask = 0b011;
  derived.location = rates.source_node(2);
  derived.tuple_rate = rates.tuple_rate(0b011);
  derived.bytes_rate = rates.bytes_rate(0b011);
  derived.derived = true;
  in.units.push_back(derived);
  in.target = rates.full();
  in.delivery = qs.q.sink;
  for (net::NodeId n = 0; n < f.net.node_count(); ++n) in.sites.push_back(n);
  in.dist = DistanceOracle::routing(f.rt);

  const PlannerResult with_reuse = plan_optimal(in);
  in.units.pop_back();
  const PlannerResult without = plan_optimal(in);
  ASSERT_TRUE(with_reuse.feasible);
  ASSERT_TRUE(without.feasible);
  EXPECT_LE(with_reuse.cost, without.cost + 1e-9);

  const double examined_ref = brute_force_best(
      [&] {
        auto u = base_units(rates);
        u.push_back(derived);
        return u;
      }(),
      rates, in.target, in.delivery, in.sites, in.dist);
  EXPECT_NEAR(with_reuse.cost, examined_ref, 1e-6 * (1.0 + examined_ref));
}

TEST(PlannerTest, SingleSourceQueryNeedsNoOperators) {
  Fixture f(5, 17);
  Prng prng(3);
  QuerySetup qs(1, f.net, prng);
  query::RateModel rates(qs.catalog, qs.q);

  PlannerInput in;
  in.rates = &rates;
  in.units = base_units(rates);
  in.target = rates.full();
  in.delivery = qs.q.sink;
  for (net::NodeId n = 0; n < f.net.node_count(); ++n) in.sites.push_back(n);
  in.dist = DistanceOracle::routing(f.rt);

  const PlannerResult res = plan_optimal(in);
  ASSERT_TRUE(res.feasible);
  EXPECT_TRUE(res.deployment.ops.empty());
  EXPECT_DOUBLE_EQ(res.plans_considered, 1.0);
  EXPECT_NEAR(res.cost,
              rates.bytes_rate(1) * f.rt.cost(rates.source_node(0), qs.q.sink),
              1e-9);
}

TEST(PlannerTest, NoDeliveryLeavesResultAtProducer) {
  Fixture f(6, 23);
  Prng prng(4);
  QuerySetup qs(2, f.net, prng);
  query::RateModel rates(qs.catalog, qs.q);

  PlannerInput in;
  in.rates = &rates;
  in.units = base_units(rates);
  in.target = rates.full();
  in.delivery = net::kInvalidNode;
  for (net::NodeId n = 0; n < f.net.node_count(); ++n) in.sites.push_back(n);
  in.dist = DistanceOracle::routing(f.rt);

  const PlannerResult res = plan_optimal(in);
  ASSERT_TRUE(res.feasible);
  const double reference =
      brute_force_best(in.units, rates, in.target, net::kInvalidNode,
                       in.sites, in.dist);
  EXPECT_NEAR(res.cost, reference, 1e-9 * (1.0 + reference));
  // Sink defaults to the producing node, so the delivery edge is free.
  EXPECT_EQ(res.deployment.sink, res.deployment.root_node());
}

TEST(PlannerTest, InfeasibleWhenUnitsCannotCoverTarget) {
  Fixture f(5, 31);
  Prng prng(5);
  QuerySetup qs(3, f.net, prng);
  query::RateModel rates(qs.catalog, qs.q);

  PlannerInput in;
  in.rates = &rates;
  in.units = base_units(rates);
  in.units.pop_back();  // source 2 unavailable
  in.target = rates.full();
  in.delivery = qs.q.sink;
  for (net::NodeId n = 0; n < f.net.node_count(); ++n) in.sites.push_back(n);
  in.dist = DistanceOracle::routing(f.rt);

  const PlannerResult res = plan_optimal(in);
  EXPECT_FALSE(res.feasible);
}

TEST(PlannerTest, PlaceTreeOptimalMatchesPlanOptimalOnFixedShape) {
  // For a 2-source query there is exactly one tree, so the per-tree DP and
  // the mask DP must agree exactly.
  Fixture f(7, 51);
  Prng prng(6);
  QuerySetup qs(2, f.net, prng);
  query::RateModel rates(qs.catalog, qs.q);
  const auto units = base_units(rates);

  std::vector<net::NodeId> sites;
  for (net::NodeId n = 0; n < f.net.node_count(); ++n) sites.push_back(n);
  const DistanceOracle dist = DistanceOracle::routing(f.rt);

  const auto trees = query::enumerate_join_trees({0b01, 0b10});
  ASSERT_EQ(trees.size(), 1u);
  const TreePlacement tp =
      place_tree_optimal(trees[0], units, rates, qs.q.sink, sites, dist);
  ASSERT_TRUE(tp.feasible);

  PlannerInput in;
  in.rates = &rates;
  in.units = units;
  in.target = rates.full();
  in.delivery = qs.q.sink;
  in.sites = sites;
  in.dist = dist;
  const PlannerResult res = plan_optimal(in);
  EXPECT_NEAR(tp.cost, res.cost, 1e-9 * (1.0 + res.cost));
}

TEST(PlannerTest, CountPlansMatchesLemma1ForBaseUnits) {
  // With only singleton units, the cover is unique and the count is
  // (2K-3)!! * S^(K-1).
  Fixture f(6, 61);
  Prng prng(8);
  QuerySetup qs(4, f.net, prng);
  query::RateModel rates(qs.catalog, qs.q);
  const auto units = base_units(rates);
  const double plans = count_plans(units, rates.full(), 6);
  EXPECT_DOUBLE_EQ(plans, 15.0 * std::pow(6.0, 3));
}

void expect_identical(const PlannerResult& a, const PlannerResult& b) {
  ASSERT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.cost, b.cost);  // bitwise, not approximate
  EXPECT_EQ(a.plans_considered, b.plans_considered);
  EXPECT_EQ(a.unit_sources, b.unit_sources);
  ASSERT_EQ(a.deployment.ops.size(), b.deployment.ops.size());
  for (std::size_t i = 0; i < a.deployment.ops.size(); ++i) {
    EXPECT_EQ(a.deployment.ops[i].node, b.deployment.ops[i].node);
    EXPECT_EQ(a.deployment.ops[i].mask, b.deployment.ops[i].mask);
    EXPECT_EQ(a.deployment.ops[i].left, b.deployment.ops[i].left);
    EXPECT_EQ(a.deployment.ops[i].right, b.deployment.ops[i].right);
  }
  EXPECT_EQ(a.deployment.sink, b.deployment.sink);
}

TEST(PlannerTest, ParallelSweepBitwiseIdenticalToSerial) {
  // Large enough that the parallel path actually engages (>= 32 sites).
  for (const std::uint64_t seed : {101u, 202u, 303u}) {
    Fixture f(48, seed);
    Prng prng(seed * 13 + 5);
    QuerySetup qs(4, f.net, prng);
    query::RateModel rates(qs.catalog, qs.q);

    PlannerInput in;
    in.rates = &rates;
    in.units = base_units(rates);
    in.target = rates.full();
    in.delivery = qs.q.sink;
    for (net::NodeId n = 0; n < f.net.node_count(); ++n) in.sites.push_back(n);
    in.dist = DistanceOracle::routing(f.rt);

    PlanWorkspace serial(1);
    PlanWorkspace parallel(4);
    const PlannerResult a = plan_optimal(in, serial);
    const PlannerResult b = plan_optimal(in, parallel);
    expect_identical(a, b);
  }
}

TEST(PlannerTest, WorkspaceReuseAcrossInvocationsIsTransparent) {
  PlanWorkspace ws(2);
  // Alternate between a large and a small instance so the arena is carved
  // at different high-water marks; results must match fresh workspaces.
  for (const auto& [nodes, k, seed] :
       {std::tuple{40, 4, 71u}, std::tuple{6, 3, 72u}, std::tuple{36, 4, 73u}}) {
    Fixture f(nodes, seed);
    Prng prng(seed + 9);
    QuerySetup qs(k, f.net, prng);
    query::RateModel rates(qs.catalog, qs.q);

    PlannerInput in;
    in.rates = &rates;
    in.units = base_units(rates);
    in.target = rates.full();
    in.delivery = qs.q.sink;
    for (net::NodeId n = 0; n < f.net.node_count(); ++n) in.sites.push_back(n);
    in.dist = DistanceOracle::routing(f.rt);

    PlanWorkspace fresh(2);
    expect_identical(plan_optimal(in, ws), plan_optimal(in, fresh));
  }
  EXPECT_GT(ws.capacity(), 0u);
}

TEST(DistanceOracleTest, RoutingOracleMatchesRoutingTables) {
  Fixture f(8, 91);
  const DistanceOracle d = DistanceOracle::routing(f.rt);
  ASSERT_TRUE(d.valid());
  for (net::NodeId a = 0; a < f.net.node_count(); ++a) {
    for (net::NodeId b = 0; b < f.net.node_count(); ++b) {
      EXPECT_EQ(d(a, b), f.rt.cost(a, b));
    }
  }
  EXPECT_FALSE(DistanceOracle{}.valid());
}

}  // namespace
}  // namespace iflow::opt
