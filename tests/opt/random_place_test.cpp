// The random-placement sanity floor, and the paper's §2.3.2 claim that
// Bottom-Up beats random placement of a comparable query tree.
#include "opt/random_place.h"

#include <gtest/gtest.h>

#include "net/gtitm.h"
#include "opt/bottom_up.h"
#include "opt/exhaustive.h"
#include "workload/generator.h"

namespace iflow::opt {
namespace {

struct World {
  net::Network net;
  net::RoutingTables rt;
  cluster::Hierarchy hierarchy;
  workload::Workload wl;

  explicit World(std::uint64_t seed)
      : net([&] {
          Prng prng(seed);
          net::TransitStubParams p;
          p.transit_count = 2;
          p.stub_domains_per_transit = 2;
          p.stub_domain_size = 4;
          return net::make_transit_stub(p, prng);
        }()),
        rt(net::RoutingTables::build(net)),
        hierarchy([&] {
          Prng prng(seed + 1);
          return cluster::Hierarchy::build(net, rt, 4, prng);
        }()),
        wl([&] {
          Prng prng(seed + 2);
          workload::WorkloadParams wp;
          wp.num_streams = 6;
          wp.min_joins = 2;
          wp.max_joins = 4;
          return workload::make_workload(net, wp, 10, prng);
        }()) {}

  OptimizerEnv env() {
    OptimizerEnv e;
    e.catalog = &wl.catalog;
    e.network = &net;
    e.routing = &rt;
    e.hierarchy = &hierarchy;
    e.reuse = false;
    return e;
  }
};

TEST(RandomPlacementTest, ProducesValidDeployments) {
  World w(1);
  auto env = w.env();
  RandomPlacementOptimizer rnd(env, 42);
  for (const query::Query& q : w.wl.queries) {
    const OptimizeResult r = rnd.optimize(q);
    ASSERT_TRUE(r.feasible);
    EXPECT_NO_THROW(query::validate_deployment(r.deployment));
    EXPECT_NEAR(query::deployment_cost(r.deployment, w.rt), r.actual_cost,
                1e-9 * (1.0 + r.actual_cost));
  }
}

TEST(RandomPlacementTest, NeverBeatsTheOptimum) {
  World w(2);
  auto env = w.env();
  ExhaustiveOptimizer ex(env);
  RandomPlacementOptimizer rnd(env, 7);
  for (const query::Query& q : w.wl.queries) {
    const double opt = ex.optimize(q).actual_cost;
    EXPECT_GE(rnd.optimize(q).actual_cost, opt - 1e-9);
  }
}

TEST(RandomPlacementTest, BottomUpBeatsRandomOnAverage) {
  // §2.3.2: Bottom-Up offers better placements than random assignment of a
  // comparable tree. Aggregate comparison over a workload and several
  // random draws.
  World w(3);
  auto env = w.env();
  BottomUpOptimizer bu(env);
  double bu_total = 0.0;
  double rnd_total = 0.0;
  for (const query::Query& q : w.wl.queries) {
    bu_total += bu.optimize(q).actual_cost;
    double best_draws = 0.0;
    for (std::uint64_t s = 0; s < 5; ++s) {
      RandomPlacementOptimizer rnd(env, 100 + s);
      best_draws += rnd.optimize(q).actual_cost;
    }
    rnd_total += best_draws / 5.0;
  }
  EXPECT_LT(bu_total, rnd_total);
}

TEST(RandomPlacementTest, HonoursProcessingRestriction) {
  World w(4);
  auto env = w.env();
  env.processing_nodes = {0, 1, 2};
  RandomPlacementOptimizer rnd(env, 9);
  for (const query::Query& q : w.wl.queries) {
    const OptimizeResult r = rnd.optimize(q);
    for (const query::DeployedOp& op : r.deployment.ops) {
      EXPECT_LE(op.node, 2u);
    }
  }
}

}  // namespace
}  // namespace iflow::opt
