// Property sweeps over randomized instances:
//   * the mask-DP planner equals literal enumeration under Theorem-1
//     level-estimate oracles too (not just true costs);
//   * with arbitrary sets of derived units, the planner still matches brute
//     force over all reuse covers;
//   * Bottom-Up never beats, and is anchored by, the optimal placement of
//     its own chosen join tree (paper §2.3.2: sub-optimality is bounded
//     with respect to the best deployment of the same join ordering).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "cluster/hierarchy.h"
#include "net/gtitm.h"
#include "opt/bottom_up.h"
#include "opt/search/planner.h"
#include "query/rates.h"

namespace iflow::opt {
namespace {

using query::LeafUnit;
using query::Mask;

struct Instance {
  net::Network net;
  net::RoutingTables rt;
  query::Catalog catalog;
  query::Query q;
  std::vector<LeafUnit> units;

  Instance(int k, int deriveds, std::uint64_t seed) {
    Prng prng(seed);
    net::TransitStubParams p;
    p.transit_count = 1;
    p.stub_domains_per_transit = 2;
    p.stub_domain_size = 3;
    net = net::make_transit_stub(p, prng);
    rt = net::RoutingTables::build(net);
    for (int i = 0; i < k; ++i) {
      q.sources.push_back(catalog.add_stream(
          "S" + std::to_string(i),
          static_cast<net::NodeId>(prng.index(net.node_count())),
          prng.uniform(5.0, 50.0), prng.uniform(10.0, 100.0)));
    }
    for (int a = 0; a < k; ++a) {
      for (int b = a + 1; b < k; ++b) {
        catalog.set_selectivity(q.sources[static_cast<std::size_t>(a)],
                                q.sources[static_cast<std::size_t>(b)],
                                prng.uniform(0.005, 0.05));
      }
    }
    q.sink = static_cast<net::NodeId>(prng.index(net.node_count()));
    query::RateModel rates(catalog, q);
    for (int i = 0; i < k; ++i) {
      LeafUnit u;
      u.mask = Mask{1} << i;
      u.location = rates.source_node(i);
      u.tuple_rate = rates.tuple_rate(u.mask);
      u.bytes_rate = rates.bytes_rate(u.mask);
      units.push_back(u);
    }
    // Random multi-source derived units (distinct masks with >= 2 bits).
    for (int d = 0; d < deriveds; ++d) {
      const Mask full = rates.full();
      Mask m = 0;
      while (std::popcount(m) < 2) {
        m = (prng.uniform_int(1, static_cast<std::int64_t>(full))) & full;
      }
      LeafUnit u;
      u.mask = m;
      u.location = static_cast<net::NodeId>(prng.index(net.node_count()));
      u.tuple_rate = rates.tuple_rate(m);
      u.bytes_rate = rates.bytes_rate(m);
      u.derived = true;
      units.push_back(u);
    }
  }
};

/// Literal exhaustive reference over covers × trees × placements (same as
/// planner_test's, kept independent on purpose).
double brute_force(const std::vector<LeafUnit>& units,
                   const query::RateModel& rates, net::NodeId delivery,
                   const std::vector<net::NodeId>& sites,
                   const DistanceOracle& dist) {
  double best = std::numeric_limits<double>::infinity();
  std::vector<int> cover;
  auto covers = [&](auto&& self, Mask remaining) -> void {
    if (remaining == 0) {
      std::vector<Mask> masks;
      for (int u : cover) masks.push_back(units[static_cast<std::size_t>(u)].mask);
      for (const query::JoinTree& tree : query::enumerate_join_trees(masks)) {
        // Optimal placement of this fixed tree via the per-tree DP (itself
        // validated against literal placement enumeration elsewhere).
        std::vector<LeafUnit> tree_units;
        for (int u : cover) tree_units.push_back(units[static_cast<std::size_t>(u)]);
        const TreePlacement tp = place_tree_optimal(tree, tree_units, rates,
                                                    delivery, sites, dist);
        if (tp.feasible) best = std::min(best, tp.cost);
      }
      return;
    }
    const Mask low = remaining & (~remaining + 1);
    for (std::size_t u = 0; u < units.size(); ++u) {
      const Mask m = units[u].mask;
      if ((m & low) == 0 || (m & ~remaining) != 0) continue;
      cover.push_back(static_cast<int>(u));
      self(self, remaining & ~m);
      cover.pop_back();
    }
  };
  covers(covers, rates.full());
  return best;
}

class PlannerPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(PlannerPropertyTest, DpMatchesBruteForceUnderLevelEstimates) {
  const auto [k, deriveds, seed] = GetParam();
  Instance inst(k, deriveds, seed);
  query::RateModel rates(inst.catalog, inst.q);
  Prng hp(seed + 7);
  const cluster::Hierarchy h =
      cluster::Hierarchy::build(inst.net, inst.rt, 4, hp);

  std::vector<net::NodeId> sites;
  for (net::NodeId n = 0; n < inst.net.node_count(); ++n) sites.push_back(n);

  for (int level = 1; level <= h.height(); ++level) {
    const DistanceOracle dist = DistanceOracle::hierarchy(h, level);
    PlannerInput in;
    in.rates = &rates;
    in.units = inst.units;
    in.target = rates.full();
    in.delivery = inst.q.sink;
    in.sites = sites;
    in.dist = dist;
    const PlannerResult res = plan_optimal(in);
    ASSERT_TRUE(res.feasible);
    const double reference =
        brute_force(inst.units, rates, inst.q.sink, sites, dist);
    EXPECT_NEAR(res.cost, reference, 1e-6 * (1.0 + reference))
        << "level " << level;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, PlannerPropertyTest,
    ::testing::Values(std::tuple{3, 0, 1}, std::tuple{3, 1, 2},
                      std::tuple{3, 2, 3}, std::tuple{4, 0, 4},
                      std::tuple{4, 2, 5}, std::tuple{4, 3, 6},
                      std::tuple{5, 1, 7}, std::tuple{5, 3, 8}));

/// Rebuilds the join tree a deployment realised (units as leaves).
query::JoinTree tree_of(const query::Deployment& d) {
  query::JoinTree t;
  // Leaves first (same order as units), then ops in arena order.
  std::vector<int> unit_node(d.units.size());
  for (std::size_t u = 0; u < d.units.size(); ++u) {
    query::TreeNode leaf;
    leaf.unit = static_cast<int>(u);
    leaf.mask = d.units[u].mask;
    t.nodes.push_back(leaf);
    unit_node[u] = static_cast<int>(t.nodes.size()) - 1;
  }
  std::vector<int> op_node(d.ops.size());
  for (std::size_t i = 0; i < d.ops.size(); ++i) {
    auto resolve = [&](int child) {
      return query::child_is_unit(child)
                 ? unit_node[static_cast<std::size_t>(
                       query::child_unit_index(child))]
                 : op_node[static_cast<std::size_t>(child)];
    };
    query::TreeNode n;
    n.left = resolve(d.ops[i].left);
    n.right = resolve(d.ops[i].right);
    n.mask = d.ops[i].mask;
    t.nodes.push_back(n);
    op_node[i] = static_cast<int>(t.nodes.size()) - 1;
  }
  t.root = static_cast<int>(t.nodes.size()) - 1;
  return t;
}

class BottomUpBoundTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BottomUpBoundTest, AnchoredByOptimalPlacementOfItsOwnTree) {
  const std::uint64_t seed = GetParam();
  Prng prng(seed);
  net::TransitStubParams p;
  p.transit_count = 2;
  p.stub_domains_per_transit = 2;
  p.stub_domain_size = 4;
  const net::Network net = net::make_transit_stub(p, prng);
  const auto rt = net::RoutingTables::build(net);
  Prng hp(seed + 1);
  const cluster::Hierarchy h = cluster::Hierarchy::build(net, rt, 4, hp);

  Instance inst(4, 0, seed + 2);  // only for catalog/query shapes
  query::Catalog catalog;
  query::Query q;
  Prng qp(seed + 3);
  for (int i = 0; i < 4; ++i) {
    q.sources.push_back(catalog.add_stream(
        "S" + std::to_string(i),
        static_cast<net::NodeId>(qp.index(net.node_count())),
        qp.uniform(5.0, 50.0), qp.uniform(10.0, 100.0)));
  }
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      catalog.set_selectivity(q.sources[static_cast<std::size_t>(a)],
                              q.sources[static_cast<std::size_t>(b)],
                              qp.uniform(0.005, 0.05));
    }
  }
  q.sink = static_cast<net::NodeId>(qp.index(net.node_count()));
  query::RateModel rates(catalog, q);

  OptimizerEnv env;
  env.catalog = &catalog;
  env.network = &net;
  env.routing = &rt;
  env.hierarchy = &h;
  env.reuse = false;
  BottomUpOptimizer bu(env);
  const OptimizeResult res = bu.optimize(q);
  ASSERT_TRUE(res.feasible);

  // Optimal placement of the SAME join ordering over the whole network.
  const query::JoinTree tree = tree_of(res.deployment);
  std::vector<net::NodeId> sites;
  for (net::NodeId n = 0; n < net.node_count(); ++n) sites.push_back(n);
  const TreePlacement tp = place_tree_optimal(
      tree, res.deployment.units, rates, q.sink, sites,
      DistanceOracle::routing(rt));
  ASSERT_TRUE(tp.feasible);
  EXPECT_GE(res.actual_cost, tp.cost - 1e-6 * (1.0 + tp.cost));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BottomUpBoundTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace iflow::opt
