#include "opt/search/sparse_oracle.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "cluster/hierarchy.h"
#include "cluster/theory.h"
#include "common/prng.h"
#include "net/gtitm.h"
#include "opt/bottom_up.h"
#include "opt/optimizer.h"
#include "opt/top_down.h"
#include "query/rates.h"
#include "workload/generator.h"

namespace iflow::opt {
namespace {

// Stub domains plus the transit backbone as the caller-supplied leaf
// partitions — the intended scale-path pairing for build_partitioned.
std::vector<std::vector<net::NodeId>> domain_partitions(
    const net::TransitStubParams& p) {
  std::vector<std::vector<net::NodeId>> parts;
  std::vector<net::NodeId> transit;
  for (int t = 0; t < p.transit_count; ++t) {
    transit.push_back(static_cast<net::NodeId>(t));
  }
  parts.push_back(std::move(transit));
  for (int d = 0; d < net::stub_domain_count(p); ++d) {
    parts.push_back(net::stub_domain_members(p, d));
  }
  return parts;
}

struct Rig {
  net::TransitStubParams params;
  net::Network net;
  net::RoutingTables rt;
  cluster::Hierarchy h;

  explicit Rig(std::uint64_t seed, int max_cs = 10)
      : net([&] {
          Prng prng(seed);
          return net::make_transit_stub(params, prng);
        }()),
        rt(net::RoutingTables::build(net)),
        h([&] {
          Prng prng(seed + 1);
          return cluster::Hierarchy::build_partitioned(
              net, rt, domain_partitions(params), max_cs, prng);
        }()) {}
};

TEST(SparseOracleTest, SlackBoundHoldsOnEveryPair) {
  Rig rig(201);
  ASSERT_TRUE(rig.h.local_leaf_metrics());
  SparseOracle oracle(rig.net, rig.rt, rig.h, {});
  const auto n = static_cast<net::NodeId>(rig.net.node_count());
  for (net::NodeId a = 0; a < n; ++a) {
    for (net::NodeId b = 0; b < n; ++b) {
      oracle.validate_pair(a, b);  // CHECKs |est - exact| <= slack
      const SparseEstimate e = oracle.estimate(a, b);
      ASSERT_LE(std::abs(e.value - rig.rt.cost(a, b)),
                e.slack + 1e-9 * (1.0 + e.slack + rig.rt.cost(a, b)));
    }
  }
}

TEST(SparseOracleTest, PivotSketchesStayWithinDoubledLeafSlack) {
  // pivots_per_cluster = 2 forces the farthest-point pivot path on every
  // 8-node stub domain (m > 2 * pivots); the min-over-pivots estimate is
  // bounded by 2 d(1) instead of d(1).
  Rig rig(202);
  SparseOracleOptions opts;
  opts.pivots_per_cluster = 2;
  SparseOracle oracle(rig.net, rig.rt, rig.h, opts);
  const std::vector<net::NodeId> dom =
      net::stub_domain_members(rig.params, 0);
  for (const net::NodeId a : dom) {
    for (const net::NodeId b : dom) {
      oracle.validate_pair(a, b);
      if (a != b) {
        EXPECT_DOUBLE_EQ(oracle.slack(a, b), 2.0 * rig.h.d(1));
      }
    }
  }
}

TEST(SparseOracleTest, TierSelection) {
  Rig rig(203);
  SparseOracle oracle(rig.net, rig.rt, rig.h, {});
  const std::vector<net::NodeId> dom =
      net::stub_domain_members(rig.params, 0);
  // Identity tier.
  EXPECT_EQ(oracle.distance(dom[0], dom[0]), 0.0);
  EXPECT_EQ(oracle.slack(dom[0], dom[0]), 0.0);
  // Leaf-sketch tier: same cluster, full 8x8 matrix, slack d(1).
  ASSERT_EQ(rig.h.cluster_of(dom[0], 1), rig.h.cluster_of(dom[1], 1));
  EXPECT_DOUBLE_EQ(oracle.slack(dom[0], dom[1]), rig.h.d(1));
  // Theorem-1 tier: different stub domains meet at some level >= 2 with the
  // cumulative slack of that level.
  const std::vector<net::NodeId> other =
      net::stub_domain_members(rig.params, 1);
  ASSERT_NE(rig.h.cluster_of(dom[0], 1), rig.h.cluster_of(other[0], 1));
  const double s = oracle.slack(dom[0], other[0]);
  EXPECT_GT(s, 0.0);
  bool matches_some_level = false;
  for (int l = 2; l <= rig.h.height(); ++l) {
    if (s == cluster::theorem1_slack(rig.h, l)) matches_some_level = true;
  }
  EXPECT_TRUE(matches_some_level);
}

TEST(SparseOracleTest, ExactLeavesOptionPricesLeafPairsExactly) {
  Rig rig(204);
  SparseOracleOptions opts;
  opts.exact_leaves = true;
  SparseOracle oracle(rig.net, rig.rt, rig.h, opts);
  const std::vector<net::NodeId> dom =
      net::stub_domain_members(rig.params, 0);
  EXPECT_EQ(oracle.distance(dom[0], dom[1]), rig.rt.cost(dom[0], dom[1]));
  EXPECT_EQ(oracle.slack(dom[0], dom[1]), 0.0);
}

TEST(SparseOracleTest, ClassicHierarchyDisablesTheSketchTier) {
  // Hierarchy::build derives d(1) from routing rows, not induced subgraphs,
  // so the induced-sketch slack argument does not apply; same-leaf pairs
  // must fall back to exact routing lookups.
  Prng prng(205);
  net::TransitStubParams p;
  const net::Network net = net::make_transit_stub(p, prng);
  const net::RoutingTables rt = net::RoutingTables::build(net);
  Prng hprng(206);
  const cluster::Hierarchy h = cluster::Hierarchy::build(net, rt, 10, hprng);
  ASSERT_FALSE(h.local_leaf_metrics());
  SparseOracle oracle(net, rt, h, {});
  for (net::NodeId a = 0; a < 20; ++a) {
    for (net::NodeId b = 0; b < 20; ++b) {
      if (h.cluster_of(a, 1) != h.cluster_of(b, 1)) continue;
      EXPECT_EQ(oracle.distance(a, b), rt.cost(a, b));
      EXPECT_EQ(oracle.slack(a, b), 0.0);
      oracle.validate_pair(a, b);
    }
  }
}

TEST(SparseOracleTest, RemovedNodeEstimatesAtInfinity) {
  Rig rig(207);
  const net::NodeId victim = net::stub_domain_members(rig.params, 2)[3];
  rig.net.crash_node(victim);
  rig.rt.sync(rig.net);
  rig.h.remove_node(victim, rig.rt);
  SparseOracle oracle(rig.net, rig.rt, rig.h, {});
  EXPECT_TRUE(std::isinf(oracle.distance(victim, 0)));
  EXPECT_TRUE(std::isinf(oracle.distance(0, victim)));
  // Severed pairs are the one case where an infinite estimate is legal.
  oracle.validate_pair(victim, 0);
  // Everyone else still prices within slack.
  for (net::NodeId a = 0; a < 12; ++a) {
    for (net::NodeId b = 0; b < 12; ++b) oracle.validate_pair(a, b);
  }
}

TEST(SparseOracleTest, RefreshRestampsAfterHierarchyChange) {
  Rig rig(208);
  SparseOracle oracle(rig.net, rig.rt, rig.h, {});
  const std::uint64_t before = oracle.stamp();
  rig.h.refresh(rig.rt);  // bumps hierarchy version
  oracle.refresh();
  EXPECT_NE(oracle.stamp(), before);
  oracle.validate_pair(3, 97);
}

TEST(SparseOracleTest, SketchMemoryIsASmallFractionOfDense) {
  Rig rig(209);
  SparseOracle oracle(rig.net, rig.rt, rig.h, {});
  const auto n = static_cast<net::NodeId>(rig.net.node_count());
  for (net::NodeId a = 0; a < n; ++a) {
    oracle.distance(a, (a + 1) % n);  // touch every cluster's sketch
  }
  const std::size_t dense = net::RoutingTables::dense_equivalent_bytes(
      rig.net.node_count());
  EXPECT_GT(oracle.memory_bytes(), 0u);
  EXPECT_LT(oracle.memory_bytes(), dense / 20);  // < 5% of dense
}

TEST(SparseOracleTest, SparsePlannedOptimizersProduceValidDeployments) {
  // End-to-end: top-down / bottom-up planning through env.sparse must stay
  // feasible and honour the planned == actual reporting contract.
  net::TransitStubParams p;
  p.transit_count = 2;
  p.stub_domains_per_transit = 2;
  p.stub_domain_size = 4;
  Prng nprng(210);
  net::Network net = net::make_transit_stub(p, nprng);
  net::RoutingTables rt = net::RoutingTables::build(net);
  Prng hprng(211);
  cluster::Hierarchy h = cluster::Hierarchy::build_partitioned(
      net, rt, domain_partitions(p), 4, hprng);
  Prng wprng(212);
  workload::WorkloadParams wp;
  wp.num_streams = 6;
  const workload::Workload wl = workload::make_workload(net, wp, 6, wprng);
  SparseOracle oracle(net, rt, h, {});

  OptimizerEnv env;
  env.catalog = &wl.catalog;
  env.network = &net;
  env.routing = &rt;
  env.hierarchy = &h;
  OptimizerEnv sparse_env = env;
  sparse_env.sparse = &oracle;

  TopDownOptimizer dense_td(env);
  TopDownOptimizer sparse_td(sparse_env);
  BottomUpOptimizer sparse_bu(sparse_env);
  for (const query::Query& q : wl.queries) {
    const OptimizeResult dense_r = dense_td.optimize(q);
    for (Optimizer* alg : std::vector<Optimizer*>{&sparse_td, &sparse_bu}) {
      const OptimizeResult r = alg->optimize(q);
      ASSERT_EQ(r.feasible, dense_r.feasible) << alg->name() << " " << q.name;
      if (!r.feasible) continue;
      EXPECT_NO_THROW(query::validate_deployment(r.deployment));
      EXPECT_DOUBLE_EQ(r.planned_cost, r.actual_cost) << alg->name();
      EXPECT_TRUE(std::isfinite(r.actual_cost));
    }
  }
}

}  // namespace
}  // namespace iflow::opt
