// Select-project-join: filter predicates and containment-based reuse
// (the paper's §5 future-work direction) exercised end to end.
#include <gtest/gtest.h>

#include "engine/simulation.h"
#include "net/gtitm.h"
#include "opt/exhaustive.h"
#include "opt/top_down.h"
#include "query/rates.h"
#include "workload/generator.h"

namespace iflow::opt {
namespace {

struct World {
  net::Network net;
  net::RoutingTables rt;
  query::Catalog catalog;

  explicit World(std::uint64_t seed) {
    Prng prng(seed);
    net::TransitStubParams p;
    p.transit_count = 2;
    p.stub_domains_per_transit = 2;
    p.stub_domain_size = 3;
    net = net::make_transit_stub(p, prng);
    rt = net::RoutingTables::build(net);
  }

  OptimizerEnv env(advert::Registry* registry) {
    OptimizerEnv e;
    e.catalog = &catalog;
    e.network = &net;
    e.routing = &rt;
    e.registry = registry;
    e.reuse = registry != nullptr;
    return e;
  }
};

TEST(FiltersTest, FilterScalesEveryDownstreamRate) {
  World w(1);
  const auto a = w.catalog.add_stream("A", 0, 100.0, 10.0);
  const auto b = w.catalog.add_stream("B", 1, 50.0, 10.0);
  w.catalog.set_selectivity(a, b, 0.01);

  query::Query plain;
  plain.sources = {a, b};
  plain.sink = 3;
  query::Query filtered = plain;
  filtered.filter_selectivity = {0.25, 1.0};

  query::RateModel rp(w.catalog, plain);
  query::RateModel rf(w.catalog, filtered);
  EXPECT_DOUBLE_EQ(rf.tuple_rate(0b01), 0.25 * rp.tuple_rate(0b01));
  EXPECT_DOUBLE_EQ(rf.tuple_rate(0b10), rp.tuple_rate(0b10));
  EXPECT_DOUBLE_EQ(rf.tuple_rate(0b11), 0.25 * rp.tuple_rate(0b11));
}

TEST(FiltersTest, FilteredQueryCostsLess) {
  World w(2);
  const auto a = w.catalog.add_stream("A", 0, 100.0, 10.0);
  const auto b = w.catalog.add_stream("B", 5, 50.0, 10.0);
  w.catalog.set_selectivity(a, b, 0.01);
  query::Query plain;
  plain.id = 1;
  plain.sources = {a, b};
  plain.sink = 10;
  query::Query filtered = plain;
  filtered.id = 2;
  filtered.filter_selectivity = {0.2, 0.5};

  ExhaustiveOptimizer ex(w.env(nullptr));
  const double plain_cost = ex.optimize(plain).actual_cost;
  const double filtered_cost = ex.optimize(filtered).actual_cost;
  EXPECT_LT(filtered_cost, plain_cost);
}

TEST(FiltersTest, ContainmentReusePicksResidualFilter) {
  World w(3);
  const auto a = w.catalog.add_stream("A", 0, 100.0, 10.0);
  const auto b = w.catalog.add_stream("B", 1, 80.0, 10.0);
  w.catalog.set_selectivity(a, b, 0.01);

  advert::Registry registry;
  ExhaustiveOptimizer ex(w.env(&registry));

  // Unfiltered broad query deployed first.
  query::Query broad;
  broad.id = 1;
  broad.sources = {a, b};
  broad.sink = 9;
  query::RateModel broad_rates(w.catalog, broad);
  const OptimizeResult first = ex.optimize(broad);
  advert::advertise_deployment(registry, first.deployment, broad_rates);

  // Stricter query: same join, extra selection on A.
  query::Query strict = broad;
  strict.id = 2;
  strict.sink = 10;
  strict.filter_selectivity = {0.1, 1.0};
  const OptimizeResult second = ex.optimize(strict);
  ASSERT_TRUE(second.feasible);

  bool contained = false;
  for (const query::LeafUnit& u : second.deployment.units) {
    if (u.derived && u.residual_filter < 1.0) contained = true;
  }
  EXPECT_TRUE(contained)
      << "strict query should reuse the broad join via a residual filter";
  // Transported volume is the strict query's own (filtered) rate, so the
  // reuse deployment is much cheaper than planning from scratch.
  advert::Registry empty;
  ExhaustiveOptimizer scratch(w.env(&empty));
  EXPECT_LT(second.actual_cost, scratch.optimize(strict).actual_cost);
}

TEST(FiltersTest, StricterAdvertisementIsNeverReused) {
  World w(4);
  const auto a = w.catalog.add_stream("A", 0, 100.0, 10.0);
  const auto b = w.catalog.add_stream("B", 1, 80.0, 10.0);
  w.catalog.set_selectivity(a, b, 0.01);

  advert::Registry registry;
  ExhaustiveOptimizer ex(w.env(&registry));

  query::Query strict;
  strict.id = 1;
  strict.sources = {a, b};
  strict.sink = 9;
  strict.filter_selectivity = {0.1, 1.0};
  query::RateModel strict_rates(w.catalog, strict);
  advert::advertise_deployment(registry, ex.optimize(strict).deployment,
                               strict_rates);

  query::Query broad = strict;
  broad.id = 2;
  broad.filter_selectivity.clear();
  const OptimizeResult res = ex.optimize(broad);
  for (const query::LeafUnit& u : res.deployment.units) {
    EXPECT_FALSE(u.derived)
        << "broad query must not consume the filtered derived stream";
  }
}

TEST(FiltersTest, EngineFiltersMatchAnalyticRates) {
  World w(5);
  const auto a = w.catalog.add_stream("A", 0, 60.0, 50.0);
  const auto b = w.catalog.add_stream("B", 1, 60.0, 50.0);
  w.catalog.set_selectivity(a, b, 0.02);

  query::Query q;
  q.id = 7;
  q.sources = {a, b};
  q.sink = 8;
  q.filter_selectivity = {0.5, 0.25};
  query::RateModel rates(w.catalog, q);

  ExhaustiveOptimizer ex(w.env(nullptr));
  const OptimizeResult res = ex.optimize(q);

  engine::EngineConfig cfg;
  cfg.duration_s = 60.0;
  cfg.window_s = 0.5;
  cfg.poisson = false;
  engine::Simulation sim(w.net, w.rt, w.catalog, cfg, 17);
  sim.deploy(res.deployment, rates);
  sim.run();

  // Analytic: 60*0.5 * 60*0.25 * 0.02 = 9 results/s.
  EXPECT_NEAR(sim.delivered_rate(q.id), 9.0, 2.5);
  EXPECT_NEAR(sim.measured_cost_per_second(), res.actual_cost,
              0.2 * res.actual_cost);
}

TEST(FiltersTest, HierarchicalAlgorithmsHandleFilteredWorkloads) {
  Prng prng(6);
  net::TransitStubParams p;
  p.transit_count = 2;
  p.stub_domains_per_transit = 2;
  p.stub_domain_size = 4;
  const net::Network net = net::make_transit_stub(p, prng);
  const auto rt = net::RoutingTables::build(net);
  Prng hp(7);
  const cluster::Hierarchy hierarchy = cluster::Hierarchy::build(net, rt, 4, hp);

  workload::WorkloadParams wp;
  wp.num_streams = 6;
  wp.min_joins = 2;
  wp.max_joins = 3;
  wp.filter_probability = 0.6;
  Prng wprng(8);
  const workload::Workload wl = workload::make_workload(net, wp, 10, wprng);

  advert::Registry registry;
  OptimizerEnv env;
  env.catalog = &wl.catalog;
  env.network = &net;
  env.routing = &rt;
  env.hierarchy = &hierarchy;
  env.registry = &registry;
  env.reuse = true;
  Session session(env, std::make_unique<TopDownOptimizer>(env));
  for (const query::Query& q : wl.queries) {
    const OptimizeResult r = session.submit(q);
    ASSERT_TRUE(r.feasible) << q.name;
    EXPECT_NO_THROW(query::validate_deployment(r.deployment));
  }
  EXPECT_GT(registry.size(), 0u);
}

}  // namespace
}  // namespace iflow::opt
