#include "advert/registry.h"

#include <gtest/gtest.h>

namespace iflow::advert {
namespace {

DerivedStream make_ds(std::vector<query::StreamId> streams,
                      std::vector<double> filters, net::NodeId loc) {
  DerivedStream ds;
  ds.streams = std::move(streams);
  ds.filters = std::move(filters);
  ds.location = loc;
  ds.bytes_rate = 100.0;
  ds.tuple_rate = 10.0;
  return ds;
}

query::Query make_query(std::vector<query::StreamId> sources,
                        std::vector<double> filters = {}) {
  query::Query q;
  q.sources = std::move(sources);
  q.filter_selectivity = std::move(filters);
  q.sink = 0;
  return q;
}

TEST(RegistryTest, ExactMatchReturnsResidualOne) {
  Registry r;
  r.advertise(make_ds({1, 3}, {1.0, 1.0}, 5));
  const auto matches = r.reusable(make_query({1, 3, 7}), nullptr);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_DOUBLE_EQ(matches[0].residual_filter, 1.0);
  EXPECT_EQ(matches[0].stream->location, 5u);
}

TEST(RegistryTest, SubsetOnlyNeverSuperset) {
  Registry r;
  r.advertise(make_ds({1, 3, 9}, {1.0, 1.0, 1.0}, 5));
  EXPECT_TRUE(r.reusable(make_query({1, 3}), nullptr).empty());
  EXPECT_EQ(r.reusable(make_query({1, 3, 9}), nullptr).size(), 1u);
}

TEST(RegistryTest, ContainmentGivesResidualFilter) {
  // Advertised with weak filters (0.8 on stream 1); query wants 0.2.
  Registry r;
  r.advertise(make_ds({1, 3}, {0.8, 1.0}, 4));
  const auto matches =
      r.reusable(make_query({1, 3}, {0.2, 1.0}), nullptr);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_NEAR(matches[0].residual_filter, 0.25, 1e-12);
}

TEST(RegistryTest, StrongerAdvertisedFiltersAreUnusable) {
  // Advertised with 0.2, query needs 0.8: tuples are missing.
  Registry r;
  r.advertise(make_ds({1, 3}, {0.2, 1.0}, 4));
  EXPECT_TRUE(r.reusable(make_query({1, 3}, {0.8, 1.0}), nullptr).empty());
  // Unfiltered query cannot use a filtered advertisement either.
  EXPECT_TRUE(r.reusable(make_query({1, 3}), nullptr).empty());
}

TEST(RegistryTest, FilteredSingleStreamIsAdvertisable) {
  // A single filtered stream IS a useful derived stream (a pushed-down
  // selection); an unfiltered single stream is just the base stream.
  Registry r;
  r.advertise(make_ds({2}, {0.5}, 6));
  r.advertise(make_ds({3}, {1.0}, 7));
  const auto matches = r.reusable(make_query({2, 3}, {0.5, 1.0}), nullptr);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].stream->streams, std::vector<query::StreamId>{2});
}

TEST(RegistryTest, ScopeFiltersProviders) {
  Registry r;
  r.advertise(make_ds({1, 3}, {1.0, 1.0}, 4));
  r.advertise(make_ds({1, 3}, {1.0, 1.0}, 9));
  const auto all = r.reusable(make_query({1, 3}), nullptr);
  EXPECT_EQ(all.size(), 2u);
  const auto scoped = r.reusable(
      make_query({1, 3}), [](net::NodeId n) { return n < 5; });
  ASSERT_EQ(scoped.size(), 1u);
  EXPECT_EQ(scoped[0].stream->location, 4u);
}

TEST(RegistryTest, DuplicateAdvertisementsIgnored) {
  Registry r;
  r.advertise(make_ds({1, 3}, {0.5, 1.0}, 4));
  r.advertise(make_ds({1, 3}, {0.5, 1.0}, 4));
  EXPECT_EQ(r.size(), 1u);
  // Same streams, different filters: a distinct derived stream.
  r.advertise(make_ds({1, 3}, {0.7, 1.0}, 4));
  EXPECT_EQ(r.size(), 2u);
  // Same streams+filters, different provider: distinct.
  r.advertise(make_ds({1, 3}, {0.5, 1.0}, 8));
  EXPECT_EQ(r.size(), 3u);
}

TEST(RegistryTest, ValidatesAdvertisements) {
  Registry r;
  EXPECT_THROW(r.advertise(make_ds({}, {}, 1)), CheckError);
  EXPECT_THROW(r.advertise(make_ds({3, 1}, {1.0, 1.0}, 1)), CheckError);
  EXPECT_THROW(r.advertise(make_ds({1}, {0.0}, 1)), CheckError);
  EXPECT_THROW(r.advertise(make_ds({1}, {1.0, 1.0}, 1)), CheckError);
}

}  // namespace
}  // namespace iflow::advert
