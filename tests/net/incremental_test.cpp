// Incremental routing repair must be observationally equivalent to a
// from-scratch rebuild after any seeded fail/restore script.
//
// Distances (cost, delay, data-path delay) are compared exactly: retained
// rows were produced by the same Dijkstra the fresh build runs, so any
// difference is a stale-row bug. Paths are compared semantically instead of
// node-by-node — a retained shortest-path tree may break equal-cost ties
// differently from a fresh one, so the checker walks the reported path and
// verifies its edge sums reproduce the reported metrics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include "common/prng.h"
#include "net/gtitm.h"
#include "net/network.h"
#include "net/routing.h"

namespace iflow::net {
namespace {

// Walks rt's reported cost path for (a, b) and checks it is a real usable
// path whose edge sums match the reported cost and data-path delay.
void expect_path_consistent(const Network& net, const RoutingTables& rt,
                            NodeId a, NodeId b) {
  const std::vector<NodeId> path = rt.cost_path(a, b);
  if (!rt.reachable(a, b)) {
    EXPECT_TRUE(path.empty());
    return;
  }
  ASSERT_FALSE(path.empty());
  ASSERT_EQ(path.front(), a);
  ASSERT_EQ(path.back(), b);
  if (a != b) {
    EXPECT_EQ(rt.next_hop(a, b), path[1]);
  }
  double cost = 0.0;
  double delay = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const std::uint32_t li = net.cheapest_usable_link(path[i], path[i + 1]);
    ASSERT_NE(li, kInvalidLink) << "path hop is not a usable adjacency";
    cost += net.links()[li].cost_per_byte;
    delay += net.links()[li].delay_ms;
  }
  EXPECT_NEAR(cost, rt.cost(a, b), 1e-9 * (1.0 + cost));
  EXPECT_NEAR(delay, rt.data_path_delay_ms(a, b), 1e-9 * (1.0 + delay));
}

// Compares an incrementally synced table against a fresh build: exact
// distance equality on all pairs, semantic path equality on a sample.
void expect_equivalent(const Network& net, const RoutingTables& inc) {
  ASSERT_EQ(inc.built_against(), net.version());
  const RoutingTables fresh = RoutingTables::build(net);
  const auto n = static_cast<NodeId>(net.node_count());
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      ASSERT_EQ(inc.cost(a, b), fresh.cost(a, b)) << a << "->" << b;
      ASSERT_EQ(inc.delay_ms(a, b), fresh.delay_ms(a, b)) << a << "->" << b;
      ASSERT_EQ(inc.data_path_delay_ms(a, b), fresh.data_path_delay_ms(a, b))
          << a << "->" << b;
      ASSERT_EQ(inc.reachable(a, b), fresh.reachable(a, b));
    }
    expect_path_consistent(net, inc, a, static_cast<NodeId>((a * 7 + 3) % n));
  }
}

struct Event {
  enum Kind { kFailLink, kRestoreLink, kCrashNode, kRestoreNode } kind;
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
};

// Draws the next applicable fault/repair event. Fail/crash targets are
// checked against the tracked down-sets so every event is a real state
// change (the Network throws on double faults by contract).
Event next_event(const Network& net, Prng& prng,
                 std::vector<std::pair<NodeId, NodeId>>& down_links,
                 std::vector<NodeId>& down_nodes) {
  const auto norm = [](NodeId a, NodeId b) {
    return a < b ? std::pair{a, b} : std::pair{b, a};
  };
  for (;;) {
    const auto roll = prng.uniform_int(0, 99);
    if (roll < 40 || (down_links.empty() && down_nodes.empty())) {
      const Link& l = net.links()[prng.index(net.links().size())];
      const auto key = norm(l.a, l.b);
      if (std::find(down_links.begin(), down_links.end(), key) !=
          down_links.end()) {
        continue;
      }
      down_links.push_back(key);
      return {Event::kFailLink, key.first, key.second};
    }
    if (roll < 55) {
      const auto n = static_cast<NodeId>(prng.index(net.node_count()));
      if (std::find(down_nodes.begin(), down_nodes.end(), n) !=
          down_nodes.end()) {
        continue;
      }
      down_nodes.push_back(n);
      return {Event::kCrashNode, n, kInvalidNode};
    }
    if (roll < 85 && !down_links.empty()) {
      const std::size_t j = prng.index(down_links.size());
      const Event e{Event::kRestoreLink, down_links[j].first,
                    down_links[j].second};
      down_links.erase(down_links.begin() + static_cast<std::ptrdiff_t>(j));
      return e;
    }
    if (!down_nodes.empty()) {
      const std::size_t j = prng.index(down_nodes.size());
      const Event e{Event::kRestoreNode, down_nodes[j], kInvalidNode};
      down_nodes.erase(down_nodes.begin() + static_cast<std::ptrdiff_t>(j));
      return e;
    }
  }
}

void apply(Network& net, const Event& e) {
  switch (e.kind) {
    case Event::kFailLink:
      net.fail_link(e.a, e.b);
      break;
    case Event::kRestoreLink:
      net.restore_link(e.a, e.b);
      break;
    case Event::kCrashNode:
      net.crash_node(e.a);
      break;
    case Event::kRestoreNode:
      net.restore_node(e.a);
      break;
  }
}

void run_script(RoutingMode mode, std::uint64_t seed, int length) {
  Prng prng(seed);
  Network net = make_transit_stub(TransitStubParams{}, prng);
  RoutingOptions opts;
  opts.mode = mode;
  opts.max_cached_rows = net.node_count();  // keep all rows resident
  RoutingTables rt = RoutingTables::build(net, opts);
  std::vector<std::pair<NodeId, NodeId>> down_links;
  std::vector<NodeId> down_nodes;
  for (int i = 0; i < length; ++i) {
    apply(net, next_event(net, prng, down_links, down_nodes));
    rt.sync(net);
    // expect_equivalent touches every pair, which on the sparse tier also
    // re-warms every row — so the next event exercises retention/patching
    // against a fully populated cache.
    expect_equivalent(net, rt);
  }
}

TEST(IncrementalRoutingTest, DenseSyncMatchesRebuildAcrossSeededScripts) {
  for (const std::uint64_t seed : {11u, 29u, 47u}) {
    run_script(RoutingMode::kDense, seed, 20);
  }
}

TEST(IncrementalRoutingTest, SparseSyncMatchesRebuildAcrossSeededScripts) {
  for (const std::uint64_t seed : {13u, 31u, 53u}) {
    run_script(RoutingMode::kSparse, seed, 20);
  }
}

TEST(IncrementalRoutingTest, SparseSyncDropsRowsWhoseTreesCrossedTheLink) {
  // Line graph: every shortest-path tree crosses the middle link, so a
  // failure there invalidates every cached row; the relaxing restore then
  // flushes whatever was cached.
  Network net;
  for (int i = 0; i < 6; ++i) net.add_node();
  for (NodeId i = 0; i + 1 < 6; ++i) net.add_link(i, i + 1, 1.0, 10.0, 1e6);
  RoutingOptions opts;
  opts.mode = RoutingMode::kSparse;
  opts.max_cached_rows = 6;
  RoutingTables rt = RoutingTables::build(net, opts);
  for (NodeId a = 0; a < 6; ++a) rt.cost(a, 0);
  ASSERT_EQ(rt.cached_rows(), 6u);

  net.fail_link(2, 3);
  RoutingSyncStats st = rt.sync(net);
  EXPECT_FALSE(st.full_rebuild);
  EXPECT_FALSE(st.quality_only);
  EXPECT_EQ(st.rows_dropped, 6u);
  EXPECT_EQ(st.rows_retained, 0u);
  EXPECT_EQ(st.rows_patched, 0u);
  expect_equivalent(net, rt);

  ASSERT_GT(rt.cached_rows(), 0u);  // re-warmed by the equivalence sweep
  net.restore_link(2, 3);
  st = rt.sync(net);
  EXPECT_EQ(st.rows_retained, 0u);
  EXPECT_EQ(rt.cached_rows(), 0u);
  expect_equivalent(net, rt);
}

TEST(IncrementalRoutingTest, SparseSyncRetainsRowsOffTheFailedLink) {
  // Triangle with one expensive-and-slow edge (0, 2): neither the cost nor
  // the delay shortest-path tree uses it, so failing it must retain every
  // cached row unchanged.
  Network net;
  for (int i = 0; i < 3; ++i) net.add_node();
  net.add_link(0, 1, 1.0, 10.0, 1e6);
  net.add_link(1, 2, 1.0, 10.0, 1e6);
  net.add_link(0, 2, 5.0, 50.0, 1e6);
  RoutingOptions opts;
  opts.mode = RoutingMode::kSparse;
  opts.max_cached_rows = 3;
  RoutingTables rt = RoutingTables::build(net, opts);
  for (NodeId a = 0; a < 3; ++a) rt.cost(a, 0);
  ASSERT_EQ(rt.cached_rows(), 3u);

  net.fail_link(0, 2);
  const RoutingSyncStats st = rt.sync(net);
  EXPECT_FALSE(st.full_rebuild);
  EXPECT_EQ(st.rows_retained, 3u);
  EXPECT_EQ(st.rows_dropped, 0u);
  EXPECT_EQ(rt.cached_rows(), 3u);
  expect_equivalent(net, rt);
}

TEST(IncrementalRoutingTest, JournalTruncationBoundaryIsExact) {
  // Pins the overflow boundary of the bounded mutation journal: at exactly
  // capacity every entry is retained and a version-0 reader replays the
  // whole history; one entry past it the oldest is dropped, version-0
  // readers get nullopt, and the replay window is exactly capacity wide.
  constexpr std::size_t kCapacity = 4096;  // network.cpp kMutationLogCapacity
  Network net;
  for (int i = 0; i < 3; ++i) net.add_node();
  net.add_link(0, 1, 1.0, 10.0, 1e6);
  net.add_link(1, 2, 1.0, 10.0, 1e6);
  RoutingTables rt = RoutingTables::build(net);

  // Quality-only churn up to EXACTLY capacity (the two add_link entries
  // already sit in the journal).
  auto logged = net.mutations_since(0);
  ASSERT_TRUE(logged.has_value());
  for (std::size_t i = logged->size(); i < kCapacity; ++i) {
    net.degrade_link(0, 1,
                     Degradation{1.0 + 0.001 * static_cast<double>(i % 7),
                                 0.0, 0.0});
  }
  logged = net.mutations_since(0);
  ASSERT_TRUE(logged.has_value());
  EXPECT_EQ(logged->size(), kCapacity);

  // Inside the window the whole batch replays as quality-only patches: no
  // rebuild (degradations never change link costs, so routes stand).
  RoutingSyncStats st = rt.sync(net);
  EXPECT_FALSE(st.full_rebuild);
  EXPECT_TRUE(st.quality_only);
  const double cost_before = rt.cost(0, 2);

  // One more entry crosses the boundary: the version-0 reader falls off,
  // the retained window is exactly kCapacity entries starting past the
  // dropped one, and the just-synced table still patches incrementally.
  net.degrade_link(1, 2, Degradation{2.0, 0.1, 0.0});
  EXPECT_FALSE(net.mutations_since(0).has_value());
  const auto tail = net.mutations_since(1);
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(tail->size(), kCapacity);
  st = rt.sync(net);
  EXPECT_FALSE(st.full_rebuild);
  EXPECT_TRUE(st.quality_only);
  EXPECT_EQ(rt.cost(0, 2), cost_before);

  // Slide the window entirely past the table's sync point: replay is no
  // longer possible and sync must fall back to a full rebuild.
  for (std::size_t i = 0; i <= kCapacity; ++i) {
    net.degrade_link(0, 1, Degradation{});
  }
  st = rt.sync(net);
  EXPECT_TRUE(st.full_rebuild);
  expect_equivalent(net, rt);
}

TEST(IncrementalRoutingTest, SparseSyncSurvivesLogTruncation) {
  // More mutations than the journal holds: sync must fall back to a clean
  // reset instead of applying a partial batch.
  Prng prng(17);
  Network net = make_transit_stub(TransitStubParams{}, prng);
  RoutingOptions opts;
  opts.mode = RoutingMode::kSparse;
  RoutingTables rt = RoutingTables::build(net, opts);
  rt.cost(0, 1);
  const Link l = net.links()[3];
  for (int i = 0; i < 3000; ++i) {
    net.fail_link(l.a, l.b);
    net.restore_link(l.a, l.b);
  }
  const RoutingSyncStats st = rt.sync(net);
  EXPECT_TRUE(st.full_rebuild);
  expect_equivalent(net, rt);
}

TEST(IncrementalRoutingTest, CrashedLeafNodeRowsArePatchedInPlace) {
  // A line graph: crashing an endpoint leaves every other node's shortest-
  // path trees structurally intact, so cached rows are patched (entries for
  // the dead node set to infinity) instead of recomputed.
  Network net;
  for (int i = 0; i < 6; ++i) net.add_node();
  for (NodeId i = 0; i + 1 < 6; ++i) net.add_link(i, i + 1, 1.0, 10.0, 1e6);
  RoutingOptions opts;
  opts.mode = RoutingMode::kSparse;
  opts.max_cached_rows = 6;
  RoutingTables rt = RoutingTables::build(net, opts);
  for (NodeId a = 0; a < 5; ++a) rt.cost(a, 0);  // warm rows 0..4
  net.crash_node(5);
  const RoutingSyncStats st = rt.sync(net);
  EXPECT_EQ(st.rows_dropped, 0u);
  EXPECT_EQ(st.rows_patched, 5u);
  EXPECT_FALSE(rt.reachable(0, 5));
  EXPECT_TRUE(std::isinf(rt.cost(2, 5)));
  expect_equivalent(net, rt);
}

}  // namespace
}  // namespace iflow::net
