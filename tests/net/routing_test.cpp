#include "net/routing.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/prng.h"
#include "net/gtitm.h"

namespace iflow::net {
namespace {

Network make_line(int n, double cost = 1.0, double delay = 10.0) {
  Network net;
  for (int i = 0; i < n; ++i) net.add_node();
  for (int i = 0; i + 1 < n; ++i) {
    net.add_link(static_cast<NodeId>(i), static_cast<NodeId>(i + 1), cost,
                 delay, 1e6);
  }
  return net;
}

TEST(RoutingTest, LineDistancesAreAdditive) {
  Network net = make_line(5, 2.0, 10.0);
  const RoutingTables rt = RoutingTables::build(net);
  EXPECT_DOUBLE_EQ(rt.cost(0, 4), 8.0);
  EXPECT_DOUBLE_EQ(rt.cost(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(rt.delay_ms(0, 4), 40.0);
  EXPECT_DOUBLE_EQ(rt.data_path_delay_ms(0, 4), 40.0);
}

TEST(RoutingTest, PicksCheaperMultiHopPath) {
  // Direct expensive link vs two cheap hops.
  Network net;
  for (int i = 0; i < 3; ++i) net.add_node();
  net.add_link(0, 2, 10.0, 1.0, 1e6);
  net.add_link(0, 1, 1.0, 30.0, 1e6);
  net.add_link(1, 2, 1.0, 30.0, 1e6);
  const RoutingTables rt = RoutingTables::build(net);
  EXPECT_DOUBLE_EQ(rt.cost(0, 2), 2.0);
  // The data path (cost-optimal) has 60 ms of latency even though a 1 ms
  // path exists; the control plane uses the delay-optimal one.
  EXPECT_DOUBLE_EQ(rt.data_path_delay_ms(0, 2), 60.0);
  EXPECT_DOUBLE_EQ(rt.delay_ms(0, 2), 1.0);
}

TEST(RoutingTest, NextHopAndPathFollowCostMetric) {
  Network net;
  for (int i = 0; i < 3; ++i) net.add_node();
  net.add_link(0, 2, 10.0, 1.0, 1e6);
  net.add_link(0, 1, 1.0, 30.0, 1e6);
  net.add_link(1, 2, 1.0, 30.0, 1e6);
  const RoutingTables rt = RoutingTables::build(net);
  EXPECT_EQ(rt.next_hop(0, 2), 1u);
  const std::vector<NodeId> path = rt.cost_path(0, 2);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], 0u);
  EXPECT_EQ(path[1], 1u);
  EXPECT_EQ(path[2], 2u);
}

TEST(RoutingTest, SymmetricOnUndirectedGraphs) {
  Prng prng(42);
  const Network net = make_transit_stub(TransitStubParams{}, prng);
  const RoutingTables rt = RoutingTables::build(net);
  for (NodeId a = 0; a < 20; ++a) {
    for (NodeId b = 0; b < 20; ++b) {
      EXPECT_DOUBLE_EQ(rt.cost(a, b), rt.cost(b, a));
      EXPECT_DOUBLE_EQ(rt.delay_ms(a, b), rt.delay_ms(b, a));
    }
  }
}

TEST(RoutingTest, TriangleInequalityHolds) {
  Prng prng(7);
  const Network net = make_transit_stub(TransitStubParams{}, prng);
  const RoutingTables rt = RoutingTables::build(net);
  const std::size_t n = std::min<std::size_t>(net.node_count(), 25);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      for (NodeId c = 0; c < n; ++c) {
        EXPECT_LE(rt.cost(a, c), rt.cost(a, b) + rt.cost(b, c) + 1e-9);
      }
    }
  }
}

// Per-byte cost of the cheapest (a, b) physical link — the one Dijkstra
// relaxes when the generator emits parallel links. Fails the test if absent.
double link_cost(const Network& net, NodeId a, NodeId b) {
  double best = std::numeric_limits<double>::infinity();
  for (const std::uint32_t li : net.incident(a)) {
    const Link& l = net.links()[li];
    if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) {
      best = std::min(best, l.cost_per_byte);
    }
  }
  EXPECT_TRUE(std::isfinite(best)) << "no link between " << a << " and " << b;
  return best;
}

TEST(RoutingTest, PathEdgeCostsSumToCostMatrix) {
  Prng prng(55);
  const Network net = make_transit_stub(TransitStubParams{}, prng);
  const RoutingTables rt = RoutingTables::build(net);
  const NodeId n = static_cast<NodeId>(std::min<std::size_t>(net.node_count(), 24));
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      const std::vector<NodeId> path = rt.cost_path(a, b);
      ASSERT_GE(path.size(), 1u);
      EXPECT_EQ(path.front(), a);
      EXPECT_EQ(path.back(), b);
      // The walk may sum the edges in a different order than Dijkstra's
      // relaxation did, so allow rounding slack but nothing more.
      double sum = 0.0;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        sum += link_cost(net, path[i], path[i + 1]);
      }
      EXPECT_NEAR(sum, rt.cost(a, b), 1e-12 * (1.0 + rt.cost(a, b)))
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(RoutingTest, NextHopWalkReconstructsCostPath) {
  Prng prng(56);
  const Network net = make_transit_stub(TransitStubParams{}, prng);
  const RoutingTables rt = RoutingTables::build(net);
  const NodeId n = static_cast<NodeId>(std::min<std::size_t>(net.node_count(), 24));
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      std::vector<NodeId> walked = {a};
      while (walked.back() != b) {
        walked.push_back(rt.next_hop(walked.back(), b));
        ASSERT_LE(walked.size(), net.node_count()) << "next_hop cycle";
      }
      EXPECT_EQ(walked, rt.cost_path(a, b)) << "a=" << a << " b=" << b;
    }
  }
}

TEST(RoutingTest, DisconnectedPairsCostInfinity) {
  // Two isolated nodes: routing must build (no throw) and report the pair
  // as unreachable, symmetrically, with self-distances intact.
  Network net;
  net.add_node();
  net.add_node();
  const RoutingTables rt = RoutingTables::build(net);
  EXPECT_TRUE(std::isinf(rt.cost(0, 1)));
  EXPECT_TRUE(std::isinf(rt.cost(1, 0)));
  EXPECT_TRUE(std::isinf(rt.delay_ms(0, 1)));
  EXPECT_DOUBLE_EQ(rt.cost(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(rt.cost(1, 1), 0.0);
  EXPECT_FALSE(rt.reachable(0, 1));
  EXPECT_TRUE(rt.reachable(0, 0));
}

TEST(RoutingTest, UnreachablePathIsEmptyAndNextHopInvalid) {
  // Two disjoint components; cross-component queries return structured
  // "no route" answers, never garbage or a hang.
  Network net;
  for (int i = 0; i < 4; ++i) net.add_node();
  net.add_link(0, 1, 1.0, 1.0, 1e6);
  net.add_link(2, 3, 1.0, 1.0, 1e6);
  const RoutingTables rt = RoutingTables::build(net);
  EXPECT_TRUE(rt.cost_path(0, 2).empty());
  EXPECT_TRUE(rt.cost_path(3, 1).empty());
  EXPECT_EQ(rt.next_hop(0, 2), kInvalidNode);
  EXPECT_EQ(rt.next_hop(3, 1), kInvalidNode);
  // Within-component answers are unaffected.
  EXPECT_DOUBLE_EQ(rt.cost(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(rt.cost(2, 3), 1.0);
  const std::vector<NodeId> path = rt.cost_path(2, 3);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], 2u);
  EXPECT_EQ(path[1], 3u);
}

TEST(RoutingTest, FailedLinkSeversAndRestoreHeals) {
  Network net = make_line(3, 2.0, 10.0);
  net.fail_link(1, 2);
  const RoutingTables cut = RoutingTables::build(net);
  EXPECT_FALSE(cut.reachable(0, 2));
  EXPECT_TRUE(cut.reachable(0, 1));
  net.restore_link(1, 2);
  const RoutingTables healed = RoutingTables::build(net);
  EXPECT_DOUBLE_EQ(healed.cost(0, 2), 4.0);
}

TEST(RoutingTest, CrashedNodeRoutesAroundOrPartitions) {
  // Square: crashing a corner reroutes traffic the long way; self-distance
  // of the dead node stays 0 but nothing can reach it.
  Network net;
  for (int i = 0; i < 4; ++i) net.add_node();
  net.add_link(0, 1, 1.0, 1.0, 1e6);
  net.add_link(1, 2, 1.0, 1.0, 1e6);
  net.add_link(2, 3, 1.0, 1.0, 1e6);
  net.add_link(3, 0, 1.0, 1.0, 1e6);
  net.crash_node(1);
  const RoutingTables rt = RoutingTables::build(net);
  EXPECT_DOUBLE_EQ(rt.cost(0, 2), 2.0);  // via 3, not via dead 1
  EXPECT_FALSE(rt.reachable(0, 1));
  EXPECT_FALSE(rt.reachable(2, 1));
  EXPECT_DOUBLE_EQ(rt.cost(1, 1), 0.0);
  net.restore_node(1);
  const RoutingTables healed = RoutingTables::build(net);
  EXPECT_DOUBLE_EQ(healed.cost(0, 2), 2.0);
  EXPECT_TRUE(healed.reachable(0, 1));
}

TEST(RoutingTest, CrashDisablesParallelLinksButKeepsAdminState) {
  // A crashed endpoint makes even administratively-up links unusable;
  // restoring the node brings exactly the still-up links back.
  Network net;
  net.add_node();
  net.add_node();
  net.add_node();
  net.add_link(0, 1, 1.0, 1.0, 1e6);
  net.add_link(1, 2, 1.0, 1.0, 1e6);
  net.add_link(0, 2, 5.0, 1.0, 1e6);
  net.crash_node(1);
  const RoutingTables rt = RoutingTables::build(net);
  EXPECT_DOUBLE_EQ(rt.cost(0, 2), 5.0);  // forced onto the expensive edge
  net.fail_link(0, 2);
  const RoutingTables cut = RoutingTables::build(net);
  EXPECT_FALSE(cut.reachable(0, 2));
  net.restore_node(1);
  const RoutingTables partial = RoutingTables::build(net);
  EXPECT_DOUBLE_EQ(partial.cost(0, 2), 2.0);  // via 1; (0,2) still down
  net.restore_link(0, 2);
  const RoutingTables healed = RoutingTables::build(net);
  EXPECT_DOUBLE_EQ(healed.cost(0, 2), 2.0);
}

TEST(RoutingTest, RecordsBuildVersion) {
  Network net = make_line(3);
  const RoutingTables rt = RoutingTables::build(net);
  EXPECT_EQ(rt.built_against(), net.version());
  net.set_link_cost(0, 1, 9.0);
  EXPECT_NE(rt.built_against(), net.version());
}

TEST(RoutingTest, CostPathEdgeCases) {
  // Self-loop, single-hop, and partitioned pairs pin the reconstruction
  // contract on both tiers.
  Network net;
  for (int i = 0; i < 4; ++i) net.add_node();
  net.add_link(0, 1, 1.0, 1.0, 1e6);  // 2 and 3 stay isolated
  net.add_link(2, 3, 1.0, 1.0, 1e6);
  for (const RoutingMode mode : {RoutingMode::kDense, RoutingMode::kSparse}) {
    RoutingOptions opts;
    opts.mode = mode;
    const RoutingTables rt = RoutingTables::build(net, opts);
    // Self-loop: the path is the node itself.
    EXPECT_EQ(rt.cost_path(1, 1), (std::vector<NodeId>{1}));
    EXPECT_EQ(rt.cost_path(3, 3), (std::vector<NodeId>{3}));
    // Single hop.
    EXPECT_EQ(rt.cost_path(0, 1), (std::vector<NodeId>{0, 1}));
    EXPECT_EQ(rt.cost_path(1, 0), (std::vector<NodeId>{1, 0}));
    // Partitioned pair: empty, never garbage.
    EXPECT_TRUE(rt.cost_path(0, 2).empty());
    EXPECT_TRUE(rt.cost_path(2, 1).empty());
  }
}

TEST(RoutingTest, SparseTierMatchesDenseBitwise) {
  // Both tiers run the identical per-source Dijkstra, so every query must
  // agree bit for bit — including infinities and next hops.
  Prng prng(91);
  const Network net = make_transit_stub(TransitStubParams{}, prng);
  const RoutingTables dense = RoutingTables::build(net);
  RoutingOptions opts;
  opts.mode = RoutingMode::kSparse;
  opts.max_cached_rows = 8;  // force eviction + recomputation along the way
  const RoutingTables sparse = RoutingTables::build(net, opts);
  ASSERT_TRUE(sparse.sparse());
  ASSERT_FALSE(dense.sparse());
  const auto n = static_cast<NodeId>(net.node_count());
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      ASSERT_EQ(dense.cost(a, b), sparse.cost(a, b)) << a << "," << b;
      ASSERT_EQ(dense.delay_ms(a, b), sparse.delay_ms(a, b));
      ASSERT_EQ(dense.data_path_delay_ms(a, b),
                sparse.data_path_delay_ms(a, b));
      if (a != b) {
        ASSERT_EQ(dense.next_hop(a, b), sparse.next_hop(a, b));
      }
      ASSERT_EQ(dense.cost_path(a, b), sparse.cost_path(a, b));
    }
  }
}

TEST(RoutingTest, SparseFillCostsMatchesScalarQueries) {
  Prng prng(92);
  const Network net = make_transit_stub(TransitStubParams{}, prng);
  RoutingOptions opts;
  opts.mode = RoutingMode::kSparse;
  const RoutingTables rt = RoutingTables::build(net);
  const RoutingTables sparse = RoutingTables::build(net, opts);
  std::vector<NodeId> dsts;
  for (NodeId b = 0; b < net.node_count(); b += 3) dsts.push_back(b);
  std::vector<double> out(dsts.size());
  sparse.fill_costs(5, dsts.data(), dsts.size(), out.data());
  for (std::size_t i = 0; i < dsts.size(); ++i) {
    EXPECT_EQ(out[i], rt.cost(5, dsts[i]));
  }
}

TEST(RoutingTest, SparseCacheHonoursRowCapAndTracksPeak) {
  Prng prng(93);
  const Network net = make_transit_stub(TransitStubParams{}, prng);
  RoutingOptions opts;
  opts.mode = RoutingMode::kSparse;
  opts.max_cached_rows = 4;
  const RoutingTables rt = RoutingTables::build(net, opts);
  EXPECT_EQ(rt.cached_rows(), 0u);
  EXPECT_EQ(rt.memory_bytes(), 0u);
  for (NodeId a = 0; a < 10; ++a) rt.cost(a, 0);
  EXPECT_LE(rt.cached_rows(), 4u);
  EXPECT_GT(rt.cached_rows(), 0u);
  EXPECT_EQ(rt.peak_memory_bytes(),
            rt.memory_bytes() / rt.cached_rows() * 4u);
  // Far below the dense footprint.
  EXPECT_LT(rt.peak_memory_bytes(),
            RoutingTables::dense_equivalent_bytes(net.node_count()));
}

TEST(RoutingTest, AutoModePicksTierByNodeCount) {
  Network small = make_line(4);
  EXPECT_FALSE(RoutingTables::build(small).sparse());
  RoutingOptions opts;
  opts.dense_node_limit = 3;
  EXPECT_TRUE(RoutingTables::build(small, opts).sparse());
}

TEST(RoutingTest, SyncQualityOnlyBatchIsFree) {
  Network net = make_line(4);
  for (const RoutingMode mode : {RoutingMode::kDense, RoutingMode::kSparse}) {
    RoutingOptions opts;
    opts.mode = mode;
    RoutingTables rt = RoutingTables::build(net, opts);
    rt.cost(0, 3);  // populate a row on the sparse tier
    net.set_link_loss(0, 1, 0.2);
    net.set_link_jitter(1, 2, 3.0);
    const RoutingSyncStats st = rt.sync(net);
    EXPECT_TRUE(st.quality_only);
    EXPECT_FALSE(st.full_rebuild);
    EXPECT_EQ(rt.built_against(), net.version());
    EXPECT_DOUBLE_EQ(rt.cost(0, 3), 3.0);
    net.set_link_loss(0, 1, 0.0);  // reset for the next tier's pass
    net.set_link_jitter(1, 2, 0.0);
  }
}

TEST(RoutingTest, SparseQueryAfterMutationWithoutSyncThrows) {
  Network net = make_line(4);
  RoutingOptions opts;
  opts.mode = RoutingMode::kSparse;
  const RoutingTables rt = RoutingTables::build(net, opts);
  rt.cost(0, 3);
  net.fail_link(0, 1);
  // Cached row reads would silently mix versions; a fresh row CHECKs.
  EXPECT_THROW(rt.cost(1, 2), CheckError);
}

}  // namespace
}  // namespace iflow::net
