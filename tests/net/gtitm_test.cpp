#include "net/gtitm.h"

#include <gtest/gtest.h>

#include "net/routing.h"

namespace iflow::net {
namespace {

TEST(GtItmTest, DefaultShapeMatchesPaperConfiguration) {
  Prng prng(1);
  const TransitStubParams p;
  const Network net = make_transit_stub(p, prng);
  EXPECT_EQ(static_cast<int>(net.node_count()), p.total_nodes());
  EXPECT_EQ(p.total_nodes(), 4 + 4 * 4 * 8);
  EXPECT_TRUE(net.connected());
  int transit = 0;
  for (NodeId n = 0; n < net.node_count(); ++n) {
    if (net.kind(n) == NodeKind::kTransit) ++transit;
  }
  EXPECT_EQ(transit, 4);
}

TEST(GtItmTest, StubLinksCheaperThanTransitLinks) {
  Prng prng(2);
  const TransitStubParams p;
  const Network net = make_transit_stub(p, prng);
  double max_stub = 0.0;
  double min_transit = 1e18;
  for (const Link& l : net.links()) {
    const bool a_transit = net.kind(l.a) == NodeKind::kTransit;
    const bool b_transit = net.kind(l.b) == NodeKind::kTransit;
    if (a_transit && b_transit) {
      min_transit = std::min(min_transit, l.cost_per_byte);
    } else if (!a_transit && !b_transit) {
      max_stub = std::max(max_stub, l.cost_per_byte);
    }
  }
  EXPECT_LT(max_stub, min_transit);
}

TEST(GtItmTest, DelaysWithinConfiguredRange) {
  Prng prng(3);
  TransitStubParams p;
  p.delay_min_ms = 1.0;
  p.delay_max_ms = 60.0;
  const Network net = make_transit_stub(p, prng);
  for (const Link& l : net.links()) {
    EXPECT_GE(l.delay_ms, 1.0);
    EXPECT_LE(l.delay_ms, 60.0);
  }
}

TEST(GtItmTest, DeterministicGivenSeed) {
  Prng a(99);
  Prng b(99);
  const Network na = make_transit_stub(TransitStubParams{}, a);
  const Network nb = make_transit_stub(TransitStubParams{}, b);
  ASSERT_EQ(na.link_count(), nb.link_count());
  for (std::size_t i = 0; i < na.link_count(); ++i) {
    EXPECT_EQ(na.links()[i].a, nb.links()[i].a);
    EXPECT_EQ(na.links()[i].b, nb.links()[i].b);
    EXPECT_DOUBLE_EQ(na.links()[i].cost_per_byte, nb.links()[i].cost_per_byte);
  }
}

TEST(GtItmTest, ScaleToApproximatesTargets) {
  for (int target : {64, 128, 256, 512, 1024}) {
    const TransitStubParams p = scale_to(target);
    const double ratio =
        static_cast<double>(p.total_nodes()) / static_cast<double>(target);
    EXPECT_GT(ratio, 0.7) << "target " << target;
    EXPECT_LT(ratio, 1.35) << "target " << target;
    Prng prng(static_cast<std::uint64_t>(target));
    const Network net = make_transit_stub(p, prng);
    EXPECT_TRUE(net.connected());
  }
}

TEST(GtItmTest, SmallDegenerateShapesStillConnect) {
  Prng prng(5);
  TransitStubParams p;
  p.transit_count = 1;
  p.stub_domains_per_transit = 1;
  p.stub_domain_size = 1;
  const Network net = make_transit_stub(p, prng);
  EXPECT_EQ(net.node_count(), 2u);
  EXPECT_TRUE(net.connected());
  EXPECT_NO_THROW(RoutingTables::build(net));
}

}  // namespace
}  // namespace iflow::net
