#include "net/network.h"

#include <gtest/gtest.h>

namespace iflow::net {
namespace {

Network make_triangle() {
  Network n;
  const NodeId a = n.add_node();
  const NodeId b = n.add_node();
  const NodeId c = n.add_node();
  n.add_link(a, b, 1.0, 5.0, 1e6);
  n.add_link(b, c, 2.0, 5.0, 1e6);
  n.add_link(a, c, 10.0, 5.0, 1e6);
  return n;
}

TEST(NetworkTest, AddNodesAssignsDenseIds) {
  Network n;
  EXPECT_EQ(n.add_node(), 0u);
  EXPECT_EQ(n.add_node(), 1u);
  EXPECT_EQ(n.add_node(NodeKind::kTransit), 2u);
  EXPECT_EQ(n.node_count(), 3u);
  EXPECT_EQ(n.kind(2), NodeKind::kTransit);
  EXPECT_EQ(n.kind(0), NodeKind::kStub);
}

TEST(NetworkTest, LinksAreUndirectedAndIncident) {
  Network n = make_triangle();
  EXPECT_EQ(n.link_count(), 3u);
  EXPECT_EQ(n.incident(0).size(), 2u);
  EXPECT_EQ(n.incident(1).size(), 2u);
  EXPECT_EQ(n.incident(2).size(), 2u);
}

TEST(NetworkTest, RejectsSelfLinksAndBadEndpoints) {
  Network n;
  n.add_node();
  n.add_node();
  EXPECT_THROW(n.add_link(0, 0, 1.0, 1.0, 1e6), CheckError);
  EXPECT_THROW(n.add_link(0, 7, 1.0, 1.0, 1e6), CheckError);
  EXPECT_THROW(n.add_link(0, 1, 0.0, 1.0, 1e6), CheckError);
  EXPECT_THROW(n.add_link(0, 1, 1.0, -1.0, 1e6), CheckError);
  EXPECT_THROW(n.add_link(0, 1, 1.0, 1.0, 0.0), CheckError);
}

TEST(NetworkTest, SetLinkCostUpdatesEitherDirection) {
  Network n = make_triangle();
  n.set_link_cost(1, 0, 7.5);
  bool found = false;
  for (const Link& l : n.links()) {
    if ((l.a == 0 && l.b == 1) || (l.a == 1 && l.b == 0)) {
      EXPECT_DOUBLE_EQ(l.cost_per_byte, 7.5);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_THROW(n.set_link_cost(0, 0, 1.0), CheckError);
}

TEST(NetworkTest, VersionBumpsOnMutation) {
  Network n = make_triangle();
  const auto v = n.version();
  n.set_link_cost(0, 1, 3.0);
  EXPECT_GT(n.version(), v);
}

TEST(NetworkTest, ConnectivityDetection) {
  Network n = make_triangle();
  EXPECT_TRUE(n.connected());
  n.add_node();  // isolated
  EXPECT_FALSE(n.connected());
  Network empty;
  EXPECT_TRUE(empty.connected());
}

TEST(NetworkTest, LinkFaultTogglesUsabilityAndBumpsVersion) {
  Network n = make_triangle();
  const auto v = n.version();
  n.fail_link(0, 1);
  EXPECT_GT(n.version(), v);
  EXPECT_FALSE(n.link_up(0));
  EXPECT_FALSE(n.usable(0));
  EXPECT_TRUE(n.usable(1));
  EXPECT_EQ(n.cheapest_usable_link(0, 1), kInvalidLink);
  // Double-fail and restore-of-up are programming errors.
  EXPECT_THROW(n.fail_link(0, 1), CheckError);
  EXPECT_THROW(n.restore_link(1, 2), CheckError);
  n.restore_link(0, 1);
  EXPECT_TRUE(n.usable(0));
  EXPECT_EQ(n.cheapest_usable_link(0, 1), 0u);
}

TEST(NetworkTest, CrashMakesIncidentLinksUnusableWithoutDowningThem) {
  Network n = make_triangle();
  n.crash_node(1);
  EXPECT_FALSE(n.node_alive(1));
  // Links (0,1) and (1,2) are administratively up but unusable.
  EXPECT_TRUE(n.link_up(0));
  EXPECT_FALSE(n.usable(0));
  EXPECT_TRUE(n.link_up(1));
  EXPECT_FALSE(n.usable(1));
  EXPECT_TRUE(n.usable(2));  // (0,2) untouched
  EXPECT_THROW(n.crash_node(1), CheckError);
  n.restore_node(1);
  EXPECT_TRUE(n.node_alive(1));
  EXPECT_TRUE(n.usable(0));
  EXPECT_TRUE(n.usable(1));
  EXPECT_THROW(n.restore_node(1), CheckError);
}

TEST(NetworkTest, RestoreAfterCrashKeepsAdministrativelyDownLinks) {
  Network n = make_triangle();
  n.fail_link(0, 1);
  n.crash_node(1);
  n.restore_node(1);
  EXPECT_FALSE(n.usable(0));  // failed before the crash, stays down
  EXPECT_TRUE(n.usable(1));   // (1,2) came back with the node
}

TEST(NetworkTest, ConnectivityIgnoresDeadNodes) {
  Network n = make_triangle();
  n.add_node();           // isolated → disconnected
  EXPECT_FALSE(n.connected());
  n.crash_node(3);        // dead nodes do not count against connectivity
  EXPECT_TRUE(n.connected());
  n.crash_node(1);        // triangle minus a corner is still connected
  EXPECT_TRUE(n.connected());
  n.fail_link(0, 2);      // now 0 and 2 are cut off from each other
  EXPECT_FALSE(n.connected());
}

}  // namespace
}  // namespace iflow::net
