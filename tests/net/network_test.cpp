#include "net/network.h"

#include <gtest/gtest.h>

namespace iflow::net {
namespace {

Network make_triangle() {
  Network n;
  const NodeId a = n.add_node();
  const NodeId b = n.add_node();
  const NodeId c = n.add_node();
  n.add_link(a, b, 1.0, 5.0, 1e6);
  n.add_link(b, c, 2.0, 5.0, 1e6);
  n.add_link(a, c, 10.0, 5.0, 1e6);
  return n;
}

TEST(NetworkTest, AddNodesAssignsDenseIds) {
  Network n;
  EXPECT_EQ(n.add_node(), 0u);
  EXPECT_EQ(n.add_node(), 1u);
  EXPECT_EQ(n.add_node(NodeKind::kTransit), 2u);
  EXPECT_EQ(n.node_count(), 3u);
  EXPECT_EQ(n.kind(2), NodeKind::kTransit);
  EXPECT_EQ(n.kind(0), NodeKind::kStub);
}

TEST(NetworkTest, LinksAreUndirectedAndIncident) {
  Network n = make_triangle();
  EXPECT_EQ(n.link_count(), 3u);
  EXPECT_EQ(n.incident(0).size(), 2u);
  EXPECT_EQ(n.incident(1).size(), 2u);
  EXPECT_EQ(n.incident(2).size(), 2u);
}

TEST(NetworkTest, RejectsSelfLinksAndBadEndpoints) {
  Network n;
  n.add_node();
  n.add_node();
  EXPECT_THROW(n.add_link(0, 0, 1.0, 1.0, 1e6), CheckError);
  EXPECT_THROW(n.add_link(0, 7, 1.0, 1.0, 1e6), CheckError);
  EXPECT_THROW(n.add_link(0, 1, 0.0, 1.0, 1e6), CheckError);
  EXPECT_THROW(n.add_link(0, 1, 1.0, -1.0, 1e6), CheckError);
  EXPECT_THROW(n.add_link(0, 1, 1.0, 1.0, 0.0), CheckError);
}

TEST(NetworkTest, SetLinkCostUpdatesEitherDirection) {
  Network n = make_triangle();
  n.set_link_cost(1, 0, 7.5);
  bool found = false;
  for (const Link& l : n.links()) {
    if ((l.a == 0 && l.b == 1) || (l.a == 1 && l.b == 0)) {
      EXPECT_DOUBLE_EQ(l.cost_per_byte, 7.5);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_THROW(n.set_link_cost(0, 0, 1.0), CheckError);
}

TEST(NetworkTest, VersionBumpsOnMutation) {
  Network n = make_triangle();
  const auto v = n.version();
  n.set_link_cost(0, 1, 3.0);
  EXPECT_GT(n.version(), v);
}

TEST(NetworkTest, ConnectivityDetection) {
  Network n = make_triangle();
  EXPECT_TRUE(n.connected());
  n.add_node();  // isolated
  EXPECT_FALSE(n.connected());
  Network empty;
  EXPECT_TRUE(empty.connected());
}

}  // namespace
}  // namespace iflow::net
