// Mutation tests for the deployment validator: every invariant is proven to
// fire by corrupting a known-good deployment in exactly the way the
// invariant forbids. Some corruptions unavoidably cascade (e.g. feeding an
// input twice also makes child masks overlap); those assert the presence of
// the targeted code, the surgical ones assert it is the only code reported.
#include "verify/validator.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/hierarchy.h"
#include "net/gtitm.h"
#include "opt/bottom_up.h"
#include "opt/exhaustive.h"
#include "opt/in_network.h"
#include "opt/plan_then_deploy.h"
#include "opt/relaxation.h"
#include "opt/top_down.h"
#include "query/rates.h"

namespace iflow::verify {
namespace {

using query::encode_unit_child;

/// Fixed small world with one K=3 query whose exhaustive deployment (two
/// join ops) is the mutation subject.
struct Fixture {
  net::Network net;
  net::RoutingTables rt;
  cluster::Hierarchy hierarchy;
  query::Catalog catalog;
  query::Query q;
  opt::OptimizerEnv env;
  opt::OptimizeResult good;

  Fixture()
      : net([] {
          Prng prng(41);
          net::TransitStubParams p;
          p.transit_count = 2;
          p.stub_domains_per_transit = 2;
          p.stub_domain_size = 3;
          return net::make_transit_stub(p, prng);
        }()),
        rt(net::RoutingTables::build(net)),
        hierarchy([this] {
          Prng prng(42);
          return cluster::Hierarchy::build(net, rt, 4, prng);
        }()) {
    Prng prng(43);
    for (int i = 0; i < 4; ++i) {  // 4 streams; the query uses the first 3
      catalog.add_stream("S" + std::to_string(i),
                         static_cast<net::NodeId>(prng.index(net.node_count())),
                         prng.uniform(5.0, 50.0), prng.uniform(10.0, 100.0));
    }
    for (query::StreamId a = 0; a < 4; ++a) {
      for (query::StreamId b = a + 1; b < 4; ++b) {
        catalog.set_selectivity(a, b, prng.uniform(0.005, 0.05));
      }
    }
    q.id = 1;
    q.name = "mutation-subject";
    q.sources = {0, 1, 2};
    q.sink = static_cast<net::NodeId>(prng.index(net.node_count()));
    env.catalog = &catalog;
    env.network = &net;
    env.routing = &rt;
    env.hierarchy = &hierarchy;
    env.reuse = false;
    opt::ExhaustiveOptimizer ex(env);
    good = ex.optimize(q);
    EXPECT_TRUE(good.feasible);
    EXPECT_EQ(good.deployment.ops.size(), 2u);
  }

  ValidateOptions opts() const {
    ValidateOptions o;
    o.query = &q;
    return o;
  }

  std::vector<Violation> check(const query::Deployment& d) const {
    return validate(d, env, opts());
  }
};

void expect_only(const std::vector<Violation>& violations,
                 ViolationCode code) {
  ASSERT_FALSE(violations.empty()) << "expected " << to_string(code);
  for (const Violation& v : violations) {
    EXPECT_EQ(v.code, code) << "unexpected [" << to_string(v.code) << "] "
                            << v.detail;
  }
}

TEST(ValidatorTest, GoodDeploymentHasNoViolations) {
  Fixture f;
  ValidateOptions o = f.opts();
  o.planned_cost = f.good.planned_cost;
  EXPECT_TRUE(validate(f.good.deployment, f.env, o).empty());
}

TEST(ValidatorTest, AllSixOptimizersValidateClean) {
  Fixture f;
  opt::ExhaustiveOptimizer ex(f.env);
  opt::TopDownOptimizer td(f.env);
  opt::BottomUpOptimizer bu(f.env);
  opt::PlanThenDeployOptimizer ptd(f.env);
  opt::RelaxationOptimizer relax(f.env, 3);
  opt::InNetworkOptimizer innet(f.env, 4);
  for (opt::Optimizer* alg :
       std::vector<opt::Optimizer*>{&ex, &td, &bu, &ptd, &relax, &innet}) {
    const opt::OptimizeResult r = alg->optimize(f.q);
    ASSERT_TRUE(r.feasible) << alg->name();
    ValidateOptions o = f.opts();
    o.planned_cost = r.planned_cost;
    const auto violations = validate(r.deployment, f.env, o);
    EXPECT_TRUE(violations.empty())
        << alg->name() << ":\n"
        << describe(violations);
  }
}

TEST(ValidatorMutationTest, NoUnits) {
  Fixture f;
  query::Deployment d = f.good.deployment;
  d.units.clear();
  d.ops.clear();
  expect_only(f.check(d), ViolationCode::kNoUnits);
}

TEST(ValidatorMutationTest, EmptyUnitMask) {
  Fixture f;
  query::Deployment d = f.good.deployment;
  d.units[0].mask = 0;
  EXPECT_TRUE(has_violation(f.check(d), ViolationCode::kEmptyUnitMask));
}

TEST(ValidatorMutationTest, OverlappingUnits) {
  Fixture f;
  query::Deployment d = f.good.deployment;
  d.units[1].mask = d.units[0].mask;
  EXPECT_TRUE(has_violation(f.check(d), ViolationCode::kOverlappingUnits));
}

TEST(ValidatorMutationTest, InvalidUnitLocation) {
  Fixture f;
  query::Deployment d = f.good.deployment;
  d.units[0].location =
      static_cast<net::NodeId>(f.net.node_count() + 7);
  expect_only(f.check(d), ViolationCode::kInvalidUnitLocation);
}

TEST(ValidatorMutationTest, NegativeUnitRate) {
  Fixture f;
  query::Deployment d = f.good.deployment;
  d.units[0].bytes_rate = -5.0;
  const auto violations = f.check(d);
  EXPECT_TRUE(has_violation(violations, ViolationCode::kNegativeUnitRate));
  // A negative rate necessarily also drifts from the RateModel.
  EXPECT_TRUE(has_violation(violations, ViolationCode::kUnitRateDrift));
}

TEST(ValidatorMutationTest, ChildOutOfRange) {
  Fixture f;
  query::Deployment d = f.good.deployment;
  d.ops[0].left = encode_unit_child(99);
  expect_only(f.check(d), ViolationCode::kChildOutOfRange);
}

TEST(ValidatorMutationTest, ChildOrderViolation) {
  Fixture f;
  query::Deployment d = f.good.deployment;
  d.ops[0].left = 0;  // op consuming itself: children must precede parents
  expect_only(f.check(d), ViolationCode::kChildOrder);
}

TEST(ValidatorMutationTest, SwappedOpOrder) {
  Fixture f;
  query::Deployment d = f.good.deployment;
  std::swap(d.ops[0], d.ops[1]);  // root first: its op child is now later
  EXPECT_TRUE(has_violation(f.check(d), ViolationCode::kChildOrder));
}

TEST(ValidatorMutationTest, InputConsumedTwiceAndOverlappingChildren) {
  Fixture f;
  query::Deployment d = f.good.deployment;
  // The root joins op 0 with a unit; make it join op 0 with itself.
  query::DeployedOp& root = d.ops.back();
  const bool left_is_op = !query::child_is_unit(root.left);
  (left_is_op ? root.right : root.left) = 0;
  const auto violations = f.check(d);
  EXPECT_TRUE(has_violation(violations, ViolationCode::kInputConsumedTwice));
  EXPECT_TRUE(
      has_violation(violations, ViolationCode::kOverlappingChildMasks));
}

TEST(ValidatorMutationTest, OrphanOp) {
  Fixture f;
  query::Deployment d = f.good.deployment;
  // A duplicate of op 0 inserted before the root feeds nobody.
  d.ops.insert(d.ops.begin() + 1, d.ops[0]);
  // Re-point the root's op child back at the original op 0.
  query::DeployedOp& root = d.ops.back();
  if (!query::child_is_unit(root.left) && root.left == 1) root.left = 0;
  if (!query::child_is_unit(root.right) && root.right == 1) root.right = 0;
  EXPECT_TRUE(has_violation(f.check(d), ViolationCode::kOrphanOp));
}

TEST(ValidatorMutationTest, OpMaskMismatch) {
  Fixture f;
  query::Deployment d = f.good.deployment;
  d.ops[0].mask ^= d.units[0].mask;  // drop/add a source the children carry
  EXPECT_TRUE(has_violation(f.check(d), ViolationCode::kOpMaskMismatch));
}

TEST(ValidatorMutationTest, InvalidOpNode) {
  Fixture f;
  query::Deployment d = f.good.deployment;
  d.ops[0].node = static_cast<net::NodeId>(f.net.node_count() + 1);
  expect_only(f.check(d), ViolationCode::kInvalidOpNode);
}

TEST(ValidatorMutationTest, NonProcessingNodeWithoutFallback) {
  Fixture f;
  // Flat environment (no hierarchy, so no cluster fallback): declare some
  // node hosting no operator as the only processing node.
  opt::OptimizerEnv flat = f.env;
  flat.hierarchy = nullptr;
  net::NodeId bystander = net::kInvalidNode;
  for (net::NodeId n = 0; n < f.net.node_count(); ++n) {
    const bool used = std::any_of(
        f.good.deployment.ops.begin(), f.good.deployment.ops.end(),
        [n](const query::DeployedOp& op) { return op.node == n; });
    if (!used) {
      bystander = n;
      break;
    }
  }
  ASSERT_NE(bystander, net::kInvalidNode);
  flat.processing_nodes = {bystander};
  ValidateOptions o;
  o.query = &f.q;
  expect_only(validate(f.good.deployment, flat, o),
              ViolationCode::kNonProcessingNode);
}

TEST(ValidatorMutationTest, ProcessingFallbackExcusesClusterWithoutNodes) {
  Fixture f;
  // Processing everywhere EXCEPT the level-1 clusters hosting the ops: each
  // op's scope is processing-free, so the documented fallback applies.
  opt::OptimizerEnv restricted = f.env;
  std::vector<char> excluded(f.net.node_count(), 0);
  for (const query::DeployedOp& op : f.good.deployment.ops) {
    const auto& cl =
        f.hierarchy.level(1)[f.hierarchy.cluster_of(op.node, 1)];
    for (net::NodeId m : cl.members) excluded[m] = 1;
  }
  for (net::NodeId n = 0; n < f.net.node_count(); ++n) {
    if (!excluded[n]) restricted.processing_nodes.push_back(n);
  }
  ASSERT_FALSE(restricted.processing_nodes.empty());
  ValidateOptions o;
  o.query = &f.q;
  o.planned_cost = f.good.planned_cost;
  const auto violations = validate(f.good.deployment, restricted, o);
  EXPECT_TRUE(violations.empty()) << describe(violations);
}

TEST(ValidatorMutationTest, RecordedScopesMakeFallbackExact) {
  Fixture f;
  // With recorded per-op scopes (OptimizeResult::op_scopes) the fallback is
  // checked exactly: a non-processing placement passes only inside a scope
  // holding no processing node at all.
  opt::OptimizerEnv flat = f.env;
  flat.hierarchy = nullptr;
  net::NodeId bystander = net::kInvalidNode;
  for (net::NodeId n = 0; n < f.net.node_count(); ++n) {
    const bool used = std::any_of(
        f.good.deployment.ops.begin(), f.good.deployment.ops.end(),
        [n](const query::DeployedOp& op) { return op.node == n; });
    if (!used) {
      bystander = n;
      break;
    }
  }
  ASSERT_NE(bystander, net::kInvalidNode);
  flat.processing_nodes = {bystander};
  ValidateOptions o;
  o.query = &f.q;
  // Processing-free scopes around every op: placements excused.
  std::vector<std::vector<net::NodeId>> scopes;
  for (const query::DeployedOp& op : f.good.deployment.ops) {
    scopes.push_back({op.node});
  }
  o.op_scopes = &scopes;
  const auto clean = validate(f.good.deployment, flat, o);
  EXPECT_FALSE(has_violation(clean, ViolationCode::kNonProcessingNode))
      << describe(clean);
  // A processing node inside op 0's scope voids its excuse.
  scopes[0].push_back(bystander);
  expect_only(validate(f.good.deployment, flat, o),
              ViolationCode::kNonProcessingNode);
  // An op outside its recorded scope is flagged even if the scope itself is
  // processing-free.
  net::NodeId outsider = net::kInvalidNode;
  for (net::NodeId n = 0; n < f.net.node_count(); ++n) {
    if (n != f.good.deployment.ops[0].node && n != bystander) {
      outsider = n;
      break;
    }
  }
  ASSERT_NE(outsider, net::kInvalidNode);
  scopes[0] = {outsider};
  EXPECT_TRUE(has_violation(validate(f.good.deployment, flat, o),
                            ViolationCode::kNonProcessingNode));
}

TEST(ValidatorMutationTest, RootNotCovering) {
  Fixture f;
  query::Deployment d = f.good.deployment;
  d.ops.pop_back();  // the surviving op covers only part of the sources
  expect_only(f.check(d), ViolationCode::kRootNotCovering);
}

TEST(ValidatorMutationTest, DanglingUnits) {
  Fixture f;
  query::Deployment d = f.good.deployment;
  d.ops.clear();
  expect_only(f.check(d), ViolationCode::kDanglingUnits);
}

TEST(ValidatorMutationTest, InvalidSink) {
  Fixture f;
  query::Deployment d = f.good.deployment;
  d.sink = net::kInvalidNode;
  expect_only(f.check(d), ViolationCode::kInvalidSink);
}

TEST(ValidatorMutationTest, SourceCoverageMismatch) {
  Fixture f;
  // The deployment covers the 3-source query; validate it against a 4-source
  // variant. Rates of the original masks are untouched by the extra source,
  // so coverage is the only drift.
  query::Query wider = f.q;
  wider.sources.push_back(3);
  ValidateOptions o;
  o.query = &wider;
  expect_only(validate(f.good.deployment, f.env, o),
              ViolationCode::kSourceCoverageMismatch);
}

TEST(ValidatorMutationTest, UnitRateDrift) {
  Fixture f;
  query::Deployment d = f.good.deployment;
  d.units[0].bytes_rate *= 3.0;
  EXPECT_TRUE(has_violation(f.check(d), ViolationCode::kUnitRateDrift));
}

TEST(ValidatorMutationTest, OpRateDrift) {
  Fixture f;
  query::Deployment d = f.good.deployment;
  d.ops[0].out_bytes_rate *= 3.0;
  EXPECT_TRUE(has_violation(f.check(d), ViolationCode::kOpRateDrift));
}

TEST(ValidatorMutationTest, PlannedCostInflation) {
  Fixture f;
  ValidateOptions o = f.opts();
  o.planned_cost = f.good.planned_cost * 2.0 + 1.0;
  expect_only(validate(f.good.deployment, f.env, o),
              ViolationCode::kPlannedCostMismatch);
}

TEST(ValidatorMutationTest, MarginalAccountingMismatch) {
  Fixture f;
  query::Deployment d = f.good.deployment;
  ASSERT_GT(query::deployment_cost(d, f.rt), 0.0);
  // Doubling every recorded rate doubles deployment_cost() while the
  // model-based marginal re-sum stays put.
  for (query::LeafUnit& u : d.units) {
    u.bytes_rate *= 2.0;
    u.tuple_rate *= 2.0;
  }
  for (query::DeployedOp& op : d.ops) {
    op.out_bytes_rate *= 2.0;
    op.out_tuple_rate *= 2.0;
  }
  EXPECT_TRUE(
      has_violation(f.check(d), ViolationCode::kMarginalCostMismatch));
}

TEST(ValidatorMutationTest, OperatorOnExcludedHost) {
  Fixture f;
  const query::Deployment& d = f.good.deployment;

  // Excluding the host of a deployed operator fires, and fires alone: a
  // failed or load-shed node must not keep hosting processing.
  ValidateOptions o = f.opts();
  const std::vector<net::NodeId> hosting = {d.ops[0].node};
  o.excluded_hosts = &hosting;
  expect_only(validate(d, f.env, o), ViolationCode::kExcludedHost);

  // Excluding a node that hosts no operator stays silent — base units
  // (source taps) and the sink are endpoint roles, not hosted processing,
  // so load shedding does not invalidate them.
  net::NodeId idle = 0;
  while (idle == d.ops[0].node || idle == d.ops[1].node) ++idle;
  const std::vector<net::NodeId> off = {idle};
  o.excluded_hosts = &off;
  EXPECT_TRUE(validate(d, f.env, o).empty());
}

TEST(ValidatorHookTest, CheckResultThrowsOnCorruptDeployment) {
  Fixture f;
  opt::OptimizeResult corrupt = f.good;
  corrupt.deployment.ops[0].node =
      static_cast<net::NodeId>(f.net.node_count() + 2);
  EXPECT_THROW(check_result(corrupt, f.env, f.q), CheckError);
  EXPECT_NO_THROW(check_result(f.good, f.env, f.q));
  opt::OptimizeResult infeasible;
  infeasible.feasible = false;
  EXPECT_NO_THROW(check_result(infeasible, f.env, f.q));
}

TEST(ValidatorTest, ViolationCodesRenderDistinctly) {
  // to_string is used by describe(); make sure no code falls through to
  // "unknown" and no two codes collide.
  std::vector<std::string> names;
  for (int c = 0; c <= static_cast<int>(ViolationCode::kMarginalCostMismatch);
       ++c) {
    names.emplace_back(to_string(static_cast<ViolationCode>(c)));
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
  EXPECT_EQ(std::count(names.begin(), names.end(), "unknown"), 0);
}

}  // namespace
}  // namespace iflow::verify
