// UNION ALL queries (the paper's other future-work item): every branch is
// an independent SPJ block delivered to the same sink.
#include <gtest/gtest.h>

#include "engine/simulation.h"
#include "net/gtitm.h"
#include "opt/exhaustive.h"
#include "query/rates.h"
#include "sql/binder.h"

namespace iflow::sql {
namespace {

TEST(SqlUnionTest, SplitsBranchesAndSharesSink) {
  query::Catalog catalog;
  catalog.add_stream("A", 0, 10.0, 10.0);
  catalog.add_stream("B", 1, 10.0, 10.0);
  catalog.add_stream("C", 2, 10.0, 10.0);
  catalog.set_selectivity(0, 1, 0.1);
  const auto bound = compile_union(
      "SELECT A.x FROM A, B WHERE A.k = B.k "
      "UNION ALL SELECT C.x FROM C WHERE C.level > 3",
      catalog, 10, 4);
  ASSERT_EQ(bound.size(), 2u);
  EXPECT_EQ(bound[0].query.id, 10u);
  EXPECT_EQ(bound[1].query.id, 11u);
  EXPECT_EQ(bound[0].query.sink, 4u);
  EXPECT_EQ(bound[1].query.sink, 4u);
  EXPECT_EQ(bound[0].query.k(), 2);
  EXPECT_EQ(bound[1].query.k(), 1);
  EXPECT_LT(bound[1].query.filter(0), 1.0);
}

TEST(SqlUnionTest, SingleBlockPassesThrough) {
  query::Catalog catalog;
  catalog.add_stream("A", 0, 10.0, 10.0);
  const auto bound = compile_union("SELECT A.x FROM A", catalog, 1, 2);
  ASSERT_EQ(bound.size(), 1u);
  EXPECT_EQ(bound[0].query.k(), 1);
}

TEST(SqlUnionTest, ThreeWayChain) {
  query::Catalog catalog;
  catalog.add_stream("A", 0, 10.0, 10.0);
  catalog.add_stream("B", 1, 10.0, 10.0);
  catalog.add_stream("C", 2, 10.0, 10.0);
  const auto bound = compile_union(
      "SELECT A.x FROM A union all SELECT B.x FROM B UNION ALL "
      "SELECT C.x FROM C",
      catalog, 0, 3);
  EXPECT_EQ(bound.size(), 3u);
}

TEST(SqlUnionTest, RejectsUnionWithoutAll) {
  query::Catalog catalog;
  catalog.add_stream("A", 0, 10.0, 10.0);
  EXPECT_THROW(
      compile_union("SELECT A.x FROM A UNION SELECT A.y FROM A", catalog, 0, 1),
      SqlError);
}

TEST(SqlUnionTest, UnionInsideStringLiteralIsIgnored) {
  query::Catalog catalog;
  catalog.add_stream("A", 0, 10.0, 10.0);
  const auto bound = compile_union(
      "SELECT A.x FROM A WHERE A.tag = 'UNION ALL STATION'", catalog, 0, 1);
  EXPECT_EQ(bound.size(), 1u);
}

TEST(SqlUnionTest, BranchesInterleaveAtTheSinkInTheEngine) {
  Prng prng(5);
  net::TransitStubParams p;
  p.transit_count = 1;
  p.stub_domains_per_transit = 2;
  p.stub_domain_size = 3;
  const net::Network net = net::make_transit_stub(p, prng);
  const auto rt = net::RoutingTables::build(net);

  query::Catalog catalog;
  catalog.add_stream("A", 0, 20.0, 50.0);
  catalog.add_stream("B", 3, 30.0, 50.0);
  const auto bound = compile_union(
      "SELECT A.x FROM A UNION ALL SELECT B.x FROM B", catalog, 7,
      static_cast<net::NodeId>(net.node_count() - 1));
  ASSERT_EQ(bound.size(), 2u);

  opt::OptimizerEnv env;
  env.catalog = &catalog;
  env.network = &net;
  env.routing = &rt;
  env.reuse = false;
  opt::ExhaustiveOptimizer ex(env);

  engine::EngineConfig cfg;
  cfg.duration_s = 30.0;
  cfg.poisson = false;
  engine::Simulation sim(net, rt, catalog, cfg, 9);
  // Deploy both branches under the SAME logical query id: their delivered
  // counts accumulate at the union sink.
  for (const BoundQuery& b : bound) {
    query::Query q = b.query;
    q.id = 7;
    query::RateModel rates(catalog, q);
    sim.deploy(ex.optimize(q).deployment, rates);
  }
  sim.run();
  // Union delivery rate = sum of branch rates (20 + 30).
  EXPECT_NEAR(sim.delivered_rate(7), 50.0, 5.0);
}

}  // namespace
}  // namespace iflow::sql
