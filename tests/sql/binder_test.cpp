#include "sql/binder.h"

#include <gtest/gtest.h>

#include "net/gtitm.h"
#include "opt/exhaustive.h"
#include "query/rates.h"

namespace iflow::sql {
namespace {

query::Catalog make_ois_catalog() {
  query::Catalog c;
  const auto weather = c.add_stream("WEATHER", 0, 30.0, 100.0);
  const auto flights = c.add_stream("FLIGHTS", 1, 60.0, 150.0);
  const auto checkins = c.add_stream("CHECK-INS", 2, 90.0, 80.0);
  c.set_columns(weather, {"CITY", "FORECAST"});
  c.set_columns(flights, {"STATUS", "DEPARTING", "DESTN", "NUM", "DP-TIME"});
  c.set_columns(checkins, {"STATUS", "FLNUM"});
  c.set_selectivity(flights, weather, 0.004);
  c.set_selectivity(flights, checkins, 0.008);
  c.set_selectivity(weather, checkins, 0.05);
  return c;
}

constexpr const char* kQ1 =
    "SELECT FLIGHTS.STATUS, WEATHER.FORECAST, CHECK-INS.STATUS "
    "FROM FLIGHTS, WEATHER, CHECK-INS "
    "WHERE FLIGHTS.DEPARTING = 'ATLANTA' "
    "AND FLIGHTS.DESTN = WEATHER.CITY "
    "AND FLIGHTS.NUM = CHECK-INS.FLNUM "
    "AND FLIGHTS.DP-TIME - CURRENT_TIME < '12:00:00'";

TEST(SqlBinderTest, BindsPaperQ1) {
  const query::Catalog catalog = make_ois_catalog();
  const BoundQuery b = compile(kQ1, catalog, 1, 5);
  EXPECT_EQ(b.query.id, 1u);
  EXPECT_EQ(b.query.sink, 5u);
  ASSERT_EQ(b.query.sources.size(), 3u);
  EXPECT_TRUE(std::is_sorted(b.query.sources.begin(), b.query.sources.end()));
  EXPECT_FALSE(b.has_cross_product);
  // FLIGHTS carries two filters: '=' (0.1) and '<' (0.3) -> 0.03 combined.
  const auto flights_idx = static_cast<std::size_t>(
      std::find(b.query.sources.begin(), b.query.sources.end(),
                catalog.find("FLIGHTS")) -
      b.query.sources.begin());
  EXPECT_NEAR(b.query.filter_selectivity[flights_idx], 0.03, 1e-12);
  EXPECT_NE(b.filter_text[flights_idx].find("ATLANTA"), std::string::npos);
  // 3 selected columns out of 9 declared.
  EXPECT_NEAR(b.projection_factor, 3.0 / 9.0, 1e-12);
}

TEST(SqlBinderTest, CustomEstimatorWins) {
  const query::Catalog catalog = make_ois_catalog();
  const BoundQuery b = compile(
      "SELECT * FROM FLIGHTS WHERE FLIGHTS.DEPARTING = 'ATLANTA'", catalog, 2,
      3, [](query::StreamId, const FilterPredicate&) { return 0.42; });
  ASSERT_EQ(b.query.filter_selectivity.size(), 1u);
  EXPECT_DOUBLE_EQ(b.query.filter_selectivity[0], 0.42);
  EXPECT_DOUBLE_EQ(b.projection_factor, 1.0);  // SELECT *
}

TEST(SqlBinderTest, DetectsCrossProduct) {
  const query::Catalog catalog = make_ois_catalog();
  const BoundQuery joined = compile(
      "SELECT * FROM FLIGHTS, WEATHER WHERE FLIGHTS.DESTN = WEATHER.CITY",
      catalog, 3, 0);
  EXPECT_FALSE(joined.has_cross_product);
  const BoundQuery crossed =
      compile("SELECT * FROM FLIGHTS, WEATHER", catalog, 4, 0);
  EXPECT_TRUE(crossed.has_cross_product);
}

TEST(SqlBinderTest, RejectsUnknownStreamsAndColumns) {
  const query::Catalog catalog = make_ois_catalog();
  EXPECT_THROW(compile("SELECT * FROM BAGGAGE", catalog, 5, 0), SqlError);
  EXPECT_THROW(
      compile("SELECT FLIGHTS.NOPE FROM FLIGHTS", catalog, 6, 0), SqlError);
  EXPECT_THROW(
      compile("SELECT * FROM FLIGHTS WHERE FLIGHTS.NOPE = 1", catalog, 7, 0),
      SqlError);
  EXPECT_THROW(
      compile("SELECT * FROM FLIGHTS, FLIGHTS", catalog, 8, 0), SqlError);
}

TEST(SqlBinderTest, UndeclaredSchemaAcceptsAnyColumn) {
  query::Catalog catalog;
  catalog.add_stream("RAW", 0, 10.0, 10.0);
  EXPECT_NO_THROW(
      compile("SELECT RAW.anything FROM RAW WHERE RAW.other < 1", catalog, 9,
              0));
}

TEST(SqlBinderTest, BoundQueryIsOptimizable) {
  // End to end: SQL text -> bound query -> optimal deployment.
  Prng prng(3);
  net::TransitStubParams p;
  p.transit_count = 1;
  p.stub_domains_per_transit = 2;
  p.stub_domain_size = 4;
  const net::Network net = net::make_transit_stub(p, prng);
  const auto rt = net::RoutingTables::build(net);

  query::Catalog catalog = make_ois_catalog();
  const BoundQuery b =
      compile(kQ1, catalog, 10, static_cast<net::NodeId>(net.node_count() - 1));

  opt::OptimizerEnv env;
  env.catalog = &catalog;
  env.network = &net;
  env.routing = &rt;
  env.reuse = false;
  env.projection_factor = b.projection_factor;
  opt::ExhaustiveOptimizer ex(env);
  const opt::OptimizeResult res = ex.optimize(b.query);
  ASSERT_TRUE(res.feasible);
  EXPECT_GT(res.actual_cost, 0.0);
  // The FLIGHTS filters shrink the result stream: an unfiltered variant of
  // the same query must cost strictly more.
  query::Query unfiltered = b.query;
  unfiltered.filter_selectivity.clear();
  EXPECT_GT(ex.optimize(unfiltered).actual_cost, res.actual_cost);
}

}  // namespace
}  // namespace iflow::sql
