// Multi-query SQL scripts: several statements compiled against one shared
// catalog, the way a scenario (or an operator at a console) registers a
// query family. Statements share base streams and sinks, so the bound
// queries are exactly the shapes the multi-query optimizer exploits —
// identical derived streams (global selectivities) and fan-in at common
// sinks, including UNION ALL branches.
#include <gtest/gtest.h>

#include <set>

#include "advert/registry.h"
#include "net/gtitm.h"
#include "opt/exhaustive.h"
#include "opt/optimizer.h"
#include "sql/binder.h"

namespace iflow::sql {
namespace {

query::Catalog flight_catalog() {
  query::Catalog cat;
  cat.add_stream("FLIGHTS", 0, 20.0, 80.0);
  cat.add_stream("WEATHER", 1, 10.0, 60.0);
  cat.add_stream("CHECKINS", 2, 30.0, 40.0);
  cat.add_stream("BAGGAGE", 3, 25.0, 40.0);
  cat.set_selectivity(0, 1, 0.01);
  cat.set_selectivity(0, 2, 0.02);
  cat.set_selectivity(0, 3, 0.015);
  cat.set_selectivity(1, 2, 0.01);
  return cat;
}

TEST(SqlScriptTest, StatementsShareSourcesThroughOneCatalog) {
  const query::Catalog cat = flight_catalog();
  // Three statements of one script: all join FLIGHTS, two also share
  // WEATHER. Ids are assigned sequentially as a script would.
  const BoundQuery q0 = compile(
      "SELECT * FROM FLIGHTS, WEATHER WHERE FLIGHTS.DESTN = WEATHER.CITY",
      cat, 0, 9);
  const BoundQuery q1 = compile(
      "SELECT * FROM FLIGHTS, WEATHER, CHECKINS "
      "WHERE FLIGHTS.DESTN = WEATHER.CITY AND FLIGHTS.NUM = CHECKINS.FLNUM",
      cat, 1, 10);
  const BoundQuery q2 = compile(
      "SELECT * FROM FLIGHTS, BAGGAGE WHERE FLIGHTS.NUM = BAGGAGE.FLNUM",
      cat, 2, 9);

  // Shared stream names resolve to the SAME catalog ids in every statement:
  // two queries joining (FLIGHTS, WEATHER) describe identical derived
  // streams, which is what makes cross-query reuse semantically sound.
  EXPECT_EQ(q0.query.sources, (std::vector<query::StreamId>{0, 1}));
  EXPECT_EQ(q1.query.sources, (std::vector<query::StreamId>{0, 1, 2}));
  EXPECT_EQ(q2.query.sources, (std::vector<query::StreamId>{0, 3}));
  // q0 and q2 share a sink (fan-in), q1 delivers elsewhere.
  EXPECT_EQ(q0.query.sink, q2.query.sink);
  EXPECT_NE(q0.query.sink, q1.query.sink);
  // Ids stay distinct — the middleware keys deployments on them.
  std::set<query::QueryId> ids{q0.query.id, q1.query.id, q2.query.id};
  EXPECT_EQ(ids.size(), 3u);
}

TEST(SqlScriptTest, ScriptFamilyReusesOperatorsAcrossQueries) {
  Prng prng(21);
  net::TransitStubParams p;
  p.transit_count = 2;
  p.stub_domains_per_transit = 2;
  p.stub_domain_size = 4;
  const net::Network net = net::make_transit_stub(p, prng);
  const auto rt = net::RoutingTables::build(net);
  const query::Catalog cat = flight_catalog();

  // A script whose statements all contain the (FLIGHTS, WEATHER) join.
  const std::vector<std::string> script = {
      "SELECT * FROM FLIGHTS, WEATHER WHERE FLIGHTS.DESTN = WEATHER.CITY",
      "SELECT * FROM FLIGHTS, WEATHER, CHECKINS "
      "WHERE FLIGHTS.DESTN = WEATHER.CITY AND FLIGHTS.NUM = CHECKINS.FLNUM",
      "SELECT * FROM WEATHER, FLIGHTS WHERE WEATHER.CITY = FLIGHTS.DESTN",
  };

  const auto run = [&](bool reuse) {
    advert::Registry registry;
    opt::OptimizerEnv env;
    env.catalog = &cat;
    env.network = &net;
    env.routing = &rt;
    env.registry = &registry;
    env.reuse = reuse;
    opt::Session session(env, std::make_unique<opt::ExhaustiveOptimizer>(env));
    query::QueryId id = 0;
    for (const std::string& text : script) {
      const BoundQuery b = compile(text, cat, id, /*sink=*/5);
      ++id;
      EXPECT_TRUE(session.submit(b.query).feasible);
    }
    return session.cumulative_cost();
  };

  const double with_reuse = run(true);
  const double without_reuse = run(false);
  // The shared (FLIGHTS, WEATHER) operator is paid for once under reuse.
  EXPECT_LT(with_reuse, without_reuse);
}

TEST(SqlScriptTest, UnionAllBranchesShareSourcesAndSink) {
  const query::Catalog cat = flight_catalog();
  const auto bound = compile_union(
      "SELECT * FROM FLIGHTS, WEATHER WHERE FLIGHTS.DESTN = WEATHER.CITY "
      "UNION ALL "
      "SELECT * FROM FLIGHTS, CHECKINS WHERE FLIGHTS.NUM = CHECKINS.FLNUM",
      cat, 4, 7);
  ASSERT_EQ(bound.size(), 2u);
  // Both branches fan into one sink under consecutive ids …
  EXPECT_EQ(bound[0].query.sink, 7u);
  EXPECT_EQ(bound[1].query.sink, 7u);
  EXPECT_EQ(bound[0].query.id, 4u);
  EXPECT_EQ(bound[1].query.id, 5u);
  // … and share the FLIGHTS base stream.
  EXPECT_EQ(bound[0].query.sources.front(), 0u);
  EXPECT_EQ(bound[1].query.sources.front(), 0u);
}

TEST(SqlScriptTest, UnionBranchesKeepIndependentFilters) {
  const query::Catalog cat = flight_catalog();
  const auto bound = compile_union(
      "SELECT * FROM FLIGHTS WHERE FLIGHTS.DEPARTING = 'ATLANTA' "
      "UNION ALL SELECT * FROM FLIGHTS",
      cat, 0, 3);
  ASSERT_EQ(bound.size(), 2u);
  EXPECT_LT(bound[0].query.filter(0), 1.0);   // filtered branch
  EXPECT_EQ(bound[1].query.filter(0), 1.0);   // unfiltered branch
}

}  // namespace
}  // namespace iflow::sql
