#include "sql/parser.h"

#include <gtest/gtest.h>

namespace iflow::sql {
namespace {

// The paper's Q1 (§1.1), verbatim modulo whitespace.
constexpr const char* kQ1 = R"sql(
  SELECT FLIGHTS.STATUS, WEATHER.FORECAST, CHECK-INS.STATUS
  FROM FLIGHTS, WEATHER, CHECK-INS
  WHERE FLIGHTS.DEPARTING = 'ATLANTA'
    AND FLIGHTS.DESTN = WEATHER.CITY
    AND FLIGHTS.NUM = CHECK-INS.FLNUM
    AND FLIGHTS.DP-TIME - CURRENT_TIME < '12:00:00'
)sql";

TEST(SqlParserTest, ParsesPaperQ1) {
  const ParsedQuery q = parse(kQ1);
  ASSERT_EQ(q.select.size(), 3u);
  EXPECT_EQ(q.select[0].stream, "FLIGHTS");
  EXPECT_EQ(q.select[0].column, "STATUS");
  EXPECT_EQ(q.select[2].stream, "CHECK-INS");
  ASSERT_EQ(q.streams.size(), 3u);
  EXPECT_EQ(q.streams[1], "WEATHER");
  ASSERT_EQ(q.joins.size(), 2u);
  EXPECT_EQ(q.joins[0].left.stream, "FLIGHTS");
  EXPECT_EQ(q.joins[0].right.stream, "WEATHER");
  EXPECT_EQ(q.joins[1].right.column, "FLNUM");
  ASSERT_EQ(q.filters.size(), 2u);
  EXPECT_EQ(q.filters[0].column.column, "DEPARTING");
  EXPECT_EQ(q.filters[0].op, "=");
  EXPECT_EQ(q.filters[0].value, "ATLANTA");
  EXPECT_EQ(q.filters[1].column.column, "DP-TIME");
  EXPECT_EQ(q.filters[1].op, "<");
}

TEST(SqlParserTest, ParsesPaperQ2) {
  const ParsedQuery q = parse(
      "SELECT FLIGHTS.STATUS, CHECK-INS.STATUS "
      "FROM FLIGHTS, CHECK-INS "
      "WHERE FLIGHTS.DEPARTING = 'ATLANTA' "
      "AND FLIGHTS.NUM = CHECK-INS.FLNUM");
  EXPECT_EQ(q.streams.size(), 2u);
  EXPECT_EQ(q.joins.size(), 1u);
  EXPECT_EQ(q.filters.size(), 1u);
}

TEST(SqlParserTest, SelectStar) {
  const ParsedQuery q = parse("SELECT * FROM A, B WHERE A.x = B.y");
  EXPECT_TRUE(q.select_all);
  EXPECT_TRUE(q.select.empty());
}

TEST(SqlParserTest, KeywordsAreCaseInsensitive) {
  const ParsedQuery q =
      parse("select A.x from A, B where A.x = B.y and B.z < 5");
  EXPECT_EQ(q.joins.size(), 1u);
  EXPECT_EQ(q.filters.size(), 1u);
  EXPECT_EQ(q.filters[0].value, "5");
}

TEST(SqlParserTest, NoWhereClause) {
  const ParsedQuery q = parse("SELECT A.x FROM A");
  EXPECT_TRUE(q.joins.empty());
  EXPECT_TRUE(q.filters.empty());
  EXPECT_EQ(q.streams.size(), 1u);
}

TEST(SqlParserTest, EqualityToLiteralIsAFilterNotAJoin) {
  const ParsedQuery q =
      parse("SELECT A.x FROM A, B WHERE A.x = B.y AND A.city = 'LHR'");
  EXPECT_EQ(q.joins.size(), 1u);
  ASSERT_EQ(q.filters.size(), 1u);
  EXPECT_EQ(q.filters[0].op, "=");
  EXPECT_EQ(q.filters[0].value, "LHR");
}

TEST(SqlParserTest, ComparatorVariants) {
  const ParsedQuery q = parse(
      "SELECT A.x FROM A WHERE A.a <= 3 AND A.b >= 4 AND A.c <> 'x' AND "
      "A.d > 1 AND A.e < 2");
  ASSERT_EQ(q.filters.size(), 5u);
  EXPECT_EQ(q.filters[0].op, "<=");
  EXPECT_EQ(q.filters[1].op, ">=");
  EXPECT_EQ(q.filters[2].op, "<>");
  EXPECT_EQ(q.filters[3].op, ">");
  EXPECT_EQ(q.filters[4].op, "<");
}

TEST(SqlParserTest, RejectsMalformedInput) {
  EXPECT_THROW(parse("FROM A"), SqlError);
  EXPECT_THROW(parse("SELECT A.x"), SqlError);
  EXPECT_THROW(parse("SELECT A.x FROM"), SqlError);
  EXPECT_THROW(parse("SELECT A.x FROM A WHERE"), SqlError);
  EXPECT_THROW(parse("SELECT A.x FROM A WHERE A.x"), SqlError);
  EXPECT_THROW(parse("SELECT A.x FROM A WHERE A.x <"), SqlError);
  EXPECT_THROW(parse("SELECT A.x FROM A WHERE B.y = 3"), SqlError);
  EXPECT_THROW(parse("SELECT A.x FROM A WHERE A.x = 'unterminated"), SqlError);
  EXPECT_THROW(parse("SELECT A.x FROM A extra"), SqlError);
}

TEST(SqlParserTest, RejectsSelfJoinPredicates) {
  EXPECT_THROW(parse("SELECT A.x FROM A, B WHERE A.x = A.y"), SqlError);
}

TEST(SqlParserTest, TrailingSemicolonAccepted) {
  EXPECT_NO_THROW(parse("SELECT A.x FROM A;"));
}

TEST(SqlParserTest, AggregateNamesCanStillBeStreamNames) {
  // MIN/MAX/etc. are only aggregates when followed by '('; as bare
  // identifiers they are ordinary stream/column names.
  const ParsedQuery q = parse("SELECT MIN.x FROM MIN WHERE MIN.y < 3");
  EXPECT_TRUE(q.aggregates.empty());
  ASSERT_EQ(q.select.size(), 1u);
  EXPECT_EQ(q.select[0].stream, "MIN");
  const ParsedQuery agg = parse("SELECT MIN(A.x) FROM A");
  ASSERT_EQ(agg.aggregates.size(), 1u);
  EXPECT_EQ(agg.aggregates[0].fn, "MIN");
  EXPECT_FALSE(agg.aggregates[0].star);
  EXPECT_EQ(agg.aggregates[0].column.column, "x");
}

TEST(SqlParserTest, GroupByParsesColumns) {
  const ParsedQuery q =
      parse("SELECT COUNT(*) FROM A WHERE A.v > 1 GROUP BY A.region, A.kind");
  ASSERT_EQ(q.group_by.size(), 2u);
  EXPECT_EQ(q.group_by[0].column, "region");
  EXPECT_EQ(q.group_by[1].column, "kind");
  // The filter's value must not swallow the GROUP keyword.
  ASSERT_EQ(q.filters.size(), 1u);
  EXPECT_EQ(q.filters[0].value, "1");
}

}  // namespace
}  // namespace iflow::sql
