#include "query/join_tree.h"

#include <gtest/gtest.h>

#include <set>

namespace iflow::query {
namespace {

std::vector<Mask> singleton_masks(int k) {
  std::vector<Mask> m;
  for (int i = 0; i < k; ++i) m.push_back(Mask{1} << i);
  return m;
}

/// Canonical string of a tree for duplicate detection: unordered children
/// are sorted by mask.
std::string canon(const JoinTree& t, int v) {
  const TreeNode& n = t.nodes[static_cast<std::size_t>(v)];
  if (n.unit >= 0) return "u" + std::to_string(n.unit);
  std::string l = canon(t, n.left);
  std::string r = canon(t, n.right);
  if (r < l) std::swap(l, r);
  return "(" + l + "," + r + ")";
}

class TreeCountTest : public ::testing::TestWithParam<int> {};

TEST_P(TreeCountTest, EnumerationMatchesDoubleFactorial) {
  const int k = GetParam();
  const auto trees = enumerate_join_trees(singleton_masks(k));
  EXPECT_EQ(trees.size(), unordered_tree_count(k));
}

TEST_P(TreeCountTest, AllTreesDistinctAndWellFormed) {
  const int k = GetParam();
  const auto trees = enumerate_join_trees(singleton_masks(k));
  std::set<std::string> seen;
  const Mask full = (Mask{1} << k) - 1;
  for (const JoinTree& t : trees) {
    EXPECT_TRUE(seen.insert(canon(t, t.root)).second) << "duplicate tree";
    EXPECT_EQ(t.nodes[static_cast<std::size_t>(t.root)].mask, full);
    EXPECT_EQ(t.internal_count(), k - 1);
    // Children precede parents (topological arena).
    for (std::size_t v = 0; v < t.nodes.size(); ++v) {
      const TreeNode& n = t.nodes[v];
      if (n.unit >= 0) continue;
      EXPECT_LT(n.left, static_cast<int>(v));
      EXPECT_LT(n.right, static_cast<int>(v));
      EXPECT_EQ(n.mask,
                t.nodes[static_cast<std::size_t>(n.left)].mask |
                    t.nodes[static_cast<std::size_t>(n.right)].mask);
      EXPECT_EQ(t.nodes[static_cast<std::size_t>(n.left)].mask &
                    t.nodes[static_cast<std::size_t>(n.right)].mask,
                Mask{0});
    }
  }
}

INSTANTIATE_TEST_SUITE_P(UpToSixLeaves, TreeCountTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(JoinTreeTest, CompositeUnitMasksPropagate) {
  // Two units covering {0,1} and {2}: only one tree.
  const auto trees = enumerate_join_trees({0b011, 0b100});
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_EQ(trees[0].nodes[static_cast<std::size_t>(trees[0].root)].mask,
            Mask{0b111});
}

TEST(JoinTreeTest, RejectsOverlappingUnits) {
  EXPECT_THROW(enumerate_join_trees({0b011, 0b010}), CheckError);
  EXPECT_THROW(enumerate_join_trees({0b000}), CheckError);
}

TEST(JoinTreeTest, DoubleFactorialValues) {
  EXPECT_EQ(unordered_tree_count(1), 1u);
  EXPECT_EQ(unordered_tree_count(2), 1u);
  EXPECT_EQ(unordered_tree_count(3), 3u);
  EXPECT_EQ(unordered_tree_count(4), 15u);
  EXPECT_EQ(unordered_tree_count(5), 105u);
  EXPECT_EQ(unordered_tree_count(7), 10395u);
}

}  // namespace
}  // namespace iflow::query
