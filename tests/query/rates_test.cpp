#include "query/rates.h"

#include <gtest/gtest.h>

namespace iflow::query {
namespace {

struct Fixture {
  Catalog catalog;
  Query q;
  Fixture() {
    const StreamId a = catalog.add_stream("A", 0, 10.0, 100.0);
    const StreamId b = catalog.add_stream("B", 1, 20.0, 50.0);
    const StreamId c = catalog.add_stream("C", 2, 5.0, 200.0);
    catalog.set_selectivity(a, b, 0.01);
    catalog.set_selectivity(a, c, 0.02);
    catalog.set_selectivity(b, c, 0.05);
    q.id = 1;
    q.sources = {a, b, c};
    q.sink = 3;
  }
};

TEST(RateModelTest, SingletonRatesMatchCatalog) {
  Fixture f;
  RateModel r(f.catalog, f.q);
  EXPECT_DOUBLE_EQ(r.tuple_rate(0b001), 10.0);
  EXPECT_DOUBLE_EQ(r.tuple_rate(0b010), 20.0);
  EXPECT_DOUBLE_EQ(r.tuple_rate(0b100), 5.0);
  EXPECT_DOUBLE_EQ(r.width(0b001), 100.0);
  EXPECT_DOUBLE_EQ(r.bytes_rate(0b001), 1000.0);
}

TEST(RateModelTest, PairwiseJoinRateUsesSelectivity) {
  Fixture f;
  RateModel r(f.catalog, f.q);
  EXPECT_DOUBLE_EQ(r.tuple_rate(0b011), 10.0 * 20.0 * 0.01);
  EXPECT_DOUBLE_EQ(r.tuple_rate(0b101), 10.0 * 5.0 * 0.02);
  EXPECT_DOUBLE_EQ(r.width(0b011), 150.0);
}

TEST(RateModelTest, FullJoinAppliesAllPairSelectivities) {
  Fixture f;
  RateModel r(f.catalog, f.q);
  EXPECT_DOUBLE_EQ(r.tuple_rate(0b111),
                   10.0 * 20.0 * 5.0 * 0.01 * 0.02 * 0.05);
  EXPECT_DOUBLE_EQ(r.width(0b111), 350.0);
}

TEST(RateModelTest, ProjectionShrinksJoinedWidthsOnly) {
  Fixture f;
  RateModel r(f.catalog, f.q, 0.5);
  EXPECT_DOUBLE_EQ(r.width(0b001), 100.0);   // base streams untouched
  EXPECT_DOUBLE_EQ(r.width(0b011), 75.0);    // joined results projected
  EXPECT_DOUBLE_EQ(r.width(0b111), 175.0);
}

TEST(RateModelTest, SourceNodesAndStreamsResolve) {
  Fixture f;
  RateModel r(f.catalog, f.q);
  EXPECT_EQ(r.k(), 3);
  EXPECT_EQ(r.full(), Mask{0b111});
  EXPECT_EQ(r.source_node(0), 0u);
  EXPECT_EQ(r.source_node(2), 2u);
  EXPECT_EQ(r.stream(1), f.q.sources[1]);
}

TEST(RateModelTest, RejectsInvalidMasks) {
  Fixture f;
  RateModel r(f.catalog, f.q);
  EXPECT_THROW(r.tuple_rate(0), CheckError);
  EXPECT_THROW(r.tuple_rate(0b1000), CheckError);
}

TEST(RateModelTest, MemoizationIsConsistent) {
  Fixture f;
  RateModel r(f.catalog, f.q);
  const double first = r.tuple_rate(0b111);
  EXPECT_DOUBLE_EQ(r.tuple_rate(0b111), first);
  EXPECT_DOUBLE_EQ(r.bytes_rate(0b111), first * r.width(0b111));
}

}  // namespace
}  // namespace iflow::query
