#include "query/catalog.h"

#include <gtest/gtest.h>

namespace iflow::query {
namespace {

TEST(CatalogTest, AddAndLookupStreams) {
  Catalog c;
  const StreamId a = c.add_stream("FLIGHTS", 3, 50.0, 120.0);
  const StreamId b = c.add_stream("WEATHER", 5, 20.0, 80.0);
  EXPECT_EQ(c.stream_count(), 2u);
  EXPECT_EQ(c.stream(a).name, "FLIGHTS");
  EXPECT_EQ(c.stream(b).source, 5u);
  EXPECT_EQ(c.find("WEATHER"), b);
  EXPECT_EQ(c.find("CHECK-INS"), kInvalidStream);
}

TEST(CatalogTest, RejectsDuplicatesAndBadRates) {
  Catalog c;
  c.add_stream("A", 0, 1.0, 1.0);
  EXPECT_THROW(c.add_stream("A", 1, 1.0, 1.0), CheckError);
  EXPECT_THROW(c.add_stream("B", 1, 0.0, 1.0), CheckError);
  EXPECT_THROW(c.add_stream("C", 1, 1.0, -2.0), CheckError);
}

TEST(CatalogTest, SelectivityIsSymmetricAndDefaultsToOne) {
  Catalog c;
  const StreamId a = c.add_stream("A", 0, 1.0, 1.0);
  const StreamId b = c.add_stream("B", 0, 1.0, 1.0);
  const StreamId d = c.add_stream("D", 0, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(c.selectivity(a, b), 1.0);
  c.set_selectivity(a, b, 0.05);
  EXPECT_DOUBLE_EQ(c.selectivity(a, b), 0.05);
  EXPECT_DOUBLE_EQ(c.selectivity(b, a), 0.05);
  EXPECT_DOUBLE_EQ(c.selectivity(a, d), 1.0);
  EXPECT_DOUBLE_EQ(c.selectivity(a, a), 1.0);
}

TEST(CatalogTest, SelectivitySurvivesLaterStreamAdditions) {
  Catalog c;
  const StreamId a = c.add_stream("A", 0, 1.0, 1.0);
  const StreamId b = c.add_stream("B", 0, 1.0, 1.0);
  c.set_selectivity(a, b, 0.25);
  c.add_stream("C", 0, 1.0, 1.0);
  c.add_stream("D", 0, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(c.selectivity(a, b), 0.25);
}

TEST(CatalogTest, SelectivityValidation) {
  Catalog c;
  const StreamId a = c.add_stream("A", 0, 1.0, 1.0);
  const StreamId b = c.add_stream("B", 0, 1.0, 1.0);
  EXPECT_THROW(c.set_selectivity(a, a, 0.5), CheckError);
  EXPECT_THROW(c.set_selectivity(a, b, 0.0), CheckError);
  EXPECT_THROW(c.set_selectivity(a, b, 1.5), CheckError);
}

}  // namespace
}  // namespace iflow::query
