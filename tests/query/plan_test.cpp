#include "query/plan.h"

#include <gtest/gtest.h>

namespace iflow::query {
namespace {

net::Network make_line(int n) {
  net::Network net;
  for (int i = 0; i < n; ++i) net.add_node();
  for (int i = 0; i + 1 < n; ++i) {
    net.add_link(static_cast<net::NodeId>(i), static_cast<net::NodeId>(i + 1),
                 1.0, 1.0, 1e6);
  }
  return net;
}

LeafUnit unit(Mask m, net::NodeId loc, double bytes) {
  LeafUnit u;
  u.mask = m;
  u.location = loc;
  u.bytes_rate = bytes;
  u.tuple_rate = bytes / 10.0;
  return u;
}

TEST(DeploymentTest, SingleUnitCostIsDirectEdge) {
  const net::Network net = make_line(5);
  const auto rt = net::RoutingTables::build(net);
  Deployment d;
  d.units = {unit(0b1, 0, 100.0)};
  d.sink = 4;
  validate_deployment(d);
  EXPECT_DOUBLE_EQ(deployment_cost(d, rt), 100.0 * 4.0);
  EXPECT_EQ(d.root_node(), 0u);
  EXPECT_DOUBLE_EQ(d.root_bytes_rate(), 100.0);
}

TEST(DeploymentTest, JoinCostSumsAllEdges) {
  const net::Network net = make_line(5);
  const auto rt = net::RoutingTables::build(net);
  Deployment d;
  d.units = {unit(0b01, 0, 100.0), unit(0b10, 4, 50.0)};
  DeployedOp op;
  op.mask = 0b11;
  op.left = encode_unit_child(0);
  op.right = encode_unit_child(1);
  op.node = 2;
  op.out_bytes_rate = 20.0;
  op.out_tuple_rate = 1.0;
  d.ops = {op};
  d.sink = 3;
  validate_deployment(d);
  // 100*2 (unit0 -> node2) + 50*2 (unit1 -> node2) + 20*1 (node2 -> sink3)
  EXPECT_DOUBLE_EQ(deployment_cost(d, rt), 200.0 + 100.0 + 20.0);
}

TEST(DeploymentTest, ColocatedEdgesCostNothing) {
  const net::Network net = make_line(3);
  const auto rt = net::RoutingTables::build(net);
  Deployment d;
  d.units = {unit(0b01, 1, 100.0), unit(0b10, 1, 50.0)};
  DeployedOp op;
  op.mask = 0b11;
  op.left = encode_unit_child(0);
  op.right = encode_unit_child(1);
  op.node = 1;
  op.out_bytes_rate = 20.0;
  d.ops = {op};
  d.sink = 1;
  EXPECT_DOUBLE_EQ(deployment_cost(d, rt), 0.0);
}

TEST(DeploymentValidationTest, CatchesOverlappingUnits) {
  Deployment d;
  d.units = {unit(0b01, 0, 1.0), unit(0b01, 1, 1.0)};
  DeployedOp op;
  op.mask = 0b01;
  op.left = encode_unit_child(0);
  op.right = encode_unit_child(1);
  op.node = 0;
  d.ops = {op};
  d.sink = 0;
  EXPECT_THROW(validate_deployment(d), CheckError);
}

TEST(DeploymentValidationTest, CatchesDoubleConsumption) {
  Deployment d;
  d.units = {unit(0b01, 0, 1.0), unit(0b10, 1, 1.0)};
  DeployedOp op;
  op.mask = 0b11;
  op.left = encode_unit_child(0);
  op.right = encode_unit_child(0);  // same input twice
  op.node = 0;
  d.ops = {op};
  d.sink = 0;
  EXPECT_THROW(validate_deployment(d), CheckError);
}

TEST(DeploymentValidationTest, CatchesMaskMismatch) {
  Deployment d;
  d.units = {unit(0b01, 0, 1.0), unit(0b10, 1, 1.0)};
  DeployedOp op;
  op.mask = 0b111;  // claims a source nobody provides
  op.left = encode_unit_child(0);
  op.right = encode_unit_child(1);
  op.node = 0;
  d.ops = {op};
  d.sink = 0;
  EXPECT_THROW(validate_deployment(d), CheckError);
}

TEST(DeploymentValidationTest, CatchesMultipleRootsWithoutJoin) {
  Deployment d;
  d.units = {unit(0b01, 0, 1.0), unit(0b10, 1, 1.0)};
  d.sink = 0;
  EXPECT_THROW(validate_deployment(d), CheckError);
}

TEST(DeploymentTest, ChildEncodingRoundTrips) {
  for (int i : {0, 1, 5, 100}) {
    const int code = encode_unit_child(i);
    EXPECT_TRUE(child_is_unit(code));
    EXPECT_EQ(child_unit_index(code), i);
  }
  EXPECT_FALSE(child_is_unit(0));
  EXPECT_FALSE(child_is_unit(3));
}

}  // namespace
}  // namespace iflow::query
