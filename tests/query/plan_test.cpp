#include "query/plan.h"

#include <gtest/gtest.h>

namespace iflow::query {
namespace {

net::Network make_line(int n) {
  net::Network net;
  for (int i = 0; i < n; ++i) net.add_node();
  for (int i = 0; i + 1 < n; ++i) {
    net.add_link(static_cast<net::NodeId>(i), static_cast<net::NodeId>(i + 1),
                 1.0, 1.0, 1e6);
  }
  return net;
}

LeafUnit unit(Mask m, net::NodeId loc, double bytes) {
  LeafUnit u;
  u.mask = m;
  u.location = loc;
  u.bytes_rate = bytes;
  u.tuple_rate = bytes / 10.0;
  return u;
}

TEST(DeploymentTest, SingleUnitCostIsDirectEdge) {
  const net::Network net = make_line(5);
  const auto rt = net::RoutingTables::build(net);
  Deployment d;
  d.units = {unit(0b1, 0, 100.0)};
  d.sink = 4;
  validate_deployment(d);
  EXPECT_DOUBLE_EQ(deployment_cost(d, rt), 100.0 * 4.0);
  EXPECT_EQ(d.root_node(), 0u);
  EXPECT_DOUBLE_EQ(d.root_bytes_rate(), 100.0);
}

TEST(DeploymentTest, JoinCostSumsAllEdges) {
  const net::Network net = make_line(5);
  const auto rt = net::RoutingTables::build(net);
  Deployment d;
  d.units = {unit(0b01, 0, 100.0), unit(0b10, 4, 50.0)};
  DeployedOp op;
  op.mask = 0b11;
  op.left = encode_unit_child(0);
  op.right = encode_unit_child(1);
  op.node = 2;
  op.out_bytes_rate = 20.0;
  op.out_tuple_rate = 1.0;
  d.ops = {op};
  d.sink = 3;
  validate_deployment(d);
  // 100*2 (unit0 -> node2) + 50*2 (unit1 -> node2) + 20*1 (node2 -> sink3)
  EXPECT_DOUBLE_EQ(deployment_cost(d, rt), 200.0 + 100.0 + 20.0);
}

TEST(DeploymentTest, ColocatedEdgesCostNothing) {
  const net::Network net = make_line(3);
  const auto rt = net::RoutingTables::build(net);
  Deployment d;
  d.units = {unit(0b01, 1, 100.0), unit(0b10, 1, 50.0)};
  DeployedOp op;
  op.mask = 0b11;
  op.left = encode_unit_child(0);
  op.right = encode_unit_child(1);
  op.node = 1;
  op.out_bytes_rate = 20.0;
  d.ops = {op};
  d.sink = 1;
  EXPECT_DOUBLE_EQ(deployment_cost(d, rt), 0.0);
}

TEST(DeploymentValidationTest, CatchesOverlappingUnits) {
  Deployment d;
  d.units = {unit(0b01, 0, 1.0), unit(0b01, 1, 1.0)};
  DeployedOp op;
  op.mask = 0b01;
  op.left = encode_unit_child(0);
  op.right = encode_unit_child(1);
  op.node = 0;
  d.ops = {op};
  d.sink = 0;
  EXPECT_THROW(validate_deployment(d), CheckError);
}

TEST(DeploymentValidationTest, CatchesDoubleConsumption) {
  Deployment d;
  d.units = {unit(0b01, 0, 1.0), unit(0b10, 1, 1.0)};
  DeployedOp op;
  op.mask = 0b11;
  op.left = encode_unit_child(0);
  op.right = encode_unit_child(0);  // same input twice
  op.node = 0;
  d.ops = {op};
  d.sink = 0;
  EXPECT_THROW(validate_deployment(d), CheckError);
}

TEST(DeploymentValidationTest, CatchesMaskMismatch) {
  Deployment d;
  d.units = {unit(0b01, 0, 1.0), unit(0b10, 1, 1.0)};
  DeployedOp op;
  op.mask = 0b111;  // claims a source nobody provides
  op.left = encode_unit_child(0);
  op.right = encode_unit_child(1);
  op.node = 0;
  d.ops = {op};
  d.sink = 0;
  EXPECT_THROW(validate_deployment(d), CheckError);
}

TEST(DeploymentValidationTest, CatchesMultipleRootsWithoutJoin) {
  Deployment d;
  d.units = {unit(0b01, 0, 1.0), unit(0b10, 1, 1.0)};
  d.sink = 0;
  EXPECT_THROW(validate_deployment(d), CheckError);
}

// Harness for the rate-drift overload deployment_cost(d, rates, rt): a
// 2-way join planned against one catalog, whose rates then drift.
struct DriftFixture {
  net::Network net = make_line(5);
  net::RoutingTables rt = net::RoutingTables::build(net);
  Catalog catalog;
  StreamId a, b;
  Query q;
  Deployment d;

  DriftFixture() {
    a = catalog.add_stream("a", 0, 10.0, 10.0);
    b = catalog.add_stream("b", 4, 5.0, 20.0);
    catalog.set_selectivity(a, b, 0.01);
    q.id = 1;
    q.sources = {a, b};
    q.sink = 3;
    // Deployment recorded at planning time: rates snapshotted from the
    // then-current model.
    const RateModel rates(catalog, q);
    d.units = {unit(0b01, 0, rates.bytes_rate(0b01)),
               unit(0b10, 4, rates.bytes_rate(0b10))};
    d.units[0].tuple_rate = rates.tuple_rate(0b01);
    d.units[1].tuple_rate = rates.tuple_rate(0b10);
    DeployedOp op;
    op.mask = 0b11;
    op.left = encode_unit_child(0);
    op.right = encode_unit_child(1);
    op.node = 2;
    op.out_bytes_rate = rates.bytes_rate(0b11);
    op.out_tuple_rate = rates.tuple_rate(0b11);
    d.ops = {op};
    d.sink = q.sink;
    validate_deployment(d);
  }
};

TEST(DeploymentTest, RateDriftOverloadTracksCatalogChanges) {
  DriftFixture f;
  // a: 10 t/s x 10 B = 100 B/s over 2 hops; b: 100 B/s over 2 hops;
  // joined: 10*5*0.01 = 0.5 t/s x 30 B = 15 B/s over 1 hop.
  const double planned = 100.0 * 2 + 100.0 * 2 + 15.0;
  EXPECT_DOUBLE_EQ(deployment_cost(f.d, f.rt), planned);
  EXPECT_DOUBLE_EQ(deployment_cost(f.d, RateModel(f.catalog, f.q), f.rt),
                   planned);

  // Stream a doubles after planning. The model overload re-prices every
  // edge from the live catalog; the recorded-rate overload keeps charging
  // the snapshot.
  f.catalog.set_tuple_rate(f.a, 20.0);
  const RateModel drifted(f.catalog, f.q);
  EXPECT_DOUBLE_EQ(deployment_cost(f.d, drifted, f.rt),
                   200.0 * 2 + 100.0 * 2 + 30.0);
  EXPECT_DOUBLE_EQ(deployment_cost(f.d, f.rt), planned);
}

TEST(DeploymentTest, RateDriftOverloadCapsAggregatedDelivery) {
  DriftFixture f;
  // One aggregate tuple per group per window caps the root->sink stream.
  f.q.aggregate.fn = AggregateFn::kCount;
  f.q.aggregate.groups = 2.0;
  f.q.aggregate.window_s = 1.0;
  f.q.aggregate.out_width = 24.0;
  // Join rate 0.5 t/s < 2 groups/s: delivery below the cap, 0.5 * 24 B.
  EXPECT_DOUBLE_EQ(deployment_cost(f.d, RateModel(f.catalog, f.q), f.rt),
                   100.0 * 2 + 100.0 * 2 + 0.5 * 24.0);
  // Rate growth pushes the join rate (10 t/s) past the cap: delivery pegs
  // at groups/window * out_width no matter how fast the sources get.
  f.catalog.set_tuple_rate(f.a, 200.0);
  EXPECT_DOUBLE_EQ(deployment_cost(f.d, RateModel(f.catalog, f.q), f.rt),
                   2000.0 * 2 + 100.0 * 2 + 2.0 * 24.0);
}

TEST(DeploymentTest, ChildEncodingRoundTrips) {
  for (int i : {0, 1, 5, 100}) {
    const int code = encode_unit_child(i);
    EXPECT_TRUE(child_is_unit(code));
    EXPECT_EQ(child_unit_index(code), i);
  }
  EXPECT_FALSE(child_is_unit(0));
  EXPECT_FALSE(child_is_unit(3));
}

}  // namespace
}  // namespace iflow::query
