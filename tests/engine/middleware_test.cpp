#include "engine/middleware.h"

#include <gtest/gtest.h>

#include "net/gtitm.h"
#include "workload/generator.h"

namespace iflow::engine {
namespace {

struct World {
  net::Network net;
  workload::Workload wl;

  explicit World(std::uint64_t seed, int queries = 4) {
    Prng prng(seed);
    net::TransitStubParams p;
    p.transit_count = 2;
    p.stub_domains_per_transit = 2;
    p.stub_domain_size = 4;
    net = net::make_transit_stub(p, prng);
    workload::WorkloadParams wp;
    wp.num_streams = 6;
    wp.min_joins = 2;
    wp.max_joins = 3;
    Prng wprng(seed + 1);
    wl = workload::make_workload(net, wp, queries, wprng);
  }
};

TEST(MiddlewareTest, DeployTracksActiveQueriesAndCosts) {
  World w(1);
  Middleware mw(w.net, w.wl.catalog, 4, Algorithm::kTopDown, 99);
  double total = 0.0;
  for (const query::Query& q : w.wl.queries) {
    const opt::OptimizeResult r = mw.deploy(q);
    ASSERT_TRUE(r.feasible);
    total += r.actual_cost;
  }
  EXPECT_EQ(mw.active_queries(), w.wl.queries.size());
  EXPECT_NEAR(mw.total_current_cost(), total, 1e-6 * (1.0 + total));
  EXPECT_GT(mw.registry().size(), 0u);
}

TEST(MiddlewareTest, NoAdaptationWithoutDrift) {
  World w(2);
  Middleware mw(w.net, w.wl.catalog, 4, Algorithm::kTopDown, 99);
  for (const query::Query& q : w.wl.queries) mw.deploy(q);
  EXPECT_TRUE(mw.adapt().empty());
}

TEST(MiddlewareTest, AdaptsWhenLinkCostSpikes) {
  World w(3);
  Middleware mw(w.net, w.wl.catalog, 4, Algorithm::kExhaustive, 99,
                /*drift_threshold=*/1.05);
  for (const query::Query& q : w.wl.queries) mw.deploy(q);
  const double before = mw.total_current_cost();

  // Blow up the cost of every link touching node 0's neighbourhood — some
  // deployment almost certainly crosses it.
  int changed = 0;
  for (const net::Link& l : std::vector<net::Link>(w.net.links())) {
    if (l.a == 0 || l.b == 0 || l.a == 1 || l.b == 1) {
      mw.set_link_cost(l.a, l.b, l.cost_per_byte * 50.0);
      ++changed;
    }
  }
  ASSERT_GT(changed, 0);
  const double drifted = mw.total_current_cost();

  const std::vector<Redeployment> redeployed = mw.adapt();
  const double after = mw.total_current_cost();
  EXPECT_LE(after, drifted + 1e-9);
  for (const Redeployment& r : redeployed) {
    EXPECT_LE(r.adapted_cost, r.drifted_cost + 1e-9);
  }
  // Costs should not fall below the pre-change level by magic.
  EXPECT_GE(after, 0.0);
  (void)before;
}

TEST(MiddlewareTest, AdaptedDeploymentsRemainValid) {
  World w(4);
  Middleware mw(w.net, w.wl.catalog, 4, Algorithm::kBottomUp, 17,
                /*drift_threshold=*/1.01);
  for (const query::Query& q : w.wl.queries) mw.deploy(q);
  for (const net::Link& l : std::vector<net::Link>(w.net.links())) {
    if (w.net.kind(l.a) == net::NodeKind::kTransit &&
        w.net.kind(l.b) == net::NodeKind::kTransit) {
      mw.set_link_cost(l.a, l.b, l.cost_per_byte * 20.0);
    }
  }
  mw.adapt();
  // total_current_cost() revalidates deployments via deployment_cost; this
  // must not throw.
  EXPECT_GE(mw.total_current_cost(), 0.0);
  EXPECT_GT(mw.registry().size(), 0u);
}

}  // namespace
}  // namespace iflow::engine
