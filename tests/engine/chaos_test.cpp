// Seeded chaos scenarios over the failure & churn subsystem.
//
// Each scenario replays a deterministic schedule of crashes, processing
// failures, link flaps, restores and rate spikes against a live Middleware
// and asserts the DESIGN.md §10 invariants: the validator stays silent
// after every event, full restoration resumes every suspended query, the
// churned system converges to within a constant factor of a fresh
// optimization of the same end state, and the whole transcript is
// bitwise-identical across planner thread counts.
#include <gtest/gtest.h>

#include <cmath>

#include "engine/chaos.h"
#include "net/gtitm.h"
#include "workload/generator.h"

namespace iflow::engine {
namespace {

struct Scenario {
  net::Network net;
  workload::Workload wl;

  explicit Scenario(std::uint64_t seed, int queries = 4) {
    Prng prng(seed);
    net::TransitStubParams p;
    p.transit_count = 2;
    p.stub_domains_per_transit = 2;
    p.stub_domain_size = 4;
    net = net::make_transit_stub(p, prng);
    workload::WorkloadParams wp;
    wp.num_streams = 6;
    wp.min_joins = 2;
    wp.max_joins = 3;
    Prng wprng(seed + 1);
    wl = workload::make_workload(net, wp, queries, wprng);
  }
};

constexpr std::uint64_t kBaseSeed = 20070806;
constexpr int kScenarios = 20;
constexpr int kEventsPerScenario = 32;

TEST(ChaosTest, TwentySeededScenariosHoldEveryInvariant) {
  for (int i = 0; i < kScenarios; ++i) {
    const std::uint64_t seed = kBaseSeed + static_cast<std::uint64_t>(i);
    Scenario s(seed);
    ChaosConfig cfg;
    cfg.events = kEventsPerScenario;
    const ChaosReport report =
        run_churn(s.net, s.wl.catalog, s.wl.queries, 4,
                  Algorithm::kTopDown, seed, cfg);

    ASSERT_EQ(report.steps.size(),
              static_cast<std::size_t>(kEventsPerScenario));
    EXPECT_EQ(report.violations, 0u)
        << "seed " << seed << ": " << report.violation_detail;
    EXPECT_TRUE(report.all_resumed) << "seed " << seed;
    EXPECT_TRUE(report.converged)
        << "seed " << seed << ": final " << report.final_cost << " vs fresh "
        << report.fresh_cost;
    // Active + suspended always accounts for the whole workload: queries
    // are parked, never lost.
    for (const ChaosStep& step : report.steps) {
      EXPECT_EQ(step.active + step.suspended, s.wl.queries.size())
          << "seed " << seed;
      EXPECT_TRUE(std::isfinite(step.total_cost)) << "seed " << seed;
    }
  }
}

TEST(ChaosTest, DigestIsBitwiseDeterministicAcrossThreadCounts) {
  for (std::uint64_t seed : {kBaseSeed, kBaseSeed + 7, kBaseSeed + 13}) {
    Scenario s(seed);
    ChaosConfig serial;
    serial.events = kEventsPerScenario;
    serial.threads = 1;
    ChaosConfig parallel = serial;
    parallel.threads = 4;
    const ChaosReport a = run_churn(s.net, s.wl.catalog, s.wl.queries, 4,
                                    Algorithm::kTopDown, seed, serial);
    const ChaosReport b = run_churn(s.net, s.wl.catalog, s.wl.queries, 4,
                                    Algorithm::kTopDown, seed, parallel);
    EXPECT_EQ(a.digest, b.digest) << "seed " << seed;
    EXPECT_EQ(a.final_cost, b.final_cost) << "seed " << seed;
  }
}

TEST(ChaosTest, ReplaySameSeedIsIdentical) {
  Scenario s(kBaseSeed + 3);
  ChaosConfig cfg;
  cfg.events = kEventsPerScenario;
  const ChaosReport a = run_churn(s.net, s.wl.catalog, s.wl.queries, 4,
                                  Algorithm::kTopDown, kBaseSeed + 3, cfg);
  const ChaosReport b = run_churn(s.net, s.wl.catalog, s.wl.queries, 4,
                                  Algorithm::kTopDown, kBaseSeed + 3, cfg);
  EXPECT_EQ(a.digest, b.digest);
}

/// Loss, jitter and queue-pressure events mixed into the usual crash/flap
/// churn. After the schedule the delivery contract must hold: with per-link
/// loss capped far below the retry budget's tolerance, every surviving
/// query delivers exactly its loss-free baseline counts (at-least-once +
/// dedup = effectively exactly-once) with zero tuples lost after retries.
ChaosConfig loss_config() {
  ChaosConfig cfg;
  cfg.events = kEventsPerScenario;
  cfg.loss_probability = 0.25;
  cfg.jitter_probability = 0.15;
  cfg.queue_probability = 0.1;
  cfg.delivery_check = true;
  return cfg;
}

TEST(ChaosTest, LossChurnPreservesDeliveryCounts) {
  for (int i = 0; i < 3; ++i) {
    const std::uint64_t seed = kBaseSeed + 40 + static_cast<std::uint64_t>(i);
    Scenario s(seed);
    const ChaosReport report = run_churn(s.net, s.wl.catalog, s.wl.queries,
                                         4, Algorithm::kTopDown, seed,
                                         loss_config());
    EXPECT_EQ(report.violations, 0u)
        << "seed " << seed << ": " << report.violation_detail;
    EXPECT_TRUE(report.all_resumed) << "seed " << seed;
    ASSERT_TRUE(report.delivery_checked) << "seed " << seed;
    EXPECT_TRUE(report.delivery_ok) << "seed " << seed;
    EXPECT_GT(report.delivered_total, 0u) << "seed " << seed;

    // The schedule genuinely mixed delivery-layer events with faults.
    bool saw_loss = false;
    bool saw_fault = false;
    for (const ChaosStep& step : report.steps) {
      switch (step.event.kind) {
        case ChaosEventKind::kSetLinkLoss:
        case ChaosEventKind::kSetLinkJitter:
          EXPECT_GE(step.event.rate, 0.0);
          saw_loss = true;
          break;
        case ChaosEventKind::kCrashNode:
        case ChaosEventKind::kFailNode:
        case ChaosEventKind::kFailLink:
          saw_fault = true;
          break;
        default:
          break;
      }
    }
    EXPECT_TRUE(saw_loss) << "seed " << seed;
    EXPECT_TRUE(saw_fault) << "seed " << seed;
  }
}

TEST(ChaosTest, LossChurnDigestIsThreadCountInvariant) {
  const std::uint64_t seed = kBaseSeed + 41;
  Scenario s(seed);
  ChaosConfig serial = loss_config();
  serial.threads = 1;
  ChaosConfig parallel = loss_config();
  parallel.threads = 4;
  const ChaosReport a = run_churn(s.net, s.wl.catalog, s.wl.queries, 4,
                                  Algorithm::kTopDown, seed, serial);
  const ChaosReport b = run_churn(s.net, s.wl.catalog, s.wl.queries, 4,
                                  Algorithm::kTopDown, seed, parallel);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.delivered_total, b.delivered_total);
  EXPECT_EQ(a.retransmits_total, b.retransmits_total);
}

TEST(ChaosTest, InjectorNeverDrawsInvalidEvents) {
  Scenario s(kBaseSeed + 5);
  ChaosConfig cfg;
  cfg.max_down_nodes = 3;
  cfg.max_down_links = 4;
  cfg.gray_probability = 0.3;  // exercise the gray-failure families too
  FaultInjector inj(s.net, s.wl.catalog, cfg, 42);
  std::vector<char> node_down(s.net.node_count(), 0);
  std::vector<char> node_gray(s.net.node_count(), 0);
  std::size_t degraded = 0;
  std::size_t gray_events = 0;
  for (int i = 0; i < 500; ++i) {
    const ChaosEvent e = inj.next();
    switch (e.kind) {
      case ChaosEventKind::kCrashNode:
      case ChaosEventKind::kFailNode:
        ASSERT_FALSE(node_down[e.a]) << "double fault at event " << i;
        node_down[e.a] = 1;
        break;
      case ChaosEventKind::kRestoreNode:
        ASSERT_TRUE(node_down[e.a]) << "restore of a live node at " << i;
        node_down[e.a] = 0;
        break;
      case ChaosEventKind::kFailLink:
      case ChaosEventKind::kRestoreLink:
      case ChaosEventKind::kSetLinkLoss:
      case ChaosEventKind::kSetLinkJitter:
        ASSERT_NE(e.a, e.b);
        break;
      case ChaosEventKind::kRateSpike:
        ASSERT_LT(e.stream, s.wl.catalog.stream_count());
        ASSERT_GT(e.rate, 0.0);
        break;
      case ChaosEventKind::kQueuePressure:
        break;
      case ChaosEventKind::kDegradeNode:
        ASSERT_FALSE(node_gray[e.a]) << "double degradation at event " << i;
        // Every family carries a visible symptom.
        ASSERT_TRUE(e.slowdown >= 1.5 || e.rate > 0.0) << "event " << i;
        node_gray[e.a] = 1;
        ++degraded;
        ++gray_events;
        break;
      case ChaosEventKind::kDegradeLink:
        ASSERT_NE(e.a, e.b);
        ASSERT_TRUE(e.slowdown >= 1.5 || e.rate > 0.0) << "event " << i;
        ++degraded;
        ++gray_events;
        break;
      case ChaosEventKind::kClearNode:
        ASSERT_TRUE(node_gray[e.a]) << "clear of a well node at " << i;
        node_gray[e.a] = 0;
        ASSERT_GT(degraded, 0u);
        --degraded;
        break;
      case ChaosEventKind::kClearLink:
        ASSERT_NE(e.a, e.b);
        ASSERT_GT(degraded, 0u);
        --degraded;
        break;
    }
    ASSERT_LE(inj.down_nodes().size(), 3u);
    ASSERT_LE(inj.down_links().size(), 4u);
    ASSERT_LE(inj.down_nodes().size() * 2, s.net.node_count());
    ASSERT_LE(degraded, static_cast<std::size_t>(cfg.max_degraded));
  }
  EXPECT_GT(gray_events, 0u);  // the gray families actually fired
}

TEST(ChaosTest, CrashPartitionSuspendsAndHealsOnRestore) {
  // A dumbbell: two triangles joined by a single bridge. Crashing a bridge
  // endpoint partitions the network; the cross-partition query suspends
  // and resumes when the endpoint returns.
  net::Network net;
  const auto l0 = net.add_node();
  const auto l1 = net.add_node();
  const auto l2 = net.add_node();
  const auto r0 = net.add_node();
  const auto r1 = net.add_node();
  const auto r2 = net.add_node();
  net.add_link(l0, l1, 1.0, 1.0, 1e6);
  net.add_link(l1, l2, 1.0, 1.0, 1e6);
  net.add_link(l0, l2, 1.0, 1.0, 1e6);
  net.add_link(r0, r1, 1.0, 1.0, 1e6);
  net.add_link(r1, r2, 1.0, 1.0, 1e6);
  net.add_link(r0, r2, 1.0, 1.0, 1e6);
  net.add_link(l2, r0, 2.0, 1.0, 1e6);  // the bridge

  query::Catalog catalog;
  const auto a = catalog.add_stream("A", l0, 20.0, 50.0);
  const auto b = catalog.add_stream("B", r1, 20.0, 50.0);
  catalog.set_selectivity(a, b, 0.01);
  query::Query q;
  q.id = 1;
  q.sources = {a, b};
  q.sink = r2;

  Middleware mw(net, catalog, 3, Algorithm::kExhaustive, 9);
  ASSERT_TRUE(mw.deploy(q).feasible);

  // Crashing the left bridge endpoint severs A's side from the sink AND
  // kills no endpoint of the query itself — yet no plan can exist, so the
  // query must suspend rather than deploy across the partition.
  const auto reds = mw.crash_node(l2);
  ASSERT_EQ(reds.size(), 1u);
  EXPECT_EQ(reds.front().outcome, Outcome::kSuspended);
  EXPECT_EQ(mw.active_queries(), 0u);
  EXPECT_EQ(mw.suspended_queries(), 1u);

  const auto back = mw.restore_node(l2);
  bool resumed = false;
  for (const Redeployment& r : back) {
    resumed |= (r.outcome == Outcome::kResumed);
  }
  EXPECT_TRUE(resumed);
  EXPECT_EQ(mw.active_queries(), 1u);
  EXPECT_EQ(mw.suspended_queries(), 0u);
  EXPECT_TRUE(std::isfinite(mw.total_current_cost()));
}

TEST(ChaosTest, LinkFlapMigratesAcrossRedundantPaths) {
  // A square with a diagonal: failing one edge leaves the network
  // connected, so queries migrate (or stand pat) but never suspend.
  net::Network net;
  const auto n0 = net.add_node();
  const auto n1 = net.add_node();
  const auto n2 = net.add_node();
  const auto n3 = net.add_node();
  net.add_link(n0, n1, 1.0, 1.0, 1e6);
  net.add_link(n1, n2, 1.0, 1.0, 1e6);
  net.add_link(n2, n3, 1.0, 1.0, 1e6);
  net.add_link(n3, n0, 1.0, 1.0, 1e6);
  net.add_link(n0, n2, 3.0, 1.0, 1e6);

  query::Catalog catalog;
  const auto a = catalog.add_stream("A", n0, 10.0, 40.0);
  const auto b = catalog.add_stream("B", n1, 10.0, 40.0);
  catalog.set_selectivity(a, b, 0.02);
  query::Query q;
  q.id = 7;
  q.sources = {a, b};
  q.sink = n2;

  Middleware mw(net, catalog, 3, Algorithm::kExhaustive, 11);
  ASSERT_TRUE(mw.deploy(q).feasible);

  const auto reds = mw.fail_link(n1, n2);
  for (const Redeployment& r : reds) {
    EXPECT_NE(r.outcome, Outcome::kSuspended);
  }
  EXPECT_EQ(mw.active_queries(), 1u);
  const double degraded = mw.total_current_cost();
  EXPECT_TRUE(std::isfinite(degraded));

  mw.restore_link(n1, n2);
  EXPECT_EQ(mw.active_queries(), 1u);
  // With the cheap edge back, adapt() can only improve or hold the cost.
  mw.adapt();
  EXPECT_LE(mw.total_current_cost(), degraded + 1e-9 * (1.0 + degraded));
}

TEST(ChaosTest, ResumeAttemptsAreBoundedUntilNextRestore) {
  // Crash a query's source node: the query suspends. adapt() retries at
  // most max_resume_attempts times, then stops burning replans until a
  // restore arrives.
  Scenario s(kBaseSeed + 11, /*queries=*/2);
  Middleware mw(s.net, s.wl.catalog, 4, Algorithm::kTopDown, 5);
  for (const query::Query& q : s.wl.queries) mw.deploy(q);
  mw.set_max_resume_attempts(2);

  const net::NodeId src = s.wl.catalog.stream(0).source;
  mw.crash_node(src);
  if (mw.suspended_queries() == 0) GTEST_SKIP() << "no query uses stream 0";

  for (int i = 0; i < 4; ++i) mw.adapt();
  for (const Middleware::SuspendedQuery& sq : mw.suspended()) {
    EXPECT_LE(sq.attempts, 2);
  }
  // The restore resets the budget and resumes everything.
  mw.restore_node(src);
  EXPECT_EQ(mw.suspended_queries(), 0u);
  EXPECT_EQ(mw.active_queries(), s.wl.queries.size());
}

}  // namespace
}  // namespace iflow::engine
