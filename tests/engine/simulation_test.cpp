#include "engine/simulation.h"

#include <gtest/gtest.h>

#include "net/gtitm.h"
#include "opt/exhaustive.h"
#include "opt/top_down.h"
#include "workload/generator.h"

namespace iflow::engine {
namespace {

struct World {
  net::Network net;
  net::RoutingTables rt;
  query::Catalog catalog;

  explicit World(std::uint64_t seed) {
    Prng prng(seed);
    net::TransitStubParams p;
    p.transit_count = 2;
    p.stub_domains_per_transit = 2;
    p.stub_domain_size = 3;
    net = net::make_transit_stub(p, prng);
    rt = net::RoutingTables::build(net);
  }
};

EngineConfig low_variance_config(double duration = 40.0) {
  EngineConfig cfg;
  cfg.duration_s = duration;
  cfg.window_s = 0.5;
  cfg.poisson = false;  // deterministic arrivals for tight tolerances
  return cfg;
}

TEST(SimulationTest, SingleStreamDeliveryMatchesRateAndCost) {
  World w(1);
  const query::StreamId s = w.catalog.add_stream("A", 0, 50.0, 100.0);
  query::Query q;
  q.id = 1;
  q.sources = {s};
  q.sink = static_cast<net::NodeId>(w.net.node_count() - 1);
  query::RateModel rates(w.catalog, q);

  query::Deployment d;
  d.query = q.id;
  query::LeafUnit u;
  u.mask = 1;
  u.location = 0;
  u.bytes_rate = rates.bytes_rate(1);
  u.tuple_rate = rates.tuple_rate(1);
  d.units = {u};
  d.sink = q.sink;

  Simulation sim(w.net, w.rt, w.catalog, low_variance_config(), 7);
  sim.deploy(d, rates);
  sim.run();

  EXPECT_NEAR(sim.delivered_rate(q.id), 50.0, 2.0);
  const double analytic = query::deployment_cost(d, w.rt);
  EXPECT_NEAR(sim.measured_cost_per_second(), analytic, 0.05 * analytic);
}

TEST(SimulationTest, JoinOutputRateMatchesAnalyticModel) {
  World w(2);
  const query::StreamId a = w.catalog.add_stream("A", 0, 40.0, 80.0);
  const query::StreamId b = w.catalog.add_stream("B", 1, 40.0, 80.0);
  w.catalog.set_selectivity(a, b, 0.02);  // exact inverse: domain 50

  query::Query q;
  q.id = 2;
  q.sources = {a, b};
  q.sink = 5;
  query::RateModel rates(w.catalog, q);

  opt::OptimizerEnv env;
  env.catalog = &w.catalog;
  env.network = &w.net;
  env.routing = &w.rt;
  env.reuse = false;
  opt::ExhaustiveOptimizer ex(env);
  const opt::OptimizeResult res = ex.optimize(q);
  ASSERT_TRUE(res.feasible);

  Simulation sim(w.net, w.rt, w.catalog, low_variance_config(60.0), 11);
  sim.deploy(res.deployment, rates);
  sim.run();

  // Analytic: 40 * 40 * 0.02 = 32 result tuples per second.
  EXPECT_NEAR(sim.delivered_rate(q.id), 32.0, 5.0);
  EXPECT_NEAR(sim.measured_cost_per_second(), res.actual_cost,
              0.15 * res.actual_cost + 1e-9);
}

TEST(SimulationTest, ThreeWayJoinCostTracksPlannedCost) {
  World w(3);
  const query::StreamId a = w.catalog.add_stream("A", 0, 30.0, 60.0);
  const query::StreamId b = w.catalog.add_stream("B", 3, 30.0, 60.0);
  const query::StreamId c = w.catalog.add_stream("C", 7, 30.0, 60.0);
  w.catalog.set_selectivity(a, b, 0.05);
  w.catalog.set_selectivity(a, c, 0.04);
  w.catalog.set_selectivity(b, c, 0.025);

  query::Query q;
  q.id = 3;
  q.sources = {a, b, c};
  q.sink = 9;
  query::RateModel rates(w.catalog, q);

  opt::OptimizerEnv env;
  env.catalog = &w.catalog;
  env.network = &w.net;
  env.routing = &w.rt;
  env.reuse = false;
  opt::ExhaustiveOptimizer ex(env);
  const opt::OptimizeResult res = ex.optimize(q);
  ASSERT_TRUE(res.feasible);

  Simulation sim(w.net, w.rt, w.catalog, low_variance_config(60.0), 13);
  sim.deploy(res.deployment, rates);
  sim.run();
  // The dominant cost comes from base-stream edges (deterministic); join
  // outputs add stochastic but small contributions.
  EXPECT_NEAR(sim.measured_cost_per_second(), res.actual_cost,
              0.2 * res.actual_cost + 1e-9);
}

TEST(SimulationTest, ReusedOperatorStreamsOnlyOnce) {
  // Two identical queries with different sinks. With reuse, the second
  // deployment adds only a provider→sink edge; base streams flow once.
  World w(4);
  const query::StreamId a = w.catalog.add_stream("A", 0, 40.0, 100.0);
  const query::StreamId b = w.catalog.add_stream("B", 2, 40.0, 100.0);
  w.catalog.set_selectivity(a, b, 0.02);

  query::Query q1;
  q1.id = 10;
  q1.sources = {a, b};
  q1.sink = 8;
  query::Query q2 = q1;
  q2.id = 11;
  q2.sink = 9;
  query::RateModel rates1(w.catalog, q1);
  query::RateModel rates2(w.catalog, q2);

  opt::OptimizerEnv env;
  env.catalog = &w.catalog;
  env.network = &w.net;
  env.routing = &w.rt;
  advert::Registry registry;
  env.registry = &registry;
  env.reuse = true;
  opt::ExhaustiveOptimizer ex(env);

  const opt::OptimizeResult r1 = ex.optimize(q1);
  advert::advertise_deployment(registry, r1.deployment, rates1);
  const opt::OptimizeResult r2 = ex.optimize(q2);
  ASSERT_TRUE(r2.feasible);
  // The second plan must reuse a derived stream rather than re-join.
  bool reused = false;
  for (const query::LeafUnit& u : r2.deployment.units) reused |= u.derived;
  ASSERT_TRUE(reused);

  Simulation sim(w.net, w.rt, w.catalog, low_variance_config(60.0), 17);
  sim.deploy(r1.deployment, rates1);
  sim.deploy(r2.deployment, rates2);
  sim.run();

  EXPECT_GT(sim.tuples_delivered(q1.id), 0u);
  EXPECT_GT(sim.tuples_delivered(q2.id), 0u);
  // Both sinks receive comparable result volumes from ONE joint pipeline.
  EXPECT_NEAR(static_cast<double>(sim.tuples_delivered(q2.id)),
              static_cast<double>(sim.tuples_delivered(q1.id)),
              0.35 * static_cast<double>(sim.tuples_delivered(q1.id)) + 10.0);
  // Measured total tracks the combined marginal costs.
  const double combined = r1.actual_cost + r2.actual_cost;
  EXPECT_NEAR(sim.measured_cost_per_second(), combined, 0.2 * combined + 1e-9);
}

TEST(SimulationTest, DerivedUnitWithoutProducerIsRejected) {
  World w(5);
  const query::StreamId a = w.catalog.add_stream("A", 0, 10.0, 10.0);
  const query::StreamId b = w.catalog.add_stream("B", 1, 10.0, 10.0);
  w.catalog.set_selectivity(a, b, 0.1);
  query::Query q;
  q.id = 20;
  q.sources = {a, b};
  q.sink = 3;
  query::RateModel rates(w.catalog, q);

  query::Deployment d;
  d.query = q.id;
  query::LeafUnit u;
  u.mask = 0b11;
  u.location = 2;
  u.derived = true;
  u.bytes_rate = rates.bytes_rate(0b11);
  u.tuple_rate = rates.tuple_rate(0b11);
  d.units = {u};
  d.sink = q.sink;

  Simulation sim(w.net, w.rt, w.catalog, low_variance_config(), 19);
  EXPECT_THROW(sim.deploy(d, rates), CheckError);
}

TEST(SimulationTest, SelectiveJoinProducesNoSpuriousMatches) {
  // Selectivity 1/1000 with low rates: expect (almost) no output.
  World w(6);
  const query::StreamId a = w.catalog.add_stream("A", 0, 5.0, 10.0);
  const query::StreamId b = w.catalog.add_stream("B", 1, 5.0, 10.0);
  w.catalog.set_selectivity(a, b, 0.001);
  query::Query q;
  q.id = 30;
  q.sources = {a, b};
  q.sink = 4;
  query::RateModel rates(w.catalog, q);

  opt::OptimizerEnv env;
  env.catalog = &w.catalog;
  env.network = &w.net;
  env.routing = &w.rt;
  env.reuse = false;
  opt::ExhaustiveOptimizer ex(env);
  const opt::OptimizeResult res = ex.optimize(q);

  Simulation sim(w.net, w.rt, w.catalog, low_variance_config(30.0), 23);
  sim.deploy(res.deployment, rates);
  sim.run();
  // Expected output: 5*5*0.001 = 0.025/s => ~0.75 tuples in 30 s.
  EXPECT_LE(sim.tuples_delivered(q.id), 6u);
}

TEST(SimulationTest, PoissonAndDeterministicAgreeOnAverages) {
  World w(7);
  const query::StreamId a = w.catalog.add_stream("A", 0, 50.0, 50.0);
  query::Query q;
  q.id = 40;
  q.sources = {a};
  q.sink = 6;
  query::RateModel rates(w.catalog, q);
  query::Deployment d;
  d.query = q.id;
  query::LeafUnit u;
  u.mask = 1;
  u.location = 0;
  u.bytes_rate = rates.bytes_rate(1);
  u.tuple_rate = rates.tuple_rate(1);
  d.units = {u};
  d.sink = q.sink;

  EngineConfig det = low_variance_config(40.0);
  EngineConfig poi = det;
  poi.poisson = true;

  Simulation s1(w.net, w.rt, w.catalog, det, 29);
  s1.deploy(d, rates);
  s1.run();
  Simulation s2(w.net, w.rt, w.catalog, poi, 31);
  s2.deploy(d, rates);
  s2.run();
  EXPECT_NEAR(s1.delivered_rate(q.id), s2.delivered_rate(q.id),
              0.12 * s1.delivered_rate(q.id));
}

/// Line 0—1—2 with one stream at node 0 delivered to a sink at node 2;
/// crashing node 1 severs the only route.
struct FaultRig {
  net::Network net;
  net::RoutingTables rt;
  query::Catalog catalog;
  query::Query q;
  query::Deployment d;

  FaultRig() {
    for (int i = 0; i < 3; ++i) net.add_node();
    net.add_link(0, 1, 1.0, 1.0, 1e6);
    net.add_link(1, 2, 1.0, 1.0, 1e6);
    rt = net::RoutingTables::build(net);
    const query::StreamId s = catalog.add_stream("A", 0, 50.0, 100.0);
    q.id = 50;
    q.sources = {s};
    q.sink = 2;
    query::RateModel rates(catalog, q);
    d.query = q.id;
    query::LeafUnit u;
    u.mask = 1;
    u.location = 0;
    u.bytes_rate = rates.bytes_rate(1);
    u.tuple_rate = rates.tuple_rate(1);
    d.units = {u};
    d.sink = q.sink;
  }
};

TEST(SimulationFaultTest, NoFaultsMeansFullAvailabilityAndZeroDowntime) {
  FaultRig r;
  query::RateModel rates(r.catalog, r.q);
  Simulation sim(r.net, r.rt, r.catalog, low_variance_config(), 7);
  sim.deploy(r.d, rates);
  sim.run();
  EXPECT_NEAR(sim.availability(r.q.id), 1.0, 0.05);
  EXPECT_DOUBLE_EQ(sim.downtime_s(r.q.id), 0.0);
  EXPECT_EQ(sim.tuples_dropped(), 0u);
}

TEST(SimulationFaultTest, MidRunCrashHalvesAvailability) {
  FaultRig r;
  query::RateModel rates(r.catalog, r.q);
  Simulation sim(r.net, r.rt, r.catalog, low_variance_config(40.0), 7);
  sim.deploy(r.d, rates);
  sim.schedule_fault({20.0, SimFault::Kind::kCrashNode, 1, net::kInvalidNode});
  sim.run();
  // Delivery works for the first half only; the severed route drops the
  // rest in flight (or at the source's send).
  EXPECT_NEAR(sim.availability(r.q.id), 0.5, 0.05);
  EXPECT_NEAR(sim.downtime_s(r.q.id), 20.0, 0.5);
  EXPECT_GT(sim.tuples_dropped(), 0u);
}

TEST(SimulationFaultTest, RestoreResumesDelivery) {
  FaultRig r;
  query::RateModel rates(r.catalog, r.q);
  Simulation sim(r.net, r.rt, r.catalog, low_variance_config(40.0), 7);
  sim.deploy(r.d, rates);
  sim.schedule_fault({10.0, SimFault::Kind::kCrashNode, 1, net::kInvalidNode});
  sim.schedule_fault({20.0, SimFault::Kind::kRestoreNode, 1,
                      net::kInvalidNode});
  sim.run();
  EXPECT_NEAR(sim.availability(r.q.id), 0.75, 0.05);
  EXPECT_NEAR(sim.downtime_s(r.q.id), 10.0, 0.5);
}

TEST(SimulationFaultTest, LinkFlapDropsOnlyTheOutageWindow) {
  FaultRig r;
  query::RateModel rates(r.catalog, r.q);
  Simulation sim(r.net, r.rt, r.catalog, low_variance_config(40.0), 7);
  sim.deploy(r.d, rates);
  sim.schedule_fault({10.0, SimFault::Kind::kFailLink, 0, 1});
  sim.schedule_fault({30.0, SimFault::Kind::kRestoreLink, 0, 1});
  sim.run();
  EXPECT_NEAR(sim.availability(r.q.id), 0.5, 0.05);
  EXPECT_NEAR(sim.downtime_s(r.q.id), 20.0, 0.5);
  EXPECT_GT(sim.tuples_dropped(), 0u);
}

EngineConfig reliable_config(double duration = 30.0) {
  EngineConfig cfg;
  cfg.duration_s = duration;
  cfg.poisson = false;
  cfg.reliability.enabled = true;
  return cfg;
}

TEST(SimulationReliabilityTest, LossyRunDeliversLossFreeCounts) {
  FaultRig clean_rig;
  query::RateModel clean_rates(clean_rig.catalog, clean_rig.q);
  Simulation clean(clean_rig.net, clean_rig.rt, clean_rig.catalog,
                   reliable_config(), 7);
  clean.deploy(clean_rig.d, clean_rates);
  clean.run();

  FaultRig lossy_rig;
  lossy_rig.net.set_link_loss(0, 1, 0.08);
  lossy_rig.net.set_link_loss(1, 2, 0.08);
  query::RateModel lossy_rates(lossy_rig.catalog, lossy_rig.q);
  Simulation lossy(lossy_rig.net, lossy_rig.rt, lossy_rig.catalog,
                   reliable_config(), 7);
  lossy.deploy(lossy_rig.d, lossy_rates);
  lossy.run();

  // Ack-based retransmission + receiver dedup: the lossy run delivers
  // exactly the loss-free counts (at-least-once made effectively
  // exactly-once), at the price of retransmissions and suppressed
  // duplicates from lost acks.
  ASSERT_GT(clean.tuples_delivered(clean_rig.q.id), 0u);
  EXPECT_EQ(lossy.tuples_delivered(lossy_rig.q.id),
            clean.tuples_delivered(clean_rig.q.id));
  const DeliveryStats ds = lossy.delivery_stats(lossy_rig.q.id);
  EXPECT_EQ(ds.lost, 0u);
  EXPECT_GT(ds.retransmits, 0u);
  EXPECT_GT(ds.duplicates, 0u);
  EXPECT_GT(ds.retransmit_bytes, 0.0);
  EXPECT_EQ(clean.delivery_stats(clean_rig.q.id).retransmits, 0u);
}

TEST(SimulationReliabilityTest, ReplayAfterLinkFlapLosesNothing) {
  FaultRig clean_rig;
  query::RateModel clean_rates(clean_rig.catalog, clean_rig.q);
  Simulation clean(clean_rig.net, clean_rig.rt, clean_rig.catalog,
                   reliable_config(), 7);
  clean.deploy(clean_rig.d, clean_rates);
  clean.run();

  // A 2 s outage sits well inside the retry budget's reach (12 retries
  // with the backoff capped at 0.4 s spans > 4 s), so the ack-trimmed
  // replay buffer re-delivers everything sent into the dead link.
  FaultRig r;
  query::RateModel rates(r.catalog, r.q);
  Simulation sim(r.net, r.rt, r.catalog, reliable_config(), 7);
  sim.deploy(r.d, rates);
  sim.schedule_fault({10.0, SimFault::Kind::kFailLink, 0, 1});
  sim.schedule_fault({12.0, SimFault::Kind::kRestoreLink, 0, 1});
  sim.run();

  EXPECT_EQ(sim.tuples_delivered(r.q.id),
            clean.tuples_delivered(clean_rig.q.id));
  const DeliveryStats ds = sim.delivery_stats(r.q.id);
  EXPECT_EQ(ds.lost, 0u);
  EXPECT_GT(ds.retransmits, 0u);
}

TEST(SimulationReliabilityTest, ReplayAfterShortCrashLosesNothing) {
  FaultRig clean_rig;
  query::RateModel clean_rates(clean_rig.catalog, clean_rig.q);
  Simulation clean(clean_rig.net, clean_rig.rt, clean_rig.catalog,
                   reliable_config(), 7);
  clean.deploy(clean_rig.d, clean_rates);
  clean.run();

  FaultRig r;
  query::RateModel rates(r.catalog, r.q);
  Simulation sim(r.net, r.rt, r.catalog, reliable_config(), 7);
  sim.deploy(r.d, rates);
  sim.schedule_fault({10.0, SimFault::Kind::kCrashNode, 1, net::kInvalidNode});
  sim.schedule_fault({12.0, SimFault::Kind::kRestoreNode, 1,
                      net::kInvalidNode});
  sim.run();

  EXPECT_EQ(sim.tuples_delivered(r.q.id),
            clean.tuples_delivered(clean_rig.q.id));
  EXPECT_EQ(sim.delivery_stats(r.q.id).lost, 0u);
}

TEST(SimulationReliabilityTest, MidRunLossFaultForcesRetransmission) {
  FaultRig r;
  query::RateModel rates(r.catalog, r.q);
  Simulation sim(r.net, r.rt, r.catalog, reliable_config(), 7);
  sim.deploy(r.d, rates);
  sim.schedule_fault({5.0, SimFault::Kind::kSetLinkLoss, 0, 1, 0.10});
  sim.schedule_fault({5.0, SimFault::Kind::kSetLinkJitter, 1, 2, 2.0});
  sim.run();

  const DeliveryStats ds = sim.delivery_stats(r.q.id);
  EXPECT_GT(ds.retransmits, 0u);
  EXPECT_EQ(ds.lost, 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(sim.tuples_emitted()), ds.delivered);
}

TEST(SimulationReliabilityTest, BackpressureNeverDropsAndBoundsDepth) {
  FaultRig r;
  query::RateModel rates(r.catalog, r.q);
  EngineConfig cfg = reliable_config();
  cfg.poisson = true;  // bursts actually exercise the bounded queue
  cfg.reliability.queue_capacity = 4;
  cfg.reliability.service_s = 0.015;  // 50 t/s arrivals: utilization 0.75
  cfg.reliability.overflow = OverflowPolicy::kBackpressure;
  Simulation sim(r.net, r.rt, r.catalog, cfg, 7);
  sim.deploy(r.d, rates);
  sim.run();

  const DeliveryStats ds = sim.delivery_stats(r.q.id);
  // Backpressure refuses instead of dropping: everything emitted is
  // eventually serviced, and the queue never exceeds its capacity.
  EXPECT_EQ(ds.shed, 0u);
  EXPECT_EQ(ds.lost, 0u);
  EXPECT_EQ(ds.delivered, sim.tuples_emitted());
  EXPECT_GE(ds.max_queue_depth, 2u);
  EXPECT_LE(ds.max_queue_depth, 4u);
}

TEST(SimulationReliabilityTest, DropPoliciesShedExactlyTheOverload) {
  // Sustained 2x overload (50 t/s into a 25 t/s server): every emitted
  // tuple is either delivered or shed, never silently lost, under both
  // shedding policies.
  const auto run_policy = [](OverflowPolicy policy) {
    FaultRig r;
    query::RateModel rates(r.catalog, r.q);
    EngineConfig cfg = reliable_config();
    cfg.reliability.queue_capacity = 4;
    cfg.reliability.service_s = 0.04;
    cfg.reliability.overflow = policy;
    Simulation sim(r.net, r.rt, r.catalog, cfg, 7);
    sim.deploy(r.d, rates);
    sim.run();
    const DeliveryStats ds = sim.delivery_stats(r.q.id);
    EXPECT_EQ(ds.delivered + ds.shed, sim.tuples_emitted());
    EXPECT_GT(ds.shed, 0u);
    EXPECT_GT(ds.delivered, 0u);
    EXPECT_EQ(ds.lost, 0u);
    return std::make_pair(ds, sim.mean_latency_ms(r.q.id));
  };

  const auto [oldest, oldest_latency] =
      run_policy(OverflowPolicy::kDropOldest);
  const auto [newest, newest_latency] =
      run_policy(OverflowPolicy::kDropNewest);
  // Drop-oldest favours fresh tuples: what it delivers queued for less
  // time than drop-newest's survivors, which sat through a full queue.
  EXPECT_LT(oldest_latency, newest_latency);
  // Both run service-bound at ~25 t/s, so they shed similar volumes.
  EXPECT_NEAR(static_cast<double>(oldest.shed),
              static_cast<double>(newest.shed),
              0.2 * static_cast<double>(newest.shed));
}

TEST(SimulationFaultTest, CrashedSourcePausesEmission) {
  FaultRig r;
  query::RateModel rates(r.catalog, r.q);
  Simulation sim(r.net, r.rt, r.catalog, low_variance_config(40.0), 7);
  sim.deploy(r.d, rates);
  sim.schedule_fault({20.0, SimFault::Kind::kCrashNode, 0, net::kInvalidNode});
  sim.run();
  // The source stops producing: nothing is dropped downstream, delivery
  // just halves.
  EXPECT_NEAR(sim.availability(r.q.id), 0.5, 0.05);
  EXPECT_NEAR(static_cast<double>(sim.tuples_emitted()), 50.0 * 20.0,
              50.0 * 2.0);
}

}  // namespace
}  // namespace iflow::engine
