#include "engine/simulation.h"

#include <gtest/gtest.h>

#include "net/gtitm.h"
#include "opt/exhaustive.h"
#include "opt/top_down.h"
#include "workload/generator.h"

namespace iflow::engine {
namespace {

struct World {
  net::Network net;
  net::RoutingTables rt;
  query::Catalog catalog;

  explicit World(std::uint64_t seed) {
    Prng prng(seed);
    net::TransitStubParams p;
    p.transit_count = 2;
    p.stub_domains_per_transit = 2;
    p.stub_domain_size = 3;
    net = net::make_transit_stub(p, prng);
    rt = net::RoutingTables::build(net);
  }
};

EngineConfig low_variance_config(double duration = 40.0) {
  EngineConfig cfg;
  cfg.duration_s = duration;
  cfg.window_s = 0.5;
  cfg.poisson = false;  // deterministic arrivals for tight tolerances
  return cfg;
}

TEST(SimulationTest, SingleStreamDeliveryMatchesRateAndCost) {
  World w(1);
  const query::StreamId s = w.catalog.add_stream("A", 0, 50.0, 100.0);
  query::Query q;
  q.id = 1;
  q.sources = {s};
  q.sink = static_cast<net::NodeId>(w.net.node_count() - 1);
  query::RateModel rates(w.catalog, q);

  query::Deployment d;
  d.query = q.id;
  query::LeafUnit u;
  u.mask = 1;
  u.location = 0;
  u.bytes_rate = rates.bytes_rate(1);
  u.tuple_rate = rates.tuple_rate(1);
  d.units = {u};
  d.sink = q.sink;

  Simulation sim(w.net, w.rt, w.catalog, low_variance_config(), 7);
  sim.deploy(d, rates);
  sim.run();

  EXPECT_NEAR(sim.delivered_rate(q.id), 50.0, 2.0);
  const double analytic = query::deployment_cost(d, w.rt);
  EXPECT_NEAR(sim.measured_cost_per_second(), analytic, 0.05 * analytic);
}

TEST(SimulationTest, JoinOutputRateMatchesAnalyticModel) {
  World w(2);
  const query::StreamId a = w.catalog.add_stream("A", 0, 40.0, 80.0);
  const query::StreamId b = w.catalog.add_stream("B", 1, 40.0, 80.0);
  w.catalog.set_selectivity(a, b, 0.02);  // exact inverse: domain 50

  query::Query q;
  q.id = 2;
  q.sources = {a, b};
  q.sink = 5;
  query::RateModel rates(w.catalog, q);

  opt::OptimizerEnv env;
  env.catalog = &w.catalog;
  env.network = &w.net;
  env.routing = &w.rt;
  env.reuse = false;
  opt::ExhaustiveOptimizer ex(env);
  const opt::OptimizeResult res = ex.optimize(q);
  ASSERT_TRUE(res.feasible);

  Simulation sim(w.net, w.rt, w.catalog, low_variance_config(60.0), 11);
  sim.deploy(res.deployment, rates);
  sim.run();

  // Analytic: 40 * 40 * 0.02 = 32 result tuples per second.
  EXPECT_NEAR(sim.delivered_rate(q.id), 32.0, 5.0);
  EXPECT_NEAR(sim.measured_cost_per_second(), res.actual_cost,
              0.15 * res.actual_cost + 1e-9);
}

TEST(SimulationTest, ThreeWayJoinCostTracksPlannedCost) {
  World w(3);
  const query::StreamId a = w.catalog.add_stream("A", 0, 30.0, 60.0);
  const query::StreamId b = w.catalog.add_stream("B", 3, 30.0, 60.0);
  const query::StreamId c = w.catalog.add_stream("C", 7, 30.0, 60.0);
  w.catalog.set_selectivity(a, b, 0.05);
  w.catalog.set_selectivity(a, c, 0.04);
  w.catalog.set_selectivity(b, c, 0.025);

  query::Query q;
  q.id = 3;
  q.sources = {a, b, c};
  q.sink = 9;
  query::RateModel rates(w.catalog, q);

  opt::OptimizerEnv env;
  env.catalog = &w.catalog;
  env.network = &w.net;
  env.routing = &w.rt;
  env.reuse = false;
  opt::ExhaustiveOptimizer ex(env);
  const opt::OptimizeResult res = ex.optimize(q);
  ASSERT_TRUE(res.feasible);

  Simulation sim(w.net, w.rt, w.catalog, low_variance_config(60.0), 13);
  sim.deploy(res.deployment, rates);
  sim.run();
  // The dominant cost comes from base-stream edges (deterministic); join
  // outputs add stochastic but small contributions.
  EXPECT_NEAR(sim.measured_cost_per_second(), res.actual_cost,
              0.2 * res.actual_cost + 1e-9);
}

TEST(SimulationTest, ReusedOperatorStreamsOnlyOnce) {
  // Two identical queries with different sinks. With reuse, the second
  // deployment adds only a provider→sink edge; base streams flow once.
  World w(4);
  const query::StreamId a = w.catalog.add_stream("A", 0, 40.0, 100.0);
  const query::StreamId b = w.catalog.add_stream("B", 2, 40.0, 100.0);
  w.catalog.set_selectivity(a, b, 0.02);

  query::Query q1;
  q1.id = 10;
  q1.sources = {a, b};
  q1.sink = 8;
  query::Query q2 = q1;
  q2.id = 11;
  q2.sink = 9;
  query::RateModel rates1(w.catalog, q1);
  query::RateModel rates2(w.catalog, q2);

  opt::OptimizerEnv env;
  env.catalog = &w.catalog;
  env.network = &w.net;
  env.routing = &w.rt;
  advert::Registry registry;
  env.registry = &registry;
  env.reuse = true;
  opt::ExhaustiveOptimizer ex(env);

  const opt::OptimizeResult r1 = ex.optimize(q1);
  advert::advertise_deployment(registry, r1.deployment, rates1);
  const opt::OptimizeResult r2 = ex.optimize(q2);
  ASSERT_TRUE(r2.feasible);
  // The second plan must reuse a derived stream rather than re-join.
  bool reused = false;
  for (const query::LeafUnit& u : r2.deployment.units) reused |= u.derived;
  ASSERT_TRUE(reused);

  Simulation sim(w.net, w.rt, w.catalog, low_variance_config(60.0), 17);
  sim.deploy(r1.deployment, rates1);
  sim.deploy(r2.deployment, rates2);
  sim.run();

  EXPECT_GT(sim.tuples_delivered(q1.id), 0u);
  EXPECT_GT(sim.tuples_delivered(q2.id), 0u);
  // Both sinks receive comparable result volumes from ONE joint pipeline.
  EXPECT_NEAR(static_cast<double>(sim.tuples_delivered(q2.id)),
              static_cast<double>(sim.tuples_delivered(q1.id)),
              0.35 * static_cast<double>(sim.tuples_delivered(q1.id)) + 10.0);
  // Measured total tracks the combined marginal costs.
  const double combined = r1.actual_cost + r2.actual_cost;
  EXPECT_NEAR(sim.measured_cost_per_second(), combined, 0.2 * combined + 1e-9);
}

TEST(SimulationTest, DerivedUnitWithoutProducerIsRejected) {
  World w(5);
  const query::StreamId a = w.catalog.add_stream("A", 0, 10.0, 10.0);
  const query::StreamId b = w.catalog.add_stream("B", 1, 10.0, 10.0);
  w.catalog.set_selectivity(a, b, 0.1);
  query::Query q;
  q.id = 20;
  q.sources = {a, b};
  q.sink = 3;
  query::RateModel rates(w.catalog, q);

  query::Deployment d;
  d.query = q.id;
  query::LeafUnit u;
  u.mask = 0b11;
  u.location = 2;
  u.derived = true;
  u.bytes_rate = rates.bytes_rate(0b11);
  u.tuple_rate = rates.tuple_rate(0b11);
  d.units = {u};
  d.sink = q.sink;

  Simulation sim(w.net, w.rt, w.catalog, low_variance_config(), 19);
  EXPECT_THROW(sim.deploy(d, rates), CheckError);
}

TEST(SimulationTest, SelectiveJoinProducesNoSpuriousMatches) {
  // Selectivity 1/1000 with low rates: expect (almost) no output.
  World w(6);
  const query::StreamId a = w.catalog.add_stream("A", 0, 5.0, 10.0);
  const query::StreamId b = w.catalog.add_stream("B", 1, 5.0, 10.0);
  w.catalog.set_selectivity(a, b, 0.001);
  query::Query q;
  q.id = 30;
  q.sources = {a, b};
  q.sink = 4;
  query::RateModel rates(w.catalog, q);

  opt::OptimizerEnv env;
  env.catalog = &w.catalog;
  env.network = &w.net;
  env.routing = &w.rt;
  env.reuse = false;
  opt::ExhaustiveOptimizer ex(env);
  const opt::OptimizeResult res = ex.optimize(q);

  Simulation sim(w.net, w.rt, w.catalog, low_variance_config(30.0), 23);
  sim.deploy(res.deployment, rates);
  sim.run();
  // Expected output: 5*5*0.001 = 0.025/s => ~0.75 tuples in 30 s.
  EXPECT_LE(sim.tuples_delivered(q.id), 6u);
}

TEST(SimulationTest, PoissonAndDeterministicAgreeOnAverages) {
  World w(7);
  const query::StreamId a = w.catalog.add_stream("A", 0, 50.0, 50.0);
  query::Query q;
  q.id = 40;
  q.sources = {a};
  q.sink = 6;
  query::RateModel rates(w.catalog, q);
  query::Deployment d;
  d.query = q.id;
  query::LeafUnit u;
  u.mask = 1;
  u.location = 0;
  u.bytes_rate = rates.bytes_rate(1);
  u.tuple_rate = rates.tuple_rate(1);
  d.units = {u};
  d.sink = q.sink;

  EngineConfig det = low_variance_config(40.0);
  EngineConfig poi = det;
  poi.poisson = true;

  Simulation s1(w.net, w.rt, w.catalog, det, 29);
  s1.deploy(d, rates);
  s1.run();
  Simulation s2(w.net, w.rt, w.catalog, poi, 31);
  s2.deploy(d, rates);
  s2.run();
  EXPECT_NEAR(s1.delivered_rate(q.id), s2.delivered_rate(q.id),
              0.12 * s1.delivered_rate(q.id));
}

/// Line 0—1—2 with one stream at node 0 delivered to a sink at node 2;
/// crashing node 1 severs the only route.
struct FaultRig {
  net::Network net;
  net::RoutingTables rt;
  query::Catalog catalog;
  query::Query q;
  query::Deployment d;

  FaultRig() {
    for (int i = 0; i < 3; ++i) net.add_node();
    net.add_link(0, 1, 1.0, 1.0, 1e6);
    net.add_link(1, 2, 1.0, 1.0, 1e6);
    rt = net::RoutingTables::build(net);
    const query::StreamId s = catalog.add_stream("A", 0, 50.0, 100.0);
    q.id = 50;
    q.sources = {s};
    q.sink = 2;
    query::RateModel rates(catalog, q);
    d.query = q.id;
    query::LeafUnit u;
    u.mask = 1;
    u.location = 0;
    u.bytes_rate = rates.bytes_rate(1);
    u.tuple_rate = rates.tuple_rate(1);
    d.units = {u};
    d.sink = q.sink;
  }
};

TEST(SimulationFaultTest, NoFaultsMeansFullAvailabilityAndZeroDowntime) {
  FaultRig r;
  query::RateModel rates(r.catalog, r.q);
  Simulation sim(r.net, r.rt, r.catalog, low_variance_config(), 7);
  sim.deploy(r.d, rates);
  sim.run();
  EXPECT_NEAR(sim.availability(r.q.id), 1.0, 0.05);
  EXPECT_DOUBLE_EQ(sim.downtime_s(r.q.id), 0.0);
  EXPECT_EQ(sim.tuples_dropped(), 0u);
}

TEST(SimulationFaultTest, MidRunCrashHalvesAvailability) {
  FaultRig r;
  query::RateModel rates(r.catalog, r.q);
  Simulation sim(r.net, r.rt, r.catalog, low_variance_config(40.0), 7);
  sim.deploy(r.d, rates);
  sim.schedule_fault({20.0, SimFault::Kind::kCrashNode, 1, net::kInvalidNode});
  sim.run();
  // Delivery works for the first half only; the severed route drops the
  // rest in flight (or at the source's send).
  EXPECT_NEAR(sim.availability(r.q.id), 0.5, 0.05);
  EXPECT_NEAR(sim.downtime_s(r.q.id), 20.0, 0.5);
  EXPECT_GT(sim.tuples_dropped(), 0u);
}

TEST(SimulationFaultTest, RestoreResumesDelivery) {
  FaultRig r;
  query::RateModel rates(r.catalog, r.q);
  Simulation sim(r.net, r.rt, r.catalog, low_variance_config(40.0), 7);
  sim.deploy(r.d, rates);
  sim.schedule_fault({10.0, SimFault::Kind::kCrashNode, 1, net::kInvalidNode});
  sim.schedule_fault({20.0, SimFault::Kind::kRestoreNode, 1,
                      net::kInvalidNode});
  sim.run();
  EXPECT_NEAR(sim.availability(r.q.id), 0.75, 0.05);
  EXPECT_NEAR(sim.downtime_s(r.q.id), 10.0, 0.5);
}

TEST(SimulationFaultTest, LinkFlapDropsOnlyTheOutageWindow) {
  FaultRig r;
  query::RateModel rates(r.catalog, r.q);
  Simulation sim(r.net, r.rt, r.catalog, low_variance_config(40.0), 7);
  sim.deploy(r.d, rates);
  sim.schedule_fault({10.0, SimFault::Kind::kFailLink, 0, 1});
  sim.schedule_fault({30.0, SimFault::Kind::kRestoreLink, 0, 1});
  sim.run();
  EXPECT_NEAR(sim.availability(r.q.id), 0.5, 0.05);
  EXPECT_NEAR(sim.downtime_s(r.q.id), 20.0, 0.5);
  EXPECT_GT(sim.tuples_dropped(), 0u);
}

TEST(SimulationFaultTest, CrashedSourcePausesEmission) {
  FaultRig r;
  query::RateModel rates(r.catalog, r.q);
  Simulation sim(r.net, r.rt, r.catalog, low_variance_config(40.0), 7);
  sim.deploy(r.d, rates);
  sim.schedule_fault({20.0, SimFault::Kind::kCrashNode, 0, net::kInvalidNode});
  sim.run();
  // The source stops producing: nothing is dropped downstream, delivery
  // just halves.
  EXPECT_NEAR(sim.availability(r.q.id), 0.5, 0.05);
  EXPECT_NEAR(static_cast<double>(sim.tuples_emitted()), 50.0 * 20.0,
              50.0 * 2.0);
}

}  // namespace
}  // namespace iflow::engine
