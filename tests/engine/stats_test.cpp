// Engine observability: per-operator counters and end-to-end latency.
#include <gtest/gtest.h>

#include "engine/simulation.h"
#include "net/gtitm.h"
#include "opt/exhaustive.h"
#include "query/rates.h"

namespace iflow::engine {
namespace {

struct World {
  net::Network net;
  net::RoutingTables rt;
  query::Catalog catalog;
  query::Query q;
  query::Deployment deployment;

  explicit World(std::uint64_t seed) {
    Prng prng(seed);
    net::TransitStubParams p;
    p.transit_count = 2;
    p.stub_domains_per_transit = 2;
    p.stub_domain_size = 3;
    p.delay_min_ms = 10.0;
    p.delay_max_ms = 20.0;
    net = net::make_transit_stub(p, prng);
    rt = net::RoutingTables::build(net);
    const auto a = catalog.add_stream("A", 0, 40.0, 80.0);
    const auto b = catalog.add_stream("B", 5, 40.0, 80.0);
    catalog.set_selectivity(a, b, 0.02);
    q.id = 3;
    q.sources = {a, b};
    q.sink = static_cast<net::NodeId>(net.node_count() - 1);

    opt::OptimizerEnv env;
    env.catalog = &catalog;
    env.network = &net;
    env.routing = &rt;
    env.reuse = false;
    opt::ExhaustiveOptimizer ex(env);
    deployment = ex.optimize(q).deployment;
  }
};

TEST(EngineStatsTest, CountersAreConsistent) {
  World w(1);
  query::RateModel rates(w.catalog, w.q);
  EngineConfig cfg;
  cfg.duration_s = 30.0;
  cfg.poisson = false;
  Simulation sim(w.net, w.rt, w.catalog, cfg, 7);
  sim.deploy(w.deployment, rates);
  sim.run();

  const auto stats = sim.operator_stats();
  std::uint64_t sources = 0;
  std::uint64_t joins = 0;
  std::uint64_t sinks = 0;
  for (const OperatorStats& st : stats) {
    if (st.kind == "source") {
      ++sources;
      EXPECT_EQ(st.tuples_in, 0u);  // sources originate tuples
      EXPECT_GT(st.tuples_sent, 0u);
      EXPECT_GT(st.bytes_sent, 0.0);
    } else if (st.kind == "join") {
      ++joins;
      EXPECT_GT(st.tuples_in, 0u);
      // Selective join: outputs fewer tuples than inputs at these rates.
      EXPECT_LT(st.tuples_sent, st.tuples_in);
    } else if (st.kind == "sink") {
      ++sinks;
      EXPECT_EQ(st.tuples_in, sim.tuples_delivered(w.q.id));
    }
  }
  EXPECT_EQ(sources, 2u);
  EXPECT_EQ(joins, 1u);
  EXPECT_EQ(sinks, 1u);
}

TEST(EngineStatsTest, LatencyReflectsNetworkDelays) {
  World w(2);
  query::RateModel rates(w.catalog, w.q);
  EngineConfig cfg;
  cfg.duration_s = 30.0;
  Simulation sim(w.net, w.rt, w.catalog, cfg, 11);
  sim.deploy(w.deployment, rates);
  sim.run();
  ASSERT_GT(sim.tuples_delivered(w.q.id), 0u);
  const double latency = sim.mean_latency_ms(w.q.id);
  // Every delivered result crossed at least one 10-20 ms link (sources and
  // sink are in different stub domains with high probability at this seed),
  // and the lower bound is simply positivity.
  EXPECT_GT(latency, 0.0);
  // Sanity upper bound: a handful of hops, each <= 20 ms, plus negligible
  // serialisation — far below a second.
  EXPECT_LT(latency, 1000.0);
}

TEST(EngineStatsTest, LatencyZeroWhenNothingDelivered) {
  World w(3);
  query::RateModel rates(w.catalog, w.q);
  EngineConfig cfg;
  cfg.duration_s = 30.0;
  Simulation sim(w.net, w.rt, w.catalog, cfg, 13);
  sim.deploy(w.deployment, rates);
  // run() never called: nothing flows.
  EXPECT_EQ(sim.tuples_delivered(w.q.id), 0u);
  EXPECT_DOUBLE_EQ(sim.mean_latency_ms(w.q.id), 0.0);
}

TEST(EngineStatsTest, ColocatedPipelineHasMinimalLatency) {
  // Sources, operator and sink all on one node: latency is (almost) zero.
  net::Network net;
  const auto n0 = net.add_node();
  const auto n1 = net.add_node();
  net.add_link(n0, n1, 1.0, 50.0, 1e6);
  const auto rt = net::RoutingTables::build(net);
  query::Catalog catalog;
  const auto a = catalog.add_stream("A", n0, 30.0, 40.0);
  const auto b = catalog.add_stream("B", n0, 30.0, 40.0);
  catalog.set_selectivity(a, b, 0.05);
  query::Query q;
  q.id = 1;
  q.sources = {a, b};
  q.sink = n0;
  query::RateModel rates(catalog, q);

  opt::OptimizerEnv env;
  env.catalog = &catalog;
  env.network = &net;
  env.routing = &rt;
  env.reuse = false;
  opt::ExhaustiveOptimizer ex(env);
  const auto dep = ex.optimize(q).deployment;

  EngineConfig cfg;
  cfg.duration_s = 20.0;
  Simulation sim(net, rt, catalog, cfg, 17);
  sim.deploy(dep, rates);
  sim.run();
  ASSERT_GT(sim.tuples_delivered(q.id), 0u);
  EXPECT_LT(sim.mean_latency_ms(q.id), 1e-6);
  EXPECT_DOUBLE_EQ(sim.measured_cost_per_second(), 0.0);
}

TEST(EngineStatsTest, LowBandwidthRaisesLatency) {
  // Identical line networks except for bandwidth: serialisation delay is
  // bytes*8/bw per hop, so the slow network must deliver with more latency.
  auto build = [](double bw) {
    net::Network net;
    net.add_node();
    net.add_node();
    net.add_link(0, 1, 1.0, 5.0, bw);
    return net;
  };
  auto run = [&](double bw) {
    const net::Network net = build(bw);
    const auto rt = net::RoutingTables::build(net);
    query::Catalog catalog;
    catalog.add_stream("A", 0, 20.0, 1000.0);  // 1 kB tuples
    query::Query q;
    q.id = 1;
    q.sources = {0};
    q.sink = 1;
    query::RateModel rates(catalog, q);
    query::Deployment d;
    d.query = q.id;
    query::LeafUnit u;
    u.mask = 1;
    u.location = 0;
    u.bytes_rate = rates.bytes_rate(1);
    u.tuple_rate = rates.tuple_rate(1);
    d.units = {u};
    d.sink = 1;
    EngineConfig cfg;
    cfg.duration_s = 10.0;
    cfg.poisson = false;
    Simulation sim(net, rt, catalog, cfg, 3);
    sim.deploy(d, rates);
    sim.run();
    return sim.mean_latency_ms(q.id);
  };
  const double fast = run(1e9);   // ~0 serialisation
  const double slow = run(1e5);   // 1 kB * 8 / 1e5 = 80 ms per tuple
  EXPECT_NEAR(fast, 5.0, 0.5);    // propagation only
  EXPECT_NEAR(slow, 85.0, 2.0);   // propagation + serialisation
}

}  // namespace
}  // namespace iflow::engine
