// Admission control and resource-ledger tests (DESIGN.md §14): per-tenant
// quotas, node-capacity pricing, degraded admission, weighted max-min
// fairness, and the incremental ledger's consistency.
#include <gtest/gtest.h>

#include <cmath>

#include "engine/middleware.h"
#include "net/gtitm.h"
#include "workload/generator.h"

namespace iflow::engine {
namespace {

struct World {
  net::Network net;
  workload::Workload wl;

  explicit World(std::uint64_t seed, int queries = 4) {
    Prng prng(seed);
    net::TransitStubParams p;
    p.transit_count = 2;
    p.stub_domains_per_transit = 2;
    p.stub_domain_size = 4;
    net = net::make_transit_stub(p, prng);
    workload::WorkloadParams wp;
    wp.num_streams = 6;
    wp.min_joins = 2;
    wp.max_joins = 3;
    Prng wprng(seed + 1);
    wl = workload::make_workload(net, wp, queries, wprng);
  }
};

TEST(FairShareTest, WaterFillingDonatesSurplus) {
  std::map<std::uint32_t, double> demands{{1, 100.0}, {2, 10.0}};
  std::map<std::uint32_t, TenantQuota> quotas;
  // Equal weights over a budget of 60: tenant 2 is satisfied at 10, the
  // surplus flows to tenant 1.
  EXPECT_NEAR(fair_share(demands, quotas, 60.0, 2), 10.0, 1e-9);
  EXPECT_NEAR(fair_share(demands, quotas, 60.0, 1), 50.0, 1e-9);
}

TEST(FairShareTest, WeightsScaleEntitlements) {
  std::map<std::uint32_t, double> demands{{1, 100.0}, {2, 100.0}};
  std::map<std::uint32_t, TenantQuota> quotas;
  quotas[1].weight = 3.0;
  quotas[2].weight = 1.0;
  EXPECT_NEAR(fair_share(demands, quotas, 80.0, 1), 60.0, 1e-9);
  EXPECT_NEAR(fair_share(demands, quotas, 80.0, 2), 20.0, 1e-9);
}

TEST(AdmissionTest, QueryCountQuotaRejectsBeforePlanning) {
  World w(31);
  Middleware mw(w.net, w.wl.catalog, 4, Algorithm::kTopDown, 7);
  TenantQuota quota;
  quota.max_queries = 1;
  mw.set_tenant_quota(0, quota);

  ASSERT_TRUE(mw.deploy(w.wl.queries[0]).feasible);
  const opt::OptimizeResult second = mw.deploy(w.wl.queries[1]);
  EXPECT_FALSE(second.feasible);
  EXPECT_EQ(mw.last_admission().decision, AdmissionDecision::kReject);
  EXPECT_FALSE(mw.last_admission().reason.empty());
  // Rejected, not parked: no slot held, no suspended entry.
  EXPECT_EQ(mw.active_queries(), 1u);
  EXPECT_EQ(mw.suspended_queries(), 0u);
  EXPECT_EQ(mw.ledger().tenant_queries(0), 1u);

  // Releasing the slot lets the tenant back in.
  ASSERT_TRUE(mw.undeploy(w.wl.queries[0].id));
  EXPECT_TRUE(mw.deploy(w.wl.queries[1]).feasible);
}

TEST(AdmissionTest, ByteQuotaRejectsWithPricedReason) {
  World w(32);
  Middleware mw(w.net, w.wl.catalog, 4, Algorithm::kTopDown, 7);
  ASSERT_TRUE(mw.deploy(w.wl.queries[0]).feasible);
  TenantQuota quota;
  quota.max_input_bytes_per_s = mw.ledger().tenant_bytes(0) * 1.01;
  mw.set_tenant_quota(0, quota);

  const opt::OptimizeResult res = mw.deploy(w.wl.queries[1]);
  EXPECT_FALSE(res.feasible);
  EXPECT_EQ(mw.last_admission().decision, AdmissionDecision::kReject);
  EXPECT_NE(mw.last_admission().reason.find("quota"), std::string::npos);
}

TEST(AdmissionTest, NodeCapacityIsNeverExceededByAdmittedPlans) {
  World w(33, /*queries=*/6);
  Middleware mw(w.net, w.wl.catalog, 4, Algorithm::kTopDown, 7);
  // Size the budget so the workload only partially fits: deploy everything
  // uncapacitated first to learn the peak, then replay with ~60% of it.
  for (const query::Query& q : w.wl.queries) {
    ASSERT_TRUE(mw.deploy(q).feasible);
  }
  double peak = 0.0;
  for (const double l : mw.node_loads()) peak = std::max(peak, l);
  ASSERT_GT(peak, 0.0);

  Middleware capped(w.net, w.wl.catalog, 4, Algorithm::kTopDown, 7);
  AdmissionConfig cfg;
  cfg.node_capacity = peak * 0.6;
  capped.set_admission_config(cfg);
  std::size_t admitted = 0, rejected = 0;
  for (const query::Query& q : w.wl.queries) {
    if (capped.deploy(q).feasible) {
      ++admitted;
    } else {
      ASSERT_EQ(capped.last_admission().decision, AdmissionDecision::kReject);
      EXPECT_FALSE(capped.last_admission().reason.empty());
      ++rejected;
    }
    for (const double l : capped.node_loads()) {
      EXPECT_LE(l, cfg.node_capacity + 1e-6);
    }
  }
  EXPECT_GT(admitted, 0u);
  EXPECT_GT(rejected, 0u);
}

TEST(AdmissionTest, PriceMarksSaturatedNodesForTheDegradedRetry) {
  // Controller-level check of the degraded-admission mechanics: a plan
  // colliding with a saturated node is rejected WITH the saturated set (the
  // host-exclusion list for the replan), and an alternative plan avoiding
  // it is admitted as kAdmitDegraded.
  net::Network net;
  ResourceLedger ledger;
  ledger.reset(/*node_count=*/4, /*link_count=*/0);
  DeploymentFootprint existing;
  existing.node_bytes = {{1, 90.0}};
  existing.total_input_bytes = 90.0;
  ledger.apply(existing, 0, +1);
  ledger.count_query(0, +1);

  AdmissionController ctrl;
  AdmissionConfig cfg;
  cfg.node_capacity = 100.0;
  ctrl.set_config(cfg);

  DeploymentFootprint colliding;
  colliding.node_bytes = {{1, 20.0}};
  colliding.total_input_bytes = 20.0;
  const AdmissionVerdict rejected =
      ctrl.price(colliding, 0, ledger, net, /*degraded=*/false);
  EXPECT_EQ(rejected.decision, AdmissionDecision::kReject);
  ASSERT_EQ(rejected.saturated_nodes.size(), 1u);
  EXPECT_EQ(rejected.saturated_nodes[0], 1u);
  EXPECT_NEAR(rejected.worst_node_overload, 10.0, 1e-9);
  EXPECT_FALSE(rejected.reason.empty());

  DeploymentFootprint rerouted;
  rerouted.node_bytes = {{2, 20.0}};
  rerouted.total_input_bytes = 20.0;
  const AdmissionVerdict degraded =
      ctrl.price(rerouted, 0, ledger, net, /*degraded=*/true);
  EXPECT_EQ(degraded.decision, AdmissionDecision::kAdmitDegraded);
}

TEST(AdmissionTest, FairnessRejectsTheTenantOverItsShare) {
  World w(35, /*queries=*/6);
  std::vector<query::Query> queries = w.wl.queries;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    queries[i].tenant = (i < 4) ? 1u : 2u;  // tenant 1 is the heavy one
  }
  Middleware probe(w.net, w.wl.catalog, 4, Algorithm::kTopDown, 7);
  for (const query::Query& q : queries) {
    ASSERT_TRUE(probe.deploy(q).feasible);
  }
  double peak = 0.0;
  for (const double l : probe.node_loads()) peak = std::max(peak, l);

  Middleware mw(w.net, w.wl.catalog, 4, Algorithm::kTopDown, 7);
  AdmissionConfig cfg;
  cfg.node_capacity = peak * 0.5;
  mw.set_admission_config(cfg);
  mw.set_tenant_quota(1, TenantQuota{});
  mw.set_tenant_quota(2, TenantQuota{});
  std::size_t heavy_rejections = 0;
  for (const query::Query& q : queries) {
    if (!mw.deploy(q).feasible && q.tenant == 1) ++heavy_rejections;
  }
  // Under contention the heavy tenant cannot take the whole cluster.
  EXPECT_GT(heavy_rejections, 0u);
}

TEST(AdmissionTest, LedgerTracksTenantsAndSurvivesChurn) {
  World w(36);
  std::vector<query::Query> queries = w.wl.queries;
  queries[0].tenant = 1;
  queries[1].tenant = 1;
  queries[2].tenant = 2;
  Middleware mw(w.net, w.wl.catalog, 4, Algorithm::kTopDown, 7);
  for (const query::Query& q : queries) {
    ASSERT_TRUE(mw.deploy(q).feasible);
  }
  EXPECT_EQ(mw.ledger().tenant_queries(1), 2u);
  EXPECT_EQ(mw.ledger().tenant_queries(2), 1u);
  EXPECT_GT(mw.ledger().tenant_bytes(1), 0.0);
  EXPECT_NEAR(mw.ledger().tenant_bytes(1) + mw.ledger().tenant_bytes(2) +
                  mw.ledger().tenant_bytes(0),
              mw.ledger().total_bytes(),
              1e-9 * (1.0 + mw.ledger().total_bytes()));

  ASSERT_TRUE(mw.undeploy(queries[0].id));
  EXPECT_EQ(mw.ledger().tenant_queries(1), 1u);
  // node_loads() Debug-checks the incremental ledger against a
  // from-scratch recompute; surviving churn means they agree.
  double total = 0.0;
  for (const double l : mw.node_loads()) total += l;
  EXPECT_GT(total, 0.0);
}

TEST(AdmissionTest, RateChangeKeepsLedgerConsistent) {
  World w(37);
  Middleware mw(w.net, w.wl.catalog, 4, Algorithm::kTopDown, 7,
                /*drift_threshold=*/1.1);
  for (const query::Query& q : w.wl.queries) {
    ASSERT_TRUE(mw.deploy(q).feasible);
  }
  const double before = mw.ledger().total_bytes();
  const query::StreamId s = w.wl.queries[0].sources[0];
  mw.set_stream_rate(s, w.wl.catalog.stream(s).tuple_rate * 3.0);
  EXPECT_GT(mw.ledger().total_bytes(), before);
  mw.adapt();
  // Debug cross-check inside node_loads() validates the re-priced ledger.
  double total = 0.0;
  for (const double l : mw.node_loads()) total += l;
  EXPECT_GT(total, 0.0);
}

}  // namespace
}  // namespace iflow::engine
