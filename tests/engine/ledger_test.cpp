// ResourceLedger exactness under lifecycle interleavings (DESIGN.md §14/§15).
//
// The ledger is maintained by signed footprint applications on every
// deploy / undeploy / suspend / resume / migrate, never rebuilt. These tests
// drive the interleavings that historically corrupt incremental accounting —
// suspend -> undeploy-while-suspended -> restore, and quarantine ->
// undeploy -> release — and after every step compare the incremental
// node_load against an independent from-scratch recompute (footprint() over
// the active deployments). Debug builds additionally run the middleware's
// internal cross-check inside node_loads() itself.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "engine/middleware.h"
#include "net/gtitm.h"
#include "net/routing.h"
#include "workload/generator.h"

namespace iflow::engine {
namespace {

struct World {
  net::Network net;
  workload::Workload wl;

  explicit World(std::uint64_t seed, int queries = 5) {
    Prng prng(seed);
    net::TransitStubParams p;
    p.transit_count = 2;
    p.stub_domains_per_transit = 2;
    p.stub_domain_size = 4;
    net = net::make_transit_stub(p, prng);
    workload::WorkloadParams wp;
    wp.num_streams = 6;
    wp.min_joins = 2;
    wp.max_joins = 3;
    Prng wprng(seed + 1);
    wl = workload::make_workload(net, wp, queries, wprng);
  }
};

/// From-scratch node loads: price every active deployment's footprint
/// against fresh routing tables, independent of the middleware's ledger.
std::vector<double> recomputed_loads(const Middleware& mw,
                                     const net::Network& net,
                                     const query::Catalog& catalog) {
  std::vector<double> loads(net.node_count(), 0.0);
  const net::RoutingTables rt = net::RoutingTables::build(net);
  for (const Middleware::ActiveView& v : mw.active_views()) {
    query::RateModel rates(catalog, *v.query);
    const DeploymentFootprint fp = footprint(*v.deployment, rates, rt, net);
    for (const auto& [node, bytes] : fp.node_bytes) {
      loads[static_cast<std::size_t>(node)] += bytes;
    }
  }
  return loads;
}

/// Asserts the incremental ledger matches the independent recompute within
/// 1e-6 relative tolerance, and that tenant bytes sum to the total.
void expect_exact(const Middleware& mw, const net::Network& net,
                  const query::Catalog& catalog, const char* where) {
  const std::vector<double> incremental = mw.node_loads();
  const std::vector<double> scratch = recomputed_loads(mw, net, catalog);
  ASSERT_EQ(incremental.size(), scratch.size()) << where;
  for (std::size_t n = 0; n < scratch.size(); ++n) {
    EXPECT_NEAR(incremental[n], scratch[n], 1e-6 * (1.0 + scratch[n]))
        << where << ": node " << n;
  }
  double tenant_sum = 0.0;
  for (const auto& [tenant, bytes] : mw.ledger().tenant_usage()) {
    (void)tenant;
    tenant_sum += bytes;
  }
  EXPECT_NEAR(tenant_sum, mw.ledger().total_bytes(),
              1e-6 * (1.0 + mw.ledger().total_bytes()))
      << where;
}

TEST(LedgerTest, SuspendUndeployRestoreInterleavingStaysExact) {
  World w(41);
  Middleware mw(w.net, w.wl.catalog, 4, Algorithm::kTopDown, 7);
  for (const query::Query& q : w.wl.queries) {
    ASSERT_TRUE(mw.deploy(q).feasible);
  }
  expect_exact(mw, w.net, w.wl.catalog, "after deploy");

  // Kill the processing service on query 0's first source host: every query
  // rooted there suspends (its footprint must be fully retracted while the
  // query keeps holding its tenant slot).
  const net::NodeId victim =
      w.wl.catalog.stream(w.wl.queries[0].sources[0]).source;
  mw.fail_node(victim);
  ASSERT_GT(mw.suspended_queries(), 0u);
  expect_exact(mw, w.net, w.wl.catalog, "after fail_node");

  // Undeploy one query straight out of the suspended queue (slot released,
  // nothing double-retracted) and one still-active query.
  const query::QueryId parked = mw.suspended().front().q.id;
  const std::size_t slots_before = mw.ledger().tenant_queries(0);
  ASSERT_TRUE(mw.undeploy(parked));
  EXPECT_EQ(mw.ledger().tenant_queries(0), slots_before - 1);
  expect_exact(mw, w.net, w.wl.catalog, "after undeploy suspended");

  query::QueryId live = 0;
  for (const Middleware::ActiveView& v : mw.active_views()) {
    live = v.query->id;
  }
  ASSERT_TRUE(mw.undeploy(live));
  expect_exact(mw, w.net, w.wl.catalog, "after undeploy active");

  // Restore: the surviving suspended queries resume and their footprints
  // are re-applied at resume-time prices.
  mw.restore_node(victim);
  EXPECT_EQ(mw.suspended_queries(), 0u);
  expect_exact(mw, w.net, w.wl.catalog, "after restore");

  // Double undeploy of the already-removed query is a clean no-op.
  EXPECT_FALSE(mw.undeploy(parked));
  expect_exact(mw, w.net, w.wl.catalog, "after double undeploy");
}

TEST(LedgerTest, QuarantineUndeployReleaseInterleavingStaysExact) {
  World w(43);
  Middleware mw(w.net, w.wl.catalog, 4, Algorithm::kBottomUp, 11);
  for (const query::Query& q : w.wl.queries) {
    ASSERT_TRUE(mw.deploy(q).feasible);
  }

  // Quarantine the most-loaded host: actives migrate off (footprint swap)
  // or suspend (footprint retraction) — both paths must keep the ledger in
  // lockstep with the recompute.
  const std::vector<double> loads = mw.node_loads();
  net::NodeId heavy = 0;
  for (std::size_t n = 0; n < loads.size(); ++n) {
    if (loads[n] > loads[heavy]) heavy = static_cast<net::NodeId>(n);
  }
  mw.quarantine_node(heavy);
  expect_exact(mw, w.net, w.wl.catalog, "after quarantine");

  // Interleave a teardown while the quarantine is in force.
  ASSERT_TRUE(mw.undeploy(w.wl.queries[1].id));
  expect_exact(mw, w.net, w.wl.catalog, "after undeploy under quarantine");

  mw.release_quarantine(heavy);
  EXPECT_EQ(mw.suspended_queries(), 0u);
  expect_exact(mw, w.net, w.wl.catalog, "after release");

  // Idempotent release is accounting-neutral.
  mw.release_quarantine(heavy);
  expect_exact(mw, w.net, w.wl.catalog, "after double release");
}

TEST(LedgerTest, FullTeardownZeroesEveryCounter) {
  World w(47);
  Middleware mw(w.net, w.wl.catalog, 4, Algorithm::kTopDown, 13);
  for (const query::Query& q : w.wl.queries) {
    ASSERT_TRUE(mw.deploy(q).feasible);
  }
  // Churn first so the ledger has seen signed traffic in both directions,
  // then tear everything down; incremental residue would show up here.
  const net::NodeId victim =
      w.wl.catalog.stream(w.wl.queries[0].sources[0]).source;
  mw.fail_node(victim);
  mw.restore_node(victim);
  for (const query::Query& q : w.wl.queries) {
    EXPECT_TRUE(mw.undeploy(q.id)) << "query " << q.id;
  }
  EXPECT_EQ(mw.active_queries(), 0u);
  EXPECT_EQ(mw.suspended_queries(), 0u);
  for (const double l : mw.node_loads()) {
    EXPECT_NEAR(l, 0.0, 1e-9);
  }
  for (const double l : mw.ledger().link_load()) {
    EXPECT_NEAR(l, 0.0, 1e-9);
  }
  EXPECT_NEAR(mw.ledger().total_bytes(), 0.0, 1e-9);
  EXPECT_EQ(mw.ledger().tenant_queries(0), 0u);
}

}  // namespace
}  // namespace iflow::engine
