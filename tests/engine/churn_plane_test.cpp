// Multi-tenant churn plane tests (DESIGN.md §14): registration-churn
// harness invariants, digest determinism across planner thread counts,
// dirty-region settle behavior and bounded resume backoff.
#include <gtest/gtest.h>

#include "engine/chaos.h"
#include "net/gtitm.h"
#include "workload/scenario.h"

namespace iflow::engine {
namespace {

struct World {
  net::Network net;
  workload::Workload wl;

  explicit World(std::uint64_t seed, int queries = 6) {
    Prng prng(seed);
    net::TransitStubParams p;
    p.transit_count = 2;
    p.stub_domains_per_transit = 2;
    p.stub_domain_size = 4;
    net = net::make_transit_stub(p, prng);
    workload::WorkloadParams wp;
    wp.num_streams = 8;
    wp.min_joins = 2;
    wp.max_joins = 3;
    Prng wprng(seed + 1);
    wl = workload::make_workload(net, wp, queries, wprng);
  }
};

TEST(ChurnPlaneTest, RegistrationChurnHoldsInvariants) {
  World w(41);
  RegistrationChurnConfig cfg;
  cfg.events = 40;
  cfg.settle_every = 6;
  const RegistrationChurnReport r = run_registration_churn(
      w.net, w.wl.catalog, w.wl.queries, 4, Algorithm::kTopDown, 11, cfg);
  EXPECT_EQ(r.violations, 0u) << r.violation_detail;
  EXPECT_EQ(r.capacity_violations, 0u);
  EXPECT_TRUE(r.backoff_bounded);
  EXPECT_TRUE(r.parity_ok);
  EXPECT_TRUE(r.ok);
  EXPECT_GT(r.registrations, 0u);
  EXPECT_GT(r.unregistrations, 0u);
  EXPECT_GT(r.settles, 0u);
  EXPECT_FALSE(r.digest.empty());
}

TEST(ChurnPlaneTest, DigestBitwiseStableAcrossThreadCounts) {
  World w(42);
  RegistrationChurnConfig cfg;
  cfg.events = 32;
  cfg.settle_every = 5;
  cfg.threads = 1;
  const RegistrationChurnReport one = run_registration_churn(
      w.net, w.wl.catalog, w.wl.queries, 4, Algorithm::kTopDown, 13, cfg);
  cfg.threads = 4;
  const RegistrationChurnReport four = run_registration_churn(
      w.net, w.wl.catalog, w.wl.queries, 4, Algorithm::kTopDown, 13, cfg);
  EXPECT_EQ(one.digest, four.digest);
}

TEST(ChurnPlaneTest, CapacityBoundChurnRejectsButNeverOverloads) {
  World w(43);
  // Learn the uncapacitated peak, then churn at ~55% of it: offered load
  // exceeds capacity, so admission must reject sometimes — and the ledger
  // must never show an admitted plan over budget (capacity_violations).
  Middleware probe(w.net, w.wl.catalog, 4, Algorithm::kTopDown, 7);
  for (const query::Query& q : w.wl.queries) {
    ASSERT_TRUE(probe.deploy(q).feasible);
  }
  double peak = 0.0;
  for (const double l : probe.node_loads()) peak = std::max(peak, l);

  RegistrationChurnConfig cfg;
  cfg.events = 48;
  cfg.settle_every = 6;
  cfg.node_capacity = peak * 0.55;
  const RegistrationChurnReport r = run_registration_churn(
      w.net, w.wl.catalog, w.wl.queries, 4, Algorithm::kTopDown, 17, cfg);
  EXPECT_EQ(r.violations, 0u) << r.violation_detail;
  EXPECT_EQ(r.capacity_violations, 0u);
  EXPECT_GT(r.rejections, 0u);
  EXPECT_FALSE(r.first_rejection.empty());
  EXPECT_TRUE(r.backoff_bounded);
}

TEST(ChurnPlaneTest, ScriptedChurnIsDeterministicAndValid) {
  World w(44);
  const std::vector<RegistrationEvent> script = workload::make_churn_script(
      w.net, w.wl.catalog, w.wl.queries.size(), 99, /*steady_events=*/24);
  ASSERT_GT(script.size(), w.wl.queries.size());

  RegistrationChurnConfig cfg;
  cfg.settle_every = 6;
  cfg.threads = 1;
  const RegistrationChurnReport one = run_registration_script(
      w.net, w.wl.catalog, w.wl.queries, 4, Algorithm::kTopDown, 19, script,
      cfg);
  EXPECT_EQ(one.violations, 0u) << one.violation_detail;
  EXPECT_TRUE(one.ok);
  cfg.threads = 3;
  const RegistrationChurnReport three = run_registration_script(
      w.net, w.wl.catalog, w.wl.queries, 4, Algorithm::kTopDown, 19, script,
      cfg);
  EXPECT_EQ(one.digest, three.digest);
}

TEST(ChurnPlaneTest, SettleClearsDirtyRegionAndNeverRegresses) {
  World w(45);
  Middleware mw(w.net, w.wl.catalog, 4, Algorithm::kTopDown, 7);
  for (const query::Query& q : w.wl.queries) {
    ASSERT_TRUE(mw.deploy(q).feasible);
  }
  // Deploys leave their own dirty wake; drain it first.
  mw.settle();
  EXPECT_EQ(mw.dirty_queries(), 0u);

  const query::StreamId s = w.wl.queries[0].sources[0];
  mw.set_stream_rate(s, w.wl.catalog.stream(s).tuple_rate * 4.0);
  EXPECT_GT(mw.dirty_queries(), 0u);

  const double before = mw.total_current_cost();
  mw.settle();
  EXPECT_EQ(mw.dirty_queries(), 0u);
  EXPECT_LE(mw.total_current_cost(), before + 1e-9);
  // Only the dirty region was replanned — at most once per settle round
  // (adopted moves re-dirty their reuse neighborhood for the next round).
  EXPECT_LE(mw.last_settle_stats().replanned, 2 * mw.active_queries());
}

TEST(ChurnPlaneTest, SettleOnCleanSystemIsANoOp) {
  World w(46);
  Middleware mw(w.net, w.wl.catalog, 4, Algorithm::kTopDown, 7);
  for (const query::Query& q : w.wl.queries) {
    ASSERT_TRUE(mw.deploy(q).feasible);
  }
  mw.settle();
  ASSERT_EQ(mw.dirty_queries(), 0u);
  EXPECT_TRUE(mw.settle().empty());
  EXPECT_EQ(mw.last_settle_stats().replanned, 0u);
}

TEST(ChurnPlaneTest, BackoffSkipsGrowExponentially) {
  World w(47);
  Middleware mw(w.net, w.wl.catalog, 4, Algorithm::kTopDown, 7);
  for (const query::Query& q : w.wl.queries) {
    ASSERT_TRUE(mw.deploy(q).feasible);
  }
  // Suspend by failing a sink; while it stays down, resume passes skip the
  // unhealthy query without burning attempts, so failures stay bounded by
  // max_resume_attempts per restore cycle no matter how often we adapt.
  const net::NodeId sink = w.wl.queries[0].sink;
  mw.fail_node(sink);
  ASSERT_GT(mw.suspended_queries(), 0u);
  for (int i = 0; i < 20; ++i) mw.adapt();
  const std::uint64_t bound =
      static_cast<std::uint64_t>(mw.max_resume_attempts()) *
      w.wl.queries.size();
  EXPECT_LE(mw.resume_failures_total(), bound);
  mw.restore_node(sink);
  for (int i = 0; i < 5; ++i) mw.adapt();
  EXPECT_EQ(mw.suspended_queries(), 0u);
  EXPECT_LE(mw.resume_failures_total(), 2 * bound);
}

TEST(ChurnPlaneTest, SettleParityAcrossSeeds) {
  // The churn-plane acceptance criterion: the incremental settle path lands
  // within parity_slack of a full reoptimize() on the vast majority of
  // seeded runs. Check a small panel here; the bench sweeps more seeds.
  std::size_t parity = 0;
  const std::uint64_t seeds[] = {3, 5, 8};
  for (const std::uint64_t seed : seeds) {
    World w(50 + seed);
    RegistrationChurnConfig cfg;
    cfg.events = 32;
    cfg.settle_every = 6;
    const RegistrationChurnReport r = run_registration_churn(
        w.net, w.wl.catalog, w.wl.queries, 4, Algorithm::kTopDown, seed, cfg);
    EXPECT_EQ(r.violations, 0u) << r.violation_detail;
    if (r.parity_ok) ++parity;
  }
  EXPECT_GE(parity, 2u);
}

}  // namespace
}  // namespace iflow::engine
