// Exact per-link byte accounting: with deterministic sources and no joins,
// every link on the cost-optimal route carries exactly tuples × width.
#include <gtest/gtest.h>

#include "engine/simulation.h"
#include "query/rates.h"

namespace iflow::engine {
namespace {

TEST(AccountingTest, EveryLinkOnTheRouteChargesExactly) {
  // Line: src(0) -1- (1) -1- (2) -1- sink(3), plus a pricey shortcut 0-3.
  net::Network net;
  for (int i = 0; i < 4; ++i) net.add_node();
  net.add_link(0, 1, 1.0, 1.0, 1e9);
  net.add_link(1, 2, 1.0, 1.0, 1e9);
  net.add_link(2, 3, 1.0, 1.0, 1e9);
  net.add_link(0, 3, 10.0, 1.0, 1e9);  // never used (cost 10 > 3)
  const auto rt = net::RoutingTables::build(net);

  query::Catalog catalog;
  catalog.add_stream("A", 0, 10.0, 100.0);
  query::Query q;
  q.id = 1;
  q.sources = {0};
  q.sink = 3;
  query::RateModel rates(catalog, q);

  query::Deployment d;
  d.query = q.id;
  query::LeafUnit u;
  u.mask = 1;
  u.location = 0;
  u.bytes_rate = rates.bytes_rate(1);
  u.tuple_rate = rates.tuple_rate(1);
  d.units = {u};
  d.sink = 3;

  EngineConfig cfg;
  cfg.duration_s = 10.0;
  cfg.poisson = false;  // exactly 10 t/s
  Simulation sim(net, rt, catalog, cfg, 3);
  sim.deploy(d, rates);
  sim.run();

  const auto delivered = sim.tuples_delivered(q.id);
  EXPECT_NEAR(static_cast<double>(delivered), 100.0, 2.0);
  // Links 0,1,2 each carried exactly delivered×width bytes (no loss, no
  // duplication); the shortcut carried nothing.
  for (std::size_t link : {0u, 1u, 2u}) {
    EXPECT_NEAR(sim.link_bytes(link),
                static_cast<double>(delivered) * 100.0,
                0.03 * static_cast<double>(delivered) * 100.0)
        << "link " << link;
  }
  EXPECT_DOUBLE_EQ(sim.link_bytes(3), 0.0);
  // Total cost = 3 links × bytes × 1.0 / duration.
  EXPECT_NEAR(sim.measured_cost_per_second(),
              3.0 * sim.link_bytes(0) / cfg.duration_s,
              0.05 * sim.measured_cost_per_second());
}

TEST(AccountingTest, FanOutChargesOncePerConsumerEdge) {
  // One source, two sinks subscribing to the same stream: the shared link
  // src->mid carries the stream twice (once per consumer edge) — our cost
  // model charges per edge, not per multicast tree.
  net::Network net;
  const auto src = net.add_node();
  const auto mid = net.add_node();
  const auto s1 = net.add_node();
  const auto s2 = net.add_node();
  net.add_link(src, mid, 1.0, 1.0, 1e9);
  net.add_link(mid, s1, 1.0, 1.0, 1e9);
  net.add_link(mid, s2, 1.0, 1.0, 1e9);
  const auto rt = net::RoutingTables::build(net);

  query::Catalog catalog;
  catalog.add_stream("A", src, 10.0, 50.0);
  query::RateModel* rates_ptr = nullptr;
  (void)rates_ptr;

  EngineConfig cfg;
  cfg.duration_s = 10.0;
  cfg.poisson = false;
  Simulation sim(net, rt, catalog, cfg, 5);
  for (int i = 0; i < 2; ++i) {
    query::Query q;
    q.id = static_cast<query::QueryId>(i + 1);
    q.sources = {0};
    q.sink = (i == 0) ? s1 : s2;
    query::RateModel rates(catalog, q);
    query::Deployment d;
    d.query = q.id;
    query::LeafUnit u;
    u.mask = 1;
    u.location = src;
    u.bytes_rate = rates.bytes_rate(1);
    u.tuple_rate = rates.tuple_rate(1);
    d.units = {u};
    d.sink = q.sink;
    sim.deploy(d, rates);
  }
  sim.run();
  EXPECT_GT(sim.tuples_delivered(1), 0u);
  // src->mid (link 0) carries twice what each sink leg carries.
  EXPECT_NEAR(sim.link_bytes(0), sim.link_bytes(1) + sim.link_bytes(2),
              1e-6 * sim.link_bytes(0));
  EXPECT_NEAR(sim.link_bytes(1), sim.link_bytes(2),
              0.02 * sim.link_bytes(1) + 100.0);
}

}  // namespace
}  // namespace iflow::engine
