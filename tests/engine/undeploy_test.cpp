// Teardown edge cases for Middleware::undeploy (DESIGN.md §14): registry
// retraction, ledger retraction, stranded-consumer repair, suspended-queue
// removal, teardown during an active fault, and the double-undeploy error.
#include <gtest/gtest.h>

#include "engine/middleware.h"
#include "net/gtitm.h"
#include "verify/validator.h"
#include "workload/generator.h"

namespace iflow::engine {
namespace {

struct World {
  net::Network net;
  workload::Workload wl;

  explicit World(std::uint64_t seed, int queries = 4) {
    Prng prng(seed);
    net::TransitStubParams p;
    p.transit_count = 2;
    p.stub_domains_per_transit = 2;
    p.stub_domain_size = 4;
    net = net::make_transit_stub(p, prng);
    workload::WorkloadParams wp;
    wp.num_streams = 6;
    wp.min_joins = 2;
    wp.max_joins = 3;
    Prng wprng(seed + 1);
    wl = workload::make_workload(net, wp, queries, wprng);
  }
};

std::size_t validate_all(Middleware& mw) {
  opt::OptimizerEnv env = mw.planning_env();
  const std::vector<net::NodeId> excluded = mw.excluded_hosts();
  std::size_t violations = 0;
  for (const Middleware::ActiveView& v : mw.active_views()) {
    verify::ValidateOptions vopts;
    vopts.excluded_hosts = &excluded;
    violations += verify::validate(*v.deployment, env, vopts).size();
  }
  return violations;
}

TEST(UndeployTest, RemovesActiveRetractsRegistryAndLedger) {
  World w(21);
  Middleware mw(w.net, w.wl.catalog, 4, Algorithm::kTopDown, 7);
  for (const query::Query& q : w.wl.queries) {
    ASSERT_TRUE(mw.deploy(q).feasible);
  }
  const std::size_t before = mw.active_queries();
  const double bytes_before = mw.ledger().total_bytes();
  const query::QueryId victim = w.wl.queries[1].id;

  EXPECT_TRUE(mw.undeploy(victim));
  EXPECT_EQ(mw.active_queries(), before - 1);
  EXPECT_LT(mw.ledger().total_bytes(), bytes_before);
  for (const advert::DerivedStream& ds : mw.registry().entries()) {
    EXPECT_NE(ds.origin, victim);
  }
  EXPECT_EQ(validate_all(mw), 0u);
}

TEST(UndeployTest, LedgerRetractionIsExact) {
  World w(22);
  Middleware mw(w.net, w.wl.catalog, 4, Algorithm::kTopDown, 7);
  for (const query::Query& q : w.wl.queries) {
    ASSERT_TRUE(mw.deploy(q).feasible);
  }
  const std::vector<double> loads_before = mw.node_loads();

  query::Query extra = w.wl.queries[0];
  extra.id = 900;
  extra.name = "extra";
  ASSERT_TRUE(mw.deploy(extra).feasible);
  ASSERT_TRUE(mw.undeploy(extra.id));

  const std::vector<double> loads_after = mw.node_loads();
  ASSERT_EQ(loads_after.size(), loads_before.size());
  for (std::size_t i = 0; i < loads_after.size(); ++i) {
    EXPECT_NEAR(loads_after[i], loads_before[i],
                1e-6 * (1.0 + loads_before[i]));
  }
}

TEST(UndeployTest, ProviderWithReuseConsumersRepairsThem) {
  World w(23);
  Middleware mw(w.net, w.wl.catalog, 4, Algorithm::kExhaustive, 7);
  const query::Query& provider = w.wl.queries[0];
  ASSERT_TRUE(mw.deploy(provider).feasible);

  // An identical query (new id) reuses the provider's advertised operator
  // output — the exhaustive planner always finds the zero-cost derived leaf.
  query::Query consumer = provider;
  consumer.id = 901;
  consumer.name = "consumer";
  const opt::OptimizeResult cres = mw.deploy(consumer);
  ASSERT_TRUE(cres.feasible);
  bool reused = false;
  for (const query::LeafUnit& u : cres.deployment.units) {
    reused = reused || u.derived;
  }
  ASSERT_TRUE(reused);

  // Tearing down the provider must migrate or suspend the consumer, never
  // leave it drawing on removed operators.
  std::vector<Redeployment> repairs;
  ASSERT_TRUE(mw.undeploy(provider.id, &repairs));
  bool consumer_repaired = false;
  for (const Redeployment& r : repairs) {
    if (r.query == consumer.id) consumer_repaired = true;
  }
  EXPECT_TRUE(consumer_repaired);
  EXPECT_EQ(mw.active_queries() + mw.suspended_queries(), 1u);
  EXPECT_EQ(validate_all(mw), 0u);
  // Whatever the consumer's new plan is, its derived units (if any) must
  // sit where some still-active deployment runs an operator.
  for (const Middleware::ActiveView& v : mw.active_views()) {
    for (const query::LeafUnit& u : v.deployment->units) {
      if (!u.derived) continue;
      bool grounded = false;
      for (const Middleware::ActiveView& o : mw.active_views()) {
        if (o.query->id == v.query->id) continue;
        for (const query::DeployedOp& op : o.deployment->ops) {
          grounded = grounded || op.node == u.location;
        }
      }
      EXPECT_TRUE(grounded);
    }
  }
}

TEST(UndeployTest, SuspendedQueryLeavesQueue) {
  World w(24);
  Middleware mw(w.net, w.wl.catalog, 4, Algorithm::kTopDown, 7);
  for (const query::Query& q : w.wl.queries) {
    ASSERT_TRUE(mw.deploy(q).feasible);
  }
  // Failing the sink's processing suspends every query anchored there.
  const net::NodeId sink = w.wl.queries[0].sink;
  mw.fail_node(sink);
  ASSERT_GT(mw.suspended_queries(), 0u);
  const std::size_t suspended = mw.suspended_queries();

  EXPECT_TRUE(mw.undeploy(w.wl.queries[0].id));
  EXPECT_EQ(mw.suspended_queries(), suspended - 1);
  // The slot is released: the same id can register again after recovery.
  mw.restore_node(sink);
  EXPECT_TRUE(mw.deploy(w.wl.queries[0]).feasible);
}

TEST(UndeployTest, DuringActiveFaultKeepsSurvivorsValid) {
  World w(25);
  Middleware mw(w.net, w.wl.catalog, 4, Algorithm::kTopDown, 7);
  for (const query::Query& q : w.wl.queries) {
    ASSERT_TRUE(mw.deploy(q).feasible);
  }
  // Fault a non-endpoint node so deployments re-plan around it, then tear
  // one down while the exclusion is still in force.
  net::NodeId target = net::kInvalidNode;
  for (net::NodeId n = 0; n < static_cast<net::NodeId>(w.net.node_count());
       ++n) {
    bool endpoint = false;
    for (const query::Query& q : w.wl.queries) {
      endpoint = endpoint || q.sink == n;
      for (const query::StreamId s : q.sources) {
        endpoint = endpoint || w.wl.catalog.stream(s).source == n;
      }
    }
    if (!endpoint) {
      target = n;
      break;
    }
  }
  ASSERT_NE(target, net::kInvalidNode);
  mw.fail_node(target);

  const std::size_t population = mw.active_queries() + mw.suspended_queries();
  EXPECT_TRUE(mw.undeploy(w.wl.queries[2].id));
  EXPECT_EQ(mw.active_queries() + mw.suspended_queries(), population - 1);
  EXPECT_EQ(validate_all(mw), 0u);
  mw.restore_node(target);
  EXPECT_EQ(validate_all(mw), 0u);
}

TEST(UndeployTest, DoubleUndeployIsACleanError) {
  World w(26);
  Middleware mw(w.net, w.wl.catalog, 4, Algorithm::kTopDown, 7);
  ASSERT_TRUE(mw.deploy(w.wl.queries[0]).feasible);
  EXPECT_TRUE(mw.undeploy(w.wl.queries[0].id));
  EXPECT_FALSE(mw.undeploy(w.wl.queries[0].id));
  EXPECT_FALSE(mw.undeploy(4242));  // never registered
  EXPECT_EQ(mw.active_queries(), 0u);
}

}  // namespace
}  // namespace iflow::engine
