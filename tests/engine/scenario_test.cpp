// Conformance suite for the scenario generator (DESIGN.md §12).
//
// Every named scenario of the catalogue must (a) build deterministically,
// (b) satisfy its declared structure (deep chains really are 8-way, geo
// clustering really concentrates sources, shared-source families really
// share the hot pair), (c) replay through the chaos harness with zero
// validator violations, full resumption, convergence and an intact
// delivery contract, and (d) keep its digest bitwise-identical across
// planner thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "engine/chaos.h"
#include "net/gtitm.h"
#include "workload/scenario.h"

namespace iflow::engine {
namespace {

using workload::RateCurve;
using workload::Scenario;
using workload::ScenarioSpec;
using workload::build_scenario;
using workload::scenario_names;
using workload::scenario_spec;

constexpr int kMaxCs = 8;

ChaosReport run_scenario(const Scenario& s, Algorithm alg, int threads = 1) {
  ChaosConfig cfg;
  cfg.events = 24;
  cfg.threads = threads;
  cfg.delivery_check = true;
  cfg.rate_modulation = s.rate_modulation();
  if (s.script.empty()) {
    return run_churn(s.net, s.workload.catalog, s.workload.queries, kMaxCs,
                     alg, s.spec.seed, cfg);
  }
  return run_scripted(s.net, s.workload.catalog, s.workload.queries, kMaxCs,
                      alg, s.spec.seed, s.script, cfg);
}

TEST(ScenarioTest, CatalogueHasAtLeastEightScenarios) {
  EXPECT_GE(scenario_names().size(), 8u);
  for (const std::string& name : scenario_names()) {
    const ScenarioSpec spec = scenario_spec(name);
    EXPECT_EQ(spec.name, name);
    const Scenario s = build_scenario(spec);
    EXPECT_GT(s.net.node_count(), 0u);
    EXPECT_FALSE(s.workload.queries.empty()) << name;
  }
}

TEST(ScenarioTest, UnknownNameThrows) {
  EXPECT_THROW(scenario_spec("no-such-scenario"), CheckError);
}

TEST(ScenarioTest, BuildIsDeterministic) {
  for (const std::string& name :
       {"baseline-uniform", "geo-clustered", "cluster-outage"}) {
    const Scenario a = build_scenario(scenario_spec(name));
    const Scenario b = build_scenario(scenario_spec(name));
    ASSERT_EQ(a.workload.catalog.stream_count(),
              b.workload.catalog.stream_count());
    for (std::size_t s = 0; s < a.workload.catalog.stream_count(); ++s) {
      const auto sid = static_cast<query::StreamId>(s);
      EXPECT_EQ(a.workload.catalog.stream(sid).source,
                b.workload.catalog.stream(sid).source);
      EXPECT_EQ(a.workload.catalog.stream(sid).tuple_rate,
                b.workload.catalog.stream(sid).tuple_rate);
    }
    ASSERT_EQ(a.workload.queries.size(), b.workload.queries.size());
    for (std::size_t q = 0; q < a.workload.queries.size(); ++q) {
      EXPECT_EQ(a.workload.queries[q].sources, b.workload.queries[q].sources);
      EXPECT_EQ(a.workload.queries[q].sink, b.workload.queries[q].sink);
    }
    ASSERT_EQ(a.script.size(), b.script.size());
    for (std::size_t e = 0; e < a.script.size(); ++e) {
      EXPECT_EQ(a.script[e].kind, b.script[e].kind);
      EXPECT_EQ(a.script[e].a, b.script[e].a);
      EXPECT_EQ(a.script[e].b, b.script[e].b);
      EXPECT_EQ(a.script[e].rate, b.script[e].rate);
    }
  }
}

TEST(ScenarioTest, RateCurveShapes) {
  RateCurve constant;
  EXPECT_EQ(constant.factor_at(0.0), 1.0);
  EXPECT_EQ(constant.factor_at(100.0), 1.0);

  RateCurve diurnal;
  diurnal.shape = RateCurve::Shape::kDiurnal;
  diurnal.period_s = 40.0;
  diurnal.amplitude = 0.5;
  double lo = 10.0, hi = -10.0;
  for (double t = 0.0; t < 40.0; t += 0.5) {
    const double f = diurnal.factor_at(t);
    lo = std::min(lo, f);
    hi = std::max(hi, f);
  }
  EXPECT_NEAR(lo, 0.5, 0.01);
  EXPECT_NEAR(hi, 1.5, 0.01);
  // Periodic: one full cycle returns to the start.
  EXPECT_NEAR(diurnal.factor_at(3.0), diurnal.factor_at(43.0), 1e-12);

  RateCurve burst;
  burst.shape = RateCurve::Shape::kFlashCrowd;
  burst.burst_start_s = 5.0;
  burst.burst_duration_s = 10.0;
  burst.burst_factor = 4.0;
  EXPECT_EQ(burst.factor_at(4.9), 1.0);
  EXPECT_EQ(burst.factor_at(5.0), 4.0);
  EXPECT_EQ(burst.factor_at(14.9), 4.0);
  EXPECT_EQ(burst.factor_at(15.0), 1.0);
}

TEST(ScenarioTest, RateModulationIsPureAndCoversAllStreams) {
  const Scenario s = build_scenario(scenario_spec("diurnal-rates"));
  ASSERT_EQ(s.rate_curves.size(), s.workload.catalog.stream_count());
  const auto f = s.rate_modulation();
  ASSERT_TRUE(static_cast<bool>(f));
  for (std::size_t sid = 0; sid < s.rate_curves.size(); ++sid) {
    const auto id = static_cast<query::StreamId>(sid);
    EXPECT_EQ(f(id, 7.25), f(id, 7.25));  // pure: same input, same output
    EXPECT_GT(f(id, 7.25), 0.0);
  }
  // Constant scenarios have no modulation at all.
  EXPECT_FALSE(static_cast<bool>(
      build_scenario(scenario_spec("baseline-uniform")).rate_modulation()));
}

TEST(ScenarioTest, DeepChainsAreEightWay) {
  const Scenario s = build_scenario(scenario_spec("deep-chains"));
  for (const query::Query& q : s.workload.queries) {
    EXPECT_EQ(q.k(), 8) << q.name;
  }
}

TEST(ScenarioTest, GeoClusteringConcentratesSourcesAwayFromSinks) {
  const ScenarioSpec spec = scenario_spec("geo-clustered");
  const Scenario s = build_scenario(spec);
  // Map each node to its stub domain (or -1 for transit).
  std::vector<int> domain_of(s.net.node_count(), -1);
  for (int d = 0; d < net::stub_domain_count(spec.topology); ++d) {
    for (net::NodeId n : net::stub_domain_members(spec.topology, d)) {
      domain_of[n] = d;
    }
  }
  std::set<int> source_domains, sink_domains;
  for (std::size_t sid = 0; sid < s.workload.catalog.stream_count(); ++sid) {
    source_domains.insert(
        domain_of[s.workload.catalog.stream(static_cast<query::StreamId>(sid))
                      .source]);
  }
  for (const query::Query& q : s.workload.queries) {
    sink_domains.insert(domain_of[q.sink]);
  }
  EXPECT_LE(static_cast<int>(source_domains.size()), spec.clusters);
  for (const int d : sink_domains) {
    EXPECT_EQ(source_domains.count(d), 0u) << "sink landed in a source domain";
  }
}

TEST(ScenarioTest, SharedSourcesShareAHotPairAndASink) {
  const Scenario s = build_scenario(scenario_spec("shared-sources"));
  ASSERT_GE(s.workload.queries.size(), 2u);
  // The hot pair is whatever the first query starts with that every other
  // query also contains.
  std::vector<query::StreamId> common = s.workload.queries[0].sources;
  for (const query::Query& q : s.workload.queries) {
    std::vector<query::StreamId> next;
    std::set_intersection(common.begin(), common.end(), q.sources.begin(),
                          q.sources.end(), std::back_inserter(next));
    common = std::move(next);
  }
  EXPECT_GE(common.size(), 2u) << "no shared hot pair";
  std::set<net::NodeId> sinks;
  for (std::size_t i = 0; i < s.workload.queries.size() / 2; ++i) {
    sinks.insert(s.workload.queries[i].sink);
  }
  EXPECT_EQ(sinks.size(), 1u) << "family does not share a sink";
}

TEST(ScenarioTest, UnionFanInSharesSinksAcrossBranches) {
  const Scenario s = build_scenario(scenario_spec("union-fanin"));
  // SQL-compiled branch families: at least one sink receives >= 2 queries.
  std::set<net::NodeId> sinks;
  std::size_t max_fan_in = 0;
  for (const query::Query& q : s.workload.queries) sinks.insert(q.sink);
  for (const net::NodeId sink : sinks) {
    std::size_t fan = 0;
    for (const query::Query& q : s.workload.queries) {
      if (q.sink == sink) ++fan;
    }
    max_fan_in = std::max(max_fan_in, fan);
  }
  EXPECT_GE(max_fan_in, 2u);
  // Query ids stay dense and unique (the middleware keys on them).
  std::set<query::QueryId> ids;
  for (const query::Query& q : s.workload.queries) ids.insert(q.id);
  EXPECT_EQ(ids.size(), s.workload.queries.size());
}

TEST(ScenarioTest, FailureScriptsOnlyInScriptedScenarios) {
  EXPECT_TRUE(build_scenario(scenario_spec("baseline-uniform")).script.empty());
  EXPECT_FALSE(build_scenario(scenario_spec("cluster-outage")).script.empty());
  EXPECT_FALSE(build_scenario(scenario_spec("flapping-region")).script.empty());
  EXPECT_FALSE(build_scenario(scenario_spec("loss-storm")).script.empty());
  // Rate-curve scenarios carry planner-visible rate samples.
  EXPECT_FALSE(build_scenario(scenario_spec("diurnal-rates")).script.empty());
}

TEST(ScenarioTest, EveryScenarioHoldsTheChaosAndDeliveryContracts) {
  for (const std::string& name : scenario_names()) {
    const Scenario s = build_scenario(scenario_spec(name));
    const ChaosReport r = run_scenario(s, Algorithm::kTopDown);
    EXPECT_EQ(r.violations, 0u) << name << ": " << r.violation_detail;
    EXPECT_TRUE(r.all_resumed) << name;
    EXPECT_TRUE(r.converged) << name << " final " << r.final_cost << " fresh "
                             << r.fresh_cost;
    EXPECT_TRUE(r.delivery_checked) << name;
    EXPECT_TRUE(r.delivery_ok) << name;
    EXPECT_GT(r.deploy_time_ms, 0.0) << name;
  }
}

TEST(ScenarioTest, DigestsAreStableAcrossPlannerThreadCounts) {
  // The PR-2 determinism contract extended to scenarios: scripted replay at
  // 1 and 4 planner threads must produce bitwise-identical transcripts.
  for (const std::string& name :
       {"baseline-uniform", "diurnal-rates", "cluster-outage", "loss-storm"}) {
    const Scenario s = build_scenario(scenario_spec(name));
    const ChaosReport one = run_scenario(s, Algorithm::kTopDown, 1);
    const ChaosReport four = run_scenario(s, Algorithm::kTopDown, 4);
    EXPECT_EQ(one.digest, four.digest) << name;
  }
}

}  // namespace
}  // namespace iflow::engine
