// Node-failure handling: operators migrate off a node that can no longer
// host processing (the paper handles node departures in the hierarchy;
// operator migration is the middleware's job).
#include <gtest/gtest.h>

#include <cmath>

#include "engine/middleware.h"
#include "net/gtitm.h"
#include "workload/generator.h"

namespace iflow::engine {
namespace {

struct World {
  net::Network net;
  workload::Workload wl;

  explicit World(std::uint64_t seed, int queries = 5) {
    Prng prng(seed);
    net::TransitStubParams p;
    p.transit_count = 2;
    p.stub_domains_per_transit = 2;
    p.stub_domain_size = 4;
    net = net::make_transit_stub(p, prng);
    workload::WorkloadParams wp;
    wp.num_streams = 6;
    wp.min_joins = 2;
    wp.max_joins = 3;
    Prng wprng(seed + 1);
    wl = workload::make_workload(net, wp, queries, wprng);
  }

  /// A node hosting at least one operator but no source and no sink.
  net::NodeId victim(const Middleware& mw) const {
    std::vector<int> ops_at(net.node_count(), 0);
    for (const query::Deployment* d : mw.deployments()) {
      for (const query::DeployedOp& op : d->ops) ops_at[op.node]++;
    }
    for (query::StreamId s = 0; s < wl.catalog.stream_count(); ++s) {
      ops_at[wl.catalog.stream(s).source] = -1;
    }
    for (const query::Query& q : wl.queries) ops_at[q.sink] = -1;
    const auto it = std::max_element(ops_at.begin(), ops_at.end());
    return (*it > 0) ? static_cast<net::NodeId>(it - ops_at.begin())
                     : net::kInvalidNode;
  }
};

TEST(FailureTest, OperatorsMigrateOffFailedNode) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    World w(seed);
    Middleware mw(w.net, w.wl.catalog, 4, Algorithm::kTopDown, 99);
    for (const query::Query& q : w.wl.queries) mw.deploy(q);
    const net::NodeId victim = w.victim(mw);
    if (victim == net::kInvalidNode) continue;  // all ops on pinned nodes

    const auto moves = mw.fail_node(victim);
    EXPECT_FALSE(moves.empty()) << "seed " << seed;
    for (const query::Deployment* d : mw.deployments()) {
      for (const query::DeployedOp& op : d->ops) {
        EXPECT_NE(op.node, victim) << "seed " << seed;
      }
      for (const query::LeafUnit& u : d->units) {
        if (u.derived) {
          EXPECT_NE(u.location, victim) << "seed " << seed;
        }
      }
      EXPECT_NO_THROW(query::validate_deployment(*d));
    }
    // Costs remain well-defined and the registry holds no stale providers.
    EXPECT_GE(mw.total_current_cost(), 0.0);
  }
}

TEST(FailureTest, SubsequentDeploysAvoidFailedNodes) {
  // Star topology: three sources around a hub; joining at the hub is
  // strictly optimal, so the hub hosts operators and is a migratable
  // victim (it is neither a source nor a sink).
  net::Network net;
  const auto hub = net.add_node();
  const auto a_node = net.add_node();
  const auto b_node = net.add_node();
  const auto c_node = net.add_node();
  const auto sink = net.add_node();
  const auto spare = net.add_node();
  for (net::NodeId n : {a_node, b_node, c_node, sink, spare}) {
    net.add_link(hub, n, 1.0, 1.0, 1e6);
  }
  query::Catalog catalog;
  const auto a = catalog.add_stream("A", a_node, 50.0, 100.0);
  const auto b = catalog.add_stream("B", b_node, 50.0, 100.0);
  const auto c = catalog.add_stream("C", c_node, 50.0, 100.0);
  catalog.set_selectivity(a, b, 0.001);
  catalog.set_selectivity(a, c, 0.001);
  catalog.set_selectivity(b, c, 0.001);
  query::Query q1;
  q1.id = 1;
  q1.sources = {a, b, c};
  q1.sink = sink;

  Middleware mw(net, catalog, 4, Algorithm::kExhaustive, 7);
  const opt::OptimizeResult first = mw.deploy(q1);
  bool hub_used = false;
  for (const query::DeployedOp& op : first.deployment.ops) {
    hub_used |= (op.node == hub);
  }
  ASSERT_TRUE(hub_used) << "the hub must be the optimal meeting point";

  const auto moves = mw.fail_node(hub);
  EXPECT_FALSE(moves.empty());
  // A new query must also avoid the hub.
  query::Query q2 = q1;
  q2.id = 2;
  q2.sink = spare;
  const opt::OptimizeResult r = mw.deploy(q2);
  for (const query::DeployedOp& op : r.deployment.ops) {
    EXPECT_NE(op.node, hub);
  }
}

TEST(FailureTest, SuspendsQueriesWithFailedSource) {
  World w(5, 2);
  Middleware mw(w.net, w.wl.catalog, 4, Algorithm::kTopDown, 3);
  for (const query::Query& q : w.wl.queries) mw.deploy(q);
  const std::size_t before = mw.active_queries();
  ASSERT_GT(before, 0u);

  // Failing a source node suspends (never throws) every query drawing from
  // it; the others keep running or migrate.
  const net::NodeId src = w.wl.catalog.stream(0).source;
  std::size_t drawing = 0;
  for (const query::Query& q : w.wl.queries) {
    for (query::StreamId s : q.sources) {
      if (w.wl.catalog.stream(s).source == src) {
        ++drawing;
        break;
      }
    }
  }
  const auto reds = mw.fail_node(src);
  std::size_t suspended = 0;
  for (const Redeployment& r : reds) {
    if (r.outcome == Outcome::kSuspended) ++suspended;
  }
  EXPECT_EQ(suspended, drawing);
  EXPECT_EQ(mw.suspended_queries(), drawing);
  EXPECT_EQ(mw.active_queries(), before - drawing);
  for (const Middleware::SuspendedQuery& sq : mw.suspended()) {
    EXPECT_EQ(sq.attempts, 0);
  }

  // Restoring the node resumes every suspended query.
  const auto resumed = mw.restore_node(src);
  std::size_t resumed_count = 0;
  for (const Redeployment& r : resumed) {
    if (r.outcome == Outcome::kResumed) ++resumed_count;
  }
  EXPECT_EQ(resumed_count, drawing);
  EXPECT_EQ(mw.suspended_queries(), 0u);
  EXPECT_EQ(mw.active_queries(), before);
}

TEST(FailureTest, SuspendsQueriesWithFailedSink) {
  World w(5, 2);
  Middleware mw(w.net, w.wl.catalog, 4, Algorithm::kTopDown, 3);
  for (const query::Query& q : w.wl.queries) mw.deploy(q);
  const std::size_t before = mw.active_queries();
  const net::NodeId sink = w.wl.queries.front().sink;
  std::size_t sinking = 0;
  for (const query::Query& q : w.wl.queries) sinking += (q.sink == sink);

  const auto reds = mw.fail_node(sink);
  std::size_t suspended = 0;
  for (const Redeployment& r : reds) {
    if (r.outcome == Outcome::kSuspended) ++suspended;
  }
  EXPECT_EQ(suspended, sinking);
  EXPECT_EQ(mw.active_queries(), before - sinking);

  const auto resumed = mw.restore_node(sink);
  EXPECT_EQ(mw.suspended_queries(), 0u);
  EXPECT_EQ(mw.active_queries(), before);
  for (const Redeployment& r : resumed) {
    if (r.outcome == Outcome::kResumed) {
      EXPECT_TRUE(std::isfinite(r.adapted_cost));
    }
  }
}

TEST(FailureTest, DeployWhileEndpointDownParksTheQuery) {
  World w(5, 2);
  Middleware mw(w.net, w.wl.catalog, 4, Algorithm::kTopDown, 3);
  const net::NodeId src = w.wl.catalog.stream(0).source;
  mw.fail_node(src);
  query::Query q;
  for (const query::Query& cand : w.wl.queries) {
    bool uses = false;
    for (query::StreamId s : cand.sources) {
      uses |= (w.wl.catalog.stream(s).source == src);
    }
    if (uses) {
      q = cand;
      break;
    }
  }
  ASSERT_FALSE(q.sources.empty());
  const opt::OptimizeResult res = mw.deploy(q);
  EXPECT_FALSE(res.feasible);
  EXPECT_EQ(mw.suspended_queries(), 1u);
  EXPECT_EQ(mw.active_queries(), 0u);
  mw.restore_node(src);
  EXPECT_EQ(mw.suspended_queries(), 0u);
  EXPECT_EQ(mw.active_queries(), 1u);
}

TEST(FailureTest, UnaffectedDeploymentsStayPut) {
  World w(6);
  Middleware mw(w.net, w.wl.catalog, 4, Algorithm::kTopDown, 11);
  for (const query::Query& q : w.wl.queries) mw.deploy(q);
  // Fail a node hosting nothing.
  std::vector<char> used(w.net.node_count(), 0);
  for (const query::Deployment* d : mw.deployments()) {
    for (const query::DeployedOp& op : d->ops) used[op.node] = 1;
  }
  for (query::StreamId s = 0; s < w.wl.catalog.stream_count(); ++s) {
    used[w.wl.catalog.stream(s).source] = 1;
  }
  for (const query::Query& q : w.wl.queries) used[q.sink] = 1;
  net::NodeId idle = net::kInvalidNode;
  for (net::NodeId n = 0; n < w.net.node_count(); ++n) {
    if (!used[n]) {
      idle = n;
      break;
    }
  }
  ASSERT_NE(idle, net::kInvalidNode);
  const double before = mw.total_current_cost();
  const auto moves = mw.fail_node(idle);
  EXPECT_TRUE(moves.empty());
  EXPECT_NEAR(mw.total_current_cost(), before, 1e-9 * (1.0 + before));
}

TEST(FailureTest, OverloadedAnchorSuspendsInsteadOfLooping) {
  // Two nodes, each an endpoint of the single query: stream A and the sink
  // on node 0, stream B on node 1. Wherever the join runs, its input load
  // lands on one of the query's own anchor nodes, so once a rate spike
  // pushes that load over capacity no replan can ever vacate the node.
  net::Network net;
  net.add_node();
  net.add_node();
  net.add_link(0, 1, 1.0, 1.0, 1e6);
  query::Catalog catalog;
  const query::StreamId a = catalog.add_stream("A", 0, 50.0, 100.0);
  const query::StreamId b = catalog.add_stream("B", 1, 50.0, 100.0);
  catalog.set_selectivity(a, b, 0.01);
  query::Query q;
  q.id = 1;
  q.sources = {a, b};
  q.sink = 0;

  Middleware mw(net, catalog, 4, Algorithm::kTopDown, 99);
  ASSERT_TRUE(mw.deploy(q).feasible);
  const std::vector<double> loads = mw.node_loads();
  const double peak = *std::max_element(loads.begin(), loads.end());
  ASSERT_GT(peak, 0.0);
  mw.set_node_capacity(peak * 1.5);
  EXPECT_TRUE(mw.rebalance_load().empty());  // within capacity as deployed

  // Spike both streams 10x: every possible host is now overloaded and
  // anchored. rebalance_load() must suspend the query (load shedding at
  // query granularity) rather than terminate with the node still drowning
  // — the historical behaviour was breaking out with "nothing can move".
  mw.set_stream_rate(a, 500.0);
  mw.set_stream_rate(b, 500.0);
  const std::vector<Redeployment> moves = mw.rebalance_load();
  bool suspended = false;
  for (const Redeployment& r : moves) {
    suspended |= (r.outcome == Outcome::kSuspended && r.query == q.id);
  }
  EXPECT_TRUE(suspended);
  EXPECT_EQ(mw.active_queries(), 0u);
  EXPECT_EQ(mw.suspended_queries(), 1u);
  // The shed node carries no operator load any more.
  const std::vector<double> after = mw.node_loads();
  for (const double l : after) EXPECT_DOUBLE_EQ(l, 0.0);
}

}  // namespace
}  // namespace iflow::engine
