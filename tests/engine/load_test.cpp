// Load-aware rebalancing: the paper's §1.1 "node N2 may be overloaded"
// scenario — operators shed off over-capacity nodes.
#include <gtest/gtest.h>

#include "engine/middleware.h"
#include "net/network.h"

namespace iflow::engine {
namespace {

/// Star network where the hub is the optimal (and only attractive) meeting
/// point for every query, so piling on queries overloads it.
struct Star {
  net::Network net;
  query::Catalog catalog;
  net::NodeId hub;
  std::vector<net::NodeId> leaves;

  Star() {
    hub = net.add_node();
    for (int i = 0; i < 6; ++i) {
      leaves.push_back(net.add_node());
      net.add_link(hub, leaves.back(), 1.0, 1.0, 1e6);
    }
    // Streams on leaves 0..3.
    for (int i = 0; i < 4; ++i) {
      catalog.add_stream("S" + std::to_string(i), leaves[static_cast<std::size_t>(i)],
                         50.0, 100.0);
    }
    for (query::StreamId a = 0; a < 4; ++a) {
      for (query::StreamId b = static_cast<query::StreamId>(a + 1); b < 4; ++b) {
        catalog.set_selectivity(a, b, 0.001);
      }
    }
  }

  query::Query make_query(query::QueryId id, std::vector<query::StreamId> src,
                          net::NodeId sink) const {
    query::Query q;
    q.id = id;
    q.sources = std::move(src);
    q.sink = sink;
    return q;
  }
};

TEST(LoadRebalanceTest, ShedsOperatorsOffOverloadedHub) {
  Star s;
  Middleware mw(s.net, s.catalog, 4, Algorithm::kExhaustive, 9);
  // Three 2-way joins, all optimally placed at the hub.
  mw.deploy(s.make_query(1, {0, 1}, s.leaves[4]));
  mw.deploy(s.make_query(2, {2, 3}, s.leaves[5]));
  mw.deploy(s.make_query(3, {0, 2}, s.leaves[4]));
  const std::vector<double> before = mw.node_loads();
  ASSERT_GT(before[s.hub], 0.0) << "queries should meet at the hub";

  // Capacity below the hub's current load, above what one query brings.
  mw.set_node_capacity(before[s.hub] * 0.6);
  const auto moves = mw.rebalance_load();
  EXPECT_FALSE(moves.empty());
  const std::vector<double> after = mw.node_loads();
  EXPECT_EQ(after[s.hub], 0.0)
      << "the hub was excluded from hosting, so all its operators moved";
  // Everything still valid and deliverable.
  for (const query::Deployment* d : mw.deployments()) {
    EXPECT_NO_THROW(query::validate_deployment(*d));
    for (const query::DeployedOp& op : d->ops) EXPECT_NE(op.node, s.hub);
  }
}

TEST(LoadRebalanceTest, NoCapacityMeansNoAction) {
  Star s;
  Middleware mw(s.net, s.catalog, 4, Algorithm::kExhaustive, 9);
  mw.deploy(s.make_query(1, {0, 1}, s.leaves[4]));
  EXPECT_TRUE(mw.rebalance_load().empty());  // unlimited by default
}

TEST(LoadRebalanceTest, UnderCapacityStaysPut) {
  Star s;
  Middleware mw(s.net, s.catalog, 4, Algorithm::kExhaustive, 9);
  mw.deploy(s.make_query(1, {0, 1}, s.leaves[4]));
  const double hub_load = mw.node_loads()[s.hub];
  mw.set_node_capacity(hub_load * 2.0);
  EXPECT_TRUE(mw.rebalance_load().empty());
  EXPECT_DOUBLE_EQ(mw.node_loads()[s.hub], hub_load);
}

TEST(LoadRebalanceTest, LoadAccountingSumsOperatorInputs) {
  Star s;
  Middleware mw(s.net, s.catalog, 4, Algorithm::kExhaustive, 9);
  const opt::OptimizeResult r = mw.deploy(s.make_query(1, {0, 1}, s.leaves[4]));
  double expected = 0.0;
  for (const query::DeployedOp& op : r.deployment.ops) {
    for (int child : {op.left, op.right}) {
      expected += query::child_is_unit(child)
                      ? r.deployment
                            .units[static_cast<std::size_t>(
                                query::child_unit_index(child))]
                            .bytes_rate
                      : r.deployment.ops[static_cast<std::size_t>(child)]
                            .out_bytes_rate;
    }
  }
  double total = 0.0;
  for (double l : mw.node_loads()) total += l;
  EXPECT_NEAR(total, expected, 1e-9 * (1.0 + expected));
}

}  // namespace
}  // namespace iflow::engine
