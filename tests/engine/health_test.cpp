// Gray-failure health plane (DESIGN.md §15): φ-accrual detection over
// channel telemetry, exonerate-then-cover attribution, the quarantine /
// probation lifecycle, health-aware planning, and the run_gray detection
// contract.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/health.h"
#include "engine/middleware.h"
#include "net/routing.h"

namespace iflow::engine {
namespace {

/// Telemetry for one channel along `path`, either bit-exact clean (RTT
/// equals the stored expectation, zero retransmits) or heavily sick.
ChannelTelemetry channel(std::vector<net::NodeId> path, bool sick) {
  ChannelTelemetry t;
  t.from = path.front();
  t.to = path.back();
  t.path = std::move(path);
  t.sent = 100;
  t.rtt_samples = sick ? 40 : 100;
  t.expected_rtt_sum_ms = static_cast<double>(t.rtt_samples) * 2.0;
  if (sick) {
    t.retransmits = 60;
    t.rtt_sum_ms = t.expected_rtt_sum_ms * 4.0;
  } else {
    t.retransmits = 0;
    t.rtt_sum_ms = t.expected_rtt_sum_ms;
  }
  return t;
}

TEST(HealthMonitorTest, CleanTelemetryRaisesNoSuspicion) {
  net::Network net;
  for (int i = 0; i < 4; ++i) net.add_node();
  net.add_link(0, 1, 1.0, 1.0, 1e6);
  net.add_link(1, 2, 1.0, 1.0, 1e6);
  net.add_link(1, 3, 1.0, 1.0, 1e6);
  HealthMonitor hm(4, HealthConfig{}, 7);
  for (int epoch = 0; epoch < 6; ++epoch) {
    hm.observe({channel({0, 1, 2}, false), channel({0, 1, 3}, false)});
    const auto trans = hm.step(net, 10.0 * (epoch + 1), 10.0);
    EXPECT_TRUE(trans.empty());
  }
  for (net::NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(hm.state(n), HealthState::kHealthy);
    EXPECT_EQ(hm.phi(n), 0.0);  // exact: clean signals are exactly zero
  }
  // Exactly-1.0 penalties are the digest-stability foundation: multiplying
  // by them cannot perturb a single bit of any planner price.
  for (const double p : hm.node_penalty()) EXPECT_EQ(p, 1.0);
  EXPECT_TRUE(hm.quarantined().empty());
  EXPECT_EQ(hm.quarantines_total(), 0u);
}

TEST(HealthMonitorTest, GreedyCoverBlamesTheSharedHubNotTheEndpoints) {
  // Star: every channel crosses hub 1. All channels sick -> the hub alone
  // explains every observation, so only it accrues suspicion. (A naive
  // min-over-crossing-channels rule inverts this: the hub's min ranges
  // over all channels, giving it the LOWEST suspicion in its own star.)
  net::Network net;
  for (int i = 0; i < 5; ++i) net.add_node();
  for (net::NodeId n : {0u, 2u, 3u, 4u}) net.add_link(1, n, 1.0, 1.0, 1e6);
  HealthMonitor hm(5, HealthConfig{}, 7);
  hm.observe({channel({0, 1, 2}, true), channel({0, 1, 3}, true),
              channel({4, 1, 2}, true)});
  hm.step(net, 10.0, 10.0);
  EXPECT_GT(hm.phi(1), 0.0);
  for (net::NodeId n : {0u, 2u, 3u, 4u}) {
    EXPECT_EQ(hm.phi(n), 0.0) << "endpoint " << n << " wrongly blamed";
  }
}

TEST(HealthMonitorTest, CleanChannelExoneratesSharedPathNodes) {
  // Node 1 carries one sick and one clean channel: the clean one proves it
  // healthy, so the blame must fall past it — onto the sick channel's
  // other nodes (the greedy cover picks node 2, which nothing exonerates).
  net::Network net;
  for (int i = 0; i < 4; ++i) net.add_node();
  net.add_link(0, 1, 1.0, 1.0, 1e6);
  net.add_link(1, 2, 1.0, 1.0, 1e6);
  net.add_link(1, 3, 1.0, 1.0, 1e6);
  HealthMonitor hm(4, HealthConfig{}, 7);
  hm.observe({channel({0, 1, 2}, true), channel({0, 1, 3}, false)});
  hm.step(net, 10.0, 10.0);
  EXPECT_EQ(hm.phi(0), 0.0);
  EXPECT_EQ(hm.phi(1), 0.0);
  EXPECT_GT(hm.phi(2), 0.0);
}

TEST(HealthMonitorTest, LifecycleConfirmsQuarantinesAndReadmitsViaProbes) {
  // Two sick channels share the {1, 2} segment; node 1 covers both and wins
  // the greedy cover (tie with node 2 breaks toward the lower id).
  net::Network net;
  for (int i = 0; i < 4; ++i) net.add_node();
  net.add_link(0, 1, 1.0, 1.0, 1e6);
  net.add_link(1, 2, 1.0, 1.0, 1e6);
  net.add_link(1, 3, 1.0, 1.0, 1e6);
  HealthConfig cfg;  // confirm_epochs 2, probes 2/epoch, budget 4
  HealthMonitor hm(4, cfg, 7);
  net.degrade_node(1, net::Degradation{3.0, 0.6, 0.0});

  // Epoch 0: the hub turns suspect (phi crosses both thresholds but the
  // confirm streak is 1 < 2).
  hm.observe({channel({0, 1, 2}, true), channel({3, 1, 2}, true)});
  auto trans = hm.step(net, 10.0, 10.0);
  ASSERT_EQ(trans.size(), 1u);
  EXPECT_EQ(trans[0].node, 1u);
  EXPECT_EQ(trans[0].to, HealthState::kSuspect);

  // Epoch 1: second confirmation quarantines it.
  hm.observe({channel({0, 1, 2}, true), channel({3, 1, 2}, true)});
  trans = hm.step(net, 20.0, 10.0);
  ASSERT_EQ(trans.size(), 1u);
  EXPECT_EQ(trans[0].to, HealthState::kQuarantined);
  EXPECT_EQ(hm.quarantines_total(), 1u);
  EXPECT_EQ(hm.node_penalty()[1], cfg.penalty_max);

  // Still degraded: probes stay dirty (slowdown 3.0 >= the RTT floor is
  // deterministically visible), so it stays quarantined.
  trans = hm.step(net, 30.0, 10.0);
  EXPECT_TRUE(trans.empty());
  EXPECT_EQ(hm.state(1), HealthState::kQuarantined);

  // Heal the element: first clean probe epoch moves it to probation (still
  // excluded), the second completes the budget and fully re-admits it.
  net.degrade_node(1, net::Degradation{});
  trans = hm.step(net, 40.0, 10.0);
  ASSERT_EQ(trans.size(), 1u);
  EXPECT_EQ(trans[0].to, HealthState::kProbation);
  EXPECT_FALSE(hm.quarantined().empty());  // probation still excluded
  trans = hm.step(net, 50.0, 10.0);
  ASSERT_EQ(trans.size(), 1u);
  EXPECT_EQ(trans[0].to, HealthState::kHealthy);
  EXPECT_EQ(hm.phi(1), 0.0);  // re-admission forgets the old suspicion
  EXPECT_EQ(hm.node_penalty()[1], 1.0);
  EXPECT_EQ(hm.quarantines_total(), 1u);  // probation return did not count
}

TEST(HealthMonitorTest, OnRestoreClearsAccruedSuspicion) {
  // A restored node is (modelled) replacement hardware: the φ accrued
  // against the old incarnation must not leak into its probation window as
  // stale suspicion. on_restore resets the lifecycle, the penalty and every
  // link-suspicion entry touching the node.
  net::Network net;
  for (int i = 0; i < 4; ++i) net.add_node();
  net.add_link(0, 1, 1.0, 1.0, 1e6);
  net.add_link(1, 2, 1.0, 1.0, 1e6);
  net.add_link(1, 3, 1.0, 1.0, 1e6);
  HealthConfig cfg;
  HealthMonitor hm(4, cfg, 7);
  net.degrade_node(1, net::Degradation{3.0, 0.6, 0.0});
  hm.observe({channel({0, 1, 2}, true), channel({3, 1, 2}, true)});
  hm.step(net, 10.0, 10.0);
  hm.observe({channel({0, 1, 2}, true), channel({3, 1, 2}, true)});
  hm.step(net, 20.0, 10.0);
  ASSERT_EQ(hm.state(1), HealthState::kQuarantined);
  ASSERT_GT(hm.phi(1), 0.0);
  ASSERT_FALSE(hm.link_suspicion().empty());

  hm.on_restore(1);
  EXPECT_EQ(hm.state(1), HealthState::kHealthy);
  EXPECT_EQ(hm.phi(1), 0.0);
  EXPECT_EQ(hm.node_penalty()[1], 1.0);
  EXPECT_TRUE(hm.quarantined().empty());
  for (const HealthMonitor::LinkSuspicion& l : hm.link_suspicion()) {
    EXPECT_NE(l.a, 1u);
    EXPECT_NE(l.b, 1u);
  }
  // Mid-epoch accumulators are gone too: a clean step raises nothing.
  const auto trans = hm.step(net, 30.0, 10.0);
  EXPECT_TRUE(trans.empty());
  EXPECT_EQ(hm.state(1), HealthState::kHealthy);
}

TEST(HealthMonitorTest, DirtyProbeSendsProbationBackToQuarantine) {
  net::Network net;
  for (int i = 0; i < 4; ++i) net.add_node();
  net.add_link(0, 1, 1.0, 1.0, 1e6);
  net.add_link(1, 2, 1.0, 1.0, 1e6);
  net.add_link(1, 3, 1.0, 1.0, 1e6);
  HealthMonitor hm(4, HealthConfig{}, 7);
  net.degrade_node(1, net::Degradation{3.0, 0.0, 0.0});
  hm.observe({channel({0, 1, 2}, true), channel({3, 1, 2}, true)});
  hm.step(net, 10.0, 10.0);
  hm.observe({channel({0, 1, 2}, true), channel({3, 1, 2}, true)});
  hm.step(net, 20.0, 10.0);
  ASSERT_EQ(hm.state(1), HealthState::kQuarantined);
  // Clean epoch -> probation; re-degrading makes the next probe dirty and
  // demotes it straight back.
  net.degrade_node(1, net::Degradation{});
  hm.step(net, 30.0, 10.0);
  ASSERT_EQ(hm.state(1), HealthState::kProbation);
  net.degrade_node(1, net::Degradation{3.0, 0.0, 0.0});
  const auto trans = hm.step(net, 40.0, 10.0);
  ASSERT_EQ(trans.size(), 1u);
  EXPECT_EQ(trans[0].from, HealthState::kProbation);
  EXPECT_EQ(trans[0].to, HealthState::kQuarantined);
}

/// Dual-relay star world: the 3-way join lands on the cheap primary relay
/// for every optimizer, and the backup relay gives the planner a complete
/// detour once the primary is quarantined.
struct RelayWorld {
  net::Network net;
  query::Catalog catalog;
  std::vector<query::Query> queries;
  net::NodeId primary = 0;
  net::NodeId backup = 1;
  net::NodeId sink = net::kInvalidNode;

  RelayWorld() {
    primary = net.add_node();
    backup = net.add_node();
    std::vector<net::NodeId> srcs;
    for (int i = 0; i < 3; ++i) srcs.push_back(net.add_node());
    sink = net.add_node();
    for (const net::NodeId n : srcs) {
      net.add_link(primary, n, 1.0, 1.0, 1e6);
      net.add_link(backup, n, 1.3, 1.0, 1e6);
    }
    net.add_link(primary, sink, 1.0, 1.0, 1e6);
    net.add_link(backup, sink, 1.3, 1.0, 1e6);
    std::vector<query::StreamId> streams;
    for (int i = 0; i < 3; ++i) {
      streams.push_back(catalog.add_stream("S" + std::to_string(i),
                                           srcs[static_cast<std::size_t>(i)],
                                           30.0, 100.0));
    }
    for (std::size_t i = 0; i < streams.size(); ++i) {
      for (std::size_t j = i + 1; j < streams.size(); ++j) {
        catalog.set_selectivity(streams[i], streams[j], 0.05);
      }
    }
    query::Query q;
    q.id = 1;
    q.sources = streams;
    q.sink = sink;
    queries.push_back(q);
  }
};

TEST(RunGrayTest, DetectorMeetsTheDetectionContractAtDefaultIntensity) {
  const RelayWorld w;
  const GrayReport rep = run_gray(w.net, w.catalog, w.queries, 8,
                                  Algorithm::kTopDown, 20070806);
  EXPECT_EQ(rep.violations, 0u) << rep.violation_detail;
  EXPECT_EQ(rep.false_positives, 0u);
  EXPECT_GE(rep.detection_epoch, 0);
  EXPECT_GE(rep.recovery_ratio, 1.5);
  EXPECT_TRUE(rep.contract_ok);
  ASSERT_EQ(rep.targets.size(), 1u);
  EXPECT_EQ(rep.targets[0], w.primary);
}

TEST(RunGrayTest, HealthyTwinNeverQuarantines) {
  const RelayWorld w;
  GrayConfig cfg;
  cfg.degradation.loss = 0.0;  // degrade() applies a no-op degradation
  cfg.degradation.slowdown = 1.0;
  const GrayReport rep = run_gray(w.net, w.catalog, w.queries, 8,
                                  Algorithm::kBottomUp, 11, cfg);
  EXPECT_EQ(rep.false_positives, 0u);
  EXPECT_EQ(rep.violations, 0u) << rep.violation_detail;
  // With nothing degraded anywhere, on == off == healthy bit for bit.
  EXPECT_EQ(rep.goodput_on, rep.goodput_off);
  EXPECT_EQ(rep.goodput_on, rep.goodput_healthy);
}

TEST(RunGrayTest, DigestsAreStableAcrossPlannerThreadCounts) {
  const RelayWorld w;
  GrayConfig one;
  one.threads = 1;
  GrayConfig four;
  four.threads = 4;
  const GrayReport a = run_gray(w.net, w.catalog, w.queries, 8,
                                Algorithm::kTopDown, 20070806, one);
  const GrayReport b = run_gray(w.net, w.catalog, w.queries, 8,
                                Algorithm::kTopDown, 20070806, four);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.goodput_on, b.goodput_on);
  EXPECT_EQ(a.recovery_ratio, b.recovery_ratio);
}

TEST(MiddlewareHealthTest, QuarantineVacatesHostForEveryAlgorithm) {
  for (const Algorithm alg :
       {Algorithm::kTopDown, Algorithm::kBottomUp, Algorithm::kExhaustive,
        Algorithm::kPlanThenDeploy, Algorithm::kRelaxation,
        Algorithm::kInNetwork}) {
    RelayWorld w;
    Middleware mw(w.net, w.catalog, 8, alg, 13);
    for (const query::Query& q : w.queries) mw.deploy(q);
    mw.quarantine_node(w.primary);
    for (const Middleware::ActiveView& v : mw.active_views()) {
      for (const query::DeployedOp& op : v.deployment->ops) {
        EXPECT_NE(op.node, w.primary) << to_string(alg);
      }
      for (const query::LeafUnit& u : v.deployment->units) {
        if (u.derived) {
          EXPECT_NE(u.location, w.primary) << to_string(alg);
        }
      }
    }
    // New deployments avoid it too.
    query::Query q2 = w.queries[0];
    q2.id = 2;
    mw.deploy(q2);
    for (const Middleware::ActiveView& v : mw.active_views()) {
      for (const query::DeployedOp& op : v.deployment->ops) {
        EXPECT_NE(op.node, w.primary) << to_string(alg);
      }
    }
    EXPECT_EQ(mw.quarantined_nodes().size(), 1u);
    mw.release_quarantine(w.primary);
    EXPECT_TRUE(mw.quarantined_nodes().empty());
  }
}

TEST(MiddlewareHealthTest, SuspicionPenaltySteersPlacementOffSickHosts) {
  // No quarantine at all: a suspicion-priced primary relay alone must push
  // fresh placements onto the clean backup, for every optimizer.
  for (const Algorithm alg :
       {Algorithm::kTopDown, Algorithm::kBottomUp, Algorithm::kExhaustive,
        Algorithm::kPlanThenDeploy, Algorithm::kRelaxation,
        Algorithm::kInNetwork}) {
    RelayWorld w;
    Middleware mw(w.net, w.catalog, 8, alg, 13);
    std::vector<double> penalty(w.net.node_count(), 1.0);
    penalty[w.primary] = 8.0;
    mw.set_health_penalty(penalty);
    for (const query::Query& q : w.queries) mw.deploy(q);
    for (const Middleware::ActiveView& v : mw.active_views()) {
      for (const query::DeployedOp& op : v.deployment->ops) {
        EXPECT_NE(op.node, w.primary) << to_string(alg);
      }
    }
  }
}

TEST(DegradationTest, DegradationsJournalAsQualityOnlyMutations) {
  RelayWorld w;
  net::RoutingTables rt = net::RoutingTables::build(w.net);
  const std::uint64_t v0 = w.net.version();
  w.net.degrade_node(w.primary, net::Degradation{2.0, 0.1, 0.0});
  w.net.degrade_link(w.primary, w.sink, net::Degradation{1.0, 0.2, 0.0});
  const auto log = w.net.mutations_since(v0);
  ASSERT_TRUE(log.has_value());
  ASSERT_EQ(log->size(), 2u);
  for (const net::Mutation& m : *log) {
    EXPECT_EQ(m.kind, net::MutationKind::kQuality);
    EXPECT_FALSE(m.relaxing);
  }
  // Quality-only batches cost sync() nothing: no rebuild, metrics intact.
  const double before = rt.cost(2, w.sink);
  const net::RoutingSyncStats stats = rt.sync(w.net);
  EXPECT_TRUE(stats.quality_only);
  EXPECT_FALSE(stats.full_rebuild);
  EXPECT_EQ(rt.cost(2, w.sink), before);
}

}  // namespace
}  // namespace iflow::engine
