// Checkpoint/recovery plane (DESIGN.md §16): coordinated snapshots,
// rollback recovery with upstream replay, state-preserving migration, and
// the run_recovery result-transparency contract.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/chaos.h"
#include "engine/simulation.h"
#include "net/routing.h"
#include "opt/exhaustive.h"

namespace iflow::engine {
namespace {

/// Dual-relay star world (same shape as the gray-failure harness): the
/// 3-way join lands on the cheap primary relay, the backup relay gives the
/// planner a complete detour, and neither relay sources or sinks — so the
/// recovery harness can crash and vacate them.
struct RelayWorld {
  net::Network net;
  query::Catalog catalog;
  std::vector<query::Query> queries;
  net::NodeId primary = 0;
  net::NodeId backup = 1;
  net::NodeId sink = net::kInvalidNode;

  RelayWorld() {
    primary = net.add_node();
    backup = net.add_node();
    std::vector<net::NodeId> srcs;
    for (int i = 0; i < 3; ++i) srcs.push_back(net.add_node());
    sink = net.add_node();
    for (const net::NodeId n : srcs) {
      net.add_link(primary, n, 1.0, 1.0, 1e6);
      net.add_link(backup, n, 1.3, 1.0, 1e6);
    }
    net.add_link(primary, sink, 1.0, 1.0, 1e6);
    net.add_link(backup, sink, 1.3, 1.0, 1e6);
    std::vector<query::StreamId> streams;
    for (int i = 0; i < 3; ++i) {
      streams.push_back(catalog.add_stream("S" + std::to_string(i),
                                           srcs[static_cast<std::size_t>(i)],
                                           30.0, 100.0));
    }
    for (std::size_t i = 0; i < streams.size(); ++i) {
      for (std::size_t j = i + 1; j < streams.size(); ++j) {
        catalog.set_selectivity(streams[i], streams[j], 0.05);
      }
    }
    query::Query q;
    q.id = 1;
    q.sources = streams;
    q.sink = sink;
    queries.push_back(q);
  }
};

/// Line 0(A) — 1 — 2(B), sink 3 hanging off the relay: the exhaustive
/// optimizer hosts the windowed join somewhere on the line, and node 1 / 3
/// are migration sources/targets for the Simulation-level tests.
struct JoinRig {
  net::Network net;
  net::RoutingTables rt;
  query::Catalog catalog;
  query::Query q;
  query::Deployment d;
  net::NodeId op_node = net::kInvalidNode;

  JoinRig() {
    for (int i = 0; i < 4; ++i) net.add_node();
    net.add_link(0, 1, 1.0, 1.0, 1e6);
    net.add_link(1, 2, 1.0, 1.0, 1e6);
    net.add_link(1, 3, 1.0, 1.0, 1e6);
    rt = net::RoutingTables::build(net);
    const query::StreamId a = catalog.add_stream("A", 0, 40.0, 80.0);
    const query::StreamId b = catalog.add_stream("B", 2, 40.0, 80.0);
    catalog.set_selectivity(a, b, 0.02);
    q.id = 60;
    q.sources = {a, b};
    q.sink = 3;
    opt::OptimizerEnv env;
    env.catalog = &catalog;
    env.network = &net;
    env.routing = &rt;
    env.reuse = false;
    opt::ExhaustiveOptimizer ex(env);
    const opt::OptimizeResult res = ex.optimize(q);
    EXPECT_TRUE(res.feasible);
    d = res.deployment;
    op_node = d.ops.at(0).node;
  }
};

EngineConfig checkpointed_config(double duration = 30.0) {
  EngineConfig cfg;
  cfg.duration_s = duration;
  cfg.poisson = false;
  cfg.reliability.enabled = true;
  // Rollback replay re-delivers tuples up to a checkpoint interval plus a
  // crash window late; the count-equality contract needs the event-time
  // slack to cover that depth, so joins still meet replayed partners.
  cfg.reliability.lateness_s = duration;
  cfg.checkpoint.enabled = true;
  cfg.checkpoint.volatile_state = true;
  cfg.checkpoint.interval_s = 5.0;
  return cfg;
}

TEST(CheckpointConfigTest, CheckpointingRequiresTheReliableDataPlane) {
  JoinRig r;
  EngineConfig cfg;
  cfg.checkpoint.enabled = true;  // reliability left off
  EXPECT_THROW(Simulation(r.net, r.rt, r.catalog, cfg, 7), CheckError);
}

TEST(CheckpointTest, CleanRunCommitsEpochsAndAccountsBytes) {
  JoinRig r;
  query::RateModel rates(r.catalog, r.q);
  Simulation sim(r.net, r.rt, r.catalog, checkpointed_config(), 7);
  sim.deploy(r.d, rates);
  sim.run();

  const SnapshotStats ss = sim.snapshot_stats();
  // 30 s at a 5 s interval: barriers at 5..25 all commit (one in flight at
  // a time, each commits in well under an interval on this tiny world).
  EXPECT_GE(ss.epochs_committed, 4);
  EXPECT_EQ(ss.epochs_aborted, 0);
  EXPECT_EQ(ss.recoveries, 0);
  EXPECT_GT(ss.bytes_total, 0.0);
  EXPECT_GE(ss.bytes_max, ss.bytes_last);
  EXPECT_GE(ss.barrier_latency_max_s, 0.0);
  EXPECT_GT(ss.retained_high_water, 0u);
  const DeliveryStats ds = sim.delivery_stats(r.q.id);
  EXPECT_GT(ds.snapshot_bytes, 0.0);
}

TEST(CheckpointTest, CheckpointingDoesNotChangeDeliveredCounts) {
  // Barriers, alignment buffering and retention are pure overhead: the
  // same seed with the checkpoint plane off delivers identical counts.
  JoinRig r;
  query::RateModel rates(r.catalog, r.q);
  EngineConfig plain = checkpointed_config();
  plain.checkpoint.enabled = false;
  plain.checkpoint.volatile_state = false;
  Simulation off(r.net, r.rt, r.catalog, plain, 7);
  off.deploy(r.d, rates);
  off.run();
  Simulation on(r.net, r.rt, r.catalog, checkpointed_config(), 7);
  on.deploy(r.d, rates);
  on.run();
  ASSERT_GT(off.tuples_delivered(r.q.id), 0u);
  EXPECT_EQ(on.tuples_delivered(r.q.id), off.tuples_delivered(r.q.id));
}

TEST(CheckpointTest, CrashRecoveryRestoresCommittedStateAndReplays) {
  // A mid-stream crash of the join host with volatile state: rollback to
  // the committed epoch plus upstream replay must deliver the fault-free
  // twin's counts exactly.
  JoinRig r;
  query::RateModel rates(r.catalog, r.q);
  Simulation twin(r.net, r.rt, r.catalog, checkpointed_config(40.0), 7);
  twin.deploy(r.d, rates);
  twin.run();

  Simulation sim(r.net, r.rt, r.catalog, checkpointed_config(40.0), 7);
  sim.deploy(r.d, rates);
  sim.schedule_fault({18.0, SimFault::Kind::kCrashNode, r.op_node,
                      net::kInvalidNode});
  sim.schedule_fault({21.0, SimFault::Kind::kRestoreNode, r.op_node,
                      net::kInvalidNode});
  sim.run();

  ASSERT_GT(twin.tuples_delivered(r.q.id), 0u);
  EXPECT_EQ(sim.tuples_delivered(r.q.id), twin.tuples_delivered(r.q.id));
  EXPECT_EQ(sim.delivery_stats(r.q.id).lost, 0u);
  const SnapshotStats ss = sim.snapshot_stats();
  EXPECT_EQ(ss.recoveries, 1);
  EXPECT_GT(ss.replayed_tuples, 0u);
  EXPECT_GT(ss.recovery_latency_max_s, 0.0);
}

TEST(CheckpointTest, VolatileCrashWithoutSnapshotsLosesResults) {
  // Teeth: the same crash with the checkpoint plane OFF wipes the join
  // windows with nothing to roll back to — results must go missing.
  JoinRig r;
  query::RateModel rates(r.catalog, r.q);
  EngineConfig vol = checkpointed_config(40.0);
  vol.checkpoint.enabled = false;  // volatile_state stays on
  Simulation twin(r.net, r.rt, r.catalog, vol, 7);
  twin.deploy(r.d, rates);
  twin.run();

  Simulation sim(r.net, r.rt, r.catalog, vol, 7);
  sim.deploy(r.d, rates);
  sim.schedule_fault({18.0, SimFault::Kind::kCrashNode, r.op_node,
                      net::kInvalidNode});
  sim.schedule_fault({21.0, SimFault::Kind::kRestoreNode, r.op_node,
                      net::kInvalidNode});
  sim.run();

  ASSERT_GT(twin.tuples_delivered(r.q.id), 0u);
  EXPECT_LT(sim.tuples_delivered(r.q.id), twin.tuples_delivered(r.q.id));
}

TEST(CheckpointTest, WarmMigrationMidWindowIsResultTransparent) {
  // The planner hands the join to another host mid-window; with the
  // checkpoint plane on the state moves with it, so the sink cannot tell.
  JoinRig r;
  query::RateModel rates(r.catalog, r.q);
  Simulation twin(r.net, r.rt, r.catalog, checkpointed_config(), 7);
  twin.deploy(r.d, rates);
  twin.run();

  const net::NodeId dest = r.op_node == 1 ? 3 : 1;
  Simulation sim(r.net, r.rt, r.catalog, checkpointed_config(), 7);
  sim.deploy(r.d, rates);
  sim.schedule_fault({15.0, SimFault::Kind::kMigrateOps, r.op_node, dest});
  sim.run();

  ASSERT_GT(twin.tuples_delivered(r.q.id), 0u);
  EXPECT_EQ(sim.tuples_delivered(r.q.id), twin.tuples_delivered(r.q.id));
  EXPECT_EQ(sim.delivery_stats(r.q.id).lost, 0u);
}

TEST(CheckpointTest, ColdMigrationMidWindowVisiblyDiffers) {
  // The same move without the checkpoint plane restarts the join empty:
  // mid-window partners are lost and the counts must differ (this is what
  // gives the warm-equivalence test its teeth).
  JoinRig r;
  query::RateModel rates(r.catalog, r.q);
  EngineConfig cold = checkpointed_config();
  cold.checkpoint.enabled = false;
  Simulation twin(r.net, r.rt, r.catalog, cold, 7);
  twin.deploy(r.d, rates);
  twin.run();

  const net::NodeId dest = r.op_node == 1 ? 3 : 1;
  Simulation sim(r.net, r.rt, r.catalog, cold, 7);
  sim.deploy(r.d, rates);
  sim.schedule_fault({15.0, SimFault::Kind::kMigrateOps, r.op_node, dest});
  sim.run();

  ASSERT_GT(twin.tuples_delivered(r.q.id), 0u);
  EXPECT_LT(sim.tuples_delivered(r.q.id), twin.tuples_delivered(r.q.id));
}

TEST(SeenSetTest, LossSoakBoundsTheOutOfOrderSetByTheWindow) {
  // Receiver dedup compaction (the seen set collapses into the floor on
  // every advance): under sustained loss the out-of-order set grows past
  // zero but never past the sliding window.
  JoinRig r;
  r.net.set_link_loss(0, 1, 0.10);
  r.net.set_link_loss(1, 2, 0.10);
  r.net.set_link_loss(1, 3, 0.10);
  query::RateModel rates(r.catalog, r.q);
  EngineConfig cfg;
  cfg.duration_s = 30.0;
  cfg.poisson = false;
  cfg.reliability.enabled = true;
  Simulation sim(r.net, r.rt, r.catalog, cfg, 7);
  sim.deploy(r.d, rates);
  sim.run();

  const DeliveryStats ds = sim.delivery_stats(r.q.id);
  EXPECT_EQ(ds.lost, 0u);
  EXPECT_GT(ds.retransmits, 0u);
  EXPECT_GT(ds.seen_high_water, 0u);
  EXPECT_LE(ds.seen_high_water, cfg.reliability.window);
}

TEST(RunRecoveryTest, ContractHoldsAtDefaultIntensity) {
  const RelayWorld w;
  const RecoveryReport rep = run_recovery(w.net, w.catalog, w.queries, 8,
                                          Algorithm::kTopDown, 20070806);
  EXPECT_EQ(rep.violations, 0u) << rep.violation_detail;
  EXPECT_TRUE(rep.counts_match)
      << "twin " << rep.twin_delivered << " faulted "
      << rep.faulted_delivered;
  EXPECT_EQ(rep.faulted_lost, 0u);
  EXPECT_TRUE(rep.loss_without_snapshots)
      << "volatile " << rep.volatile_delivered << " twin "
      << rep.twin_delivered;
  EXPECT_GE(rep.epochs_committed, 1);
  EXPECT_GT(rep.snapshot_bytes_total, 0.0);
  EXPECT_GT(rep.events, 0u);
  EXPECT_TRUE(rep.contract_ok);
}

TEST(RunRecoveryTest, DigestsAreStableAcrossPlannerThreadCounts) {
  const RelayWorld w;
  RecoveryConfig one;
  one.threads = 1;
  RecoveryConfig four;
  four.threads = 4;
  const RecoveryReport a = run_recovery(w.net, w.catalog, w.queries, 8,
                                        Algorithm::kTopDown, 20070806, one);
  const RecoveryReport b = run_recovery(w.net, w.catalog, w.queries, 8,
                                        Algorithm::kTopDown, 20070806, four);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.twin_delivered, b.twin_delivered);
  EXPECT_EQ(a.faulted_delivered, b.faulted_delivered);
  EXPECT_EQ(a.snapshot_bytes_total, b.snapshot_bytes_total);
}

TEST(RunRecoveryTest, ChurnPhaseRecordsWarmStateMigrations) {
  const RelayWorld w;
  RecoveryConfig cfg;
  cfg.events = 8;
  const RecoveryReport rep = run_recovery(w.net, w.catalog, w.queries, 8,
                                          Algorithm::kBottomUp, 11, cfg);
  EXPECT_EQ(rep.events, 8u);
  // Crashing / quarantining the join's host forces at least one adoption.
  EXPECT_GE(rep.migrations, 1u);
  EXPECT_EQ(rep.violations, 0u) << rep.violation_detail;
  EXPECT_TRUE(rep.contract_ok);
}

}  // namespace
}  // namespace iflow::engine
