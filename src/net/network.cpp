#include "net/network.h"

#include <algorithm>
#include <queue>

namespace iflow::net {

namespace {

/// Entries retained in the mutation journal. Large enough that any
/// within-reaction reader (middleware sync after each fault entry point,
/// chaos replay) never falls off the tail; falling off just costs a full
/// rebuild, never correctness.
constexpr std::size_t kMutationLogCapacity = 4096;

void check_degradation(const Degradation& d) {
  IFLOW_CHECK_MSG(d.slowdown >= 1.0, "slowdown must be >= 1");
  IFLOW_CHECK_MSG(d.loss >= 0.0 && d.loss < 1.0,
                  "degradation loss must be in [0, 1)");
  IFLOW_CHECK_MSG(d.flap_hz >= 0.0, "negative flap frequency");
}

}  // namespace

void Network::record(MutationKind kind, NodeId a, NodeId b, bool relaxing) {
  ++version_;
  log_.push_back(Mutation{version_, kind, a, b, relaxing});
  if (log_.size() > kMutationLogCapacity) {
    const std::size_t drop = log_.size() - kMutationLogCapacity;
    log_base_ = log_[drop - 1].version;
    log_.erase(log_.begin(), log_.begin() + static_cast<std::ptrdiff_t>(drop));
  }
}

std::optional<std::vector<Mutation>> Network::mutations_since(
    std::uint64_t since) const {
  if (since < log_base_) return std::nullopt;
  std::vector<Mutation> out;
  for (const Mutation& m : log_) {
    if (m.version > since) out.push_back(m);
  }
  return out;
}

NodeId Network::add_node(NodeKind kind) {
  kinds_.push_back(kind);
  alive_.push_back(1);
  node_degradation_.emplace_back();
  incident_.emplace_back();
  return static_cast<NodeId>(kinds_.size() - 1);
}

void Network::add_link(NodeId a, NodeId b, double cost_per_byte,
                       double delay_ms, double bandwidth_bps) {
  IFLOW_CHECK_MSG(a < node_count() && b < node_count(), "endpoint out of range");
  IFLOW_CHECK_MSG(a != b, "self-link");
  IFLOW_CHECK_MSG(cost_per_byte > 0.0, "link cost must be positive");
  IFLOW_CHECK_MSG(delay_ms >= 0.0, "negative delay");
  IFLOW_CHECK_MSG(bandwidth_bps > 0.0, "bandwidth must be positive");
  Link l;
  l.a = a;
  l.b = b;
  l.cost_per_byte = cost_per_byte;
  l.delay_ms = delay_ms;
  l.bandwidth_bps = bandwidth_bps;
  links_.push_back(l);
  const auto idx = static_cast<std::uint32_t>(links_.size() - 1);
  incident_[a].push_back(idx);
  incident_[b].push_back(idx);
  record(MutationKind::kTopology, a, b, /*relaxing=*/true);
}

void Network::set_link_cost(NodeId a, NodeId b, double cost_per_byte) {
  IFLOW_CHECK_MSG(cost_per_byte > 0.0, "link cost must be positive");
  for (auto idx : incident(a)) {
    Link& l = links_[idx];
    if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) {
      const bool relaxing = cost_per_byte < l.cost_per_byte;
      l.cost_per_byte = cost_per_byte;
      record(MutationKind::kLinkCost, a, b, relaxing);
      return;
    }
  }
  IFLOW_CHECK_MSG(false, "no link between " << a << " and " << b);
}

void Network::set_link_loss(NodeId a, NodeId b, double loss) {
  IFLOW_CHECK_MSG(loss >= 0.0 && loss < 1.0, "loss must be in [0, 1)");
  bool found = false;
  for (auto idx : incident(a)) {
    Link& l = links_[idx];
    if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) {
      l.loss = loss;
      found = true;
    }
  }
  IFLOW_CHECK_MSG(found, "no link between " << a << " and " << b);
  record(MutationKind::kQuality, a, b, /*relaxing=*/false);
}

void Network::set_link_jitter(NodeId a, NodeId b, double jitter_ms) {
  IFLOW_CHECK_MSG(jitter_ms >= 0.0, "negative jitter");
  bool found = false;
  for (auto idx : incident(a)) {
    Link& l = links_[idx];
    if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) {
      l.jitter_ms = jitter_ms;
      found = true;
    }
  }
  IFLOW_CHECK_MSG(found, "no link between " << a << " and " << b);
  record(MutationKind::kQuality, a, b, /*relaxing=*/false);
}

void Network::degrade_link(NodeId a, NodeId b, const Degradation& d) {
  check_degradation(d);
  bool found = false;
  for (auto idx : incident(a)) {
    Link& l = links_[idx];
    if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) {
      l.degradation = d;
      found = true;
    }
  }
  IFLOW_CHECK_MSG(found, "no link between " << a << " and " << b);
  record(MutationKind::kQuality, a, b, /*relaxing=*/false);
}

void Network::degrade_node(NodeId n, const Degradation& d) {
  IFLOW_CHECK(n < node_count());
  check_degradation(d);
  node_degradation_[n] = d;
  record(MutationKind::kQuality, n, kInvalidNode, /*relaxing=*/false);
}

const Degradation& Network::node_degradation(NodeId n) const {
  IFLOW_CHECK(n < node_count());
  return node_degradation_[n];
}

void Network::fail_link(NodeId a, NodeId b) {
  bool found = false;
  bool changed = false;
  for (auto idx : incident(a)) {
    Link& l = links_[idx];
    if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) {
      found = true;
      if (l.up) {
        l.up = false;
        changed = true;
      }
    }
  }
  IFLOW_CHECK_MSG(found, "no link between " << a << " and " << b);
  IFLOW_CHECK_MSG(changed, "link " << a << "-" << b << " is already down");
  record(MutationKind::kLinkDown, a, b, /*relaxing=*/false);
}

void Network::restore_link(NodeId a, NodeId b) {
  bool found = false;
  bool changed = false;
  for (auto idx : incident(a)) {
    Link& l = links_[idx];
    if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) {
      found = true;
      if (!l.up) {
        l.up = true;
        changed = true;
      }
    }
  }
  IFLOW_CHECK_MSG(found, "no link between " << a << " and " << b);
  IFLOW_CHECK_MSG(changed, "link " << a << "-" << b << " is not down");
  record(MutationKind::kLinkUp, a, b, /*relaxing=*/true);
}

void Network::crash_node(NodeId n) {
  IFLOW_CHECK(n < node_count());
  IFLOW_CHECK_MSG(alive_[n], "node " << n << " is already crashed");
  alive_[n] = 0;
  record(MutationKind::kNodeDown, n, kInvalidNode, /*relaxing=*/false);
}

void Network::restore_node(NodeId n) {
  IFLOW_CHECK(n < node_count());
  IFLOW_CHECK_MSG(!alive_[n], "node " << n << " is not crashed");
  alive_[n] = 1;
  record(MutationKind::kNodeUp, n, kInvalidNode, /*relaxing=*/true);
}

bool Network::node_alive(NodeId n) const {
  IFLOW_CHECK(n < node_count());
  return alive_[n] != 0;
}

bool Network::link_up(std::uint32_t link_index) const {
  IFLOW_CHECK(link_index < links_.size());
  return links_[link_index].up;
}

bool Network::usable(std::uint32_t link_index) const {
  IFLOW_CHECK(link_index < links_.size());
  const Link& l = links_[link_index];
  return l.up && alive_[l.a] != 0 && alive_[l.b] != 0;
}

std::uint32_t Network::cheapest_usable_link(NodeId a, NodeId b) const {
  std::uint32_t best = kInvalidLink;
  double best_cost = std::numeric_limits<double>::infinity();
  for (auto idx : incident(a)) {
    const Link& l = links_[idx];
    const bool matches = (l.a == a && l.b == b) || (l.a == b && l.b == a);
    if (matches && usable(idx) && l.cost_per_byte < best_cost) {
      best = idx;
      best_cost = l.cost_per_byte;
    }
  }
  return best;
}

NodeKind Network::kind(NodeId n) const {
  IFLOW_CHECK(n < node_count());
  return kinds_[n];
}

const std::vector<std::uint32_t>& Network::incident(NodeId n) const {
  IFLOW_CHECK(n < node_count());
  return incident_[n];
}

bool Network::connected() const {
  const std::size_t alive_total = static_cast<std::size_t>(
      std::count(alive_.begin(), alive_.end(), char{1}));
  if (alive_total == 0) return true;
  std::vector<char> seen(node_count(), 0);
  std::queue<NodeId> frontier;
  NodeId start = kInvalidNode;
  for (NodeId n = 0; n < node_count(); ++n) {
    if (alive_[n]) {
      start = n;
      break;
    }
  }
  frontier.push(start);
  seen[start] = 1;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const NodeId n = frontier.front();
    frontier.pop();
    for (auto idx : incident_[n]) {
      if (!usable(idx)) continue;
      const Link& l = links_[idx];
      const NodeId other = (l.a == n) ? l.b : l.a;
      if (!seen[other]) {
        seen[other] = 1;
        ++reached;
        frontier.push(other);
      }
    }
  }
  return reached == alive_total;
}

}  // namespace iflow::net
