#include "net/network.h"

#include <queue>

namespace iflow::net {

NodeId Network::add_node(NodeKind kind) {
  kinds_.push_back(kind);
  incident_.emplace_back();
  return static_cast<NodeId>(kinds_.size() - 1);
}

void Network::add_link(NodeId a, NodeId b, double cost_per_byte,
                       double delay_ms, double bandwidth_bps) {
  IFLOW_CHECK_MSG(a < node_count() && b < node_count(), "endpoint out of range");
  IFLOW_CHECK_MSG(a != b, "self-link");
  IFLOW_CHECK_MSG(cost_per_byte > 0.0, "link cost must be positive");
  IFLOW_CHECK_MSG(delay_ms >= 0.0, "negative delay");
  IFLOW_CHECK_MSG(bandwidth_bps > 0.0, "bandwidth must be positive");
  links_.push_back(Link{a, b, cost_per_byte, delay_ms, bandwidth_bps});
  const auto idx = static_cast<std::uint32_t>(links_.size() - 1);
  incident_[a].push_back(idx);
  incident_[b].push_back(idx);
  ++version_;
}

void Network::set_link_cost(NodeId a, NodeId b, double cost_per_byte) {
  IFLOW_CHECK_MSG(cost_per_byte > 0.0, "link cost must be positive");
  for (auto idx : incident(a)) {
    Link& l = links_[idx];
    if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) {
      l.cost_per_byte = cost_per_byte;
      ++version_;
      return;
    }
  }
  IFLOW_CHECK_MSG(false, "no link between " << a << " and " << b);
}

NodeKind Network::kind(NodeId n) const {
  IFLOW_CHECK(n < node_count());
  return kinds_[n];
}

const std::vector<std::uint32_t>& Network::incident(NodeId n) const {
  IFLOW_CHECK(n < node_count());
  return incident_[n];
}

bool Network::connected() const {
  if (node_count() == 0) return true;
  std::vector<char> seen(node_count(), 0);
  std::queue<NodeId> frontier;
  frontier.push(0);
  seen[0] = 1;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const NodeId n = frontier.front();
    frontier.pop();
    for (auto idx : incident_[n]) {
      const Link& l = links_[idx];
      const NodeId other = (l.a == n) ? l.b : l.a;
      if (!seen[other]) {
        seen[other] = 1;
        ++reached;
        frontier.push(other);
      }
    }
  }
  return reached == node_count();
}

}  // namespace iflow::net
