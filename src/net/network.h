// Physical network model.
//
// A Network is an undirected weighted graph of processing nodes. Each link
// carries three attributes used by different layers of the system:
//   * cost_per_byte — the optimisation metric (paper §3: "link costs ...
//     represent the cost of transmitting a unit amount of data");
//   * delay_ms     — propagation delay, used by the control-plane model and
//     the discrete-event engine;
//   * bandwidth_bps — capacity, used by the engine to model serialisation.
//
// Links are mutable at runtime (set_link_cost) so the middleware layer can
// perturb the network and re-trigger optimisation (adaptivity experiments).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/check.h"

namespace iflow::net {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Undirected physical link between two nodes.
struct Link {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  double cost_per_byte = 0.0;
  double delay_ms = 0.0;
  double bandwidth_bps = 0.0;
};

/// Node classification produced by the topology generator; purely
/// informational (benches and examples use it for reporting).
enum class NodeKind : std::uint8_t { kTransit, kStub };

/// Undirected weighted graph of physical processing nodes.
class Network {
 public:
  Network() = default;

  /// Appends a node and returns its id. Ids are dense [0, node_count).
  NodeId add_node(NodeKind kind = NodeKind::kStub);

  /// Adds an undirected link. Both endpoints must exist; self-links and
  /// non-positive costs are rejected.
  void add_link(NodeId a, NodeId b, double cost_per_byte, double delay_ms,
                double bandwidth_bps);

  /// Updates the cost of the (a, b) link in place. Used by adaptivity
  /// experiments to model changing network conditions. Throws if no such
  /// link exists.
  void set_link_cost(NodeId a, NodeId b, double cost_per_byte);

  std::size_t node_count() const { return kinds_.size(); }
  std::size_t link_count() const { return links_.size(); }
  const std::vector<Link>& links() const { return links_; }
  NodeKind kind(NodeId n) const;

  /// Indices into links() of the links incident to n.
  const std::vector<std::uint32_t>& incident(NodeId n) const;

  /// True when every node can reach every other node.
  bool connected() const;

  /// Monotonically increases whenever link attributes change; routing tables
  /// record the version they were built against so staleness is detectable.
  std::uint64_t version() const { return version_; }

 private:
  std::vector<NodeKind> kinds_;
  std::vector<Link> links_;
  std::vector<std::vector<std::uint32_t>> incident_;
  std::uint64_t version_ = 0;
};

}  // namespace iflow::net
