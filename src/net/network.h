// Physical network model.
//
// A Network is an undirected weighted graph of processing nodes. Each link
// carries three attributes used by different layers of the system:
//   * cost_per_byte — the optimisation metric (paper §3: "link costs ...
//     represent the cost of transmitting a unit amount of data");
//   * delay_ms     — propagation delay, used by the control-plane model and
//     the discrete-event engine;
//   * bandwidth_bps — capacity, used by the engine to model serialisation.
//
// Links are mutable at runtime (set_link_cost) so the middleware layer can
// perturb the network and re-trigger optimisation (adaptivity experiments).
//
// Fault model: links can fail and be restored (fail_link/restore_link), and
// nodes can crash and be restored (crash_node/restore_node). A crashed node
// takes all of its incident links down implicitly: the links keep their `up`
// flag, but usable() is false while either endpoint is dead, so a restored
// node gets its surviving links back without extra bookkeeping. Every fault
// transition bumps version() so dependent tables can detect staleness.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "common/check.h"

namespace iflow::net {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr std::uint32_t kInvalidLink =
    std::numeric_limits<std::uint32_t>::max();

/// Classification of one recorded Network change, coarse enough for
/// derived structures (routing tables, hierarchies) to decide what a
/// change can possibly invalidate.
enum class MutationKind : std::uint8_t {
  kTopology,  // link added: adjacency itself changed
  kLinkCost,  // cost_per_byte of an adjacency changed
  kLinkDown,  // fail_link: the (a, b) adjacency went administratively down
  kLinkUp,    // restore_link
  kNodeDown,  // crash_node: every incident link of `a` became unusable
  kNodeUp,    // restore_node
  kQuality,   // loss / jitter only: routing metrics are unaffected
};

/// One entry of the Network's bounded mutation log.
struct Mutation {
  /// Network::version() right after this change was applied.
  std::uint64_t version = 0;
  MutationKind kind = MutationKind::kTopology;
  /// Link endpoints, or the node in `a` for node events.
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  /// True when the change can only shorten shortest paths (restores, cost
  /// decreases): already-optimal cached routes may be beatable afterwards.
  /// False means paths can only lengthen, so routes avoiding the touched
  /// element stay optimal.
  bool relaxing = false;
};

/// Continuous gray-failure state of a node or link: the element stays
/// administratively up — routing, planning costs and paths are unchanged —
/// but traffic touching it is slowed, dropped, or both. Distinct from
/// fail/crash (binary down). Journaled as kQuality mutations, so derived
/// tables' incremental sync() treats a degradation like a loss change:
/// nothing to recompute. Only the engine's reliable delivery plane and the
/// health plane's probes read it.
struct Degradation {
  /// Multiplier (>= 1) on the propagation + serialisation time of every
  /// traversal touching the element. 1 = full speed.
  double slowdown = 1.0;
  /// Extra per-traversal drop probability in [0, 1), combined
  /// multiplicatively with link loss and other degradations on the hop.
  double loss = 0.0;
  /// Flap frequency in Hz. > 0 makes the element alternate between clean
  /// and degraded in a deterministic square wave of simulation time: the
  /// degraded half applies `slowdown` and `loss`, the clean half neither.
  /// 0 = the degradation applies continuously.
  double flap_hz = 0.0;

  bool degraded() const {
    return slowdown > 1.0 || loss > 0.0 || flap_hz > 0.0;
  }
};

/// True when a degradation is in effect at simulation time `t`: always for
/// a non-flapping degradation, and during the down half of the square wave
/// for a flapping one.
inline bool degraded_at(const Degradation& d, double t) {
  if (!d.degraded()) return false;
  if (d.flap_hz <= 0.0) return true;
  return std::fmod(t * d.flap_hz, 1.0) < 0.5;
}

/// Undirected physical link between two nodes.
struct Link {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  double cost_per_byte = 0.0;
  double delay_ms = 0.0;
  double bandwidth_bps = 0.0;
  /// Per-transmission drop probability in [0, 1). The network only stores
  /// the parameter; the engine draws the actual losses from its own seeded
  /// Prng so runs stay deterministic. 0 = lossless (default).
  double loss = 0.0;
  /// Upper bound of the uniform extra delay the engine may add per
  /// traversal, on top of delay_ms. 0 = no jitter (default).
  double jitter_ms = 0.0;
  /// Administrative state: false after fail_link until restore_link. A link
  /// that is `up` may still be unusable if an endpoint node is crashed.
  bool up = true;
  /// Gray-failure state of this link (identity when healthy). Like `loss`,
  /// only the engine's delivery layer reads it.
  Degradation degradation;
};

/// Node classification produced by the topology generator; purely
/// informational (benches and examples use it for reporting).
enum class NodeKind : std::uint8_t { kTransit, kStub };

/// Undirected weighted graph of physical processing nodes.
class Network {
 public:
  Network() = default;

  /// Appends a node and returns its id. Ids are dense [0, node_count).
  NodeId add_node(NodeKind kind = NodeKind::kStub);

  /// Adds an undirected link. Both endpoints must exist; self-links and
  /// non-positive costs are rejected.
  void add_link(NodeId a, NodeId b, double cost_per_byte, double delay_ms,
                double bandwidth_bps);

  /// Updates the cost of the (a, b) link in place. Used by adaptivity
  /// experiments to model changing network conditions. Throws if no such
  /// link exists.
  void set_link_cost(NodeId a, NodeId b, double cost_per_byte);

  /// Sets the drop probability of every (a, b) link (parallel links model
  /// one lossy adjacency). Requires 0 <= loss < 1; throws if no such link
  /// exists. Loss does not affect routing or planning costs — only the
  /// engine's delivery layer reads it.
  void set_link_loss(NodeId a, NodeId b, double loss);

  /// Sets the delay-jitter bound of every (a, b) link. Requires
  /// jitter_ms >= 0; throws if no such link exists.
  void set_link_jitter(NodeId a, NodeId b, double jitter_ms);

  /// Sets the gray-failure state of every (a, b) link (parallel links model
  /// one degraded adjacency). Requires slowdown >= 1, 0 <= loss < 1 and
  /// flap_hz >= 0; throws if no such link exists. Pass a default-constructed
  /// Degradation to clear. Quality-only: routing and planning costs are
  /// unaffected, so incremental sync() stays free.
  void degrade_link(NodeId a, NodeId b, const Degradation& d);

  /// Sets the gray-failure state of a node: every traversal of an incident
  /// link (and the health plane's direct probes) sees the degradation. The
  /// node stays alive and keeps hosting — this is slow/lossy, not crashed.
  /// Same validation and journaling as degrade_link.
  void degrade_node(NodeId n, const Degradation& d);

  /// Current gray-failure state of a node (identity when healthy).
  const Degradation& node_degradation(NodeId n) const;

  /// Takes the (a, b) link down. With parallel links, all of them go down —
  /// a fault between two nodes severs the whole adjacency. Throws if no such
  /// link exists or every one of them is already down.
  void fail_link(NodeId a, NodeId b);

  /// Brings every down (a, b) link back up. Throws if no such link exists or
  /// none of them is down.
  void restore_link(NodeId a, NodeId b);

  /// Full node crash: the node stops forwarding as well as processing, so
  /// every incident link becomes unusable. Throws if already crashed.
  void crash_node(NodeId n);

  /// Brings a crashed node back. Incident links that were individually
  /// failed stay down; the rest become usable again. Throws if alive.
  void restore_node(NodeId n);

  bool node_alive(NodeId n) const;

  /// Administrative link flag only (ignores endpoint liveness).
  bool link_up(std::uint32_t link_index) const;

  /// True when the link can carry traffic: up and both endpoints alive.
  bool usable(std::uint32_t link_index) const;

  std::size_t node_count() const { return kinds_.size(); }
  std::size_t link_count() const { return links_.size(); }
  const std::vector<Link>& links() const { return links_; }
  NodeKind kind(NodeId n) const;

  /// Index of the cheapest usable (a, b) link, or kInvalidLink when the two
  /// nodes are not usably adjacent. This is the link Dijkstra relaxes, so
  /// the engine uses it to charge bytes hop by hop.
  std::uint32_t cheapest_usable_link(NodeId a, NodeId b) const;

  /// Indices into links() of the links incident to n.
  const std::vector<std::uint32_t>& incident(NodeId n) const;

  /// True when every *alive* node can reach every other alive node over
  /// usable links. Dead nodes do not count against connectivity.
  bool connected() const;

  /// Monotonically increases whenever link attributes or fault state change;
  /// routing tables record the version they were built against so staleness
  /// is detectable.
  std::uint64_t version() const { return version_; }

  /// Mutations applied after version `since`, oldest first, or nullopt when
  /// the bounded log has already discarded entries that recent (the caller
  /// must treat everything as dirty and rebuild). An empty vector means the
  /// caller is up to date.
  std::optional<std::vector<Mutation>> mutations_since(
      std::uint64_t since) const;

 private:
  void record(MutationKind kind, NodeId a, NodeId b, bool relaxing);

  std::vector<NodeKind> kinds_;
  std::vector<char> alive_;
  /// Per-node gray-failure state, parallel to kinds_.
  std::vector<Degradation> node_degradation_;
  std::vector<Link> links_;
  std::vector<std::vector<std::uint32_t>> incident_;
  std::uint64_t version_ = 0;
  /// Bounded change journal for incremental repair of derived tables.
  /// `log_base_` is the version the oldest retained entry applies on top
  /// of; a reader at or past it can replay instead of rebuilding.
  std::vector<Mutation> log_;
  std::uint64_t log_base_ = 0;
};

}  // namespace iflow::net
