#include "net/routing.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>
#include <queue>
#include <unordered_map>

namespace iflow::net {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct QueueEntry {
  double dist;
  NodeId node;
  bool operator>(const QueueEntry& o) const { return dist > o.dist; }
};

/// Single-source Dijkstra under a caller-selected link weight. Fills `dist`
/// and `parent` (predecessor on the shortest path tree), and optionally
/// accumulates a secondary additive metric along the chosen paths. Links
/// that are down — or whose endpoints are crashed — are never relaxed, so a
/// partitioned network simply leaves unreachable entries at infinity.
template <typename WeightFn>
void dijkstra(const Network& net, NodeId src, WeightFn weight,
              std::vector<double>& dist, std::vector<NodeId>& parent,
              const double* secondary_weights, std::vector<double>* secondary) {
  const std::size_t n = net.node_count();
  dist.assign(n, kInf);
  parent.assign(n, kInvalidNode);
  if (secondary != nullptr) secondary->assign(n, kInf);
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq;
  dist[src] = 0.0;
  if (secondary != nullptr) (*secondary)[src] = 0.0;
  pq.push({0.0, src});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (auto idx : net.incident(u)) {
      if (!net.usable(idx)) continue;
      const Link& l = net.links()[idx];
      const NodeId v = (l.a == u) ? l.b : l.a;
      const double nd = d + weight(l);
      if (nd < dist[v]) {
        dist[v] = nd;
        parent[v] = u;
        if (secondary != nullptr) {
          (*secondary)[v] = (*secondary)[u] + secondary_weights[idx];
        }
        pq.push({nd, v});
      }
    }
  }
}

/// Fills one source's next-hop entries from its predecessor tree. Memoized
/// descent: each node's first hop is resolved once and shared by every
/// deeper destination, O(N) total instead of the per-destination chain walk
/// (quadratic on deep paths). `out` must hold n entries.
void fill_next_hops(NodeId src, const std::vector<NodeId>& parent,
                    const std::vector<double>& dist, NodeId* out) {
  const std::size_t n = parent.size();
  std::fill(out, out + n, kInvalidNode);
  std::vector<NodeId> chain;
  for (NodeId dst = 0; dst < n; ++dst) {
    if (dst == src || !std::isfinite(dist[dst]) || out[dst] != kInvalidNode) {
      continue;
    }
    chain.clear();
    NodeId hop = dst;
    while (parent[hop] != src && out[hop] == kInvalidNode) {
      chain.push_back(hop);
      hop = parent[hop];
    }
    const NodeId first = (out[hop] != kInvalidNode) ? out[hop] : hop;
    out[hop] = first;
    for (NodeId v : chain) out[v] = first;
  }
}

/// Reconstructs src→dst from a predecessor tree (inclusive of endpoints);
/// empty when unreachable.
std::vector<NodeId> path_from_parents(NodeId src, NodeId dst,
                                      const std::vector<NodeId>& parent,
                                      const std::vector<double>& dist) {
  if (src == dst) return {src};
  if (!std::isfinite(dist[dst])) return {};
  std::vector<NodeId> path;
  for (NodeId v = dst; v != src; v = parent[v]) path.push_back(v);
  path.push_back(src);
  std::reverse(path.begin(), path.end());
  return path;
}

/// Bytes one resident sparse row occupies (three double vectors, three id
/// vectors).
std::size_t row_bytes(std::size_t n) {
  return n * (3 * sizeof(double) + 3 * sizeof(NodeId));
}

}  // namespace

/// Sparse-tier state: the bounded per-source row cache plus a snapshot of
/// the per-link delays Dijkstra's secondary accumulation reads.
struct RoutingTables::Cache {
  std::size_t max_rows = 512;
  std::vector<double> link_delay;
  std::mutex mu;
  std::unordered_map<NodeId, Row> rows;
  std::uint64_t tick = 0;
  std::size_t peak_rows = 0;
};

RoutingTables::RoutingTables() = default;
RoutingTables::~RoutingTables() = default;
RoutingTables::RoutingTables(RoutingTables&&) noexcept = default;
RoutingTables& RoutingTables::operator=(RoutingTables&&) noexcept = default;

RoutingTables RoutingTables::build(const Network& net,
                                   const RoutingOptions& opts) {
  RoutingTables rt;
  const bool use_sparse =
      opts.mode == RoutingMode::kSparse ||
      (opts.mode == RoutingMode::kAuto &&
       net.node_count() > opts.dense_node_limit);
  if (use_sparse) {
    rt.cache_ = std::make_unique<Cache>();
    rt.cache_->max_rows = std::max<std::size_t>(1, opts.max_cached_rows);
    rt.net_ = &net;
    rt.reset_sparse(net);
  } else {
    rt.rebuild_dense(net);
  }
  return rt;
}

void RoutingTables::rebuild_dense(const Network& net) {
  const std::size_t n = net.node_count();
  n_ = n;
  version_ = net.version();
  cost_.assign(n * n, kInf);
  delay_.assign(n * n, kInf);
  cost_path_delay_.assign(n * n, kInf);
  next_hop_.assign(n * n, kInvalidNode);

  std::vector<double> link_delay(net.link_count());
  for (std::size_t i = 0; i < net.link_count(); ++i) {
    link_delay[i] = net.links()[i].delay_ms;
  }

  std::vector<double> dist;
  std::vector<NodeId> parent;
  std::vector<double> along;
  for (NodeId src = 0; src < n; ++src) {
    // Cost-weighted pass: distances, first hops, and delay along the path.
    dijkstra(
        net, src, [](const Link& l) { return l.cost_per_byte; }, dist, parent,
        link_delay.data(), &along);
    for (NodeId dst = 0; dst < n; ++dst) {
      cost_[static_cast<std::size_t>(src) * n + dst] = dist[dst];
      cost_path_delay_[static_cast<std::size_t>(src) * n + dst] = along[dst];
    }
    fill_next_hops(src, parent, dist,
                   next_hop_.data() + static_cast<std::size_t>(src) * n);
    // Delay-weighted pass for the control plane.
    dijkstra(
        net, src, [](const Link& l) { return l.delay_ms; }, dist, parent,
        nullptr, nullptr);
    for (NodeId dst = 0; dst < n; ++dst) {
      delay_[static_cast<std::size_t>(src) * n + dst] = dist[dst];
    }
  }
}

void RoutingTables::reset_sparse(const Network& net) {
  n_ = net.node_count();
  version_ = net.version();
  cache_->rows.clear();
  cache_->link_delay.resize(net.link_count());
  for (std::size_t i = 0; i < net.link_count(); ++i) {
    cache_->link_delay[i] = net.links()[i].delay_ms;
  }
}

RoutingTables::Row& RoutingTables::row_locked(NodeId src) const {
  Cache& c = *cache_;
  auto it = c.rows.find(src);
  if (it == c.rows.end()) {
    // Lazily computed rows read the live network; the cached rows all hold
    // values for `version_`, so computing against a newer network state
    // would silently mix snapshots. sync() first.
    IFLOW_CHECK_MSG(
        net_->version() == version_,
        "sparse routing query against a mutated network (table at version "
            << version_ << ", network at " << net_->version()
            << "): call sync() before querying");
    Row row;
    dijkstra(
        *net_, src, [](const Link& l) { return l.cost_per_byte; }, row.cost,
        row.parent, c.link_delay.data(), &row.cost_path_delay);
    row.next_hop.assign(n_, kInvalidNode);
    fill_next_hops(src, row.parent, row.cost, row.next_hop.data());
    dijkstra(
        *net_, src, [](const Link& l) { return l.delay_ms; }, row.delay,
        row.delay_parent, nullptr, nullptr);
    it = c.rows.emplace(src, std::move(row)).first;
    if (c.rows.size() > c.max_rows) {
      // Evict the least-recently-used row (ticks are unique, so the victim
      // does not depend on map iteration order).
      auto victim = c.rows.end();
      for (auto r = c.rows.begin(); r != c.rows.end(); ++r) {
        if (r->first == src) continue;
        if (victim == c.rows.end() ||
            r->second.last_used < victim->second.last_used) {
          victim = r;
        }
      }
      c.rows.erase(victim);
    }
    c.peak_rows = std::max(c.peak_rows, c.rows.size());
  }
  it->second.last_used = ++c.tick;
  return it->second;
}

double RoutingTables::cost(NodeId a, NodeId b) const {
  if (cache_ == nullptr) return at(cost_, a, b);
  IFLOW_CHECK(a < n_ && b < n_);
  std::lock_guard<std::mutex> lock(cache_->mu);
  return row_locked(a).cost[b];
}

double RoutingTables::delay_ms(NodeId a, NodeId b) const {
  if (cache_ == nullptr) return at(delay_, a, b);
  IFLOW_CHECK(a < n_ && b < n_);
  std::lock_guard<std::mutex> lock(cache_->mu);
  return row_locked(a).delay[b];
}

double RoutingTables::data_path_delay_ms(NodeId a, NodeId b) const {
  if (cache_ == nullptr) return at(cost_path_delay_, a, b);
  IFLOW_CHECK(a < n_ && b < n_);
  std::lock_guard<std::mutex> lock(cache_->mu);
  return row_locked(a).cost_path_delay[b];
}

bool RoutingTables::reachable(NodeId a, NodeId b) const {
  return std::isfinite(cost(a, b));
}

NodeId RoutingTables::next_hop(NodeId from, NodeId to) const {
  IFLOW_CHECK(from < n_ && to < n_);
  IFLOW_CHECK_MSG(from != to, "no hop from a node to itself");
  if (cache_ == nullptr) {
    return next_hop_[static_cast<std::size_t>(from) * n_ + to];
  }
  std::lock_guard<std::mutex> lock(cache_->mu);
  return row_locked(from).next_hop[to];
}

std::vector<NodeId> RoutingTables::cost_path(NodeId a, NodeId b) const {
  IFLOW_CHECK(a < n_ && b < n_);
  if (cache_ != nullptr) {
    // One lock, one row: the predecessor chain gives the whole path without
    // per-hop row lookups.
    std::lock_guard<std::mutex> lock(cache_->mu);
    const Row& row = row_locked(a);
    return path_from_parents(a, b, row.parent, row.cost);
  }
  if (a != b && !reachable(a, b)) return {};
  std::vector<NodeId> path{a};
  while (a != b) {
    a = next_hop(a, b);
    path.push_back(a);
  }
  return path;
}

void RoutingTables::fill_costs(NodeId src, const NodeId* dst,
                               std::size_t count, double* out) const {
  IFLOW_CHECK(src < n_);
  if (cache_ == nullptr) {
    const double* row = cost_.data() + static_cast<std::size_t>(src) * n_;
    for (std::size_t i = 0; i < count; ++i) {
      IFLOW_CHECK(dst[i] < n_);
      out[i] = row[dst[i]];
    }
    return;
  }
  std::lock_guard<std::mutex> lock(cache_->mu);
  const Row& row = row_locked(src);
  for (std::size_t i = 0; i < count; ++i) {
    IFLOW_CHECK(dst[i] < n_);
    out[i] = row.cost[dst[i]];
  }
}

RoutingSyncStats RoutingTables::sync(const Network& net) {
  RoutingSyncStats st;
  if (cache_ == nullptr) {
    if (net.node_count() != n_) {
      rebuild_dense(net);
      st.full_rebuild = true;
      return st;
    }
    if (net.version() == version_) return st;
    const auto muts = net.mutations_since(version_);
    if (muts.has_value() &&
        std::all_of(muts->begin(), muts->end(), [](const Mutation& m) {
          return m.kind == MutationKind::kQuality;
        })) {
      version_ = net.version();
      st.quality_only = true;
      return st;
    }
    rebuild_dense(net);
    st.full_rebuild = true;
    return st;
  }

  IFLOW_CHECK_MSG(&net == net_,
                  "sparse routing tables are bound to the network instance "
                  "they were built from");
  std::lock_guard<std::mutex> lock(cache_->mu);
  if (net.version() == version_ && net.node_count() == n_) {
    st.rows_retained = cache_->rows.size();
    return st;
  }
  const auto muts = net.mutations_since(version_);
  if (!muts.has_value() || net.node_count() != n_) {
    // The journal no longer reaches back to our version (or nodes were
    // added): everything is potentially stale.
    reset_sparse(net);
    st.full_rebuild = true;
    return st;
  }

  // Classify the batch. `structural` events can shorten paths anywhere or
  // change the node set, so every cached row goes; the rest invalidate by
  // shortest-path-tree membership.
  bool structural = false;
  bool quality_only = true;
  std::vector<std::pair<NodeId, NodeId>> cost_tree_events;  // cost increases
  std::vector<std::pair<NodeId, NodeId>> both_tree_events;  // link failures
  std::vector<NodeId> downs;                                // node crashes
  for (const Mutation& m : *muts) {
    if (m.kind == MutationKind::kQuality) continue;
    quality_only = false;
    switch (m.kind) {
      case MutationKind::kTopology:
      case MutationKind::kLinkUp:
      case MutationKind::kNodeUp:
        structural = true;
        break;
      case MutationKind::kLinkCost:
        if (m.relaxing) {
          structural = true;
        } else {
          cost_tree_events.emplace_back(m.a, m.b);
        }
        break;
      case MutationKind::kLinkDown:
        both_tree_events.emplace_back(m.a, m.b);
        break;
      case MutationKind::kNodeDown:
        downs.push_back(m.a);
        break;
      case MutationKind::kQuality:
        break;
    }
  }
  if (quality_only) {
    version_ = net.version();
    st.quality_only = true;
    st.rows_retained = cache_->rows.size();
    return st;
  }
  if (structural) {
    reset_sparse(net);
    st.full_rebuild = true;
    return st;
  }

  const auto is_down = [&downs](NodeId v) {
    return v != kInvalidNode &&
           std::find(downs.begin(), downs.end(), v) != downs.end();
  };
  // A non-relaxing event only invalidates rows whose shortest-path trees
  // used the touched element: routes that avoided it were optimal among a
  // superset of paths and stay optimal when alternatives only got worse.
  for (auto it = cache_->rows.begin(); it != cache_->rows.end();) {
    const Row& row = it->second;
    bool drop = is_down(it->first);
    for (const auto& [a, b] : both_tree_events) {
      if (drop) break;
      drop = row.parent[a] == b || row.parent[b] == a ||
             row.delay_parent[a] == b || row.delay_parent[b] == a;
    }
    for (const auto& [a, b] : cost_tree_events) {
      if (drop) break;
      drop = row.parent[a] == b || row.parent[b] == a;
    }
    if (!drop && !downs.empty()) {
      // A crashed node that relays traffic for this source invalidates the
      // row; one that is a leaf in both trees only unreaches itself.
      for (std::size_t x = 0; x < n_ && !drop; ++x) {
        drop = is_down(row.parent[x]) || is_down(row.delay_parent[x]);
      }
    }
    if (drop) {
      it = cache_->rows.erase(it);
      ++st.rows_dropped;
      continue;
    }
    if (!downs.empty()) {
      Row& w = it->second;
      for (NodeId v : downs) {
        w.cost[v] = kInf;
        w.delay[v] = kInf;
        w.cost_path_delay[v] = kInf;
        w.next_hop[v] = kInvalidNode;
        w.parent[v] = kInvalidNode;
        w.delay_parent[v] = kInvalidNode;
      }
      ++st.rows_patched;
    } else {
      ++st.rows_retained;
    }
    ++it;
  }
  version_ = net.version();
  return st;
}

std::size_t RoutingTables::cached_rows() const {
  if (cache_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(cache_->mu);
  return cache_->rows.size();
}

std::size_t RoutingTables::memory_bytes() const {
  if (cache_ == nullptr) return dense_equivalent_bytes(n_);
  std::lock_guard<std::mutex> lock(cache_->mu);
  return cache_->rows.size() * row_bytes(n_);
}

std::size_t RoutingTables::peak_memory_bytes() const {
  if (cache_ == nullptr) return dense_equivalent_bytes(n_);
  std::lock_guard<std::mutex> lock(cache_->mu);
  return cache_->peak_rows * row_bytes(n_);
}

std::size_t RoutingTables::dense_equivalent_bytes(std::size_t n) {
  return n * n * (3 * sizeof(double) + sizeof(NodeId));
}

}  // namespace iflow::net
