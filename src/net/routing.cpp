#include "net/routing.h"

#include <cmath>
#include <limits>
#include <queue>

namespace iflow::net {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct QueueEntry {
  double dist;
  NodeId node;
  bool operator>(const QueueEntry& o) const { return dist > o.dist; }
};

/// Single-source Dijkstra under a caller-selected link weight. Fills `dist`
/// and `parent` (predecessor on the shortest path tree), and optionally
/// accumulates a secondary additive metric along the chosen paths. Links
/// that are down — or whose endpoints are crashed — are never relaxed, so a
/// partitioned network simply leaves unreachable entries at infinity.
template <typename WeightFn>
void dijkstra(const Network& net, NodeId src, WeightFn weight,
              std::vector<double>& dist, std::vector<NodeId>& parent,
              const double* secondary_weights, std::vector<double>* secondary) {
  const std::size_t n = net.node_count();
  dist.assign(n, kInf);
  parent.assign(n, kInvalidNode);
  if (secondary != nullptr) secondary->assign(n, kInf);
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq;
  dist[src] = 0.0;
  if (secondary != nullptr) (*secondary)[src] = 0.0;
  pq.push({0.0, src});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (auto idx : net.incident(u)) {
      if (!net.usable(idx)) continue;
      const Link& l = net.links()[idx];
      const NodeId v = (l.a == u) ? l.b : l.a;
      const double nd = d + weight(l);
      if (nd < dist[v]) {
        dist[v] = nd;
        parent[v] = u;
        if (secondary != nullptr) {
          (*secondary)[v] = (*secondary)[u] + secondary_weights[idx];
        }
        pq.push({nd, v});
      }
    }
  }
}

}  // namespace

RoutingTables RoutingTables::build(const Network& net) {
  RoutingTables rt;
  const std::size_t n = net.node_count();
  rt.n_ = n;
  rt.version_ = net.version();
  rt.cost_.assign(n * n, kInf);
  rt.delay_.assign(n * n, kInf);
  rt.cost_path_delay_.assign(n * n, kInf);
  rt.next_hop_.assign(n * n, kInvalidNode);

  std::vector<double> link_delay(net.link_count());
  for (std::size_t i = 0; i < net.link_count(); ++i) {
    link_delay[i] = net.links()[i].delay_ms;
  }

  std::vector<double> dist;
  std::vector<NodeId> parent;
  std::vector<double> along;
  for (NodeId src = 0; src < n; ++src) {
    // Cost-weighted pass: distances, first hops, and delay along the path.
    dijkstra(
        net, src, [](const Link& l) { return l.cost_per_byte; }, dist, parent,
        link_delay.data(), &along);
    for (NodeId dst = 0; dst < n; ++dst) {
      rt.cost_[static_cast<std::size_t>(src) * n + dst] = dist[dst];
      rt.cost_path_delay_[static_cast<std::size_t>(src) * n + dst] = along[dst];
      // Unreachable destinations keep next_hop at kInvalidNode — walking the
      // predecessor chain would spin on kInvalidNode parents.
      if (dst == src || dist[dst] == kInf) continue;
      // Walk the predecessor chain back to the node adjacent to src.
      NodeId hop = dst;
      while (parent[hop] != src) hop = parent[hop];
      rt.next_hop_[static_cast<std::size_t>(src) * n + dst] = hop;
    }
    // Delay-weighted pass for the control plane.
    dijkstra(
        net, src, [](const Link& l) { return l.delay_ms; }, dist, parent,
        nullptr, nullptr);
    for (NodeId dst = 0; dst < n; ++dst) {
      rt.delay_[static_cast<std::size_t>(src) * n + dst] = dist[dst];
    }
  }
  return rt;
}

bool RoutingTables::reachable(NodeId a, NodeId b) const {
  return std::isfinite(cost(a, b));
}

NodeId RoutingTables::next_hop(NodeId from, NodeId to) const {
  IFLOW_CHECK(from < n_ && to < n_);
  IFLOW_CHECK_MSG(from != to, "no hop from a node to itself");
  return next_hop_[static_cast<std::size_t>(from) * n_ + to];
}

std::vector<NodeId> RoutingTables::cost_path(NodeId a, NodeId b) const {
  IFLOW_CHECK(a < n_ && b < n_);
  if (a != b && !reachable(a, b)) return {};
  std::vector<NodeId> path{a};
  while (a != b) {
    a = next_hop(a, b);
    path.push_back(a);
  }
  return path;
}

}  // namespace iflow::net
