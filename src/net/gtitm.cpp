#include "net/gtitm.h"

#include <cmath>

namespace iflow::net {

namespace {

/// Connects `members` into a random spanning tree (each node links to a
/// uniformly chosen earlier node), then sprinkles extra edges; this mirrors
/// the sparse random intra-domain graphs GT-ITM produces while guaranteeing
/// connectivity.
void wire_domain(Network& net, const std::vector<NodeId>& members,
                 double extra_edge_prob, double cost_min, double cost_max,
                 const TransitStubParams& p, Prng& prng) {
  for (std::size_t i = 1; i < members.size(); ++i) {
    const NodeId prior = members[prng.index(i)];
    net.add_link(members[i], prior, prng.uniform(cost_min, cost_max),
                 prng.uniform(p.delay_min_ms, p.delay_max_ms), p.bandwidth_bps);
  }
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 2; j < members.size(); ++j) {
      if (prng.chance(extra_edge_prob)) {
        net.add_link(members[i], members[j], prng.uniform(cost_min, cost_max),
                     prng.uniform(p.delay_min_ms, p.delay_max_ms),
                     p.bandwidth_bps);
      }
    }
  }
}

}  // namespace

Network make_transit_stub(const TransitStubParams& p, Prng& prng) {
  IFLOW_CHECK(p.transit_count >= 1);
  IFLOW_CHECK(p.stub_domains_per_transit >= 1);
  IFLOW_CHECK(p.stub_domain_size >= 1);
  Network net;

  std::vector<NodeId> transit;
  transit.reserve(static_cast<std::size_t>(p.transit_count));
  for (int i = 0; i < p.transit_count; ++i) {
    transit.push_back(net.add_node(NodeKind::kTransit));
  }
  // Backbone: connectivity ring plus random chords.
  if (p.transit_count > 1) {
    for (int i = 0; i < p.transit_count; ++i) {
      const NodeId a = transit[static_cast<std::size_t>(i)];
      const NodeId b = transit[static_cast<std::size_t>((i + 1) % p.transit_count)];
      if (i + 1 == p.transit_count && p.transit_count == 2) break;  // ring of 2 = 1 edge
      net.add_link(a, b, prng.uniform(p.transit_cost_min, p.transit_cost_max),
                   prng.uniform(p.delay_min_ms, p.delay_max_ms),
                   p.bandwidth_bps);
    }
    for (int i = 0; i < p.transit_count; ++i) {
      for (int j = i + 2; j < p.transit_count; ++j) {
        if (i == 0 && j == p.transit_count - 1) continue;  // ring edge already
        if (prng.chance(p.transit_extra_edge_prob)) {
          net.add_link(transit[static_cast<std::size_t>(i)],
                       transit[static_cast<std::size_t>(j)],
                       prng.uniform(p.transit_cost_min, p.transit_cost_max),
                       prng.uniform(p.delay_min_ms, p.delay_max_ms),
                       p.bandwidth_bps);
        }
      }
    }
  }

  // Stub domains, each hung off its transit node through a gateway link.
  for (int t = 0; t < p.transit_count; ++t) {
    for (int d = 0; d < p.stub_domains_per_transit; ++d) {
      std::vector<NodeId> members;
      members.reserve(static_cast<std::size_t>(p.stub_domain_size));
      for (int s = 0; s < p.stub_domain_size; ++s) {
        members.push_back(net.add_node(NodeKind::kStub));
      }
      wire_domain(net, members, p.stub_extra_edge_prob, p.stub_cost_min,
                  p.stub_cost_max, p, prng);
      const NodeId gateway = prng.pick(members);
      net.add_link(gateway, transit[static_cast<std::size_t>(t)],
                   prng.uniform(p.gateway_cost_min, p.gateway_cost_max),
                   prng.uniform(p.delay_min_ms, p.delay_max_ms),
                   p.bandwidth_bps);
    }
  }

  IFLOW_CHECK(net.connected());
  IFLOW_CHECK(static_cast<int>(net.node_count()) == p.total_nodes());
  return net;
}

int stub_domain_count(const TransitStubParams& p) {
  return p.transit_count * p.stub_domains_per_transit;
}

std::vector<NodeId> stub_domain_members(const TransitStubParams& p,
                                        int index) {
  IFLOW_CHECK(index >= 0 && index < stub_domain_count(p));
  const NodeId first = static_cast<NodeId>(
      p.transit_count + index * p.stub_domain_size);
  std::vector<NodeId> members;
  members.reserve(static_cast<std::size_t>(p.stub_domain_size));
  for (int s = 0; s < p.stub_domain_size; ++s) {
    members.push_back(first + static_cast<NodeId>(s));
  }
  return members;
}

TransitStubParams scale_to(int target_nodes) {
  IFLOW_CHECK(target_nodes >= 8);
  TransitStubParams p;
  // Keep the paper's shape (4 stub domains of 8 per transit node => 33
  // nodes per transit node) and grow the backbone.
  const int per_transit = 1 + p.stub_domains_per_transit * p.stub_domain_size;
  p.transit_count =
      std::max(1, static_cast<int>(std::lround(static_cast<double>(target_nodes) /
                                               per_transit)));
  // Adjust stub domain size to land near the target.
  const int remaining = target_nodes - p.transit_count;
  const int domains = p.transit_count * p.stub_domains_per_transit;
  p.stub_domain_size = std::max(1, (remaining + domains / 2) / domains);
  return p;
}

}  // namespace iflow::net
