// Transit–stub topology generation in the style of GT-ITM
// (Zegura, Calvert, Bhattacharjee — "How to model an internetwork",
// INFOCOM '96), which the paper uses for all simulated networks.
//
// Structure: one transit domain of `transit_count` backbone nodes; each
// transit node anchors `stub_domains_per_transit` stub domains of
// `stub_domain_size` nodes. Stub (intranet) links are cheap, transit
// (long-haul) links expensive — reproducing the paper's cost assignment
// ("links in the stub domains had lower costs than those in the transit
// domain").
#pragma once

#include "common/prng.h"
#include "net/network.h"

namespace iflow::net {

/// Parameters of the transit–stub generator. The defaults reproduce the
/// paper's main 128-node-class configuration (1 transit domain of 4 nodes,
/// 4 stub domains of 8 nodes per transit node).
struct TransitStubParams {
  int transit_count = 4;
  int stub_domains_per_transit = 4;
  int stub_domain_size = 8;

  /// Probability of an extra (non-spanning-tree) edge inside a stub domain,
  /// per candidate pair. GT-ITM stub domains are sparse random graphs.
  double stub_extra_edge_prob = 0.15;
  /// Probability of an extra edge between transit-node pairs beyond the
  /// connectivity ring.
  double transit_extra_edge_prob = 0.3;

  /// Per-byte link cost ranges. Transit links are far more expensive than
  /// intranet links.
  double stub_cost_min = 1.0, stub_cost_max = 3.0;
  double gateway_cost_min = 4.0, gateway_cost_max = 8.0;
  double transit_cost_min = 10.0, transit_cost_max = 20.0;

  /// Propagation delay range (the Emulab prototype used 1–60 ms).
  double delay_min_ms = 1.0, delay_max_ms = 60.0;

  /// Uniform link bandwidth (Emulab prototype links).
  double bandwidth_bps = 1.0e6;

  int total_nodes() const {
    return transit_count +
           transit_count * stub_domains_per_transit * stub_domain_size;
  }
};

/// Generates a connected transit–stub network. Deterministic given the Prng
/// state.
Network make_transit_stub(const TransitStubParams& params, Prng& prng);

/// Number of stub domains the parameters produce.
int stub_domain_count(const TransitStubParams& params);

/// Node ids of stub domain `index` (row-major over (transit node, domain)).
/// The generator lays out ids deterministically — transit nodes first, then
/// each stub domain contiguously — so domain membership is recoverable from
/// the parameters alone. Scenario generators use this for geo-clustered
/// placement and region-correlated failure scripts.
std::vector<NodeId> stub_domain_members(const TransitStubParams& params,
                                        int index);

/// Picks a structure whose node count is close to `target_nodes`, scaling
/// the paper's 128-node shape; used by the Fig 9 network-size sweep
/// (128 … 1024 nodes).
TransitStubParams scale_to(int target_nodes);

}  // namespace iflow::net
