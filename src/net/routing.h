// All-pairs routing tables.
//
// The data plane routes along cost-optimal paths (minimising per-byte cost,
// the paper's optimisation metric); the control plane (deployment messages,
// advertisements) routes along delay-optimal paths. RoutingTables computes
// both with repeated Dijkstra and keeps a next-hop table for the data plane
// so the engine can charge bytes to each physical link on the route.
#pragma once

#include <vector>

#include "net/network.h"

namespace iflow::net {

/// Immutable all-pairs shortest-path snapshot of a Network. Rebuild after
/// the network changes (stale tables are detectable through version()).
class RoutingTables {
 public:
  /// Runs Dijkstra from every node under both metrics. O(N · E log N).
  /// The network may be partitioned: pairs in different components (or pairs
  /// involving a crashed node) get infinite cost/delay and no next hop.
  static RoutingTables build(const Network& net);

  /// Per-byte cost of the cost-optimal a→b path. 0 when a == b (even for a
  /// crashed node — liveness is the Network's concern, not the metric's);
  /// +inf when b is unreachable from a.
  double cost(NodeId a, NodeId b) const { return at(cost_, a, b); }

  /// One-way latency of the delay-optimal a→b path in milliseconds
  /// (+inf when unreachable).
  double delay_ms(NodeId a, NodeId b) const { return at(delay_, a, b); }

  /// Latency accumulated along the *cost-optimal* path; this is what data
  /// tuples experience in the engine (+inf when unreachable).
  double data_path_delay_ms(NodeId a, NodeId b) const {
    return at(cost_path_delay_, a, b);
  }

  /// True when a usable a→b route existed at build time (a == b included).
  bool reachable(NodeId a, NodeId b) const;

  /// Cost-optimal route from a to b, inclusive of both endpoints. Empty —
  /// never garbage — when b is unreachable from a.
  std::vector<NodeId> cost_path(NodeId a, NodeId b) const;

  /// Next node after `from` on the cost-optimal route to `to`;
  /// kInvalidNode when `to` is unreachable.
  NodeId next_hop(NodeId from, NodeId to) const;

  std::size_t node_count() const { return n_; }

  /// Network::version() at build time.
  std::uint64_t built_against() const { return version_; }

 private:
  double at(const std::vector<double>& m, NodeId a, NodeId b) const {
    IFLOW_CHECK(a < n_ && b < n_);
    return m[static_cast<std::size_t>(a) * n_ + b];
  }

  std::size_t n_ = 0;
  std::uint64_t version_ = 0;
  std::vector<double> cost_;             // cost-weighted distances
  std::vector<double> delay_;            // delay-weighted distances
  std::vector<double> cost_path_delay_;  // delay along cost-optimal paths
  std::vector<NodeId> next_hop_;         // next_hop_[a*n+b]: first hop a→b
};

}  // namespace iflow::net
