// All-pairs routing tables.
//
// The data plane routes along cost-optimal paths (minimising per-byte cost,
// the paper's optimisation metric); the control plane (deployment messages,
// advertisements) routes along delay-optimal paths.
//
// Two storage tiers behind one query interface:
//   * dense  — the classic all-pairs snapshot (repeated Dijkstra, O(N²)
//     memory). Default below RoutingOptions::dense_node_limit nodes, where
//     the matrices are small and every query is a flat array read.
//   * sparse — per-source rows computed by Dijkstra on demand and kept in a
//     bounded LRU cache, O(cached_rows · N) memory. Default at scale
//     (10k–100k-node topologies), where a dense matrix would not fit.
// Both tiers produce bitwise-identical values for identical queries (the
// same per-source Dijkstra runs either eagerly or lazily), so planner
// digests do not depend on the tier.
//
// Repair is incremental: `sync()` replays the Network's mutation log
// instead of rebuilding from scratch. Quality-only changes (loss, jitter)
// are free; in sparse mode non-relaxing events (link failures, cost
// increases, node crashes) only invalidate cached rows whose shortest-path
// trees actually used the touched element.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/network.h"

namespace iflow::net {

enum class RoutingMode : std::uint8_t {
  kAuto,   // dense up to RoutingOptions::dense_node_limit nodes, else sparse
  kDense,  // force the all-pairs snapshot
  kSparse  // force lazy per-source rows
};

struct RoutingOptions {
  RoutingMode mode = RoutingMode::kAuto;
  /// Sparse tier: per-source rows kept resident before LRU eviction.
  std::size_t max_cached_rows = 512;
  /// kAuto switches to the sparse tier above this node count. The default
  /// keeps every paper-scale topology (<= 1024 nodes) on the dense tier.
  std::size_t dense_node_limit = 2048;
};

/// What one `sync()` call did, for tests and the scale bench.
struct RoutingSyncStats {
  /// Dense in-place rebuild, or a sparse drop-everything (relaxing event,
  /// topology change, or mutation-log truncation).
  bool full_rebuild = false;
  /// Routing-neutral batch (loss/jitter only): nothing recomputed.
  bool quality_only = false;
  std::size_t rows_retained = 0;  // sparse: cached rows that stayed exact
  std::size_t rows_dropped = 0;   // sparse: cached rows invalidated
  std::size_t rows_patched = 0;   // sparse: rows fixed up in place
};

/// All-pairs shortest-path view of a Network (see file comment for the
/// dense/sparse tiers). Queries are const and thread-safe; after the
/// network mutates, call `sync()` (or rebuild) before querying again —
/// the sparse tier CHECKs against stale lazy computation.
class RoutingTables {
 public:
  RoutingTables();
  ~RoutingTables();
  RoutingTables(RoutingTables&&) noexcept;
  RoutingTables& operator=(RoutingTables&&) noexcept;

  /// Dense tier: runs Dijkstra from every node under both metrics,
  /// O(N · E log N). Sparse tier: records the topology and computes rows on
  /// first use. The network may be partitioned: pairs in different
  /// components (or pairs involving a crashed node) get infinite cost/delay
  /// and no next hop.
  static RoutingTables build(const Network& net,
                             const RoutingOptions& opts = {});

  /// Replays the network's mutation log against this table in place:
  ///   * loss/jitter-only batches just advance the recorded version;
  ///   * dense tables rebuild their matrices in place (same buffers);
  ///   * sparse tables drop only the cached rows an event can have touched:
  ///     a non-relaxing link event keeps every row whose cost- and
  ///     delay-shortest-path trees avoid that adjacency; a crashed node
  ///     that is a leaf in both trees is patched to unreachable without
  ///     recomputation. Relaxing events (restores, cost decreases) and
  ///     topology changes drop all rows — a shorter path may appear
  ///     anywhere.
  /// In sparse mode `net` must be the same instance the table was built
  /// against (the lazy tier recomputes rows from it).
  RoutingSyncStats sync(const Network& net);

  /// Per-byte cost of the cost-optimal a→b path. 0 when a == b (even for a
  /// crashed node — liveness is the Network's concern, not the metric's);
  /// +inf when b is unreachable from a.
  double cost(NodeId a, NodeId b) const;

  /// One-way latency of the delay-optimal a→b path in milliseconds
  /// (+inf when unreachable).
  double delay_ms(NodeId a, NodeId b) const;

  /// Latency accumulated along the *cost-optimal* path; this is what data
  /// tuples experience in the engine (+inf when unreachable).
  double data_path_delay_ms(NodeId a, NodeId b) const;

  /// True when a usable a→b route exists (a == b included).
  bool reachable(NodeId a, NodeId b) const;

  /// Cost-optimal route from a to b, inclusive of both endpoints. Empty —
  /// never garbage — when b is unreachable from a.
  std::vector<NodeId> cost_path(NodeId a, NodeId b) const;

  /// Next node after `from` on the cost-optimal route to `to`;
  /// kInvalidNode when `to` is unreachable.
  NodeId next_hop(NodeId from, NodeId to) const;

  /// Bulk row read: out[i] = cost(src, dst[i]). On the sparse tier this
  /// pins the source row once instead of taking the cache lock per lookup —
  /// the planner materializes its matrices through this.
  void fill_costs(NodeId src, const NodeId* dst, std::size_t count,
                  double* out) const;

  std::size_t node_count() const { return n_; }

  /// Network::version() at build/sync time.
  std::uint64_t built_against() const { return version_; }

  /// True when this table uses the lazy per-source tier.
  bool sparse() const { return cache_ != nullptr; }

  /// Sparse tier: rows currently resident (0 on the dense tier).
  std::size_t cached_rows() const;

  /// Current table footprint in bytes (matrices, or resident rows).
  std::size_t memory_bytes() const;

  /// High-water footprint since build (equals memory_bytes() when dense).
  std::size_t peak_memory_bytes() const;

  /// Footprint a dense all-pairs snapshot of `n` nodes would need — the
  /// denominator of the scale bench's memory-ratio criterion.
  static std::size_t dense_equivalent_bytes(std::size_t n);

 private:
  /// One lazily computed source row: both metrics plus the predecessor
  /// trees `sync()` needs for invalidation tests.
  struct Row {
    std::vector<double> cost;             // cost-weighted distances
    std::vector<double> delay;            // delay-weighted distances
    std::vector<double> cost_path_delay;  // delay along cost-optimal paths
    std::vector<NodeId> next_hop;         // first hop on cost-optimal path
    std::vector<NodeId> parent;           // cost-tree predecessor
    std::vector<NodeId> delay_parent;     // delay-tree predecessor
    std::uint64_t last_used = 0;          // LRU tick
  };
  struct Cache;  // defined in routing.cpp; holds the mutex + row map

  void rebuild_dense(const Network& net);
  void reset_sparse(const Network& net);
  /// Locates or computes the row for `src`; caller holds the cache mutex.
  Row& row_locked(NodeId src) const;

  double at(const std::vector<double>& m, NodeId a, NodeId b) const {
    IFLOW_CHECK(a < n_ && b < n_);
    return m[static_cast<std::size_t>(a) * n_ + b];
  }

  std::size_t n_ = 0;
  std::uint64_t version_ = 0;

  // Dense tier storage (empty in sparse mode).
  std::vector<double> cost_;             // cost-weighted distances
  std::vector<double> delay_;            // delay-weighted distances
  std::vector<double> cost_path_delay_;  // delay along cost-optimal paths
  std::vector<NodeId> next_hop_;         // next_hop_[a*n+b]: first hop a→b

  // Sparse tier (null in dense mode). The network pointer is non-owning and
  // must outlive the table; lazy rows are computed from it.
  const Network* net_ = nullptr;
  std::unique_ptr<Cache> cache_;
};

}  // namespace iflow::net
