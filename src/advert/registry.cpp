#include "advert/registry.h"

#include <algorithm>
#include <cmath>

namespace iflow::advert {

namespace {

constexpr double kFilterTolerance = 1e-9;

bool nearly_equal(double a, double b) {
  return std::abs(a - b) <= kFilterTolerance * (1.0 + std::abs(a));
}

}  // namespace

void Registry::advertise(DerivedStream ds) {
  IFLOW_CHECK(!ds.streams.empty());
  IFLOW_CHECK(ds.filters.size() == ds.streams.size());
  IFLOW_CHECK(std::is_sorted(ds.streams.begin(), ds.streams.end()));
  IFLOW_CHECK(ds.location != net::kInvalidNode);
  for (double f : ds.filters) IFLOW_CHECK(f > 0.0 && f <= 1.0);
  for (const DerivedStream& existing : streams_) {
    if (existing.origin == ds.origin && existing.location == ds.location &&
        existing.streams == ds.streams &&
        std::equal(existing.filters.begin(), existing.filters.end(),
                   ds.filters.begin(), nearly_equal)) {
      return;
    }
  }
  streams_.push_back(std::move(ds));
}

std::size_t Registry::remove_located(
    const std::function<bool(net::NodeId)>& where) {
  IFLOW_CHECK(where != nullptr);
  const std::size_t before = streams_.size();
  streams_.erase(std::remove_if(streams_.begin(), streams_.end(),
                                [&](const DerivedStream& ds) {
                                  return where(ds.location);
                                }),
                 streams_.end());
  return before - streams_.size();
}

std::size_t Registry::remove_origin(query::QueryId q) {
  const std::size_t before = streams_.size();
  streams_.erase(
      std::remove_if(streams_.begin(), streams_.end(),
                     [&](const DerivedStream& ds) { return ds.origin == q; }),
      streams_.end());
  return before - streams_.size();
}

std::vector<ReuseMatch> Registry::reusable(
    const query::Query& q,
    const std::function<bool(net::NodeId)>& in_scope) const {
  std::vector<query::StreamId> wanted = q.sources;
  std::sort(wanted.begin(), wanted.end());
  std::vector<ReuseMatch> result;
  for (const DerivedStream& ds : streams_) {
    if (!std::includes(wanted.begin(), wanted.end(), ds.streams.begin(),
                       ds.streams.end())) {
      continue;
    }
    if (in_scope && !in_scope(ds.location)) continue;
    // Usable iff the advertisement's filters are weaker or equal on every
    // stream; the residual is what still has to be applied.
    double residual = 1.0;
    bool usable = true;
    for (std::size_t i = 0; i < ds.streams.size(); ++i) {
      const double advertised = ds.filters[i];
      const double needed = q.filter_on(ds.streams[i]);
      if (needed > advertised + kFilterTolerance) {
        usable = false;  // advertisement dropped tuples the query needs
        break;
      }
      if (!nearly_equal(advertised, needed)) residual *= needed / advertised;
    }
    if (!usable) continue;
    // A single unfiltered stream is just its base stream.
    if (ds.streams.size() < 2 && nearly_equal(residual, 1.0) &&
        nearly_equal(ds.filters.front(), 1.0)) {
      continue;
    }
    result.push_back(ReuseMatch{&ds, residual});
  }
  return result;
}

void advertise_deployment(Registry& registry, const query::Deployment& d,
                          const query::RateModel& rates) {
  auto make = [&](query::Mask m, net::NodeId location, double bytes,
                  double tuples) {
    DerivedStream ds;
    for (int i = 0; i < rates.k(); ++i) {
      if (m >> i & 1) {
        ds.streams.push_back(rates.stream(i));
        ds.filters.push_back(rates.query().filter(i));
      }
    }
    // Sort streams, keeping filters parallel.
    std::vector<std::size_t> order(ds.streams.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return ds.streams[a] < ds.streams[b];
    });
    DerivedStream sorted;
    for (std::size_t i : order) {
      sorted.streams.push_back(ds.streams[i]);
      sorted.filters.push_back(ds.filters[i]);
    }
    sorted.location = location;
    sorted.bytes_rate = bytes;
    sorted.tuple_rate = tuples;
    sorted.origin = d.query;
    registry.advertise(std::move(sorted));
  };

  for (const query::DeployedOp& op : d.ops) {
    make(op.mask, op.node, op.out_bytes_rate, op.out_tuple_rate);
  }
  // The sink itself is a derived source for the whole query result.
  query::Mask all = 0;
  for (const query::LeafUnit& u : d.units) all |= u.mask;
  make(all, d.sink, d.root_bytes_rate(),
       d.ops.empty() ? d.units.front().tuple_rate
                     : d.ops.back().out_tuple_rate);
}

}  // namespace iflow::advert
