// Stream advertisements (paper §2.1.2) with containment-based reuse
// (paper §5, future work).
//
// Every deployed operator (and every sink) is a new *derived* stream source
// for the sub-query it computes. Advertisements are one-time messages
// aggregated up the coordinator hierarchy so that each coordinator knows all
// base and derived streams available in its underlying cluster; this is what
// enables operator reuse during planning. We model the aggregated state as a
// single registry queried with a scope predicate (the set of physical nodes
// under the asking coordinator).
//
// Identity and containment: a derived stream is the join of a set of base
// streams, each filtered by the originating query's selection predicates
// (recorded as per-stream selectivity factors). A new query can consume it
//   * exactly, when its filters match the advertisement's; or
//   * by containment, when its filters are strictly STRONGER — the derived
//     stream is a superset of what the query needs, and a residual filter
//     applied at the provider trims it down.
// A derived stream filtered more strongly than the query needs is unusable
// (tuples are missing) and is never returned.
#pragma once

#include <functional>
#include <vector>

#include "query/plan.h"
#include "query/query.h"

namespace iflow::advert {

/// A derived stream: the output of a deployed operator, identified by the
/// set of base catalog streams it joins and the filter factors applied to
/// them. Identity by (streams, filters) is sound because join selectivities
/// are global catalog properties.
struct DerivedStream {
  std::vector<query::StreamId> streams;  // sorted, >= 1 entries
  /// Filter selectivity already applied per stream (parallel to streams;
  /// 1.0 = unfiltered).
  std::vector<double> filters;
  net::NodeId location = net::kInvalidNode;
  double bytes_rate = 0.0;  // as produced (with `filters` applied)
  double tuple_rate = 0.0;
  query::QueryId origin = 0;
};

/// A reuse opportunity resolved against a specific query's filters.
struct ReuseMatch {
  const DerivedStream* stream = nullptr;
  /// Residual filter factor (product over streams of query_filter /
  /// advertised_filter); 1.0 = exact match, < 1.0 = containment reuse with
  /// a residual selection applied at the provider.
  double residual_filter = 1.0;
};

/// Registry of advertised derived streams. Base streams are advertised via
/// the Catalog itself (their source nodes are public knowledge).
class Registry {
 public:
  /// Records a new derived stream. Duplicate (origin, streams, filters,
  /// location) entries are ignored — re-advertising an identical operator
  /// adds nothing. Identity includes the originating query so that two
  /// queries deploying identical operators each keep their own entry and
  /// `remove_origin` can retract exactly one query's advertisements (the
  /// warm-registry maintenance the churn plane relies on).
  void advertise(DerivedStream ds);

  /// Derived streams consumable by query `q` (exactly or by containment)
  /// that join a non-empty subset of its sources and whose provider
  /// satisfies `in_scope` (null = anywhere). Single-stream deriveds are
  /// returned only when they carry a filter (an unfiltered single stream is
  /// just the base stream).
  std::vector<ReuseMatch> reusable(
      const query::Query& q,
      const std::function<bool(net::NodeId)>& in_scope) const;

  /// Evicts advertisements whose provider matches the predicate (e.g.
  /// operators on a failed node). Returns how many were removed.
  std::size_t remove_located(const std::function<bool(net::NodeId)>& where);

  /// Retracts every advertisement originating from query `q` (undeploy,
  /// suspend, or pre-migration retraction). Returns how many were removed.
  /// Together with `advertise` this keeps a long-lived registry warm across
  /// churn without ever rebuilding it from the full active set.
  std::size_t remove_origin(query::QueryId q);

  /// Read-only view of every advertisement (diagnostics and the debug
  /// warm-vs-rebuilt consistency check).
  const std::vector<DerivedStream>& entries() const { return streams_; }

  std::size_t size() const { return streams_.size(); }
  void clear() { streams_.clear(); }

 private:
  std::vector<DerivedStream> streams_;
};

/// Advertises every operator of a freshly deployed query (and the sink
/// stream) as derived streams, translating query-local masks to catalog
/// stream ids and recording the query's filter factors.
void advertise_deployment(Registry& registry, const query::Deployment& d,
                          const query::RateModel& rates);

}  // namespace iflow::advert
