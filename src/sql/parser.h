// SQL front-end for continuous select-project-join queries.
//
// Parses the dialect the paper writes its examples in (§1.1):
//
//   SELECT FLIGHTS.STATUS, WEATHER.FORECAST, CHECK-INS.STATUS
//   FROM FLIGHTS, WEATHER, CHECK-INS
//   WHERE FLIGHTS.DEPARTING = 'ATLANTA'
//     AND FLIGHTS.DESTN = WEATHER.CITY
//     AND FLIGHTS.NUM = CHECK-INS.FLNUM
//     AND FLIGHTS.DP-TIME - CURRENT_TIME < '12:00:00'
//
// Supported grammar (keywords case-insensitive; identifiers may contain
// hyphens, as in CHECK-INS):
//
//   query       := SELECT select_list FROM stream (',' stream)*
//                  [WHERE condition (AND condition)*]
//                  [GROUP BY column (',' column)*]
//   select_list := '*' | select_item (',' select_item)*
//   select_item := column | FN '(' ('*' | column) ')'
//   FN          := COUNT | SUM | AVG | MIN | MAX
//   column      := stream '.' ident
//   condition   := column '=' column          -- equi-join (two streams)
//                | column expr_tail cmp value -- selection on one stream
//   cmp         := '=' | '<' | '>' | '<=' | '>=' | '<>'
//
// Selections may carry arithmetic tails (e.g. "- CURRENT_TIME") which are
// kept as text; their selectivity is estimated by the binder.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace iflow::sql {

/// Parse or bind failure, with a human-readable position.
class SqlError : public std::runtime_error {
 public:
  explicit SqlError(const std::string& what) : std::runtime_error(what) {}
};

struct ColumnRef {
  std::string stream;
  std::string column;
};

/// Equi-join between columns of two different streams.
struct JoinPredicate {
  ColumnRef left;
  ColumnRef right;
};

/// Selection on a single stream; `expression` preserves the raw predicate
/// text for display and selectivity estimation.
struct FilterPredicate {
  ColumnRef column;
  std::string op;     // =, <, >, <=, >=, <>
  std::string value;  // literal (quotes stripped) or identifier expression
  std::string expression;
};

/// Aggregate function call in the SELECT list, e.g. COUNT(*) or
/// AVG(FLIGHTS.DELAY).
struct AggregateCall {
  std::string fn;    // upper-cased: COUNT, SUM, AVG, MIN, MAX
  bool star = false; // COUNT(*)
  ColumnRef column;  // when !star
};

/// Abstract syntax of one parsed continuous query.
struct ParsedQuery {
  bool select_all = false;
  std::vector<ColumnRef> select;
  std::vector<AggregateCall> aggregates;
  std::vector<std::string> streams;
  std::vector<JoinPredicate> joins;
  std::vector<FilterPredicate> filters;
  std::vector<ColumnRef> group_by;
};

/// Parses one query; throws SqlError on malformed input.
ParsedQuery parse(const std::string& text);

/// Parses a UNION ALL chain (the paper's other future-work item):
///   SELECT ... FROM ... [WHERE ...] UNION ALL SELECT ... [UNION ALL ...]
/// Each branch is an independent SPJ block; all branches deliver to the
/// same sink, where their results interleave. Returns one entry per branch
/// (a single entry when there is no UNION). UNION without ALL (duplicate
/// elimination) is not supported.
std::vector<ParsedQuery> parse_union(const std::string& text);

}  // namespace iflow::sql
