// Binds parsed SQL to the catalog, producing an optimizable query::Query.
//
// Binding performs:
//   * stream-name resolution against the Catalog (errors name the stream);
//   * column validation, for streams with declared schemas;
//   * join-graph checks (every equi-join references two FROM streams; a
//     warning flag is raised when the join graph leaves the query's streams
//     disconnected, i.e. a cross product);
//   * selection-selectivity estimation, combining multiple predicates on
//     the same stream multiplicatively. Estimates come from a caller
//     supplied estimator or from textbook defaults ('=' 0.1, range 0.3,
//     '<>' 0.9);
//   * a projection-factor estimate from the SELECT list when schemas are
//     declared (selected columns / total columns, per joined stream).
#pragma once

#include <functional>

#include "query/catalog.h"
#include "query/query.h"
#include "sql/parser.h"

namespace iflow::sql {

/// Selectivity estimator for one selection predicate on one stream. Return
/// a value in (0, 1].
using FilterEstimator =
    std::function<double(query::StreamId, const FilterPredicate&)>;

/// Default textbook estimates by comparator.
double default_filter_estimate(query::StreamId stream,
                               const FilterPredicate& predicate);

/// Estimated number of distinct values of one GROUP BY column; group counts
/// multiply across columns.
using GroupEstimator =
    std::function<double(query::StreamId, const std::string& column)>;

/// Default: 10 distinct values per grouping column.
double default_group_estimate(query::StreamId stream,
                              const std::string& column);

struct BoundQuery {
  query::Query query;
  /// Fraction of the joined width the SELECT list retains (1.0 when
  /// schemas are undeclared or SELECT *). Pass to RateModel /
  /// OptimizerEnv::projection_factor.
  double projection_factor = 1.0;
  /// True when the equi-join predicates leave the FROM streams
  /// disconnected (the query contains a cross product).
  bool has_cross_product = false;
  /// Human-readable filter predicates, parallel to query.sources (empty
  /// string = unfiltered).
  std::vector<std::string> filter_text;
};

/// Binds `parsed` against the catalog. `sink` is where results are
/// delivered (queries are registered at their sink, §2.3). Throws SqlError
/// on unknown streams/columns.
BoundQuery bind(const ParsedQuery& parsed, const query::Catalog& catalog,
                query::QueryId id, net::NodeId sink,
                const FilterEstimator& estimator = default_filter_estimate,
                const GroupEstimator& groups = default_group_estimate);

/// Convenience: parse + bind.
BoundQuery compile(const std::string& text, const query::Catalog& catalog,
                   query::QueryId id, net::NodeId sink,
                   const FilterEstimator& estimator = default_filter_estimate,
                   const GroupEstimator& groups = default_group_estimate);

/// Parses + binds a UNION ALL chain: every branch becomes an independently
/// optimizable query delivering to the same sink (their results interleave
/// there). Branch queries get ids first_id, first_id+1, ...
std::vector<BoundQuery> compile_union(
    const std::string& text, const query::Catalog& catalog,
    query::QueryId first_id, net::NodeId sink,
    const FilterEstimator& estimator = default_filter_estimate,
    const GroupEstimator& groups = default_group_estimate);

}  // namespace iflow::sql
