#include "sql/binder.h"

#include <algorithm>
#include <map>
#include <set>

namespace iflow::sql {

namespace {

query::StreamId resolve_stream(const query::Catalog& catalog,
                               const std::string& name) {
  const query::StreamId id = catalog.find(name);
  if (id == query::kInvalidStream) {
    throw SqlError("SQL bind error: unknown stream '" + name + "'");
  }
  return id;
}

void check_column(const query::Catalog& catalog, const ColumnRef& ref) {
  const query::StreamId id = resolve_stream(catalog, ref.stream);
  const auto& columns = catalog.stream(id).columns;
  if (columns.empty()) return;  // schema not declared: accept anything
  if (std::find(columns.begin(), columns.end(), ref.column) == columns.end()) {
    throw SqlError("SQL bind error: stream '" + ref.stream +
                   "' has no column '" + ref.column + "'");
  }
}

}  // namespace

double default_filter_estimate(query::StreamId /*stream*/,
                               const FilterPredicate& predicate) {
  if (predicate.op == "=") return 0.1;
  if (predicate.op == "<>") return 0.9;
  return 0.3;  // range predicates
}

double default_group_estimate(query::StreamId /*stream*/,
                              const std::string& /*column*/) {
  return 10.0;
}

BoundQuery bind(const ParsedQuery& parsed, const query::Catalog& catalog,
                query::QueryId id, net::NodeId sink,
                const FilterEstimator& estimator,
                const GroupEstimator& groups) {
  if (parsed.streams.empty()) {
    throw SqlError("SQL bind error: empty FROM clause");
  }
  BoundQuery out;
  out.query.id = id;
  out.query.sink = sink;

  // Resolve FROM streams (rejecting duplicates) and remember their local
  // order; query.sources is kept sorted by catalog id as the optimizer
  // expects.
  std::map<query::StreamId, std::string> streams;
  for (const std::string& name : parsed.streams) {
    const query::StreamId sid = resolve_stream(catalog, name);
    if (!streams.emplace(sid, name).second) {
      throw SqlError("SQL bind error: stream '" + name +
                     "' listed twice in FROM");
    }
  }
  for (const auto& [sid, name] : streams) {
    (void)name;
    out.query.sources.push_back(sid);
  }

  // Validate column references.
  for (const ColumnRef& ref : parsed.select) check_column(catalog, ref);
  for (const AggregateCall& a : parsed.aggregates) {
    if (!a.star) check_column(catalog, a.column);
  }
  for (const ColumnRef& ref : parsed.group_by) check_column(catalog, ref);
  for (const JoinPredicate& j : parsed.joins) {
    check_column(catalog, j.left);
    check_column(catalog, j.right);
  }
  for (const FilterPredicate& f : parsed.filters) check_column(catalog, f.column);

  // Join-graph connectivity (union-find over the FROM streams).
  std::map<query::StreamId, query::StreamId> parent;
  for (auto s : out.query.sources) parent[s] = s;
  auto find = [&parent](query::StreamId s) {
    while (parent[s] != s) s = parent[s] = parent[parent[s]];
    return s;
  };
  for (const JoinPredicate& j : parsed.joins) {
    const query::StreamId a = resolve_stream(catalog, j.left.stream);
    const query::StreamId b = resolve_stream(catalog, j.right.stream);
    parent[find(a)] = find(b);
  }
  std::set<query::StreamId> roots;
  for (auto s : out.query.sources) roots.insert(find(s));
  out.has_cross_product = roots.size() > 1;

  // Selection selectivities, combined per stream.
  out.query.filter_selectivity.assign(out.query.sources.size(), 1.0);
  out.filter_text.assign(out.query.sources.size(), "");
  for (const FilterPredicate& f : parsed.filters) {
    const query::StreamId sid = resolve_stream(catalog, f.column.stream);
    const double sel = estimator(sid, f);
    if (!(sel > 0.0 && sel <= 1.0)) {
      throw SqlError("SQL bind error: estimator returned selectivity " +
                     std::to_string(sel) + " for '" + f.expression + "'");
    }
    const auto it = std::find(out.query.sources.begin(),
                              out.query.sources.end(), sid);
    const auto i = static_cast<std::size_t>(it - out.query.sources.begin());
    out.query.filter_selectivity[i] *= sel;
    auto& text = out.filter_text[i];
    if (!text.empty()) text += " AND ";
    text += f.expression;
  }

  // Aggregation.
  if (parsed.aggregates.size() > 1) {
    throw SqlError("SQL bind error: at most one aggregate per query");
  }
  if (!parsed.group_by.empty() && parsed.aggregates.empty()) {
    throw SqlError("SQL bind error: GROUP BY requires an aggregate");
  }
  if (!parsed.aggregates.empty()) {
    const AggregateCall& call = parsed.aggregates.front();
    query::Aggregation agg;
    if (call.fn == "COUNT") agg.fn = query::AggregateFn::kCount;
    else if (call.fn == "SUM") agg.fn = query::AggregateFn::kSum;
    else if (call.fn == "AVG") agg.fn = query::AggregateFn::kAvg;
    else if (call.fn == "MIN") agg.fn = query::AggregateFn::kMin;
    else agg.fn = query::AggregateFn::kMax;
    agg.groups = 1.0;
    for (const ColumnRef& ref : parsed.group_by) {
      agg.groups *= groups(resolve_stream(catalog, ref.stream), ref.column);
    }
    if (!(agg.groups >= 1.0)) {
      throw SqlError("SQL bind error: group estimator must return >= 1");
    }
    out.query.aggregate = agg;
  }

  // Projection factor from the SELECT list, when schemas allow it.
  if (!parsed.select_all && !parsed.select.empty()) {
    std::size_t total = 0;
    bool all_declared = true;
    for (auto s : out.query.sources) {
      const auto& cols = catalog.stream(s).columns;
      if (cols.empty()) {
        all_declared = false;
        break;
      }
      total += cols.size();
    }
    if (all_declared && total > 0) {
      // Distinct selected columns.
      std::set<std::pair<std::string, std::string>> selected;
      for (const ColumnRef& ref : parsed.select) {
        selected.emplace(ref.stream, ref.column);
      }
      out.projection_factor =
          std::min(1.0, static_cast<double>(selected.size()) /
                            static_cast<double>(total));
    }
  }
  return out;
}

BoundQuery compile(const std::string& text, const query::Catalog& catalog,
                   query::QueryId id, net::NodeId sink,
                   const FilterEstimator& estimator,
                   const GroupEstimator& groups) {
  // Qualified: std::bind is otherwise found through ADL on std::function.
  return ::iflow::sql::bind(parse(text), catalog, id, sink, estimator,
                            groups);
}

std::vector<BoundQuery> compile_union(const std::string& text,
                                      const query::Catalog& catalog,
                                      query::QueryId first_id,
                                      net::NodeId sink,
                                      const FilterEstimator& estimator,
                                      const GroupEstimator& groups) {
  std::vector<BoundQuery> out;
  for (const ParsedQuery& branch : parse_union(text)) {
    out.push_back(::iflow::sql::bind(branch, catalog, first_id, sink,
                                     estimator, groups));
    ++first_id;
  }
  return out;
}

}  // namespace iflow::sql
