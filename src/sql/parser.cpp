#include "sql/parser.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace iflow::sql {

namespace {

enum class TokenKind { kIdent, kNumber, kString, kSymbol, kEnd };

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  std::size_t pos = 0;
};

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(&text) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

  [[noreturn]] void fail(const std::string& message) const {
    std::ostringstream os;
    os << "SQL parse error at offset " << current_.pos << " (near '"
       << (current_.kind == TokenKind::kEnd ? "<end>" : current_.text)
       << "'): " << message;
    throw SqlError(os.str());
  }

 private:
  void advance() {
    while (pos_ < text_->size() &&
           std::isspace(static_cast<unsigned char>((*text_)[pos_]))) {
      ++pos_;
    }
    current_.pos = pos_;
    if (pos_ >= text_->size()) {
      current_ = Token{TokenKind::kEnd, "", pos_};
      return;
    }
    const char c = (*text_)[pos_];
    if (ident_start(c)) {
      std::size_t end = pos_;
      while (end < text_->size() && ident_char((*text_)[end])) ++end;
      // A trailing hyphen belongs to arithmetic, not the identifier.
      while (end > pos_ + 1 && (*text_)[end - 1] == '-') --end;
      current_ = Token{TokenKind::kIdent, text_->substr(pos_, end - pos_), pos_};
      pos_ = end;
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t end = pos_;
      while (end < text_->size() &&
             (std::isdigit(static_cast<unsigned char>((*text_)[end])) ||
              (*text_)[end] == '.' || (*text_)[end] == ':')) {
        ++end;
      }
      current_ = Token{TokenKind::kNumber, text_->substr(pos_, end - pos_), pos_};
      pos_ = end;
      return;
    }
    if (c == '\'') {
      std::size_t end = text_->find('\'', pos_ + 1);
      if (end == std::string::npos) {
        current_.pos = pos_;
        throw SqlError("SQL parse error: unterminated string literal at offset " +
                       std::to_string(pos_));
      }
      current_ =
          Token{TokenKind::kString, text_->substr(pos_ + 1, end - pos_ - 1), pos_};
      pos_ = end + 1;
      return;
    }
    // Multi-character comparators.
    for (const char* sym : {"<=", ">=", "<>"}) {
      if (text_->compare(pos_, 2, sym) == 0) {
        current_ = Token{TokenKind::kSymbol, sym, pos_};
        pos_ += 2;
        return;
      }
    }
    current_ = Token{TokenKind::kSymbol, std::string(1, c), pos_};
    ++pos_;
  }

  const std::string* text_;  // pointer so Lexer stays copy-assignable
  std::size_t pos_ = 0;
  Token current_;
};

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

bool is_keyword(const Token& t, const char* kw) {
  return t.kind == TokenKind::kIdent && upper(t.text) == kw;
}

bool is_symbol(const Token& t, const char* sym) {
  return t.kind == TokenKind::kSymbol && t.text == sym;
}

bool is_comparator(const Token& t) {
  return t.kind == TokenKind::kSymbol &&
         (t.text == "=" || t.text == "<" || t.text == ">" || t.text == "<=" ||
          t.text == ">=" || t.text == "<>");
}

class Parser {
 public:
  explicit Parser(const std::string& text) : lexer_(text) {}

  ParsedQuery run() {
    expect_keyword("SELECT");
    parse_select_list();
    expect_keyword("FROM");
    parse_stream_list();
    if (is_keyword(lexer_.peek(), "WHERE")) {
      lexer_.take();
      parse_condition();
      while (is_keyword(lexer_.peek(), "AND")) {
        lexer_.take();
        parse_condition();
      }
    }
    if (is_keyword(lexer_.peek(), "GROUP")) {
      lexer_.take();
      expect_keyword("BY");
      out_.group_by.push_back(parse_column());
      while (is_symbol(lexer_.peek(), ",")) {
        lexer_.take();
        out_.group_by.push_back(parse_column());
      }
    }
    if (lexer_.peek().kind != TokenKind::kEnd && !is_symbol(lexer_.peek(), ";")) {
      lexer_.fail("unexpected trailing input");
    }
    return std::move(out_);
  }

 private:
  void expect_keyword(const char* kw) {
    if (!is_keyword(lexer_.peek(), kw)) lexer_.fail(std::string("expected ") + kw);
    lexer_.take();
  }

  std::string expect_ident(const char* what) {
    if (lexer_.peek().kind != TokenKind::kIdent) {
      lexer_.fail(std::string("expected ") + what);
    }
    return lexer_.take().text;
  }

  ColumnRef parse_column() {
    ColumnRef ref;
    ref.stream = expect_ident("stream name");
    if (!is_symbol(lexer_.peek(), ".")) lexer_.fail("expected '.' after stream");
    lexer_.take();
    ref.column = expect_ident("column name");
    return ref;
  }

  bool is_aggregate_fn(const Token& t) const {
    if (t.kind != TokenKind::kIdent) return false;
    const std::string u = upper(t.text);
    return u == "COUNT" || u == "SUM" || u == "AVG" || u == "MIN" ||
           u == "MAX";
  }

  void parse_select_item() {
    if (is_aggregate_fn(lexer_.peek())) {
      // Look ahead for '(' — an identifier named e.g. MIN could also be a
      // stream; aggregates are unambiguous thanks to the parenthesis.
      Lexer saved = lexer_;
      AggregateCall call;
      call.fn = upper(lexer_.take().text);
      if (is_symbol(lexer_.peek(), "(")) {
        lexer_.take();
        if (is_symbol(lexer_.peek(), "*")) {
          lexer_.take();
          call.star = true;
        } else {
          call.column = parse_column();
        }
        if (!is_symbol(lexer_.peek(), ")")) lexer_.fail("expected ')'");
        lexer_.take();
        out_.aggregates.push_back(std::move(call));
        return;
      }
      lexer_ = saved;
    }
    out_.select.push_back(parse_column());
  }

  void parse_select_list() {
    if (is_symbol(lexer_.peek(), "*")) {
      lexer_.take();
      out_.select_all = true;
      return;
    }
    parse_select_item();
    while (is_symbol(lexer_.peek(), ",")) {
      lexer_.take();
      parse_select_item();
    }
  }

  void parse_stream_list() {
    out_.streams.push_back(expect_ident("stream name"));
    while (is_symbol(lexer_.peek(), ",")) {
      lexer_.take();
      out_.streams.push_back(expect_ident("stream name"));
    }
  }

  bool is_from_stream(const std::string& name) const {
    return std::find(out_.streams.begin(), out_.streams.end(), name) !=
           out_.streams.end();
  }

  void parse_condition() {
    const ColumnRef left = parse_column();
    if (!is_from_stream(left.stream)) {
      lexer_.fail("'" + left.stream + "' is not listed in FROM");
    }
    // Equi-join: "= other_stream.column" where other_stream is in FROM and
    // differs from the left stream. Anything else is a selection.
    if (is_symbol(lexer_.peek(), "=")) {
      Lexer saved = lexer_;
      lexer_.take();
      if (lexer_.peek().kind == TokenKind::kIdent &&
          is_from_stream(lexer_.peek().text)) {
        const ColumnRef right = parse_column();
        if (right.stream == left.stream) {
          lexer_.fail("join predicate must reference two different streams");
        }
        out_.joins.push_back(JoinPredicate{left, right});
        return;
      }
      lexer_ = saved;  // a selection like A.x = 'literal'
    }
    FilterPredicate filter;
    filter.column = left;
    std::string tail;  // arithmetic between the column and the comparator
    while (!is_comparator(lexer_.peek())) {
      if (lexer_.peek().kind == TokenKind::kEnd ||
          is_keyword(lexer_.peek(), "AND")) {
        lexer_.fail("expected comparison operator in selection predicate");
      }
      if (!tail.empty()) tail += ' ';
      tail += lexer_.take().text;
    }
    filter.op = lexer_.take().text;
    std::string value;
    while (lexer_.peek().kind != TokenKind::kEnd &&
           !is_keyword(lexer_.peek(), "AND") &&
           !is_keyword(lexer_.peek(), "GROUP") &&
           !is_symbol(lexer_.peek(), ";")) {
      if (!value.empty()) value += ' ';
      value += lexer_.take().text;
    }
    if (value.empty()) lexer_.fail("expected literal after comparator");
    filter.value = value;
    filter.expression = left.stream + "." + left.column +
                        (tail.empty() ? "" : " " + tail) + " " + filter.op +
                        " " + value;
    out_.filters.push_back(std::move(filter));
  }

  Lexer lexer_;
  ParsedQuery out_;
};

}  // namespace

ParsedQuery parse(const std::string& text) { return Parser(text).run(); }

std::vector<ParsedQuery> parse_union(const std::string& text) {
  // Split on top-level UNION ALL (never inside string literals).
  std::vector<std::string> pieces;
  std::size_t start = 0;
  bool in_string = false;
  for (std::size_t i = 0; i + 5 <= text.size(); ++i) {
    if (text[i] == '\'') in_string = !in_string;
    if (in_string) continue;
    if (upper(text.substr(i, 5)) != "UNION") continue;
    if (i > 0 && ident_char(text[i - 1])) continue;               // ...xUNION
    if (i + 5 < text.size() && ident_char(text[i + 5])) continue;  // UNIONx...
    // Require the ALL keyword.
    std::size_t j = i + 5;
    while (j < text.size() && std::isspace(static_cast<unsigned char>(text[j]))) {
      ++j;
    }
    if (upper(text.substr(j, 3)) != "ALL" ||
        (j + 3 < text.size() && ident_char(text[j + 3]))) {
      throw SqlError(
          "SQL parse error: UNION without ALL (duplicate elimination) is "
          "not supported");
    }
    pieces.push_back(text.substr(start, i - start));
    start = j + 3;
    i = j + 2;
  }
  pieces.push_back(text.substr(start));

  std::vector<ParsedQuery> out;
  out.reserve(pieces.size());
  for (const std::string& piece : pieces) out.push_back(parse(piece));
  return out;
}

}  // namespace iflow::sql
