#include "common/thread_pool.h"

#include <algorithm>

namespace iflow {

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 1; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_job_blocks() {
  // Pull block indices until the job is drained; the last finished block
  // wakes the caller. Block b covers [n*b/B, n*(b+1)/B) — a partition that
  // depends only on (n, B), never on scheduling.
  for (;;) {
    std::size_t b;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (next_block_ >= job_blocks_) return;
      b = next_block_++;
    }
    const std::size_t begin = job_n_ * b / job_blocks_;
    const std::size_t end = job_n_ * (b + 1) / job_blocks_;
    if (begin < end) (*job_)(begin, end);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--blocks_left_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      start_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    run_job_blocks();
  }
}

void ThreadPool::parallel_blocks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    fn(0, n);
    return;
  }
  const std::size_t blocks =
      std::min(n, static_cast<std::size_t>(thread_count()));
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &fn;
    job_n_ = n;
    job_blocks_ = blocks;
    next_block_ = 0;
    blocks_left_ = blocks;
    ++generation_;
  }
  start_cv_.notify_all();
  run_job_blocks();  // the caller participates
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return blocks_left_ == 0; });
  job_ = nullptr;
}

}  // namespace iflow
