// Lightweight runtime checking for invariants and argument validation.
//
// IFLOW_CHECK is always on (library correctness depends on it and the cost of
// the checks is negligible next to graph traversals); IFLOW_DCHECK compiles
// out in release builds and is meant for hot inner loops.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace iflow {

/// Thrown when a checked invariant or precondition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace iflow

#define IFLOW_CHECK(expr)                                              \
  do {                                                                 \
    if (!(expr))                                                       \
      ::iflow::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define IFLOW_CHECK_MSG(expr, msg)                                     \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream iflow_check_os_;                              \
      iflow_check_os_ << msg;                                          \
      ::iflow::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                    iflow_check_os_.str());            \
    }                                                                  \
  } while (0)

#ifdef NDEBUG
#define IFLOW_DCHECK(expr) \
  do {                     \
  } while (0)
#else
#define IFLOW_DCHECK(expr) IFLOW_CHECK(expr)
#endif
