// Small fixed-size worker pool for data-parallel index sweeps.
//
// The planner's per-site DP sweeps are embarrassingly parallel across sites
// once the inner reduction order is fixed, so the only primitive needed is
// parallel_blocks(): partition [0, n) into contiguous blocks and run a
// callback on each block from a worker (the calling thread participates).
// Results are bitwise-independent of the thread count as long as the
// callback computes each index's result from that index alone — block
// boundaries never change what is computed, only who computes it.
//
// Workers are started once and parked on a condition variable between jobs,
// so a planner invocation pays one notify/wait round trip rather than a
// thread spawn. A pool constructed with `threads <= 1` has no workers and
// runs every job inline on the caller, which is the serial reference mode
// the differential fuzzer compares against.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace iflow {

class ThreadPool {
 public:
  /// `threads` counts the calling thread: a pool of `threads` runs jobs on
  /// `threads - 1` workers plus the caller. 0 (or negative) means one per
  /// hardware thread.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency including the calling thread (>= 1).
  int thread_count() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(begin, end) over a partition of [0, n) into at most
  /// thread_count() contiguous blocks and blocks until every call returned.
  /// fn runs concurrently on disjoint ranges; it must not recurse into the
  /// same pool. n == 0 is a no-op; with no workers fn(0, n) runs inline.
  void parallel_blocks(std::size_t n,
                       const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();
  void run_job_blocks();

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  std::uint64_t generation_ = 0;  // bumped per job; wakes parked workers

  // Current job (valid while blocks_left_ > 0).
  const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
  std::size_t job_n_ = 0;
  std::size_t job_blocks_ = 0;
  std::size_t next_block_ = 0;   // guarded by mu_
  std::size_t blocks_left_ = 0;  // guarded by mu_; done when 0
};

}  // namespace iflow
