// Plain-text table formatting for the benchmark harness.
//
// Every figure-reproduction bench prints its series through TextTable so the
// output is aligned, diff-able, and easy to paste into EXPERIMENTS.md.
#pragma once

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"

namespace iflow {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// fixed precision. Rows are printed with a header rule.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Begin a new row; subsequent `cell` calls fill it left to right.
  TextTable& row() {
    rows_.emplace_back();
    return *this;
  }

  TextTable& cell(const std::string& s) {
    IFLOW_CHECK(!rows_.empty());
    rows_.back().push_back(s);
    return *this;
  }

  TextTable& cell(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return cell(os.str());
  }

  TextTable& cell(std::uint64_t v) { return cell(std::to_string(v)); }
  TextTable& cell(int v) { return cell(std::to_string(v)); }

  /// Scientific notation, for search-space sizes.
  TextTable& cell_sci(double v, int precision = 2) {
    std::ostringstream os;
    os << std::scientific << std::setprecision(precision) << v;
    return cell(os.str());
  }

  void print(std::ostream& os) const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& r : rows_) {
      IFLOW_CHECK_MSG(r.size() <= header_.size(), "row wider than header");
      for (std::size_t c = 0; c < r.size(); ++c) {
        width[c] = std::max(width[c], r[c].size());
      }
    }
    auto emit = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c) {
        os << (c ? "  " : "") << std::setw(static_cast<int>(width[c]))
           << cells[c];
      }
      os << '\n';
    };
    emit(header_);
    std::size_t rule = 0;
    for (std::size_t c = 0; c < header_.size(); ++c) {
      rule += width[c] + (c ? 2 : 0);
    }
    os << std::string(rule, '-') << '\n';
    for (const auto& r : rows_) emit(r);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace iflow
