// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (topology generation, workload
// generation, clustering initialisation, the discrete-event engine) takes an
// explicit Prng so that experiments are reproducible from a single seed and
// independent components can be given independent streams (see `fork`).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"

namespace iflow {

/// Deterministic random source. Thin wrapper over std::mt19937_64 with the
/// distribution helpers the library actually uses.
class Prng {
 public:
  explicit Prng(std::uint64_t seed) : gen_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    IFLOW_CHECK(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(gen_);
  }

  /// Uniform index in [0, n).
  std::size_t index(std::size_t n) {
    IFLOW_CHECK(n > 0);
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    IFLOW_CHECK(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform(0.0, 1.0) < p; }

  /// Exponentially distributed inter-arrival gap with the given rate (per
  /// second). Used by the engine's Poisson sources.
  double exponential(double rate) {
    IFLOW_CHECK(rate > 0.0);
    return std::exponential_distribution<double>(rate)(gen_);
  }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    IFLOW_CHECK(!v.empty());
    return v[index(v.size())];
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  /// Derive an independent child stream; the (parent seed, salt) pair fully
  /// determines the child, so forked components stay reproducible.
  Prng fork(std::uint64_t salt) {
    const std::uint64_t s = gen_() ^ (salt * 0x9E3779B97F4A7C15ULL);
    return Prng(s);
  }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace iflow
