#include "verify/validator.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "cluster/hierarchy.h"
#include "query/rates.h"

namespace iflow::verify {

namespace {

bool close(double a, double b, double tol) {
  return std::abs(a - b) <= tol * (1.0 + std::max(std::abs(a), std::abs(b)));
}

/// Collector keeping violation construction in one place.
struct Report {
  std::vector<Violation> violations;

  template <typename... Parts>
  void add(ViolationCode code, Parts&&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    violations.push_back(Violation{code, os.str()});
  }
};

bool node_exists(const opt::OptimizerEnv& env, net::NodeId n) {
  if (n == net::kInvalidNode) return false;
  if (env.network == nullptr) return true;  // nothing to check against
  return static_cast<std::size_t>(n) < env.network->node_count();
}

/// The documented processing-node fallback (optimizer.h): a planning scope
/// that contains no processing node falls back to all of its members.
/// Scopes are either the whole network (flat algorithms) or hierarchy
/// clusters (per level, for the hierarchical algorithms and their view
/// refinement), so a placement on a non-processing node is legitimate
/// exactly when some scope containing it is processing-free.
bool fallback_excuses(const opt::OptimizerEnv& env, net::NodeId n) {
  const auto is_processing = [&env](net::NodeId m) {
    return std::find(env.processing_nodes.begin(), env.processing_nodes.end(),
                     m) != env.processing_nodes.end();
  };
  // Degenerate restriction: no network node is processing-capable, so the
  // whole-network scope already fell back.
  if (env.network != nullptr) {
    bool any = false;
    for (net::NodeId m = 0; m < env.network->node_count() && !any; ++m) {
      any = is_processing(m);
    }
    if (!any) return true;
  }
  if (env.hierarchy == nullptr) return false;
  const cluster::Hierarchy& h = *env.hierarchy;
  for (int l = 1; l <= h.height(); ++l) {
    if (h.representative(n, l) != n) break;  // n is not a level-l node
    const cluster::Cluster& cl = h.level(l)[h.cluster_of(n, l)];
    if (std::none_of(cl.members.begin(), cl.members.end(), is_processing)) {
      return true;
    }
  }
  return false;
}

/// Mirror of `fallback_excuses` for env.excluded_sites: an excluded host is
/// a legitimate placement only when some scope containing it consists
/// entirely of excluded nodes (restrict_sites then kept the scope as-is).
bool exclusion_excuses(const opt::OptimizerEnv& env, net::NodeId n) {
  const auto is_excluded = [&env](net::NodeId m) {
    return std::binary_search(env.excluded_sites.begin(),
                              env.excluded_sites.end(), m);
  };
  if (env.network != nullptr) {
    bool any_open = false;
    for (net::NodeId m = 0; m < env.network->node_count() && !any_open; ++m) {
      any_open = !is_excluded(m);
    }
    if (!any_open) return true;  // everything excluded: global fallback
  }
  if (env.hierarchy == nullptr) return false;
  const cluster::Hierarchy& h = *env.hierarchy;
  for (int l = 1; l <= h.height(); ++l) {
    if (h.representative(n, l) != n) break;  // n is not a level-l node
    const cluster::Cluster& cl = h.level(l)[h.cluster_of(n, l)];
    if (std::all_of(cl.members.begin(), cl.members.end(), is_excluded)) {
      return true;
    }
  }
  return false;
}

}  // namespace

const char* to_string(ViolationCode code) {
  switch (code) {
    case ViolationCode::kNoUnits: return "no-units";
    case ViolationCode::kEmptyUnitMask: return "empty-unit-mask";
    case ViolationCode::kOverlappingUnits: return "overlapping-units";
    case ViolationCode::kInvalidUnitLocation: return "invalid-unit-location";
    case ViolationCode::kNegativeUnitRate: return "negative-unit-rate";
    case ViolationCode::kChildOutOfRange: return "child-out-of-range";
    case ViolationCode::kChildOrder: return "child-order";
    case ViolationCode::kInputConsumedTwice: return "input-consumed-twice";
    case ViolationCode::kOrphanOp: return "orphan-op";
    case ViolationCode::kOverlappingChildMasks:
      return "overlapping-child-masks";
    case ViolationCode::kOpMaskMismatch: return "op-mask-mismatch";
    case ViolationCode::kInvalidOpNode: return "invalid-op-node";
    case ViolationCode::kNonProcessingNode: return "non-processing-node";
    case ViolationCode::kRootNotCovering: return "root-not-covering";
    case ViolationCode::kDanglingUnits: return "dangling-units";
    case ViolationCode::kInvalidSink: return "invalid-sink";
    case ViolationCode::kSourceCoverageMismatch:
      return "source-coverage-mismatch";
    case ViolationCode::kUnitRateDrift: return "unit-rate-drift";
    case ViolationCode::kOpRateDrift: return "op-rate-drift";
    case ViolationCode::kPlannedCostMismatch: return "planned-cost-mismatch";
    case ViolationCode::kMarginalCostMismatch:
      return "marginal-cost-mismatch";
    case ViolationCode::kExcludedHost: return "excluded-host";
  }
  return "unknown";
}

std::vector<Violation> validate(const query::Deployment& d,
                                const opt::OptimizerEnv& env,
                                const ValidateOptions& opts) {
  Report report;
  if (d.units.empty()) {
    report.add(ViolationCode::kNoUnits, "deployment has no leaf units");
    return report.violations;
  }

  // --- Units -------------------------------------------------------------
  bool placements_ok = true;
  query::Mask all_units = 0;
  for (std::size_t u = 0; u < d.units.size(); ++u) {
    const query::LeafUnit& unit = d.units[u];
    if (unit.mask == 0) {
      report.add(ViolationCode::kEmptyUnitMask, "unit ", u, " has mask 0");
    }
    if ((all_units & unit.mask) != 0) {
      report.add(ViolationCode::kOverlappingUnits, "unit ", u,
                 " overlaps earlier units");
    }
    all_units |= unit.mask;
    if (!node_exists(env, unit.location)) {
      report.add(ViolationCode::kInvalidUnitLocation, "unit ", u, " at node ",
                 unit.location);
      placements_ok = false;
    }
    if (unit.bytes_rate < 0.0 || unit.tuple_rate < 0.0) {
      report.add(ViolationCode::kNegativeUnitRate, "unit ", u, " rates ",
                 unit.bytes_rate, " B/s, ", unit.tuple_rate, " t/s");
    }
  }

  // --- Operators: encoding, order, consumption, masks, placement ---------
  // consumed[slot] counts uses of units (first) and ops (after).
  std::vector<int> consumed(d.units.size() + d.ops.size(), 0);
  bool structure_ok = true;
  for (std::size_t i = 0; i < d.ops.size(); ++i) {
    const query::DeployedOp& op = d.ops[i];
    bool children_ok = true;
    query::Mask combined = 0;
    bool combined_known = true;
    for (int child : {op.left, op.right}) {
      if (query::child_is_unit(child)) {
        const auto idx = static_cast<std::size_t>(query::child_unit_index(child));
        if (idx >= d.units.size()) {
          report.add(ViolationCode::kChildOutOfRange, "op ", i, " unit child ",
                     idx, " of ", d.units.size());
          children_ok = false;
          continue;
        }
        consumed[idx] += 1;
      } else {
        const auto idx = static_cast<std::size_t>(child);
        if (idx >= d.ops.size()) {
          report.add(ViolationCode::kChildOutOfRange, "op ", i, " op child ",
                     idx, " of ", d.ops.size());
          children_ok = false;
          continue;
        }
        if (idx >= i) {
          report.add(ViolationCode::kChildOrder, "op ", i,
                     " consumes later op ", idx,
                     " (children must precede parents)");
          children_ok = false;
          continue;
        }
        consumed[d.units.size() + idx] += 1;
      }
      const query::Mask cm = query::child_mask(d, child);
      if ((combined & cm) != 0) {
        report.add(ViolationCode::kOverlappingChildMasks, "op ", i,
                   " joins inputs sharing sources");
      }
      combined |= cm;
    }
    if (!children_ok) {
      structure_ok = false;
      combined_known = false;
    }
    if (combined_known && combined != op.mask) {
      report.add(ViolationCode::kOpMaskMismatch, "op ", i, " mask ", op.mask,
                 " != child union ", combined);
    }
    if (!node_exists(env, op.node)) {
      report.add(ViolationCode::kInvalidOpNode, "op ", i, " at node ",
                 op.node);
      placements_ok = false;
    } else if (!env.processing_nodes.empty() &&
               std::find(env.processing_nodes.begin(),
                         env.processing_nodes.end(),
                         op.node) == env.processing_nodes.end()) {
      const auto is_processing = [&env](net::NodeId m) {
        return std::find(env.processing_nodes.begin(),
                         env.processing_nodes.end(),
                         m) != env.processing_nodes.end();
      };
      if (opts.op_scopes != nullptr && i < opts.op_scopes->size()) {
        // Recorded scope: the fallback is exact — a non-processing node is
        // legal only inside a scope holding no processing node at all.
        const std::vector<net::NodeId>& scope = (*opts.op_scopes)[i];
        const bool in_scope =
            std::find(scope.begin(), scope.end(), op.node) != scope.end();
        const bool scope_has_processing =
            std::any_of(scope.begin(), scope.end(), is_processing);
        if (!in_scope || scope_has_processing) {
          report.add(ViolationCode::kNonProcessingNode, "op ", i,
                     " on non-processing node ", op.node,
                     in_scope ? " though its recorded scope holds a"
                                " processing node"
                              : " outside its recorded scope");
        }
      } else if (!fallback_excuses(env, op.node)) {
        report.add(ViolationCode::kNonProcessingNode, "op ", i,
                   " on non-processing node ", op.node,
                   " with no processing-free scope containing it");
      }
    }
    if (!env.excluded_sites.empty() &&
        std::binary_search(env.excluded_sites.begin(),
                           env.excluded_sites.end(), op.node)) {
      const auto is_excluded = [&env](net::NodeId m) {
        return std::binary_search(env.excluded_sites.begin(),
                                  env.excluded_sites.end(), m);
      };
      if (opts.op_scopes != nullptr && i < opts.op_scopes->size()) {
        const std::vector<net::NodeId>& scope = (*opts.op_scopes)[i];
        const bool in_scope =
            std::find(scope.begin(), scope.end(), op.node) != scope.end();
        const bool scope_has_open =
            std::any_of(scope.begin(), scope.end(),
                        [&](net::NodeId m) { return !is_excluded(m); });
        if (!in_scope || scope_has_open) {
          report.add(ViolationCode::kExcludedHost, "op ", i,
                     " on excluded site ", op.node,
                     in_scope ? " though its recorded scope holds an"
                                " open node"
                              : " outside its recorded scope");
        }
      } else if (!exclusion_excuses(env, op.node)) {
        report.add(ViolationCode::kExcludedHost, "op ", i,
                   " on excluded site ", op.node,
                   " with no fully-excluded scope containing it");
      }
    }
  }
  for (std::size_t slot = 0; slot < consumed.size(); ++slot) {
    if (consumed[slot] > 1) {
      const bool is_unit = slot < d.units.size();
      report.add(ViolationCode::kInputConsumedTwice,
                 is_unit ? "unit " : "op ",
                 is_unit ? slot : slot - d.units.size(), " consumed ",
                 consumed[slot], " times");
    }
  }
  // Every op except the root (last) must feed exactly one parent.
  for (std::size_t i = 0; i + 1 < d.ops.size(); ++i) {
    if (consumed[d.units.size() + i] == 0) {
      report.add(ViolationCode::kOrphanOp, "op ", i,
                 " is consumed by nobody and is not the root");
    }
  }

  // --- Excluded hosts ------------------------------------------------------
  // A failed or load-shed host may keep forwarding, sourcing and sinking,
  // but it must not run operators: every join op and every derived-unit
  // binding (a subscription to a provider operator executing there) on an
  // excluded host is a violation. Base units are source taps, and the sink
  // is not an operator — both stay legal on excluded hosts.
  if (opts.excluded_hosts != nullptr && !opts.excluded_hosts->empty()) {
    const auto excluded = [&opts](net::NodeId n) {
      return std::find(opts.excluded_hosts->begin(),
                       opts.excluded_hosts->end(),
                       n) != opts.excluded_hosts->end();
    };
    for (std::size_t i = 0; i < d.ops.size(); ++i) {
      if (excluded(d.ops[i].node)) {
        report.add(ViolationCode::kExcludedHost, "op ", i,
                   " on excluded host ", d.ops[i].node);
      }
    }
    for (std::size_t u = 0; u < d.units.size(); ++u) {
      if (d.units[u].derived && excluded(d.units[u].location)) {
        report.add(ViolationCode::kExcludedHost, "derived unit ", u,
                   " bound to a provider on excluded host ",
                   d.units[u].location);
      }
    }
  }

  // --- Root coverage and sink ---------------------------------------------
  if (d.ops.empty()) {
    if (d.units.size() > 1) {
      report.add(ViolationCode::kDanglingUnits, d.units.size(),
                 " units but no join op connecting them");
      structure_ok = false;
    }
  } else if (d.ops.back().mask != all_units) {
    report.add(ViolationCode::kRootNotCovering, "root mask ",
               d.ops.back().mask, " != union of unit masks ", all_units);
    structure_ok = false;
  }
  if (!node_exists(env, d.sink)) {
    report.add(ViolationCode::kInvalidSink, "sink node ", d.sink);
    placements_ok = false;
  }

  // --- Semantic checks against the query and its RateModel ----------------
  if (opts.query != nullptr && env.catalog != nullptr) {
    const query::Query& q = *opts.query;
    const query::Mask full = query::full_mask(q.k());
    if (all_units != full) {
      report.add(ViolationCode::kSourceCoverageMismatch, "unit masks cover ",
                 all_units, " but the query's source set is ", full);
    }
    const query::RateModel rates(*env.catalog, q, env.projection_factor);
    const auto in_model = [&rates, full](query::Mask m) {
      return m != 0 && (m & ~full) == 0;
    };
    for (std::size_t u = 0; u < d.units.size(); ++u) {
      const query::LeafUnit& unit = d.units[u];
      if (!in_model(unit.mask)) continue;  // already reported above
      if (!close(unit.bytes_rate, rates.bytes_rate(unit.mask),
                 opts.tolerance) ||
          !close(unit.tuple_rate, rates.tuple_rate(unit.mask),
                 opts.tolerance)) {
        report.add(ViolationCode::kUnitRateDrift, "unit ", u, " records ",
                   unit.bytes_rate, " B/s but the model gives ",
                   rates.bytes_rate(unit.mask));
      }
    }
    for (std::size_t i = 0; i < d.ops.size(); ++i) {
      const query::DeployedOp& op = d.ops[i];
      if (!in_model(op.mask)) continue;
      if (!close(op.out_bytes_rate, rates.bytes_rate(op.mask),
                 opts.tolerance) ||
          !close(op.out_tuple_rate, rates.tuple_rate(op.mask),
                 opts.tolerance)) {
        report.add(ViolationCode::kOpRateDrift, "op ", i, " records ",
                   op.out_bytes_rate, " B/s out but the model gives ",
                   rates.bytes_rate(op.mask));
      }
    }
  }

  // --- Cost re-evaluation --------------------------------------------------
  // Only meaningful once the structure and placements are sound; anything
  // else would index out of bounds or feed kInvalidNode into the tables.
  if (env.routing != nullptr && structure_ok && placements_ok) {
    const net::RoutingTables& rt = *env.routing;
    const double evaluated = query::deployment_cost(d, rt);
    if (opts.planned_cost >= 0.0 &&
        !close(opts.planned_cost, evaluated, opts.tolerance)) {
      report.add(ViolationCode::kPlannedCostMismatch, "planned cost ",
                 opts.planned_cost, " vs re-evaluated ", evaluated);
    }
    // Independent marginal re-sum from the RateModel: every edge is charged
    // the model rate of the stream crossing it, and a reused derived unit is
    // charged only its provider→consumer edge (its upstream cost belongs to
    // the query that deployed it).
    if (opts.query != nullptr && env.catalog != nullptr) {
      const query::Query& q = *opts.query;
      const query::Mask full = query::full_mask(q.k());
      if (all_units == full) {
        const query::RateModel rates(*env.catalog, q, env.projection_factor);
        double marginal = 0.0;
        for (const query::DeployedOp& op : d.ops) {
          for (int child : {op.left, op.right}) {
            marginal += rates.bytes_rate(query::child_mask(d, child)) *
                        rt.cost(query::child_location(d, child), op.node);
          }
        }
        double delivered = rates.bytes_rate(full);
        if (d.aggregate.enabled()) {
          delivered = std::min(rates.tuple_rate(full),
                               d.aggregate.out_tuple_rate()) *
                      d.aggregate.out_width;
        }
        marginal += delivered * rt.cost(d.root_node(), d.sink);
        if (!close(marginal, evaluated, opts.tolerance)) {
          report.add(ViolationCode::kMarginalCostMismatch,
                     "deployment_cost() gives ", evaluated,
                     " but the model-based marginal re-sum gives ", marginal);
        }
      }
    }
  }
  return report.violations;
}

bool has_violation(const std::vector<Violation>& violations,
                   ViolationCode code) {
  return std::any_of(violations.begin(), violations.end(),
                     [code](const Violation& v) { return v.code == code; });
}

std::string describe(const std::vector<Violation>& violations) {
  std::ostringstream os;
  for (const Violation& v : violations) {
    os << '[' << to_string(v.code) << "] " << v.detail << '\n';
  }
  return os.str();
}

void check_result(const opt::OptimizeResult& res, const opt::OptimizerEnv& env,
                  const query::Query& q) {
  if (!res.feasible) return;
  ValidateOptions opts;
  opts.query = &q;
  opts.planned_cost = res.planned_cost;
  if (!res.op_scopes.empty()) opts.op_scopes = &res.op_scopes;
  const std::vector<Violation> violations =
      validate(res.deployment, env, opts);
  IFLOW_CHECK_MSG(violations.empty(),
                  "optimizer produced an invalid deployment for query '"
                      << q.name << "':\n"
                      << describe(violations));
}

}  // namespace iflow::verify
