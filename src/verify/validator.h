// Deployment verification: a structured validity pass over optimizer
// outputs.
//
// The six optimizers all emit `query::Deployment`s whose correctness the
// rest of the system (sessions, the engine, the benches) trusts blindly.
// `validate` re-derives every invariant a well-formed deployment must
// satisfy — structural (topological op order, mask composition, child
// encoding), placement (nodes exist, processing-node restriction honoured
// modulo the documented cluster fallback), semantic (unit masks partition
// the query's source set, recorded rates agree with the RateModel) and
// economic (planned cost matches `deployment_cost()` re-evaluation, and the
// marginal accounting charges reused derived units only their
// provider→consumer edge) — and returns the violations as data rather than
// throwing, so the differential fuzz harness can aggregate them and the
// mutation tests can assert which invariant fired.
//
// `check_result` (via IFLOW_VERIFY_RESULT) is the debug-build hook wired
// into every Optimizer subclass: it throws CheckError listing the
// violations, and compiles to nothing under NDEBUG so Release planning hot
// paths pay zero cost.
#pragma once

#include <string>
#include <vector>

#include "opt/optimizer.h"
#include "query/plan.h"

namespace iflow::verify {

/// One invariant class per code, so tests can assert exactly which
/// invariant a corrupted deployment trips.
enum class ViolationCode {
  kNoUnits,               // deployment has no leaf units at all
  kEmptyUnitMask,         // a unit covers no sources
  kOverlappingUnits,      // two leaf units share a source bit
  kInvalidUnitLocation,   // unit location outside the network
  kNegativeUnitRate,      // unit byte/tuple rate below zero
  kChildOutOfRange,       // child code resolves outside units/ops arenas
  kChildOrder,            // op consumes an op at an equal or later index
  kInputConsumedTwice,    // a unit or op feeds two different parents
  kOrphanOp,              // a non-root op is consumed by nobody
  kOverlappingChildMasks, // an op joins inputs sharing a source bit
  kOpMaskMismatch,        // op mask != union of its child masks
  kInvalidOpNode,         // op placed outside the network
  kNonProcessingNode,     // op on a non-processing node without a fallback
  kRootNotCovering,       // root op mask != union of all unit masks
  kDanglingUnits,         // several units but no join op connecting them
  kInvalidSink,           // sink missing or outside the network
  kSourceCoverageMismatch,// unit masks do not partition the query's sources
  kUnitRateDrift,         // unit rates disagree with the RateModel
  kOpRateDrift,           // op output rates disagree with the RateModel
  kPlannedCostMismatch,   // planned cost far from deployment_cost()
  kMarginalCostMismatch,  // deployment_cost() != independent edge re-sum
  kExcludedHost,          // element on a failed or load-shed host
};

const char* to_string(ViolationCode code);

struct Violation {
  ViolationCode code;
  std::string detail;
};

struct ValidateOptions {
  /// Enables the semantic checks (source coverage, rate propagation and the
  /// model-based marginal re-sum) when non-null. Requires `env.catalog`.
  const query::Query* query = nullptr;
  /// When >= 0, checked against `deployment_cost()` re-evaluation. Pass the
  /// optimizer's planned cost for exact-oracle algorithms (every in-tree
  /// optimizer reports its cost against the true routing tables).
  double planned_cost = -1.0;
  /// Relative tolerance of all floating-point comparisons.
  double tolerance = 1e-6;
  /// Recorded per-op candidate scopes (`OptimizeResult::op_scopes`), parallel
  /// to `d.ops`. When present for an op, the placement check becomes exact:
  /// the op must sit inside its scope, on a processing node whenever the
  /// scope holds one. When absent, scopes are assumed derivable from the
  /// environment (whole network or hierarchy clusters).
  const std::vector<std::vector<net::NodeId>>* op_scopes = nullptr;
  /// Hosts no deployed element may sit on — failed, crashed or load-shed
  /// nodes (`Middleware::excluded_hosts()`). Unlike the processing-node
  /// restriction this has no cluster fallback: a deployment that keeps an
  /// operator, a derived unit or its sink on an excluded host is invalid
  /// outright (kExcludedHost). Sorted or not; checked by linear scan.
  const std::vector<net::NodeId>* excluded_hosts = nullptr;
};

/// Runs every applicable invariant and returns the violations (empty =
/// valid). Checks that would read out-of-bounds after a structural
/// violation are skipped, never crash.
std::vector<Violation> validate(const query::Deployment& d,
                                const opt::OptimizerEnv& env,
                                const ValidateOptions& opts = {});

/// True when any violation carries `code`.
bool has_violation(const std::vector<Violation>& violations,
                   ViolationCode code);

/// Human-readable one-per-line rendering of a violation list.
std::string describe(const std::vector<Violation>& violations);

/// Debug hook body: validates a feasible OptimizeResult against its
/// environment and query and throws CheckError describing every violation.
/// Infeasible results pass through untouched.
void check_result(const opt::OptimizeResult& res, const opt::OptimizerEnv& env,
                  const query::Query& q);

}  // namespace iflow::verify

// Self-validation of optimizer outputs: active in debug builds, compiled
// out (zero cost) under NDEBUG, mirroring IFLOW_DCHECK.
#ifdef NDEBUG
#define IFLOW_VERIFY_RESULT(res, env, q) \
  do {                                   \
  } while (0)
#else
#define IFLOW_VERIFY_RESULT(res, env, q) \
  ::iflow::verify::check_result((res), (env), (q))
#endif
