#include "query/join_tree.h"

#include <algorithm>

namespace iflow::query {

namespace {

/// Appends `sub` to `arena`, fixing up child indices; returns the new index
/// of `sub`'s root.
int graft(std::vector<TreeNode>& arena, const JoinTree& sub) {
  const int offset = static_cast<int>(arena.size());
  for (TreeNode n : sub.nodes) {
    if (n.left >= 0) n.left += offset;
    if (n.right >= 0) n.right += offset;
    arena.push_back(n);
  }
  return sub.root + offset;
}

/// All unordered trees over `subset` (unit indices). Every tree is produced
/// exactly once: at each root split the subset's first unit is pinned to the
/// left side, so mirrored splits are never revisited.
std::vector<JoinTree> trees_over(const std::vector<Mask>& unit_masks,
                                 const std::vector<int>& subset) {
  std::vector<JoinTree> result;
  if (subset.size() == 1) {
    JoinTree t;
    TreeNode leaf;
    leaf.unit = subset[0];
    leaf.mask = unit_masks[static_cast<std::size_t>(subset[0])];
    t.nodes.push_back(leaf);
    t.root = 0;
    result.push_back(std::move(t));
    return result;
  }
  const std::size_t rest = subset.size() - 1;
  for (std::uint64_t bits = 1; bits < (std::uint64_t{1} << rest); ++bits) {
    std::vector<int> left{subset[0]};
    std::vector<int> right;
    for (std::size_t i = 0; i < rest; ++i) {
      ((bits >> i & 1) ? right : left).push_back(subset[i + 1]);
    }
    for (const JoinTree& lt : trees_over(unit_masks, left)) {
      for (const JoinTree& rt : trees_over(unit_masks, right)) {
        JoinTree t;
        const int lroot = graft(t.nodes, lt);
        const int rroot = graft(t.nodes, rt);
        TreeNode root;
        root.left = lroot;
        root.right = rroot;
        root.mask = t.nodes[static_cast<std::size_t>(lroot)].mask |
                    t.nodes[static_cast<std::size_t>(rroot)].mask;
        t.nodes.push_back(root);
        t.root = static_cast<int>(t.nodes.size()) - 1;
        result.push_back(std::move(t));
      }
    }
  }
  return result;
}

}  // namespace

std::vector<JoinTree> enumerate_join_trees(
    const std::vector<Mask>& unit_masks) {
  IFLOW_CHECK(!unit_masks.empty());
  IFLOW_CHECK_MSG(unit_masks.size() <= 10, "tree enumeration beyond 10 units");
  Mask seen = 0;
  for (Mask m : unit_masks) {
    IFLOW_CHECK_MSG(m != 0 && (seen & m) == 0, "unit masks must be disjoint");
    seen |= m;
  }
  std::vector<int> units(unit_masks.size());
  for (std::size_t i = 0; i < units.size(); ++i) units[i] = static_cast<int>(i);
  return trees_over(unit_masks, units);
}

std::uint64_t unordered_tree_count(int units) {
  IFLOW_CHECK(units >= 1);
  std::uint64_t c = 1;
  for (int f = 2 * units - 3; f >= 3; f -= 2) c *= static_cast<std::uint64_t>(f);
  return c;
}

}  // namespace iflow::query
