#include "query/catalog.h"

#include <algorithm>

namespace iflow::query {

StreamId Catalog::add_stream(std::string name, net::NodeId source,
                             double tuple_rate, double tuple_width) {
  IFLOW_CHECK_MSG(tuple_rate > 0.0, "tuple rate must be positive");
  IFLOW_CHECK_MSG(tuple_width > 0.0, "tuple width must be positive");
  IFLOW_CHECK_MSG(find(name) == kInvalidStream, "duplicate stream " << name);
  streams_.push_back(
      StreamDef{std::move(name), source, tuple_rate, tuple_width, {}});

  // Grow the dense selectivity matrix, preserving existing entries.
  const std::size_t n = streams_.size();
  std::vector<double> grown(n * n, 1.0);
  for (std::size_t a = 0; a + 1 < n; ++a) {
    for (std::size_t b = 0; b + 1 < n; ++b) {
      grown[a * n + b] = selectivity_[a * (n - 1) + b];
    }
  }
  selectivity_ = std::move(grown);
  return static_cast<StreamId>(n - 1);
}

void Catalog::set_selectivity(StreamId a, StreamId b, double selectivity) {
  IFLOW_CHECK(a < stream_count() && b < stream_count());
  IFLOW_CHECK_MSG(a != b, "selectivity is defined between distinct streams");
  IFLOW_CHECK_MSG(selectivity > 0.0 && selectivity <= 1.0,
                  "selectivity must be in (0, 1]");
  selectivity_[sel_index(a, b)] = selectivity;
  selectivity_[sel_index(b, a)] = selectivity;
}

void Catalog::set_tuple_rate(StreamId id, double tuple_rate) {
  IFLOW_CHECK(id < stream_count());
  IFLOW_CHECK_MSG(tuple_rate > 0.0, "tuple rate must be positive");
  streams_[id].tuple_rate = tuple_rate;
}

void Catalog::set_source(StreamId id, net::NodeId source) {
  IFLOW_CHECK(id < stream_count());
  IFLOW_CHECK(source != net::kInvalidNode);
  streams_[id].source = source;
}

void Catalog::set_columns(StreamId id, std::vector<std::string> columns) {
  IFLOW_CHECK(id < stream_count());
  streams_[id].columns = std::move(columns);
}

double Catalog::selectivity(StreamId a, StreamId b) const {
  IFLOW_CHECK(a < stream_count() && b < stream_count());
  if (a == b) return 1.0;
  return selectivity_[sel_index(a, b)];
}

const StreamDef& Catalog::stream(StreamId id) const {
  IFLOW_CHECK(id < stream_count());
  return streams_[id];
}

StreamId Catalog::find(const std::string& name) const {
  const auto it = std::find_if(streams_.begin(), streams_.end(),
                               [&](const StreamDef& s) { return s.name == name; });
  if (it == streams_.end()) return kInvalidStream;
  return static_cast<StreamId>(it - streams_.begin());
}

}  // namespace iflow::query
