// Continuous select-project-join query over base streams.
//
// A query names K catalog streams to be joined (the paper's focus; the join
// graph is the clique over the sources with the catalog's pairwise
// selectivities) and a sink node where results are delivered. Planning
// chooses the join order (any bushy tree) and the physical node of every
// join operator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/network.h"
#include "query/catalog.h"

namespace iflow::query {

using QueryId = std::uint32_t;

/// Aggregate function applied on top of the join result (the paper's §2
/// future-work item). kNone = plain select-project-join.
enum class AggregateFn : std::uint8_t {
  kNone,
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
};

/// Windowed grouped aggregation over the query's full join result. The
/// aggregate consumes the result where it is produced (there is never a
/// reason to ship the raw result first: the aggregated stream is no larger)
/// and emits one tuple per non-empty group per tumbling window.
struct Aggregation {
  AggregateFn fn = AggregateFn::kNone;
  /// Estimated number of distinct groups (1 = global aggregate).
  double groups = 1.0;
  /// Tumbling window length in seconds.
  double window_s = 1.0;
  /// Bytes per emitted aggregate tuple (group key + value).
  double out_width = 24.0;

  bool enabled() const { return fn != AggregateFn::kNone; }

  /// Upper bound on the emitted tuple rate: one tuple per group per
  /// window. (The true rate is lower when some groups are empty in a
  /// window; planning uses the bound.)
  double out_tuple_rate() const { return groups / window_s; }
  double out_bytes_rate() const { return out_tuple_rate() * out_width; }
};

struct Query {
  QueryId id = 0;
  std::string name;
  std::vector<StreamId> sources;  // distinct catalog streams, K >= 1
  net::NodeId sink = net::kInvalidNode;
  /// Owning tenant for quota accounting and admission fairness; 0 = the
  /// default tenant (single-tenant workloads never set this).
  std::uint32_t tenant = 0;
  /// Per-source selection selectivity (the "select" of select-project-join):
  /// the fraction of the stream's tuples passing the query's filter
  /// predicates on that stream. Parallel to `sources`; empty = no filters.
  /// Filters are applied at the source ("filtering at the source", §1), so
  /// they scale every downstream rate.
  std::vector<double> filter_selectivity;
  /// Optional aggregation over the full join result.
  Aggregation aggregate;

  int k() const { return static_cast<int>(sources.size()); }

  /// Filter factor of local source i (1.0 when unfiltered).
  double filter(int i) const {
    IFLOW_CHECK(i >= 0 && i < k());
    if (filter_selectivity.empty()) return 1.0;
    IFLOW_CHECK(filter_selectivity.size() == sources.size());
    return filter_selectivity[static_cast<std::size_t>(i)];
  }

  /// Filter factor applied to a catalog stream (1.0 if not a source).
  double filter_on(StreamId s) const {
    for (int i = 0; i < k(); ++i) {
      if (sources[static_cast<std::size_t>(i)] == s) return filter(i);
    }
    return 1.0;
  }
};

}  // namespace iflow::query
