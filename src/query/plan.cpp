#include "query/plan.h"

namespace iflow::query {

double deployment_cost(const Deployment& d, const net::RoutingTables& rt) {
  IFLOW_CHECK(d.sink != net::kInvalidNode);
  double cost = 0.0;
  for (const DeployedOp& op : d.ops) {
    for (int child : {op.left, op.right}) {
      cost +=
          child_bytes_rate(d, child) * rt.cost(child_location(d, child), op.node);
    }
  }
  cost += d.delivered_bytes_rate() * rt.cost(d.root_node(), d.sink);
  return cost;
}

double deployment_cost(const Deployment& d, const RateModel& rates,
                       const net::RoutingTables& rt) {
  IFLOW_CHECK(d.sink != net::kInvalidNode);
  double cost = 0.0;
  for (const DeployedOp& op : d.ops) {
    for (int child : {op.left, op.right}) {
      cost += rates.bytes_rate(child_mask(d, child)) *
              rt.cost(child_location(d, child), op.node);
    }
  }
  const Mask root_mask =
      d.ops.empty() ? d.units.front().mask : d.ops.back().mask;
  double delivered = rates.bytes_rate(root_mask);
  const Aggregation& agg = rates.query().aggregate;
  if (agg.enabled()) {
    delivered = std::min(rates.tuple_rate(root_mask), agg.out_tuple_rate()) *
                agg.out_width;
  }
  cost += delivered * rt.cost(d.root_node(), d.sink);
  return cost;
}

void validate_deployment(const Deployment& d) {
  IFLOW_CHECK(!d.units.empty());
  Mask all = 0;
  for (const LeafUnit& u : d.units) {
    IFLOW_CHECK(u.mask != 0);
    IFLOW_CHECK_MSG((all & u.mask) == 0, "overlapping leaf units");
    IFLOW_CHECK(u.location != net::kInvalidNode);
    IFLOW_CHECK(u.bytes_rate >= 0.0);
    all |= u.mask;
  }
  std::vector<char> consumed(d.units.size() + d.ops.size(), 0);
  for (std::size_t i = 0; i < d.ops.size(); ++i) {
    const DeployedOp& op = d.ops[i];
    IFLOW_CHECK(op.node != net::kInvalidNode);
    Mask combined = 0;
    for (int child : {op.left, op.right}) {
      Mask child_mask;
      std::size_t slot;
      if (child_is_unit(child)) {
        const auto idx = static_cast<std::size_t>(child_unit_index(child));
        IFLOW_CHECK(idx < d.units.size());
        child_mask = d.units[idx].mask;
        slot = idx;
      } else {
        IFLOW_CHECK_MSG(static_cast<std::size_t>(child) < i,
                        "children must precede parents");
        child_mask = d.ops[static_cast<std::size_t>(child)].mask;
        slot = d.units.size() + static_cast<std::size_t>(child);
      }
      IFLOW_CHECK_MSG(!consumed[slot], "input consumed twice");
      consumed[slot] = 1;
      IFLOW_CHECK_MSG((combined & child_mask) == 0,
                      "op joins overlapping inputs");
      combined |= child_mask;
    }
    IFLOW_CHECK_MSG(combined == op.mask, "op mask != union of child masks");
  }
  if (d.ops.empty()) {
    IFLOW_CHECK_MSG(d.units.size() == 1, "multiple units but no join ops");
  } else {
    IFLOW_CHECK_MSG(d.ops.back().mask == all,
                    "root op does not cover all units");
  }
}

}  // namespace iflow::query
