// Analytic rate model for (sub-)query results.
//
// Within one query, a set of joined sources is a bitmask over the query's
// local source indices. The standard estimate is used: the tuple rate of
// joining set S is the product of the members' rates times the selectivity
// of every in-set pair, and the result width is the sum of member widths
// scaled by a projection factor. All optimizers and the execution engine
// share this model, so planned and measured costs are directly comparable.
#pragma once

#include <cstdint>
#include <vector>

#include "query/catalog.h"
#include "query/query.h"

namespace iflow::query {

/// Bitmask over a query's local source indices (bit i = query.sources[i]).
using Mask = std::uint64_t;

inline Mask full_mask(int k) {
  IFLOW_CHECK(k >= 1 && k <= 63);
  return (Mask{1} << k) - 1;
}

/// Memoized per-query rate oracle.
class RateModel {
 public:
  RateModel(const Catalog& catalog, const Query& query,
            double projection_factor = 1.0);

  int k() const { return static_cast<int>(query_->sources.size()); }
  Mask full() const { return full_mask(k()); }

  /// Tuples per second produced by the join of the masked sources.
  double tuple_rate(Mask m) const;

  /// Bytes per tuple of that result.
  double width(Mask m) const;

  /// Bytes per second — the quantity transported over network edges.
  double bytes_rate(Mask m) const { return tuple_rate(m) * width(m); }

  /// Catalog stream behind local index i.
  StreamId stream(int i) const;

  /// Source placement of local index i.
  net::NodeId source_node(int i) const;

  const Catalog& catalog() const { return *catalog_; }
  const Query& query() const { return *query_; }

 private:
  const Catalog* catalog_;
  const Query* query_;
  double projection_factor_;
  mutable std::vector<double> tuple_rate_;  // memo, indexed by mask; <0 unset
  mutable std::vector<double> width_;
};

}  // namespace iflow::query
