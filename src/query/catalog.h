// Stream catalog: the system-wide registry of base data streams.
//
// Each base stream has a tuple rate, a tuple width and a source placement.
// Join selectivities are a *global* property of stream pairs (estimated from
// historical statistics, paper §1.1); because two queries joining the same
// streams therefore produce identical derived streams, operator reuse across
// queries is semantically sound.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "net/network.h"

namespace iflow::query {

using StreamId = std::uint32_t;
inline constexpr StreamId kInvalidStream = std::numeric_limits<StreamId>::max();

/// A base data stream: continuously produced tuples at a source node.
struct StreamDef {
  std::string name;
  net::NodeId source = net::kInvalidNode;
  double tuple_rate = 0.0;   // tuples per second
  double tuple_width = 0.0;  // bytes per tuple
  /// Declared schema (optional). When non-empty, the SQL binder validates
  /// column references against it.
  std::vector<std::string> columns;
};

/// Registry of base streams and pairwise join selectivities.
class Catalog {
 public:
  /// Registers a stream; returns its id (dense from 0).
  StreamId add_stream(std::string name, net::NodeId source, double tuple_rate,
                      double tuple_width);

  /// Sets the (symmetric) join selectivity between two distinct streams:
  /// the fraction of tuple pairs that match. Pairs default to 1.0
  /// (cross product) until set.
  void set_selectivity(StreamId a, StreamId b, double selectivity);

  /// Updates a stream's observed tuple rate at runtime (data-condition
  /// change; the middleware re-triggers optimization on such events).
  void set_tuple_rate(StreamId id, double tuple_rate);

  /// Relocates a stream's source node. Scenario generators use this to
  /// constrain placements (geo-clustering) after uniform generation; must
  /// happen before any deployment references the stream.
  void set_source(StreamId id, net::NodeId source);

  /// Declares the stream's schema for SQL binding.
  void set_columns(StreamId id, std::vector<std::string> columns);

  double selectivity(StreamId a, StreamId b) const;
  const StreamDef& stream(StreamId id) const;
  std::size_t stream_count() const { return streams_.size(); }

  /// Lookup by name; kInvalidStream when absent.
  StreamId find(const std::string& name) const;

 private:
  std::vector<StreamDef> streams_;
  std::vector<double> selectivity_;  // dense symmetric matrix, 1.0 default

  std::size_t sel_index(StreamId a, StreamId b) const {
    return static_cast<std::size_t>(a) * streams_.size() + b;
  }
};

}  // namespace iflow::query
