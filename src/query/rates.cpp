#include "query/rates.h"

namespace iflow::query {

RateModel::RateModel(const Catalog& catalog, const Query& query,
                     double projection_factor)
    : catalog_(&catalog), query_(&query),
      projection_factor_(projection_factor) {
  IFLOW_CHECK(query.k() >= 1 && query.k() <= 63);
  IFLOW_CHECK(projection_factor > 0.0 && projection_factor <= 1.0);
  for (auto s : query.sources) IFLOW_CHECK(s < catalog.stream_count());
  for (int i = 0; i < query.k(); ++i) {
    const double f = query.filter(i);
    IFLOW_CHECK_MSG(f > 0.0 && f <= 1.0, "filter selectivity out of (0,1]");
  }
  const std::size_t slots = std::size_t{1} << query.k();
  tuple_rate_.assign(slots, -1.0);
  width_.assign(slots, -1.0);
}

double RateModel::tuple_rate(Mask m) const {
  IFLOW_CHECK(m != 0 && m <= full());
  double& memo = tuple_rate_[m];
  if (memo >= 0.0) return memo;
  double rate = 1.0;
  for (int i = 0; i < k(); ++i) {
    if (!(m >> i & 1)) continue;
    rate *= catalog_->stream(query_->sources[static_cast<std::size_t>(i)])
                .tuple_rate *
            query_->filter(i);
    for (int j = i + 1; j < k(); ++j) {
      if (!(m >> j & 1)) continue;
      rate *= catalog_->selectivity(
          query_->sources[static_cast<std::size_t>(i)],
          query_->sources[static_cast<std::size_t>(j)]);
    }
  }
  memo = rate;
  return rate;
}

double RateModel::width(Mask m) const {
  IFLOW_CHECK(m != 0 && m <= full());
  double& memo = width_[m];
  if (memo >= 0.0) return memo;
  double w = 0.0;
  int members = 0;
  for (int i = 0; i < k(); ++i) {
    if (!(m >> i & 1)) continue;
    w += catalog_->stream(query_->sources[static_cast<std::size_t>(i)])
             .tuple_width;
    ++members;
  }
  // Projection trims joined results, never single-source streams.
  if (members > 1) w *= projection_factor_;
  memo = w;
  return w;
}

StreamId RateModel::stream(int i) const {
  IFLOW_CHECK(i >= 0 && i < k());
  return query_->sources[static_cast<std::size_t>(i)];
}

net::NodeId RateModel::source_node(int i) const {
  return catalog_->stream(stream(i)).source;
}

}  // namespace iflow::query
