// Deployment plans: the joint output of query planning and placement.
//
// A Deployment pins every join operator of a chosen bushy tree to a physical
// node and records the leaf units feeding it (base streams at their sources,
// or reused derived streams at their providers). Its communication cost per
// unit time — the paper's optimisation metric — is the sum over all edges of
// `byte rate × path cost`. For reused derived streams the upstream cost was
// paid by the originating query, so only the provider→consumer edge counts:
// deployment costs are *marginal*, which is what the paper's cumulative
// multi-query figures accumulate.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "net/routing.h"
#include "query/join_tree.h"
#include "query/query.h"
#include "query/rates.h"

namespace iflow::query {

/// A leaf input available to the planner.
struct LeafUnit {
  Mask mask = 0;                           // query-local sources covered
  net::NodeId location = net::kInvalidNode;  // where the stream materialises
  double bytes_rate = 0.0;                 // output bytes per second
  double tuple_rate = 0.0;
  bool derived = false;                    // reused operator output?
  /// Containment reuse (derived units only): selectivity of the residual
  /// filter instantiated AT the provider before the stream leaves it, when
  /// the reused operator was advertised with weaker filters than the query
  /// needs. 1.0 = exact reuse. `bytes_rate` is already post-residual.
  double residual_filter = 1.0;
};

/// A deployed join operator.
struct DeployedOp {
  Mask mask = 0;
  // Children: indices >= 0 refer to `ops`; index < 0 encodes unit
  // ~child (i.e. unit index = -child - 1).
  int left = 0;
  int right = 0;
  net::NodeId node = net::kInvalidNode;
  double out_bytes_rate = 0.0;
  double out_tuple_rate = 0.0;
};

inline int encode_unit_child(int unit_index) { return -unit_index - 1; }
inline bool child_is_unit(int child) { return child < 0; }
inline int child_unit_index(int child) { return -child - 1; }

/// Fully resolved deployment of one query. `ops` is in topological order
/// with the root last; a query satisfied entirely by one leaf unit has no
/// ops.
struct Deployment {
  QueryId query = 0;
  std::vector<LeafUnit> units;
  std::vector<DeployedOp> ops;
  net::NodeId sink = net::kInvalidNode;
  /// Optional windowed aggregation, co-located with the root operator
  /// (aggregating before shipping is never worse: the aggregate stream is
  /// no larger than the raw result).
  Aggregation aggregate;
  /// Marginal communication cost per unit time as evaluated by the
  /// optimizer that produced the plan (against its own cost oracle).
  double planned_cost = 0.0;

  /// Raw (pre-aggregation) byte rate produced by the root.
  double root_bytes_rate() const {
    IFLOW_CHECK(!units.empty());
    return ops.empty() ? units.front().bytes_rate : ops.back().out_bytes_rate;
  }

  double root_tuple_rate() const {
    IFLOW_CHECK(!units.empty());
    return ops.empty() ? units.front().tuple_rate : ops.back().out_tuple_rate;
  }

  /// Byte rate actually shipped to the sink (post-aggregation when one is
  /// configured; an aggregate emits at most one tuple per input tuple).
  double delivered_bytes_rate() const {
    if (!aggregate.enabled()) return root_bytes_rate();
    return std::min(root_tuple_rate(), aggregate.out_tuple_rate()) *
           aggregate.out_width;
  }

  /// Node producing the final result.
  net::NodeId root_node() const {
    IFLOW_CHECK(!units.empty());
    return ops.empty() ? units.front().location : ops.back().node;
  }
};

/// Source mask covered by a child reference (unit or op).
inline Mask child_mask(const Deployment& d, int child) {
  return child_is_unit(child)
             ? d.units[static_cast<std::size_t>(child_unit_index(child))].mask
             : d.ops[static_cast<std::size_t>(child)].mask;
}

/// Node where a child's stream materialises.
inline net::NodeId child_location(const Deployment& d, int child) {
  return child_is_unit(child)
             ? d.units[static_cast<std::size_t>(child_unit_index(child))]
                   .location
             : d.ops[static_cast<std::size_t>(child)].node;
}

/// Recorded byte rate of a child's stream.
inline double child_bytes_rate(const Deployment& d, int child) {
  return child_is_unit(child)
             ? d.units[static_cast<std::size_t>(child_unit_index(child))]
                   .bytes_rate
             : d.ops[static_cast<std::size_t>(child)].out_bytes_rate;
}

/// Evaluates the true marginal communication cost of a deployment against
/// actual routing costs (independent of any level-l approximation an
/// algorithm planned with). Sums, over every new edge, bytes/sec × path
/// cost; includes the root→sink edge.
double deployment_cost(const Deployment& d, const net::RoutingTables& rt);

/// Same, but re-derives every edge's byte rate from the CURRENT catalog
/// statistics (through `rates`) instead of the rates recorded at planning
/// time. This is what the middleware monitors: when stream rates drift, the
/// recorded rates go stale but the deployed operators keep carrying the new
/// volumes.
double deployment_cost(const Deployment& d, const RateModel& rates,
                       const net::RoutingTables& rt);

/// Structural sanity: children precede parents, masks compose, every op is
/// placed, and the root covers the union of unit masks. Throws on violation.
void validate_deployment(const Deployment& d);

}  // namespace iflow::query
