// Bushy join-tree representation and exhaustive enumeration.
//
// Trees are built over "units" — leaf inputs that are either base streams or
// reusable derived streams. Enumerating all unordered binary trees over u
// units yields (2u-3)!! shapes, the plan space of Lemma 1. The enumerator is
// used by tests (to prove the subset-DP planner optimal) and by algorithm
// variants that reason per tree; the production planner uses dynamic
// programming over leafset masks instead.
#pragma once

#include <vector>

#include "query/rates.h"

namespace iflow::query {

/// Node of a join tree. Leaves reference a unit index; internal nodes join
/// their two children. `mask` is the union of leaf unit masks beneath.
struct TreeNode {
  int left = -1;   // index into JoinTree::nodes, -1 for leaves
  int right = -1;
  int unit = -1;   // unit index for leaves, -1 for internal nodes
  Mask mask = 0;
};

/// Binary join tree in an index arena; `root` is the index of the root node.
/// Nodes are stored so children precede parents (topological order).
struct JoinTree {
  std::vector<TreeNode> nodes;
  int root = -1;

  int internal_count() const {
    int c = 0;
    for (const auto& n : nodes) c += (n.unit < 0) ? 1 : 0;
    return c;
  }
};

/// All distinct unordered bushy join trees over the given (disjoint,
/// non-empty) unit masks. For a single unit the result is the one leaf-only
/// tree. Result size is (2u-3)!! for u units.
std::vector<JoinTree> enumerate_join_trees(const std::vector<Mask>& unit_masks);

/// (2u-3)!!, as a cross-check for enumerate_join_trees.
std::uint64_t unordered_tree_count(int units);

}  // namespace iflow::query
