#include "workload/scenario.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "sql/binder.h"

namespace iflow::workload {

namespace {

constexpr double kPi = 3.14159265358979323846;

using engine::ChaosEvent;
using engine::ChaosEventKind;

/// Distinct normalized (min, max) link pairs of the network; parallel links
/// collapse into one adjacency, matching the fault model.
std::vector<std::pair<net::NodeId, net::NodeId>> distinct_link_pairs(
    const net::Network& net) {
  std::vector<std::pair<net::NodeId, net::NodeId>> pairs;
  for (const net::Link& l : net.links()) {
    const std::pair<net::NodeId, net::NodeId> p{std::min(l.a, l.b),
                                                std::max(l.a, l.b)};
    if (std::find(pairs.begin(), pairs.end(), p) == pairs.end()) {
      pairs.push_back(p);
    }
  }
  return pairs;
}

/// One link connecting `members` to the rest of the network (a stub
/// domain's gateway), or an invalid pair when the domain is isolated.
std::pair<net::NodeId, net::NodeId> gateway_link(
    const net::Network& net, const std::vector<net::NodeId>& members) {
  const auto inside = [&](net::NodeId n) {
    return std::find(members.begin(), members.end(), n) != members.end();
  };
  for (const net::Link& l : net.links()) {
    if (inside(l.a) != inside(l.b)) {
      return {std::min(l.a, l.b), std::max(l.a, l.b)};
    }
  }
  return {net::kInvalidNode, net::kInvalidNode};
}

void apply_selectivity_model(const ScenarioSpec& spec, query::Catalog& cat,
                             Prng& prng) {
  const int n = static_cast<int>(cat.stream_count());
  const double lo = spec.workload.selectivity_min;
  const double hi = spec.workload.selectivity_max;
  switch (spec.selectivity) {
    case SelectivityModel::kUniform:
      break;  // the generator already drew uniformly
    case SelectivityModel::kZipf: {
      // Random rank assignment, then a power-law decay from hi toward lo:
      // a few hot pairs dominate join costs, the tail is nearly free.
      std::vector<std::pair<query::StreamId, query::StreamId>> pairs;
      for (int a = 0; a < n; ++a) {
        for (int b = a + 1; b < n; ++b) {
          pairs.emplace_back(static_cast<query::StreamId>(a),
                             static_cast<query::StreamId>(b));
        }
      }
      prng.shuffle(pairs);
      for (std::size_t r = 0; r < pairs.size(); ++r) {
        const double s =
            lo + (hi - lo) / std::pow(static_cast<double>(r + 1),
                                      spec.zipf_exponent);
        cat.set_selectivity(pairs[r].first, pairs[r].second, s);
      }
      break;
    }
    case SelectivityModel::kCorrelated: {
      // Block structure: streams within a group join productively, cross
      // group joins are near the floor — plans that respect the grouping
      // (and operator reuse inside a group) win decisively.
      const int groups = std::max(1, spec.clusters);
      std::vector<int> group(static_cast<std::size_t>(n));
      for (int s = 0; s < n; ++s) {
        group[static_cast<std::size_t>(s)] =
            static_cast<int>(prng.index(static_cast<std::size_t>(groups)));
      }
      for (int a = 0; a < n; ++a) {
        for (int b = a + 1; b < n; ++b) {
          const bool same = group[static_cast<std::size_t>(a)] ==
                            group[static_cast<std::size_t>(b)];
          const double s = same ? prng.uniform(0.5 * (lo + hi), hi)
                                : prng.uniform(lo, lo + 0.1 * (hi - lo));
          cat.set_selectivity(static_cast<query::StreamId>(a),
                              static_cast<query::StreamId>(b), s);
        }
      }
      break;
    }
  }
}

void apply_placement_model(const ScenarioSpec& spec, Scenario& s,
                           Prng& prng) {
  if (spec.placement != PlacementModel::kGeoClustered) return;
  const int domains = net::stub_domain_count(spec.topology);
  IFLOW_CHECK_MSG(domains >= 2,
                  "geo-clustered placement needs >= 2 stub domains");
  const int source_domains =
      std::min(std::max(1, spec.clusters), domains - 1);
  std::vector<int> order(static_cast<std::size_t>(domains));
  for (int d = 0; d < domains; ++d) order[static_cast<std::size_t>(d)] = d;
  prng.shuffle(order);

  // Sources pack into the first `source_domains` shuffled domains …
  for (std::size_t sid = 0; sid < s.workload.catalog.stream_count(); ++sid) {
    const int d = order[prng.index(static_cast<std::size_t>(source_domains))];
    const auto members = net::stub_domain_members(spec.topology, d);
    s.workload.catalog.set_source(static_cast<query::StreamId>(sid),
                                  prng.pick(members));
  }
  // … sinks land in the remaining ones, so results always cross the transit
  // backbone (the expensive links the hierarchy is built to avoid).
  const int sink_domains = domains - source_domains;
  for (query::Query& q : s.workload.queries) {
    const int d = order[static_cast<std::size_t>(
        source_domains +
        static_cast<int>(prng.index(static_cast<std::size_t>(sink_domains))))];
    const auto members = net::stub_domain_members(spec.topology, d);
    q.sink = prng.pick(members);
  }
}

void apply_shared_sources(const ScenarioSpec& spec, Scenario& s, Prng& prng) {
  const auto n = static_cast<std::size_t>(spec.workload.num_streams);
  const auto h1 = static_cast<query::StreamId>(prng.index(n));
  auto h2 = static_cast<query::StreamId>(prng.index(n - 1));
  if (h2 >= h1) ++h2;
  const auto shared_sink =
      static_cast<net::NodeId>(prng.index(s.net.node_count()));

  for (std::size_t qi = 0; qi < s.workload.queries.size(); ++qi) {
    query::Query& q = s.workload.queries[qi];
    // Every query joins the hot pair; extra sources come from its original
    // draw, so span sizes are preserved. Reuse-aware optimizers can share
    // the hot pair's join operator across the whole family.
    std::vector<query::StreamId> sources = {h1, h2};
    for (query::StreamId src : q.sources) {
      if (src != h1 && src != h2 && sources.size() < q.sources.size()) {
        sources.push_back(src);
      }
    }
    std::sort(sources.begin(), sources.end());
    q.sources = std::move(sources);
    q.filter_selectivity.clear();  // was parallel to the old source list
    if (qi < s.workload.queries.size() / 2) q.sink = shared_sink;
  }
}

void apply_union_fan_in(const ScenarioSpec& spec, Scenario& s, Prng& prng) {
  const query::Catalog& cat = s.workload.catalog;
  std::vector<query::Query> out;
  query::QueryId next = 0;

  // Two UNION ALL families compiled through the SQL front-end: every branch
  // becomes an independently optimizable query delivering to the family's
  // sink (fan-in interleaves there).
  for (int family = 0; family < 2; ++family) {
    const auto sink = static_cast<net::NodeId>(prng.index(s.net.node_count()));
    const int branches = 2 + static_cast<int>(prng.index(2));
    std::string text;
    for (int b = 0; b < branches; ++b) {
      std::vector<query::StreamId> ids(cat.stream_count());
      for (std::size_t i = 0; i < ids.size(); ++i) {
        ids[i] = static_cast<query::StreamId>(i);
      }
      prng.shuffle(ids);
      const std::size_t k = 2 + prng.index(2);
      std::string from, where;
      for (std::size_t i = 0; i < k; ++i) {
        if (i) from += ", ";
        from += cat.stream(ids[i]).name;
        if (i + 1 < k) {
          if (i) where += " AND ";
          where += cat.stream(ids[i]).name + ".k = " +
                   cat.stream(ids[i + 1]).name + ".k";
        }
      }
      if (b) text += " UNION ALL ";
      text += "SELECT * FROM " + from + " WHERE " + where;
    }
    for (const sql::BoundQuery& b : sql::compile_union(text, cat, next, sink)) {
      out.push_back(b.query);
    }
    next = static_cast<query::QueryId>(out.size());
  }
  // Top up with plain generated queries so the workload size stays at spec.
  for (query::Query& q : s.workload.queries) {
    if (static_cast<int>(out.size()) >= spec.num_queries) break;
    q.id = next++;
    out.push_back(std::move(q));
  }
  s.workload.queries = std::move(out);
}

std::vector<RateCurve> make_rate_curves(const ScenarioSpec& spec,
                                        std::size_t streams, Prng& prng) {
  std::vector<RateCurve> curves;
  if (spec.rates == RateCurve::Shape::kConstant) return curves;
  curves.resize(streams);
  for (RateCurve& c : curves) {
    if (spec.rates == RateCurve::Shape::kDiurnal) {
      c.shape = RateCurve::Shape::kDiurnal;
      c.period_s = 40.0;
      c.amplitude = prng.uniform(0.3, 0.6);
      c.phase = prng.uniform(0.0, 2.0 * kPi);
    } else {  // flash crowd: roughly half the streams burst, the rest hold
      if (prng.chance(0.5)) {
        c.shape = RateCurve::Shape::kFlashCrowd;
        c.burst_start_s = prng.uniform(5.0, 10.0);
        c.burst_duration_s = prng.uniform(5.0, 10.0);
        c.burst_factor = prng.uniform(2.0, 4.0);
      }
    }
  }
  return curves;
}

/// Rate curves must reach the *planner* too, not just the engine: sampled
/// curve values become scripted kRateSpike events, so re-optimization and
/// node_loads re-pricing chase the same curve the engine emits against.
void append_rate_samples(const Scenario& s, std::vector<ChaosEvent>& script) {
  if (s.rate_curves.empty()) return;
  const std::size_t streams = s.workload.catalog.stream_count();
  for (int i = 0; i < 8; ++i) {
    const double t = 4.0 * (i + 1);
    const auto sid = static_cast<query::StreamId>(
        static_cast<std::size_t>(i) % streams);
    const double base = s.workload.catalog.stream(sid).tuple_rate;
    ChaosEvent e;
    e.kind = ChaosEventKind::kRateSpike;
    e.stream = sid;
    e.rate = std::max(0.01 * base, base * s.rate_curves[sid].factor_at(t));
    script.push_back(e);
  }
}

void append_failure_script(const ScenarioSpec& spec, const Scenario& s,
                           Prng& prng, std::vector<ChaosEvent>& script) {
  const auto node_event = [](ChaosEventKind kind, net::NodeId n) {
    ChaosEvent e;
    e.kind = kind;
    e.a = n;
    return e;
  };
  const auto link_event = [](ChaosEventKind kind,
                             std::pair<net::NodeId, net::NodeId> p,
                             double rate = 0.0) {
    ChaosEvent e;
    e.kind = kind;
    e.a = p.first;
    e.b = p.second;
    e.rate = rate;
    return e;
  };

  switch (spec.failures) {
    case FailureProfile::kNone:
      break;
    case FailureProfile::kClusterOutage: {
      // Correlated whole-domain outages: every node of a stub domain
      // crashes together, recovers together — the failure mode uniform
      // injectors never produce.
      const int domains = net::stub_domain_count(spec.topology);
      std::vector<int> order(static_cast<std::size_t>(domains));
      for (int d = 0; d < domains; ++d) order[static_cast<std::size_t>(d)] = d;
      prng.shuffle(order);
      const int rounds = std::min(spec.failure_rounds, domains);
      for (int r = 0; r < rounds; ++r) {
        const auto members =
            net::stub_domain_members(spec.topology, order[static_cast<std::size_t>(r)]);
        for (net::NodeId n : members) {
          script.push_back(node_event(ChaosEventKind::kCrashNode, n));
        }
        for (net::NodeId n : members) {
          script.push_back(node_event(ChaosEventKind::kRestoreNode, n));
        }
      }
      break;
    }
    case FailureProfile::kFlappingRegion: {
      // One domain flaps: two of its nodes and its gateway adjacency cycle
      // down/up every round, forcing repeated suspend/resume of the same
      // deployments (adaptation hysteresis territory).
      const int d = static_cast<int>(prng.index(
          static_cast<std::size_t>(net::stub_domain_count(spec.topology))));
      const auto members = net::stub_domain_members(spec.topology, d);
      const auto gw = gateway_link(s.net, members);
      for (int r = 0; r < spec.failure_rounds; ++r) {
        script.push_back(node_event(ChaosEventKind::kCrashNode, members[0]));
        script.push_back(node_event(ChaosEventKind::kCrashNode, members[1]));
        if (gw.first != net::kInvalidNode) {
          script.push_back(link_event(ChaosEventKind::kFailLink, gw));
          script.push_back(link_event(ChaosEventKind::kRestoreLink, gw));
        }
        script.push_back(node_event(ChaosEventKind::kRestoreNode, members[0]));
        script.push_back(node_event(ChaosEventKind::kRestoreNode, members[1]));
      }
      break;
    }
    case FailureProfile::kLossStorm: {
      // Waves of loss + jitter re-draws across many links; planning costs
      // are untouched but the delivery layer has to retransmit through the
      // storm (exactly-once contract under adversarial but in-budget loss).
      auto pairs = distinct_link_pairs(s.net);
      for (int r = 0; r < spec.failure_rounds; ++r) {
        prng.shuffle(pairs);
        const std::size_t waves = std::min<std::size_t>(6, pairs.size());
        for (std::size_t i = 0; i < waves; ++i) {
          script.push_back(link_event(ChaosEventKind::kSetLinkLoss, pairs[i],
                                      prng.uniform(0.01, 0.035)));
        }
        script.push_back(link_event(ChaosEventKind::kSetLinkJitter, pairs[0],
                                    prng.uniform(0.5, 1.5)));
      }
      break;
    }
    case FailureProfile::kGraySlowNode:
    case FailureProfile::kGrayFlapper: {
      // A node turns gray — slow (and, flapping, intermittently lossy) but
      // administratively up. Quality-only mutations: no replanning, free
      // incremental routing sync, digest-stable. Rounds of sicken/heal,
      // then one final degradation left for the restoration sweep.
      const auto gray = [&](net::NodeId n, bool clear) {
        ChaosEvent e;
        e.kind = clear ? ChaosEventKind::kClearNode
                       : ChaosEventKind::kDegradeNode;
        e.a = n;
        if (!clear) {
          if (spec.failures == FailureProfile::kGraySlowNode) {
            e.slowdown = 3.0;
            e.rate = 0.15;
          } else {
            e.slowdown = 2.0;
            e.rate = 0.4;
            e.flap_hz = 0.2;
          }
        }
        return e;
      };
      const auto victim = static_cast<net::NodeId>(
          prng.index(s.net.node_count()));
      for (int r = 0; r < spec.failure_rounds; ++r) {
        script.push_back(gray(victim, /*clear=*/false));
        script.push_back(gray(victim, /*clear=*/true));
      }
      script.push_back(gray(victim, /*clear=*/false));
      break;
    }
    case FailureProfile::kGrayLossyLink: {
      // Link pairs silently dropping tuples while staying up: the delivery
      // layer retransmits through them; planning never notices.
      auto pairs = distinct_link_pairs(s.net);
      prng.shuffle(pairs);
      const std::size_t sick =
          std::min<std::size_t>(static_cast<std::size_t>(spec.failure_rounds),
                                pairs.size());
      for (std::size_t i = 0; i < sick; ++i) {
        ChaosEvent e = link_event(ChaosEventKind::kDegradeLink, pairs[i], 0.3);
        script.push_back(e);
      }
      for (std::size_t i = 0; i + 1 < sick; ++i) {
        script.push_back(link_event(ChaosEventKind::kClearLink, pairs[i]));
      }
      // The last pair stays sick for the restoration sweep to heal.
      break;
    }
  }
}

}  // namespace

double RateCurve::factor_at(double t) const {
  switch (shape) {
    case Shape::kConstant:
      return 1.0;
    case Shape::kDiurnal:
      return 1.0 + amplitude * std::sin(2.0 * kPi * t / period_s + phase);
    case Shape::kFlashCrowd:
      return (t >= burst_start_s && t < burst_start_s + burst_duration_s)
                 ? burst_factor
                 : 1.0;
  }
  return 1.0;
}

std::function<double(query::StreamId, double)> Scenario::rate_modulation()
    const {
  if (rate_curves.empty()) return nullptr;
  // Capture by value: the closure must outlive the Scenario (it is handed
  // to EngineConfig / ChaosConfig) and stay a pure function for digest
  // stability.
  auto curves = rate_curves;
  return [curves](query::StreamId s, double t) {
    if (static_cast<std::size_t>(s) >= curves.size()) return 1.0;
    return curves[static_cast<std::size_t>(s)].factor_at(t);
  };
}

const std::vector<std::string>& scenario_names() {
  static const std::vector<std::string> kNames = {
      "baseline-uniform",  "diurnal-rates",   "flash-crowd",
      "zipf-selectivity",  "correlated-selectivity",
      "geo-clustered",     "deep-chains",     "shared-sources",
      "union-fanin",       "cluster-outage",  "flapping-region",
      "loss-storm",
      // Gray-failure family (appended: catalogue seeds are index-derived).
      "gray-slow-node",    "gray-lossy-link", "gray-flapper",
  };
  return kNames;
}

ScenarioSpec scenario_spec(const std::string& name) {
  ScenarioSpec spec;
  spec.name = name;
  // Small 18-node default (2 transit, 4 stub domains of 4): every optimizer
  // — exhaustive included — stays fast enough for the full matrix.
  spec.topology.transit_count = 2;
  spec.topology.stub_domains_per_transit = 2;
  spec.topology.stub_domain_size = 4;
  spec.workload.num_streams = 8;
  spec.workload.min_joins = 2;
  spec.workload.max_joins = 4;

  const auto& names = scenario_names();
  const auto it = std::find(names.begin(), names.end(), name);
  IFLOW_CHECK_MSG(it != names.end(), "unknown scenario " << name);
  spec.seed = 0x5CE7A910ULL + static_cast<std::uint64_t>(it - names.begin());

  if (name == "diurnal-rates") {
    spec.rates = RateCurve::Shape::kDiurnal;
  } else if (name == "flash-crowd") {
    spec.rates = RateCurve::Shape::kFlashCrowd;
  } else if (name == "zipf-selectivity") {
    spec.selectivity = SelectivityModel::kZipf;
  } else if (name == "correlated-selectivity") {
    spec.selectivity = SelectivityModel::kCorrelated;
  } else if (name == "geo-clustered") {
    spec.placement = PlacementModel::kGeoClustered;
    spec.topology.stub_domains_per_transit = 3;  // 6 domains, 26 nodes
  } else if (name == "deep-chains") {
    // 8-way join chains: tractable for the exhaustive subset-DP because the
    // topology is small, yet deep enough to separate the heuristics.
    spec.structure = StructureModel::kDeepChains;
    spec.workload.num_streams = 9;
    spec.workload.min_joins = 7;
    spec.workload.max_joins = 7;
    spec.num_queries = 4;
  } else if (name == "shared-sources") {
    spec.structure = StructureModel::kSharedSources;
  } else if (name == "union-fanin") {
    spec.structure = StructureModel::kUnionFanIn;
  } else if (name == "cluster-outage") {
    spec.failures = FailureProfile::kClusterOutage;
  } else if (name == "flapping-region") {
    spec.failures = FailureProfile::kFlappingRegion;
  } else if (name == "loss-storm") {
    spec.failures = FailureProfile::kLossStorm;
  } else if (name == "gray-slow-node") {
    spec.failures = FailureProfile::kGraySlowNode;
  } else if (name == "gray-lossy-link") {
    spec.failures = FailureProfile::kGrayLossyLink;
  } else if (name == "gray-flapper") {
    spec.failures = FailureProfile::kGrayFlapper;
  }
  return spec;
}

Scenario build_scenario(const ScenarioSpec& spec) {
  Scenario s;
  s.spec = spec;

  // One Prng forked per concern: changing how (say) the failure script
  // draws cannot perturb the workload, so scenarios stay comparable across
  // knob tweaks.
  Prng root(spec.seed);
  Prng net_prng = root.fork(1);
  Prng wl_prng = root.fork(2);
  Prng sel_prng = root.fork(3);
  Prng place_prng = root.fork(4);
  Prng struct_prng = root.fork(5);
  Prng rate_prng = root.fork(6);
  Prng script_prng = root.fork(7);

  s.net = net::make_transit_stub(spec.topology, net_prng);
  s.workload = make_workload(s.net, spec.workload, spec.num_queries, wl_prng);

  apply_selectivity_model(spec, s.workload.catalog, sel_prng);
  apply_placement_model(spec, s, place_prng);
  switch (spec.structure) {
    case StructureModel::kRandomSpj:
    case StructureModel::kDeepChains:  // shape comes from workload params
      break;
    case StructureModel::kSharedSources:
      apply_shared_sources(spec, s, struct_prng);
      break;
    case StructureModel::kUnionFanIn:
      apply_union_fan_in(spec, s, struct_prng);
      break;
  }

  s.rate_curves =
      make_rate_curves(spec, s.workload.catalog.stream_count(), rate_prng);
  append_rate_samples(s, s.script);
  append_failure_script(spec, s, script_prng, s.script);
  return s;
}

std::vector<engine::RegistrationEvent> make_churn_script(
    const net::Network& net, const query::Catalog& catalog,
    std::size_t pool_size, std::uint64_t seed, int steady_events) {
  IFLOW_CHECK(pool_size > 0);
  using engine::RegistrationEvent;
  using engine::RegistrationEventKind;
  Prng prng(seed);
  std::vector<RegistrationEvent> script;

  // The builder's own applicability model. in-system assumes every register
  // is admitted: an unregister of a rejected registration is a benign skip
  // in the runner, never a malformed script.
  std::vector<char> in(pool_size, 0);
  net::NodeId down_node = net::kInvalidNode;
  std::pair<net::NodeId, net::NodeId> down_link{net::kInvalidNode,
                                                net::kInvalidNode};

  std::vector<std::pair<net::NodeId, net::NodeId>> link_pairs;
  {
    std::unordered_set<std::uint64_t> seen;
    for (const net::Link& l : net.links()) {
      const net::NodeId a = std::min(l.a, l.b);
      const net::NodeId b = std::max(l.a, l.b);
      if (seen.insert((static_cast<std::uint64_t>(a) << 32) | b).second) {
        link_pairs.emplace_back(a, b);
      }
    }
  }

  const auto reg = [&](std::size_t q) {
    RegistrationEvent e;
    e.kind = RegistrationEventKind::kRegister;
    e.query = q;
    in[q] = 1;
    script.push_back(e);
  };
  const auto unreg = [&](std::size_t q) {
    RegistrationEvent e;
    e.kind = RegistrationEventKind::kUnregister;
    e.query = q;
    in[q] = 0;
    script.push_back(e);
  };
  const auto members = [&](char want) {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < pool_size; ++i) {
      if (in[i] == want) out.push_back(i);
    }
    return out;
  };

  // Phase 1: ramp-up — the whole pool arrives in index order.
  for (std::size_t i = 0; i < pool_size; ++i) reg(i);

  // Phase 2: steady churn with interleaved faults and spikes.
  for (int i = 0; i < steady_events; ++i) {
    const double r = prng.uniform(0.0, 1.0);
    if (r < 0.08 && net.node_count() >= 4) {
      RegistrationEvent e;
      if (down_node == net::kInvalidNode) {
        e.kind = RegistrationEventKind::kFailNode;
        e.a = static_cast<net::NodeId>(prng.index(net.node_count()));
        down_node = e.a;
      } else {
        e.kind = RegistrationEventKind::kRestoreNode;
        e.a = down_node;
        down_node = net::kInvalidNode;
      }
      script.push_back(e);
      continue;
    }
    if (r < 0.14 && !link_pairs.empty()) {
      RegistrationEvent e;
      if (down_link.first == net::kInvalidNode) {
        const auto& p = link_pairs[prng.index(link_pairs.size())];
        e.kind = RegistrationEventKind::kFailLink;
        e.a = p.first;
        e.b = p.second;
        down_link = p;
      } else {
        e.kind = RegistrationEventKind::kRestoreLink;
        e.a = down_link.first;
        e.b = down_link.second;
        down_link = {net::kInvalidNode, net::kInvalidNode};
      }
      script.push_back(e);
      continue;
    }
    if (r < 0.24 && catalog.stream_count() > 0) {
      RegistrationEvent e;
      e.kind = RegistrationEventKind::kRateSpike;
      e.stream =
          static_cast<query::StreamId>(prng.index(catalog.stream_count()));
      e.rate = catalog.stream(e.stream).tuple_rate * prng.uniform(0.25, 4.0);
      script.push_back(e);
      continue;
    }
    const std::vector<std::size_t> present = members(1);
    const std::vector<std::size_t> absent = members(0);
    const bool leave =
        !present.empty() && (absent.empty() || prng.chance(0.5));
    if (leave) {
      unreg(present[prng.index(present.size())]);
    } else {
      reg(absent[prng.index(absent.size())]);
    }
  }

  // Phase 3: flash crowd — everything absent re-registers back to back,
  // the admission-pressure moment capacity configs are sized against.
  for (const std::size_t q : members(0)) reg(q);

  // Phase 4: drain half the pool; leftover faults heal first so the drain
  // exercises teardown on a healthy network.
  if (down_node != net::kInvalidNode) {
    RegistrationEvent e;
    e.kind = RegistrationEventKind::kRestoreNode;
    e.a = down_node;
    script.push_back(e);
  }
  if (down_link.first != net::kInvalidNode) {
    RegistrationEvent e;
    e.kind = RegistrationEventKind::kRestoreLink;
    e.a = down_link.first;
    e.b = down_link.second;
    script.push_back(e);
  }
  const std::vector<std::size_t> present = members(1);
  for (std::size_t i = 0; i < present.size() / 2; ++i) {
    unreg(present[i * 2]);
  }
  return script;
}

}  // namespace iflow::workload
