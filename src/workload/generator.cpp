#include "workload/generator.h"

#include <algorithm>

namespace iflow::workload {

Workload make_workload(const net::Network& net, const WorkloadParams& params,
                       int num_queries, Prng& prng) {
  IFLOW_CHECK(params.num_streams >= 1);
  IFLOW_CHECK(params.min_joins >= 1);
  IFLOW_CHECK(params.max_joins >= params.min_joins);
  IFLOW_CHECK_MSG(params.max_joins + 1 <= params.num_streams,
                  "queries need max_joins + 1 distinct streams");
  IFLOW_CHECK(net.node_count() > 0);

  Workload w;
  for (int s = 0; s < params.num_streams; ++s) {
    const auto node =
        static_cast<net::NodeId>(prng.index(net.node_count()));
    w.catalog.add_stream(
        "S" + std::to_string(s), node,
        prng.uniform(params.tuple_rate_min, params.tuple_rate_max),
        prng.uniform(params.tuple_width_min, params.tuple_width_max));
  }
  for (int a = 0; a < params.num_streams; ++a) {
    for (int b = a + 1; b < params.num_streams; ++b) {
      w.catalog.set_selectivity(
          static_cast<query::StreamId>(a), static_cast<query::StreamId>(b),
          prng.uniform(params.selectivity_min, params.selectivity_max));
    }
  }

  std::vector<query::StreamId> all_streams(
      static_cast<std::size_t>(params.num_streams));
  for (std::size_t i = 0; i < all_streams.size(); ++i) {
    all_streams[i] = static_cast<query::StreamId>(i);
  }
  for (int qi = 0; qi < num_queries; ++qi) {
    const int joins = static_cast<int>(
        prng.uniform_int(params.min_joins, params.max_joins));
    const std::size_t k = static_cast<std::size_t>(joins) + 1;
    prng.shuffle(all_streams);
    query::Query q;
    q.id = static_cast<query::QueryId>(qi);
    q.name = "Q" + std::to_string(qi);
    q.sources.assign(all_streams.begin(),
                     all_streams.begin() + static_cast<std::ptrdiff_t>(k));
    std::sort(q.sources.begin(), q.sources.end());
    q.sink = static_cast<net::NodeId>(prng.index(net.node_count()));
    if (params.filter_probability > 0.0) {
      q.filter_selectivity.assign(k, 1.0);
      for (std::size_t i = 0; i < k; ++i) {
        if (prng.chance(params.filter_probability)) {
          q.filter_selectivity[i] = prng.uniform(
              params.filter_selectivity_min, params.filter_selectivity_max);
        }
      }
    }
    w.queries.push_back(std::move(q));
  }
  return w;
}

}  // namespace iflow::workload
