// Uniformly random workload generation (paper §3).
//
// "Our workload was generated using a uniformly random workload generator.
//  The workload generator generated stream rates, selectivities and source
//  placements for a specified number of streams according to a uniform
//  distribution. It also generated queries with the number of joins per
//  query varying within a specified range with random sink placements."
#pragma once

#include "common/prng.h"
#include "net/network.h"
#include "query/catalog.h"
#include "query/query.h"

namespace iflow::workload {

struct WorkloadParams {
  int num_streams = 10;
  /// Joins per query, uniform in [min_joins, max_joins]; a query with j
  /// joins spans j + 1 sources.
  int min_joins = 2;
  int max_joins = 5;
  double tuple_rate_min = 10.0;     // tuples per second
  double tuple_rate_max = 100.0;
  double tuple_width_min = 50.0;    // bytes
  double tuple_width_max = 200.0;
  /// Pairwise join selectivities; the range keeps two-way join rates in the
  /// same order of magnitude as base rates, so join ordering matters.
  double selectivity_min = 0.001;
  double selectivity_max = 0.02;

  /// Probability that a query filters any given source (select-project-join
  /// workloads; 0 = pure join workloads, the paper's figures).
  double filter_probability = 0.0;
  double filter_selectivity_min = 0.1;
  double filter_selectivity_max = 0.9;
};

struct Workload {
  query::Catalog catalog;
  std::vector<query::Query> queries;
};

/// Generates a catalog (streams placed at uniformly random network nodes)
/// and `num_queries` queries over distinct random source subsets with random
/// sinks. Deterministic given the Prng.
Workload make_workload(const net::Network& net, const WorkloadParams& params,
                       int num_queries, Prng& prng);

}  // namespace iflow::workload
