// Named, seeded scenario generation layered on the uniform workload
// generator (DESIGN.md §12).
//
// The paper evaluates every optimizer against one uniformly random workload
// shape. Real deployments are not uniform: rates follow diurnal cycles and
// flash crowds, join selectivities are skewed, sources cluster
// geographically, failures correlate within a region. A Scenario bundles a
// network, a workload and the non-uniform structure as *data* — rate curves,
// a fixed failure script, a pure rate-modulation function — so the chaos
// harness, the engine and the benches can all replay exactly the same
// conditions from one (name, seed) pair.
//
// Everything is deterministic: all randomness flows through one Prng forked
// per concern, and the rate curves are pure functions of (stream, time), so
// the chaos digest of a scenario stays bitwise-identical across planner
// thread counts (the PR-2 contract).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/prng.h"
#include "engine/chaos.h"
#include "net/gtitm.h"
#include "net/network.h"
#include "workload/generator.h"

namespace iflow::workload {

/// Time-varying multiplier on a stream's catalog rate. Pure data so the
/// same curve can drive the engine (EngineConfig::rate_factor), the chaos
/// delivery twins (ChaosConfig::rate_modulation) and the planner-facing
/// kRateSpike samples in a scenario's script.
struct RateCurve {
  enum class Shape : std::uint8_t { kConstant, kDiurnal, kFlashCrowd };
  Shape shape = Shape::kConstant;

  // kDiurnal: factor(t) = 1 + amplitude * sin(2*pi*t/period + phase).
  double period_s = 40.0;
  double amplitude = 0.0;  // in [0, 1)
  double phase = 0.0;      // radians

  // kFlashCrowd: factor(t) = burst_factor inside the burst window, 1 outside.
  double burst_start_s = 0.0;
  double burst_duration_s = 0.0;
  double burst_factor = 1.0;

  double factor_at(double t) const;
};

/// How pairwise join selectivities are drawn.
enum class SelectivityModel : std::uint8_t {
  kUniform,     // the generator's uniform [min, max] draw
  kZipf,        // rank-skewed: a few hot pairs near max, a long cheap tail
  kCorrelated,  // block structure: high within stream groups, low across
};

/// Where stream sources and query sinks land.
enum class PlacementModel : std::uint8_t {
  kUniform,       // anywhere (the generator's draw)
  kGeoClustered,  // sources packed into a few stub domains, sinks elsewhere
};

/// Shape of the query set.
enum class StructureModel : std::uint8_t {
  kRandomSpj,      // the generator's random select-project-join queries
  kDeepChains,     // every query joins exactly max_joins+1 streams (8-way)
  kSharedSources,  // a family sharing a hot stream pair and a common sink
  kUnionFanIn,     // UNION ALL scripts compiled through the SQL front-end
};

/// Correlated failure script injected via engine::run_scripted.
enum class FailureProfile : std::uint8_t {
  kNone,            // injector-drawn churn (run_churn)
  kClusterOutage,   // whole stub domains crash and recover together
  kFlappingRegion,  // one domain's nodes flap down/up repeatedly
  kLossStorm,       // loss + jitter re-drawn across many links, then a storm
  kGraySlowNode,    // gray failure: a node runs slow but stays up
  kGrayLossyLink,   // gray failure: a link pair silently drops tuples
  kGrayFlapper,     // gray failure: a node cycles sick/healthy sub-epoch
};

/// Complete recipe for one scenario. `scenario_spec(name)` returns the
/// catalogue entry; all knobs stay overridable for tests.
struct ScenarioSpec {
  std::string name;
  std::uint64_t seed = 1;
  net::TransitStubParams topology;  // default small shape, see scenario.cpp
  WorkloadParams workload;
  int num_queries = 6;

  RateCurve::Shape rates = RateCurve::Shape::kConstant;
  SelectivityModel selectivity = SelectivityModel::kUniform;
  PlacementModel placement = PlacementModel::kUniform;
  StructureModel structure = StructureModel::kRandomSpj;
  FailureProfile failures = FailureProfile::kNone;

  /// kZipf: selectivity of the rank-r pair decays as 1 / r^zipf_exponent.
  double zipf_exponent = 1.1;
  /// kCorrelated / kGeoClustered: number of stream groups / stub domains
  /// the structure concentrates in.
  int clusters = 2;
  /// Failure script intensity: outages, flap cycles, or storm waves.
  int failure_rounds = 3;
};

/// A fully materialised scenario: everything the matrix driver needs to run
/// one (optimizer, scenario) cell through the chaos + delivery contracts.
struct Scenario {
  ScenarioSpec spec;
  net::Network net;
  Workload workload;
  /// Per-stream rate curves, parallel to catalog stream ids. Empty when the
  /// scenario's rates are constant.
  std::vector<RateCurve> rate_curves;
  /// Fixed failure script for run_scripted; empty = use run_churn. Scripts
  /// are valid by construction (no double-faults, everything restorable).
  std::vector<engine::ChaosEvent> script;

  /// Pure rate-modulation closure over `rate_curves` (by value, so it
  /// outlives the Scenario). Null when rates are constant.
  std::function<double(query::StreamId, double)> rate_modulation() const;
};

/// Names of the built-in catalogue, in canonical order.
const std::vector<std::string>& scenario_names();

/// Catalogue lookup; throws on unknown names.
ScenarioSpec scenario_spec(const std::string& name);

/// Materialises a spec. Deterministic: equal specs yield bitwise-identical
/// scenarios (networks, catalogs, scripts).
Scenario build_scenario(const ScenarioSpec& spec);

/// Seeded registration-churn script over a pool of `pool_size` queries for
/// engine::run_registration_script. Four phases: a ramp-up registering the
/// whole pool, `steady_events` of mixed register/unregister churn with
/// interleaved node/link faults and rate spikes, a flash-crowd burst
/// re-registering everything absent, and a half-pool drain. Fault events are
/// applicable by construction; register/unregister events assume every
/// register was admitted (the runner skips the ones admission rejected).
std::vector<engine::RegistrationEvent> make_churn_script(
    const net::Network& net, const query::Catalog& catalog,
    std::size_t pool_size, std::uint64_t seed, int steady_events = 32);

}  // namespace iflow::workload
