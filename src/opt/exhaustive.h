// Globally optimal joint plan+placement ("Optimal"/"Exhaustive" in the
// paper's figures).
//
// Searches every bushy tree, every reuse cover and every operator-to-node
// assignment over the ENTIRE network, under actual routing costs. The
// search is executed by the mask DP of plan_optimal (provably the same
// optimum as literal enumeration); the reported plans_considered uses the
// paper's exhaustive counting semantics (Lemma 1 scale).
#pragma once

#include "opt/optimizer.h"

namespace iflow::opt {

class ExhaustiveOptimizer final : public Optimizer {
 public:
  explicit ExhaustiveOptimizer(const OptimizerEnv& env) : env_(env) {}

  std::string name() const override {
    return env_.reuse ? "exhaustive+reuse" : "exhaustive";
  }
  OptimizeResult optimize(const query::Query& q) override;

 private:
  OptimizerEnv env_;
};

}  // namespace iflow::opt
