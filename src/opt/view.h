// View inputs and deployment stitching shared by the multi-level
// algorithms.
//
// The hierarchical optimizers plan a query in pieces (per level, per
// cluster) and stitch the per-piece planner outputs into one final
// Deployment. A ViewInput is a planner leaf unit that may already be backed
// by something in the final deployment (an operator placed by an earlier
// piece, or a unit slot already imported), in which case its `final_code`
// identifies it there.
#pragma once

#include <vector>

#include "advert/registry.h"
#include "opt/search/planner.h"

namespace iflow::opt {

inline constexpr int kNoCode = std::numeric_limits<int>::min();

/// Sentinel returned by plan_view_recursive when some view cannot be planned
/// (e.g. a source priced out of the hierarchy by a failure). Distinct from
/// every real child code: ops are >= 0 and unit codes ~u never reach
/// INT_MIN + 1 for realistic unit counts.
inline constexpr int kInfeasibleCode = std::numeric_limits<int>::min() + 1;

/// Planner leaf unit plus its identity in the final deployment, if any.
struct ViewInput {
  query::LeafUnit unit;
  int final_code = kNoCode;
};

/// Appends a per-piece planner result to the final deployment. `inputs` is
/// parallel to the PlannerInput::units the piece was planned with; units
/// that already had a final code are wired to it, fresh ones are imported.
/// Returns the final child code of the piece's producer (root op or single
/// unit).
int import_deployment(query::Deployment& final_deployment,
                      const PlannerResult& piece,
                      const std::vector<ViewInput>& inputs);

/// Collects the leaf units available for a query: one base unit per query
/// source (at its catalog source node) plus, when `registry` is non-null,
/// every reusable derived stream whose provider passes `scope`
/// (null scope = anywhere).
std::vector<query::LeafUnit> collect_units(
    const query::RateModel& rates, const advert::Registry* registry,
    const std::function<bool(net::NodeId)>& scope);

}  // namespace iflow::opt
