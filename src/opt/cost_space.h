// 3-D cost space (Pietzuch et al., ICDE'06).
//
// The Relaxation placement algorithm reasons in a low-dimensional Euclidean
// space whose distances approximate network costs. We build the embedding
// with spring iterations (each node pair pulls/pushes its endpoints toward
// the target routing cost), which is the decentralised construction the
// original system used (Vivaldi-style), then let operators move freely in
// the space and snap them back to the nearest physical node.
#pragma once

#include <array>

#include "common/prng.h"
#include "net/routing.h"

namespace iflow::opt {

using Point3 = std::array<double, 3>;

class CostSpace {
 public:
  /// Embeds all nodes. More iterations = lower stress; the default is
  /// enough for the topologies used in the experiments.
  static CostSpace build(const net::RoutingTables& rt, Prng& prng,
                         int iterations = 100);

  const Point3& position(net::NodeId n) const;

  static double distance(const Point3& a, const Point3& b);

  /// Physical node closest to a free point (operator snap-back).
  net::NodeId nearest_node(const Point3& p) const;

  /// Mean relative error of embedded vs routing distances (diagnostics).
  double stress(const net::RoutingTables& rt) const;

 private:
  std::vector<Point3> pos_;
};

}  // namespace iflow::opt
