#include "opt/view_planner.h"

#include <algorithm>

namespace iflow::opt {

net::NodeId node_of_code(const query::Deployment& d, int code) {
  if (query::child_is_unit(code)) {
    return d.units[static_cast<std::size_t>(query::child_unit_index(code))]
        .location;
  }
  return d.ops[static_cast<std::size_t>(code)].node;
}

int plan_view_recursive(const OptimizerEnv& env, int level,
                        std::size_t cluster_index,
                        const std::vector<ViewInput>& inputs,
                        query::Mask target, net::NodeId delivery,
                        const query::RateModel& rates, query::QueryId qid,
                        query::Deployment& final_deployment,
                        std::vector<ViewPlanStats>& stats, bool refine,
                        double delivery_bytes_rate) {
  const cluster::Hierarchy& h = *env.hierarchy;
  const net::RoutingTables& rt = *env.routing;
  const cluster::Cluster& cl = h.level(level)[cluster_index];

  PlannerInput in;
  in.rates = &rates;
  in.units.reserve(inputs.size());
  for (const ViewInput& vi : inputs) in.units.push_back(vi.unit);
  in.target = target;
  in.delivery = delivery;
  in.sites = restrict_sites(env, cl.members);
  // Physical-level refinement can price through the tiered sparse oracle
  // (leaf sketches instead of exact routing rows); coarser levels are
  // already Theorem-1 estimates by construction.
  in.dist = ((level == 1 && env.sparse != nullptr)
                 ? DistanceOracle::sparse(*env.sparse)
                 : DistanceOracle::hierarchy(h, level))
                .with_node_penalty(env.node_penalty);
  in.query_id = qid;
  if (delivery != net::kInvalidNode) {
    in.delivery_bytes_rate = delivery_bytes_rate;
  }

  const PlannerResult res = plan_optimal(in, workspace_for(env));
  // Infeasible views (inputs cannot cover the target, or every placement is
  // priced at infinity by a partition) propagate a sentinel instead of
  // throwing; the optimizer surfaces feasible = false.
  if (!res.feasible) return kInfeasibleCode;
  auto& stat = stats[static_cast<std::size_t>(level - 1)];
  stat.plans += res.plans_considered;
  for (const query::DeployedOp& op : res.deployment.ops) {
    stat.dispatch_ms =
        std::max(stat.dispatch_ms, rt.delay_ms(cl.coordinator, op.node));
  }

  if (level == 1 || res.deployment.ops.empty() || !refine) {
    // Physical placement reached (or the target is a single reused unit, or
    // the caller wants the coarse coordinator-level placement).
    return import_deployment(final_deployment, res, inputs);
  }

  // Partition the level's operators into views: maximal connected groups of
  // ops assigned to the same member (= the same underlying cluster).
  const query::Deployment& dep = res.deployment;
  const std::size_t n_ops = dep.ops.size();
  std::vector<int> parent(n_ops, -1);
  for (std::size_t i = 0; i < n_ops; ++i) {
    for (int child : {dep.ops[i].left, dep.ops[i].right}) {
      if (!query::child_is_unit(child)) {
        parent[static_cast<std::size_t>(child)] = static_cast<int>(i);
      }
    }
  }
  std::vector<int> comp(n_ops, -1);
  int n_comp = 0;
  for (std::size_t i = n_ops; i-- > 0;) {  // parents (higher index) first
    const int p = parent[i];
    if (p >= 0 &&
        dep.ops[static_cast<std::size_t>(p)].node == dep.ops[i].node) {
      comp[i] = comp[static_cast<std::size_t>(p)];
    } else {
      comp[i] = n_comp++;
    }
  }

  // The top op of each component (the arena is topological, so the last op
  // of a component is its root).
  std::vector<int> comp_top(static_cast<std::size_t>(n_comp), -1);
  for (std::size_t i = 0; i < n_ops; ++i) {
    comp_top[static_cast<std::size_t>(comp[i])] = static_cast<int>(i);
  }

  // Refine views children-first so every consumer knows its inputs'
  // physical locations.
  std::vector<int> comp_code(static_cast<std::size_t>(n_comp), kNoCode);
  auto plan_component = [&](auto&& self, int c) -> int {
    if (comp_code[static_cast<std::size_t>(c)] != kNoCode) {
      return comp_code[static_cast<std::size_t>(c)];
    }
    std::vector<ViewInput> sub_inputs;
    for (std::size_t i = 0; i < n_ops; ++i) {
      if (comp[i] != c) continue;
      for (int child : {dep.ops[i].left, dep.ops[i].right}) {
        if (query::child_is_unit(child)) {
          const auto j =
              static_cast<std::size_t>(query::child_unit_index(child));
          sub_inputs.push_back(
              inputs[static_cast<std::size_t>(res.unit_sources[j])]);
        } else if (comp[static_cast<std::size_t>(child)] != c) {
          const int code = self(self, comp[static_cast<std::size_t>(child)]);
          if (code == kInfeasibleCode) return kInfeasibleCode;
          const query::DeployedOp& co =
              dep.ops[static_cast<std::size_t>(child)];
          ViewInput vi;
          vi.unit.mask = co.mask;
          vi.unit.location = node_of_code(final_deployment, code);
          vi.unit.bytes_rate = co.out_bytes_rate;
          vi.unit.tuple_rate = co.out_tuple_rate;
          vi.final_code = code;
          sub_inputs.push_back(vi);
        }
      }
    }
    const query::DeployedOp& top = dep.ops[static_cast<std::size_t>(
        comp_top[static_cast<std::size_t>(c)])];
    const bool is_root =
        comp_top[static_cast<std::size_t>(c)] == static_cast<int>(n_ops) - 1;
    const net::NodeId sub_delivery = is_root ? delivery : net::kInvalidNode;
    const std::size_t sub_cluster = h.cluster_of(top.node, level - 1);
    const int code = plan_view_recursive(
        env, level - 1, sub_cluster, sub_inputs, top.mask, sub_delivery,
        rates, qid, final_deployment, stats, /*refine=*/true,
        is_root ? delivery_bytes_rate : -1.0);
    if (code == kInfeasibleCode) return kInfeasibleCode;
    comp_code[static_cast<std::size_t>(c)] = code;
    return code;
  };
  return plan_component(plan_component,
                        comp[static_cast<std::size_t>(n_ops - 1)]);
}

}  // namespace iflow::opt
