#include "opt/plan_then_deploy.h"

#include <cmath>

#include "opt/static_plan.h"
#include "opt/view.h"
#include "query/rates.h"
#include "verify/validator.h"

namespace iflow::opt {

OptimizeResult PlanThenDeployOptimizer::optimize(const query::Query& q) {
  IFLOW_CHECK(env_.catalog && env_.network && env_.routing);
  const net::RoutingTables& rt = *env_.routing;
  query::RateModel rates(*env_.catalog, q, env_.projection_factor);

  // Plan phase: network- and reuse-oblivious (statistics only); deployment
  // phase may substitute derived streams that exactly match subtrees.
  const std::vector<query::LeafUnit> bases =
      collect_units(rates, nullptr, nullptr);
  StaticPlan plan = choose_static_plan(rates, bases);
  IFLOW_CHECK(plan.feasible);
  if (env_.reuse && env_.registry != nullptr) {
    std::vector<query::LeafUnit> deriveds;
    for (const query::LeafUnit& u :
         collect_units(rates, env_.registry, nullptr)) {
      if (u.derived) deriveds.push_back(u);
    }
    plan = apply_subtree_reuse(std::move(plan), rates, deriveds, q.sink, rt);
  }

  const std::vector<net::NodeId> sites = all_sites(env_);
  const TreePlacement placement = place_tree_optimal(
      plan.tree, plan.units, rates, q.sink, sites,
      planning_oracle(env_), delivery_rate_for(q, rates),
      workspace_for(env_));
  OptimizeResult out;
  if (!placement.feasible) return out;
  out.feasible = true;
  out.deployment = assemble_deployment(plan.tree, plan.units, rates,
                                       placement.op_nodes, q.sink, q.id);
  out.deployment.aggregate = q.aggregate;
  out.actual_cost = query::deployment_cost(out.deployment, rt);
  // Under a partition the placement can price every assignment at infinity
  // yet still pick one — feasible results always have finite cost.
  if (!std::isfinite(out.actual_cost)) {
    OptimizeResult infeasible;
    infeasible.feasible = false;
    return infeasible;
  }
  // Sparse-oracle (or health-penalized) placements optimise an estimate;
  // report the exact cost.
  out.planned_cost = env_.sparse != nullptr || env_.node_penalty != nullptr
                         ? out.actual_cost
                         : placement.cost;
  // Plan phase enumerates covers × trees; the deployment phase, done
  // exhaustively, examines |N|^ops assignments of the fixed tree.
  out.plans_considered =
      plan.plans_examined +
      std::pow(static_cast<double>(sites.size()),
               static_cast<double>(plan.tree.internal_count()));
  out.levels_used = 1;
  out.deploy_time_ms = out.plans_considered * env_.plan_eval_us / 1000.0;
  IFLOW_VERIFY_RESULT(out, env_, q);
  return out;
}

}  // namespace iflow::opt
