#include "opt/bottom_up.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <unordered_set>

#include "opt/view_planner.h"
#include "query/rates.h"
#include "verify/validator.h"

namespace iflow::opt {

namespace {

int popcount(query::Mask m) { return std::popcount(m); }

}  // namespace

OptimizeResult BottomUpOptimizer::optimize(const query::Query& q) {
  IFLOW_CHECK(env_.catalog && env_.network && env_.routing && env_.hierarchy);
  const cluster::Hierarchy& h = *env_.hierarchy;
  const net::RoutingTables& rt = *env_.routing;
  query::RateModel rates(*env_.catalog, q, env_.projection_factor);
  const query::Mask full = rates.full();

  query::Deployment final_deployment;
  final_deployment.query = q.id;
  final_deployment.sink = q.sink;

  OptimizeResult out;
  query::Mask remaining = full;
  ViewInput partial;      // running joined result; valid when covered != 0
  query::Mask covered = 0;
  std::vector<ViewPlanStats> stats(static_cast<std::size_t>(h.height()));

  for (int level = 1; level <= h.height(); ++level) {
    // The cluster on the sink's coordinator chain at this level and the
    // physical nodes beneath it.
    const std::size_t ci = h.cluster_of(h.representative(q.sink, level), level);
    const cluster::Cluster& cl = h.level(level)[ci];
    std::unordered_set<net::NodeId> scope;
    for (net::NodeId m : cl.members) {
      for (net::NodeId p : h.underlying(m, level)) scope.insert(p);
    }
    const auto in_scope = [&scope](net::NodeId n) {
      return scope.count(n) != 0;
    };

    // Newly local base sources.
    query::Mask local_bases = 0;
    for (int i = 0; i < rates.k(); ++i) {
      const query::Mask bit = query::Mask{1} << i;
      if ((remaining & bit) && in_scope(rates.source_node(i))) {
        local_bases |= bit;
      }
    }
    // Reusable derived streams advertised within the cluster, restricted to
    // the remaining sources (the partial result must stay a planning unit).
    std::vector<query::LeafUnit> deriveds;
    if (env_.reuse && env_.registry != nullptr) {
      for (const query::LeafUnit& u :
           collect_units(rates, env_.registry,
                         [&](net::NodeId n) { return in_scope(n); })) {
        if (u.derived && (u.mask & ~remaining) == 0) deriveds.push_back(u);
      }
    }
    // A derived stream can extend coverage past local bases, but only if its
    // full mask stays disjoint from other accepted extenders (otherwise no
    // disjoint cover exists for the extra bits).
    std::sort(deriveds.begin(), deriveds.end(),
              [](const query::LeafUnit& a, const query::LeafUnit& b) {
                return popcount(a.mask) > popcount(b.mask);
              });
    query::Mask extra = 0;
    query::Mask accepted_extenders = 0;
    for (const query::LeafUnit& d : deriveds) {
      const query::Mask e = d.mask & ~(local_bases | covered);
      if (e == 0) continue;
      if ((d.mask & accepted_extenders) != 0) continue;
      extra |= e;
      accepted_extenders |= d.mask;
    }

    const query::Mask target = covered | local_bases | extra;
    if (target == covered) continue;  // nothing new at this level

    // Assemble the planner units: the partial result (pinned), newly local
    // bases, and derived options inside the new coverage.
    std::vector<ViewInput> inputs;
    if (covered != 0) inputs.push_back(partial);
    for (int i = 0; i < rates.k(); ++i) {
      const query::Mask bit = query::Mask{1} << i;
      if ((local_bases & bit) == 0) continue;
      ViewInput vi;
      vi.unit.mask = bit;
      vi.unit.location = rates.source_node(i);
      vi.unit.tuple_rate = rates.tuple_rate(bit);
      vi.unit.bytes_rate = rates.bytes_rate(bit);
      inputs.push_back(vi);
    }
    for (const query::LeafUnit& d : deriveds) {
      if ((d.mask & ~(target & ~covered)) != 0) continue;
      inputs.push_back(ViewInput{d, kNoCode});
    }

    // Plan the level's consolidated view within the chain cluster; views
    // assigned to member clusters are refined inside them (the member nodes
    // ARE clusters at levels >= 2).
    const net::NodeId delivery =
        (target == full) ? q.sink : net::kInvalidNode;
    const int code = plan_view_recursive(
        env_, level, ci, inputs, target, delivery, rates, q.id,
        final_deployment, stats, refine_views_,
        (target == full) ? delivery_rate_for(q, rates) : -1.0);
    if (code == kInfeasibleCode) {
      out.feasible = false;
      return out;
    }

    out.levels_used = level;
    // Control latency: the query climbed one more level of the chain.
    if (level > 1) {
      out.deploy_time_ms += rt.delay_ms(h.representative(q.sink, level - 1),
                                        h.representative(q.sink, level));
    }

    covered = target;
    remaining = full & ~covered;
    partial.unit.mask = covered;
    partial.unit.location = node_of_code(final_deployment, code);
    partial.unit.tuple_rate = rates.tuple_rate(covered);
    partial.unit.bytes_rate = rates.bytes_rate(covered);
    partial.final_code = code;
    if (covered == full) break;
  }
  if (covered != full) {
    // Some source never became local — it is outside the hierarchy (failed
    // host) or outside the sink's chain entirely. Not an assertion: report
    // the query as currently unplannable.
    out.feasible = false;
    return out;
  }
  for (const ViewPlanStats& s : stats) {
    out.plans_considered += s.plans;
    out.deploy_time_ms += s.dispatch_ms + s.plans * env_.plan_eval_us / 1000.0;
  }

  final_deployment.aggregate = q.aggregate;
  query::validate_deployment(final_deployment);
  out.feasible = true;
  out.deployment = std::move(final_deployment);
  out.actual_cost = query::deployment_cost(out.deployment, rt);
  // As in Top-Down: refined sub-views never price their outgoing edge, so
  // under a partition the assembled deployment can be unroutable even
  // though every level's plan was feasible. Feasible implies finite cost.
  if (!std::isfinite(out.actual_cost)) {
    OptimizeResult infeasible;
    infeasible.feasible = false;
    return infeasible;
  }
  out.planned_cost = out.actual_cost;
  IFLOW_VERIFY_RESULT(out, env_, q);
  return out;
}

}  // namespace iflow::opt
