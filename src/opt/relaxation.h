// The Relaxation baseline (Pietzuch et al., "Network-aware operator
// placement for stream-processing systems", ICDE'06) — a phased
// plan-then-deploy heuristic (paper §3.3, Figs 2 and 8).
//
// Phase 1 fixes the join tree from stream statistics. Phase 2 places the
// tree's operators in a 3-D cost space: leaves and the sink are pinned at
// their nodes' embedded coordinates, operators iteratively relax to the
// rate-weighted centroid of their tree neighbours (spring equilibrium), and
// each operator finally snaps to the nearest physical node.
#pragma once

#include "opt/cost_space.h"
#include "opt/optimizer.h"

namespace iflow::opt {

class RelaxationOptimizer final : public Optimizer {
 public:
  /// `seed` controls the embedding initialisation; `relax_iterations` the
  /// per-operator spring iterations and `embed_iterations` the cost-space
  /// construction sweeps. The paper's experiment used 4 iterations for both
  /// (§3.3); the defaults here are generous so the baseline is as strong as
  /// it can be — figure benches pass the paper's settings.
  RelaxationOptimizer(const OptimizerEnv& env, std::uint64_t seed,
                      int relax_iterations = 40, int embed_iterations = 100);

  std::string name() const override {
    return env_.reuse ? "relaxation+reuse" : "relaxation";
  }
  OptimizeResult optimize(const query::Query& q) override;

 private:
  OptimizerEnv env_;
  int relax_iterations_;
  CostSpace space_;
};

}  // namespace iflow::opt
