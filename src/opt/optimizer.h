// Common interface of all query optimizers.
//
// An optimizer turns a Query into a Deployment. Implementations:
//   * ExhaustiveOptimizer — the optimal joint plan+placement (paper's "DP"
//     baseline), searching the whole network;
//   * TopDownOptimizer / BottomUpOptimizer — the paper's hierarchical
//     algorithms (§2.2, §2.3);
//   * PlanThenDeployOptimizer — phased: selectivity-based join order, then
//     optimal placement of that fixed tree (Fig 1a / Fig 2);
//   * RelaxationOptimizer — Pietzuch et al.'s cost-space relaxation;
//   * InNetworkOptimizer — Ahmad & Cetintemel's zone-based placement.
#pragma once

#include <memory>
#include <string>

#include "advert/registry.h"
#include "cluster/hierarchy.h"
#include "net/network.h"
#include "net/routing.h"
#include "opt/search/distance_oracle.h"
#include "query/catalog.h"
#include "query/plan.h"
#include "query/query.h"

namespace iflow::opt {

class PlanWorkspace;

/// Shared, borrowed state every optimizer plans against. All pointers are
/// non-owning and must outlive the optimizer; `hierarchy` is only required
/// by the hierarchical algorithms and `registry` only when `reuse` is on.
struct OptimizerEnv {
  const query::Catalog* catalog = nullptr;
  const net::Network* network = nullptr;
  const net::RoutingTables* routing = nullptr;
  const cluster::Hierarchy* hierarchy = nullptr;
  advert::Registry* registry = nullptr;
  bool reuse = true;
  /// Width retained by the projection after a join (paper queries project
  /// a subset of columns).
  double projection_factor = 1.0;
  /// Modeled CPU time to evaluate one candidate plan, for the deployment
  /// time model (Fig 10).
  double plan_eval_us = 100.0;
  /// Nodes available for in-network processing (Figure 3 marks a subset of
  /// nodes as processing-capable). Empty = every node may host operators.
  /// Sources and sinks need not be processing nodes. When a search scope
  /// (cluster, zone) contains no processing node, the scope falls back to
  /// all of its nodes so planning never becomes infeasible.
  std::vector<net::NodeId> processing_nodes;
  /// Hosts the current search must avoid (degraded admission plans around
  /// saturated nodes; failed/overloaded hosts use the complement form in
  /// `processing_nodes`). Sorted. Same fallback contract as
  /// `processing_nodes`: a scope whose every node is excluded keeps all of
  /// its nodes rather than going infeasible — the validator's capacity and
  /// exclusion invariants are the backstop, not the search scope.
  std::vector<net::NodeId> excluded_sites;
  /// Planner scratch + worker pool shared by every search this environment
  /// issues. Non-owning; null = the thread-local default workspace (see
  /// workspace_for).
  PlanWorkspace* workspace = nullptr;
  /// Scale path: when set, whole-network searches price candidates through
  /// this tiered oracle instead of exact routing rows (see planning_oracle).
  /// Optimizers that plan sparsely report planned_cost = actual_cost, since
  /// their internal objective is an estimate the validator should not be
  /// asked to reproduce. Non-owning.
  const SparseOracle* sparse = nullptr;
  /// Health plane: multiplicative per-node pricing penalty (indexed by
  /// NodeId, every entry >= 1, healthy = 1) applied to the planning
  /// oracles' distances, so searches steer around suspect elements while
  /// routing stays unchanged. Like `sparse`, a penalized objective is not
  /// the true deployed cost, so optimizers planning under it report
  /// planned_cost = actual_cost. Non-owning; null = no penalty.
  const std::vector<double>* node_penalty = nullptr;
};

/// The distance source whole-network searches should plan with: the sparse
/// tiered oracle when the environment configures one, exact routing costs
/// otherwise.
DistanceOracle planning_oracle(const OptimizerEnv& env);

/// Restricts `sites` to the environment's processing nodes; returns `sites`
/// unchanged when no restriction is configured or nothing would remain.
std::vector<net::NodeId> restrict_sites(const OptimizerEnv& env,
                                        std::vector<net::NodeId> sites);

/// Every network node as a candidate site list, already passed through
/// restrict_sites. The whole-network optimizers (exhaustive, phased,
/// relaxation snap, random) all start from this set.
std::vector<net::NodeId> all_sites(const OptimizerEnv& env);

/// The environment's workspace, or the thread-local default when none is
/// configured.
PlanWorkspace& workspace_for(const OptimizerEnv& env);

/// Byte rate of the root→sink edge: the raw full-join rate, or the
/// aggregate output rate when the query aggregates (signalled as -1 when no
/// aggregation, so planners fall back to per-branch raw rates).
double delivery_rate_for(const query::Query& q, const query::RateModel& rates);

struct OptimizeResult {
  bool feasible = false;
  query::Deployment deployment;
  /// Cost as estimated by the algorithm's own (possibly approximate)
  /// oracle.
  double planned_cost = 0.0;
  /// True marginal communication cost per unit time, evaluated against the
  /// actual routing tables.
  double actual_cost = 0.0;
  /// Exhaustive-semantics count of plan+deployment combinations examined.
  double plans_considered = 0.0;
  /// Modeled wall-clock deployment time: control messages along the
  /// hierarchy plus plan evaluation (Fig 10).
  double deploy_time_ms = 0.0;
  /// Hierarchy levels that participated in planning.
  int levels_used = 0;
  /// Optional, parallel to `deployment.ops`: the candidate-node scope each
  /// operator was placed from, BEFORE the processing-node restriction.
  /// Optimizers whose scopes the verifier cannot reconstruct from the
  /// environment (e.g. in-network's zone-restricted data paths) record them
  /// here so the restriction — including its documented fallback — stays
  /// machine-checkable. Empty = scopes derivable from env (whole network or
  /// hierarchy clusters).
  std::vector<std::vector<net::NodeId>> op_scopes;
};

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual std::string name() const = 0;
  virtual OptimizeResult optimize(const query::Query& q) = 0;
};

/// Incremental multi-query driver: optimizes each submitted query, records
/// its operators as derived-stream advertisements (when reuse is enabled)
/// and accumulates the cumulative deployed cost — the quantity plotted by
/// the paper's multi-query figures.
class Session {
 public:
  Session(const OptimizerEnv& env, std::unique_ptr<Optimizer> optimizer)
      : env_(env), optimizer_(std::move(optimizer)) {}

  OptimizeResult submit(const query::Query& q);

  double cumulative_cost() const { return cumulative_cost_; }
  double cumulative_plans() const { return cumulative_plans_; }
  Optimizer& optimizer() { return *optimizer_; }

 private:
  OptimizerEnv env_;
  std::unique_ptr<Optimizer> optimizer_;
  double cumulative_cost_ = 0.0;
  double cumulative_plans_ = 0.0;
};

}  // namespace iflow::opt
