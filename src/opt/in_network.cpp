#include "opt/in_network.h"

#include <cmath>
#include <limits>

#include "cluster/kmedoids.h"
#include "opt/static_plan.h"
#include "opt/view.h"
#include "query/rates.h"
#include "verify/validator.h"

namespace iflow::opt {

InNetworkOptimizer::InNetworkOptimizer(const OptimizerEnv& env,
                                       std::uint64_t seed, int zones)
    : env_(env) {
  IFLOW_CHECK(env.network && env.routing);
  IFLOW_CHECK(zones >= 1);
  const DistanceOracle dist = planning_oracle(env);
  std::vector<std::uint32_t> items(env.network->node_count());
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i] = static_cast<std::uint32_t>(i);
  }
  Prng prng(seed);
  const cluster::KMedoidsResult km = cluster::k_medoids(
      items, zones, items.size(),
      [&dist](std::uint32_t a, std::uint32_t b) { return dist(a, b); }, prng);
  zone_of_.assign(items.size(), -1);
  for (std::size_t z = 0; z < km.clusters.size(); ++z) {
    zones_.emplace_back(km.clusters[z].begin(), km.clusters[z].end());
    for (auto n : km.clusters[z]) zone_of_[n] = static_cast<int>(z);
  }
}

OptimizeResult InNetworkOptimizer::optimize(const query::Query& q) {
  IFLOW_CHECK(env_.catalog && env_.network && env_.routing);
  const net::RoutingTables& rt = *env_.routing;
  // Candidate pricing goes through the planning oracle; the data-path walk
  // (cost_path) is structural and stays on the exact tables.
  const DistanceOracle dist = planning_oracle(env_);
  query::RateModel rates(*env_.catalog, q, env_.projection_factor);

  const std::vector<query::LeafUnit> bases =
      collect_units(rates, nullptr, nullptr);
  StaticPlan plan = choose_static_plan(rates, bases);
  IFLOW_CHECK(plan.feasible);
  if (env_.reuse && env_.registry != nullptr) {
    std::vector<query::LeafUnit> deriveds;
    for (const query::LeafUnit& u :
         collect_units(rates, env_.registry, nullptr)) {
      if (u.derived) deriveds.push_back(u);
    }
    plan = apply_subtree_reuse(std::move(plan), rates, deriveds, q.sink, rt);
  }
  const query::JoinTree& tree = plan.tree;

  // Greedy bottom-up: each operator goes to the cheapest node within the
  // zone of its heaviest input (arena order is topological, so children are
  // already placed).
  std::vector<net::NodeId> op_nodes(tree.nodes.size(), net::kInvalidNode);
  // Zone-restricted path scopes are private to this optimizer, so each op's
  // pre-restriction candidate set is recorded for the verifier (arena order
  // matches assemble_deployment's op order).
  std::vector<std::vector<net::NodeId>> op_scopes;
  double examined = plan.plans_examined;
  auto child_info = [&](int child) {
    const query::TreeNode& cn = tree.nodes[static_cast<std::size_t>(child)];
    if (cn.unit >= 0) {
      const query::LeafUnit& u = plan.units[static_cast<std::size_t>(cn.unit)];
      return std::pair{u.location, u.bytes_rate};
    }
    return std::pair{op_nodes[static_cast<std::size_t>(child)],
                     rates.bytes_rate(cn.mask)};
  };
  for (std::size_t v = 0; v < tree.nodes.size(); ++v) {
    const query::TreeNode& n = tree.nodes[v];
    if (n.unit >= 0) continue;
    const auto [lloc, lrate] = child_info(n.left);
    const auto [rloc, rrate] = child_info(n.right);
    const net::NodeId anchor = (lrate >= rrate) ? lloc : rloc;
    const int zone = zone_of_[anchor];
    const bool is_root = (static_cast<int>(v) == tree.root);
    double out_rate = rates.bytes_rate(n.mask);
    if (is_root) {
      const double dr = delivery_rate_for(q, rates);
      if (dr >= 0.0) out_rate = dr;
    }
    // In-network placement: operators sit ON the data path from the
    // heaviest input toward the sink, within the input's zone.
    std::vector<net::NodeId> candidates;
    for (net::NodeId hop : rt.cost_path(anchor, q.sink)) {
      if (zone_of_[hop] == zone) candidates.push_back(hop);
    }
    if (candidates.empty()) candidates.push_back(anchor);
    op_scopes.push_back(candidates);
    candidates = restrict_sites(env_, std::move(candidates));
    double best = std::numeric_limits<double>::infinity();
    net::NodeId chosen = net::kInvalidNode;
    for (net::NodeId cand : candidates) {
      double c = lrate * dist(lloc, cand) + rrate * dist(rloc, cand);
      if (is_root) c += out_rate * dist(cand, q.sink);
      if (c < best) {
        best = c;
        chosen = cand;
      }
      examined += 1.0;
    }
    if (chosen == net::kInvalidNode) {
      // Every candidate priced at infinity (inputs unreachable): report
      // infeasible instead of assembling a deployment with a hole in it.
      OptimizeResult out;
      out.feasible = false;
      return out;
    }
    op_nodes[v] = chosen;
  }

  OptimizeResult out;
  out.feasible = true;
  out.deployment = assemble_deployment(tree, plan.units, rates, op_nodes,
                                       q.sink, q.id);
  out.deployment.aggregate = q.aggregate;
  out.actual_cost = query::deployment_cost(out.deployment, rt);
  // The per-operator chooser prices inputs, not the final delivery hop, so
  // a partitioned sink can still leave the whole at infinity.
  if (!std::isfinite(out.actual_cost)) {
    OptimizeResult infeasible;
    infeasible.feasible = false;
    return infeasible;
  }
  out.planned_cost = out.actual_cost;
  out.plans_considered = examined;
  out.levels_used = 1;
  out.op_scopes = std::move(op_scopes);
  out.deploy_time_ms = examined * env_.plan_eval_us / 1000.0;
  IFLOW_VERIFY_RESULT(out, env_, q);
  return out;
}

}  // namespace iflow::opt
