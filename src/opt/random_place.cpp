#include "opt/random_place.h"

#include <cmath>

#include "opt/static_plan.h"
#include "opt/view.h"
#include "query/rates.h"
#include "verify/validator.h"

namespace iflow::opt {

OptimizeResult RandomPlacementOptimizer::optimize(const query::Query& q) {
  IFLOW_CHECK(env_.catalog && env_.network && env_.routing);
  const net::RoutingTables& rt = *env_.routing;
  query::RateModel rates(*env_.catalog, q, env_.projection_factor);

  const std::vector<query::LeafUnit> bases =
      collect_units(rates, nullptr, nullptr);
  const StaticPlan plan = choose_static_plan(rates, bases);
  IFLOW_CHECK(plan.feasible);

  const std::vector<net::NodeId> sites = all_sites(env_);

  std::vector<net::NodeId> op_nodes(plan.tree.nodes.size(),
                                    net::kInvalidNode);
  double ops = 0.0;
  for (std::size_t v = 0; v < plan.tree.nodes.size(); ++v) {
    if (plan.tree.nodes[v].unit >= 0) continue;
    op_nodes[v] = prng_.pick(sites);
    ops += 1.0;
  }

  OptimizeResult out;
  out.feasible = true;
  out.deployment = assemble_deployment(plan.tree, plan.units, rates, op_nodes,
                                       q.sink, q.id);
  out.deployment.aggregate = q.aggregate;
  out.actual_cost = query::deployment_cost(out.deployment, rt);
  // Random draws ignore reachability; feasible results must price finite.
  if (!std::isfinite(out.actual_cost)) {
    OptimizeResult infeasible;
    infeasible.feasible = false;
    return infeasible;
  }
  out.planned_cost = out.actual_cost;
  out.plans_considered = plan.plans_examined + ops;  // one draw per operator
  out.levels_used = 1;
  out.deploy_time_ms = out.plans_considered * env_.plan_eval_us / 1000.0;
  IFLOW_VERIFY_RESULT(out, env_, q);
  return out;
}

}  // namespace iflow::opt
