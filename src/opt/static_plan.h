// Network-unaware ("compile-time") query planning, shared by the phased
// baselines (Fig 1a): the join tree is chosen purely from stream statistics
// — minimising the total intermediate tuple rate — before any placement
// decision. When reuse is enabled the plan may substitute advertised
// derived streams for subtrees (saving their computation), but still
// without looking at the network.
#pragma once

#include "opt/view.h"
#include "query/join_tree.h"

namespace iflow::opt {

struct StaticPlan {
  bool feasible = false;
  query::JoinTree tree;                 // leaves index `units`
  std::vector<query::LeafUnit> units;   // the chosen cover
  double intermediate_tuple_rate = 0.0; // plan objective
  double plans_examined = 0.0;          // covers × trees enumerated
};

/// Enumerates every cover of the query's sources by the available units and
/// every bushy tree over each cover; returns the combination minimising the
/// summed tuple rate of intermediate results. Phased baselines pass base
/// units only — their plan phase is oblivious to deployed operators.
StaticPlan choose_static_plan(const query::RateModel& rates,
                              const std::vector<query::LeafUnit>& units);

/// Deployment-phase reuse for the phased baselines: a derived stream can be
/// substituted only where it EXACTLY matches a subtree of the already-fixed
/// join tree (the paper's point: "the pre-defined join order may prevent us
/// from reusing the results of an already deployed join"). Matching
/// subtrees are pruned to leaves; among multiple providers of the same
/// stream set, the one cheapest to reach from the sink is picked.
StaticPlan apply_subtree_reuse(StaticPlan plan, const query::RateModel& rates,
                               const std::vector<query::LeafUnit>& deriveds,
                               net::NodeId sink, const net::RoutingTables& rt);

}  // namespace iflow::opt
