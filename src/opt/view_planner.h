// Recursive per-cluster view planning — the shared machinery of the two
// hierarchical algorithms.
//
// plan_view_recursive() plans `target` from `inputs` within one cluster at
// a given level: it runs the exhaustive-equivalent search over the
// cluster's members under the level's Theorem-1 cost estimates, partitions
// the chosen operators into per-member views, and recursively refines each
// view inside that member's underlying cluster, until operators land on
// physical nodes at level 1. Views are refined children-first so every view
// knows the final physical locations of its inputs.
//
// Top-Down is a single call at the top level; Bottom-Up issues one call per
// level of the sink's coordinator chain as sources become local.
#pragma once

#include "opt/optimizer.h"
#include "opt/view.h"

namespace iflow::opt {

/// Per-level accounting of a recursive view plan: plans examined by
/// coordinators at that level and the slowest coordinator→site control
/// dispatch.
struct ViewPlanStats {
  double plans = 0.0;
  double dispatch_ms = 0.0;
};

/// See file comment. `stats` must have one slot per hierarchy level.
/// Returns the final child code (op index or ~unit) of the producer of
/// `target` within `final_deployment`. With `refine` false the per-member
/// descent is skipped and operators are pinned directly to the cluster's
/// member nodes — the fast, coarse variant (Bottom-Up's quick-deployment
/// mode; see the ablation bench).
int plan_view_recursive(const OptimizerEnv& env, int level,
                        std::size_t cluster_index,
                        const std::vector<ViewInput>& inputs,
                        query::Mask target, net::NodeId delivery,
                        const query::RateModel& rates, query::QueryId qid,
                        query::Deployment& final_deployment,
                        std::vector<ViewPlanStats>& stats, bool refine = true,
                        double delivery_bytes_rate = -1.0);

/// Physical node of a final-deployment child code.
net::NodeId node_of_code(const query::Deployment& d, int code);

}  // namespace iflow::opt
