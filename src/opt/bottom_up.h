// The Bottom-Up algorithm (paper §2.3).
//
// The query is registered at its sink and propagates up the sink's
// coordinator chain. At each level the coordinator rewrites the remaining
// query into a locally satisfiable view (base sources inside the cluster,
// reusable derived streams advertised within it) and a remote remainder;
// the local view is joined with the running partial result by an exhaustive
// search restricted to the current cluster's nodes, then advertised upward
// as a derived stream. Planning stops at the level where all sources are
// covered. Faster and cheaper than Top-Down (search restricted to one
// partition per level, early query splitting) but with weaker optimality:
// join orderings across clusters are never considered (paper §2.3.2).
#pragma once

#include "opt/optimizer.h"
#include "opt/view.h"

namespace iflow::opt {

class BottomUpOptimizer final : public Optimizer {
 public:
  /// `refine_views` selects between two placement variants:
  ///   true  (default) — views assigned to a member cluster are refined
  ///          inside it, down to physical nodes (matches the paper's
  ///          quality results, Figs 7/8/11);
  ///   false — operators are pinned directly to the per-level cluster
  ///          members (coordinators), the fastest-possible deployment at
  ///          the price of coarser placements ("possibly short-lived
  ///          queries", §2.3.2). See bench/ablation_refinement.
  explicit BottomUpOptimizer(const OptimizerEnv& env, bool refine_views = true)
      : env_(env), refine_views_(refine_views) {
    IFLOW_CHECK(env.hierarchy != nullptr);
  }

  std::string name() const override {
    std::string n = refine_views_ ? "bottom-up" : "bottom-up-fast";
    return env_.reuse ? n + "+reuse" : n;
  }
  OptimizeResult optimize(const query::Query& q) override;

 private:
  OptimizerEnv env_;
  bool refine_views_;
};

}  // namespace iflow::opt
