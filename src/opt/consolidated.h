// Consolidated multi-query optimization (paper §2.2/§2.3 extension: "The
// Top-Down algorithm can be easily extended to perform multi-query
// optimization by constructing a consolidated query ... and then applying
// the algorithm to this consolidated query"; Bottom-Up coordinators
// "compose consolidated queries" from multiple sink requests).
//
// Where incremental deployment fixes sharing by arrival order, the
// consolidated optimizer treats the batch as one workload:
//   1. queries are seeded in a sharing-aware order — queries containing the
//      batch's most frequent sub-joins go first, so the popular operators
//      exist before their consumers are planned;
//   2. improvement sweeps then re-plan each query against every OTHER
//      query's operators, keeping a change only when it lowers that query's
//      marginal cost; queries whose operators other deployments consume are
//      pinned (their operators are load-bearing).
// Each accepted change strictly lowers total cost, so the result never
// loses to the incremental pass and the sweeps terminate.
#pragma once

#include <functional>
#include <memory>

#include "opt/optimizer.h"

namespace iflow::opt {

using OptimizerFactory =
    std::function<std::unique_ptr<Optimizer>(const OptimizerEnv&)>;

struct ConsolidatedResult {
  /// Final per-query results, aligned with the input batch order.
  std::vector<OptimizeResult> per_query;
  double total_cost = 0.0;
  double plans_considered = 0.0;
  /// Improvement sweeps actually executed (<= max_sweeps).
  int sweeps = 0;
  /// Total cost after the seeding pass, before any sweep (for reporting the
  /// consolidation gain).
  double seed_cost = 0.0;
};

/// Optimizes the batch jointly. `env.registry` is used as scratch space and
/// left holding the final advertisements. Reuse must be enabled in `env`
/// (consolidation without reuse degenerates to independent planning).
ConsolidatedResult optimize_consolidated(const OptimizerEnv& env,
                                         const OptimizerFactory& factory,
                                         const std::vector<query::Query>& batch,
                                         int max_sweeps = 3);

}  // namespace iflow::opt
