#include "opt/static_plan.h"

#include <limits>
#include <unordered_map>

namespace iflow::opt {

namespace {

/// Recursively enumerates exact covers of `remaining` by unit indices
/// (lowest unset bit first, so each cover is produced once).
void covers_of(const std::vector<query::LeafUnit>& units,
               query::Mask remaining, std::vector<int>& current,
               std::vector<std::vector<int>>& out) {
  if (remaining == 0) {
    out.push_back(current);
    return;
  }
  const query::Mask low = remaining & (~remaining + 1);
  for (std::size_t u = 0; u < units.size(); ++u) {
    const query::Mask m = units[u].mask;
    if ((m & low) == 0 || (m & ~remaining) != 0) continue;
    current.push_back(static_cast<int>(u));
    covers_of(units, remaining & ~m, current, out);
    current.pop_back();
  }
}

}  // namespace

StaticPlan choose_static_plan(const query::RateModel& rates,
                              const std::vector<query::LeafUnit>& units) {
  StaticPlan best;
  double best_obj = std::numeric_limits<double>::infinity();

  std::vector<std::vector<int>> covers;
  std::vector<int> scratch;
  covers_of(units, rates.full(), scratch, covers);

  for (const std::vector<int>& cover : covers) {
    std::vector<query::Mask> masks;
    masks.reserve(cover.size());
    for (int u : cover) masks.push_back(units[static_cast<std::size_t>(u)].mask);
    for (query::JoinTree& tree : query::enumerate_join_trees(masks)) {
      best.plans_examined += 1.0;
      double obj = 0.0;
      for (const query::TreeNode& n : tree.nodes) {
        if (n.unit < 0) obj += rates.tuple_rate(n.mask);
      }
      if (obj < best_obj) {
        best_obj = obj;
        // Re-index tree leaves from cover-local to a compact unit list.
        best.units.clear();
        for (int u : cover) {
          best.units.push_back(units[static_cast<std::size_t>(u)]);
        }
        best.tree = std::move(tree);
        best.intermediate_tuple_rate = obj;
        best.feasible = true;
      }
    }
  }
  return best;
}

StaticPlan apply_subtree_reuse(StaticPlan plan, const query::RateModel& rates,
                               const std::vector<query::LeafUnit>& deriveds,
                               net::NodeId sink, const net::RoutingTables& rt) {
  (void)rates;
  IFLOW_CHECK(plan.feasible);
  // Cheapest-to-deliver provider per exactly-matching mask.
  std::unordered_map<query::Mask, const query::LeafUnit*> best_by_mask;
  for (const query::LeafUnit& d : deriveds) {
    auto& slot = best_by_mask[d.mask];
    if (slot == nullptr ||
        rt.cost(d.location, sink) < rt.cost(slot->location, sink)) {
      slot = &d;
    }
  }
  if (best_by_mask.empty()) return plan;

  StaticPlan out;
  out.feasible = true;
  out.intermediate_tuple_rate = 0.0;
  out.plans_examined = plan.plans_examined;
  auto copy = [&](auto&& self, int v) -> int {
    const query::TreeNode& n =
        plan.tree.nodes[static_cast<std::size_t>(v)];
    const auto it = best_by_mask.find(n.mask);
    if (n.unit < 0 && it != best_by_mask.end()) {
      // Prune the whole subtree: the deployed operator is consumed instead.
      query::TreeNode leaf;
      leaf.unit = static_cast<int>(out.units.size());
      leaf.mask = n.mask;
      out.units.push_back(*it->second);
      out.tree.nodes.push_back(leaf);
      return static_cast<int>(out.tree.nodes.size()) - 1;
    }
    if (n.unit >= 0) {
      query::TreeNode leaf;
      leaf.unit = static_cast<int>(out.units.size());
      leaf.mask = n.mask;
      out.units.push_back(plan.units[static_cast<std::size_t>(n.unit)]);
      out.tree.nodes.push_back(leaf);
      return static_cast<int>(out.tree.nodes.size()) - 1;
    }
    const int l = self(self, n.left);
    const int r = self(self, n.right);
    query::TreeNode internal;
    internal.left = l;
    internal.right = r;
    internal.mask = n.mask;
    out.tree.nodes.push_back(internal);
    return static_cast<int>(out.tree.nodes.size()) - 1;
  };
  out.tree.root = copy(copy, plan.tree.root);
  return out;
}

}  // namespace iflow::opt
