#include "opt/consolidated.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "query/rates.h"

namespace iflow::opt {

namespace {

/// Scores a query by how many of the batch's shared sub-joins (source pairs
/// appearing in >= 2 queries) it contains: high scorers deploy first so
/// their operators are available for reuse.
std::vector<std::size_t> sharing_order(const std::vector<query::Query>& batch) {
  std::map<std::pair<query::StreamId, query::StreamId>, int> pair_count;
  for (const query::Query& q : batch) {
    for (std::size_t i = 0; i < q.sources.size(); ++i) {
      for (std::size_t j = i + 1; j < q.sources.size(); ++j) {
        ++pair_count[{q.sources[i], q.sources[j]}];
      }
    }
  }
  std::vector<double> score(batch.size(), 0.0);
  for (std::size_t qi = 0; qi < batch.size(); ++qi) {
    const query::Query& q = batch[qi];
    for (std::size_t i = 0; i < q.sources.size(); ++i) {
      for (std::size_t j = i + 1; j < q.sources.size(); ++j) {
        const int c = pair_count[{q.sources[i], q.sources[j]}];
        if (c >= 2) score[qi] += c;
      }
    }
  }
  std::vector<std::size_t> order(batch.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return score[a] > score[b];
  });
  return order;
}

/// Rebuilds the registry from the given deployments.
void rebuild_registry(advert::Registry& registry,
                      const std::vector<query::Query>& batch,
                      const std::vector<OptimizeResult>& results,
                      const OptimizerEnv& env, std::size_t exclude) {
  registry.clear();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (i == exclude || !results[i].feasible) continue;
    query::RateModel rates(*env.catalog, batch[i], env.projection_factor);
    advert::advertise_deployment(registry, results[i].deployment, rates);
  }
}

/// Batch indices whose operators are consumed by another deployment's
/// derived units (those queries must not move).
std::set<std::size_t> pinned_queries(
    const std::vector<query::Query>& batch,
    const std::vector<OptimizeResult>& results) {
  std::set<std::size_t> pinned;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    for (const query::LeafUnit& u : results[i].deployment.units) {
      if (!u.derived) continue;
      // Find which other deployment hosts an operator (or sink) at this
      // location covering these streams.
      for (std::size_t j = 0; j < batch.size(); ++j) {
        if (j == i) continue;
        const query::Deployment& d = results[j].deployment;
        bool provides = (d.sink == u.location);
        for (const query::DeployedOp& op : d.ops) {
          provides |= (op.node == u.location);
        }
        if (provides) pinned.insert(j);
      }
    }
  }
  return pinned;
}

}  // namespace

ConsolidatedResult optimize_consolidated(const OptimizerEnv& env,
                                         const OptimizerFactory& factory,
                                         const std::vector<query::Query>& batch,
                                         int max_sweeps) {
  IFLOW_CHECK_MSG(env.reuse && env.registry != nullptr,
                  "consolidation requires reuse + a registry");
  ConsolidatedResult out;
  out.per_query.resize(batch.size());
  if (batch.empty()) return out;

  // Seeding: deploy incrementally in two candidate orders — the arrival
  // order (what plain incremental deployment does) and the sharing-aware
  // order — and keep the cheaper outcome. Starting no worse than
  // incremental makes the whole procedure dominate it, since sweeps only
  // ever accept improvements.
  auto seed_with = [&](const std::vector<std::size_t>& order) {
    env.registry->clear();
    std::vector<OptimizeResult> results(batch.size());
    double plans = 0.0;
    for (std::size_t qi : order) {
      auto optimizer = factory(env);
      OptimizeResult r = optimizer->optimize(batch[qi]);
      IFLOW_CHECK(r.feasible);
      plans += r.plans_considered;
      query::RateModel rates(*env.catalog, batch[qi], env.projection_factor);
      advert::advertise_deployment(*env.registry, r.deployment, rates);
      results[qi] = std::move(r);
    }
    return std::pair{std::move(results), plans};
  };
  auto total_of = [](const std::vector<OptimizeResult>& results) {
    double t = 0.0;
    for (const OptimizeResult& r : results) t += r.actual_cost;
    return t;
  };

  std::vector<std::size_t> arrival(batch.size());
  std::iota(arrival.begin(), arrival.end(), std::size_t{0});
  auto [arrival_results, arrival_plans] = seed_with(arrival);
  auto [shared_results, shared_plans] = seed_with(sharing_order(batch));
  out.plans_considered += arrival_plans + shared_plans;
  if (total_of(shared_results) <= total_of(arrival_results)) {
    out.per_query = std::move(shared_results);
  } else {
    out.per_query = std::move(arrival_results);
  }
  out.seed_cost = total_of(out.per_query);
  out.total_cost = out.seed_cost;

  // Improvement sweeps: re-plan unpinned queries against everyone else.
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool improved = false;
    for (std::size_t qi = 0; qi < batch.size(); ++qi) {
      // Recomputed per query: accepting a change may create new consumers.
      if (pinned_queries(batch, out.per_query).count(qi) != 0) continue;
      rebuild_registry(*env.registry, batch, out.per_query, env, qi);
      auto optimizer = factory(env);
      OptimizeResult candidate = optimizer->optimize(batch[qi]);
      out.plans_considered += candidate.plans_considered;
      if (candidate.feasible &&
          candidate.actual_cost <
              out.per_query[qi].actual_cost * (1.0 - 1e-9)) {
        out.total_cost += candidate.actual_cost - out.per_query[qi].actual_cost;
        out.per_query[qi] = std::move(candidate);
        improved = true;
      }
    }
    out.sweeps = sweep + 1;
    if (!improved) break;
  }

  // Leave the registry holding the final state.
  rebuild_registry(*env.registry, batch, out.per_query, env,
                   batch.size() /* exclude none */);
  return out;
}

}  // namespace iflow::opt
