#include "opt/relaxation.h"

#include <cmath>
#include <limits>

#include "opt/static_plan.h"
#include "opt/view.h"
#include "query/rates.h"
#include "verify/validator.h"

namespace iflow::opt {

RelaxationOptimizer::RelaxationOptimizer(const OptimizerEnv& env,
                                         std::uint64_t seed,
                                         int relax_iterations,
                                         int embed_iterations)
    : env_(env), relax_iterations_(relax_iterations),
      space_([&] {
        IFLOW_CHECK(env.routing != nullptr);
        Prng prng(seed);
        return CostSpace::build(*env.routing, prng, embed_iterations);
      }()) {
  IFLOW_CHECK(relax_iterations_ >= 1);
}

OptimizeResult RelaxationOptimizer::optimize(const query::Query& q) {
  IFLOW_CHECK(env_.catalog && env_.network && env_.routing);
  const net::RoutingTables& rt = *env_.routing;
  query::RateModel rates(*env_.catalog, q, env_.projection_factor);

  const std::vector<query::LeafUnit> bases =
      collect_units(rates, nullptr, nullptr);
  StaticPlan plan = choose_static_plan(rates, bases);
  IFLOW_CHECK(plan.feasible);
  if (env_.reuse && env_.registry != nullptr) {
    std::vector<query::LeafUnit> deriveds;
    for (const query::LeafUnit& u :
         collect_units(rates, env_.registry, nullptr)) {
      if (u.derived) deriveds.push_back(u);
    }
    plan = apply_subtree_reuse(std::move(plan), rates, deriveds, q.sink, rt);
  }
  const query::JoinTree& tree = plan.tree;

  // Free operator coordinates, pinned endpoints at node positions.
  std::vector<Point3> op_pos(tree.nodes.size());
  std::vector<int> parent(tree.nodes.size(), -1);
  for (std::size_t v = 0; v < tree.nodes.size(); ++v) {
    const query::TreeNode& n = tree.nodes[v];
    if (n.unit >= 0) continue;
    for (int child : {n.left, n.right}) {
      parent[static_cast<std::size_t>(child)] = static_cast<int>(v);
    }
  }
  // Initialise every operator at the centroid of the leaves beneath it.
  for (std::size_t v = 0; v < tree.nodes.size(); ++v) {
    const query::TreeNode& n = tree.nodes[v];
    if (n.unit >= 0) {
      op_pos[v] = space_.position(
          plan.units[static_cast<std::size_t>(n.unit)].location);
    } else {
      const auto& l = op_pos[static_cast<std::size_t>(n.left)];
      const auto& r = op_pos[static_cast<std::size_t>(n.right)];
      for (int d = 0; d < 3; ++d) op_pos[v][d] = (l[d] + r[d]) / 2.0;
    }
  }

  const Point3 sink_pos = space_.position(q.sink);
  auto edge_rate = [&](int child) {
    const query::TreeNode& cn = tree.nodes[static_cast<std::size_t>(child)];
    return (cn.unit >= 0)
               ? plan.units[static_cast<std::size_t>(cn.unit)].bytes_rate
               : rates.bytes_rate(cn.mask);
  };

  // Spring relaxation: each operator moves to the rate-weighted centroid of
  // its tree neighbours (children, and parent or sink).
  for (int iter = 0; iter < relax_iterations_; ++iter) {
    for (std::size_t v = 0; v < tree.nodes.size(); ++v) {
      const query::TreeNode& n = tree.nodes[v];
      if (n.unit >= 0) continue;
      Point3 acc{0.0, 0.0, 0.0};
      double weight = 0.0;
      for (int child : {n.left, n.right}) {
        const double w = edge_rate(child);
        const Point3& p = op_pos[static_cast<std::size_t>(child)];
        for (int d = 0; d < 3; ++d) acc[d] += w * p[d];
        weight += w;
      }
      double out_rate = rates.bytes_rate(n.mask);
      if (parent[v] < 0) {
        const double dr = delivery_rate_for(q, rates);
        if (dr >= 0.0) out_rate = dr;
      }
      const Point3& up = (parent[v] >= 0)
                             ? op_pos[static_cast<std::size_t>(parent[v])]
                             : sink_pos;
      for (int d = 0; d < 3; ++d) acc[d] += out_rate * up[d];
      weight += out_rate;
      if (weight > 0.0) {
        for (int d = 0; d < 3; ++d) op_pos[v][d] = acc[d] / weight;
      }
    }
  }

  // Snap operators to (processing-capable) physical nodes.
  const std::vector<net::NodeId> snap_targets = all_sites(env_);
  std::vector<net::NodeId> op_nodes(tree.nodes.size(), net::kInvalidNode);
  double ops = 0.0;
  for (std::size_t v = 0; v < tree.nodes.size(); ++v) {
    if (tree.nodes[v].unit >= 0) continue;
    net::NodeId best = snap_targets.front();
    double best_d = std::numeric_limits<double>::infinity();
    for (net::NodeId n : snap_targets) {
      // The health penalty inflates a suspect node's attractiveness the
      // same way it inflates oracle distances elsewhere.
      const double d = CostSpace::distance(space_.position(n), op_pos[v]) *
                       (env_.node_penalty != nullptr ? (*env_.node_penalty)[n]
                                                     : 1.0);
      if (d < best_d) {
        best_d = d;
        best = n;
      }
    }
    op_nodes[v] = best;
    ops += 1.0;
  }

  OptimizeResult out;
  out.feasible = true;
  out.deployment = assemble_deployment(tree, plan.units, rates, op_nodes,
                                       q.sink, q.id);
  out.deployment.aggregate = q.aggregate;
  out.actual_cost = query::deployment_cost(out.deployment, rt);
  // Feasible results always have finite cost: under a partition every
  // relaxation move can be priced at infinity and the start point kept.
  if (!std::isfinite(out.actual_cost)) {
    OptimizeResult infeasible;
    infeasible.feasible = false;
    return infeasible;
  }
  out.planned_cost = out.actual_cost;
  out.plans_considered =
      plan.plans_examined + ops * static_cast<double>(relax_iterations_);
  out.levels_used = 1;
  out.deploy_time_ms = out.plans_considered * env_.plan_eval_us / 1000.0;
  IFLOW_VERIFY_RESULT(out, env_, q);
  return out;
}

}  // namespace iflow::opt
