#include "opt/planner.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace iflow::opt {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

int popcount(query::Mask m) { return std::popcount(m); }

/// How the cheapest way of making a mask available at a site was achieved:
/// either a unit streamed directly, or a join op at some site plus the
/// transfer edge.
struct GChoice {
  int unit = -1;
  int op_site = -1;
};

}  // namespace

double count_plans(const std::vector<query::LeafUnit>& units,
                   query::Mask target, std::size_t site_count) {
  IFLOW_CHECK(target != 0);
  const int k = popcount(target);
  // ways[m][c] = number of ways to partition mask m into exactly c units.
  std::vector<std::vector<double>> ways(target + 1);
  ways[0].assign(1, 1.0);
  for (query::Mask m = 1; m <= target; ++m) {
    if ((m & ~target) != 0) continue;
    ways[m].assign(static_cast<std::size_t>(k) + 1, 0.0);
    const query::Mask low = m & (~m + 1);
    for (std::size_t u = 0; u < units.size(); ++u) {
      const query::Mask um = units[u].mask;
      if ((um & low) == 0 || (um & ~m) != 0) continue;
      const auto& sub = ways[m ^ um];
      for (std::size_t c = 0; c + 1 < ways[m].size() && c < sub.size(); ++c) {
        ways[m][c + 1] += sub[c];
      }
    }
  }
  double total = 0.0;
  for (std::size_t c = 1; c < ways[target].size(); ++c) {
    if (ways[target][c] == 0.0) continue;
    double trees = 1.0;
    for (int f = 2 * static_cast<int>(c) - 3; f >= 3; f -= 2) trees *= f;
    total += ways[target][c] * trees *
             std::pow(static_cast<double>(site_count),
                      static_cast<double>(c) - 1.0);
  }
  return total;
}

PlannerResult plan_optimal(const PlannerInput& in) {
  IFLOW_CHECK(in.rates != nullptr);
  IFLOW_CHECK(in.dist != nullptr);
  IFLOW_CHECK(in.target != 0);
  IFLOW_CHECK_MSG(popcount(in.target) <= 12, "query too wide for the planner");
  IFLOW_CHECK(!in.sites.empty());
  const std::size_t S = in.sites.size();
  const query::Mask target = in.target;

  // DP tables indexed by mask (dense up to `target`) and site index.
  std::vector<std::vector<double>> g(target + 1);
  std::vector<std::vector<double>> best_op(target + 1);
  std::vector<std::vector<GChoice>> g_choice(target + 1);
  std::vector<std::vector<query::Mask>> split_choice(target + 1);

  for (query::Mask m = 1; m <= target; ++m) {
    if ((m & ~target) != 0) continue;
    g[m].assign(S, kInf);
    g_choice[m].assign(S, GChoice{});
    const bool joinable = popcount(m) >= 2;
    const double rate_m = in.rates->bytes_rate(m);

    if (joinable) {
      best_op[m].assign(S, kInf);
      split_choice[m].assign(S, 0);
      // Splits with the lowest bit pinned to side A avoid mirror duplicates.
      const query::Mask rest = m ^ (m & (~m + 1));
      for (query::Mask b = rest; b != 0; b = (b - 1) & rest) {
        const query::Mask a = m ^ b;
        for (std::size_t p = 0; p < S; ++p) {
          const double c = g[a][p] + g[b][p];
          if (c < best_op[m][p]) {
            best_op[m][p] = c;
            split_choice[m][p] = a;
          }
        }
      }
    }

    // Units streamed straight to each site.
    for (std::size_t u = 0; u < in.units.size(); ++u) {
      if (in.units[u].mask != m) continue;
      for (std::size_t p = 0; p < S; ++p) {
        const double c =
            in.units[u].bytes_rate * in.dist(in.units[u].location, in.sites[p]);
        if (c < g[m][p]) {
          g[m][p] = c;
          g_choice[m][p] = GChoice{static_cast<int>(u), -1};
        }
      }
    }
    // A join op at site q plus the q→p edge.
    if (joinable) {
      for (std::size_t p = 0; p < S; ++p) {
        double best = g[m][p];
        GChoice choice = g_choice[m][p];
        for (std::size_t q = 0; q < S; ++q) {
          if (best_op[m][q] == kInf) continue;
          const double c =
              best_op[m][q] + rate_m * in.dist(in.sites[q], in.sites[p]);
          if (c < best) {
            best = c;
            choice = GChoice{-1, static_cast<int>(q)};
          }
        }
        g[m][p] = best;
        g_choice[m][p] = choice;
      }
    }
  }

  // Final selection: deliver to `delivery`, or leave at the producer.
  PlannerResult result;
  result.plans_considered = count_plans(in.units, target, S);
  double best_total = kInf;
  GChoice final_choice;
  const double rate_target = in.rates->bytes_rate(target);
  // With aggregation the root result shrinks before it travels to the sink.
  const double deliver_rate =
      in.delivery_bytes_rate >= 0.0 ? in.delivery_bytes_rate : rate_target;
  for (std::size_t u = 0; u < in.units.size(); ++u) {
    if (in.units[u].mask != target) continue;
    const double unit_deliver_rate = in.delivery_bytes_rate >= 0.0
                                         ? in.delivery_bytes_rate
                                         : in.units[u].bytes_rate;
    const double c = (in.delivery == net::kInvalidNode)
                         ? 0.0
                         : unit_deliver_rate *
                               in.dist(in.units[u].location, in.delivery);
    if (c < best_total) {
      best_total = c;
      final_choice = GChoice{static_cast<int>(u), -1};
    }
  }
  if (!best_op.empty() && !best_op[target].empty()) {
    for (std::size_t q = 0; q < S; ++q) {
      if (best_op[target][q] == kInf) continue;
      const double edge =
          (in.delivery == net::kInvalidNode)
              ? 0.0
              : deliver_rate * in.dist(in.sites[q], in.delivery);
      const double c = best_op[target][q] + edge;
      if (c < best_total) {
        best_total = c;
        final_choice = GChoice{-1, static_cast<int>(q)};
      }
    }
  }
  if (best_total == kInf) {
    return result;  // infeasible: units cannot cover the target
  }

  // Reconstruction into a Deployment (children before parents).
  query::Deployment dep;
  dep.query = in.query_id;
  std::unordered_map<int, int> unit_slot;  // input unit index -> dep.units idx
  auto use_unit = [&](int u) {
    const auto it = unit_slot.find(u);
    if (it != unit_slot.end()) return query::encode_unit_child(it->second);
    const int slot = static_cast<int>(dep.units.size());
    dep.units.push_back(in.units[static_cast<std::size_t>(u)]);
    result.unit_sources.push_back(u);
    unit_slot.emplace(u, slot);
    return query::encode_unit_child(slot);
  };
  // Builds the subtree that makes `m` available per the recorded choice and
  // returns the child code of its producer.
  auto build = [&](auto&& self, query::Mask m, GChoice choice) -> int {
    if (choice.unit >= 0) return use_unit(choice.unit);
    IFLOW_CHECK(choice.op_site >= 0);
    const auto q = static_cast<std::size_t>(choice.op_site);
    const query::Mask a = split_choice[m][q];
    const query::Mask b = m ^ a;
    const int lc = self(self, a, g_choice[a][q]);
    const int rc = self(self, b, g_choice[b][q]);
    query::DeployedOp op;
    op.mask = m;
    op.left = lc;
    op.right = rc;
    op.node = in.sites[q];
    op.out_bytes_rate = in.rates->bytes_rate(m);
    op.out_tuple_rate = in.rates->tuple_rate(m);
    dep.ops.push_back(op);
    return static_cast<int>(dep.ops.size()) - 1;
  };
  build(build, target, final_choice);
  dep.sink = (in.delivery != net::kInvalidNode) ? in.delivery : dep.root_node();
  validate_deployment(dep);

  // Cost with direct edges under the same oracle (equals the DP optimum for
  // metric oracles; the DP value may include zero-gain relays).
  double direct = 0.0;
  for (const query::DeployedOp& op : dep.ops) {
    for (int child : {op.left, op.right}) {
      const auto& [loc, rate] =
          query::child_is_unit(child)
              ? std::pair{dep.units[static_cast<std::size_t>(
                                        query::child_unit_index(child))]
                              .location,
                          dep.units[static_cast<std::size_t>(
                                        query::child_unit_index(child))]
                              .bytes_rate}
              : std::pair{dep.ops[static_cast<std::size_t>(child)].node,
                          dep.ops[static_cast<std::size_t>(child)]
                              .out_bytes_rate};
      direct += rate * in.dist(loc, op.node);
    }
  }
  direct += (in.delivery == net::kInvalidNode ? 0.0 : deliver_rate) *
            in.dist(dep.root_node(), dep.sink);
  IFLOW_DCHECK(direct <= best_total + 1e-6 * (1.0 + best_total));

  dep.planned_cost = direct;
  result.feasible = true;
  result.cost = direct;
  result.deployment = std::move(dep);
  return result;
}

TreePlacement place_tree_optimal(const query::JoinTree& tree,
                                 const std::vector<query::LeafUnit>& units,
                                 const query::RateModel& rates,
                                 net::NodeId delivery,
                                 const std::vector<net::NodeId>& sites,
                                 const DistFn& dist,
                                 double delivery_bytes_rate) {
  IFLOW_CHECK(!sites.empty());
  const std::size_t S = sites.size();
  TreePlacement out;

  const auto n_nodes = tree.nodes.size();
  // cost[v][p]: cheapest cost of the subtree rooted at internal node v with
  // its operator at site p. pick[v][p]: chosen site of internal child v
  // given the parent at p.
  std::vector<std::vector<double>> cost(n_nodes);
  std::vector<std::vector<std::size_t>> pick(n_nodes);

  for (std::size_t v = 0; v < n_nodes; ++v) {
    const query::TreeNode& node = tree.nodes[v];
    if (node.unit >= 0) continue;  // leaves carry no table
    cost[v].assign(S, 0.0);
    for (int child : {node.left, node.right}) {
      const query::TreeNode& cn = tree.nodes[static_cast<std::size_t>(child)];
      if (cn.unit >= 0) {
        const query::LeafUnit& u = units[static_cast<std::size_t>(cn.unit)];
        for (std::size_t p = 0; p < S; ++p) {
          cost[v][p] += u.bytes_rate * dist(u.location, sites[p]);
        }
      } else {
        const double rate = rates.bytes_rate(cn.mask);
        auto& child_pick = pick[static_cast<std::size_t>(child)];
        child_pick.assign(S, 0);
        for (std::size_t p = 0; p < S; ++p) {
          double best = kInf;
          std::size_t arg = 0;
          for (std::size_t q = 0; q < S; ++q) {
            const double c = cost[static_cast<std::size_t>(child)][q] +
                             rate * dist(sites[q], sites[p]);
            if (c < best) {
              best = c;
              arg = q;
            }
          }
          cost[v][p] += best;
          child_pick[p] = arg;
        }
      }
    }
  }

  const query::TreeNode& root = tree.nodes[static_cast<std::size_t>(tree.root)];
  if (root.unit >= 0) {
    // Single-leaf tree: no operators to place.
    const query::LeafUnit& u = units[static_cast<std::size_t>(root.unit)];
    const double rate =
        delivery_bytes_rate >= 0.0 ? delivery_bytes_rate : u.bytes_rate;
    out.feasible = true;
    out.cost = (delivery == net::kInvalidNode)
                   ? 0.0
                   : rate * dist(u.location, delivery);
    return out;
  }

  const double root_rate = delivery_bytes_rate >= 0.0
                               ? delivery_bytes_rate
                               : rates.bytes_rate(root.mask);
  double best = kInf;
  std::size_t root_site = 0;
  for (std::size_t p = 0; p < S; ++p) {
    const double edge = (delivery == net::kInvalidNode)
                            ? 0.0
                            : root_rate * dist(sites[p], delivery);
    const double c = cost[static_cast<std::size_t>(tree.root)][p] + edge;
    if (c < best) {
      best = c;
      root_site = p;
    }
  }

  // Walk back down assigning sites.
  out.op_nodes.assign(n_nodes, net::kInvalidNode);
  auto descend = [&](auto&& self, int v, std::size_t p) -> void {
    out.op_nodes[static_cast<std::size_t>(v)] = sites[p];
    const query::TreeNode& node = tree.nodes[static_cast<std::size_t>(v)];
    for (int child : {node.left, node.right}) {
      if (tree.nodes[static_cast<std::size_t>(child)].unit >= 0) continue;
      self(self, child, pick[static_cast<std::size_t>(child)][p]);
    }
  };
  descend(descend, tree.root, root_site);

  out.feasible = true;
  out.cost = best;
  return out;
}

query::Deployment assemble_deployment(const query::JoinTree& tree,
                                      const std::vector<query::LeafUnit>& units,
                                      const query::RateModel& rates,
                                      const std::vector<net::NodeId>& op_nodes,
                                      net::NodeId sink, query::QueryId qid) {
  query::Deployment dep;
  dep.query = qid;
  dep.sink = sink;
  std::unordered_map<int, int> unit_slot;
  std::vector<int> code(tree.nodes.size(), 0);
  for (std::size_t v = 0; v < tree.nodes.size(); ++v) {
    const query::TreeNode& node = tree.nodes[v];
    if (node.unit >= 0) {
      const auto it = unit_slot.find(node.unit);
      int slot;
      if (it != unit_slot.end()) {
        slot = it->second;
      } else {
        slot = static_cast<int>(dep.units.size());
        dep.units.push_back(units[static_cast<std::size_t>(node.unit)]);
        unit_slot.emplace(node.unit, slot);
      }
      code[v] = query::encode_unit_child(slot);
      continue;
    }
    query::DeployedOp op;
    op.mask = node.mask;
    op.left = code[static_cast<std::size_t>(node.left)];
    op.right = code[static_cast<std::size_t>(node.right)];
    op.node = op_nodes[v];
    IFLOW_CHECK(op.node != net::kInvalidNode);
    op.out_bytes_rate = rates.bytes_rate(node.mask);
    op.out_tuple_rate = rates.tuple_rate(node.mask);
    dep.ops.push_back(op);
    code[v] = static_cast<int>(dep.ops.size()) - 1;
  }
  validate_deployment(dep);
  return dep;
}

}  // namespace iflow::opt
