// Phased baseline (Fig 1a / Fig 2): "plan, then deploy".
//
// The join order is fixed at compile time from stream statistics alone
// (choose_static_plan); the deployment phase then searches operator
// placements for THAT tree exhaustively over the whole network (the
// strongest possible phased opponent: its placement is optimal, only the
// plan is network-blind).
#pragma once

#include "opt/optimizer.h"

namespace iflow::opt {

class PlanThenDeployOptimizer final : public Optimizer {
 public:
  explicit PlanThenDeployOptimizer(const OptimizerEnv& env) : env_(env) {}

  std::string name() const override {
    return env_.reuse ? "plan-then-deploy+reuse" : "plan-then-deploy";
  }
  OptimizeResult optimize(const query::Query& q) override;

 private:
  OptimizerEnv env_;
};

}  // namespace iflow::opt
