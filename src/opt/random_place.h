// Random-placement baseline (paper §2.3.2: Bottom-Up's sub-optimality is
// bounded with respect to the optimal deployment of its own join ordering,
// which "proves that Bottom-Up can offer better bounds than a random
// placement of the same query tree").
//
// The join tree is chosen exactly like the other phased baselines
// (statistics-only); each operator is then assigned to a uniformly random
// processing node. Useful as a sanity floor in comparisons and tests.
#pragma once

#include "common/prng.h"
#include "opt/optimizer.h"

namespace iflow::opt {

class RandomPlacementOptimizer final : public Optimizer {
 public:
  RandomPlacementOptimizer(const OptimizerEnv& env, std::uint64_t seed)
      : env_(env), prng_(seed) {}

  std::string name() const override { return "random-placement"; }
  OptimizeResult optimize(const query::Query& q) override;

 private:
  OptimizerEnv env_;
  Prng prng_;
};

}  // namespace iflow::opt
