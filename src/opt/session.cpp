#include "opt/optimizer.h"

#include <algorithm>
#include <numeric>

#include "opt/search/workspace.h"
#include "query/rates.h"

namespace iflow::opt {

std::vector<net::NodeId> restrict_sites(const OptimizerEnv& env,
                                        std::vector<net::NodeId> sites) {
  if (!env.excluded_sites.empty()) {
    std::vector<net::NodeId> kept;
    for (net::NodeId n : sites) {
      if (!std::binary_search(env.excluded_sites.begin(),
                              env.excluded_sites.end(), n)) {
        kept.push_back(n);
      }
    }
    // Fully-excluded scope: keep its nodes so the search stays feasible;
    // the validator's kExcludedHost check decides whether the final plan
    // is acceptable.
    if (!kept.empty()) sites = std::move(kept);
  }
  if (env.processing_nodes.empty()) return sites;
  std::vector<net::NodeId> kept;
  for (net::NodeId n : sites) {
    if (std::find(env.processing_nodes.begin(), env.processing_nodes.end(),
                  n) != env.processing_nodes.end()) {
      kept.push_back(n);
    }
  }
  return kept.empty() ? sites : kept;
}

std::vector<net::NodeId> all_sites(const OptimizerEnv& env) {
  IFLOW_CHECK(env.network != nullptr);
  std::vector<net::NodeId> sites(env.network->node_count());
  std::iota(sites.begin(), sites.end(), net::NodeId{0});
  return restrict_sites(env, std::move(sites));
}

PlanWorkspace& workspace_for(const OptimizerEnv& env) {
  return env.workspace != nullptr ? *env.workspace : default_workspace();
}

DistanceOracle planning_oracle(const OptimizerEnv& env) {
  DistanceOracle o;
  if (env.sparse != nullptr) {
    o = DistanceOracle::sparse(*env.sparse);
  } else {
    IFLOW_CHECK(env.routing != nullptr);
    o = DistanceOracle::routing(*env.routing);
  }
  return o.with_node_penalty(env.node_penalty);
}

double delivery_rate_for(const query::Query& q,
                         const query::RateModel& rates) {
  if (!q.aggregate.enabled()) return -1.0;
  return std::min(rates.tuple_rate(rates.full()),
                  q.aggregate.out_tuple_rate()) *
         q.aggregate.out_width;
}

OptimizeResult Session::submit(const query::Query& q) {
  OptimizeResult res = optimizer_->optimize(q);
  if (!res.feasible) return res;
  cumulative_cost_ += res.actual_cost;
  cumulative_plans_ += res.plans_considered;
  if (env_.reuse && env_.registry != nullptr) {
    query::RateModel rates(*env_.catalog, q, env_.projection_factor);
    advert::advertise_deployment(*env_.registry, res.deployment, rates);
  }
  return res;
}

}  // namespace iflow::opt
