#include "opt/view.h"

#include <algorithm>

namespace iflow::opt {

int import_deployment(query::Deployment& final_deployment,
                      const PlannerResult& piece,
                      const std::vector<ViewInput>& inputs) {
  IFLOW_CHECK(piece.feasible);
  const query::Deployment& dep = piece.deployment;
  IFLOW_CHECK(dep.units.size() == piece.unit_sources.size());

  // Resolve each piece unit to a final child code.
  std::vector<int> unit_code(dep.units.size());
  for (std::size_t j = 0; j < dep.units.size(); ++j) {
    const auto src = static_cast<std::size_t>(piece.unit_sources[j]);
    IFLOW_CHECK(src < inputs.size());
    if (inputs[src].final_code != kNoCode) {
      unit_code[j] = inputs[src].final_code;
    } else {
      final_deployment.units.push_back(dep.units[j]);
      unit_code[j] = query::encode_unit_child(
          static_cast<int>(final_deployment.units.size()) - 1);
    }
  }

  // Append ops, remapping child codes into the final arena.
  std::vector<int> op_code(dep.ops.size());
  for (std::size_t i = 0; i < dep.ops.size(); ++i) {
    query::DeployedOp op = dep.ops[i];
    auto remap = [&](int child) {
      if (query::child_is_unit(child)) {
        return unit_code[static_cast<std::size_t>(
            query::child_unit_index(child))];
      }
      return op_code[static_cast<std::size_t>(child)];
    };
    op.left = remap(op.left);
    op.right = remap(op.right);
    final_deployment.ops.push_back(op);
    op_code[i] = static_cast<int>(final_deployment.ops.size()) - 1;
  }

  if (dep.ops.empty()) {
    IFLOW_CHECK(dep.units.size() == 1);
    return unit_code[0];
  }
  return op_code.back();
}

std::vector<query::LeafUnit> collect_units(
    const query::RateModel& rates, const advert::Registry* registry,
    const std::function<bool(net::NodeId)>& scope) {
  std::vector<query::LeafUnit> units;
  for (int i = 0; i < rates.k(); ++i) {
    const net::NodeId src = rates.source_node(i);
    if (scope && !scope(src)) continue;
    query::LeafUnit u;
    u.mask = query::Mask{1} << i;
    u.location = src;
    u.tuple_rate = rates.tuple_rate(u.mask);
    u.bytes_rate = rates.bytes_rate(u.mask);
    units.push_back(u);
  }
  if (registry != nullptr) {
    for (const advert::ReuseMatch& match :
         registry->reusable(rates.query(), scope)) {
      const advert::DerivedStream* ds = match.stream;
      query::Mask mask = 0;
      for (query::StreamId s : ds->streams) {
        for (int i = 0; i < rates.k(); ++i) {
          if (rates.stream(i) == s) mask |= query::Mask{1} << i;
        }
      }
      IFLOW_CHECK(mask != 0);
      query::LeafUnit u;
      u.mask = mask;
      u.location = ds->location;
      // Containment reuse trims the stream with a residual filter at the
      // provider, so what travels is exactly the query's own rate for the
      // mask; exact reuse coincides with it by construction.
      u.tuple_rate = rates.tuple_rate(mask);
      u.bytes_rate = rates.bytes_rate(mask);
      u.derived = true;
      u.residual_filter = match.residual_filter;
      units.push_back(u);
    }
  }
  return units;
}

}  // namespace iflow::opt
