#include "opt/cost_space.h"

#include <cmath>
#include <limits>

namespace iflow::opt {

namespace {

double norm(const Point3& a, const Point3& b) {
  const double dx = a[0] - b[0];
  const double dy = a[1] - b[1];
  const double dz = a[2] - b[2];
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

}  // namespace

CostSpace CostSpace::build(const net::RoutingTables& rt, Prng& prng,
                           int iterations) {
  const std::size_t n = rt.node_count();
  IFLOW_CHECK(n > 0);
  CostSpace cs;

  // Scale the initial random cloud to the mean pairwise cost so springs
  // start near their rest lengths.
  double mean = 0.0;
  std::size_t pairs = 0;
  for (net::NodeId a = 0; a < n; ++a) {
    for (net::NodeId b = a + 1; b < n; ++b) {
      mean += rt.cost(a, b);
      ++pairs;
    }
  }
  mean = (pairs > 0) ? mean / static_cast<double>(pairs) : 1.0;

  cs.pos_.resize(n);
  for (auto& p : cs.pos_) {
    for (double& c : p) c = prng.uniform(-mean, mean);
  }
  if (n == 1) return cs;

  for (int iter = 0; iter < iterations; ++iter) {
    // Cooling step size.
    const double eta = 0.25 * (1.0 - static_cast<double>(iter) /
                                         static_cast<double>(iterations));
    for (net::NodeId a = 0; a < n; ++a) {
      for (net::NodeId b = a + 1; b < n; ++b) {
        const double target = rt.cost(a, b);
        double actual = norm(cs.pos_[a], cs.pos_[b]);
        if (actual < 1e-9) {
          // Coincident points: nudge apart along a deterministic axis.
          cs.pos_[b][0] += 1e-6 * (1.0 + static_cast<double>(b));
          actual = norm(cs.pos_[a], cs.pos_[b]);
        }
        const double err = (target - actual) / actual;  // >0: push apart
        for (int d = 0; d < 3; ++d) {
          const double delta = eta * err * (cs.pos_[b][d] - cs.pos_[a][d]) / 2.0;
          cs.pos_[b][d] += delta;
          cs.pos_[a][d] -= delta;
        }
      }
    }
  }
  return cs;
}

const Point3& CostSpace::position(net::NodeId n) const {
  IFLOW_CHECK(n < pos_.size());
  return pos_[n];
}

double CostSpace::distance(const Point3& a, const Point3& b) {
  return norm(a, b);
}

net::NodeId CostSpace::nearest_node(const Point3& p) const {
  net::NodeId best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (net::NodeId n = 0; n < pos_.size(); ++n) {
    const double d = norm(pos_[n], p);
    if (d < best_d) {
      best_d = d;
      best = n;
    }
  }
  return best;
}

double CostSpace::stress(const net::RoutingTables& rt) const {
  double err = 0.0;
  std::size_t pairs = 0;
  for (net::NodeId a = 0; a < pos_.size(); ++a) {
    for (net::NodeId b = a + 1; b < pos_.size(); ++b) {
      const double target = rt.cost(a, b);
      if (target <= 0.0) continue;
      err += std::abs(norm(pos_[a], pos_[b]) - target) / target;
      ++pairs;
    }
  }
  return (pairs > 0) ? err / static_cast<double>(pairs) : 0.0;
}

}  // namespace iflow::opt
