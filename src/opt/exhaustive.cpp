#include "opt/exhaustive.h"

#include <cmath>

#include "opt/view.h"
#include "query/rates.h"
#include "verify/validator.h"

namespace iflow::opt {

OptimizeResult ExhaustiveOptimizer::optimize(const query::Query& q) {
  IFLOW_CHECK(env_.catalog && env_.network && env_.routing);
  const net::RoutingTables& rt = *env_.routing;
  query::RateModel rates(*env_.catalog, q, env_.projection_factor);

  PlannerInput in;
  in.rates = &rates;
  in.units = collect_units(rates, env_.reuse ? env_.registry : nullptr, nullptr);
  in.target = rates.full();
  in.delivery = q.sink;
  in.sites = all_sites(env_);
  in.dist = planning_oracle(env_);
  in.query_id = q.id;
  in.delivery_bytes_rate = delivery_rate_for(q, rates);

  const PlannerResult res = plan_optimal(in, workspace_for(env_));
  OptimizeResult out;
  out.feasible = res.feasible;
  if (!res.feasible) return out;
  out.deployment = res.deployment;
  out.deployment.aggregate = q.aggregate;
  out.actual_cost = query::deployment_cost(out.deployment, rt);
  if (!std::isfinite(out.actual_cost)) {  // feasible implies finite cost
    OptimizeResult infeasible;
    infeasible.feasible = false;
    return infeasible;
  }
  // Under the sparse oracle (or a health pricing penalty) the planner's
  // objective is not the exact deployed cost the validator reproduces.
  out.planned_cost = env_.sparse != nullptr || env_.node_penalty != nullptr
                         ? out.actual_cost
                         : res.cost;
  out.plans_considered = res.plans_considered;
  out.levels_used = 1;
  // Centralised search: all statistics are at one node; deployment time is
  // dominated by evaluating the entire space.
  out.deploy_time_ms = res.plans_considered * env_.plan_eval_us / 1000.0;
  IFLOW_VERIFY_RESULT(out, env_, q);
  return out;
}

}  // namespace iflow::opt
