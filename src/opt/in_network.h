// The In-Network baseline (Ahmad & Cetintemel, "Network-aware query
// processing for stream-based applications", VLDB'04) — phased,
// zone-restricted placement (paper §3.3, Fig 8).
//
// The network is statically divided into zones; the join tree is chosen
// from stream statistics; each operator is then placed greedily bottom-up
// at the best node of the zone "anchoring" it (the zone of its
// highest-rate input), without cross-operator lookahead.
#pragma once

#include "opt/optimizer.h"

namespace iflow::opt {

class InNetworkOptimizer final : public Optimizer {
 public:
  /// `zones` mirrors the paper's experiment (5 zones against max_cs = 32);
  /// `seed` controls the zone clustering initialisation.
  InNetworkOptimizer(const OptimizerEnv& env, std::uint64_t seed,
                     int zones = 5);

  std::string name() const override {
    return env_.reuse ? "in-network+reuse" : "in-network";
  }
  OptimizeResult optimize(const query::Query& q) override;

 private:
  OptimizerEnv env_;
  std::vector<std::vector<net::NodeId>> zones_;  // node lists per zone
  std::vector<int> zone_of_;                     // node -> zone index
};

}  // namespace iflow::opt
