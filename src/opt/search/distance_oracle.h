// Concrete distance oracles for the joint plan+placement search.
//
// Every search in the library measures distances one of three ways: actual
// routing costs (exhaustive search, phased baselines, Bottom-Up level 1),
// Theorem-1 level-l estimates (per-cluster Top-Down / Bottom-Up steps), or
// cost-space coordinates (Pietzuch-style relaxation). A DistanceOracle is a
// small tagged value naming one of those sources, cheap to copy and to call
// — a switch on the tag instead of the type-erased std::function the old
// planner paid on every lookup. The planner calls it only while
// materializing dense unit×site / site×site matrices once per invocation;
// the DP hot loops read flat arrays.
//
// All three sources are (pseudo-)metrics: actual shortest-path costs and
// Theorem-1 estimates satisfy the triangle inequality, and the cost space
// is Euclidean.
#pragma once

#include "cluster/hierarchy.h"
#include "net/routing.h"
#include "opt/cost_space.h"

namespace iflow::opt {

class DistanceOracle {
 public:
  /// Invalid until assigned from a factory; the planner rejects it.
  DistanceOracle() = default;

  /// Actual per-byte routing costs.
  static DistanceOracle routing(const net::RoutingTables& rt) {
    DistanceOracle o;
    o.kind_ = Kind::kRouting;
    o.routing_ = &rt;
    return o;
  }

  /// Theorem-1 level-`level` estimate: the actual cost between the nodes'
  /// level-`level` representatives.
  static DistanceOracle hierarchy(const cluster::Hierarchy& h, int level) {
    DistanceOracle o;
    o.kind_ = Kind::kHierarchy;
    o.hierarchy_ = &h;
    o.level_ = level;
    return o;
  }

  /// Euclidean distance between embedded coordinates.
  static DistanceOracle cost_space(const CostSpace& space) {
    DistanceOracle o;
    o.kind_ = Kind::kCostSpace;
    o.space_ = &space;
    return o;
  }

  bool valid() const { return kind_ != Kind::kInvalid; }

  double operator()(net::NodeId a, net::NodeId b) const {
    switch (kind_) {
      case Kind::kRouting:
        return routing_->cost(a, b);
      case Kind::kHierarchy:
        return hierarchy_->est_cost(a, b, level_);
      case Kind::kCostSpace:
        return CostSpace::distance(space_->position(a), space_->position(b));
      case Kind::kInvalid:
        break;
    }
    detail::check_failed("valid()", __FILE__, __LINE__,
                         "distance query on an invalid DistanceOracle");
  }

 private:
  enum class Kind : std::uint8_t { kInvalid, kRouting, kHierarchy, kCostSpace };

  Kind kind_ = Kind::kInvalid;
  const net::RoutingTables* routing_ = nullptr;
  const cluster::Hierarchy* hierarchy_ = nullptr;
  const CostSpace* space_ = nullptr;
  int level_ = 0;
};

}  // namespace iflow::opt
