// Concrete distance oracles for the joint plan+placement search.
//
// Every search in the library measures distances one of four ways: actual
// routing costs (exhaustive search, phased baselines, Bottom-Up level 1),
// Theorem-1 level-l estimates (per-cluster Top-Down / Bottom-Up steps),
// cost-space coordinates (Pietzuch-style relaxation), or the tiered
// SparseOracle (the scale path: exact-on-demand inside leaf clusters,
// Theorem-1 across them). A DistanceOracle is a small tagged value naming
// one of those sources, cheap to copy and to call — a switch on the tag
// instead of the type-erased std::function the old planner paid on every
// lookup. The planner calls it only while materializing dense unit×site /
// site×site matrices once per invocation; the DP hot loops read flat
// arrays.
//
// Staleness: each factory stamps the oracle with the source's version
// (RoutingTables::built_against(), Hierarchy::version(), SparseOracle
// stamp). In Debug every query re-checks the live version against the
// stamp, so a snapshot that outlived a routing rebuild fails loudly instead
// of reading a stale (or freed) table — the bug class PR 5 hit when
// loss/jitter events triggered rebuilds mid-plan.
//
// All four sources are (pseudo-)metrics: actual shortest-path costs and
// Theorem-1 estimates satisfy the triangle inequality, the cost space is
// Euclidean, and the sparse tiers are max(exact, bounded over-estimates).
#pragma once

#include "cluster/hierarchy.h"
#include "net/routing.h"
#include "opt/cost_space.h"
#include "opt/search/sparse_oracle.h"

namespace iflow::opt {

class DistanceOracle {
 public:
  /// Invalid until assigned from a factory; the planner rejects it.
  DistanceOracle() = default;

  /// Actual per-byte routing costs.
  static DistanceOracle routing(const net::RoutingTables& rt) {
    DistanceOracle o;
    o.kind_ = Kind::kRouting;
    o.routing_ = &rt;
    o.stamp_ = rt.built_against();
    return o;
  }

  /// Theorem-1 level-`level` estimate: the actual cost between the nodes'
  /// level-`level` representatives.
  static DistanceOracle hierarchy(const cluster::Hierarchy& h, int level) {
    DistanceOracle o;
    o.kind_ = Kind::kHierarchy;
    o.hierarchy_ = &h;
    o.level_ = level;
    o.stamp_ = h.version();
    return o;
  }

  /// Euclidean distance between embedded coordinates.
  static DistanceOracle cost_space(const CostSpace& space) {
    DistanceOracle o;
    o.kind_ = Kind::kCostSpace;
    o.space_ = &space;
    return o;
  }

  /// Tiered sparse estimates (see sparse_oracle.h).
  static DistanceOracle sparse(const SparseOracle& so) {
    DistanceOracle o;
    o.kind_ = Kind::kSparse;
    o.sparse_ = &so;
    o.stamp_ = so.stamp();
    return o;
  }

  /// Returns a copy whose distances are inflated by the per-node health
  /// penalty of both endpoints: d'(a, b) = d(a, b) · pen[a] · pen[b], with
  /// pen indexed by NodeId and every entry >= 1 (healthy nodes carry 1).
  /// This is the health plane's pricing hook: a suspect node's adjacencies
  /// look expensive to every search, so placements steer around sick-but-
  /// alive elements without any routing change. The vector is non-owning
  /// and must outlive the oracle; null or empty is a no-op.
  DistanceOracle with_node_penalty(const std::vector<double>* penalty) const {
    DistanceOracle o = *this;
    o.penalty_ = (penalty != nullptr && !penalty->empty()) ? penalty : nullptr;
    return o;
  }

  bool valid() const { return kind_ != Kind::kInvalid; }

  double operator()(net::NodeId a, net::NodeId b) const {
    const double d = raw(a, b);
    return penalty_ == nullptr ? d : d * (*penalty_)[a] * (*penalty_)[b];
  }

  /// Bulk row read: out[i] = (*this)(src, dst[i]). Routing oracles pin the
  /// source row once (one lock + one potential Dijkstra on the sparse
  /// routing tier) instead of paying per-entry; the planner materializes
  /// its per-source matrix rows through this.
  void fill_from(net::NodeId src, const net::NodeId* dst, std::size_t count,
                 double* out) const {
    if (kind_ == Kind::kRouting) {
      IFLOW_DCHECK(routing_->built_against() == stamp_);
      routing_->fill_costs(src, dst, count, out);
    } else {
      for (std::size_t i = 0; i < count; ++i) out[i] = raw(src, dst[i]);
    }
    if (penalty_ != nullptr) {
      const double ps = (*penalty_)[src];
      for (std::size_t i = 0; i < count; ++i) out[i] *= ps * (*penalty_)[dst[i]];
    }
  }

 private:
  double raw(net::NodeId a, net::NodeId b) const {
    switch (kind_) {
      case Kind::kRouting:
        IFLOW_DCHECK(routing_->built_against() == stamp_);
        return routing_->cost(a, b);
      case Kind::kHierarchy:
        IFLOW_DCHECK(hierarchy_->version() == stamp_);
        return hierarchy_->est_cost(a, b, level_);
      case Kind::kCostSpace:
        return CostSpace::distance(space_->position(a), space_->position(b));
      case Kind::kSparse:
        IFLOW_DCHECK(sparse_->stamp() == stamp_);
        return sparse_->distance(a, b);
      case Kind::kInvalid:
        break;
    }
    detail::check_failed("valid()", __FILE__, __LINE__,
                         "distance query on an invalid DistanceOracle");
  }

  enum class Kind : std::uint8_t {
    kInvalid,
    kRouting,
    kHierarchy,
    kCostSpace,
    kSparse
  };

  Kind kind_ = Kind::kInvalid;
  const net::RoutingTables* routing_ = nullptr;
  const cluster::Hierarchy* hierarchy_ = nullptr;
  const CostSpace* space_ = nullptr;
  const SparseOracle* sparse_ = nullptr;
  /// Health-plane pricing penalty (see with_node_penalty); null = none.
  const std::vector<double>* penalty_ = nullptr;
  std::uint64_t stamp_ = 0;
  int level_ = 0;
};

}  // namespace iflow::opt
