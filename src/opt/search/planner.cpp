#include "opt/search/planner.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_map>

#if defined(__BMI2__)
#include <immintrin.h>
#endif

namespace iflow::opt {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Below this many candidate sites a parallel dispatch costs more than the
/// sweep it covers (per-cluster hierarchical calls are this small).
constexpr std::size_t kMinParallelSites = 32;

int popcount(query::Mask m) { return std::popcount(m); }

/// Rank of submask `m` within the subset lattice of `target` (bit-packing /
/// pext): subsets of a k-bit target map densely onto [0, 2^k), so DP tables
/// stay compact even for sparse view-planner targets.
std::uint32_t compress_mask(query::Mask m, query::Mask target) {
#if defined(__BMI2__)
  return static_cast<std::uint32_t>(_pext_u64(m, target));
#else
  std::uint32_t r = 0;
  int out = 0;
  for (query::Mask t = target; t != 0; t &= t - 1, ++out) {
    if (m & t & (~t + 1)) r |= std::uint32_t{1} << out;
  }
  return r;
#endif
}

/// Inverse of compress_mask (pdep).
query::Mask expand_mask(std::uint32_t r, query::Mask target) {
#if defined(__BMI2__)
  return _pdep_u64(r, target);
#else
  query::Mask m = 0;
  int out = 0;
  for (query::Mask t = target; t != 0; t &= t - 1, ++out) {
    if (r & (std::uint32_t{1} << out)) m |= t & (~t + 1);
  }
  return m;
#endif
}

/// How the cheapest way of making a mask available at a site was achieved:
/// either a unit streamed directly, or a join op at some site plus the
/// transfer edge.
struct GChoice {
  int unit = -1;
  int op_site = -1;
};

/// One (A, B) split of a mask, pre-resolved to compressed table rows.
struct Split {
  std::uint32_t ar = 0;
  std::uint32_t br = 0;
  query::Mask a = 0;
};

/// Runs f(begin, end) over [0, n): on the pool when one is given, inline
/// otherwise. The per-index work is identical either way, so the two modes
/// produce bitwise-identical tables.
template <typename F>
void sweep(ThreadPool* pool, std::size_t n, const F& f) {
  if (pool == nullptr) {
    f(std::size_t{0}, n);
    return;
  }
  pool->parallel_blocks(n, f);
}

}  // namespace

double count_plans(const std::vector<query::LeafUnit>& units,
                   query::Mask target, std::size_t site_count) {
  IFLOW_CHECK(target != 0);
  const int k = popcount(target);
  // ways[r][c] = number of ways to partition the submask of rank r into
  // exactly c units.
  const std::uint32_t R = std::uint32_t{1} << k;
  std::vector<std::vector<double>> ways(R);
  ways[0].assign(1, 1.0);
  // Unit ranks, precomputed; units not covered by the target never match.
  std::vector<std::uint32_t> unit_rank(units.size());
  for (std::size_t u = 0; u < units.size(); ++u) {
    unit_rank[u] = (units[u].mask & ~target) == 0
                       ? compress_mask(units[u].mask, target)
                       : 0;  // rank 0 never matches a nonzero submask
  }
  for (std::uint32_t r = 1; r < R; ++r) {
    ways[r].assign(static_cast<std::size_t>(k) + 1, 0.0);
    const std::uint32_t low = r & (~r + 1u);
    for (std::size_t u = 0; u < units.size(); ++u) {
      const std::uint32_t ur = unit_rank[u];
      if (ur == 0 || (ur & low) == 0 || (ur & ~r) != 0) continue;
      const auto& sub = ways[r ^ ur];
      for (std::size_t c = 0; c + 1 < ways[r].size() && c < sub.size(); ++c) {
        ways[r][c + 1] += sub[c];
      }
    }
  }
  double total = 0.0;
  for (std::size_t c = 1; c < ways[R - 1].size(); ++c) {
    if (ways[R - 1][c] == 0.0) continue;
    double trees = 1.0;
    for (int f = 2 * static_cast<int>(c) - 3; f >= 3; f -= 2) trees *= f;
    total += ways[R - 1][c] * trees *
             std::pow(static_cast<double>(site_count),
                      static_cast<double>(c) - 1.0);
  }
  return total;
}

PlannerResult plan_optimal(const PlannerInput& in, PlanWorkspace& ws) {
  IFLOW_CHECK(in.rates != nullptr);
  IFLOW_CHECK(in.dist.valid());
  IFLOW_CHECK(in.target != 0);
  IFLOW_CHECK_MSG(popcount(in.target) <= 12, "query too wide for the planner");
  IFLOW_CHECK(!in.sites.empty());
  const std::size_t S = in.sites.size();
  const std::size_t U = in.units.size();
  const query::Mask target = in.target;
  const int k = popcount(target);
  const std::uint32_t R = std::uint32_t{1} << k;  // table rows (subset ranks)
  const bool deliver = in.delivery != net::kInvalidNode;

  // Every table of this invocation comes from one arena grab.
  const std::size_t rs = std::size_t{R} * S;
  const std::size_t max_splits = std::size_t{1} << (k > 0 ? k - 1 : 0);
  ws.begin(rs * (2 * sizeof(double) + sizeof(GChoice) + sizeof(query::Mask)) +
           (S * S + U * S + S + U) * sizeof(double) +
           S * sizeof(std::int64_t) + max_splits * sizeof(Split));
  double* g = ws.carve<double>(rs);
  double* best_op = ws.carve<double>(rs);
  GChoice* g_choice = ws.carve<GChoice>(rs);
  query::Mask* split_choice = ws.carve<query::Mask>(rs);
  // site_from[q*S+p] = dist(q→p): source-major so the relay update for a
  // fixed op site q walks destinations contiguously.
  double* site_from = ws.carve<double>(S * S);
  double* unit_site = ws.carve<double>(U * S);  // dist(unit u → site p)
  double* site_sink = ws.carve<double>(S);
  double* unit_sink = ws.carve<double>(U);
  std::int64_t* relay_q = ws.carve<std::int64_t>(S);
  Split* splits = ws.carve<Split>(max_splits);

  ThreadPool* pool =
      (ws.threads() > 1 && S >= kMinParallelSites) ? &ws.pool() : nullptr;

  // Materialize the oracle into dense matrices; the DP below only reads
  // flat arrays.
  const DistanceOracle& dist = in.dist;
  sweep(pool, S, [&](std::size_t q0, std::size_t q1) {
    for (std::size_t q = q0; q < q1; ++q) {
      dist.fill_from(in.sites[q], in.sites.data(), S, site_from + q * S);
    }
  });
  for (std::size_t u = 0; u < U; ++u) {
    dist.fill_from(in.units[u].location, in.sites.data(), S,
                   unit_site + u * S);
  }
  if (deliver) {
    for (std::size_t p = 0; p < S; ++p) {
      site_sink[p] = dist(in.sites[p], in.delivery);
    }
    for (std::size_t u = 0; u < U; ++u) {
      unit_sink[u] = dist(in.units[u].location, in.delivery);
    }
  }

  for (std::uint32_t mr = 1; mr < R; ++mr) {
    const query::Mask m = expand_mask(mr, target);
    const bool joinable = std::popcount(mr) >= 2;
    double* gm = g + std::size_t{mr} * S;
    GChoice* gcm = g_choice + std::size_t{mr} * S;
    double* bom = best_op + std::size_t{mr} * S;

    if (joinable) {
      // Splits with the lowest bit pinned to side A avoid mirror duplicates.
      std::size_t n_splits = 0;
      const std::uint32_t rest = mr ^ (mr & (~mr + 1u));
      for (std::uint32_t br = rest; br != 0; br = (br - 1) & rest) {
        const std::uint32_t ar = mr ^ br;
        splits[n_splits++] = Split{ar, br, expand_mask(ar, target)};
      }
      query::Mask* spm = split_choice + std::size_t{mr} * S;
      sweep(pool, S, [&](std::size_t p0, std::size_t p1) {
        std::fill(bom + p0, bom + p1, kInf);
        for (std::size_t si = 0; si < n_splits; ++si) {
          const double* ga = g + std::size_t{splits[si].ar} * S;
          const double* gb = g + std::size_t{splits[si].br} * S;
          const query::Mask a = splits[si].a;
          for (std::size_t p = p0; p < p1; ++p) {
            const double c = ga[p] + gb[p];
            if (c < bom[p]) {
              bom[p] = c;
              spm[p] = a;
            }
          }
        }
      });
    }

    const double rate_m = in.rates->bytes_rate(m);
    sweep(pool, S, [&](std::size_t p0, std::size_t p1) {
      std::fill(gm + p0, gm + p1, kInf);
      std::fill(gcm + p0, gcm + p1, GChoice{});
      // Units streamed straight to each site.
      for (std::size_t u = 0; u < U; ++u) {
        if (in.units[u].mask != m) continue;
        const double* row = unit_site + u * S;
        const double rate_u = in.units[u].bytes_rate;
        for (std::size_t p = p0; p < p1; ++p) {
          const double c = rate_u * row[p];
          if (c < gm[p]) {
            gm[p] = c;
            gcm[p] = GChoice{static_cast<int>(u), -1};
          }
        }
      }
      if (!joinable) return;
      // A join op at site q plus the q→p edge. Scanning q in the outer loop
      // keeps the inner update contiguous; per destination p the candidates
      // still arrive in ascending-q order under strict <, so the cell value
      // and the recorded site match the q-inner scan bit for bit.
      std::fill(relay_q + p0, relay_q + p1, std::int64_t{-1});
      for (std::size_t q = 0; q < S; ++q) {
        const double bq = bom[q];
        if (bq == kInf) continue;
        const double* from_q = site_from + q * S;
        for (std::size_t p = p0; p < p1; ++p) {
          const double c = bq + rate_m * from_q[p];
          if (c < gm[p]) {
            gm[p] = c;
            relay_q[p] = static_cast<std::int64_t>(q);
          }
        }
      }
      for (std::size_t p = p0; p < p1; ++p) {
        if (relay_q[p] >= 0) gcm[p] = GChoice{-1, static_cast<int>(relay_q[p])};
      }
    });
  }

  // Final selection: deliver to `delivery`, or leave at the producer.
  PlannerResult result;
  result.plans_considered = count_plans(in.units, target, S);
  double best_total = kInf;
  GChoice final_choice;
  const double rate_target = in.rates->bytes_rate(target);
  // With aggregation the root result shrinks before it travels to the sink.
  const double deliver_rate =
      in.delivery_bytes_rate >= 0.0 ? in.delivery_bytes_rate : rate_target;
  for (std::size_t u = 0; u < U; ++u) {
    if (in.units[u].mask != target) continue;
    const double unit_deliver_rate = in.delivery_bytes_rate >= 0.0
                                         ? in.delivery_bytes_rate
                                         : in.units[u].bytes_rate;
    const double c = deliver ? unit_deliver_rate * unit_sink[u] : 0.0;
    if (c < best_total) {
      best_total = c;
      final_choice = GChoice{static_cast<int>(u), -1};
    }
  }
  if (k >= 2) {
    const double* bot = best_op + std::size_t{R - 1} * S;
    for (std::size_t q = 0; q < S; ++q) {
      if (bot[q] == kInf) continue;
      const double edge = deliver ? deliver_rate * site_sink[q] : 0.0;
      const double c = bot[q] + edge;
      if (c < best_total) {
        best_total = c;
        final_choice = GChoice{-1, static_cast<int>(q)};
      }
    }
  }
  if (best_total == kInf) {
    return result;  // infeasible: units cannot cover the target
  }

  // Reconstruction into a Deployment (children before parents).
  query::Deployment dep;
  dep.query = in.query_id;
  std::unordered_map<int, int> unit_slot;  // input unit index -> dep.units idx
  auto use_unit = [&](int u) {
    const auto it = unit_slot.find(u);
    if (it != unit_slot.end()) return query::encode_unit_child(it->second);
    const int slot = static_cast<int>(dep.units.size());
    dep.units.push_back(in.units[static_cast<std::size_t>(u)]);
    result.unit_sources.push_back(u);
    unit_slot.emplace(u, slot);
    return query::encode_unit_child(slot);
  };
  // Builds the subtree that makes `m` available per the recorded choice and
  // returns the child code of its producer.
  auto build = [&](auto&& self, query::Mask m, GChoice choice) -> int {
    if (choice.unit >= 0) return use_unit(choice.unit);
    IFLOW_CHECK(choice.op_site >= 0);
    const auto q = static_cast<std::size_t>(choice.op_site);
    const std::size_t row = std::size_t{compress_mask(m, target)} * S;
    const query::Mask a = split_choice[row + q];
    const query::Mask b = m ^ a;
    const int lc =
        self(self, a, g_choice[std::size_t{compress_mask(a, target)} * S + q]);
    const int rc =
        self(self, b, g_choice[std::size_t{compress_mask(b, target)} * S + q]);
    query::DeployedOp op;
    op.mask = m;
    op.left = lc;
    op.right = rc;
    op.node = in.sites[q];
    op.out_bytes_rate = in.rates->bytes_rate(m);
    op.out_tuple_rate = in.rates->tuple_rate(m);
    dep.ops.push_back(op);
    return static_cast<int>(dep.ops.size()) - 1;
  };
  build(build, target, final_choice);
  dep.sink = deliver ? in.delivery : dep.root_node();
  validate_deployment(dep);

  // Cost with direct edges under the same oracle (equals the DP optimum for
  // metric oracles; the DP value may include zero-gain relays).
  double direct = 0.0;
  for (const query::DeployedOp& op : dep.ops) {
    for (int child : {op.left, op.right}) {
      const auto& [loc, rate] =
          query::child_is_unit(child)
              ? std::pair{dep.units[static_cast<std::size_t>(
                                        query::child_unit_index(child))]
                              .location,
                          dep.units[static_cast<std::size_t>(
                                        query::child_unit_index(child))]
                              .bytes_rate}
              : std::pair{dep.ops[static_cast<std::size_t>(child)].node,
                          dep.ops[static_cast<std::size_t>(child)]
                              .out_bytes_rate};
      direct += rate * dist(loc, op.node);
    }
  }
  direct += (deliver ? deliver_rate : 0.0) * dist(dep.root_node(), dep.sink);
  IFLOW_DCHECK(direct <= best_total + 1e-6 * (1.0 + best_total));

  dep.planned_cost = direct;
  result.feasible = true;
  result.cost = direct;
  result.deployment = std::move(dep);
  return result;
}

TreePlacement place_tree_optimal(const query::JoinTree& tree,
                                 const std::vector<query::LeafUnit>& units,
                                 const query::RateModel& rates,
                                 net::NodeId delivery,
                                 const std::vector<net::NodeId>& sites,
                                 const DistanceOracle& dist,
                                 double delivery_bytes_rate,
                                 PlanWorkspace& ws) {
  IFLOW_CHECK(!sites.empty());
  IFLOW_CHECK(dist.valid());
  const std::size_t S = sites.size();
  const std::size_t V = tree.nodes.size();
  const std::size_t U = units.size();
  TreePlacement out;

  const query::TreeNode& root = tree.nodes[static_cast<std::size_t>(tree.root)];
  if (root.unit >= 0) {
    // Single-leaf tree: no operators to place.
    const query::LeafUnit& u = units[static_cast<std::size_t>(root.unit)];
    const double rate =
        delivery_bytes_rate >= 0.0 ? delivery_bytes_rate : u.bytes_rate;
    out.feasible = true;
    out.cost = (delivery == net::kInvalidNode)
                   ? 0.0
                   : rate * dist(u.location, delivery);
    return out;
  }

  // An internal node with an internal child needs the site×site matrix.
  bool internal_edges = false;
  for (const query::TreeNode& n : tree.nodes) {
    if (n.unit >= 0) continue;
    for (int child : {n.left, n.right}) {
      internal_edges |= tree.nodes[static_cast<std::size_t>(child)].unit < 0;
    }
  }

  ws.begin(V * S * (sizeof(double) + sizeof(std::size_t)) +
           (internal_edges ? S * S + S : 0) * sizeof(double) +
           U * S * sizeof(double));
  // cost[v*S+p]: cheapest cost of the subtree rooted at internal node v with
  // its operator at site p. pick[v*S+p]: chosen site of internal child v
  // given the parent at p.
  double* cost = ws.carve<double>(V * S);
  std::size_t* pick = ws.carve<std::size_t>(V * S);
  // site_from[q*S+p] = dist(q→p), source-major (see plan_optimal).
  double* site_from = internal_edges ? ws.carve<double>(S * S) : nullptr;
  double* child_best = internal_edges ? ws.carve<double>(S) : nullptr;
  double* unit_site = ws.carve<double>(U * S);

  ThreadPool* pool =
      (ws.threads() > 1 && S >= kMinParallelSites) ? &ws.pool() : nullptr;

  if (internal_edges) {
    sweep(pool, S, [&](std::size_t q0, std::size_t q1) {
      for (std::size_t q = q0; q < q1; ++q) {
        dist.fill_from(sites[q], sites.data(), S, site_from + q * S);
      }
    });
  }
  for (std::size_t u = 0; u < U; ++u) {
    dist.fill_from(units[u].location, sites.data(), S, unit_site + u * S);
  }

  for (std::size_t v = 0; v < V; ++v) {
    const query::TreeNode& node = tree.nodes[v];
    if (node.unit >= 0) continue;  // leaves carry no table
    double* cv = cost + v * S;
    std::fill(cv, cv + S, 0.0);
    for (int child : {node.left, node.right}) {
      const query::TreeNode& cn = tree.nodes[static_cast<std::size_t>(child)];
      if (cn.unit >= 0) {
        const double* row = unit_site + static_cast<std::size_t>(cn.unit) * S;
        const double rate =
            units[static_cast<std::size_t>(cn.unit)].bytes_rate;
        for (std::size_t p = 0; p < S; ++p) cv[p] += rate * row[p];
      } else {
        const double rate = rates.bytes_rate(cn.mask);
        const double* cc = cost + static_cast<std::size_t>(child) * S;
        std::size_t* cp = pick + static_cast<std::size_t>(child) * S;
        // q-outer / p-inner for contiguous access; per p the candidates
        // arrive in ascending-q order under strict <, matching the serial
        // per-p scan bit for bit (see the relay sweep in plan_optimal).
        sweep(pool, S, [&](std::size_t p0, std::size_t p1) {
          std::fill(child_best + p0, child_best + p1, kInf);
          std::fill(cp + p0, cp + p1, std::size_t{0});
          for (std::size_t q = 0; q < S; ++q) {
            const double cq = cc[q];
            const double* from_q = site_from + q * S;
            for (std::size_t p = p0; p < p1; ++p) {
              const double c = cq + rate * from_q[p];
              if (c < child_best[p]) {
                child_best[p] = c;
                cp[p] = q;
              }
            }
          }
          for (std::size_t p = p0; p < p1; ++p) cv[p] += child_best[p];
        });
      }
    }
  }

  const double root_rate = delivery_bytes_rate >= 0.0
                               ? delivery_bytes_rate
                               : rates.bytes_rate(root.mask);
  double best = kInf;
  std::size_t root_site = 0;
  const double* croot = cost + static_cast<std::size_t>(tree.root) * S;
  for (std::size_t p = 0; p < S; ++p) {
    const double edge = (delivery == net::kInvalidNode)
                            ? 0.0
                            : root_rate * dist(sites[p], delivery);
    const double c = croot[p] + edge;
    if (c < best) {
      best = c;
      root_site = p;
    }
  }

  // Walk back down assigning sites.
  out.op_nodes.assign(V, net::kInvalidNode);
  auto descend = [&](auto&& self, int v, std::size_t p) -> void {
    out.op_nodes[static_cast<std::size_t>(v)] = sites[p];
    const query::TreeNode& node = tree.nodes[static_cast<std::size_t>(v)];
    for (int child : {node.left, node.right}) {
      if (tree.nodes[static_cast<std::size_t>(child)].unit >= 0) continue;
      self(self, child, pick[static_cast<std::size_t>(child) * S + p]);
    }
  };
  descend(descend, tree.root, root_site);

  out.feasible = true;
  out.cost = best;
  return out;
}

query::Deployment assemble_deployment(const query::JoinTree& tree,
                                      const std::vector<query::LeafUnit>& units,
                                      const query::RateModel& rates,
                                      const std::vector<net::NodeId>& op_nodes,
                                      net::NodeId sink, query::QueryId qid) {
  query::Deployment dep;
  dep.query = qid;
  dep.sink = sink;
  std::unordered_map<int, int> unit_slot;
  std::vector<int> code(tree.nodes.size(), 0);
  for (std::size_t v = 0; v < tree.nodes.size(); ++v) {
    const query::TreeNode& node = tree.nodes[v];
    if (node.unit >= 0) {
      const auto it = unit_slot.find(node.unit);
      int slot;
      if (it != unit_slot.end()) {
        slot = it->second;
      } else {
        slot = static_cast<int>(dep.units.size());
        dep.units.push_back(units[static_cast<std::size_t>(node.unit)]);
        unit_slot.emplace(node.unit, slot);
      }
      code[v] = query::encode_unit_child(slot);
      continue;
    }
    query::DeployedOp op;
    op.mask = node.mask;
    op.left = code[static_cast<std::size_t>(node.left)];
    op.right = code[static_cast<std::size_t>(node.right)];
    op.node = op_nodes[v];
    IFLOW_CHECK(op.node != net::kInvalidNode);
    op.out_bytes_rate = rates.bytes_rate(node.mask);
    op.out_tuple_rate = rates.tuple_rate(node.mask);
    dep.ops.push_back(op);
    code[v] = static_cast<int>(dep.ops.size()) - 1;
  }
  validate_deployment(dep);
  return dep;
}

}  // namespace iflow::opt
