// Hierarchy-native sparse distance oracle (the scale-path distance source).
//
// The dense planner answers every distance query from an O(N²) all-pairs
// matrix. At 10k–100k nodes that matrix does not fit, but the paper's own
// Theorem 1 says the hierarchy already *is* an approximate distance oracle:
// the cost between two nodes' level-l representatives is within
// sum_{i<l} 2·d(i) of the true cost. SparseOracle packages that as a tiered
// lookup:
//
//   tier 0 — identity:        a == b                      → 0, slack 0
//   tier 1 — same leaf:       exact local distances on the cluster's induced
//            subgraph (full matrix for small leaves, landmark/pivot sketch
//            min_p d(a,p)+d(p,b) for large ones)          → slack d(1)/2·d(1)
//   tier 2 — cross-cluster:   Theorem-1 estimate at the lowest level l where
//            the two representatives share a cluster      → slack Σ_{i<l} 2·d(i)
//
// Memory is O(leaves · max_cs · pivots) for the sketches plus whatever
// routing rows the sparse RoutingTables keeps resident — O(N·landmarks +
// frontier), never O(N²). Every estimate is an over-approximation or a
// Theorem-1 bound, so |estimate − exact| <= slack(a, b) holds in both
// directions; `validate_pair` CHECKs that against the exact tables (tests
// and the differential fuzzer run it; release queries never pay for it).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "cluster/hierarchy.h"
#include "net/network.h"
#include "net/routing.h"

namespace iflow::opt {

struct SparseOracleOptions {
  /// Landmarks kept per leaf cluster when the full induced matrix would be
  /// bigger than pivots × members (the coordinator is always one of them).
  std::size_t pivots_per_cluster = 4;
  /// Answer same-leaf queries from the exact routing tables (slack 0)
  /// instead of induced-subgraph sketches. Costs one routing row per
  /// queried source; useful for small deployments that want sparse memory
  /// but exact leaves.
  bool exact_leaves = false;
};

/// A distance estimate together with its a-priori error bound:
/// |value − exact| <= slack.
struct SparseEstimate {
  double value = 0.0;
  double slack = 0.0;
};

/// See file comment. Thread-safe: leaf sketches are built lazily under an
/// internal mutex; all queries are const. The referenced network, routing
/// tables, and hierarchy must outlive the oracle; after any of them change,
/// call refresh() (queries IFLOW_DCHECK against stale use in Debug).
class SparseOracle {
 public:
  SparseOracle(const net::Network& net, const net::RoutingTables& rt,
               const cluster::Hierarchy& h, SparseOracleOptions opts = {});
  ~SparseOracle();
  SparseOracle(const SparseOracle&) = delete;
  SparseOracle& operator=(const SparseOracle&) = delete;

  /// Estimated traversal cost a → b. +inf when either node left the
  /// hierarchy (crashed hosts price themselves out, same contract as
  /// Hierarchy::est_cost).
  double distance(net::NodeId a, net::NodeId b) const;

  /// The bound on |distance(a,b) − exact(a,b)| for this pair's tier.
  double slack(net::NodeId a, net::NodeId b) const;

  /// Estimate and bound in one lookup (the tier walk is shared).
  SparseEstimate estimate(net::NodeId a, net::NodeId b) const;

  /// CHECKs |estimate − exact| <= slack + eps against the exact routing
  /// tables; infinite estimates must coincide with unreachability. Explicit
  /// validation hook for tests/fuzzers — O(one routing row), so callers
  /// choose when to pay for it.
  void validate_pair(net::NodeId a, net::NodeId b) const;

  /// Drops lazily built leaf sketches and re-stamps against the current
  /// routing/hierarchy versions. Call after RoutingTables::sync +
  /// Hierarchy::refresh.
  void refresh();

  /// Stamp combining the routing and hierarchy versions this oracle was
  /// built (or last refreshed) against; DistanceOracle records it.
  std::uint64_t stamp() const;

  /// Bytes held by resident leaf sketches (the routing rows are accounted
  /// by RoutingTables::memory_bytes).
  std::size_t memory_bytes() const;

  const net::RoutingTables& routing() const { return *rt_; }
  const cluster::Hierarchy& hierarchy() const { return *h_; }

 private:
  struct LeafSketch;
  const LeafSketch& sketch_locked(std::size_t cluster_index) const;

  const net::Network* net_;
  const net::RoutingTables* rt_;
  const cluster::Hierarchy* h_;
  SparseOracleOptions opts_;
  std::uint64_t built_rt_ = 0;  // rt_->built_against() at ctor/refresh
  std::uint64_t built_h_ = 0;   // h_->version() at ctor/refresh

  mutable std::mutex mu_;
  mutable std::unordered_map<std::size_t, std::unique_ptr<LeafSketch>>
      sketches_;
};

}  // namespace iflow::opt
