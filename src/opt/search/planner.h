// Core joint plan+placement search (the search-core layer).
//
// plan_optimal() finds, over ALL bushy join trees, ALL ways of covering the
// target source set with the available leaf units (base streams and reusable
// derived streams), and ALL assignments of join operators to candidate
// sites, the combination minimising total communication cost under a caller
// supplied distance oracle. It is therefore the "exhaustive search" of the
// paper — every algorithm (global exhaustive, per-cluster Top-Down steps,
// per-cluster Bottom-Up steps) is this search with a different site set and
// distance oracle.
//
// Implementation: dynamic programming over leafset masks. For a fixed tree
// the placement cost decomposes along tree edges, so
//   g[m][p]     = cheapest way to make the joined result of mask m available
//                 at site p (either a unit streamed in directly, or a join
//                 operator somewhere plus the transfer edge), and
//   best_op[m][p] = cheapest way to compute m with a join operator AT p
//                 = min over splits (A,B) of g[A][p] + g[B][p].
// This explores exactly the space of (cover, tree, assignment) combinations
// and returns its optimum; tests verify equality with literal enumeration.
// The *size* of that space, counted with the paper's exhaustive semantics,
// is returned separately (count_plans) and feeds the Fig 9 series.
//
// Mechanically the tables are flat arrays carved from a PlanWorkspace arena
// and indexed by (compressed subset rank, site); the distance oracle is
// materialized into dense unit×site / site×site matrices up front so the DP
// hot loops never indirect through it. The per-site sweep runs on the
// workspace's thread pool when profitable, with a fixed reduction order per
// (mask, site) cell — every argmin scans units, splits and relay sites in
// the same ascending order regardless of thread count, so parallel results
// are bitwise-identical to the serial ones (the differential fuzzer checks
// this).
#pragma once

#include <vector>

#include "net/routing.h"
#include "opt/search/distance_oracle.h"
#include "opt/search/workspace.h"
#include "query/plan.h"

namespace iflow::opt {

struct PlannerInput {
  const query::RateModel* rates = nullptr;
  /// Available leaf inputs. Masks may repeat (several providers of the same
  /// derived stream) and may cover several sources (derived streams,
  /// Top-Down virtual inputs).
  std::vector<query::LeafUnit> units;
  /// The set of query-local sources to assemble (exactly).
  query::Mask target = 0;
  /// Node the result must be delivered to; kInvalidNode means the result
  /// may stay wherever the root operator lands (Bottom-Up intermediate
  /// levels).
  net::NodeId delivery = net::kInvalidNode;
  /// Candidate operator sites (physical node ids).
  std::vector<net::NodeId> sites;
  /// Distance source; must be a (pseudo-)metric (all oracles in this
  /// library are).
  DistanceOracle dist;
  query::QueryId query_id = 0;
  /// Byte rate of the delivery edge; < 0 = the target's raw rate. Used for
  /// aggregation queries, where the root result is aggregated in place and
  /// only the (smaller) aggregate stream travels to the sink.
  double delivery_bytes_rate = -1.0;
};

struct PlannerResult {
  bool feasible = false;
  /// Total cost under the input oracle, including the delivery edge.
  double cost = 0.0;
  query::Deployment deployment;
  /// For each deployment.units entry, the index of the PlannerInput::units
  /// option it came from (multi-level algorithms stitch results with this).
  std::vector<int> unit_sources;
  /// Size of the equivalent exhaustive search space (covers × trees ×
  /// assignments), the quantity the paper's scalability study reports.
  double plans_considered = 0.0;
};

/// `ws` supplies the DP scratch and worker threads; pass the same workspace
/// across invocations to amortize allocation. The default is a process-wide
/// thread-local workspace.
PlannerResult plan_optimal(const PlannerInput& in,
                           PlanWorkspace& ws = default_workspace());

/// Exhaustive-semantics search-space size for assembling `target` from
/// `units` with operators placed on `site_count` sites:
/// sum over covers with u parts of (2u-3)!! · site_count^(u-1).
double count_plans(const std::vector<query::LeafUnit>& units,
                   query::Mask target, std::size_t site_count);

/// Reference per-tree optimal placement (dynamic programming along the
/// tree). Used by tests to validate plan_optimal and by the phased
/// baselines, which fix the tree first. Leaves of `tree` index `units`.
struct TreePlacement {
  bool feasible = false;
  std::vector<net::NodeId> op_nodes;  // per internal node, in arena order
  double cost = 0.0;                  // includes the delivery edge
};
TreePlacement place_tree_optimal(const query::JoinTree& tree,
                                 const std::vector<query::LeafUnit>& units,
                                 const query::RateModel& rates,
                                 net::NodeId delivery,
                                 const std::vector<net::NodeId>& sites,
                                 const DistanceOracle& dist,
                                 double delivery_bytes_rate = -1.0,
                                 PlanWorkspace& ws = default_workspace());

/// Builds a Deployment from an explicit tree, its units and per-internal-op
/// placements. Unused units are dropped.
query::Deployment assemble_deployment(const query::JoinTree& tree,
                                      const std::vector<query::LeafUnit>& units,
                                      const query::RateModel& rates,
                                      const std::vector<net::NodeId>& op_nodes,
                                      net::NodeId sink, query::QueryId qid);

}  // namespace iflow::opt
