#include "opt/search/sparse_oracle.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/theory.h"

namespace iflow::opt {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

/// Lazily built per-leaf-cluster distance sketch over the cluster's induced
/// subgraph. Small clusters keep the full member × member matrix (estimates
/// are induced-exact, slack d(1)); larger ones keep pivot rows only and
/// answer min_p d(a,p) + d(p,b) (slack 2·d(1), since the coordinator is
/// always a pivot).
struct SparseOracle::LeafSketch {
  std::vector<net::NodeId> members;
  std::unordered_map<net::NodeId, std::uint32_t> pos;
  /// Row-major: full |m| × |m| induced matrix, or |pivots| × |m| rows.
  std::vector<double> rows;
  bool full = false;

  double local(std::uint32_t a, std::uint32_t b) const {
    if (full) return rows[static_cast<std::size_t>(a) * members.size() + b];
    double best = kInf;
    const std::size_t m = members.size();
    for (std::size_t p = 0; p * m < rows.size(); ++p) {
      best = std::min(best, rows[p * m + a] + rows[p * m + b]);
    }
    return best;
  }

  std::size_t bytes() const {
    return rows.size() * sizeof(double) +
           members.size() * (sizeof(net::NodeId) + sizeof(std::uint32_t) * 2);
  }
};

SparseOracle::SparseOracle(const net::Network& net,
                           const net::RoutingTables& rt,
                           const cluster::Hierarchy& h,
                           SparseOracleOptions opts)
    : net_(&net), rt_(&rt), h_(&h), opts_(opts) {
  IFLOW_CHECK(opts_.pivots_per_cluster >= 1);
  built_rt_ = rt.built_against();
  built_h_ = h.version();
}

SparseOracle::~SparseOracle() = default;

void SparseOracle::refresh() {
  std::lock_guard<std::mutex> lock(mu_);
  sketches_.clear();
  built_rt_ = rt_->built_against();
  built_h_ = h_->version();
}

std::uint64_t SparseOracle::stamp() const {
  return built_rt_ * 0x9E3779B97F4A7C15ULL ^ built_h_;
}

std::size_t SparseOracle::memory_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& [idx, sk] : sketches_) total += sk->bytes();
  return total;
}

const SparseOracle::LeafSketch& SparseOracle::sketch_locked(
    std::size_t cluster_index) const {
  auto it = sketches_.find(cluster_index);
  if (it != sketches_.end()) return *it->second;

  auto sk = std::make_unique<LeafSketch>();
  sk->members = h_->level(1)[cluster_index].members;
  const std::size_t m = sk->members.size();
  for (std::size_t i = 0; i < m; ++i) {
    sk->pos[sk->members[i]] = static_cast<std::uint32_t>(i);
  }
  std::vector<double> local = cluster::induced_distances(*net_, sk->members);
  if (m <= 2 * opts_.pivots_per_cluster) {
    sk->full = true;
    sk->rows = std::move(local);
  } else {
    // Landmarks: the coordinator (so every estimate is bounded by
    // d(a,c) + d(c,b) <= 2·d(1)), then farthest-point sampling for
    // coverage. Deterministic: ties resolve to the lowest member index.
    const std::uint32_t coord =
        sk->pos.at(h_->level(1)[cluster_index].coordinator);
    std::vector<std::uint32_t> pivots{coord};
    std::vector<double> nearest(m);
    for (std::size_t i = 0; i < m; ++i) nearest[i] = local[coord * m + i];
    while (pivots.size() < opts_.pivots_per_cluster) {
      std::uint32_t far = coord;
      double far_d = -1.0;
      for (std::uint32_t i = 0; i < m; ++i) {
        const double nd = std::isfinite(nearest[i]) ? nearest[i] : -1.0;
        if (nd > far_d) {
          far_d = nd;
          far = i;
        }
      }
      if (far_d <= 0.0) break;  // everything already covered (or isolated)
      pivots.push_back(far);
      for (std::size_t i = 0; i < m; ++i) {
        nearest[i] = std::min(nearest[i], local[far * m + i]);
      }
    }
    sk->rows.resize(pivots.size() * m);
    for (std::size_t p = 0; p < pivots.size(); ++p) {
      for (std::size_t i = 0; i < m; ++i) {
        sk->rows[p * m + i] = local[static_cast<std::size_t>(pivots[p]) * m + i];
      }
    }
  }
  it = sketches_.emplace(cluster_index, std::move(sk)).first;
  return *it->second;
}

SparseEstimate SparseOracle::estimate(net::NodeId a, net::NodeId b) const {
  IFLOW_DCHECK(rt_->built_against() == built_rt_ && h_->version() == built_h_);
  if (a == b) return {0.0, 0.0};
  if (!h_->contains(a) || !h_->contains(b)) return {kInf, 0.0};

  const std::size_t ca = h_->cluster_of(a, 1);
  const std::size_t cb = h_->cluster_of(b, 1);
  if (ca == cb) {
    // Sketches are only sound against an induced-based d(1); hierarchies
    // built the classic way answer leaves exactly instead.
    if (opts_.exact_leaves || !h_->local_leaf_metrics()) {
      return {rt_->cost(a, b), 0.0};
    }
    SparseEstimate est;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const LeafSketch& sk = sketch_locked(ca);
      est.value = sk.local(sk.pos.at(a), sk.pos.at(b));
      est.slack = (sk.full ? 1.0 : 2.0) * h_->d(1);
    }
    if (!std::isfinite(est.value)) {
      // The induced subgraph is disconnected but the pair may still be
      // reachable through the rest of the network: fall back to exact.
      return {rt_->cost(a, b), 0.0};
    }
    return est;
  }

  // Cross-cluster: Theorem-1 estimate at the lowest level where the two
  // representatives share a cluster (the tightest available slack).
  for (int l = 2; l <= h_->height(); ++l) {
    const net::NodeId ra = h_->representative(a, l);
    const net::NodeId rb = h_->representative(b, l);
    if (h_->cluster_of(ra, l) == h_->cluster_of(rb, l)) {
      return {rt_->cost(ra, rb), cluster::theorem1_slack(*h_, l)};
    }
  }
  // Unreachable in the hierarchy sense (cannot happen with a single top
  // cluster, but keep the contract total).
  return {kInf, 0.0};
}

double SparseOracle::distance(net::NodeId a, net::NodeId b) const {
  return estimate(a, b).value;
}

double SparseOracle::slack(net::NodeId a, net::NodeId b) const {
  return estimate(a, b).slack;
}

void SparseOracle::validate_pair(net::NodeId a, net::NodeId b) const {
  const SparseEstimate est = estimate(a, b);
  const double exact = rt_->cost(a, b);
  if (!std::isfinite(est.value) || !std::isfinite(exact)) {
    // An infinite estimate is only allowed for genuinely severed pairs —
    // nodes outside the hierarchy (crashed) or unreachable in the network.
    const bool severed = !h_->contains(a) || !h_->contains(b) ||
                         !std::isfinite(exact);
    IFLOW_CHECK_MSG(severed || std::isfinite(est.value),
                    "finite pair (" << a << ", " << b
                                    << ") estimated as unreachable");
    return;
  }
  const double eps = 1e-9 * (1.0 + exact + est.slack);
  IFLOW_CHECK_MSG(std::abs(est.value - exact) <= est.slack + eps,
                  "estimate " << est.value << " for (" << a << ", " << b
                              << ") outside slack " << est.slack
                              << " of exact " << exact);
}

}  // namespace iflow::opt
