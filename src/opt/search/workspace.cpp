#include "opt/search/workspace.h"

#include <cstdlib>
#include <thread>

namespace iflow::opt {

namespace {

int default_thread_count() {
  if (const char* env = std::getenv("IFLOW_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

PlanWorkspace::PlanWorkspace(int threads) {
  set_threads(threads);
}

void PlanWorkspace::set_threads(int threads) {
  threads_ = threads < 0 ? default_thread_count() : (threads < 1 ? 1 : threads);
  pool_.reset();
}

ThreadPool& PlanWorkspace::pool() {
  if (!pool_) pool_ = std::make_unique<ThreadPool>(threads_);
  return *pool_;
}

void PlanWorkspace::begin(std::size_t bytes) {
  // Max alignment slack per carve is bounded by alignof(max_align_t); a
  // small fixed cushion keeps begin() callers honest without per-carve
  // bookkeeping.
  bytes += 16 * alignof(std::max_align_t);
  if (arena_.size() < bytes) arena_.resize(bytes);
  used_ = 0;
}

PlanWorkspace& default_workspace() {
  thread_local PlanWorkspace ws;
  return ws;
}

}  // namespace iflow::opt
