// Reusable scratch for the joint plan+placement search.
//
// Every planner invocation needs the same family of buffers — the DP tables
// g / best_op / choices keyed by (mask, site), the materialized distance
// matrices, and per-tree placement tables. A PlanWorkspace owns them as one
// bump-allocated arena that grows to the high-water mark and is then reused
// verbatim, so multi-query sessions, the hierarchical optimizers (which run
// one planner call per cluster per level) and the differential fuzzer stop
// paying an allocation storm per call. It also owns the worker pool used by
// the deterministic parallel site sweep.
//
// Lifetime and threading rules (see DESIGN.md §9):
//   * a workspace serves ONE planning thread at a time; the pool inside
//     parallelizes a single invocation, it does not make the workspace
//     shareable;
//   * buffers are invalidated by the next planner call on the same
//     workspace — planner results never alias workspace memory;
//   * thread count changes take effect on the next invocation and never
//     change planner output (the sweep's reduction order is fixed).
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"

namespace iflow::opt {

class PlanWorkspace {
 public:
  /// threads < 0: use the IFLOW_THREADS environment variable when set, else
  /// one per hardware thread. threads == 0 or 1: serial. The pool is
  /// created lazily on the first parallel sweep.
  explicit PlanWorkspace(int threads = -1);

  /// Effective thread count (>= 1) the next sweep will use.
  int threads() const { return threads_; }

  /// Reconfigures the worker count; drops the existing pool.
  void set_threads(int threads);

  ThreadPool& pool();

  /// Resets the bump pointer and guarantees `bytes` of arena capacity so
  /// the carve() calls that follow never reallocate (pointer stability for
  /// the duration of one planner invocation).
  void begin(std::size_t bytes);

  /// Carves an uninitialized array of n Ts from the arena. T must be
  /// trivially destructible. Alignment is rounded up to alignof(T).
  template <typename T>
  T* carve(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>);
    std::size_t off = (used_ + alignof(T) - 1) & ~(alignof(T) - 1);
    IFLOW_CHECK_MSG(off + n * sizeof(T) <= arena_.size(),
                    "arena overrun: begin() reserved too little");
    used_ = off + n * sizeof(T);
    return reinterpret_cast<T*>(arena_.data() + off);
  }

  /// Arena capacity high-water mark in bytes (diagnostics, tests).
  std::size_t capacity() const { return arena_.size(); }

 private:
  int threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::byte> arena_;
  std::size_t used_ = 0;
};

/// Thread-local fallback workspace used when the caller supplies none
/// (OptimizerEnv::workspace == nullptr); keeps casual callers — tests,
/// examples, single planner calls — on the reuse path with no plumbing.
PlanWorkspace& default_workspace();

}  // namespace iflow::opt
