#include "opt/top_down.h"

#include <cmath>

#include "opt/view_planner.h"
#include "query/rates.h"
#include "verify/validator.h"

namespace iflow::opt {

OptimizeResult TopDownOptimizer::optimize(const query::Query& q) {
  IFLOW_CHECK(env_.catalog && env_.network && env_.routing && env_.hierarchy);
  const cluster::Hierarchy& h = *env_.hierarchy;
  const net::RoutingTables& rt = *env_.routing;
  query::RateModel rates(*env_.catalog, q, env_.projection_factor);

  std::vector<query::LeafUnit> units =
      collect_units(rates, env_.reuse ? env_.registry : nullptr, nullptr);
  std::vector<ViewInput> inputs;
  inputs.reserve(units.size());
  for (query::LeafUnit& u : units) inputs.push_back(ViewInput{u, kNoCode});

  query::Deployment final_deployment;
  final_deployment.query = q.id;
  final_deployment.sink = q.sink;
  std::vector<ViewPlanStats> stats(static_cast<std::size_t>(h.height()));

  const int code = plan_view_recursive(
      env_, h.height(), 0, inputs, rates.full(), q.sink, rates, q.id,
      final_deployment, stats, /*refine=*/true, delivery_rate_for(q, rates));
  if (code == kInfeasibleCode) {
    OptimizeResult out;
    out.feasible = false;
    return out;
  }
  final_deployment.aggregate = q.aggregate;
  query::validate_deployment(final_deployment);

  OptimizeResult out;
  out.feasible = true;
  out.deployment = std::move(final_deployment);
  out.actual_cost = query::deployment_cost(out.deployment, rt);
  // Every per-view plan can be feasible and yet the assembled whole be
  // unroutable: a refined sub-view does not price its outgoing edge (its
  // delivery is kInvalidNode), so under a partition it can land in a
  // different component than its consumer. Surface that as infeasibility —
  // feasible results always have finite cost.
  if (!std::isfinite(out.actual_cost)) {
    OptimizeResult infeasible;
    infeasible.feasible = false;
    return infeasible;
  }
  out.planned_cost = out.actual_cost;
  out.levels_used = h.height();

  // Deployment time: the query climbs the sink's coordinator chain to the
  // top, then every level plans (plan evaluations) and dispatches views to
  // member coordinators.
  double climb_ms = 0.0;
  for (int l = 1; l < h.height(); ++l) {
    climb_ms += rt.delay_ms(h.representative(q.sink, l),
                            h.representative(q.sink, l + 1));
  }
  out.deploy_time_ms = climb_ms;
  for (const ViewPlanStats& s : stats) {
    out.plans_considered += s.plans;
    out.deploy_time_ms += s.dispatch_ms + s.plans * env_.plan_eval_us / 1000.0;
  }
  IFLOW_VERIFY_RESULT(out, env_, q);
  return out;
}

}  // namespace iflow::opt
