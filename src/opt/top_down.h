// The Top-Down algorithm (paper §2.2).
//
// The query is submitted to the top-level coordinator, which exhaustively
// searches trees × reuse covers × member assignments within its cluster
// under the level-h cost approximation (Theorem 1). The chosen assignment
// partitions the query into views — one per level-h member — and each view
// is recursively re-planned inside that member's underlying cluster at the
// next level down, until operators land on physical nodes at level 1.
// Sub-optimality is bounded by Theorem 3; the search space by Theorem 2.
#pragma once

#include "opt/optimizer.h"
#include "opt/view.h"

namespace iflow::opt {

class TopDownOptimizer final : public Optimizer {
 public:
  explicit TopDownOptimizer(const OptimizerEnv& env) : env_(env) {
    IFLOW_CHECK(env.hierarchy != nullptr);
  }

  std::string name() const override {
    return env_.reuse ? "top-down+reuse" : "top-down";
  }
  OptimizeResult optimize(const query::Query& q) override;

 private:
  OptimizerEnv env_;
};

}  // namespace iflow::opt
