// Analytic search-space sizes and sub-optimality bounds from the paper.
//
// These formulas drive the Fig 9 "analytical bounds" series and are
// property-tested against the optimizers' measured plan counters.
#pragma once

#include <cstddef>

#include "cluster/hierarchy.h"

namespace iflow::cluster {

/// Lemma 1: size of the exhaustive plan+deployment space for a query over K
/// (> 1) sources on an N-node network,
///   O_exhaustive = K(K-1)(K+1)/6 · N^(K-1).
double lemma1_search_space(int k_sources, std::size_t n_nodes);

/// Number of distinct unordered bushy join trees over K labelled leaves:
/// (2K-3)!! = 1·3·5·…·(2K-3). This is what the tree enumerator produces and
/// what the measured plan counters are built from.
double bushy_tree_count(int k_sources);

/// Eq. 1: β = h · (max_cs / N)^(K-1), the bound on the ratio of the
/// hierarchical algorithms' search space to the exhaustive one
/// (Theorems 2 and 4).
double beta(int k_sources, std::size_t n_nodes, int max_cs, int height);

/// Theorem 2 / Theorem 4 worst-case search-space bound for the Top-Down and
/// Bottom-Up algorithms: β · O_exhaustive.
double hierarchical_search_space_bound(int k_sources, std::size_t n_nodes,
                                       int max_cs, int height);

/// Theorem 1 slack at level l: sum_{i=1}^{l-1} 2 dᵢ. The actual traversal
/// cost between two nodes never exceeds the level-l estimate plus this.
double theorem1_slack(const Hierarchy& h, int level);

/// Theorem 3: upper bound on the Top-Down algorithm's absolute
/// sub-optimality for a chosen query tree, sum_k rate_k · sum_{i<h} 2 dᵢ,
/// where `edge_rates` holds the per-unit-time data rate of every edge of the
/// deployed query tree.
double theorem3_bound(const Hierarchy& h, const std::vector<double>& edge_rates);

}  // namespace iflow::cluster
