// Virtual hierarchical network partitions (paper §2.1.1).
//
// Physical nodes are clustered by traversal cost into Level-1 clusters of at
// most `max_cs` members; each cluster's medoid becomes its coordinator and is
// promoted to Level 2, where clustering repeats, until a single top-level
// cluster remains. The hierarchy provides:
//   * representative(n, l)  — the physical coordinator standing in for n at
//     level l (n itself at level 1);
//   * est_cost(a, b, l)     — the level-l cost approximation of Theorem 1;
//   * d(l)                  — max intra-cluster traversal cost at level l,
//     the dᵢ of Theorems 1 and 3;
//   * underlying(c, l)      — the physical nodes beneath a level-l node,
//     which is the planning domain the Top-Down algorithm recurses into.
//
// The structure supports runtime node joins and departures following the
// paper's join protocol (walk down from the top, at each level descending
// into the closest child cluster).
#pragma once

#include <optional>
#include <vector>

#include "common/prng.h"
#include "net/network.h"
#include "net/routing.h"

namespace iflow::cluster {

/// One cluster at some hierarchy level. `members` are physical node ids
/// (at levels >= 2 they are coordinators promoted from below).
struct Cluster {
  std::vector<net::NodeId> members;
  net::NodeId coordinator = net::kInvalidNode;
};

/// Immutable-by-default multi-level clustering of a network; see file
/// comment. Heights and cluster contents are deterministic given the Prng.
class Hierarchy {
 public:
  /// Builds the full hierarchy bottom-up. `max_cs` >= 2.
  static Hierarchy build(const net::Network& net, const net::RoutingTables& rt,
                         int max_cs, Prng& prng);

  /// Scale-path construction: level-1 clusters come from caller-supplied
  /// disjoint physical partitions (e.g. GT-ITM stub domains) instead of a
  /// global k-medoids over the all-pairs matrix. Intra-partition metrics
  /// (coordinator election, splits of oversize partitions, d(1)) are
  /// computed on the induced subgraph of each partition — an upper bound on
  /// the true traversal cost, so the Theorem-1 slack stays sound — and the
  /// routing tables are only consulted for promoted coordinators, one row
  /// per coordinator. Partitions must be non-empty, disjoint, and cover
  /// node ids < net.node_count().
  static Hierarchy build_partitioned(
      const net::Network& net, const net::RoutingTables& rt,
      const std::vector<std::vector<net::NodeId>>& partitions, int max_cs,
      Prng& prng);

  /// Number of levels h; levels are numbered 1 (physical) .. h (single
  /// top-level cluster).
  int height() const { return static_cast<int>(levels_.size()); }

  int max_cs() const { return max_cs_; }

  /// Clusters at a level (1-based).
  const std::vector<Cluster>& level(int l) const;

  /// The node ids that participate at level l (all physical nodes at level
  /// 1; promoted coordinators above).
  std::vector<net::NodeId> nodes_at(int l) const;

  /// The physical coordinator representing `n` at level l. representative(n,
  /// 1) == n; at higher levels it is the coordinator chain.
  net::NodeId representative(net::NodeId n, int l) const;

  /// True when `n` currently participates in the hierarchy (false for ids
  /// never admitted or removed by remove_node — e.g. crashed nodes).
  bool contains(net::NodeId n) const;

  /// Index into level(l) of the cluster containing level-l node `member`.
  std::size_t cluster_of(net::NodeId member, int l) const;

  /// Maximum intra-cluster traversal cost dᵢ at level l (0 for singleton
  /// clusters).
  double d(int l) const;

  /// Level-l estimate of the traversal cost between physical nodes a and b:
  /// the actual cost between their level-l representatives. By Theorem 1,
  /// actual_cost(a,b) <= est_cost(a,b,l) + sum_{i<l} 2 d(i). Nodes that are
  /// not (or no longer) in the hierarchy estimate at +inf, so planners
  /// naturally price failed hosts out instead of tripping an assertion.
  double est_cost(net::NodeId a, net::NodeId b, int l) const;

  /// Physical nodes in the subtree under level-l node `coord` (for l == 1,
  /// just {coord}).
  const std::vector<net::NodeId>& underlying(net::NodeId coord, int l) const;

  /// Runtime join (paper §2.1.1): the new node, already added to the
  /// network and routing tables, descends from the top level into the
  /// closest cluster at each level and lands in a Level-1 cluster. If that
  /// cluster would exceed max_cs it is split in two. Derived tables are
  /// refreshed.
  void add_node(net::NodeId n, const net::RoutingTables& rt, Prng& prng);

  /// Runtime departure: removes a physical node; if it coordinated any
  /// cluster a replacement is elected and the promotion chain repaired.
  void remove_node(net::NodeId n, const net::RoutingTables& rt);

  /// Re-derives lookup tables (d(l), representatives, underlying sets)
  /// against a freshly built routing snapshot. Call whenever the routing
  /// tables the hierarchy was built against are rebuilt — the hierarchy
  /// keeps a non-owning pointer to them.
  void refresh(const net::RoutingTables& rt) { rebuild_derived(rt); }

  /// Internal consistency check (partitioning, coordinator membership,
  /// promotion chain); used by tests and after maintenance operations.
  void validate(const net::Network& net) const;

  /// Bumps whenever the structure or its derived tables are refreshed;
  /// distance oracles stamp themselves against this to detect staleness.
  std::uint64_t version() const { return version_; }

  /// True when built via build_partitioned: d(1) is the max *induced*
  /// intra-cluster distance, which makes induced-subgraph leaf estimates
  /// bounded by d(1) (the soundness precondition for SparseOracle's leaf
  /// sketch tier).
  bool local_leaf_metrics() const { return local_leaf_metrics_; }

 private:
  void rebuild_derived(const net::RoutingTables& rt);
  void handle_overflow(int level, std::size_t cluster_index,
                       const net::RoutingTables& rt, Prng& prng);

  int max_cs_ = 0;
  const net::RoutingTables* rt_ = nullptr;  // non-owning; outlives hierarchy
  /// Set by build_partitioned: level-1 d(1) is recomputed on each cluster's
  /// induced subgraph (needs the network) instead of all-pairs rt lookups.
  bool local_leaf_metrics_ = false;
  const net::Network* net_ = nullptr;  // non-owning; scale path only
  std::uint64_t version_ = 0;
  std::size_t node_count_ = 0;
  std::vector<std::vector<Cluster>> levels_;  // levels_[l-1] = level l

  // Derived lookup tables, refreshed by rebuild_derived().
  std::vector<double> d_;                              // d_[l-1]
  std::vector<std::vector<std::size_t>> cluster_idx_;  // per level: node -> cluster
  std::vector<std::vector<net::NodeId>> rep_;          // per level: node -> representative
  // underlying_[l-1][coord] — physical nodes beneath a level-l node; stored
  // sparsely as (node -> vector) keyed by node id in a dense vector.
  std::vector<std::vector<std::vector<net::NodeId>>> underlying_;
};

/// Row-major |members| × |members| shortest-path costs over the subgraph
/// induced by `members` (links whose endpoints are both in the set). Paths
/// that would leave the subgraph are ignored, so entries are upper bounds on
/// the true network distance — exactly the soundness direction Theorem 1
/// needs for d(l). Unusable links are skipped; a crashed member is at
/// infinity from everyone (0 from itself).
std::vector<double> induced_distances(const net::Network& net,
                                      const std::vector<net::NodeId>& members);

}  // namespace iflow::cluster
