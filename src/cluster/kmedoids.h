// Capacity-bounded k-medoids clustering over an arbitrary distance oracle.
//
// The paper clusters nodes with K-Means over the inter-node traversal cost
// (§3). Traversal costs live in a metric space without coordinates, so the
// natural K-Means analogue is k-medoids (Lloyd iterations where the centre
// is the member minimising total in-cluster distance). We additionally bound
// cluster sizes by a capacity, because the hierarchy requires at most
// `max_cs` nodes per cluster.
#pragma once

#include <functional>
#include <vector>

#include "common/prng.h"

namespace iflow::cluster {

/// Distance oracle between two items (items are caller-defined indices).
using DistanceFn = std::function<double(std::uint32_t, std::uint32_t)>;

struct KMedoidsResult {
  /// Clusters as lists of items; every input item appears in exactly one.
  std::vector<std::vector<std::uint32_t>> clusters;
  /// Medoid (member chosen as centre) per cluster; this becomes the
  /// cluster coordinator in the hierarchy.
  std::vector<std::uint32_t> medoids;
};

/// Partitions `items` into `k` clusters of at most `capacity` members each.
/// Requires k * capacity >= items.size(). Deterministic given the Prng.
KMedoidsResult k_medoids(const std::vector<std::uint32_t>& items, int k,
                         std::size_t capacity, const DistanceFn& dist,
                         Prng& prng, int max_iterations = 20);

}  // namespace iflow::cluster
