#include "cluster/hierarchy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "cluster/kmedoids.h"

namespace iflow::cluster {

namespace {

constexpr std::size_t kNoCluster = std::numeric_limits<std::size_t>::max();
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Member of `members` minimising the total traversal cost to the rest;
/// deterministic coordinator (re-)election.
net::NodeId elect_coordinator(const std::vector<net::NodeId>& members,
                              const DistanceFn& dist) {
  IFLOW_CHECK(!members.empty());
  net::NodeId best = members.front();
  double best_sum = kInf;
  for (auto c : members) {
    double sum = 0.0;
    for (auto m : members) sum += dist(c, m);
    if (sum < best_sum) {
      best_sum = sum;
      best = c;
    }
  }
  return best;
}

net::NodeId elect_coordinator(const std::vector<net::NodeId>& members,
                              const net::RoutingTables& rt) {
  return elect_coordinator(
      members, [&rt](std::uint32_t a, std::uint32_t b) { return rt.cost(a, b); });
}

/// Pairwise costs among `items` materialized as a row-major matrix through
/// one routing row per item (fill_costs pins each source row exactly once),
/// plus the item→matrix-index map the DistanceFn needs.
std::vector<double> pairwise_costs(
    const std::vector<net::NodeId>& items, const net::RoutingTables& rt,
    std::unordered_map<net::NodeId, std::uint32_t>* pos) {
  const std::size_t m = items.size();
  pos->clear();
  for (std::size_t i = 0; i < m; ++i) {
    (*pos)[items[i]] = static_cast<std::uint32_t>(i);
  }
  std::vector<double> mat(m * m);
  for (std::size_t i = 0; i < m; ++i) {
    rt.fill_costs(items[i], items.data(), m, mat.data() + i * m);
  }
  return mat;
}

}  // namespace

std::vector<double> induced_distances(
    const net::Network& net, const std::vector<net::NodeId>& members) {
  const std::size_t m = members.size();
  std::unordered_map<net::NodeId, std::uint32_t> local;
  local.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    local[members[i]] = static_cast<std::uint32_t>(i);
  }
  // Induced adjacency: only links with both endpoints inside the set.
  std::vector<std::vector<std::pair<std::uint32_t, double>>> adj(m);
  for (std::size_t i = 0; i < m; ++i) {
    for (auto idx : net.incident(members[i])) {
      if (!net.usable(idx)) continue;
      const net::Link& l = net.links()[idx];
      const net::NodeId other = (l.a == members[i]) ? l.b : l.a;
      const auto it = local.find(other);
      if (it == local.end()) continue;
      adj[i].emplace_back(it->second, l.cost_per_byte);
    }
  }
  std::vector<double> mat(m * m, kInf);
  using Entry = std::pair<double, std::uint32_t>;
  for (std::size_t s = 0; s < m; ++s) {
    double* dist = mat.data() + s * m;
    dist[s] = 0.0;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
    pq.push({0.0, static_cast<std::uint32_t>(s)});
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[u]) continue;
      for (const auto& [v, w] : adj[u]) {
        if (d + w < dist[v]) {
          dist[v] = d + w;
          pq.push({dist[v], v});
        }
      }
    }
  }
  return mat;
}

Hierarchy Hierarchy::build(const net::Network& net,
                           const net::RoutingTables& rt, int max_cs,
                           Prng& prng) {
  IFLOW_CHECK_MSG(max_cs >= 2, "max_cs must be at least 2");
  IFLOW_CHECK(net.node_count() > 0);
  Hierarchy h;
  h.max_cs_ = max_cs;
  h.node_count_ = net.node_count();

  std::vector<std::uint32_t> items(net.node_count());
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i] = static_cast<std::uint32_t>(i);
  }
  const DistanceFn dist = [&rt](std::uint32_t a, std::uint32_t b) {
    return rt.cost(a, b);
  };

  // Cluster each level's node set until a single cluster covers it; that
  // single cluster is the top level.
  while (true) {
    std::vector<Cluster> level;
    if (items.size() <= static_cast<std::size_t>(max_cs)) {
      Cluster top;
      top.members.assign(items.begin(), items.end());
      top.coordinator = elect_coordinator(top.members, rt);
      level.push_back(std::move(top));
      h.levels_.push_back(std::move(level));
      break;
    }
    const int k = static_cast<int>((items.size() + max_cs - 1) /
                                   static_cast<std::size_t>(max_cs));
    KMedoidsResult km = k_medoids(items, k, static_cast<std::size_t>(max_cs),
                                  dist, prng);
    IFLOW_CHECK_MSG(km.clusters.size() >= 2,
                    "clustering must make progress above max_cs nodes");
    std::vector<std::uint32_t> next;
    next.reserve(km.clusters.size());
    for (std::size_t c = 0; c < km.clusters.size(); ++c) {
      Cluster cl;
      cl.members.assign(km.clusters[c].begin(), km.clusters[c].end());
      cl.coordinator = km.medoids[c];
      next.push_back(cl.coordinator);
      level.push_back(std::move(cl));
    }
    h.levels_.push_back(std::move(level));
    items = std::move(next);
  }

  h.rebuild_derived(rt);
  return h;
}

Hierarchy Hierarchy::build_partitioned(
    const net::Network& net, const net::RoutingTables& rt,
    const std::vector<std::vector<net::NodeId>>& partitions, int max_cs,
    Prng& prng) {
  IFLOW_CHECK_MSG(max_cs >= 2, "max_cs must be at least 2");
  IFLOW_CHECK(!partitions.empty());
  Hierarchy h;
  h.max_cs_ = max_cs;
  h.node_count_ = net.node_count();
  h.local_leaf_metrics_ = true;
  h.net_ = &net;

  // Level 1: each partition becomes one cluster (or, when it exceeds
  // max_cs, a local k-medoids split of it). All metrics here are induced —
  // the global routing tables are never consulted per physical node.
  std::vector<Cluster> leaf_level;
  std::unordered_set<net::NodeId> covered;
  for (const auto& part : partitions) {
    IFLOW_CHECK_MSG(!part.empty(), "empty partition");
    for (auto m : part) {
      IFLOW_CHECK(m < net.node_count());
      IFLOW_CHECK_MSG(covered.insert(m).second,
                      "node " << m << " in two partitions");
    }
    std::unordered_map<net::NodeId, std::uint32_t> pos;
    for (std::size_t i = 0; i < part.size(); ++i) {
      pos[part[i]] = static_cast<std::uint32_t>(i);
    }
    const std::vector<double> local = induced_distances(net, part);
    const std::size_t m = part.size();
    const DistanceFn dist = [&local, &pos, m](std::uint32_t a,
                                              std::uint32_t b) {
      return local[static_cast<std::size_t>(pos.at(a)) * m + pos.at(b)];
    };
    if (part.size() <= static_cast<std::size_t>(max_cs)) {
      Cluster cl;
      cl.members = part;
      cl.coordinator = elect_coordinator(cl.members, dist);
      leaf_level.push_back(std::move(cl));
      continue;
    }
    const int k = static_cast<int>((part.size() + max_cs - 1) /
                                   static_cast<std::size_t>(max_cs));
    KMedoidsResult km =
        k_medoids(part, k, static_cast<std::size_t>(max_cs), dist, prng);
    for (std::size_t c = 0; c < km.clusters.size(); ++c) {
      Cluster cl;
      cl.members.assign(km.clusters[c].begin(), km.clusters[c].end());
      cl.coordinator = km.medoids[c];
      leaf_level.push_back(std::move(cl));
    }
  }
  IFLOW_CHECK_MSG(covered.size() == net.node_count(),
                  "partitions cover " << covered.size() << " of "
                                      << net.node_count() << " nodes");
  std::vector<net::NodeId> items;
  items.reserve(leaf_level.size());
  for (const auto& cl : leaf_level) items.push_back(cl.coordinator);
  h.levels_.push_back(std::move(leaf_level));

  // Levels >= 2 cluster the promoted coordinators over true routing costs,
  // materialized once per round (one routing row per coordinator).
  while (true) {
    std::unordered_map<net::NodeId, std::uint32_t> pos;
    const std::vector<double> mat = pairwise_costs(items, rt, &pos);
    const std::size_t m = items.size();
    const DistanceFn dist = [&mat, &pos, m](std::uint32_t a, std::uint32_t b) {
      return mat[static_cast<std::size_t>(pos.at(a)) * m + pos.at(b)];
    };
    std::vector<Cluster> level;
    if (items.size() <= static_cast<std::size_t>(max_cs)) {
      Cluster top;
      top.members = items;
      top.coordinator = elect_coordinator(top.members, dist);
      level.push_back(std::move(top));
      h.levels_.push_back(std::move(level));
      break;
    }
    const int k = static_cast<int>((items.size() + max_cs - 1) /
                                   static_cast<std::size_t>(max_cs));
    KMedoidsResult km =
        k_medoids(items, k, static_cast<std::size_t>(max_cs), dist, prng);
    IFLOW_CHECK_MSG(km.clusters.size() >= 2,
                    "clustering must make progress above max_cs nodes");
    std::vector<net::NodeId> next;
    next.reserve(km.clusters.size());
    for (std::size_t c = 0; c < km.clusters.size(); ++c) {
      Cluster cl;
      cl.members.assign(km.clusters[c].begin(), km.clusters[c].end());
      cl.coordinator = km.medoids[c];
      next.push_back(cl.coordinator);
      level.push_back(std::move(cl));
    }
    h.levels_.push_back(std::move(level));
    items = std::move(next);
  }

  h.rebuild_derived(rt);
  return h;
}

const std::vector<Cluster>& Hierarchy::level(int l) const {
  IFLOW_CHECK(l >= 1 && l <= height());
  return levels_[static_cast<std::size_t>(l - 1)];
}

std::vector<net::NodeId> Hierarchy::nodes_at(int l) const {
  std::vector<net::NodeId> nodes;
  for (const auto& c : level(l)) {
    nodes.insert(nodes.end(), c.members.begin(), c.members.end());
  }
  return nodes;
}

net::NodeId Hierarchy::representative(net::NodeId n, int l) const {
  IFLOW_CHECK(l >= 1 && l <= height());
  IFLOW_CHECK(n < node_count_);
  const net::NodeId rep = rep_[static_cast<std::size_t>(l - 1)][n];
  IFLOW_CHECK_MSG(rep != net::kInvalidNode, "node not in hierarchy");
  return rep;
}

std::size_t Hierarchy::cluster_of(net::NodeId member, int l) const {
  IFLOW_CHECK(l >= 1 && l <= height());
  IFLOW_CHECK(member < node_count_);
  const std::size_t idx = cluster_idx_[static_cast<std::size_t>(l - 1)][member];
  IFLOW_CHECK_MSG(idx != kNoCluster, "node does not participate at level");
  return idx;
}

double Hierarchy::d(int l) const {
  IFLOW_CHECK(l >= 1 && l <= height());
  return d_[static_cast<std::size_t>(l - 1)];
}

bool Hierarchy::contains(net::NodeId n) const {
  return n < node_count_ && rep_[0][n] != net::kInvalidNode;
}

double Hierarchy::est_cost(net::NodeId a, net::NodeId b, int l) const {
  IFLOW_CHECK(rt_ != nullptr);
  IFLOW_CHECK(l >= 1 && l <= height());
  IFLOW_CHECK(a < node_count_ && b < node_count_);
  const net::NodeId ra = rep_[static_cast<std::size_t>(l - 1)][a];
  const net::NodeId rb = rep_[static_cast<std::size_t>(l - 1)][b];
  if (ra == net::kInvalidNode || rb == net::kInvalidNode) {
    return std::numeric_limits<double>::infinity();
  }
  return rt_->cost(ra, rb);
}

const std::vector<net::NodeId>& Hierarchy::underlying(net::NodeId coord,
                                                      int l) const {
  IFLOW_CHECK(l >= 1 && l <= height());
  IFLOW_CHECK(coord < node_count_);
  const auto& u = underlying_[static_cast<std::size_t>(l - 1)][coord];
  IFLOW_CHECK_MSG(!u.empty(), "node does not participate at level");
  return u;
}

void Hierarchy::rebuild_derived(const net::RoutingTables& rt) {
  rt_ = &rt;
  node_count_ = rt.node_count();
  const std::size_t n = node_count_;
  const std::size_t h = levels_.size();

  cluster_idx_.assign(h, std::vector<std::size_t>(n, kNoCluster));
  rep_.assign(h, std::vector<net::NodeId>(n, net::kInvalidNode));
  underlying_.assign(h, std::vector<std::vector<net::NodeId>>(n));
  d_.assign(h, 0.0);

  for (std::size_t li = 0; li < h; ++li) {
    for (std::size_t ci = 0; ci < levels_[li].size(); ++ci) {
      const Cluster& cl = levels_[li][ci];
      for (auto m : cl.members) {
        IFLOW_CHECK(m < n);
        cluster_idx_[li][m] = ci;
      }
      if (li == 0 && local_leaf_metrics_) {
        // Scale path: d(1) from each cluster's induced subgraph — an upper
        // bound on the true intra-cluster cost, never a routing row per
        // physical node.
        const std::vector<double> local = induced_distances(*net_, cl.members);
        for (double v : local) {
          if (std::isfinite(v)) d_[li] = std::max(d_[li], v);
        }
        continue;
      }
      for (auto a : cl.members) {
        for (auto b : cl.members) {
          d_[li] = std::max(d_[li], rt.cost(a, b));
        }
      }
    }
  }

  // Representatives: identity at level 1 (for nodes present), then the
  // coordinator chain.
  for (const auto& cl : levels_[0]) {
    for (auto m : cl.members) rep_[0][m] = m;
  }
  for (std::size_t li = 1; li < h; ++li) {
    for (net::NodeId node = 0; node < n; ++node) {
      const net::NodeId below = rep_[li - 1][node];
      if (below == net::kInvalidNode) continue;
      rep_[li][node] =
          levels_[li - 1][cluster_idx_[li - 1][below]].coordinator;
    }
  }

  // Underlying physical sets: singletons at level 1, unions of the level
  // below for promoted coordinators.
  for (const auto& cl : levels_[0]) {
    for (auto m : cl.members) underlying_[0][m] = {m};
  }
  for (std::size_t li = 1; li < h; ++li) {
    for (const auto& cl : levels_[li - 1]) {
      auto& u = underlying_[li][cl.coordinator];
      for (auto m : cl.members) {
        const auto& sub = underlying_[li - 1][m];
        u.insert(u.end(), sub.begin(), sub.end());
      }
    }
  }
  ++version_;
}

void Hierarchy::add_node(net::NodeId n, const net::RoutingTables& rt,
                         Prng& prng) {
  IFLOW_CHECK(n < rt.node_count());
  // Descend from the top, at each level into the cluster coordinated by the
  // closest member (paper's join protocol).
  std::size_t ci = 0;  // the single top-level cluster
  for (int l = height(); l >= 2; --l) {
    const Cluster& cl = levels_[static_cast<std::size_t>(l - 1)][ci];
    net::NodeId closest = cl.members.front();
    double best = std::numeric_limits<double>::infinity();
    for (auto m : cl.members) {
      const double c = rt.cost(n, m);
      if (c < best) {
        best = c;
        closest = m;
      }
    }
    ci = cluster_of(closest, l - 1);
  }
  levels_[0][ci].members.push_back(n);
  handle_overflow(1, ci, rt, prng);
  rebuild_derived(rt);
}

void Hierarchy::handle_overflow(int level, std::size_t cluster_index,
                                const net::RoutingTables& rt, Prng& prng) {
  auto& clusters = levels_[static_cast<std::size_t>(level - 1)];
  Cluster& cl = clusters[cluster_index];
  if (cl.members.size() <= static_cast<std::size_t>(max_cs_)) {
    return;
  }
  const net::NodeId old_coord = cl.coordinator;
  const DistanceFn dist = [&rt](std::uint32_t a, std::uint32_t b) {
    return rt.cost(a, b);
  };
  KMedoidsResult split = k_medoids(cl.members, 2,
                                   static_cast<std::size_t>(max_cs_), dist,
                                   prng);
  IFLOW_CHECK(split.clusters.size() == 2);
  cl.members = split.clusters[0];
  cl.coordinator = split.medoids[0];
  Cluster sibling;
  sibling.members = split.clusters[1];
  sibling.coordinator = split.medoids[1];
  clusters.push_back(std::move(sibling));
  const net::NodeId c1 = clusters[cluster_index].coordinator;
  const net::NodeId c2 = clusters.back().coordinator;

  if (level == height()) {
    // The (previously single) top cluster split: grow the hierarchy.
    Cluster top;
    top.members = {c1, c2};
    top.coordinator = elect_coordinator(top.members, rt);
    levels_.push_back({std::move(top)});
    return;
  }

  // Patch the parent membership: old_coord's slot becomes c1, c2 is a new
  // promotion.
  auto& parent_clusters = levels_[static_cast<std::size_t>(level)];
  std::size_t pci = kNoCluster;
  for (std::size_t i = 0; i < parent_clusters.size() && pci == kNoCluster;
       ++i) {
    for (auto m : parent_clusters[i].members) {
      if (m == old_coord) {
        pci = i;
        break;
      }
    }
  }
  IFLOW_CHECK_MSG(pci != kNoCluster, "promoted coordinator missing above");
  Cluster& parent = parent_clusters[pci];
  std::replace(parent.members.begin(), parent.members.end(), old_coord, c1);
  parent.members.push_back(c2);
  if (parent.coordinator == old_coord && c1 != old_coord) {
    // The parent's coordinator id is no longer one of its members: re-elect
    // and repair the promotion chain upward (each level's membership holds
    // the coordinator promoted from below; when that coordinator changes,
    // the entry above must change with it, possibly cascading).
    Cluster* cur = &parent;
    for (std::size_t li = static_cast<std::size_t>(level) + 1;; ++li) {
      const net::NodeId old_promoted = cur->coordinator;
      cur->coordinator = elect_coordinator(cur->members, rt);
      const net::NodeId new_promoted = cur->coordinator;
      if (old_promoted == new_promoted || li >= levels_.size()) break;
      Cluster* next = nullptr;
      for (auto& anc : levels_[li]) {
        const auto it =
            std::find(anc.members.begin(), anc.members.end(), old_promoted);
        if (it == anc.members.end()) continue;
        *it = new_promoted;
        if (anc.coordinator == old_promoted) next = &anc;
        break;
      }
      if (next == nullptr) break;  // chain above is intact
      cur = next;
    }
  }
  handle_overflow(level + 1, pci, rt, prng);
}

void Hierarchy::remove_node(net::NodeId n, const net::RoutingTables& rt) {
  IFLOW_CHECK(n < node_count_);
  // Walk the promotion chain upward. `present` is the id that occurs in the
  // current level's membership; `replacement` is what it becomes there
  // (kInvalidNode = plain erasure, when the cluster below vanished).
  net::NodeId present = n;
  net::NodeId replacement = net::kInvalidNode;

  for (std::size_t li = 0; li < levels_.size(); ++li) {
    auto& clusters = levels_[li];
    std::size_t idx = kNoCluster;
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      if (std::find(clusters[i].members.begin(), clusters[i].members.end(),
                    present) != clusters[i].members.end()) {
        idx = i;
        break;
      }
    }
    IFLOW_CHECK_MSG(idx != kNoCluster || li > 0, "node not in hierarchy");
    if (idx == kNoCluster) break;  // `present` was never promoted this far

    Cluster& cl = clusters[idx];
    auto it = std::find(cl.members.begin(), cl.members.end(), present);
    if (replacement == net::kInvalidNode) {
      cl.members.erase(it);
    } else {
      *it = replacement;
    }

    if (cl.members.empty()) {
      // `present` was the sole member, hence also the coordinator; the
      // cluster vanishes and its promotion above must be erased.
      clusters.erase(clusters.begin() + static_cast<std::ptrdiff_t>(idx));
      replacement = net::kInvalidNode;
      continue;  // keep walking with the same `present` id
    }
    if (cl.coordinator == present) {
      cl.coordinator = elect_coordinator(cl.members, rt);
      // Above this level the old promotion carries the id `present`; it
      // must now read as the freshly elected coordinator.
      replacement = cl.coordinator;
      continue;
    }
    break;  // coordinator unaffected: memberships above are intact
  }

  // Drop levels that emptied out entirely, then collapse redundant
  // singleton tops (a one-cluster level above a one-cluster level carries no
  // information).
  while (!levels_.empty() && levels_.back().empty()) levels_.pop_back();
  IFLOW_CHECK_MSG(!levels_.empty(), "cannot remove the last node");
  while (levels_.size() > 1 && levels_.back().size() == 1 &&
         levels_[levels_.size() - 2].size() == 1) {
    levels_.pop_back();
  }

  rebuild_derived(rt);
}

void Hierarchy::validate(const net::Network& net) const {
  IFLOW_CHECK(!levels_.empty());
  // Level-1 members are distinct physical nodes, each cluster within
  // capacity, coordinator a member.
  std::unordered_set<net::NodeId> seen;
  for (const auto& levelClusters : levels_) {
    IFLOW_CHECK(!levelClusters.empty());
    for (const auto& cl : levelClusters) {
      IFLOW_CHECK(!cl.members.empty());
      IFLOW_CHECK(cl.members.size() <= static_cast<std::size_t>(max_cs_));
      IFLOW_CHECK(std::find(cl.members.begin(), cl.members.end(),
                            cl.coordinator) != cl.members.end());
    }
  }
  for (const auto& cl : levels_[0]) {
    for (auto m : cl.members) {
      IFLOW_CHECK(m < net.node_count());
      IFLOW_CHECK_MSG(seen.insert(m).second, "node in two level-1 clusters");
    }
  }
  // Members at level l (>= 2) are exactly the coordinators of level l-1.
  for (std::size_t li = 1; li < levels_.size(); ++li) {
    std::vector<net::NodeId> promoted;
    for (const auto& cl : levels_[li - 1]) promoted.push_back(cl.coordinator);
    std::vector<net::NodeId> members;
    for (const auto& cl : levels_[li]) {
      members.insert(members.end(), cl.members.begin(), cl.members.end());
    }
    std::sort(promoted.begin(), promoted.end());
    std::sort(members.begin(), members.end());
    IFLOW_CHECK_MSG(promoted == members,
                    "level " << li + 1 << " membership != promotions");
  }
  // Exactly one top-level cluster.
  IFLOW_CHECK(levels_.back().size() == 1);
}

}  // namespace iflow::cluster
