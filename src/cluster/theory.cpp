#include "cluster/theory.h"

#include <cmath>

#include "common/check.h"

namespace iflow::cluster {

double lemma1_search_space(int k_sources, std::size_t n_nodes) {
  IFLOW_CHECK(k_sources > 1);
  IFLOW_CHECK(n_nodes > 0);
  const double k = k_sources;
  return k * (k - 1.0) * (k + 1.0) / 6.0 *
         std::pow(static_cast<double>(n_nodes), k - 1.0);
}

double bushy_tree_count(int k_sources) {
  IFLOW_CHECK(k_sources >= 1);
  double count = 1.0;
  for (int f = 2 * k_sources - 3; f >= 3; f -= 2) count *= f;
  return count;
}

double beta(int k_sources, std::size_t n_nodes, int max_cs, int height) {
  IFLOW_CHECK(k_sources > 1);
  IFLOW_CHECK(max_cs >= 1);
  IFLOW_CHECK(height >= 1);
  const double ratio =
      static_cast<double>(max_cs) / static_cast<double>(n_nodes);
  return static_cast<double>(height) *
         std::pow(ratio, static_cast<double>(k_sources - 1));
}

double hierarchical_search_space_bound(int k_sources, std::size_t n_nodes,
                                       int max_cs, int height) {
  return beta(k_sources, n_nodes, max_cs, height) *
         lemma1_search_space(k_sources, n_nodes);
}

double theorem1_slack(const Hierarchy& h, int level) {
  IFLOW_CHECK(level >= 1 && level <= h.height());
  double slack = 0.0;
  for (int i = 1; i < level; ++i) slack += 2.0 * h.d(i);
  return slack;
}

double theorem3_bound(const Hierarchy& h,
                      const std::vector<double>& edge_rates) {
  const double slack = theorem1_slack(h, h.height());
  double bound = 0.0;
  for (double rate : edge_rates) {
    IFLOW_CHECK(rate >= 0.0);
    bound += rate * slack;
  }
  return bound;
}

}  // namespace iflow::cluster
