#include "cluster/kmedoids.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace iflow::cluster {

namespace {

/// Assigns every item to the nearest medoid that still has room. Items are
/// processed in order of how strongly they prefer their best medoid, so
/// capacity conflicts are resolved in favour of the tightest matches.
std::vector<std::vector<std::uint32_t>> assign_with_capacity(
    const std::vector<std::uint32_t>& items,
    const std::vector<std::uint32_t>& medoids, std::size_t capacity,
    const DistanceFn& dist) {
  struct Pref {
    std::uint32_t item;
    double best;
  };
  std::vector<Pref> order;
  order.reserve(items.size());
  for (auto item : items) {
    double best = std::numeric_limits<double>::infinity();
    for (auto m : medoids) best = std::min(best, dist(item, m));
    order.push_back({item, best});
  }
  std::sort(order.begin(), order.end(),
            [](const Pref& a, const Pref& b) { return a.best < b.best; });

  std::vector<std::vector<std::uint32_t>> clusters(medoids.size());
  for (const auto& p : order) {
    std::size_t chosen = medoids.size();
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < medoids.size(); ++c) {
      if (clusters[c].size() >= capacity) continue;
      const double d = dist(p.item, medoids[c]);
      // `chosen == medoids.size()` keeps the first cluster with room even
      // when every distance is infinite (the item is partitioned away from
      // all medoids); any finite distance then beats the fallback.
      if (d < best || chosen == medoids.size()) {
        best = d;
        chosen = c;
      }
    }
    IFLOW_CHECK_MSG(chosen < medoids.size(), "no cluster with free capacity");
    clusters[chosen].push_back(p.item);
  }
  return clusters;
}

/// The member of `members` minimising the sum of distances to the rest.
std::uint32_t medoid_of(const std::vector<std::uint32_t>& members,
                        const DistanceFn& dist) {
  IFLOW_CHECK(!members.empty());
  std::uint32_t best = members.front();
  double best_sum = std::numeric_limits<double>::infinity();
  for (auto candidate : members) {
    double sum = 0.0;
    for (auto other : members) sum += dist(candidate, other);
    if (sum < best_sum) {
      best_sum = sum;
      best = candidate;
    }
  }
  return best;
}

}  // namespace

KMedoidsResult k_medoids(const std::vector<std::uint32_t>& items, int k,
                         std::size_t capacity, const DistanceFn& dist,
                         Prng& prng, int max_iterations) {
  IFLOW_CHECK(k >= 1);
  IFLOW_CHECK(!items.empty());
  IFLOW_CHECK_MSG(static_cast<std::size_t>(k) * capacity >= items.size(),
                  "k * capacity too small for item count");

  // Seed with k distinct random items (k-means++ style spreading: first is
  // random, each next is the item farthest from the chosen set).
  std::vector<std::uint32_t> medoids;
  medoids.reserve(static_cast<std::size_t>(k));
  medoids.push_back(items[prng.index(items.size())]);
  while (medoids.size() < static_cast<std::size_t>(k)) {
    std::uint32_t farthest = medoids.front();
    double farthest_d = -1.0;
    for (auto item : items) {
      double nearest = std::numeric_limits<double>::infinity();
      for (auto m : medoids) nearest = std::min(nearest, dist(item, m));
      if (nearest > farthest_d) {
        farthest_d = nearest;
        farthest = item;
      }
    }
    medoids.push_back(farthest);
  }

  KMedoidsResult result;
  result.medoids = medoids;
  for (int iter = 0; iter < max_iterations; ++iter) {
    result.clusters =
        assign_with_capacity(items, result.medoids, capacity, dist);
    bool changed = false;
    for (std::size_t c = 0; c < result.clusters.size(); ++c) {
      if (result.clusters[c].empty()) continue;
      const std::uint32_t next = medoid_of(result.clusters[c], dist);
      if (next != result.medoids[c]) {
        result.medoids[c] = next;
        changed = true;
      }
    }
    if (!changed) break;
  }
  result.clusters =
      assign_with_capacity(items, result.medoids, capacity, dist);

  // Drop empty clusters (can happen when k over-provisions capacity) and
  // recompute medoids from the final membership so every medoid is a member
  // of its own cluster even if capacity conflicts displaced it.
  for (std::size_t c = result.clusters.size(); c-- > 0;) {
    if (result.clusters[c].empty()) {
      result.clusters.erase(result.clusters.begin() +
                            static_cast<std::ptrdiff_t>(c));
      result.medoids.erase(result.medoids.begin() +
                           static_cast<std::ptrdiff_t>(c));
    } else {
      result.medoids[c] = medoid_of(result.clusters[c], dist);
    }
  }
  return result;
}

}  // namespace iflow::cluster
