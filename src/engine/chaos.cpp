#include "engine/chaos.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <unordered_set>

#include "verify/validator.h"

namespace iflow::engine {

namespace {
constexpr double kEps = 1e-9;
}

const char* to_string(ChaosEventKind k) {
  switch (k) {
    case ChaosEventKind::kCrashNode: return "crash-node";
    case ChaosEventKind::kFailNode: return "fail-node";
    case ChaosEventKind::kRestoreNode: return "restore-node";
    case ChaosEventKind::kFailLink: return "fail-link";
    case ChaosEventKind::kRestoreLink: return "restore-link";
    case ChaosEventKind::kRateSpike: return "rate-spike";
    case ChaosEventKind::kSetLinkLoss: return "set-link-loss";
    case ChaosEventKind::kSetLinkJitter: return "set-link-jitter";
    case ChaosEventKind::kQueuePressure: return "queue-pressure";
    case ChaosEventKind::kDegradeNode: return "degrade-node";
    case ChaosEventKind::kDegradeLink: return "degrade-link";
    case ChaosEventKind::kClearNode: return "clear-node";
    case ChaosEventKind::kClearLink: return "clear-link";
  }
  return "?";
}

FaultInjector::FaultInjector(const net::Network& net,
                             const query::Catalog& catalog,
                             const ChaosConfig& cfg, std::uint64_t seed)
    : cfg_(cfg), prng_(seed), node_count_(net.node_count()) {
  IFLOW_CHECK(node_count_ >= 2);
  // Distinct endpoint pairs: Network::fail_link downs every parallel (a, b)
  // link at once, so the injector models link state per pair.
  std::unordered_set<std::uint64_t> seen;
  for (const net::Link& l : net.links()) {
    const net::NodeId a = std::min(l.a, l.b);
    const net::NodeId b = std::max(l.a, l.b);
    const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
    if (seen.insert(key).second) link_pairs_.emplace_back(a, b);
  }
  for (query::StreamId s = 0;
       s < static_cast<query::StreamId>(catalog.stream_count()); ++s) {
    streams_.push_back(s);
    base_rates_.push_back(catalog.stream(s).tuple_rate);
  }
}

ChaosEvent FaultInjector::next() {
  ChaosEvent e;
  const bool anything_down = !down_nodes_.empty() || !down_links_.empty();

  if (!streams_.empty() && prng_.chance(cfg_.spike_probability)) {
    e.kind = ChaosEventKind::kRateSpike;
    const std::size_t i = prng_.index(streams_.size());
    e.stream = streams_[i];
    e.rate = base_rates_[i] * prng_.uniform(0.25, 4.0);
    return e;
  }

  // Delivery-layer events: none of these change what is down, so they sit
  // outside the budget/restore bookkeeping. Re-drawing loss or jitter on a
  // pair that already has some simply overwrites it.
  if (!link_pairs_.empty() && prng_.chance(cfg_.loss_probability)) {
    e.kind = ChaosEventKind::kSetLinkLoss;
    const auto& p = prng_.pick(link_pairs_);
    e.a = p.first;
    e.b = p.second;
    e.rate = prng_.uniform(0.0, cfg_.max_link_loss);
    return e;
  }
  if (!link_pairs_.empty() && prng_.chance(cfg_.jitter_probability)) {
    e.kind = ChaosEventKind::kSetLinkJitter;
    const auto& p = prng_.pick(link_pairs_);
    e.a = p.first;
    e.b = p.second;
    e.rate = prng_.uniform(0.0, cfg_.max_jitter_ms);
    return e;
  }
  if (prng_.chance(cfg_.queue_probability)) {
    e.kind = ChaosEventKind::kQueuePressure;
    // Per-tuple service time; the top of the range keeps operator
    // utilization under ~0.4 at the generator's spiked stream rates, so
    // backpressure queues stay shallow and event-time results unaffected.
    e.rate = prng_.uniform(0.0001, 0.0005);
    return e;
  }
  if (prng_.chance(cfg_.gray_probability)) {
    // Gray failures live outside the down-budget bookkeeping: a degraded
    // element stays administratively up. The injector still budgets how
    // many are sick at once and heals restore-biased, like real faults.
    const std::size_t degraded =
        degraded_nodes_.size() + degraded_links_.size();
    const bool budget =
        degraded < static_cast<std::size_t>(std::max(cfg_.max_degraded, 0));
    if (degraded > 0 && (!budget || prng_.chance(cfg_.restore_bias))) {
      const std::size_t pick = prng_.index(degraded);
      if (pick < degraded_nodes_.size()) {
        e.kind = ChaosEventKind::kClearNode;
        e.a = degraded_nodes_[pick];
        degraded_nodes_.erase(degraded_nodes_.begin() +
                              static_cast<std::ptrdiff_t>(pick));
      } else {
        const std::size_t li = pick - degraded_nodes_.size();
        e.kind = ChaosEventKind::kClearLink;
        e.a = degraded_links_[li].first;
        e.b = degraded_links_[li].second;
        degraded_links_.erase(degraded_links_.begin() +
                              static_cast<std::ptrdiff_t>(li));
      }
      return e;
    }
    if (budget) {
      // Three gray families: slow element, lossy element, flapper (slow
      // AND lossy, gated by an on/off wave).
      const std::size_t family = prng_.index(3);
      if (family == 0 || family == 2) {
        e.slowdown = prng_.uniform(1.5, std::max(1.5, cfg_.max_gray_slowdown));
      }
      if (family == 1 || family == 2) {
        e.rate = prng_.uniform(0.05, std::max(0.05, cfg_.max_gray_loss));
      }
      if (family == 2) {
        e.flap_hz = prng_.uniform(0.05, std::max(0.05, cfg_.max_gray_flap_hz));
      }
      std::vector<net::NodeId> well_nodes;
      for (net::NodeId n = 0; n < static_cast<net::NodeId>(node_count_);
           ++n) {
        if (std::find(degraded_nodes_.begin(), degraded_nodes_.end(), n) ==
            degraded_nodes_.end()) {
          well_nodes.push_back(n);
        }
      }
      std::vector<std::pair<net::NodeId, net::NodeId>> well_links;
      for (const auto& p : link_pairs_) {
        if (std::find(degraded_links_.begin(), degraded_links_.end(), p) ==
            degraded_links_.end()) {
          well_links.push_back(p);
        }
      }
      const bool pick_node =
          !well_nodes.empty() && (well_links.empty() || prng_.chance(0.5));
      if (pick_node) {
        e.kind = ChaosEventKind::kDegradeNode;
        e.a = prng_.pick(well_nodes);
        degraded_nodes_.push_back(e.a);
        return e;
      }
      if (!well_links.empty()) {
        const auto& p = prng_.pick(well_links);
        e.kind = ChaosEventKind::kDegradeLink;
        e.a = p.first;
        e.b = p.second;
        degraded_links_.push_back(p);
        return e;
      }
      e = ChaosEvent{};  // everything already degraded; fall through
    }
  }

  // Never take down more than half the nodes: the hierarchy keeps a
  // working quorum and planners always have somewhere to place operators.
  const bool node_budget =
      down_nodes_.size() <
          static_cast<std::size_t>(std::max(cfg_.max_down_nodes, 0)) &&
      (down_nodes_.size() + 1) * 2 <= node_count_;
  const bool link_budget =
      down_links_.size() <
          static_cast<std::size_t>(std::max(cfg_.max_down_links, 0)) &&
      down_links_.size() < link_pairs_.size();
  const bool can_fault = node_budget || link_budget;

  if (anything_down && (prng_.chance(cfg_.restore_bias) || !can_fault)) {
    const std::size_t pool = down_nodes_.size() + down_links_.size();
    const std::size_t pick = prng_.index(pool);
    if (pick < down_nodes_.size()) {
      e.kind = ChaosEventKind::kRestoreNode;
      e.a = down_nodes_[pick];
      down_nodes_.erase(down_nodes_.begin() +
                        static_cast<std::ptrdiff_t>(pick));
    } else {
      const std::size_t li = pick - down_nodes_.size();
      e.kind = ChaosEventKind::kRestoreLink;
      e.a = down_links_[li].first;
      e.b = down_links_[li].second;
      down_links_.erase(down_links_.begin() +
                        static_cast<std::ptrdiff_t>(li));
    }
    return e;
  }

  if (can_fault) {
    const bool pick_node =
        node_budget && (!link_budget || prng_.chance(0.5));
    if (pick_node) {
      std::vector<net::NodeId> up;
      for (net::NodeId n = 0; n < static_cast<net::NodeId>(node_count_);
           ++n) {
        if (std::find(down_nodes_.begin(), down_nodes_.end(), n) ==
            down_nodes_.end()) {
          up.push_back(n);
        }
      }
      e.kind = prng_.chance(0.5) ? ChaosEventKind::kCrashNode
                                 : ChaosEventKind::kFailNode;
      e.a = prng_.pick(up);
      down_nodes_.push_back(e.a);
      return e;
    }
    std::vector<std::pair<net::NodeId, net::NodeId>> up;
    for (const auto& p : link_pairs_) {
      if (std::find(down_links_.begin(), down_links_.end(), p) ==
          down_links_.end()) {
        up.push_back(p);
      }
    }
    const auto& p = prng_.pick(up);
    e.kind = ChaosEventKind::kFailLink;
    e.a = p.first;
    e.b = p.second;
    down_links_.push_back(p);
    return e;
  }

  // Caps reached with nothing down can only happen with zero budgets;
  // degrade to a spike (or a no-op restore-less spike with rate kept).
  IFLOW_CHECK_MSG(!streams_.empty(),
                  "chaos config leaves no applicable event");
  e.kind = ChaosEventKind::kRateSpike;
  const std::size_t i = prng_.index(streams_.size());
  e.stream = streams_[i];
  e.rate = base_rates_[i] * prng_.uniform(0.25, 4.0);
  return e;
}

namespace {

/// Validates every active deployment. Freshly re-planned queries (the ids
/// in `replanned`) get the full semantic + cost pass; untouched ones get
/// the structural + placement pass only (their recorded unit rates may
/// legitimately predate a rate spike).
std::size_t validate_actives(Middleware& mw,
                             const std::unordered_set<query::QueryId>& replanned,
                             std::string* first_detail) {
  opt::OptimizerEnv env = mw.planning_env();
  const std::vector<net::NodeId> excluded = mw.excluded_hosts();
  std::size_t violations = 0;
  for (const Middleware::ActiveView& v : mw.active_views()) {
    verify::ValidateOptions vopts;
    // No active deployment may keep an operator or derived unit on a
    // failed, crashed or load-shed host (kExcludedHost).
    vopts.excluded_hosts = &excluded;
    if (replanned.count(v.query->id) > 0) {
      vopts.query = v.query;
      vopts.planned_cost = v.planned_cost;
    }
    const std::vector<verify::Violation> found =
        verify::validate(*v.deployment, env, vopts);
    if (!found.empty() && first_detail != nullptr && first_detail->empty()) {
      std::ostringstream os;
      os << "query " << v.query->id << ": " << verify::describe(found);
      *first_detail = os.str();
    }
    violations += found.size();
  }
  return violations;
}

std::unordered_set<query::QueryId> replanned_ids(
    const std::vector<Redeployment>& reds) {
  std::unordered_set<query::QueryId> out;
  for (const Redeployment& r : reds) {
    if (r.outcome == Outcome::kMigrated || r.outcome == Outcome::kResumed) {
      out.insert(r.query);
    }
  }
  return out;
}

void digest_line(std::ostringstream& os, std::size_t step,
                 const ChaosEvent& e, const Middleware& mw,
                 double total_cost, std::size_t violations) {
  os << "step " << step << ' ' << to_string(e.kind) << ' ';
  if (e.kind == ChaosEventKind::kRateSpike) {
    os << 's' << e.stream << ' ' << std::hexfloat << e.rate
       << std::defaultfloat;
  } else if (e.kind == ChaosEventKind::kSetLinkLoss ||
             e.kind == ChaosEventKind::kSetLinkJitter) {
    os << e.a << '-' << e.b << ' ' << std::hexfloat << e.rate
       << std::defaultfloat;
  } else if (e.kind == ChaosEventKind::kQueuePressure) {
    os << std::hexfloat << e.rate << std::defaultfloat;
  } else if (e.kind == ChaosEventKind::kDegradeNode ||
             e.kind == ChaosEventKind::kDegradeLink) {
    os << e.a;
    if (e.b != net::kInvalidNode) os << '-' << e.b;
    os << ' ' << std::hexfloat << e.slowdown << ' ' << e.rate << ' '
       << e.flap_hz << std::defaultfloat;
  } else {
    os << e.a;
    if (e.b != net::kInvalidNode) os << '-' << e.b;
  }
  os << " cost " << std::hexfloat << total_cost << std::defaultfloat
     << " active " << mw.active_queries() << " suspended "
     << mw.suspended_queries() << " viol " << violations << '\n';
}

/// Where run_impl draws its events from: the seeded FaultInjector
/// (run_churn) or a fixed scenario script (run_scripted). Both track what
/// is currently down so the restoration sweep knows what to bring back.
class EventSource {
 public:
  virtual ~EventSource() = default;
  virtual int count() const = 0;
  virtual ChaosEvent next() = 0;
  virtual const std::vector<net::NodeId>& down_nodes() const = 0;
  virtual const std::vector<std::pair<net::NodeId, net::NodeId>>& down_links()
      const = 0;
};

class InjectorSource final : public EventSource {
 public:
  InjectorSource(const net::Network& net, const query::Catalog& catalog,
                 const ChaosConfig& cfg, std::uint64_t seed)
      : events_(cfg.events), inj_(net, catalog, cfg, seed) {}
  int count() const override { return events_; }
  ChaosEvent next() override { return inj_.next(); }
  const std::vector<net::NodeId>& down_nodes() const override {
    return inj_.down_nodes();
  }
  const std::vector<std::pair<net::NodeId, net::NodeId>>& down_links()
      const override {
    return inj_.down_links();
  }

 private:
  int events_;
  FaultInjector inj_;
};

/// Replays a fixed script verbatim, checking applicability as it goes: the
/// scenario generator must only script faults against up targets and
/// restores against down ones (a malformed script is a harness bug, not a
/// system-under-test failure).
class ScriptSource final : public EventSource {
 public:
  explicit ScriptSource(const std::vector<ChaosEvent>& script)
      : script_(script) {}
  int count() const override { return static_cast<int>(script_.size()); }
  ChaosEvent next() override {
    IFLOW_CHECK(i_ < script_.size());
    const ChaosEvent e = script_[i_++];
    const auto node_it = [&] {
      return std::find(down_nodes_.begin(), down_nodes_.end(), e.a);
    };
    const auto link_it = [&] {
      const auto pair = std::make_pair(std::min(e.a, e.b), std::max(e.a, e.b));
      return std::find(down_links_.begin(), down_links_.end(), pair);
    };
    switch (e.kind) {
      case ChaosEventKind::kCrashNode:
      case ChaosEventKind::kFailNode:
        IFLOW_CHECK_MSG(node_it() == down_nodes_.end(),
                        "script double-faults a node");
        down_nodes_.push_back(e.a);
        break;
      case ChaosEventKind::kRestoreNode: {
        const auto it = node_it();
        IFLOW_CHECK_MSG(it != down_nodes_.end(),
                        "script restores an up node");
        down_nodes_.erase(it);
        break;
      }
      case ChaosEventKind::kFailLink:
        IFLOW_CHECK_MSG(link_it() == down_links_.end(),
                        "script double-fails a link pair");
        down_links_.emplace_back(std::min(e.a, e.b), std::max(e.a, e.b));
        break;
      case ChaosEventKind::kRestoreLink: {
        const auto it = link_it();
        IFLOW_CHECK_MSG(it != down_links_.end(),
                        "script restores an up link pair");
        down_links_.erase(it);
        break;
      }
      case ChaosEventKind::kDegradeNode:
        IFLOW_CHECK_MSG(std::find(degraded_nodes_.begin(),
                                  degraded_nodes_.end(),
                                  e.a) == degraded_nodes_.end(),
                        "script double-degrades a node");
        degraded_nodes_.push_back(e.a);
        break;
      case ChaosEventKind::kClearNode: {
        const auto it = std::find(degraded_nodes_.begin(),
                                  degraded_nodes_.end(), e.a);
        IFLOW_CHECK_MSG(it != degraded_nodes_.end(),
                        "script clears an undegraded node");
        degraded_nodes_.erase(it);
        break;
      }
      case ChaosEventKind::kDegradeLink: {
        const auto pair =
            std::make_pair(std::min(e.a, e.b), std::max(e.a, e.b));
        IFLOW_CHECK_MSG(std::find(degraded_links_.begin(),
                                  degraded_links_.end(),
                                  pair) == degraded_links_.end(),
                        "script double-degrades a link pair");
        degraded_links_.push_back(pair);
        break;
      }
      case ChaosEventKind::kClearLink: {
        const auto pair =
            std::make_pair(std::min(e.a, e.b), std::max(e.a, e.b));
        const auto it = std::find(degraded_links_.begin(),
                                  degraded_links_.end(), pair);
        IFLOW_CHECK_MSG(it != degraded_links_.end(),
                        "script clears an undegraded link pair");
        degraded_links_.erase(it);
        break;
      }
      default:
        break;  // rate/loss/jitter/queue events change nothing that is down
    }
    return e;
  }
  const std::vector<net::NodeId>& down_nodes() const override {
    return down_nodes_;
  }
  const std::vector<std::pair<net::NodeId, net::NodeId>>& down_links()
      const override {
    return down_links_;
  }

 private:
  std::vector<ChaosEvent> script_;
  std::size_t i_ = 0;
  std::vector<net::NodeId> down_nodes_;
  std::vector<std::pair<net::NodeId, net::NodeId>> down_links_;
  std::vector<net::NodeId> degraded_nodes_;
  std::vector<std::pair<net::NodeId, net::NodeId>> degraded_links_;
};

ChaosReport run_impl(net::Network net, query::Catalog catalog,
                     const std::vector<query::Query>& queries, int max_cs,
                     Algorithm algorithm, std::uint64_t seed,
                     const ChaosConfig& cfg, EventSource& src) {
  ChaosReport report;
  std::ostringstream digest;

  Middleware mw(net, catalog, max_cs, algorithm, seed, cfg.drift_threshold);
  mw.workspace().set_threads(cfg.threads);
  for (const query::Query& q : queries) {
    report.deploy_time_ms += mw.deploy(q).deploy_time_ms;
  }

  // Queue pressure applies to the post-churn delivery check; the last drawn
  // event wins.
  double queue_service_s = 0.0;

  for (int i = 0; i < src.count(); ++i) {
    ChaosStep step;
    step.event = src.next();
    const ChaosEvent& e = step.event;
    switch (e.kind) {
      case ChaosEventKind::kCrashNode:
        step.redeployments = mw.crash_node(e.a);
        break;
      case ChaosEventKind::kFailNode:
        step.redeployments = mw.fail_node(e.a);
        break;
      case ChaosEventKind::kRestoreNode:
        step.redeployments = mw.restore_node(e.a);
        break;
      case ChaosEventKind::kFailLink:
        step.redeployments = mw.fail_link(e.a, e.b);
        break;
      case ChaosEventKind::kRestoreLink:
        step.redeployments = mw.restore_link(e.a, e.b);
        break;
      case ChaosEventKind::kRateSpike:
        mw.set_stream_rate(e.stream, e.rate);
        step.redeployments = mw.adapt();
        break;
      case ChaosEventKind::kSetLinkLoss:
        mw.set_link_loss(e.a, e.b, e.rate);
        break;
      case ChaosEventKind::kSetLinkJitter:
        mw.set_link_jitter(e.a, e.b, e.rate);
        break;
      case ChaosEventKind::kQueuePressure:
        queue_service_s = e.rate;
        break;
      case ChaosEventKind::kDegradeNode:
        mw.degrade_node(e.a, net::Degradation{e.slowdown, e.rate, e.flap_hz});
        break;
      case ChaosEventKind::kDegradeLink:
        mw.degrade_link(e.a, e.b,
                        net::Degradation{e.slowdown, e.rate, e.flap_hz});
        break;
      case ChaosEventKind::kClearNode:
        mw.degrade_node(e.a, net::Degradation{});
        break;
      case ChaosEventKind::kClearLink:
        mw.degrade_link(e.a, e.b, net::Degradation{});
        break;
    }
    step.violations = validate_actives(mw, replanned_ids(step.redeployments),
                                       &step.violation_detail);
    if (!step.violation_detail.empty() && report.violation_detail.empty()) {
      report.violation_detail = step.violation_detail;
    }
    step.active = mw.active_queries();
    step.suspended = mw.suspended_queries();
    step.total_cost = mw.total_current_cost();
    report.violations += step.violations;
    digest_line(digest, static_cast<std::size_t>(i), e, mw, step.total_cost,
                step.violations);
    report.steps.push_back(std::move(step));
  }

  // Full restoration: bring every link pair and node back, then adapt
  // until quiescent so the suspended queue drains and drifted deployments
  // settle. Each restore_* resets the resume-attempt budgets. Validation
  // runs after every call — a planned cost is only checkable against the
  // routing tables it was computed under, and each restore rebuilds them.
  const auto validate_after = [&](const std::vector<Redeployment>& reds) {
    report.violations +=
        validate_actives(mw, replanned_ids(reds), &report.violation_detail);
  };
  for (const auto& [a, b] : src.down_links()) {
    validate_after(mw.restore_link(a, b));
  }
  for (const net::NodeId n : src.down_nodes()) {
    validate_after(mw.restore_node(n));
  }
  // Gray degradations heal too. Quality-only, so no replanning happens —
  // but the delivery twins compare lossy vs loss-free counts EXACTLY, and
  // a still-degraded hop would push residual loss past the retry budget.
  for (net::NodeId n = 0; n < mw.network().node_count(); ++n) {
    if (mw.network().node_degradation(n).degraded()) {
      mw.degrade_node(n, net::Degradation{});
    }
  }
  {
    std::vector<std::pair<net::NodeId, net::NodeId>> sick;
    std::unordered_set<std::uint64_t> seen;
    for (const net::Link& l : mw.network().links()) {
      if (!l.degradation.degraded()) continue;
      const net::NodeId a = std::min(l.a, l.b);
      const net::NodeId b = std::max(l.a, l.b);
      if (seen.insert((static_cast<std::uint64_t>(a) << 32) | b).second) {
        sick.emplace_back(a, b);
      }
    }
    for (const auto& [a, b] : sick) mw.degrade_link(a, b, net::Degradation{});
  }
  for (int round = 0; round < 5; ++round) {
    const std::vector<Redeployment> r = mw.adapt();
    validate_after(r);
    if (r.empty()) break;
  }
  // Staggered resumes leave reuse on the table (each query planned against
  // whatever advertisements existed at its resume); the convergence pass
  // recovers it.
  validate_after(mw.reoptimize());

  report.all_resumed = mw.suspended_queries() == 0 &&
                       mw.active_queries() == queries.size();
  report.final_cost = mw.total_current_cost();

  // Fresh baseline: a brand-new middleware over copies of the end state
  // (all nodes alive, all links up, spiked rates retained) optimizing the
  // same workload in the same order.
  net::Network fresh_net = mw.network();
  query::Catalog fresh_catalog = mw.catalog();
  Middleware fresh(fresh_net, fresh_catalog, max_cs, algorithm, seed,
                   cfg.drift_threshold);
  fresh.workspace().set_threads(cfg.threads);
  for (const query::Query& q : queries) fresh.deploy(q);
  report.fresh_cost = fresh.total_current_cost();

  // One-sided: the churned system must not end up much WORSE than a fresh
  // optimization of the same end state. It may well end up cheaper — the
  // repeated adapt() cycles amount to iterated re-optimization with reuse,
  // which a single greedy deploy pass does not get.
  const double f = cfg.convergence_factor;
  report.converged =
      report.all_resumed && std::isfinite(report.final_cost) &&
      std::isfinite(report.fresh_cost) &&
      report.final_cost <= f * report.fresh_cost + kEps;

  digest << "final cost " << std::hexfloat << report.final_cost
         << " fresh " << report.fresh_cost << std::defaultfloat
         << " resumed " << (report.all_resumed ? 1 : 0) << " viol "
         << report.violations << '\n';

  // Post-churn delivery contract: deploy the surviving actives into two
  // reliable-mode simulations — one over the churned network with its
  // accumulated loss/jitter, one over a loss-free copy — driven by the same
  // engine seed (sources draw only from the main engine Prng, so both runs
  // emit identical tuples). With per-link loss under the retry budget's
  // tolerance, ack-based retransmission plus receiver dedup must make the
  // lossy run deliver exactly the loss-free counts, with zero tuples lost
  // after retries.
  if (cfg.delivery_check) {
    EngineConfig ec;
    // delivery_duration_s is the emission window; the extra 30 s is a
    // settle window during which sources are quiet but the full retry
    // chain (~23 s at 12 retries capped at 2 s) completes.
    ec.duration_s = cfg.delivery_duration_s + 30.0;
    ec.reliability.enabled = true;
    // The count-equality contract needs parameters sized to the topology,
    // not to wall-clock goodput. GT-ITM paths run to ~1 s round trip, so
    // the backoff cap must exceed the worst RTT or every in-flight ack
    // loses the race and the channel retransmits forever; the window must
    // exceed the bandwidth-delay product of a spiked stream (4 × 100 t/s
    // × 1 s RTT) or backpressure stalls delay tuples without bound; and
    // join partners are retained for the whole run so a retransmit-delayed
    // tuple still meets everything it would have met loss-free.
    ec.reliability.max_backoff_s = 2.0;
    ec.reliability.window = 1024;
    ec.reliability.lateness_s = ec.duration_s;
    ec.reliability.drain_s = 30.0;
    // Scenario rate curves shape emission in BOTH twins identically, so the
    // count-equality contract is unaffected.
    ec.rate_factor = cfg.rate_modulation;
    if (queue_service_s > 0.0) {
      ec.reliability.service_s = queue_service_s;
      ec.reliability.queue_capacity = 96;
      ec.reliability.overflow = OverflowPolicy::kBackpressure;
    }
    const std::uint64_t sim_seed = seed ^ 0x0DE11FE12ULL;
    const std::vector<Middleware::ActiveView> views = mw.active_views();

    // Dependency-ordered deploy: derived leaf units bind to operators of
    // already-deployed queries, so sweep to a fixpoint — a reuse chain of
    // depth d deploys in d sweeps. A sweep without progress means a
    // provider is missing outright (the middleware's stranded-reuse repair
    // should prevent this); report the check as not runnable then.
    const auto deploy_all = [&](Simulation& sim) -> bool {
      std::vector<bool> done(views.size(), false);
      std::size_t remaining = views.size();
      bool progress = true;
      while (remaining > 0 && progress) {
        progress = false;
        for (std::size_t i = 0; i < views.size(); ++i) {
          if (done[i]) continue;
          try {
            sim.deploy(*views[i].deployment,
                       query::RateModel(mw.catalog(), *views[i].query));
            done[i] = true;
            --remaining;
            progress = true;
          } catch (const CheckError&) {
            // Provider not deployed yet; retry next sweep.
          }
        }
      }
      return remaining == 0;
    };

    const net::Network& lossy_net = mw.network();
    net::Network clean_net = lossy_net;
    for (const net::Link& l : lossy_net.links()) {
      clean_net.set_link_loss(l.a, l.b, 0.0);
      clean_net.set_link_jitter(l.a, l.b, 0.0);
    }
    const net::RoutingTables lossy_rt = net::RoutingTables::build(lossy_net);
    const net::RoutingTables clean_rt = net::RoutingTables::build(clean_net);

    Simulation lossy(lossy_net, lossy_rt, mw.catalog(), ec, sim_seed);
    Simulation clean(clean_net, clean_rt, mw.catalog(), ec, sim_seed);
    if (deploy_all(lossy) && deploy_all(clean)) {
      lossy.run();
      clean.run();
      report.delivery_checked = true;
      bool ok = true;
      for (const Middleware::ActiveView& v : views) {
        const query::QueryId q = v.query->id;
        if (lossy.tuples_delivered(q) != clean.tuples_delivered(q)) {
          ok = false;
        }
        const DeliveryStats ds = lossy.delivery_stats(q);
        if (ds.lost != 0) ok = false;
        report.delivered_total += ds.delivered;
        report.retransmits_total += ds.retransmits;
        report.duplicates_total += ds.duplicates;
        report.mean_availability += lossy.availability(q);
      }
      if (!views.empty()) {
        report.mean_availability /= static_cast<double>(views.size());
      }
      report.goodput_tps = static_cast<double>(report.delivered_total) /
                           cfg.delivery_duration_s;
      report.delivery_ok = ok;
    }
    digest << "delivery checked " << (report.delivery_checked ? 1 : 0)
           << " ok " << (report.delivery_ok ? 1 : 0) << " delivered "
           << report.delivered_total << " retrans "
           << report.retransmits_total << " dup " << report.duplicates_total
           << " avail " << std::hexfloat << report.mean_availability
           << " goodput " << report.goodput_tps << std::defaultfloat << '\n';
  }

  report.digest = digest.str();
  return report;
}

}  // namespace

ChaosReport run_churn(net::Network net, query::Catalog catalog,
                      const std::vector<query::Query>& queries, int max_cs,
                      Algorithm algorithm, std::uint64_t seed,
                      const ChaosConfig& cfg) {
  InjectorSource src(net, catalog, cfg, seed ^ 0xC4A05E7A11DEADULL);
  return run_impl(std::move(net), std::move(catalog), queries, max_cs,
                  algorithm, seed, cfg, src);
}

ChaosReport run_scripted(net::Network net, query::Catalog catalog,
                         const std::vector<query::Query>& queries, int max_cs,
                         Algorithm algorithm, std::uint64_t seed,
                         const std::vector<ChaosEvent>& script,
                         const ChaosConfig& cfg) {
  ScriptSource src(script);
  return run_impl(std::move(net), std::move(catalog), queries, max_cs,
                  algorithm, seed, cfg, src);
}

// ---------------------------------------------------------------------------
// Registration churn (multi-tenant churn plane).
// ---------------------------------------------------------------------------

const char* to_string(RegistrationEventKind k) {
  switch (k) {
    case RegistrationEventKind::kRegister: return "register";
    case RegistrationEventKind::kUnregister: return "unregister";
    case RegistrationEventKind::kSetQuota: return "set-quota";
    case RegistrationEventKind::kFailNode: return "fail-node";
    case RegistrationEventKind::kRestoreNode: return "restore-node";
    case RegistrationEventKind::kFailLink: return "fail-link";
    case RegistrationEventKind::kRestoreLink: return "restore-link";
    case RegistrationEventKind::kRateSpike: return "rate-spike";
  }
  return "?";
}

namespace {

/// Event supply for the registration runner: the seeded injector or a fixed
/// script. next() sees the runner's in-system view because register /
/// unregister eligibility depends on admission outcomes the injector cannot
/// predict.
class RegistrationSource {
 public:
  virtual ~RegistrationSource() = default;
  virtual int count() const = 0;
  virtual RegistrationEvent next(const std::vector<char>& in_system) = 0;
  virtual const std::vector<net::NodeId>& down_nodes() const = 0;
  virtual const std::vector<std::pair<net::NodeId, net::NodeId>>& down_links()
      const = 0;
};

class RegistrationInjector final : public RegistrationSource {
 public:
  RegistrationInjector(const net::Network& net, const query::Catalog& catalog,
                       const std::vector<query::Query>& pool,
                       const RegistrationChurnConfig& cfg, std::uint64_t seed)
      : cfg_(cfg),
        prng_(seed),
        node_count_(net.node_count()),
        pool_size_(pool.size()) {
    std::unordered_set<std::uint64_t> seen;
    for (const net::Link& l : net.links()) {
      const net::NodeId a = std::min(l.a, l.b);
      const net::NodeId b = std::max(l.a, l.b);
      const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
      if (seen.insert(key).second) link_pairs_.emplace_back(a, b);
    }
    for (query::StreamId s = 0;
         s < static_cast<query::StreamId>(catalog.stream_count()); ++s) {
      streams_.push_back(s);
      base_rates_.push_back(catalog.stream(s).tuple_rate);
    }
    for (const query::Query& q : pool) tenants_.push_back(q.tenant);
    std::sort(tenants_.begin(), tenants_.end());
    tenants_.erase(std::unique(tenants_.begin(), tenants_.end()),
                   tenants_.end());
  }

  int count() const override { return cfg_.events; }

  RegistrationEvent next(const std::vector<char>& in_system) override {
    RegistrationEvent e;
    if (prng_.chance(cfg_.fault_probability)) {
      const bool anything_down = !down_nodes_.empty() || !down_links_.empty();
      const bool node_budget =
          down_nodes_.size() <
              static_cast<std::size_t>(std::max(cfg_.max_down_nodes, 0)) &&
          (down_nodes_.size() + 1) * 2 <= node_count_;
      const bool link_budget =
          down_links_.size() <
              static_cast<std::size_t>(std::max(cfg_.max_down_links, 0)) &&
          down_links_.size() < link_pairs_.size();
      if (anything_down &&
          (prng_.chance(cfg_.restore_bias) || (!node_budget && !link_budget))) {
        const std::size_t pool = down_nodes_.size() + down_links_.size();
        const std::size_t pick = prng_.index(pool);
        if (pick < down_nodes_.size()) {
          e.kind = RegistrationEventKind::kRestoreNode;
          e.a = down_nodes_[pick];
          down_nodes_.erase(down_nodes_.begin() +
                            static_cast<std::ptrdiff_t>(pick));
        } else {
          const std::size_t li = pick - down_nodes_.size();
          e.kind = RegistrationEventKind::kRestoreLink;
          e.a = down_links_[li].first;
          e.b = down_links_[li].second;
          down_links_.erase(down_links_.begin() +
                            static_cast<std::ptrdiff_t>(li));
        }
        return e;
      }
      if (node_budget || link_budget) {
        const bool pick_node =
            node_budget && (!link_budget || prng_.chance(0.5));
        if (pick_node) {
          std::vector<net::NodeId> up;
          for (net::NodeId n = 0; n < static_cast<net::NodeId>(node_count_);
               ++n) {
            if (std::find(down_nodes_.begin(), down_nodes_.end(), n) ==
                down_nodes_.end()) {
              up.push_back(n);
            }
          }
          e.kind = RegistrationEventKind::kFailNode;
          e.a = prng_.pick(up);
          down_nodes_.push_back(e.a);
          return e;
        }
        std::vector<std::pair<net::NodeId, net::NodeId>> up;
        for (const auto& p : link_pairs_) {
          if (std::find(down_links_.begin(), down_links_.end(), p) ==
              down_links_.end()) {
            up.push_back(p);
          }
        }
        const auto& p = prng_.pick(up);
        e.kind = RegistrationEventKind::kFailLink;
        e.a = p.first;
        e.b = p.second;
        down_links_.push_back(p);
        return e;
      }
      // No fault budget and nothing to restore: fall through to churn.
    }
    if (!streams_.empty() && prng_.chance(cfg_.spike_probability)) {
      e.kind = RegistrationEventKind::kRateSpike;
      const std::size_t i = prng_.index(streams_.size());
      e.stream = streams_[i];
      e.rate = base_rates_[i] * prng_.uniform(0.25, 4.0);
      return e;
    }
    if (!tenants_.empty() && prng_.chance(cfg_.quota_probability)) {
      e.kind = RegistrationEventKind::kSetQuota;
      e.tenant = prng_.pick(tenants_);
      e.quota.weight = prng_.uniform(0.5, 2.0);
      e.quota.max_queries = 1 + prng_.index(pool_size_);
      return e;
    }
    std::vector<std::size_t> in, out;
    for (std::size_t i = 0; i < in_system.size(); ++i) {
      (in_system[i] != 0 ? in : out).push_back(i);
    }
    const bool unregister =
        !in.empty() && (out.empty() || prng_.chance(cfg_.unregister_bias));
    if (unregister) {
      e.kind = RegistrationEventKind::kUnregister;
      e.query = in[prng_.index(in.size())];
    } else {
      IFLOW_CHECK_MSG(!out.empty(),
                      "registration churn over an empty query pool");
      e.kind = RegistrationEventKind::kRegister;
      e.query = out[prng_.index(out.size())];
    }
    return e;
  }

  const std::vector<net::NodeId>& down_nodes() const override {
    return down_nodes_;
  }
  const std::vector<std::pair<net::NodeId, net::NodeId>>& down_links()
      const override {
    return down_links_;
  }

 private:
  RegistrationChurnConfig cfg_;
  Prng prng_;
  std::size_t node_count_;
  std::size_t pool_size_;
  std::vector<std::pair<net::NodeId, net::NodeId>> link_pairs_;
  std::vector<query::StreamId> streams_;
  std::vector<double> base_rates_;
  std::vector<std::uint32_t> tenants_;
  std::vector<net::NodeId> down_nodes_;
  std::vector<std::pair<net::NodeId, net::NodeId>> down_links_;
};

/// Replays a fixed registration script. Fault events must be applicable in
/// order (same contract as ScriptSource); register/unregister events pass
/// through — the runner skips the ones an admission rejection made moot.
class RegistrationScriptSource final : public RegistrationSource {
 public:
  explicit RegistrationScriptSource(
      const std::vector<RegistrationEvent>& script)
      : script_(script) {}

  int count() const override { return static_cast<int>(script_.size()); }

  RegistrationEvent next(const std::vector<char>&) override {
    IFLOW_CHECK(i_ < script_.size());
    const RegistrationEvent e = script_[i_++];
    switch (e.kind) {
      case RegistrationEventKind::kFailNode: {
        IFLOW_CHECK_MSG(std::find(down_nodes_.begin(), down_nodes_.end(),
                                  e.a) == down_nodes_.end(),
                        "registration script double-faults a node");
        down_nodes_.push_back(e.a);
        break;
      }
      case RegistrationEventKind::kRestoreNode: {
        const auto it = std::find(down_nodes_.begin(), down_nodes_.end(), e.a);
        IFLOW_CHECK_MSG(it != down_nodes_.end(),
                        "registration script restores an up node");
        down_nodes_.erase(it);
        break;
      }
      case RegistrationEventKind::kFailLink: {
        const auto pair =
            std::make_pair(std::min(e.a, e.b), std::max(e.a, e.b));
        IFLOW_CHECK_MSG(std::find(down_links_.begin(), down_links_.end(),
                                  pair) == down_links_.end(),
                        "registration script double-fails a link pair");
        down_links_.push_back(pair);
        break;
      }
      case RegistrationEventKind::kRestoreLink: {
        const auto pair =
            std::make_pair(std::min(e.a, e.b), std::max(e.a, e.b));
        const auto it =
            std::find(down_links_.begin(), down_links_.end(), pair);
        IFLOW_CHECK_MSG(it != down_links_.end(),
                        "registration script restores an up link pair");
        down_links_.erase(it);
        break;
      }
      default:
        break;
    }
    return e;
  }

  const std::vector<net::NodeId>& down_nodes() const override {
    return down_nodes_;
  }
  const std::vector<std::pair<net::NodeId, net::NodeId>>& down_links()
      const override {
    return down_links_;
  }

 private:
  std::vector<RegistrationEvent> script_;
  std::size_t i_ = 0;
  std::vector<net::NodeId> down_nodes_;
  std::vector<std::pair<net::NodeId, net::NodeId>> down_links_;
};

/// Nodes over node_capacity plus links over their bandwidth headroom, per
/// the incremental ledger. Rate spikes may legitimately push EXISTING
/// actives over budget (admission gates arrivals; drift is rebalance
/// territory) — the harness invariant is that an admitted registration
/// never raises this count.
std::size_t capacity_breaches(const Middleware& mw,
                              const RegistrationChurnConfig& cfg) {
  std::size_t n = 0;
  if (cfg.node_capacity > 0.0) {
    for (const double load : mw.ledger().node_load()) {
      if (load > cfg.node_capacity + 1e-6) ++n;
    }
  }
  if (cfg.link_utilization_cap > 0.0) {
    const auto& links = mw.network().links();
    const std::vector<double>& loads = mw.ledger().link_load();
    for (std::size_t i = 0; i < loads.size() && i < links.size(); ++i) {
      const double bw = links[i].bandwidth_bps;
      if (bw <= 0.0) continue;
      if (loads[i] > bw / 8.0 * cfg.link_utilization_cap + 1e-6) ++n;
    }
  }
  return n;
}

void reg_digest_line(std::ostringstream& os, std::size_t step,
                     const RegistrationEvent& e, const char* note,
                     const Middleware& mw, double total_cost,
                     std::size_t violations) {
  os << "step " << step << ' ' << to_string(e.kind) << ' ';
  switch (e.kind) {
    case RegistrationEventKind::kRegister:
    case RegistrationEventKind::kUnregister:
      os << 'q' << e.query << ' ' << note;
      break;
    case RegistrationEventKind::kSetQuota:
      os << 't' << e.tenant << " w " << std::hexfloat << e.quota.weight
         << std::defaultfloat << " maxq " << e.quota.max_queries;
      break;
    case RegistrationEventKind::kRateSpike:
      os << 's' << e.stream << ' ' << std::hexfloat << e.rate
         << std::defaultfloat;
      break;
    default:
      os << e.a;
      if (e.b != net::kInvalidNode) os << '-' << e.b;
      break;
  }
  os << " cost " << std::hexfloat << total_cost << std::defaultfloat
     << " active " << mw.active_queries() << " suspended "
     << mw.suspended_queries() << " viol " << violations << '\n';
}

RegistrationChurnReport run_registration_impl(
    net::Network net, query::Catalog catalog,
    const std::vector<query::Query>& pool, int max_cs, Algorithm algorithm,
    std::uint64_t seed, const RegistrationChurnConfig& cfg,
    RegistrationSource& src) {
  RegistrationChurnReport report;
  std::ostringstream digest;

  Middleware mw(net, catalog, max_cs, algorithm, seed, cfg.drift_threshold);
  mw.workspace().set_threads(cfg.threads);
  AdmissionConfig ac;
  ac.node_capacity = cfg.node_capacity;
  ac.link_utilization_cap = cfg.link_utilization_cap;
  mw.set_admission_config(ac);
  for (const auto& [tenant, quota] : cfg.quotas) {
    mw.set_tenant_quota(tenant, quota);
  }

  std::vector<char> in_system(pool.size(), 0);
  std::size_t restores = 0;  // attempt-budget resets, for the backoff bound

  const auto validate_after =
      [&](const std::unordered_set<query::QueryId>& fresh) -> std::size_t {
    std::string detail;
    const std::size_t v = validate_actives(mw, fresh, &detail);
    if (!detail.empty() && report.violation_detail.empty()) {
      report.violation_detail = detail;
    }
    report.violations += v;
    return v;
  };

  const auto settle_pass = [&](std::size_t step_no) {
    const std::vector<Redeployment> reds = mw.settle();
    ++report.settles;
    const Middleware::SettleStats& st = mw.last_settle_stats();
    report.settle_replans += st.replanned;
    report.settle_moves += st.moved;
    report.settle_actives += mw.active_queries();
    const std::size_t v = validate_after(replanned_ids(reds));
    digest << "settle " << step_no << " replanned " << st.replanned
           << " moved " << st.moved << " cost " << std::hexfloat
           << mw.total_current_cost() << std::defaultfloat << " viol " << v
           << '\n';
  };

  for (int i = 0; i < src.count(); ++i) {
    const RegistrationEvent e = src.next(in_system);
    std::vector<Redeployment> reds;
    std::unordered_set<query::QueryId> fresh;
    const char* note = "";
    switch (e.kind) {
      case RegistrationEventKind::kRegister: {
        IFLOW_CHECK(e.query < pool.size());
        if (in_system[e.query] != 0) {
          note = "noop";  // scripted replay of a register already in effect
          break;
        }
        const query::Query& q = pool[e.query];
        const std::size_t breaches_before = capacity_breaches(mw, cfg);
        const opt::OptimizeResult res = mw.deploy(q);
        if (res.feasible) {
          in_system[e.query] = 1;
          ++report.registrations;
          report.deploy_time_ms += res.deploy_time_ms;
          if (mw.last_admission().decision ==
              AdmissionDecision::kAdmitDegraded) {
            ++report.degraded;
            note = "degraded";
          } else {
            ++report.admitted;
            note = "admit";
          }
          for (const query::LeafUnit& u : res.deployment.units) {
            if (u.derived) {
              ++report.reuse_deployments;
              break;
            }
          }
          fresh.insert(q.id);
          const std::size_t breaches_after = capacity_breaches(mw, cfg);
          if (breaches_after > breaches_before) {
            report.capacity_violations += breaches_after - breaches_before;
          }
        } else if (mw.last_admission().decision == AdmissionDecision::kReject) {
          ++report.rejections;
          note = "rejected";
          if (report.first_rejection.empty()) {
            report.first_rejection = mw.last_admission().reason;
          }
        } else {
          // Endpoints down or momentarily unplannable: parked suspended,
          // holding its tenant slot; the resume passes retry it.
          in_system[e.query] = 1;
          ++report.registrations;
          ++report.parked;
          note = "parked";
        }
        break;
      }
      case RegistrationEventKind::kUnregister: {
        IFLOW_CHECK(e.query < pool.size());
        if (mw.undeploy(pool[e.query].id, &reds)) {
          in_system[e.query] = 0;
          ++report.unregistrations;
          note = "ok";
        } else {
          note = "noop";  // scripted unregister of a rejected registration
        }
        break;
      }
      case RegistrationEventKind::kSetQuota:
        mw.set_tenant_quota(e.tenant, e.quota);
        break;
      case RegistrationEventKind::kFailNode:
        reds = mw.fail_node(e.a);
        break;
      case RegistrationEventKind::kRestoreNode:
        reds = mw.restore_node(e.a);
        ++restores;
        break;
      case RegistrationEventKind::kFailLink:
        reds = mw.fail_link(e.a, e.b);
        break;
      case RegistrationEventKind::kRestoreLink:
        reds = mw.restore_link(e.a, e.b);
        ++restores;
        break;
      case RegistrationEventKind::kRateSpike:
        mw.set_stream_rate(e.stream, e.rate);
        reds = mw.adapt();
        break;
    }
    std::unordered_set<query::QueryId> ids = replanned_ids(reds);
    ids.insert(fresh.begin(), fresh.end());
    const std::size_t v = validate_after(ids);
    reg_digest_line(digest, static_cast<std::size_t>(i), e, note, mw,
                    mw.total_current_cost(), v);
    if (cfg.settle_every > 0 && (i + 1) % cfg.settle_every == 0) {
      settle_pass(static_cast<std::size_t>(i));
    }
  }

  // Restore whatever the schedule left down, drain the suspended queue,
  // then settle the remaining dirty region. Each restore resets the resume
  // attempt budgets (and with them the exponential backoff skips).
  for (const auto& [a, b] : src.down_links()) {
    validate_after(replanned_ids(mw.restore_link(a, b)));
    ++restores;
  }
  for (const net::NodeId n : src.down_nodes()) {
    validate_after(replanned_ids(mw.restore_node(n)));
    ++restores;
  }
  for (int round = 0; round < 5; ++round) {
    const std::vector<Redeployment> r = mw.adapt();
    validate_after(replanned_ids(r));
    if (r.empty()) break;
  }
  settle_pass(static_cast<std::size_t>(src.count()));
  report.final_cost = mw.total_current_cost();

  // Settle parity: the incremental dirty-region path must leave at most
  // parity_slack of the total cost on the table versus a full re-cluster.
  validate_after(replanned_ids(mw.reoptimize()));
  report.reopt_cost = mw.total_current_cost();
  report.parity_ok = std::isfinite(report.final_cost) &&
                     std::isfinite(report.reopt_cost) &&
                     report.reopt_cost >=
                         report.final_cost * (1.0 - cfg.parity_slack) - kEps;

  // Bounded retries: each suspended query fails at most max_resume_attempts
  // times between attempt-budget resets, and only restores reset budgets.
  report.resume_failures = mw.resume_failures_total();
  const std::uint64_t bound =
      (static_cast<std::uint64_t>(restores) + 1) *
      static_cast<std::uint64_t>(mw.max_resume_attempts()) * pool.size();
  report.backoff_bounded = report.resume_failures <= bound;

  report.ok = report.violations == 0 && report.capacity_violations == 0 &&
              report.parity_ok && report.backoff_bounded;

  digest << "final cost " << std::hexfloat << report.final_cost << " reopt "
         << report.reopt_cost << std::defaultfloat << " reg "
         << report.registrations << " rej " << report.rejections << " viol "
         << report.violations << '\n';
  report.digest = digest.str();
  return report;
}

}  // namespace

RegistrationChurnReport run_registration_churn(
    net::Network net, query::Catalog catalog,
    const std::vector<query::Query>& pool, int max_cs, Algorithm algorithm,
    std::uint64_t seed, const RegistrationChurnConfig& cfg) {
  RegistrationInjector src(net, catalog, pool, cfg,
                           seed ^ 0x9E61577E4A71ULL);
  return run_registration_impl(std::move(net), std::move(catalog), pool,
                               max_cs, algorithm, seed, cfg, src);
}

RegistrationChurnReport run_registration_script(
    net::Network net, query::Catalog catalog,
    const std::vector<query::Query>& pool, int max_cs, Algorithm algorithm,
    std::uint64_t seed, const std::vector<RegistrationEvent>& script,
    const RegistrationChurnConfig& cfg) {
  RegistrationScriptSource src(script);
  return run_registration_impl(std::move(net), std::move(catalog), pool,
                               max_cs, algorithm, seed, cfg, src);
}

// ---------------------------------------------------------------------------
// Checkpoint/recovery contract.
// ---------------------------------------------------------------------------

namespace {

/// Operator-hosting nodes that are no query's source or sink. Crashing one
/// of these exercises stateful rollback without silencing a source: a dead
/// source node skips emissions drawn from the main engine Prng, so its
/// faulted run and the fault-free twin would diverge in what was EMITTED,
/// not in what was preserved — exactly the confusion the contract must
/// exclude.
std::vector<net::NodeId> recovery_targets(
    const net::Network& net, const query::Catalog& catalog,
    const std::vector<query::Query>& queries, const Middleware& mw) {
  std::vector<char> endpoint(net.node_count(), 0);
  for (const query::Query& q : queries) {
    endpoint[q.sink] = 1;
    for (const query::StreamId s : q.sources) {
      endpoint[catalog.stream(s).source] = 1;
    }
  }
  std::vector<char> hosting(net.node_count(), 0);
  for (const Middleware::ActiveView& v : mw.active_views()) {
    for (const query::DeployedOp& op : v.deployment->ops) {
      hosting[op.node] = 1;
    }
  }
  std::vector<net::NodeId> out;
  for (net::NodeId n = 0; n < net.node_count(); ++n) {
    if (hosting[n] != 0 && endpoint[n] == 0) out.push_back(n);
  }
  IFLOW_CHECK_MSG(!out.empty(),
                  "recovery harness needs an operator host that is not a "
                  "query endpoint (use a relay-shaped topology)");
  return out;
}

}  // namespace

RecoveryReport run_recovery(net::Network net, query::Catalog catalog,
                            const std::vector<query::Query>& queries,
                            int max_cs, Algorithm algorithm,
                            std::uint64_t seed, const RecoveryConfig& cfg) {
  RecoveryReport report;
  std::ostringstream digest;

  Middleware mw(net, catalog, max_cs, algorithm, seed);
  mw.workspace().set_threads(cfg.threads);
  for (const query::Query& q : queries) mw.deploy(q);

  const auto validate_after = [&](const std::vector<Redeployment>& reds) {
    report.violations +=
        validate_actives(mw, replanned_ids(reds), &report.violation_detail);
  };

  // Control-plane churn: alternate fault (crash or quarantine of a
  // deterministically drawn operator host) and heal, so every event either
  // migrates operators off a node or settles them back — each adoption is
  // recorded as a state migration the data-plane phase replays as a warm
  // kMigrateOps handoff.
  const std::vector<net::NodeId> targets =
      recovery_targets(mw.network(), mw.catalog(), queries, mw);
  Prng ev_prng(seed ^ 0x2ECC0DE5EEDULL);
  net::NodeId down = net::kInvalidNode;
  net::NodeId held = net::kInvalidNode;  // quarantined
  for (int i = 0; i < cfg.events; ++i) {
    const char* what = nullptr;
    net::NodeId n = net::kInvalidNode;
    if (down != net::kInvalidNode) {
      n = down;
      what = "restore-node";
      validate_after(mw.restore_node(n));
      down = net::kInvalidNode;
    } else if (held != net::kInvalidNode) {
      n = held;
      what = "release-quarantine";
      validate_after(mw.release_quarantine(n));
      held = net::kInvalidNode;
    } else if (ev_prng.chance(0.5)) {
      n = targets[ev_prng.index(targets.size())];
      what = "crash-node";
      validate_after(mw.crash_node(n));
      down = n;
    } else {
      n = targets[ev_prng.index(targets.size())];
      what = "quarantine-node";
      validate_after(mw.quarantine_node(n));
      held = n;
    }
    ++report.events;
    digest << "recovery step " << i << ' ' << what << ' ' << n << " cost "
           << std::hexfloat << mw.total_current_cost() << std::defaultfloat
           << " active " << mw.active_queries() << " suspended "
           << mw.suspended_queries() << " viol " << report.violations << '\n';
  }
  if (down != net::kInvalidNode) validate_after(mw.restore_node(down));
  if (held != net::kInvalidNode) validate_after(mw.release_quarantine(held));
  validate_after(mw.reoptimize());

  // Warm handoffs the planner performed; deduped (from, to) pairs become
  // forced kMigrateOps faults in the data-plane phase. Cold resumes (empty
  // before-deployment) record no moves and inject nothing.
  std::vector<std::pair<net::NodeId, net::NodeId>> moves;
  for (const StateMigration& m : mw.state_migrations()) {
    if (!m.warm || m.moves.empty()) continue;
    ++report.migrations;
    for (const StateMigration::OpMove& mv : m.moves) {
      const auto p = std::make_pair(mv.from, mv.to);
      if (std::find(moves.begin(), moves.end(), p) == moves.end()) {
        moves.push_back(p);
      }
    }
  }
  // The crash target must come from the *settled* placement: churn plus the
  // final replan may have moved every operator off the pre-churn hosts, and
  // crashing a now-stateless node would exercise nothing (the volatile arm
  // would lose no results and the contract's teeth check would be vacuous).
  const std::vector<net::NodeId> after =
      recovery_targets(mw.network(), mw.catalog(), queries, mw);
  const net::NodeId crash_target = after[ev_prng.index(after.size())];
  // The data-plane phase needs at least one forced migration even when the
  // churn phase happened to replan without moving anything: hand the crash
  // target's ops to another live host mid-window.
  if (moves.empty()) {
    for (const net::NodeId n : after) {
      if (n != crash_target) {
        moves.emplace_back(n, crash_target);
        break;
      }
    }
    if (moves.empty()) moves.emplace_back(crash_target, targets.front());
  }
  if (moves.size() > 4) moves.resize(4);

  // Data-plane phase: three reliable-mode simulations of the settled
  // deployment under one engine seed. Sources draw only from the main
  // engine Prng, so all three emit identical tuples; the checkpoint plane
  // must make the faulted run indistinguishable from the twin at the sinks.
  EngineConfig ec;
  ec.duration_s = cfg.duration_s + cfg.drain_s;
  ec.reliability.enabled = true;
  ec.reliability.ack_timeout_s = cfg.ack_timeout_s;
  ec.reliability.max_backoff_s = cfg.max_backoff_s;
  ec.reliability.window = 1024;
  ec.reliability.lateness_s = ec.duration_s;
  ec.reliability.drain_s = cfg.drain_s;

  EngineConfig ec_ckpt = ec;
  ec_ckpt.checkpoint.enabled = true;
  ec_ckpt.checkpoint.volatile_state = true;
  ec_ckpt.checkpoint.interval_s = cfg.checkpoint_interval_s;
  ec_ckpt.checkpoint.replicas = cfg.replicas;

  EngineConfig ec_vol = ec;
  ec_vol.checkpoint.enabled = false;
  ec_vol.checkpoint.volatile_state = true;

  const std::uint64_t sim_seed = seed ^ 0x2ECC0DE5ULL;
  const net::Network& final_net = mw.network();
  const net::RoutingTables final_rt = net::RoutingTables::build(final_net);
  const std::vector<Middleware::ActiveView> views = mw.active_views();

  const auto deploy_all = [&](Simulation& sim) {
    std::vector<bool> done(views.size(), false);
    std::size_t remaining = views.size();
    bool progress = true;
    while (remaining > 0 && progress) {
      progress = false;
      for (std::size_t i = 0; i < views.size(); ++i) {
        if (done[i]) continue;
        try {
          sim.deploy(*views[i].deployment,
                     query::RateModel(mw.catalog(), *views[i].query));
          done[i] = true;
          --remaining;
          progress = true;
        } catch (const CheckError&) {
          // Provider not deployed yet; retry next sweep.
        }
      }
    }
    IFLOW_CHECK_MSG(remaining == 0, "reuse chain failed to deploy");
  };

  const auto schedule_faults = [&](Simulation& sim) {
    sim.schedule_fault(SimFault{cfg.crash_at_s, SimFault::Kind::kCrashNode,
                                crash_target, net::kInvalidNode, 0.0});
    sim.schedule_fault(SimFault{cfg.crash_at_s + cfg.crash_len_s,
                                SimFault::Kind::kRestoreNode, crash_target,
                                net::kInvalidNode, 0.0});
    double t = cfg.migrate_at_s;
    for (const auto& [from, to] : moves) {
      sim.schedule_fault(
          SimFault{t, SimFault::Kind::kMigrateOps, from, to, 0.0});
      t += 0.5;
    }
  };

  // Fault-free twin. Checkpoints stay ON so the barrier/alignment schedule
  // is identical to the faulted run — the only difference is the faults.
  Simulation twin(final_net, final_rt, mw.catalog(), ec_ckpt, sim_seed);
  deploy_all(twin);
  twin.run();

  // Faulted run: crash + rollback recovery + warm migrations, snapshots on.
  Simulation faulted(final_net, final_rt, mw.catalog(), ec_ckpt, sim_seed);
  deploy_all(faulted);
  schedule_faults(faulted);
  faulted.run();

  // Teeth: same faults, snapshots off, volatile operator state. Crashes
  // wipe windows with nothing to roll back to and migrations start cold,
  // so results MUST go missing — otherwise the contract is vacuous.
  Simulation volatile_arm(final_net, final_rt, mw.catalog(), ec_vol,
                          sim_seed);
  deploy_all(volatile_arm);
  schedule_faults(volatile_arm);
  volatile_arm.run();

  bool counts_match = true;
  for (const Middleware::ActiveView& v : views) {
    const query::QueryId q = v.query->id;
    const std::uint64_t tw = twin.tuples_delivered(q);
    const std::uint64_t fa = faulted.tuples_delivered(q);
    const std::uint64_t vo = volatile_arm.tuples_delivered(q);
    if (tw != fa) counts_match = false;
    report.twin_delivered += tw;
    report.faulted_delivered += fa;
    report.volatile_delivered += vo;
    const DeliveryStats ds = faulted.delivery_stats(q);
    report.faulted_lost += ds.lost;
    report.seen_high_water = std::max(report.seen_high_water,
                                      ds.seen_high_water);
    digest << "query " << q << " twin " << tw << " faulted " << fa
           << " volatile " << vo << " lost " << ds.lost << " snapbytes "
           << std::hexfloat << ds.snapshot_bytes << std::defaultfloat
           << '\n';
  }
  report.counts_match = counts_match;
  report.loss_without_snapshots =
      report.volatile_delivered < report.twin_delivered;

  const SnapshotStats ss = faulted.snapshot_stats();
  report.epochs_committed = ss.epochs_committed;
  report.snapshot_bytes_total = ss.bytes_total;
  report.snapshot_bytes_max = ss.bytes_max;
  report.barrier_latency_max_s = ss.barrier_latency_max_s;
  if (ss.epochs_committed > 0) {
    report.barrier_latency_mean_s =
        ss.barrier_latency_sum_s / static_cast<double>(ss.epochs_committed);
  }
  report.retained_high_water = ss.retained_high_water;
  report.recovery_latency_s = ss.recovery_latency_max_s;

  report.contract_ok = report.counts_match && report.faulted_lost == 0 &&
                       report.loss_without_snapshots &&
                       report.violations == 0 && report.epochs_committed >= 1;

  digest << "recovery summary match " << (report.counts_match ? 1 : 0)
         << " teeth " << (report.loss_without_snapshots ? 1 : 0)
         << " epochs " << report.epochs_committed << " recoveries "
         << ss.recoveries << " replayed " << ss.replayed_tuples << " bytes "
         << std::hexfloat << report.snapshot_bytes_total << " barrier "
         << report.barrier_latency_max_s << " rollback "
         << report.recovery_latency_s << std::defaultfloat << " migrations "
         << moves.size() << " viol " << report.violations << '\n';
  report.digest = digest.str();
  return report;
}

}  // namespace iflow::engine
