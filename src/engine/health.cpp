#include "engine/health.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

#include "verify/validator.h"

namespace iflow::engine {

const char* to_string(HealthState s) {
  switch (s) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kSuspect: return "suspect";
    case HealthState::kQuarantined: return "quarantined";
    case HealthState::kProbation: return "probation";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(std::size_t node_count, const HealthConfig& cfg,
                             std::uint64_t seed)
    : cfg_(cfg), seed_(seed), nodes_(node_count),
      node_signal_(node_count, 0.0), node_observed_(node_count, 0) {
  IFLOW_CHECK(cfg_.phi_suspect > 0.0);
  IFLOW_CHECK(cfg_.phi_quarantine >= cfg_.phi_suspect);
  IFLOW_CHECK(cfg_.confirm_epochs >= 1 && cfg_.clear_epochs >= 1);
  IFLOW_CHECK(cfg_.probes_per_epoch >= 1 && cfg_.probe_budget >= 1);
  IFLOW_CHECK(cfg_.decay >= 0.0 && cfg_.decay < 1.0);
  IFLOW_CHECK(cfg_.penalty_scale >= 0.0 && cfg_.penalty_max >= 1.0);
}

double HealthMonitor::channel_signal(const ChannelTelemetry& t) const {
  // Total silence — transmissions went out, nothing ever came back — is as
  // bad as the telemetry gets.
  if (t.rtt_samples == 0) return cfg_.signal_cap;
  double sig = 0.0;
  const double retr =
      static_cast<double>(t.retransmits) / static_cast<double>(t.sent);
  // Retransmissions dominate the loss signature; weight them so a heavily
  // lossy channel saturates the cap on its own.
  sig += std::max(0.0, retr - cfg_.retransmit_floor) * 4.0;
  if (t.expected_rtt_sum_ms > 0.0) {
    const double inflation = t.rtt_sum_ms / t.expected_rtt_sum_ms;
    sig += std::max(0.0, inflation - cfg_.rtt_inflation_floor);
  }
  if (t.max_queue_depth > cfg_.queue_floor) sig += 1.0;
  return std::min(sig, cfg_.signal_cap);
}

void HealthMonitor::observe(const std::vector<ChannelTelemetry>& telemetry) {
  // Pass 1: per-channel signals; clean channels exonerate their whole path
  // (links pick up the min-over-crossing rule right here).
  std::vector<const ChannelTelemetry*> sick;
  std::vector<double> sick_sig;
  std::vector<char> exonerated(nodes_.size(), 0);
  for (const ChannelTelemetry& t : telemetry) {
    // Idle channels and co-located edges (path never leaves the node)
    // carry no evidence either way.
    if (t.sent == 0 || t.path.size() < 2) continue;
    const double sig = channel_signal(t);
    if (sig <= 0.0) {
      for (const net::NodeId n : t.path) {
        IFLOW_CHECK(n < nodes_.size());
        exonerated[n] = 1;
      }
    } else {
      sick.push_back(&t);
      sick_sig.push_back(sig);
    }
    for (std::size_t i = 0; i + 1 < t.path.size(); ++i) {
      const auto key = std::make_pair(std::min(t.path[i], t.path[i + 1]),
                                      std::max(t.path[i], t.path[i + 1]));
      const auto it = link_signal_.find(key);
      if (it == link_signal_.end()) {
        link_signal_.emplace(key, sig);
      } else {
        it->second = std::min(it->second, sig);
      }
    }
  }
  // Pass 2: greedy cover. Repeatedly blame the non-exonerated node that
  // crosses the most still-unexplained sick channels (ties to the lowest
  // id, so the sweep is deterministic), give it the worst covered signal,
  // and mark those channels explained. Every sick channel crosses at least
  // its own endpoints, so the loop always terminates with all channels
  // covered or only exonerated nodes left.
  std::vector<char> covered(sick.size(), 0);
  for (;;) {
    std::vector<std::size_t> crossing(nodes_.size(), 0);
    for (std::size_t c = 0; c < sick.size(); ++c) {
      if (covered[c] != 0) continue;
      for (const net::NodeId n : sick[c]->path) {
        IFLOW_CHECK(n < nodes_.size());
        if (exonerated[n] == 0) ++crossing[n];
      }
    }
    net::NodeId best = net::kInvalidNode;
    for (net::NodeId n = 0; n < nodes_.size(); ++n) {
      if (crossing[n] != 0 &&
          (best == net::kInvalidNode || crossing[n] > crossing[best])) {
        best = n;
      }
    }
    if (best == net::kInvalidNode) break;
    double worst = 0.0;
    for (std::size_t c = 0; c < sick.size(); ++c) {
      if (covered[c] != 0) continue;
      for (const net::NodeId n : sick[c]->path) {
        if (n == best) {
          worst = std::max(worst, sick_sig[c]);
          covered[c] = 1;
          break;
        }
      }
    }
    node_observed_[best] = 1;
    node_signal_[best] = std::max(node_signal_[best], worst);
  }
}

bool HealthMonitor::probe_clean(const net::Network& net, net::NodeId n,
                                double t, Prng& prng) const {
  const net::Degradation& d = net.node_degradation(n);
  // degraded_at folds the flap wave: a flapping element is only sick in
  // the down half of its cycle, and a healed element is never sick.
  if (!net::degraded_at(d, t)) return true;
  if (d.slowdown >= cfg_.rtt_inflation_floor) return false;
  if (d.loss > 0.0) return !prng.chance(d.loss);
  return true;  // degradation below every detection floor
}

std::vector<HealthTransition> HealthMonitor::step(const net::Network& net,
                                                  double now,
                                                  double epoch_s) {
  IFLOW_CHECK(epoch_s > 0.0);
  std::vector<HealthTransition> out;
  for (net::NodeId n = 0; n < nodes_.size(); ++n) {
    ElementHealth& e = nodes_[n];
    const HealthState from = e.state;
    if (e.state == HealthState::kQuarantined ||
        e.state == HealthState::kProbation) {
      // Excluded elements carry no channels; probe them instead. The probe
      // stream is a pure function of (seed, node, epoch), so replays and
      // thread counts cannot perturb it.
      Prng prng(seed_ ^ (0x9E3779B97F4A7C15ULL * (n + 1)) ^
                (epoch_ * 0xC2B2AE3D27D4EB4FULL));
      bool all_clean = true;
      for (int k = 0; k < cfg_.probes_per_epoch; ++k) {
        const double t = now - epoch_s +
                         epoch_s * static_cast<double>(k + 1) /
                             static_cast<double>(cfg_.probes_per_epoch + 1);
        if (!probe_clean(net, n, t, prng)) all_clean = false;
      }
      e.phi *= cfg_.decay;  // no telemetry: suspicion cools passively
      if (all_clean) {
        e.probe_streak += cfg_.probes_per_epoch;
        if (e.state == HealthState::kQuarantined) {
          e.state = HealthState::kProbation;
        }
        if (e.state == HealthState::kProbation &&
            e.probe_streak >= cfg_.probe_budget) {
          e = ElementHealth{};  // fully re-admitted, suspicion forgotten
        }
      } else {
        e.probe_streak = 0;
        e.state = HealthState::kQuarantined;
      }
    } else {
      const double sig =
          node_observed_[n] != 0 ? std::min(node_signal_[n], cfg_.signal_cap)
                                 : 0.0;
      e.phi = e.phi * cfg_.decay + sig;
      if (e.phi >= cfg_.phi_quarantine) {
        ++e.confirm_streak;
      } else {
        e.confirm_streak = 0;
      }
      if (e.phi < cfg_.phi_suspect) {
        ++e.clean_streak;
      } else {
        e.clean_streak = 0;
      }
      if (e.state == HealthState::kHealthy && e.phi >= cfg_.phi_suspect) {
        e.state = HealthState::kSuspect;
      }
      if (e.state == HealthState::kSuspect) {
        if (e.confirm_streak >= cfg_.confirm_epochs) {
          e.state = HealthState::kQuarantined;
          e.confirm_streak = 0;
          e.clean_streak = 0;
          e.probe_streak = 0;
          ++quarantines_total_;
        } else if (e.clean_streak >= cfg_.clear_epochs) {
          e.state = HealthState::kHealthy;
        }
      }
    }
    if (e.state != from) out.push_back(HealthTransition{n, from, e.state});
  }

  // Link suspicion: same accrual, observation-keyed.
  for (const auto& [key, sig] : link_signal_) {
    double& phi = link_phi_[key];
    phi = phi * cfg_.decay + std::min(sig, cfg_.signal_cap);
  }
  for (auto it = link_phi_.begin(); it != link_phi_.end();) {
    if (link_signal_.find(it->first) == link_signal_.end()) {
      it->second *= cfg_.decay;
    }
    it = it->second < 1e-12 ? link_phi_.erase(it) : std::next(it);
  }

  std::fill(node_signal_.begin(), node_signal_.end(), 0.0);
  std::fill(node_observed_.begin(), node_observed_.end(), 0);
  link_signal_.clear();
  ++epoch_;
  return out;
}

HealthState HealthMonitor::state(net::NodeId n) const {
  IFLOW_CHECK(n < nodes_.size());
  return nodes_[n].state;
}

double HealthMonitor::phi(net::NodeId n) const {
  IFLOW_CHECK(n < nodes_.size());
  return nodes_[n].phi;
}

void HealthMonitor::on_restore(net::NodeId n) {
  IFLOW_CHECK(n < nodes_.size());
  // The suspicion accrued before the restore described an element that was
  // just repaired or replaced; carrying it into probation would price (and
  // in the worst case re-quarantine) the recovered node off stale evidence.
  nodes_[n] = ElementHealth{};
  node_signal_[n] = 0.0;
  node_observed_[n] = 0;
  for (auto it = link_phi_.begin(); it != link_phi_.end();) {
    it = (it->first.first == n || it->first.second == n) ? link_phi_.erase(it)
                                                         : std::next(it);
  }
  for (auto it = link_signal_.begin(); it != link_signal_.end();) {
    it = (it->first.first == n || it->first.second == n)
             ? link_signal_.erase(it)
             : std::next(it);
  }
}

std::vector<net::NodeId> HealthMonitor::quarantined() const {
  std::vector<net::NodeId> out;
  for (net::NodeId n = 0; n < nodes_.size(); ++n) {
    if (nodes_[n].state == HealthState::kQuarantined ||
        nodes_[n].state == HealthState::kProbation) {
      out.push_back(n);
    }
  }
  return out;
}

std::vector<double> HealthMonitor::node_penalty() const {
  std::vector<double> out(nodes_.size(), 1.0);
  for (net::NodeId n = 0; n < nodes_.size(); ++n) {
    const ElementHealth& e = nodes_[n];
    if (e.state == HealthState::kQuarantined ||
        e.state == HealthState::kProbation) {
      out[n] = cfg_.penalty_max;
    } else if (e.phi > 0.0) {
      out[n] = std::min(cfg_.penalty_max, 1.0 + e.phi * cfg_.penalty_scale);
    }
  }
  return out;
}

std::vector<HealthMonitor::LinkSuspicion> HealthMonitor::link_suspicion()
    const {
  std::vector<LinkSuspicion> out;
  out.reserve(link_phi_.size());
  for (const auto& [key, phi] : link_phi_) {
    out.push_back(LinkSuspicion{key.first, key.second, phi});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Detection-contract harness.

namespace {

/// Dependency-ordered deploy into a simulation: derived leaf units bind to
/// operators of already-deployed queries, so sweep to a fixpoint (same idiom
/// as the chaos harness and the reliability bench).
void deploy_actives(Simulation& sim, const Middleware& mw) {
  const std::vector<Middleware::ActiveView> views = mw.active_views();
  std::vector<bool> done(views.size(), false);
  std::size_t remaining = views.size();
  bool progress = true;
  while (remaining > 0 && progress) {
    progress = false;
    for (std::size_t i = 0; i < views.size(); ++i) {
      if (done[i]) continue;
      try {
        sim.deploy(*views[i].deployment,
                   query::RateModel(mw.catalog(), *views[i].query));
        done[i] = true;
        --remaining;
        progress = true;
      } catch (const CheckError&) {
        // Provider not deployed yet; retry next sweep.
      }
    }
  }
  IFLOW_CHECK_MSG(remaining == 0, "reuse chain failed to deploy");
}

/// Validates every active deployment against the live environment (health
/// penalty included); freshly re-planned ids get the full cost pass.
std::size_t validate_actives(
    Middleware& mw, const std::unordered_set<query::QueryId>& replanned,
    std::string* first_detail) {
  opt::OptimizerEnv env = mw.planning_env();
  const std::vector<net::NodeId> excluded = mw.excluded_hosts();
  std::size_t violations = 0;
  for (const Middleware::ActiveView& v : mw.active_views()) {
    verify::ValidateOptions vopts;
    vopts.excluded_hosts = &excluded;
    if (replanned.count(v.query->id) > 0) {
      vopts.query = v.query;
      vopts.planned_cost = v.planned_cost;
    }
    const std::vector<verify::Violation> found =
        verify::validate(*v.deployment, env, vopts);
    if (!found.empty() && first_detail != nullptr && first_detail->empty()) {
      std::ostringstream os;
      os << "query " << v.query->id << ": " << verify::describe(found);
      *first_detail = os.str();
    }
    violations += found.size();
  }
  return violations;
}

/// Operator-hosting stub nodes that are no query's source or sink: the
/// degradable set. Quarantining one of these can actually heal the workload
/// — migration removes every flow touching it — whereas a degraded endpoint
/// is unhealable by re-placement (its traffic must terminate there).
std::vector<net::NodeId> pick_targets(const net::Network& net,
                                      const query::Catalog& catalog,
                                      const std::vector<query::Query>& queries,
                                      const Middleware& mw, int want,
                                      std::uint64_t seed) {
  std::vector<char> endpoint(net.node_count(), 0);
  for (const query::Query& q : queries) {
    endpoint[q.sink] = 1;
    for (const query::StreamId s : q.sources) {
      endpoint[catalog.stream(s).source] = 1;
    }
  }
  std::vector<char> hosting(net.node_count(), 0);
  for (const Middleware::ActiveView& v : mw.active_views()) {
    for (const query::DeployedOp& op : v.deployment->ops) {
      hosting[op.node] = 1;
    }
  }
  std::vector<net::NodeId> candidates;
  for (net::NodeId n = 0; n < net.node_count(); ++n) {
    if (hosting[n] != 0 && endpoint[n] == 0 &&
        net.kind(n) == net::NodeKind::kStub) {
      candidates.push_back(n);
    }
  }
  IFLOW_CHECK_MSG(!candidates.empty(),
                  "gray harness needs an operator host that is not a query "
                  "endpoint (use a relay-shaped topology)");
  Prng prng(seed ^ 0x6A47A26E7ULL);
  prng.shuffle(candidates);
  candidates.resize(
      std::min(candidates.size(), static_cast<std::size_t>(want)));
  std::sort(candidates.begin(), candidates.end());
  return candidates;
}

struct SubRun {
  double final_goodput = 0.0;
  int detection_epoch = -1;
  std::size_t quarantined = 0;
  std::uint64_t quarantines_total = 0;
  std::size_t violations = 0;
  std::string violation_detail;
  std::string digest;
};

/// One epoch-by-epoch episode over private copies of the world.
SubRun gray_run(net::Network net, query::Catalog catalog,
                const std::vector<query::Query>& queries, int max_cs,
                Algorithm algorithm, std::uint64_t seed,
                const GrayConfig& cfg,
                const std::vector<net::NodeId>& targets, bool degrade,
                bool detect, const char* tag) {
  Middleware mw(net, catalog, max_cs, algorithm, seed);
  mw.workspace().set_threads(cfg.threads);
  for (const query::Query& q : queries) mw.deploy(q);
  if (degrade) {
    for (const net::NodeId n : targets) mw.degrade_node(n, cfg.degradation);
  }
  HealthMonitor hm(net.node_count(), cfg.health, seed ^ 0x6EA17BULL);

  EngineConfig ec;
  ec.duration_s = cfg.epoch_s;
  ec.reliability.enabled = true;
  ec.reliability.ack_timeout_s = cfg.ack_timeout_s;
  ec.reliability.max_backoff_s = cfg.max_backoff_s;

  SubRun out;
  std::ostringstream digest;
  for (int e = 0; e < cfg.epochs; ++e) {
    Simulation sim(mw.network(), mw.routing(), mw.catalog(), ec,
                   seed ^ (0x51D0E5ULL * static_cast<std::uint64_t>(e + 1)));
    deploy_actives(sim, mw);
    sim.run();
    double goodput = 0.0;
    for (const auto& [qid, ds] : mw.collect_delivery_stats(sim)) {
      goodput += ds.goodput_tps;
    }
    out.final_goodput = goodput;

    std::unordered_set<query::QueryId> replanned;
    if (detect) {
      hm.observe(sim.channel_telemetry());
      const std::vector<HealthTransition> trans = hm.step(
          mw.network(), cfg.epoch_s * static_cast<double>(e + 1),
          cfg.epoch_s);
      // Penalty first, so quarantine migrations already steer by the fresh
      // suspicion scores.
      mw.set_health_penalty(hm.node_penalty());
      for (const HealthTransition& t : trans) {
        std::vector<Redeployment> reds;
        if (t.to == HealthState::kQuarantined &&
            t.from != HealthState::kProbation) {
          if (out.detection_epoch < 0) out.detection_epoch = e;
          reds = mw.quarantine_node(t.node);
        } else if (t.from == HealthState::kProbation &&
                   t.to == HealthState::kHealthy) {
          reds = mw.release_quarantine(t.node);
          // Telemetry baselines reset with the release: probation starts
          // from zero suspicion instead of the pre-quarantine accrual.
          hm.on_restore(t.node);
        }
        for (const Redeployment& r : reds) {
          if (r.outcome == Outcome::kMigrated ||
              r.outcome == Outcome::kResumed) {
            replanned.insert(r.query);
          }
        }
      }
    }
    const std::size_t v = validate_actives(mw, replanned,
                                           &out.violation_detail);
    out.violations += v;
    digest << tag << " epoch " << e << " goodput " << std::hexfloat
           << goodput << std::defaultfloat << " quarantined "
           << mw.quarantined_nodes().size() << " suspended "
           << mw.suspended_queries() << " viol " << v << '\n';
  }
  out.quarantined = mw.quarantined_nodes().size();
  out.quarantines_total = hm.quarantines_total();
  out.digest = digest.str();
  return out;
}

}  // namespace

GrayReport run_gray(const net::Network& net, const query::Catalog& catalog,
                    const std::vector<query::Query>& queries, int max_cs,
                    Algorithm algorithm, std::uint64_t seed,
                    const GrayConfig& cfg) {
  IFLOW_CHECK(cfg.epochs >= 1 && cfg.epoch_s > 0.0 && cfg.targets >= 1);
  GrayReport report;
  // A scratch deployment (private copies) decides which operator hosts the
  // planner actually uses; the three measured sub-runs then share targets.
  {
    net::Network scratch_net = net;
    query::Catalog scratch_cat = catalog;
    Middleware scout(scratch_net, scratch_cat, max_cs, algorithm, seed);
    scout.workspace().set_threads(cfg.threads);
    for (const query::Query& q : queries) scout.deploy(q);
    report.targets = pick_targets(scratch_net, scratch_cat, queries, scout,
                                  cfg.targets, seed);
  }

  const SubRun on = gray_run(net, catalog, queries, max_cs, algorithm, seed,
                             cfg, report.targets, /*degrade=*/true,
                             /*detect=*/true, "on");
  const SubRun off = gray_run(net, catalog, queries, max_cs, algorithm, seed,
                              cfg, report.targets, /*degrade=*/true,
                              /*detect=*/false, "off");
  const SubRun healthy = gray_run(net, catalog, queries, max_cs, algorithm,
                                  seed, cfg, report.targets,
                                  /*degrade=*/false, /*detect=*/true,
                                  "healthy");

  report.goodput_on = on.final_goodput;
  report.goodput_off = off.final_goodput;
  report.goodput_healthy = healthy.final_goodput;
  report.recovery_ratio =
      off.final_goodput > 0.0
          ? on.final_goodput / off.final_goodput
          : (on.final_goodput > 0.0 ? std::numeric_limits<double>::infinity()
                                    : 1.0);
  report.detection_epoch = on.detection_epoch;
  report.quarantined = on.quarantined;
  report.false_positives =
      static_cast<std::size_t>(healthy.quarantines_total);
  report.violations = on.violations + off.violations + healthy.violations;
  for (const SubRun* r : {&on, &off, &healthy}) {
    if (!r->violation_detail.empty() && report.violation_detail.empty()) {
      report.violation_detail = r->violation_detail;
    }
  }
  report.contract_ok = report.detection_epoch >= 0 &&
                       report.recovery_ratio >= 1.5 &&
                       report.false_positives == 0 &&
                       report.violations == 0;
  report.digest = on.digest + off.digest + healthy.digest;
  return report;
}

}  // namespace iflow::engine
