// Seeded chaos harness for the failure & churn subsystem (DESIGN.md §10).
//
// A FaultInjector replays a deterministic event schedule — node crashes,
// processing failures, link flaps, restores and stream-rate spikes —
// against a live Middleware. After EVERY event the harness re-validates
// every active deployment with verify::validate (structural + placement
// checks for untouched deployments; full semantic + cost checks for the
// ones the event just re-planned) and records a digest line, so a fixed
// seed yields a bitwise-identical transcript regardless of the planner
// thread count (the PR-2 determinism contract extended to churn).
//
// `run_churn` drives a complete scenario: deploy a workload, replay the
// schedule, then restore everything still down and adapt until quiescent.
// The report asserts the convergence invariants the chaos tests (and the
// differential fuzzer's --churn mode) check:
//   * zero validator violations across the whole run;
//   * every suspended query resumed after full restoration;
//   * the churned system's total cost lands within a configurable factor
//     of a fresh Middleware optimizing the same end-state from scratch.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "engine/middleware.h"

namespace iflow::engine {

struct ChaosConfig {
  /// Events to replay (the chaos tests use >= 30 per scenario).
  int events = 32;
  /// Concurrently down nodes (crashed or processing-failed). The injector
  /// additionally never takes down more than half the network, so the
  /// hierarchy always keeps members.
  int max_down_nodes = 2;
  /// Concurrently administratively-down link pairs.
  int max_down_links = 3;
  /// Probability of drawing a restore when something is down (biases
  /// schedules toward churn rather than monotone destruction).
  double restore_bias = 0.45;
  /// Probability of a rate-spike event (scales a random stream's rate by a
  /// factor in [0.25, 4] and runs adapt()).
  double spike_probability = 0.15;
  /// Probability of a set-link-loss event (a random link pair's loss
  /// probability is re-drawn in [0, max_link_loss]). Loss does not affect
  /// planning costs; it exercises the engine's reliable delivery layer via
  /// the post-churn delivery check.
  double loss_probability = 0.0;
  /// Probability of a set-link-jitter event (delay jitter re-drawn in
  /// [0, max_jitter_ms]).
  double jitter_probability = 0.0;
  /// Probability of a queue-pressure event: the post-churn delivery check
  /// runs with bounded per-operator queues (kBackpressure) and the drawn
  /// per-tuple service time, so retransmission interacts with queueing.
  double queue_probability = 0.0;
  /// Upper bound of drawn per-link loss probabilities. Kept well under the
  /// default retry budget's tolerance (12 retries at <= 5% per-hop loss
  /// makes residual loss negligible over a bounded run).
  double max_link_loss = 0.04;
  /// Upper bound of drawn per-link delay jitter (must stay far below the
  /// engine's lateness allowance so event-time results are unaffected).
  double max_jitter_ms = 2.0;
  /// Run the post-churn delivery contract: deploy the surviving actives
  /// into two reliable-mode simulations — one over the churned network
  /// (with its accumulated loss/jitter), one over a loss-free copy — and
  /// require per-query delivered counts to match exactly with zero tuples
  /// lost after retries (at-least-once + dedup = effectively exactly-once).
  bool delivery_check = false;
  /// Horizon of the delivery-check simulations (must exceed the engine's
  /// default drain window).
  double delivery_duration_s = 20.0;
  /// Optional time-varying source rates for the delivery-check simulations
  /// (scenario rate curves): multiplier on a stream's catalog rate at
  /// simulation time t. Must be a pure function — the digest stays bitwise
  /// stable because both the lossy and the loss-free twin see it. Null =
  /// constant catalog rates.
  std::function<double(query::StreamId, double)> rate_modulation;
  /// Planner threads pinned on the middleware workspace (determinism
  /// checks run the same seed at 1 and N and diff the digests).
  int threads = 1;
  /// Post-churn total cost must be <= this factor times a fresh
  /// optimization of the same end state (and vice versa).
  double convergence_factor = 2.0;
  /// Drift threshold handed to the Middleware under test.
  double drift_threshold = 1.2;
};

enum class ChaosEventKind : std::uint8_t {
  kCrashNode,    // node stops forwarding; incident links die with it
  kFailNode,     // processing service dies; node keeps forwarding
  kRestoreNode,  // recovers from either failure class
  kFailLink,     // administrative link-pair failure (possible partition)
  kRestoreLink,
  kRateSpike,      // stream rate scaled; adapt() re-plans drifted queries
  kSetLinkLoss,    // link loss probability re-drawn (delivery layer)
  kSetLinkJitter,  // link delay jitter re-drawn (delivery layer)
  kQueuePressure,  // delivery check runs with bounded queues + service time
};

const char* to_string(ChaosEventKind k);

struct ChaosEvent {
  ChaosEventKind kind = ChaosEventKind::kCrashNode;
  net::NodeId a = net::kInvalidNode;   // node, or link end
  net::NodeId b = net::kInvalidNode;   // other link end (links only)
  query::StreamId stream = query::kInvalidStream;  // rate spikes only
  /// Overloaded by kind: new tuple rate (kRateSpike), loss probability
  /// (kSetLinkLoss), jitter in ms (kSetLinkJitter), per-tuple service time
  /// in seconds (kQueuePressure).
  double rate = 0.0;
};

/// One replayed event plus the system state it left behind.
struct ChaosStep {
  ChaosEvent event;
  std::vector<Redeployment> redeployments;
  std::size_t active = 0;
  std::size_t suspended = 0;
  double total_cost = 0.0;     // finite: only intact actives are summed
  std::size_t violations = 0;  // validator violations after this event
  std::string violation_detail;  // first violation of this step, if any
};

struct ChaosReport {
  std::vector<ChaosStep> steps;
  std::size_t violations = 0;        // summed over steps + final sweep
  std::string violation_detail;      // first violation description, if any
  bool all_resumed = false;          // every query active after restoration
  bool converged = false;            // cost within convergence_factor
  double final_cost = 0.0;           // churned middleware, post-restore
  double fresh_cost = 0.0;           // fresh middleware on the end state
  /// Modeled planning latency of the initial workload deployment (summed
  /// OptimizeResult::deploy_time_ms over the first deploy sweep).
  double deploy_time_ms = 0.0;
  /// Post-churn delivery contract (only when cfg.delivery_check).
  bool delivery_checked = false;   // both sims deployed + ran to completion
  bool delivery_ok = false;        // per-query lossy == loss-free, 0 lost
  std::uint64_t delivered_total = 0;    // lossy run, summed over queries
  std::uint64_t retransmits_total = 0;  // retransmissions the loss forced
  std::uint64_t duplicates_total = 0;   // duplicates the dedup suppressed
  /// Mean per-query availability of the lossy run (delivered rate over the
  /// analytic no-fault rate at the *base* catalog rates; rate-modulated
  /// scenarios legitimately land away from 1.0).
  double mean_availability = 0.0;
  /// Aggregate delivered results per second of the lossy run.
  double goodput_tps = 0.0;
  /// One line per step (event + hexfloat cost + counts); bitwise-identical
  /// across planner thread counts for a fixed seed.
  std::string digest;
};

/// Draws valid events against the injector's model of what is currently
/// down: it never double-fails a target, only restores things that are
/// down, respects the concurrency caps and never empties the hierarchy.
/// Deterministic for a fixed (network shape, config, seed).
class FaultInjector {
 public:
  FaultInjector(const net::Network& net, const query::Catalog& catalog,
                const ChaosConfig& cfg, std::uint64_t seed);

  /// Next event of the schedule. Always returns an applicable event.
  ChaosEvent next();

  const std::vector<net::NodeId>& down_nodes() const { return down_nodes_; }
  const std::vector<std::pair<net::NodeId, net::NodeId>>& down_links() const {
    return down_links_;
  }

 private:
  ChaosConfig cfg_;
  Prng prng_;
  std::size_t node_count_;
  std::vector<std::pair<net::NodeId, net::NodeId>> link_pairs_;  // distinct
  std::vector<query::StreamId> streams_;
  std::vector<double> base_rates_;
  std::vector<net::NodeId> down_nodes_;
  std::vector<std::pair<net::NodeId, net::NodeId>> down_links_;
};

/// Replays `cfg.events` injector-drawn events against a Middleware built
/// over copies of `net`/`catalog`, validating after every event, then
/// restores everything and checks convergence (see ChaosReport). The
/// copies keep the caller's instances pristine for replay comparisons.
ChaosReport run_churn(net::Network net, query::Catalog catalog,
                      const std::vector<query::Query>& queries, int max_cs,
                      Algorithm algorithm, std::uint64_t seed,
                      const ChaosConfig& cfg = {});

/// Replays a FIXED event script (scenario failure scripts: correlated
/// whole-cluster outages, flapping regions, loss storms) instead of
/// injector-drawn events; cfg.events is ignored — the whole script runs.
/// The script must be applicable in order: no double-faulting a down
/// target, no restoring something that is up (the scenario generator
/// guarantees this; violations throw). Everything else — per-event
/// validation, the restoration sweep, convergence and the optional
/// delivery contract — matches run_churn.
ChaosReport run_scripted(net::Network net, query::Catalog catalog,
                         const std::vector<query::Query>& queries, int max_cs,
                         Algorithm algorithm, std::uint64_t seed,
                         const std::vector<ChaosEvent>& script,
                         const ChaosConfig& cfg = {});

}  // namespace iflow::engine
